package positdebug

import (
	"strings"
	"testing"

	"positdebug/internal/interp"
	"positdebug/internal/shadow"
)

const fig2 = `
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
func main(): i64 {
	return rootcount(18309067625725952.0, 3246642954240.0, 143923904.0);
}
`

func TestPublicPipeline(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	base, err := prog.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if base.I64() != 1 {
		t.Fatalf("baseline result %d, want 1", base.I64())
	}
	if base.Summary != nil {
		t.Fatal("baseline must not carry a summary")
	}
	dbg, err := prog.Exec("main")
	if err != nil {
		t.Fatal(err)
	}
	if dbg.I64() != 1 {
		t.Fatalf("shadowed result %d, want 1 (shadow follows the program)", dbg.I64())
	}
	if !dbg.Summary.Has(shadow.KindCancellation) || dbg.Summary.BranchFlips == 0 {
		t.Fatalf("detections missing: %s", dbg.Summary)
	}
	if dbg.Steps <= base.Steps {
		t.Fatal("instrumented run must execute more instructions")
	}
}

func TestRefactorAndDebug(t *testing.T) {
	fp := `
func main(): f64 {
	var a: f64 = 18309067625725952.0;
	var b: f64 = 3246642954240.0;
	var c: f64 = 143923904.0;
	return b * b - 4.0 * a * c;
}
`
	ps, err := RefactorToPosit(fp)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ps, "p32") || strings.Contains(ps, "f64") {
		t.Fatalf("refactor output:\n%s", ps)
	}
	prog, err := Compile(ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Exec("main", WithShadow(shadow.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.P32() != 0 {
		t.Fatalf("posit discriminant = %v, want 0 (cancellation)", res.P32())
	}
	if !res.Summary.Has(shadow.KindCancellation) {
		t.Fatalf("cancellation not detected after refactoring: %s", res.Summary)
	}
}

func TestDebugHerbgrind(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Exec("main", WithHerbgrind(256))
	if err != nil {
		t.Fatal(err)
	}
	if res.I64() != 1 {
		t.Fatalf("herbgrind-mode result %d, want 1", res.I64())
	}
	if res.TraceNodes == 0 {
		t.Fatal("herbgrind mode must accumulate trace nodes")
	}
}

func TestHerbgrindTraceGrowth(t *testing.T) {
	// The defining difference: Herbgrind-style metadata grows with the
	// dynamic instruction count, PositDebug's does not.
	src := `
func main(n: i64): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + 1.5;
	}
	return s;
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	small, err := prog.Exec("main", WithHerbgrind(128), WithArgs(100))
	if err != nil {
		t.Fatal(err)
	}
	large, err := prog.Exec("main", WithHerbgrind(128), WithArgs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if large.TraceNodes < small.TraceNodes*5 {
		t.Fatalf("trace nodes must grow ~linearly with iterations: %d vs %d",
			small.TraceNodes, large.TraceNodes)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("func f( {"); err == nil {
		t.Fatal("parse error must surface")
	}
	if _, err := Compile("func f(): i64 { return x; }"); err == nil {
		t.Fatal("check error must surface")
	}
}

func TestArgHelpers(t *testing.T) {
	prog, err := Compile(`
func addp(a: p32, b: p32): p32 { return a + b; }
func addf(a: f64, b: f64): f64 { return a + b; }
func addi(a: i64, b: i64): i64 { return a + b; }
`)
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Run("addp", P32Arg(1.5), P32Arg(2.25))
	if err != nil || r.P32() != 3.75 {
		t.Fatalf("addp: %v %v", r, err)
	}
	r, err = prog.Run("addf", F64Arg(1.5), F64Arg(2.25))
	if err != nil || r.F64() != 3.75 {
		t.Fatalf("addf: %v %v", r, err)
	}
	r, err = prog.Run("addi", I64Arg(-2), I64Arg(5))
	if err != nil || r.I64() != 3 {
		t.Fatalf("addi: %v %v", r, err)
	}
	_ = P16Arg(1.0)
	_ = F32Arg(1.0)
}

func TestDebugPartial(t *testing.T) {
	src := `
var g: p32;

func libwrite() {
	g = 42.5;
}
func main(): p32 {
	g = 1.0;
	libwrite();
	return g + 0.0;
}
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Exec("main", WithShadow(shadow.DefaultConfig()), WithSkip("libwrite"))
	if err != nil {
		t.Fatal(err)
	}
	if res.P32() != 42.5 {
		t.Fatalf("result = %v", res.P32())
	}
	if res.Summary.UninstrumentedWrites == 0 {
		t.Fatalf("uninstrumented write not detected: %s", res.Summary)
	}
	// The fully instrumented run of the same program sees no such writes.
	full, err := prog.Exec("main")
	if err != nil {
		t.Fatal(err)
	}
	if full.Summary.UninstrumentedWrites != 0 {
		t.Fatal("full instrumentation must not report uninstrumented writes")
	}
}

// TestDebuggerWarmEqualsCold: repeated runs on one warm Debugger must be
// indistinguishable from fresh Program.Debug runs — value, output, steps
// and detection counts — since campaign workers rely on warm-runtime reuse
// being semantically invisible.
func TestDebuggerWarmEqualsCold(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shadow.DefaultConfig()
	cold, err := prog.Exec("main", WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	dbg, err := prog.Session(WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		warm, err := dbg.Exec("main", WithLimits(interp.Limits{}))
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		if warm.Value != cold.Value || warm.Output != cold.Output || warm.Steps != cold.Steps {
			t.Fatalf("warm run %d diverged: value %d/%d output %q/%q steps %d/%d",
				i, warm.Value, cold.Value, warm.Output, cold.Output, warm.Steps, cold.Steps)
		}
		if warm.Degraded || warm.ShadowPrecision != cfg.Precision {
			t.Fatalf("warm run %d: degraded=%v precision=%d", i, warm.Degraded, warm.ShadowPrecision)
		}
		for k := shadow.KindCancellation; k <= shadow.KindWrongOutput; k++ {
			if warm.Summary.Counts[k] != cold.Summary.Counts[k] {
				t.Fatalf("warm run %d: count[%s] = %d, cold %d",
					i, k, warm.Summary.Counts[k], cold.Summary.Counts[k])
			}
		}
	}
}
