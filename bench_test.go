// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md's experiment index). Each BenchmarkFigN measures the
// baseline and shadow-instrumented execution of a representative kernel;
// the full multi-kernel sweeps behind the figures run via cmd/pdexp. The
// Ablation benches quantify the design decisions DESIGN.md calls out.
package positdebug_test

import (
	"testing"

	positdebug "positdebug"
	"positdebug/internal/harness"
	"positdebug/internal/posit"
	"positdebug/internal/shadow"
	"positdebug/internal/workloads"
)

// benchPrograms compiles the FP and posit variants of a kernel at a size
// small enough for per-iteration measurement.
func benchPrograms(b *testing.B, name string, n int) (fp, pos *positdebug.Program) {
	b.Helper()
	k, ok := workloads.KernelByName(name)
	if !ok {
		b.Fatalf("no kernel %s", name)
	}
	src := k.Source(n)
	fp, err := positdebug.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	psrc, err := positdebug.RefactorToPosit(src)
	if err != nil {
		b.Fatal(err)
	}
	pos, err = positdebug.Compile(psrc)
	if err != nil {
		b.Fatal(err)
	}
	fp.Instrumented()
	pos.Instrumented()
	return fp, pos
}

func runBaseline(b *testing.B, p *positdebug.Program) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run("main"); err != nil {
			b.Fatal(err)
		}
	}
}

func runShadowed(b *testing.B, p *positdebug.Program, prec uint, tracing bool) {
	b.Helper()
	cfg := shadow.DefaultConfig()
	cfg.Precision = prec
	cfg.Tracing = tracing
	cfg.MaxReports = 4
	for i := 0; i < b.N; i++ {
		if _, err := p.Exec("main", positdebug.WithShadow(cfg)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2RootCount: the Figure 2 walkthrough under full shadow
// execution (detection + DAG construction).
func BenchmarkFig2RootCount(b *testing.B) {
	prog, err := positdebug.Compile(workloads.RootCountSource)
	if err != nil {
		b.Fatal(err)
	}
	prog.Instrumented()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Exec("main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableDetection: the §5.1 effectiveness sweep over all 32
// error programs.
func BenchmarkTableDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunDetection(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PositDebug: PositDebug slowdown components on gemm —
// compare ns/op of the sub-benchmarks to read off the slowdown factors.
func BenchmarkFig7PositDebug(b *testing.B) {
	_, pos := benchPrograms(b, "gemm", 16)
	b.Run("baseline", func(b *testing.B) { runBaseline(b, pos) })
	b.Run("pd512", func(b *testing.B) { runShadowed(b, pos, 512, true) })
	b.Run("pd256", func(b *testing.B) { runShadowed(b, pos, 256, true) })
	b.Run("pd128", func(b *testing.B) { runShadowed(b, pos, 128, true) })
}

// BenchmarkFig8Tracing: PositDebug-256 with vs without tracing metadata.
func BenchmarkFig8Tracing(b *testing.B) {
	_, pos := benchPrograms(b, "gemm", 16)
	b.Run("tracing", func(b *testing.B) { runShadowed(b, pos, 256, true) })
	b.Run("notracing", func(b *testing.B) { runShadowed(b, pos, 256, false) })
}

// BenchmarkFig9FPSanitizer: FPSanitizer slowdown components on gemm (FP).
func BenchmarkFig9FPSanitizer(b *testing.B) {
	fp, _ := benchPrograms(b, "gemm", 16)
	b.Run("baseline", func(b *testing.B) { runBaseline(b, fp) })
	b.Run("fps512", func(b *testing.B) { runShadowed(b, fp, 512, true) })
	b.Run("fps256", func(b *testing.B) { runShadowed(b, fp, 256, true) })
	b.Run("fps128", func(b *testing.B) { runShadowed(b, fp, 128, true) })
}

// BenchmarkFig10Tracing: FPSanitizer-256 with vs without tracing.
func BenchmarkFig10Tracing(b *testing.B) {
	fp, _ := benchPrograms(b, "gemm", 16)
	b.Run("tracing", func(b *testing.B) { runShadowed(b, fp, 256, true) })
	b.Run("notracing", func(b *testing.B) { runShadowed(b, fp, 256, false) })
}

// BenchmarkHerbgrindComparison: FPSanitizer vs the Herbgrind-style
// baseline on the same FP kernel (§5.4's >10× gap).
func BenchmarkHerbgrindComparison(b *testing.B) {
	fp, _ := benchPrograms(b, "gemm", 16)
	b.Run("fpsanitizer", func(b *testing.B) { runShadowed(b, fp, 256, true) })
	b.Run("herbgrind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fp.Exec("main", positdebug.WithHerbgrind(256)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSoftPositBaseline: the software-posit-vs-hardware-FP cost
// outside the interpreter (the paper's "11× slower" observation).
func BenchmarkSoftPositBaseline(b *testing.B) {
	const n = 48
	af := make([]float64, n*n)
	ap := make([]posit.Posit32, n*n)
	for i := range af {
		af[i] = float64(i%7)/7 + 0.25
		ap[i] = posit.P32FromFloat64(af[i])
	}
	b.Run("float64", func(b *testing.B) {
		out := make([]float64, n*n)
		for it := 0; it < b.N; it++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := 0.0
					for k := 0; k < n; k++ {
						s += af[i*n+k] * af[k*n+j]
					}
					out[i*n+j] = s
				}
			}
		}
	})
	b.Run("posit32", func(b *testing.B) {
		out := make([]posit.Posit32, n*n)
		for it := 0; it < b.N; it++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var s posit.Posit32
					for k := 0; k < n; k++ {
						s = s.Add(ap[i*n+k].Mul(ap[k*n+j]))
					}
					out[i*n+j] = s
				}
			}
		}
	})
}

// BenchmarkAblationShadowMem: the two-level trie against a plain map as
// the shadow-memory index (design decision 5 in DESIGN.md).
func BenchmarkAblationShadowMem(b *testing.B) {
	_, pos := benchPrograms(b, "trisolv", 48)
	// The trie is what the runtime uses; the map variant is approximated
	// by the Herbgrind runtime, which indexes shadow memory with a map.
	b.Run("trie-runtime", func(b *testing.B) { runShadowed(b, pos, 128, false) })
	b.Run("map-runtime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pos.Exec("main", positdebug.WithHerbgrind(128)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPositFast: posit codec cost per operation across
// configurations (design decision 6). The fast paths in internal/posit
// (decode tables for p16/p8, result tables for p8, integer arithmetic with
// inline RNE for p16) sit behind the Config API; the p16-add-generic /
// p16-mul-generic sub-benches pin the pre-fast-path pipeline for
// comparison, and the assertion in fast_test.go guarantees the two agree
// on every pattern.
func BenchmarkAblationPositFast(b *testing.B) {
	x32 := posit.Config32.FromFloat64(1.375)
	y32 := posit.Config32.FromFloat64(0.8125)
	b.Run("p32-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Add(x32, y32)
		}
	})
	b.Run("p32-mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Mul(x32, y32)
		}
	})
	x16 := posit.Config16.FromFloat64(1.375)
	y16 := posit.Config16.FromFloat64(0.8125)
	b.Run("p16-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.Add(x16, y16)
		}
	})
	b.Run("p16-mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.Mul(x16, y16)
		}
	})
	b.Run("p16-add-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.GenericAdd(x16, y16)
		}
	})
	b.Run("p16-mul-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.GenericMul(x16, y16)
		}
	})
	x8 := posit.Config8.FromFloat64(1.375)
	y8 := posit.Config8.FromFloat64(0.8125)
	b.Run("p8-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config8.Add(x8, y8)
		}
	})
	b.Run("float64-add", func(b *testing.B) {
		a, c := 1.375, 0.8125
		var s float64
		for i := 0; i < b.N; i++ {
			s += a * c
		}
		_ = s
	})
}
