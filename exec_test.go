package positdebug

import (
	"strings"
	"testing"

	"positdebug/internal/interp"
	"positdebug/internal/obs"
	"positdebug/internal/shadow"
)

// TestDeprecatedWrappersMatchExec: the Debug* compatibility wrappers are
// thin delegations — every observable field must match the equivalent
// Exec call.
func TestDeprecatedWrappersMatchExec(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shadow.DefaultConfig()

	oldRes, err := prog.Debug(cfg, "main")
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := prog.Exec("main", WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if oldRes.Value != newRes.Value || oldRes.Steps != newRes.Steps {
		t.Fatalf("Debug wrapper diverged: value %d/%d steps %d/%d",
			oldRes.Value, newRes.Value, oldRes.Steps, newRes.Steps)
	}
	for k := shadow.KindCancellation; k <= shadow.KindWrongOutput; k++ {
		if oldRes.Summary.Counts[k] != newRes.Summary.Counts[k] {
			t.Fatalf("count[%s] = %d via wrapper, %d via Exec", k,
				oldRes.Summary.Counts[k], newRes.Summary.Counts[k])
		}
	}

	_, nodes, err := prog.DebugHerbgrind(256, "main")
	if err != nil {
		t.Fatal(err)
	}
	hg, err := prog.Exec("main", WithHerbgrind(256))
	if err != nil {
		t.Fatal(err)
	}
	if nodes != hg.TraceNodes {
		t.Fatalf("herbgrind wrapper: %d nodes, Exec: %d", nodes, hg.TraceNodes)
	}

	dbg, err := prog.NewDebugger(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := dbg.DebugWithLimits(interp.Limits{}, nil, "main")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Value != newRes.Value {
		t.Fatalf("session wrapper diverged: %d vs %d", warm.Value, newRes.Value)
	}
}

// TestExecOptionConflicts: incompatible option combinations fail loudly
// instead of silently picking a mode.
func TestExecOptionConflicts(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Option{
		{WithBaseline(), WithHerbgrind(256)},
		{WithBaseline(), WithShadow(shadow.DefaultConfig())},
		{WithHerbgrind(256), WithShadow(shadow.DefaultConfig())},
		{WithBaseline(), WithSkip("f")},
		{WithHerbgrind(256), WithHooksWrapper(func(h interp.Hooks) interp.Hooks { return h })},
	}
	for i, opts := range bad {
		if _, err := prog.Exec("main", opts...); err == nil {
			t.Fatalf("conflict set %d accepted", i)
		}
	}
	if _, err := prog.Session(WithBaseline()); err == nil {
		t.Fatal("Session must reject WithBaseline")
	}
	if _, err := prog.Session(WithLimits(interp.Limits{})); err == nil {
		t.Fatal("Session must reject per-run options")
	}
	dbg, err := prog.Session()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dbg.Exec("main", WithShadow(shadow.DefaultConfig())); err == nil {
		t.Fatal("Debugger.Exec must reject WithShadow (fixed at Session time)")
	}
}

// TestExecTraceAndMetrics: one shadow run with a sink and registry
// attached produces run framing plus detections, and the registry picks
// up the op and detection counters.
func TestExecTraceAndMetrics(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	buf := &obs.Buffer{}
	reg := obs.NewRegistry()
	res, err := prog.Exec("main", WithTrace(buf), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	events := buf.Events()
	if len(events) < 3 {
		t.Fatalf("got %d events, want run-start + detections + run-end", len(events))
	}
	if events[0].Kind != obs.EvRunStart || events[0].Func != "main" {
		t.Fatalf("first event %+v, want run-start main", events[0])
	}
	last := events[len(events)-1]
	if last.Kind != obs.EvRunEnd || last.Outcome != "ok" {
		t.Fatalf("last event %+v, want run-end ok", last)
	}
	sawDetect := false
	for _, e := range events {
		if e.Kind == obs.EvDetect {
			sawDetect = true
			if e.Detect == "" || e.Inst < 0 {
				t.Fatalf("malformed detection event %+v", e)
			}
		}
	}
	if !sawDetect {
		t.Fatal("fig2 must produce detection events")
	}
	if reg.Counter("pd_shadow_ops_total").Value() == 0 {
		t.Fatal("pd_shadow_ops_total not incremented")
	}
	if reg.Counter("pd_runs_total").Value() != 1 {
		t.Fatalf("pd_runs_total = %d, want 1", reg.Counter("pd_runs_total").Value())
	}
	kindName := shadow.KindCancellation.String()
	if reg.Counter(`pd_detections_total{kind="`+kindName+`"}`).Value() == 0 {
		t.Fatal("cancellation counter not incremented")
	}
	var prom strings.Builder
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "pd_op_nanos") {
		t.Fatalf("per-opcode timing attribution missing from metrics dump:\n%s", prom.String())
	}
	_ = res
}

// TestExecDOTExport: the Summary of a traced run exports its DAGs as DOT
// that passes the structural checker, and as JSON.
func TestExecDOTExport(t *testing.T) {
	prog, err := Compile(fig2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Exec("main")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Summary.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckDOT(sb.String()); err != nil {
		t.Fatalf("exported DOT fails the checker: %v\n%s", err, sb.String())
	}
	j, err := res.Summary.GraphsJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(j), `"nodes"`) {
		t.Fatalf("graphs JSON missing nodes:\n%s", j)
	}
}
