package positdebug_test

// The two-backend differential suite: every workload, the detection
// programs, fault campaigns, and profiling sweeps must produce
// byte-identical artifacts whether they run on the tree-walk interpreter
// or the bytecode VM. The tree-walker is the semantic oracle; any
// divergence here is a VM bug by definition. `make vm-smoke` runs this
// file under -race -cpu=1,4 so the identity also holds across worker
// counts.

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/interp"
	"positdebug/internal/obs"
	"positdebug/internal/shadow"
	"positdebug/internal/workloads"
)

var bothBackends = []backend.Kind{backend.Treewalk, backend.VM}

// execOutcome is everything observable from one Exec, canonicalized for
// byte comparison across backends.
type execOutcome struct {
	Value   uint64
	Output  string
	Steps   int64
	Summary json.RawMessage
	Trace   json.RawMessage
	Err     string
}

func runOnBackend(t *testing.T, prog *positdebug.Program, k backend.Kind, extra ...positdebug.Option) execOutcome {
	t.Helper()
	buf := &obs.Buffer{}
	opts := append([]positdebug.Option{
		positdebug.WithBackend(k),
		positdebug.WithTrace(buf),
	}, extra...)
	res, err := prog.Exec("main", opts...)
	oc := execOutcome{Trace: mustJSON(t, buf.Events())}
	if err != nil {
		oc.Err = err.Error()
		return oc
	}
	oc.Value = res.Value
	oc.Output = res.Output
	oc.Steps = res.Steps
	if res.Summary != nil {
		oc.Summary = mustJSON(t, res.Summary)
	}
	return oc
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func diffOutcomes(t *testing.T, name string, tw, vm execOutcome) {
	t.Helper()
	if tw.Err != vm.Err {
		t.Errorf("%s: error diverged\n  treewalk: %q\n  vm:       %q", name, tw.Err, vm.Err)
		return
	}
	if tw.Value != vm.Value {
		t.Errorf("%s: value diverged: treewalk %#x, vm %#x", name, tw.Value, vm.Value)
	}
	if tw.Output != vm.Output {
		t.Errorf("%s: output diverged\n  treewalk: %q\n  vm:       %q", name, tw.Output, vm.Output)
	}
	if tw.Steps != vm.Steps {
		t.Errorf("%s: steps diverged: treewalk %d, vm %d", name, tw.Steps, vm.Steps)
	}
	if !bytes.Equal(tw.Summary, vm.Summary) {
		t.Errorf("%s: shadow summary diverged\n  treewalk: %s\n  vm:       %s", name, tw.Summary, vm.Summary)
	}
	if !bytes.Equal(tw.Trace, vm.Trace) {
		t.Errorf("%s: trace stream diverged\n  treewalk: %s\n  vm:       %s", name, tw.Trace, vm.Trace)
	}
}

// TestBackendDiffDetectionSuite runs all 32 detection-suite programs with
// the §5.1 thresholds on both backends and requires identical results,
// summaries, and event streams.
func TestBackendDiffDetectionSuite(t *testing.T) {
	for _, p := range workloads.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			src := p.Source
			if p.FromFP {
				var err error
				src, err = positdebug.RefactorToPosit(src)
				if err != nil {
					t.Fatalf("refactor: %v", err)
				}
			}
			prog, err := positdebug.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := shadow.DefaultConfig()
			cfg.ErrBitsThreshold = 35
			cfg.OutputThreshold = 35
			cfg.PrecisionLossThreshold = 8
			tw := runOnBackend(t, prog, backend.Treewalk, positdebug.WithShadow(cfg))
			vm := runOnBackend(t, prog, backend.VM, positdebug.WithShadow(cfg))
			diffOutcomes(t, p.Name, tw, vm)
		})
	}
}

// TestBackendDiffKernels runs a spread of PolyBench/SPEC-like kernels —
// FP original and posit refactor, baseline and shadowed — on both
// backends.
func TestBackendDiffKernels(t *testing.T) {
	kernels := []string{"gemm", "atax", "durbin", "cholesky", "spec_equake"}
	for _, name := range kernels {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, ok := workloads.KernelByName(name)
			if !ok {
				t.Fatalf("unknown kernel %q", name)
			}
			fpSrc := k.Source(8)
			posSrc, err := positdebug.RefactorToPosit(fpSrc)
			if err != nil {
				t.Fatalf("refactor: %v", err)
			}
			for _, v := range []struct {
				arch string
				src  string
			}{{"f64", fpSrc}, {"posit32", posSrc}} {
				prog, err := positdebug.Compile(v.src)
				if err != nil {
					t.Fatalf("compile %s: %v", v.arch, err)
				}
				tw := runOnBackend(t, prog, backend.Treewalk, positdebug.WithBaseline())
				vm := runOnBackend(t, prog, backend.VM, positdebug.WithBaseline())
				diffOutcomes(t, name+"/"+v.arch+"/baseline", tw, vm)

				tw = runOnBackend(t, prog, backend.Treewalk, positdebug.WithShadow(shadow.DefaultConfig()))
				vm = runOnBackend(t, prog, backend.VM, positdebug.WithShadow(shadow.DefaultConfig()))
				diffOutcomes(t, name+"/"+v.arch+"/shadow", tw, vm)
			}
		})
	}
}

// TestBackendDiffStepLimits sweeps the step budget across a contiguous
// window so limits trip at every offset relative to the VM's fused
// superinstruction boundaries, and requires the structured
// ResourceExhausted errors to match field-for-field. This pins the
// fused-pair step-accounting split (base op at s+1, shadow at s+2).
func TestBackendDiffStepLimits(t *testing.T) {
	k, _ := workloads.KernelByName("gemm")
	src, err := positdebug.RefactorToPosit(k.Source(4))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := positdebug.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	exhausted := func(k backend.Kind, maxSteps int64) (interp.ResourceExhausted, string) {
		_, err := prog.Exec("main",
			positdebug.WithBackend(k),
			positdebug.WithShadow(shadow.DefaultConfig()),
			positdebug.WithLimits(interp.Limits{MaxSteps: maxSteps}))
		var re *interp.ResourceExhausted
		if !errors.As(err, &re) {
			t.Fatalf("backend %v limit %d: want ResourceExhausted, got %v", k, maxSteps, err)
		}
		return *re, err.Error()
	}
	for maxSteps := int64(40); maxSteps < 104; maxSteps++ {
		tw, twMsg := exhausted(backend.Treewalk, maxSteps)
		vm, vmMsg := exhausted(backend.VM, maxSteps)
		if tw != vm || twMsg != vmMsg {
			t.Fatalf("limit %d: treewalk %+v (%s), vm %+v (%s)", maxSteps, tw, twMsg, vm, vmMsg)
		}
	}
}

// TestBackendDiffCampaign runs the same small fault campaign on both
// backends — posit and float arches, traced — and requires byte-identical
// report JSON and event streams. The Backend field is excluded from the
// report and journal fingerprint precisely because of this identity.
func TestBackendDiffCampaign(t *testing.T) {
	run := func(k backend.Kind) (string, string) {
		var trace bytes.Buffer
		sink := obs.NewJSONLines(&trace)
		rep, err := faultinject.RunCampaign(faultinject.CampaignConfig{
			Workload: "polybench/gemm",
			N:        6,
			Arch:     "both",
			Runs:     12,
			Seed:     42,
			Trace:    sink,
			Backend:  k,
		})
		if err != nil {
			t.Fatalf("campaign on %v: %v", k, err)
		}
		if sink.Err() != nil {
			t.Fatalf("sink on %v: %v", k, sink.Err())
		}
		b, err := json.MarshalIndent(rep, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b), trace.String()
	}
	twRep, twTrace := run(backend.Treewalk)
	vmRep, vmTrace := run(backend.VM)
	if twRep != vmRep {
		t.Errorf("campaign report diverged\n  treewalk: %s\n  vm:       %s", twRep, vmRep)
	}
	if twTrace != vmTrace {
		t.Errorf("campaign trace diverged\n  treewalk: %s\n  vm:       %s", twTrace, vmTrace)
	}
}

// TestBackendDiffProfile records the same multi-run, multi-worker error
// profile on both backends; the canonical profile JSON (file:line:col
// attribution included, fed by the VM's source-position table) and the
// traced event stream must match byte-for-byte.
func TestBackendDiffProfile(t *testing.T) {
	run := func(k backend.Kind) (string, string) {
		var trace bytes.Buffer
		sink := obs.NewJSONLines(&trace)
		p, err := harness.RecordProfile(harness.ProfileOptions{
			Kernel:  "gemm",
			N:       6,
			Posit:   true,
			Runs:    4,
			Workers: 2,
			Trace:   sink,
			Backend: k,
		})
		if err != nil {
			t.Fatalf("profile on %v: %v", k, err)
		}
		var out bytes.Buffer
		if err := p.WriteJSON(&out); err != nil {
			t.Fatal(err)
		}
		return out.String(), trace.String()
	}
	twProf, twTrace := run(backend.Treewalk)
	vmProf, vmTrace := run(backend.VM)
	if twProf != vmProf {
		t.Errorf("merged profile diverged\n  treewalk: %s\n  vm:       %s", twProf, vmProf)
	}
	if twTrace != vmTrace {
		t.Errorf("profile trace diverged\n  treewalk: %s\n  vm:       %s", twTrace, vmTrace)
	}
}

// TestBackendDiffSampledInjection exercises the seams the VM must keep
// working: a sampling wrapper (which breaks the FastShadow assertion) and
// a fault injector (which must see identical dynamic instruction streams
// to corrupt identically).
func TestBackendDiffSampledInjection(t *testing.T) {
	k, _ := workloads.KernelByName("gemm")
	src, err := positdebug.RefactorToPosit(k.Source(6))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := positdebug.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, stride := range []int{1, 3, 7} {
		tw := runOnBackend(t, prog, backend.Treewalk,
			positdebug.WithShadow(shadow.DefaultConfig()), positdebug.WithSampling(stride))
		vm := runOnBackend(t, prog, backend.VM,
			positdebug.WithShadow(shadow.DefaultConfig()), positdebug.WithSampling(stride))
		diffOutcomes(t, "sampled", tw, vm)
	}
}

// TestBackendDiffSampledSuite runs every detection-suite program sampled at
// several strides on both backends. Since Sampling implements FastShadow,
// the VM delivers sampled compute events through the fused
// superinstruction path; this test pins that the sampler's take() decisions
// and skip semantics (stale metadata, program result still computed) are
// byte-identical to the tree-walker's, detection verdicts included.
func TestBackendDiffSampledSuite(t *testing.T) {
	for _, p := range workloads.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			src := p.Source
			if p.FromFP {
				var err error
				src, err = positdebug.RefactorToPosit(src)
				if err != nil {
					t.Fatalf("refactor: %v", err)
				}
			}
			prog, err := positdebug.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := shadow.DefaultConfig()
			cfg.ErrBitsThreshold = 35
			cfg.OutputThreshold = 35
			cfg.PrecisionLossThreshold = 8
			for _, stride := range []int{2, 5} {
				tw := runOnBackend(t, prog, backend.Treewalk,
					positdebug.WithShadow(cfg), positdebug.WithSampling(stride))
				vm := runOnBackend(t, prog, backend.VM,
					positdebug.WithShadow(cfg), positdebug.WithSampling(stride))
				diffOutcomes(t, p.Name, tw, vm)
			}
		})
	}
}

// TestBackendDiffWarmSession runs the same program repeatedly on one warm
// Session per backend, interleaving entry functions, to check that the
// VM's dirty-region memory reset reproduces the tree-walker's full
// memclr image exactly — including after a treewalk run dirtied memory on
// a machine later switched to the VM (the Session path never switches,
// but repeated VM runs reuse the same arena).
func TestBackendDiffWarmSession(t *testing.T) {
	k, _ := workloads.KernelByName("atax")
	src, err := positdebug.RefactorToPosit(k.Source(8))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := positdebug.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	session := func(k backend.Kind) []execOutcome {
		d, err := prog.Session(positdebug.WithShadow(shadow.DefaultConfig()), positdebug.WithBackend(k))
		if err != nil {
			t.Fatal(err)
		}
		var out []execOutcome
		for i := 0; i < 4; i++ {
			res, err := d.Exec("main")
			oc := execOutcome{}
			if err != nil {
				oc.Err = err.Error()
			} else {
				oc.Value, oc.Output, oc.Steps = res.Value, res.Output, res.Steps
				if res.Summary != nil {
					oc.Summary = mustJSON(t, res.Summary)
				}
			}
			out = append(out, oc)
		}
		return out
	}
	tws, vms := session(backend.Treewalk), session(backend.VM)
	for i := range tws {
		diffOutcomes(t, "warm-run", tws[i], vms[i])
		if i > 0 && tws[i].Value != tws[0].Value {
			t.Fatalf("treewalk warm run %d drifted from run 0", i)
		}
	}
}
