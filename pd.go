// Package positdebug is a Go reproduction of "Debugging and Detecting
// Numerical Errors in Computation with Posits" (Chowdhary, Lim,
// Nagarakatte; PLDI 2020): PositDebug, a compile-time instrumentation that
// shadow-executes posit programs with high-precision values to detect
// catastrophic cancellation, precision loss, saturation, NaR exceptions,
// branch flips, wrong integer casts and wrong outputs — and FPSanitizer,
// the same metadata design applied to IEEE floating-point programs.
//
// The library compiles programs written in PCL (a small C-like numerical
// language; see internal/lang), lowers them to a register IR, optionally
// rewrites FP types to posits with the refactorer, instruments the IR with
// shadow instructions, and executes on an interpreter whose shadow hooks
// implement the paper's constant-size-metadata runtime.
//
// Quick start:
//
//	prog, err := positdebug.Compile(src)      // posit or FP source
//	res, err := prog.Debug(shadow.DefaultConfig(), "main")
//	fmt.Println(res.Summary)                   // detections
//	for _, r := range res.Summary.Reports {    // DAGs per error
//	    fmt.Println(r)
//	}
package positdebug

import (
	"bytes"
	"errors"
	"fmt"

	"positdebug/internal/codegen"
	"positdebug/internal/herbgrind"
	"positdebug/internal/instrument"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/lang"
	"positdebug/internal/posit"
	"positdebug/internal/refactor"
	"positdebug/internal/shadow"
)

// Program is a compiled PCL program, ready to run uninstrumented
// (baseline) or under shadow execution.
type Program struct {
	Source  string
	Checked *lang.Checked
	Module  *ir.Module // uninstrumented IR

	instrumented *ir.Module
}

// Compile parses, type-checks, lowers and verifies a PCL source.
func Compile(src string) (*Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("positdebug: %w", err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("positdebug: %w", err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		return nil, fmt.Errorf("positdebug: %w", err)
	}
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("positdebug: internal error: %w", err)
	}
	return &Program{Source: src, Checked: chk, Module: mod}, nil
}

// RefactorToPosit rewrites an FP program source into a ⟨32,2⟩ posit
// program, like the paper's clang-based refactorer.
func RefactorToPosit(src string) (string, error) {
	return refactor.Source(src, refactor.Options{})
}

// Instrumented returns (and caches) the shadow-instrumented module.
func (p *Program) Instrumented() *ir.Module {
	if p.instrumented == nil {
		p.instrumented = instrument.Instrument(p.Module, instrument.Options{})
	}
	return p.instrumented
}

// Result carries a run's outcome.
type Result struct {
	Value   uint64          // raw bit-pattern result of the entry function
	Output  string          // everything the program printed
	Steps   int64           // instructions executed
	Summary *shadow.Summary // nil for baseline runs

	// Degraded marks runs that exceeded the shadow-memory budget and were
	// automatically retried at a reduced precision (DebugWithLimits).
	Degraded bool
	// ShadowPrecision is the precision the run finally completed at.
	ShadowPrecision uint
}

// P32 decodes the result value as a ⟨32,2⟩ posit.
func (r *Result) P32() float64 { return posit.Config32.ToFloat64(posit.Bits(r.Value)) }

// F64 decodes the result value as a float64.
func (r *Result) F64() float64 { return interp.ToFloat64(ir.F64, r.Value) }

// I64 decodes the result value as an int64.
func (r *Result) I64() int64 { return int64(r.Value) }

// Run executes the uninstrumented program (the baseline of every
// experiment in the paper's evaluation).
func (p *Program) Run(fn string, args ...uint64) (*Result, error) {
	m := interp.New(p.Module)
	var out bytes.Buffer
	m.Out = &out
	v, err := m.Run(fn, args...)
	if err != nil {
		return nil, err
	}
	return &Result{Value: v, Output: out.String(), Steps: m.Steps()}, nil
}

// Debug executes the program under PositDebug/FPSanitizer shadow
// execution and returns the detections alongside the program result.
func (p *Program) Debug(cfg shadow.Config, fn string, args ...uint64) (*Result, error) {
	mod := p.Instrumented()
	return p.debugModule(mod, cfg, fn, args...)
}

// DebugPartial is Debug with selected functions left uninstrumented — the
// paper's incremental-deployment mode (§4.1): values written by skipped
// functions are detected at load time via the stored program-value check
// and re-initialize the shadow.
func (p *Program) DebugPartial(skip []string, cfg shadow.Config, fn string, args ...uint64) (*Result, error) {
	skipSet := make(map[string]bool, len(skip))
	for _, s := range skip {
		skipSet[s] = true
	}
	mod := instrument.Instrument(p.Module, instrument.Options{Skip: skipSet})
	return p.debugModule(mod, cfg, fn, args...)
}

func (p *Program) debugModule(mod *ir.Module, cfg shadow.Config, fn string, args ...uint64) (*Result, error) {
	rt, err := shadow.New(mod, cfg)
	if err != nil {
		return nil, err
	}
	m := interp.New(mod)
	m.Hooks = rt
	var out bytes.Buffer
	m.Out = &out
	v, err := m.Run(fn, args...)
	if err != nil {
		return nil, err
	}
	res := &Result{Value: v, Output: out.String(), Steps: m.Steps(), Summary: rt.Summary()}
	res.ShadowPrecision = cfg.Precision
	return res, nil
}

// DebugWithLimits executes under shadow execution with hardened execution
// limits — wall-clock timeout and step budget, reported as structured
// *interp.ResourceExhausted errors — and graceful degradation: when a run
// exceeds the configured shadow-memory budget (cfg.MaxShadowBytes) the run
// is retried at half the shadow precision, down to 64 bits, and the result
// is flagged Degraded rather than failing the run.
//
// wrap, when non-nil, decorates the shadow runtime's hooks before they are
// attached to the machine — the seam the fault injector plugs into. It is
// invoked once per attempt, so a deterministic decorator replays the same
// schedule on a degraded retry.
func (p *Program) DebugWithLimits(cfg shadow.Config, lim interp.Limits, wrap func(interp.Hooks) interp.Hooks, fn string, args ...uint64) (*Result, error) {
	mod := p.Instrumented()
	requested := cfg.Precision
	for {
		rt, err := shadow.New(mod, cfg)
		if err != nil {
			return nil, err
		}
		m := interp.New(mod)
		if wrap != nil {
			m.Hooks = wrap(rt)
		} else {
			m.Hooks = rt
		}
		var out bytes.Buffer
		m.Out = &out
		v, err := m.RunWithLimits(fn, lim, args...)
		if err != nil {
			var re *interp.ResourceExhausted
			if errors.As(err, &re) && re.Resource == interp.ResShadowMemory && cfg.Precision > shadow.MinPrecision {
				cfg.Precision /= 2
				if cfg.Precision < shadow.MinPrecision {
					cfg.Precision = shadow.MinPrecision
				}
				continue
			}
			return nil, err
		}
		res := &Result{Value: v, Output: out.String(), Steps: m.Steps(), Summary: rt.Summary()}
		res.ShadowPrecision = cfg.Precision
		res.Degraded = cfg.Precision != requested
		return res, nil
	}
}

// Debugger is a reusable shadow-execution session: one runtime and one
// machine kept warm across runs. After the first run, the shadow-memory
// trie, frame pools, register frames and big.Float mantissas are all
// reused in place, so repeated runs of the same program — a fault-injection
// campaign worker, a sweep repetition — execute with no per-run setup
// allocation. Not safe for concurrent use; parallel callers hold one
// Debugger per worker (see parallel.MapWorker).
type Debugger struct {
	prog *Program
	cfg  shadow.Config
	rt   *shadow.Runtime
	m    *interp.Machine
	out  bytes.Buffer
}

// NewDebugger builds a warm-reusable session for the program. The
// instrumented module is built (and cached on the Program) here, so
// concurrent workers can construct Debuggers only after one call has
// populated the cache — or simply construct them sequentially, as
// parallel.MapWorker does.
func (p *Program) NewDebugger(cfg shadow.Config) (*Debugger, error) {
	mod := p.Instrumented()
	rt, err := shadow.New(mod, cfg)
	if err != nil {
		return nil, err
	}
	m := interp.New(mod)
	d := &Debugger{prog: p, cfg: cfg, rt: rt, m: m}
	m.Out = &d.out
	return d, nil
}

// DebugWithLimits runs the session's program like Program.DebugWithLimits —
// same limits, hook decoration and graceful degradation semantics — but on
// the warm runtime and machine. Degraded retries run on transient runtimes
// at the reduced precision; the session itself stays at the requested
// precision, so one budget-tripping run does not degrade subsequent ones.
func (d *Debugger) DebugWithLimits(lim interp.Limits, wrap func(interp.Hooks) interp.Hooks, fn string, args ...uint64) (*Result, error) {
	if wrap != nil {
		d.m.Hooks = wrap(d.rt)
	} else {
		d.m.Hooks = d.rt
	}
	d.out.Reset()
	v, err := d.m.RunWithLimits(fn, lim, args...)
	if err != nil {
		var re *interp.ResourceExhausted
		if errors.As(err, &re) && re.Resource == interp.ResShadowMemory && d.cfg.Precision > shadow.MinPrecision {
			cfg := d.cfg
			cfg.Precision /= 2
			if cfg.Precision < shadow.MinPrecision {
				cfg.Precision = shadow.MinPrecision
			}
			res, err := d.prog.DebugWithLimits(cfg, lim, wrap, fn, args...)
			if res != nil {
				res.Degraded = true
			}
			return res, err
		}
		return nil, err
	}
	res := &Result{Value: v, Output: d.out.String(), Steps: d.m.Steps(), Summary: d.rt.Summary()}
	res.ShadowPrecision = d.cfg.Precision
	return res, nil
}

// DebugHerbgrind executes under the Herbgrind-style baseline runtime
// (per-dynamic-op trace metadata) for the §5.4 comparison. It returns the
// result and the number of trace nodes the run accumulated.
func (p *Program) DebugHerbgrind(precision uint, fn string, args ...uint64) (*Result, int, error) {
	mod := p.Instrumented()
	rt := herbgrind.New(mod, precision)
	m := interp.New(mod)
	m.Hooks = rt
	var out bytes.Buffer
	m.Out = &out
	v, err := m.Run(fn, args...)
	if err != nil {
		return nil, 0, err
	}
	return &Result{Value: v, Output: out.String(), Steps: m.Steps()}, rt.TraceNodes(), nil
}

// P32Arg encodes a float64 as a ⟨32,2⟩ posit argument.
func P32Arg(f float64) uint64 { return uint64(posit.Config32.FromFloat64(f)) }

// P16Arg encodes a float64 as a ⟨16,1⟩ posit argument.
func P16Arg(f float64) uint64 { return uint64(posit.Config16.FromFloat64(f)) }

// F64Arg encodes a float64 argument.
func F64Arg(f float64) uint64 { return interp.FromFloat64(ir.F64, f) }

// F32Arg encodes a float32 argument.
func F32Arg(f float64) uint64 { return interp.FromFloat64(ir.F32, f) }

// I64Arg encodes an int64 argument.
func I64Arg(v int64) uint64 { return uint64(v) }
