// Package positdebug is a Go reproduction of "Debugging and Detecting
// Numerical Errors in Computation with Posits" (Chowdhary, Lim,
// Nagarakatte; PLDI 2020): PositDebug, a compile-time instrumentation that
// shadow-executes posit programs with high-precision values to detect
// catastrophic cancellation, precision loss, saturation, NaR exceptions,
// branch flips, wrong integer casts and wrong outputs — and FPSanitizer,
// the same metadata design applied to IEEE floating-point programs.
//
// The library compiles programs written in PCL (a small C-like numerical
// language; see internal/lang), lowers them to a register IR, optionally
// rewrites FP types to posits with the refactorer, instruments the IR with
// shadow instructions, and executes on an interpreter whose shadow hooks
// implement the paper's constant-size-metadata runtime.
//
// Quick start:
//
//	prog, err := positdebug.Compile(src)      // posit or FP source
//	res, err := prog.Exec("main")             // shadow execution, defaults
//	fmt.Println(res.Summary)                   // detections
//	for _, r := range res.Summary.Reports {    // DAGs per error
//	    fmt.Println(r)
//	}
//
// Exec takes functional options — WithShadow, WithSkip, WithLimits,
// WithHooksWrapper, WithTrace, WithMetrics, WithHerbgrind, WithBaseline,
// WithArgs — so cross-cutting concerns compose instead of multiplying
// entry points. Warm sessions (Program.Session / Debugger.Exec) accept the
// same options. The Debug* methods remain as deprecated wrappers.
package positdebug

import (
	"bytes"
	"fmt"

	"positdebug/internal/codegen"
	"positdebug/internal/instrument"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/lang"
	"positdebug/internal/posit"
	"positdebug/internal/shadow/oracle"
	"positdebug/internal/refactor"
	"positdebug/internal/shadow"
)

// Program is a compiled PCL program, ready to run uninstrumented
// (baseline) or under shadow execution.
type Program struct {
	Source  string
	Checked *lang.Checked
	Module  *ir.Module // uninstrumented IR

	instrumented *ir.Module
}

// Compile parses, type-checks, lowers and verifies a PCL source.
func Compile(src string) (*Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("positdebug: %w", err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("positdebug: %w", err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		return nil, fmt.Errorf("positdebug: %w", err)
	}
	if err := mod.Verify(); err != nil {
		return nil, fmt.Errorf("positdebug: internal error: %w", err)
	}
	return &Program{Source: src, Checked: chk, Module: mod}, nil
}

// RefactorToPosit rewrites an FP program source into a ⟨32,2⟩ posit
// program, like the paper's clang-based refactorer.
func RefactorToPosit(src string) (string, error) {
	return refactor.Source(src, refactor.Options{})
}

// Instrumented returns (and caches) the shadow-instrumented module.
func (p *Program) Instrumented() *ir.Module {
	if p.instrumented == nil {
		p.instrumented = instrument.Instrument(p.Module, instrument.Options{})
	}
	return p.instrumented
}

// SetSourceName names the program's source for reports and profiles: PCL
// has no file system, so positions render as name:line:col with whatever
// the caller passes — a workload name ("polybench/gemm"), a source hash
// (the server uses one), a file path. Call before the first run; the name
// is stamped into both the module and any already-instrumented copy.
func (p *Program) SetSourceName(name string) {
	p.Module.Source = name
	if p.instrumented != nil {
		p.instrumented.Source = name
	}
}

// Result carries a run's outcome.
type Result struct {
	Value   uint64          // raw bit-pattern result of the entry function
	Output  string          // everything the program printed
	Steps   int64           // instructions executed
	Summary *shadow.Summary // nil for baseline and Herbgrind runs

	// Degraded marks runs that exceeded the shadow-memory budget and were
	// automatically retried at a reduced precision.
	Degraded bool
	// ShadowPrecision is the nominal significand precision the run finally
	// completed at: the configured bigfp precision, or the selected
	// oracle's fixed width (106 for dd, 53 for residue).
	ShadowPrecision uint
	// ShadowOracle is the shadow-arithmetic backend the run used
	// (oracle.BigFP, oracle.DD or oracle.Residue); empty for baseline and
	// Herbgrind runs.
	ShadowOracle oracle.Kind
	// TraceNodes is the number of trace nodes a Herbgrind-baseline run
	// (WithHerbgrind) accumulated; 0 otherwise.
	TraceNodes int
}

// P32 decodes the result value as a ⟨32,2⟩ posit.
func (r *Result) P32() float64 { return posit.Config32.ToFloat64(posit.Bits(r.Value)) }

// F64 decodes the result value as a float64.
func (r *Result) F64() float64 { return interp.ToFloat64(ir.F64, r.Value) }

// I64 decodes the result value as an int64.
func (r *Result) I64() int64 { return int64(r.Value) }

// Run executes the uninstrumented program (the baseline of every
// experiment in the paper's evaluation). Equivalent to
// Exec(fn, WithBaseline(), WithArgs(args...)).
func (p *Program) Run(fn string, args ...uint64) (*Result, error) {
	return p.Exec(fn, WithBaseline(), WithArgs(args...))
}

// Debug executes the program under PositDebug/FPSanitizer shadow
// execution and returns the detections alongside the program result.
//
// Deprecated: use Exec(fn, WithShadow(cfg), WithArgs(args...)).
func (p *Program) Debug(cfg shadow.Config, fn string, args ...uint64) (*Result, error) {
	return p.Exec(fn, WithShadow(cfg), WithArgs(args...))
}

// DebugPartial is Debug with selected functions left uninstrumented — the
// paper's incremental-deployment mode (§4.1).
//
// Deprecated: use Exec(fn, WithShadow(cfg), WithSkip(skip...), WithArgs(args...)).
func (p *Program) DebugPartial(skip []string, cfg shadow.Config, fn string, args ...uint64) (*Result, error) {
	return p.Exec(fn, WithShadow(cfg), WithSkip(skip...), WithArgs(args...))
}

// DebugWithLimits executes under shadow execution with hardened execution
// limits and graceful precision degradation.
//
// Deprecated: use Exec(fn, WithShadow(cfg), WithLimits(lim),
// WithHooksWrapper(wrap), WithArgs(args...)).
func (p *Program) DebugWithLimits(cfg shadow.Config, lim interp.Limits, wrap func(interp.Hooks) interp.Hooks, fn string, args ...uint64) (*Result, error) {
	return p.Exec(fn, WithShadow(cfg), WithLimits(lim), WithHooksWrapper(wrap), WithArgs(args...))
}

// Debugger is a reusable shadow-execution session: one runtime and one
// machine kept warm across runs. After the first run, the shadow-memory
// trie, frame pools, register frames and big.Float mantissas are all
// reused in place, so repeated runs of the same program — a fault-injection
// campaign worker, a sweep repetition — execute with no per-run setup
// allocation. Not safe for concurrent use; parallel callers hold one
// Debugger per worker (see parallel.MapWorker). Build one with
// Program.Session and run with Debugger.Exec.
type Debugger struct {
	prog *Program
	cfg  shadow.Config
	mod  *ir.Module
	rt   *shadow.Runtime
	m    *interp.Machine
	out  bytes.Buffer

	// sampleN and sampler carry the session's sampled-shadow state: the
	// stride (WithSampling) and the warm decorator, rebuilt lazily when a
	// per-run option rebinds the profile collector or the stride.
	sampleN int64
	sampler *interp.Sampling
}

// NewDebugger builds a warm-reusable session for the program.
//
// Deprecated: use Session(WithShadow(cfg)).
func (p *Program) NewDebugger(cfg shadow.Config) (*Debugger, error) {
	return p.Session(WithShadow(cfg))
}

// DebugWithLimits runs the session's program with limits, hook decoration
// and graceful degradation on the warm runtime and machine.
//
// Deprecated: use Exec(fn, WithLimits(lim), WithHooksWrapper(wrap),
// WithArgs(args...)).
func (d *Debugger) DebugWithLimits(lim interp.Limits, wrap func(interp.Hooks) interp.Hooks, fn string, args ...uint64) (*Result, error) {
	return d.Exec(fn, WithLimits(lim), WithHooksWrapper(wrap), WithArgs(args...))
}

// DebugHerbgrind executes under the Herbgrind-style baseline runtime
// (per-dynamic-op trace metadata) for the §5.4 comparison. It returns the
// result and the number of trace nodes the run accumulated.
//
// Deprecated: use Exec(fn, WithHerbgrind(precision), WithArgs(args...))
// and read Result.TraceNodes.
func (p *Program) DebugHerbgrind(precision uint, fn string, args ...uint64) (*Result, int, error) {
	res, err := p.Exec(fn, WithHerbgrind(precision), WithArgs(args...))
	if err != nil {
		return nil, 0, err
	}
	return res, res.TraceNodes, nil
}

// P32Arg encodes a float64 as a ⟨32,2⟩ posit argument.
func P32Arg(f float64) uint64 { return uint64(posit.Config32.FromFloat64(f)) }

// P16Arg encodes a float64 as a ⟨16,1⟩ posit argument.
func P16Arg(f float64) uint64 { return uint64(posit.Config16.FromFloat64(f)) }

// F64Arg encodes a float64 argument.
func F64Arg(f float64) uint64 { return interp.FromFloat64(ir.F64, f) }

// F32Arg encodes a float32 argument.
func F32Arg(f float64) uint64 { return interp.FromFloat64(ir.F32, f) }

// I64Arg encodes an int64 argument.
func I64Arg(v int64) uint64 { return uint64(v) }
