package positdebug_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/shadow"
)

// TestInstrumentationTransparency is a differential fuzz test over
// randomly generated PCL programs: shadow execution must be a pure
// observer — the instrumented program's result and printed output must be
// bit-identical to the uninstrumented run, for posit and FP programs
// alike, across shadow precisions, with and without tracing.
func TestInstrumentationTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 120; trial++ {
		typ := []string{"p32", "p16", "f64", "f32"}[rng.Intn(4)]
		src := randomProgram(rng, typ)
		prog, err := positdebug.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		base, err := prog.Run("main")
		if err != nil {
			t.Fatalf("trial %d: baseline: %v\n%s", trial, err, src)
		}
		for _, cfg := range []shadow.Config{
			{Precision: 128, Tracing: true, MaxReports: 2},
			{Precision: 256, Tracing: false, MaxReports: 2},
		} {
			res, err := prog.Debug(cfg, "main")
			if err != nil {
				t.Fatalf("trial %d: shadowed: %v\n%s", trial, err, src)
			}
			if res.Value != base.Value {
				t.Fatalf("trial %d: instrumentation changed the result: %#x vs %#x\n%s",
					trial, res.Value, base.Value, src)
			}
			if res.Output != base.Output {
				t.Fatalf("trial %d: instrumentation changed the output:\n%q\nvs\n%q\n%s",
					trial, res.Output, base.Output, src)
			}
		}
	}
}

// randomProgram emits a small single-function numeric program: a handful
// of variables updated through random arithmetic, array traffic, branches
// and a bounded loop, printing and returning a value.
func randomProgram(rng *rand.Rand, typ string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "var arr: [8]%s;\n\n", typ)
	fmt.Fprintf(&sb, "func main(): %s {\n", typ)
	vars := []string{"a", "b", "c"}
	for _, v := range vars {
		fmt.Fprintf(&sb, "\tvar %s: %s = %s;\n", v, typ, randomLiteral(rng))
	}
	fmt.Fprintf(&sb, "\tfor (var i: i64 = 0; i < 8; i += 1) {\n")
	fmt.Fprintf(&sb, "\t\tarr[i] = %s * a + b;\n", randomLiteral(rng))
	fmt.Fprintf(&sb, "\t}\n")
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		v := vars[rng.Intn(len(vars))]
		fmt.Fprintf(&sb, "\t%s = %s;\n", v, randomExpr(rng, vars, 0))
	}
	// A data-dependent branch.
	fmt.Fprintf(&sb, "\tif (a %s b) {\n\t\tc = c + arr[2];\n\t} else {\n\t\tc = c - arr[3];\n\t}\n",
		[]string{"<", "<=", ">", ">=", "==", "!="}[rng.Intn(6)])
	// A reduction over the array.
	fmt.Fprintf(&sb, "\tvar s: %s = 0.0;\n", typ)
	fmt.Fprintf(&sb, "\tfor (var i: i64 = 0; i < 8; i += 1) {\n\t\ts = s + arr[i];\n\t}\n")
	fmt.Fprintf(&sb, "\tprint(s);\n\tprint(c);\n")
	fmt.Fprintf(&sb, "\treturn s + c;\n}\n")
	return sb.String()
}

func randomExpr(rng *rand.Rand, vars []string, depth int) string {
	if depth > 2 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return randomLiteral(rng)
	}
	op := []string{"+", "-", "*", "/"}[rng.Intn(4)]
	l := randomExpr(rng, vars, depth+1)
	r := randomExpr(rng, vars, depth+1)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("sqrt(abs(%s %s %s))", l, op, r)
	case 1:
		return fmt.Sprintf("fma(%s, %s, %s)", l, r, vars[rng.Intn(len(vars))])
	default:
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}
}

func randomLiteral(rng *rand.Rand) string {
	mant := rng.Intn(1<<12) + 1
	exp := rng.Intn(13) - 6
	v := float64(mant)
	for e := exp; e > 0; e-- {
		v *= 2
	}
	for e := exp; e < 0; e++ {
		v /= 2
	}
	if rng.Intn(2) == 0 {
		v = -v
	}
	return fmt.Sprintf("%g", v)
}
