package positdebug_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/bytecode"
	"positdebug/internal/faultinject"
	"positdebug/internal/interp"
	"positdebug/internal/shadow"
)

// TestInstrumentationTransparency is a differential fuzz test over
// randomly generated PCL programs: shadow execution must be a pure
// observer — the instrumented program's result and printed output must be
// bit-identical to the uninstrumented run, for posit and FP programs
// alike, across shadow precisions, with and without tracing.
func TestInstrumentationTransparency(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 120; trial++ {
		typ := []string{"p32", "p16", "f64", "f32"}[rng.Intn(4)]
		src := randomProgram(rng, typ)
		prog, err := positdebug.Compile(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not compile: %v\n%s", trial, err, src)
		}
		base, err := prog.Run("main")
		if err != nil {
			t.Fatalf("trial %d: baseline: %v\n%s", trial, err, src)
		}
		for _, cfg := range []shadow.Config{
			{Precision: 128, Tracing: true, MaxReports: 2},
			{Precision: 256, Tracing: false, MaxReports: 2},
		} {
			res, err := prog.Exec("main", positdebug.WithShadow(cfg))
			if err != nil {
				t.Fatalf("trial %d: shadowed: %v\n%s", trial, err, src)
			}
			if res.Value != base.Value {
				t.Fatalf("trial %d: instrumentation changed the result: %#x vs %#x\n%s",
					trial, res.Value, base.Value, src)
			}
			if res.Output != base.Output {
				t.Fatalf("trial %d: instrumentation changed the output:\n%q\nvs\n%q\n%s",
					trial, res.Output, base.Output, src)
			}
		}
	}
}

// randomProgram emits a small single-function numeric program: a handful
// of variables updated through random arithmetic, array traffic, branches
// and a bounded loop, printing and returning a value.
func randomProgram(rng *rand.Rand, typ string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "var arr: [8]%s;\n\n", typ)
	fmt.Fprintf(&sb, "func main(): %s {\n", typ)
	vars := []string{"a", "b", "c"}
	for _, v := range vars {
		fmt.Fprintf(&sb, "\tvar %s: %s = %s;\n", v, typ, randomLiteral(rng))
	}
	fmt.Fprintf(&sb, "\tfor (var i: i64 = 0; i < 8; i += 1) {\n")
	fmt.Fprintf(&sb, "\t\tarr[i] = %s * a + b;\n", randomLiteral(rng))
	fmt.Fprintf(&sb, "\t}\n")
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		v := vars[rng.Intn(len(vars))]
		fmt.Fprintf(&sb, "\t%s = %s;\n", v, randomExpr(rng, vars, 0))
	}
	// A data-dependent branch.
	fmt.Fprintf(&sb, "\tif (a %s b) {\n\t\tc = c + arr[2];\n\t} else {\n\t\tc = c - arr[3];\n\t}\n",
		[]string{"<", "<=", ">", ">=", "==", "!="}[rng.Intn(6)])
	// A reduction over the array.
	fmt.Fprintf(&sb, "\tvar s: %s = 0.0;\n", typ)
	fmt.Fprintf(&sb, "\tfor (var i: i64 = 0; i < 8; i += 1) {\n\t\ts = s + arr[i];\n\t}\n")
	fmt.Fprintf(&sb, "\tprint(s);\n\tprint(c);\n")
	fmt.Fprintf(&sb, "\treturn s + c;\n}\n")
	return sb.String()
}

func randomExpr(rng *rand.Rand, vars []string, depth int) string {
	if depth > 2 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return randomLiteral(rng)
	}
	op := []string{"+", "-", "*", "/"}[rng.Intn(4)]
	l := randomExpr(rng, vars, depth+1)
	r := randomExpr(rng, vars, depth+1)
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("sqrt(abs(%s %s %s))", l, op, r)
	case 1:
		return fmt.Sprintf("fma(%s, %s, %s)", l, r, vars[rng.Intn(len(vars))])
	default:
		return fmt.Sprintf("(%s %s %s)", l, op, r)
	}
}

func randomLiteral(rng *rand.Rand) string {
	mant := rng.Intn(1<<12) + 1
	exp := rng.Intn(13) - 6
	v := float64(mant)
	for e := exp; e > 0; e-- {
		v *= 2
	}
	for e := exp; e < 0; e++ {
		v /= 2
	}
	if rng.Intn(2) == 0 {
		v = -v
	}
	return fmt.Sprintf("%g", v)
}

// FuzzInjector throws random fault models at randomly generated programs
// and asserts the hardened execution contract: no panic ever escapes (the
// machine converts them to structured errors), every run is bounded by its
// limits, and the same seed + model replays a byte-identical fault
// schedule and result.
func FuzzInjector(f *testing.F) {
	f.Add(int64(1), uint8(0), 0.01, int64(0), uint8(0xFF))
	f.Add(int64(42), uint8(1), 0.0, int64(17), uint8(0x03))
	f.Add(int64(-7), uint8(2), 1.0, int64(0), uint8(0x01))
	f.Add(int64(999), uint8(3), 0.5, int64(-3), uint8(0x30))
	f.Fuzz(func(t *testing.T, seed int64, kind uint8, rate float64, occ int64, ops uint8) {
		rng := rand.New(rand.NewSource(seed))
		typ := []string{"p32", "p16", "f64", "f32"}[rng.Intn(4)]
		src := randomProgram(rng, typ)
		prog, err := positdebug.Compile(src)
		if err != nil {
			t.Fatalf("generated program does not compile: %v\n%s", err, src)
		}
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			rate = 0
		}
		model := faultinject.Model{
			Kind:       faultinject.Kind(kind % 4),
			Rate:       math.Mod(rate, 1),
			Occurrence: occ % 500,
			Ops:        faultinject.OpClass(ops),
			BitPos:     -1,
		}
		cfg := shadow.Config{Precision: 128, MaxReports: 2}
		lim := interp.Limits{MaxSteps: 2_000_000, Timeout: 5 * time.Second}
		run := func() (*positdebug.Result, []faultinject.Record, error) {
			inj := faultinject.NewInjector(nil, model, seed)
			res, err := prog.Exec("main", positdebug.WithShadow(cfg), positdebug.WithLimits(lim),
				positdebug.WithHooksWrapper(func(h interp.Hooks) interp.Hooks {
					inj.Inner = h
					return inj
				}))
			return res, inj.Schedule(), err
		}
		res1, sched1, err1 := run()
		res2, sched2, err2 := run()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("determinism: errors differ: %v vs %v\n%s", err1, err2, src)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("determinism: error texts differ: %v vs %v", err1, err2)
			}
			return // bounded failure (trap / resource limit) is a valid outcome
		}
		if res1.Value != res2.Value || res1.Output != res2.Output {
			t.Fatalf("determinism: results differ: %#x/%q vs %#x/%q\n%s",
				res1.Value, res1.Output, res2.Value, res2.Output, src)
		}
		if !reflect.DeepEqual(sched1, sched2) {
			t.Fatalf("determinism: schedules differ:\n%v\nvs\n%v\n%s", sched1, sched2, src)
		}
	})
}

// FuzzCompile fuzzes the bytecode pipeline end to end over randomly
// generated PCL programs: the compiler must never emit a chunk the verifier
// rejects (fused or not), the chunk must survive an encode/decode roundtrip,
// and the VM must execute the verifier-accepted chunk without panicking —
// producing exactly the tree-walker's result, output, and detection
// summary.
func FuzzCompile(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(42), uint8(1))
	f.Add(int64(-7), uint8(2))
	f.Add(int64(999), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, typPick uint8) {
		rng := rand.New(rand.NewSource(seed))
		typ := []string{"p32", "p16", "f64", "f32"}[int(typPick)%4]
		src := randomProgram(rng, typ)
		prog, err := positdebug.Compile(src)
		if err != nil {
			t.Fatalf("generated program does not compile: %v\n%s", err, src)
		}
		for _, fuse := range []bool{false, true} {
			ch, err := bytecode.Compile(prog.Instrumented(), bytecode.Options{Fuse: fuse})
			if err != nil {
				t.Fatalf("bytecode compile (fuse=%v): %v\n%s", fuse, err, src)
			}
			if err := bytecode.Verify(ch); err != nil {
				t.Fatalf("compiler emitted a chunk the verifier rejects (fuse=%v): %v\n%s\n%s",
					fuse, err, ch.Disasm(), src)
			}
			re, err := bytecode.Decode(ch.Encode())
			if err != nil {
				t.Fatalf("encode/decode roundtrip (fuse=%v): %v\n%s", fuse, err, src)
			}
			if err := bytecode.Verify(re); err != nil {
				t.Fatalf("roundtripped chunk no longer verifies (fuse=%v): %v\n%s", fuse, err, src)
			}
		}
		cfg := shadow.Config{Precision: 128, Tracing: true, MaxReports: 2}
		lim := interp.Limits{MaxSteps: 2_000_000, Timeout: 5 * time.Second}
		run := func(bk backend.Kind) (*positdebug.Result, error) {
			return prog.Exec("main", positdebug.WithBackend(bk),
				positdebug.WithShadow(cfg), positdebug.WithLimits(lim))
		}
		tw, errTW := run(backend.Treewalk)
		vm, errVM := run(backend.VM)
		if (errTW == nil) != (errVM == nil) {
			t.Fatalf("backends disagree on failure: treewalk=%v vm=%v\n%s", errTW, errVM, src)
		}
		if errTW != nil {
			if errTW.Error() != errVM.Error() {
				t.Fatalf("backends disagree on error text:\n  treewalk: %v\n  vm:       %v\n%s",
					errTW, errVM, src)
			}
			return // bounded failure, identically reported — a valid outcome
		}
		if tw.Value != vm.Value || tw.Output != vm.Output {
			t.Fatalf("backends diverged: %#x/%q vs %#x/%q\n%s",
				tw.Value, tw.Output, vm.Value, vm.Output, src)
		}
		if (tw.Summary == nil) != (vm.Summary == nil) {
			t.Fatalf("backends disagree on summary presence\n%s", src)
		}
		if tw.Summary != nil && tw.Summary.String() != vm.Summary.String() {
			t.Fatalf("backends diverged on detection summary:\n--- treewalk ---\n%s\n--- vm ---\n%s\n%s",
				tw.Summary, vm.Summary, src)
		}
	})
}
