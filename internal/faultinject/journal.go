package faultinject

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// journalVersion guards the on-disk format; bump it when the record layout
// changes so stale journals are rejected instead of misread.
const journalVersion = 1

// journalMeta pins the campaign a journal belongs to. Every parameter that
// influences a run's result is part of the fingerprint: resuming under
// different flags would splice results from two different experiments into
// one report, so OpenJournal rejects a mismatch outright.
type journalMeta struct {
	Version   int    `json:"version"`
	Workload  string `json:"workload"`
	N         int    `json:"n"`
	Arch      string `json:"arch"`
	Runs      int    `json:"runs"`
	Seed      int64  `json:"seed"`
	Model     string `json:"model"` // canonical dump of the fault model
	Timeout   int64  `json:"timeout_ns"`
	MaxSteps  int64  `json:"max_steps"`
	Precision uint   `json:"precision"`
	Oracle    string `json:"oracle,omitempty"` // non-bigfp shadow backend, if any
	Budget    int64  `json:"max_shadow_bytes"`
	Masked    int    `json:"masked_bits"`
}

func metaFor(cfg CampaignConfig) journalMeta {
	cfg = cfg.withDefaults()
	return journalMeta{
		Version:  journalVersion,
		Workload: cfg.Workload, N: cfg.N, Arch: cfg.Arch,
		Runs: cfg.Runs, Seed: cfg.Seed,
		Model:   fmt.Sprintf("%+v", cfg.Model),
		Timeout: int64(cfg.Timeout), MaxSteps: cfg.MaxSteps,
		Precision: cfg.Precision, Oracle: oracleLabel(cfg.Oracle),
		Budget: cfg.MaxShadowBytes,
		Masked: cfg.MaskedBits,
	}
}

// journalRecord is one JSONL line: a header (first line of every journal),
// one completed run, or one architecture's golden info (written by the
// fabric coordinator so a resume never re-runs the golden pass; readers
// that predate it skip unknown kinds).
type journalRecord struct {
	Kind   string       `json:"kind"` // "header", "run", "golden" or "member"
	Meta   *journalMeta `json:"meta,omitempty"`
	Arch   string       `json:"arch,omitempty"`
	Result *RunResult   `json:"result,omitempty"`
	Golden *ArchInfo    `json:"golden,omitempty"`
	// Membership-event fields ("member" records): which worker joined or
	// left the fleet mid-campaign, and why. Forensic only — resume ignores
	// them (load skips unknown/irrelevant kinds), but a post-mortem of a
	// churned campaign can reconstruct exactly when the fleet changed
	// relative to the run records around it.
	Event  string `json:"event,omitempty"`
	URL    string `json:"url,omitempty"`
	Reason string `json:"reason,omitempty"`
}

type journalKey struct {
	arch string
	run  int
}

// Journal is a crash-safe write-ahead log for fault-injection campaigns:
// one JSONL record per completed run, fsync'd before the run is reported
// upward, so a campaign killed at any instant loses at most the runs still
// in flight. Reopening the same path resumes: journaled runs are replayed
// from disk instead of re-executed, and because every run is a pure
// function of (config, run index), the resumed report is byte-identical to
// an uninterrupted one.
//
// A torn final record (the process died mid-write) is detected on open and
// truncated away before appending resumes, so the log stays parseable
// forever. Safe for concurrent use by campaign workers.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	enc       *json.Encoder
	completed map[journalKey]RunResult
	golden    map[string]ArchInfo
}

// OpenJournal opens (or creates) the journal at path for the given
// campaign. A fresh file is stamped with the campaign's parameter
// fingerprint; an existing one must carry a matching fingerprint, and its
// completed runs become the resume set. The caller owns Close.
func OpenJournal(path string, cfg CampaignConfig) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, completed: map[journalKey]RunResult{}, golden: map[string]ArchInfo{}}
	meta := metaFor(cfg)
	raw, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	if len(raw) == 0 {
		if err := j.append(journalRecord{Kind: "header", Meta: &meta}); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	good, err := j.load(raw, meta)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop a torn tail (crash mid-write) so appends produce valid JSONL.
	if good < int64(len(raw)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// load parses the journal bytes, validates the header against meta, fills
// the resume set, and returns the offset of the first byte past the last
// intact record.
func (j *Journal) load(raw []byte, meta journalMeta) (int64, error) {
	var good int64
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(nil, 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn or corrupt record: resume from the last good one
		}
		if first {
			if rec.Kind != "header" || rec.Meta == nil {
				return 0, fmt.Errorf("faultinject: journal has no header record")
			}
			if *rec.Meta != meta {
				return 0, fmt.Errorf("faultinject: journal belongs to a different campaign (recorded %+v, want %+v)", *rec.Meta, meta)
			}
			first = false
		} else if rec.Kind == "run" && rec.Result != nil {
			j.completed[journalKey{rec.Arch, rec.Result.Run}] = *rec.Result
		} else if rec.Kind == "golden" && rec.Golden != nil {
			j.golden[rec.Arch] = *rec.Golden
		}
		good += int64(len(line)) + 1 // the scanner consumed the trailing \n
	}
	if first {
		return 0, fmt.Errorf("faultinject: journal has no header record")
	}
	return good, nil
}

// append writes one record and forces it to stable storage. The fsync per
// record is the crash-safety contract: once record returns, that run
// survives a kill -9.
func (j *Journal) append(rec journalRecord) error {
	if j.enc == nil {
		j.enc = json.NewEncoder(j.f)
	}
	if err := j.enc.Encode(rec); err != nil {
		return err
	}
	return j.f.Sync()
}

// record journals one completed run. Called concurrently by campaign
// workers; records land in completion order, which is irrelevant — resume
// keys on (arch, run).
func (j *Journal) record(arch string, rr RunResult) error {
	rr.events = nil // unexported anyway, but keep the stored value canonical
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.completed[journalKey{arch, rr.Run}]; ok {
		return nil
	}
	if err := j.append(journalRecord{Kind: "run", Arch: arch, Result: &rr}); err != nil {
		return err
	}
	j.completed[journalKey{arch, rr.Run}] = rr
	return nil
}

// lookup returns the journaled result for (arch, run), if any.
func (j *Journal) lookup(arch string, run int) (RunResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rr, ok := j.completed[journalKey{arch, run}]
	return rr, ok
}

// Record journals one completed run — the fabric coordinator's write path,
// identical to the in-process campaign's: fsync'd before returning,
// idempotent on (arch, run).
func (j *Journal) Record(arch string, rr RunResult) error { return j.record(arch, rr) }

// Lookup returns the journaled result for (arch, run), if any.
func (j *Journal) Lookup(arch string, run int) (RunResult, bool) { return j.lookup(arch, run) }

// RecordGolden journals one architecture's golden info so a resumed
// coordinator can rebuild the report without re-running the golden pass.
// Idempotent per architecture.
func (j *Journal) RecordGolden(arch string, info ArchInfo) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.golden[arch]; ok {
		return nil
	}
	if err := j.append(journalRecord{Kind: "golden", Arch: arch, Golden: &info}); err != nil {
		return err
	}
	j.golden[arch] = info
	return nil
}

// RecordMember journals one fleet-membership event (a worker joining or
// leaving mid-campaign) into the WAL's forensic record. Membership events
// never affect resume — they interleave with run records purely so an
// operator can line up fleet churn against result history.
func (j *Journal) RecordMember(event, url, reason string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(journalRecord{Kind: "member", Event: event, URL: url, Reason: reason})
}

// GoldenInfo returns the journaled golden info for an architecture, if any.
func (j *Journal) GoldenInfo(arch string) (ArchInfo, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	info, ok := j.golden[arch]
	return info, ok
}

// Resumed reports how many runs the journal replayed from a previous
// invocation (the size of the resume set at open time is not tracked
// separately: call this before the campaign starts appending).
func (j *Journal) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.completed)
}

// Close releases the underlying file. The journal is left on disk: a
// completed campaign's journal simply replays every run if reused.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
