package faultinject

import (
	"encoding/json"
	"runtime"
	"testing"
)

// TestCampaignParallelDeterminism: the campaign JSON is byte-identical
// whether the fault-injected runs execute on one worker or are sharded
// across four — the contract behind internal/parallel's index-merged
// results and the per-run splitmix64 seed partitioning. GOMAXPROCS is set
// explicitly so the test is meaningful on single-core CI runners too.
func TestCampaignParallelDeterminism(t *testing.T) {
	cfg := CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 12, Seed: 7,
		KeepSchedules: true,
	}
	runAt := func(procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		rep, err := RunCampaign(cfg)
		if err != nil {
			t.Fatalf("campaign at GOMAXPROCS=%d: %v", procs, err)
		}
		j, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(j)
	}
	seq := runAt(1)
	par := runAt(4)
	if seq != par {
		t.Fatalf("parallel campaign diverged from sequential:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=4 ---\n%s", seq, par)
	}
}
