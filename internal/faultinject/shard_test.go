package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func shardReportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardAssembleByteIdentical is the fabric's core determinism claim at
// the package level: runs sharded into arbitrary ranges, executed
// independently (shards even overlap to mimic hedged duplicates), then
// assembled, produce the exact bytes of a sequential single-process
// campaign.
func TestShardAssembleByteIdentical(t *testing.T) {
	cfg := CampaignConfig{Workload: "polybench/gemm", N: 8, Runs: 12, Seed: 42, Arch: "both"}

	seq, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := shardReportJSON(t, seq)

	var shards []*ShardResult
	ranges := [][2]int{{0, 5}, {5, 9}, {9, 12}, {3, 7}} // last one overlaps: hedge duplicate
	for _, arch := range []string{"posit", "float"} {
		for _, r := range ranges {
			req := ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: arch, Lo: r[0], Hi: r[1]}
			sh, err := RunShard(context.Background(), req)
			if err != nil {
				t.Fatalf("shard %s[%d,%d): %v", arch, r[0], r[1], err)
			}
			shards = append(shards, sh)
		}
	}
	got, err := AssembleReport(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, shardReportJSON(t, got)) {
		t.Fatalf("assembled report differs from sequential oracle:\nseq: %s\nfab: %s", want, shardReportJSON(t, got))
	}
}

// TestShardGoldenProbe: Lo == Hi runs only the golden pass and the probe's
// ArchInfo matches what full shards report.
func TestShardGoldenProbe(t *testing.T) {
	cfg := CampaignConfig{Workload: "polybench/gemm", N: 8, Runs: 4, Seed: 7}
	probe, err := RunShard(context.Background(), ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 2, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.Results) != 0 {
		t.Fatalf("golden probe returned %d results", len(probe.Results))
	}
	full, err := RunShard(context.Background(), ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 0, Hi: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Golden.equal(full.Golden) {
		t.Fatalf("probe golden %+v != full-shard golden %+v", probe.Golden, full.Golden)
	}
}

func TestShardRequestValidate(t *testing.T) {
	cfg := CampaignConfig{Workload: "polybench/gemm", Runs: 10, Seed: 1}
	cases := []struct {
		name string
		req  ShardRequest
		ok   bool
	}{
		{"good", ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 0, Hi: 10}, true},
		{"version-skew", ShardRequest{Version: ShardVersion + 1, Config: cfg.Wire(), Arch: "posit", Lo: 0, Hi: 1}, false},
		{"bad-arch", ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "both", Lo: 0, Hi: 1}, false},
		{"hi-past-runs", ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 0, Hi: 11}, false},
		{"inverted", ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 5, Hi: 4}, false},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestAssembleReportRejects: missing coverage, conflicting duplicates and
// golden skew must all fail loudly — a silent pick would mask a
// determinism violation somewhere in the fleet.
func TestAssembleReportRejects(t *testing.T) {
	cfg := CampaignConfig{Workload: "polybench/gemm", N: 8, Runs: 4, Seed: 3}
	sh, err := RunShard(context.Background(), ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 0, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := AssembleReport(cfg, []*ShardResult{sh}); err == nil {
		t.Fatal("missing run 3 not rejected")
	}

	rest, err := RunShard(context.Background(), ShardRequest{Version: ShardVersion, Config: cfg.Wire(), Arch: "posit", Lo: 3, Hi: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssembleReport(cfg, []*ShardResult{sh, rest}); err != nil {
		t.Fatalf("complete coverage rejected: %v", err)
	}

	skewed := *rest
	skewed.Golden.Candidates++
	if _, err := AssembleReport(cfg, []*ShardResult{sh, &skewed}); err == nil {
		t.Fatal("golden skew not rejected")
	}

	conflict := *rest
	conflict.Results = append([]RunResult(nil), rest.Results...)
	conflict.Results[0].ErrBits++
	conflict.Golden = sh.Golden
	if _, err := AssembleReport(cfg, []*ShardResult{sh, rest, &conflict}); err == nil {
		t.Fatal("conflicting duplicate run not rejected")
	}
}

// TestWireConfigRoundTrip: the −1 MaskedBits sentinel and every other
// result-determining field must survive coordinator→worker serialization.
func TestWireConfigRoundTrip(t *testing.T) {
	cfg := CampaignConfig{
		Workload: "polybench/gemm", N: 8, Arch: "both", Runs: 50, Seed: 99,
		Model:      Model{Kind: MultiBitFlip, FlipBits: 3, BitPos: 7, Ops: ClassArith | ClassLoad, InstID: 4, Occurrence: 2, Rate: 0.5},
		MaskedBits: -1, KeepSchedules: true,
	}
	b, err := json.Marshal(cfg.Wire())
	if err != nil {
		t.Fatal(err)
	}
	var w WireConfig
	if err := json.Unmarshal(b, &w); err != nil {
		t.Fatal(err)
	}
	got := w.Campaign()
	if got.MaskedBits != -1 || got.Model != cfg.Model || got.Workload != cfg.Workload ||
		got.Seed != cfg.Seed || got.Runs != cfg.Runs || !got.KeepSchedules {
		t.Fatalf("round trip mangled config: %+v vs %+v", got, cfg)
	}
}
