package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/obs"
	"positdebug/internal/parallel"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
	"positdebug/internal/ulp"
	"positdebug/internal/workloads"
)

// Outcome classifies one fault-injected run against the golden run, using
// the shadow oracle for detection (the related work's resilience taxonomy:
// masked / SDC / detected / crashed / hung).
type Outcome string

// Outcomes.
const (
	// OutcomeMasked: the final value stayed within the masked threshold of
	// the golden value and the oracle raised nothing new.
	OutcomeMasked Outcome = "masked"
	// OutcomeSDC: the final value is wrong and no detector fired — silent
	// data corruption, the dangerous bucket.
	OutcomeSDC Outcome = "sdc"
	// OutcomeDetected: PositDebug's shadow oracle flagged the run
	// (cancellation, precision loss, NaR, branch flip, wrong output, …)
	// beyond the golden run's baseline detections.
	OutcomeDetected Outcome = "detected"
	// OutcomeCrashed: the run died with a trap or internal fault.
	OutcomeCrashed Outcome = "crashed"
	// OutcomeHung: the run exceeded its wall-clock or step budget.
	OutcomeHung Outcome = "hung"
)

// CampaignConfig describes one resilience campaign.
type CampaignConfig struct {
	// Workload names the program: "polybench/<kernel>", "spec/<kernel>",
	// "suite/<program>", or a bare kernel name.
	Workload string
	// N overrides the kernel problem size (0 = a campaign-friendly size,
	// half the harness default).
	N int
	// Arch selects "posit", "float", or "both".
	Arch string
	// Runs is the number of fault-injected runs per architecture.
	Runs int
	// Seed drives every random choice; the whole campaign is a pure
	// function of it.
	Seed int64
	// Model is the fault model. With neither Occurrence nor Rate set, the
	// campaign injects exactly one fault per run at a uniformly drawn
	// dynamic site — the classic single-event-upset sweep.
	Model Model
	// Timeout bounds each run's wall clock (default 10s).
	Timeout time.Duration
	// MaxSteps bounds each run's instruction count (default 200M).
	MaxSteps int64
	// Precision is the bigfp shadow precision (default 256).
	Precision uint
	// Oracle selects the shadow-arithmetic backend (empty = bigfp, the
	// historical behavior; see internal/shadow/oracle). Campaigns run on a
	// cheap oracle classify against the same detection machinery at lower
	// shadow cost.
	Oracle oracle.Kind
	// MaxShadowBytes is the shadow-memory budget per run (0 = unlimited);
	// over-budget bigfp runs degrade 256→128→64 and are flagged degraded
	// (fixed-precision oracles surface the budget error instead).
	MaxShadowBytes int64
	// MaskedBits is the output-deviation threshold (in double-ULP error
	// bits vs the golden value) below which a run counts as masked.
	// 0 means the default of 10; −1 requires an exact output match.
	MaskedBits int
	// KeepSchedules embeds each run's fault schedule in the report.
	KeepSchedules bool
	// Trace, when set, receives the campaign's structured event stream:
	// campaign/arch framing, then per run its run-start, inject and
	// detection events (buffered per run and merged in run-index order) and
	// a closing run-outcome. The stream is byte-identical between
	// sequential and parallel executions of the same campaign.
	Trace obs.Sink
	// TraceWorkers additionally emits worker-start/worker-stop lifecycle
	// events. These depend on GOMAXPROCS and arrive in scheduling order, so
	// they are opt-in and excluded from the determinism guarantee.
	TraceWorkers bool
	// Metrics, when set, aggregates counters across all runs: shadow-oracle
	// detections by kind, shadowed ops, steps, and campaign outcomes
	// (pd_campaign_outcomes_total{outcome=...}).
	Metrics *obs.Registry
	// Journal, when set, write-ahead-logs every completed run (fsync'd per
	// record) and replays runs already journaled by a previous — possibly
	// killed — invocation of the same campaign, so the final report is
	// byte-identical to an uninterrupted run. Open one with OpenJournal;
	// its header pins the campaign parameters, so a journal from different
	// flags is rejected rather than silently mixed in. Trace events are not
	// journaled: resumed runs contribute no per-run events to Trace.
	Journal *Journal
	// Backend selects the execution engine (tree-walk interpreter or
	// bytecode VM) for the golden pass and every fault-injected run. The
	// two backends produce byte-identical campaign artifacts, so Backend is
	// deliberately excluded from the report JSON, the journal fingerprint,
	// and the fabric wire format: a journal or shard computed under one
	// backend composes cleanly with runs from the other.
	Backend backend.Kind `json:"-"`
}

// oracleLabel renders a non-default oracle kind for reports and journal
// records; bigfp (including the empty zero value) renders as "" so every
// pre-oracle artifact — JSON reports, journals, shard payloads — stays
// byte-identical.
func oracleLabel(k oracle.Kind) string {
	if k == "" || k == oracle.BigFP {
		return ""
	}
	return string(k)
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Arch == "" {
		c.Arch = "posit"
	}
	if c.Runs == 0 {
		c.Runs = 100
	}
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000_000
	}
	if c.Precision == 0 {
		c.Precision = 256
	}
	if c.MaskedBits == 0 {
		c.MaskedBits = 10
	} else if c.MaskedBits < 0 {
		c.MaskedBits = 0 // −1 sentinel: exact match required
	}
	if c.Model.BitPos == 0 {
		// Zero-value models draw the bit per injection; pinning bit 0
		// requires driving the Injector directly.
		c.Model.BitPos = -1
	}
	return c
}

// RunResult is one fault-injected run's record.
type RunResult struct {
	Run       int      `json:"run"`
	Seed      int64    `json:"seed"`
	Outcome   Outcome  `json:"outcome"`
	ErrBits   int      `json:"err_bits"`
	Detected  []string `json:"detected,omitempty"` // new detection kinds vs golden
	Degraded  bool     `json:"degraded"`
	Precision uint     `json:"precision"`
	Oracle    string   `json:"oracle,omitempty"` // non-bigfp shadow backend, if any
	Injected  int      `json:"injected"` // faults actually injected
	Schedule  []Record `json:"schedule,omitempty"`
	Error     string   `json:"error,omitempty"`

	// events is the run's buffered event stream (run-start, inject,
	// detection, run-end), merged into CampaignConfig.Trace in run-index
	// order by the campaign.
	events []obs.Event
}

// Totals aggregates one architecture's outcomes.
type Totals struct {
	Runs          int     `json:"runs"`
	Masked        int     `json:"masked"`
	SDC           int     `json:"sdc"`
	Detected      int     `json:"detected"`
	Crashed       int     `json:"crashed"`
	Hung          int     `json:"hung"`
	Degraded      int     `json:"degraded"`
	InjectedRuns  int     `json:"injected_runs"`
	DetectionRate float64 `json:"detection_rate"` // detected / (detected + sdc)
}

// ArchReport is one architecture's half of the campaign.
type ArchReport struct {
	Arch        string      `json:"arch"` // "posit" or "float"
	GoldenValue float64     `json:"golden_value"`
	GoldenKinds []string    `json:"golden_kinds,omitempty"` // baseline oracle detections
	Candidates  int64       `json:"candidates"`             // eligible injection events per run
	Results     []RunResult `json:"results"`
	Totals      Totals      `json:"totals"`
}

// Report is the aggregate posit-vs-float resilience report.
type Report struct {
	Workload  string       `json:"workload"`
	N         int          `json:"n"`
	Runs      int          `json:"runs"`
	Seed      int64        `json:"seed"`
	Model     string       `json:"model"`
	Precision uint         `json:"precision"`
	Oracle    string       `json:"oracle,omitempty"` // non-bigfp shadow backend, if any
	Arches    []ArchReport `json:"arches"`
}

// detectable are the oracle kinds compared against the golden baseline, in
// a fixed order for deterministic reports.
var detectable = []shadow.Kind{
	shadow.KindCancellation, shadow.KindPrecisionLoss, shadow.KindSaturation,
	shadow.KindNaR, shadow.KindBranchFlip, shadow.KindWrongCast,
	shadow.KindHighError, shadow.KindWrongOutput,
}

// ResolveWorkload returns the FP PCL source of a workload spec and the
// problem size used.
func ResolveWorkload(spec string, n int) (src string, size int, err error) {
	name := spec
	if i := strings.IndexByte(spec, '/'); i >= 0 {
		group := spec[:i]
		name = spec[i+1:]
		if group == "suite" {
			for _, p := range workloads.Suite() {
				if p.Name == name {
					return p.Source, 0, nil
				}
			}
			return "", 0, fmt.Errorf("faultinject: no suite program %q", name)
		}
		if group != "polybench" && group != "spec" {
			return "", 0, fmt.Errorf("faultinject: unknown workload group %q", group)
		}
	}
	k, ok := workloads.KernelByName(name)
	if !ok {
		return "", 0, fmt.Errorf("faultinject: unknown workload %q", spec)
	}
	if n <= 0 {
		// Campaign-friendly size: thousands of runs, not one figure.
		n = k.DefaultN / 2
		if n < 8 {
			n = 8
		}
	}
	return k.Source(n), n, nil
}

// RunCampaign executes the sweep: golden + calibration pass per
// architecture, then cfg.Runs fault-injected runs, each classified with
// the shadow oracle. Every run is bounded by the configured limits and
// recovers panics, so one poisoned run never kills the sweep.
func RunCampaign(cfg CampaignConfig) (*Report, error) {
	return RunCampaignContext(context.Background(), cfg)
}

// RunCampaignContext is RunCampaign governed by a context — the
// whole-campaign deadline and Ctrl-C path. Cancellation stops the sweep
// cooperatively: workers stop claiming new runs, the run in flight stops
// within one interpreter poll interval, and the campaign returns a
// *interp.Cancelled error (never a partial report). With a Journal
// attached, runs completed before the cancellation are already on disk and
// a later invocation resumes past them.
func RunCampaignContext(ctx context.Context, cfg CampaignConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	src, n, err := ResolveWorkload(cfg.Workload, cfg.N)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Workload: cfg.Workload, N: n, Runs: cfg.Runs, Seed: cfg.Seed,
		Model: cfg.Model.Kind.String(), Precision: cfg.Precision,
		Oracle: oracleLabel(cfg.Oracle),
	}

	var arches []string
	switch cfg.Arch {
	case "posit", "float":
		arches = []string{cfg.Arch}
	case "both":
		arches = []string{"posit", "float"}
	default:
		return nil, fmt.Errorf("faultinject: unknown arch %q (want posit|float|both)", cfg.Arch)
	}

	if cfg.Trace != nil {
		e := obs.NewEvent(obs.EvCampaignStart)
		e.Name = cfg.Workload
		e.Seed = cfg.Seed
		cfg.Trace.Emit(e)
	}
	for _, arch := range arches {
		ar, err := runArch(ctx, cfg, arch, src)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s: %w", arch, asCancelled(ctx, err))
		}
		rep.Arches = append(rep.Arches, *ar)
	}
	if cfg.Trace != nil {
		e := obs.NewEvent(obs.EvCampaignEnd)
		e.Name = cfg.Workload
		e.Seed = cfg.Seed
		cfg.Trace.Emit(e)
	}
	return rep, nil
}

// asCancelled normalizes a cancellation observed between runs (a bare
// context error from the worker pool) into the same structured
// *interp.Cancelled an interrupted hot loop produces, so callers switch on
// one type.
func asCancelled(ctx context.Context, err error) error {
	var c *interp.Cancelled
	if errors.As(err, &c) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &interp.Cancelled{Cause: context.Cause(ctx)}
	}
	return err
}

// archPrep is the output of the golden + calibration pass: everything the
// per-run loop needs, shared between the local campaign path (runArch) and
// the distributed shard path (RunShard) so both classify runs identically.
type archPrep struct {
	prog         *positdebug.Program
	scfg         shadow.Config
	lim          interp.Limits
	retType      ir.Type
	goldenF      float64
	goldenCounts map[shadow.Kind]int
	info         ArchInfo
}

// prepArch compiles the workload for one architecture and executes the
// golden + calibration pass: the counting injector observes the eligible
// event stream without corrupting anything.
func prepArch(ctx context.Context, cfg CampaignConfig, arch, fpSrc string) (*archPrep, error) {
	src := fpSrc
	if arch == "posit" && !strings.Contains(fpSrc, ": p32") {
		var err error
		src, err = positdebug.RefactorToPosit(fpSrc)
		if err != nil {
			return nil, err
		}
	}
	prog, err := positdebug.Compile(src)
	if err != nil {
		return nil, err
	}
	retType := ir.F64
	if fn := prog.Module.FuncByName("main"); fn != nil {
		retType = fn.Ret
	}

	scfg := shadow.DefaultConfig()
	scfg.Oracle = cfg.Oracle
	scfg.Precision = cfg.Precision
	scfg.MaxShadowBytes = cfg.MaxShadowBytes
	// Classification only reads Summary.Counts; keep a single report per
	// run so large sweeps don't accumulate them (0 would mean unlimited).
	scfg.MaxReports = 1
	scfg.Tracing = false
	scfg.Metrics = cfg.Metrics
	lim := interp.Limits{Timeout: cfg.Timeout, MaxSteps: cfg.MaxSteps}

	counter := NewInjector(nil, cfg.Model, 0)
	counter.CountOnly = true
	golden, err := prog.Exec("main",
		positdebug.WithContext(ctx), positdebug.WithBackend(cfg.Backend),
		positdebug.WithShadow(scfg), positdebug.WithLimits(lim),
		positdebug.WithHooksWrapper(func(h interp.Hooks) interp.Hooks {
			counter.Inner = h
			return counter
		}))
	if err != nil {
		return nil, fmt.Errorf("golden run: %w", err)
	}
	goldenF := decode(retType, golden.Value)
	goldenCounts := golden.Summary.Counts
	p := &archPrep{
		prog: prog, scfg: scfg, lim: lim, retType: retType,
		goldenF: goldenF, goldenCounts: goldenCounts,
		info: ArchInfo{
			GoldenValue: goldenF,
			GoldenKinds: kindNamesOf(goldenCounts, nil),
			Candidates:  counter.Candidates(),
		},
	}
	if p.info.Candidates == 0 {
		return nil, fmt.Errorf("workload has no injectable events")
	}
	return p, nil
}

// assembleArch turns one architecture's golden info plus its run results
// (in run-index order) into the final ArchReport. Both the local campaign
// and the distributed fabric merge go through this one function, which is
// what makes a report assembled from remote shards byte-identical to a
// sequential single-process run.
func assembleArch(cfg CampaignConfig, arch string, info ArchInfo, results []RunResult) *ArchReport {
	ar := &ArchReport{
		Arch:        arch,
		GoldenValue: info.GoldenValue,
		GoldenKinds: info.GoldenKinds,
		Candidates:  info.Candidates,
	}
	for _, rr := range results {
		rr.events = nil
		if !cfg.KeepSchedules {
			rr.Schedule = nil
		}
		ar.Results = append(ar.Results, rr)
		tallyOutcome(&ar.Totals, rr)
	}
	finishTotals(&ar.Totals)
	return ar
}

func runArch(ctx context.Context, cfg CampaignConfig, arch, fpSrc string) (*ArchReport, error) {
	p, err := prepArch(ctx, cfg, arch, fpSrc)
	if err != nil {
		return nil, err
	}
	prog, scfg, lim := p.prog, p.scfg, p.lim
	retType, goldenF, goldenCounts := p.retType, p.goldenF, p.goldenCounts
	if cfg.Trace != nil {
		e := obs.NewEvent(obs.EvArchStart)
		e.Arch = arch
		e.Program = fmt.Sprintf("%g", goldenF)
		cfg.Trace.Emit(e)
	}

	// Worker lifecycle events arrive live, in scheduling order, guarded by
	// a mutex — the one part of the stream that is GOMAXPROCS-dependent,
	// which is why it is opt-in (see CampaignConfig.TraceWorkers).
	var workerMu sync.Mutex
	workerN := 0
	newWorker := func() (*positdebug.Debugger, error) {
		d, err := prog.Session(positdebug.WithShadow(scfg), positdebug.WithBackend(cfg.Backend))
		if err == nil && cfg.TraceWorkers && cfg.Trace != nil {
			workerMu.Lock()
			e := obs.NewEvent(obs.EvWorkerStart)
			e.Worker = workerN
			e.Arch = arch
			workerN++
			cfg.Trace.Emit(e)
			workerMu.Unlock()
		}
		return d, err
	}

	// Fault-injected runs are pure functions of (cfg, run) — each run's
	// randomness comes from Mix(cfg.Seed, run), not from shared stream
	// state — so they shard freely across workers. Each worker keeps one
	// warm Debugger (runtime + machine) across all its runs; results are
	// merged by run index, making the report byte-identical to a
	// sequential sweep. When tracing, each run fills its own obs.Buffer,
	// drained below in run-index order — that is what keeps the event
	// stream byte-identical too. The golden run above already populated
	// the program's instrumented-module cache, so worker construction is
	// read-only on the Program.
	results, err := parallel.MapWorkerCtx(ctx, cfg.Runs, newWorker,
		func(d *positdebug.Debugger, run int) (RunResult, error) {
			if cfg.Journal != nil {
				if rr, ok := cfg.Journal.lookup(arch, run); ok {
					return rr, nil
				}
			}
			rr, err := oneRun(ctx, cfg, d, scfg, lim, retType, goldenF, goldenCounts, p.info.Candidates, run)
			if err != nil {
				return rr, err
			}
			if cfg.Journal != nil {
				if jerr := cfg.Journal.record(arch, rr); jerr != nil {
					return rr, fmt.Errorf("journal: %w", jerr)
				}
			}
			return rr, nil
		})
	if err != nil {
		return nil, err
	}
	if cfg.TraceWorkers && cfg.Trace != nil {
		// All workers have quiesced once MapWorker returns.
		for w := 0; w < workerN; w++ {
			e := obs.NewEvent(obs.EvWorkerStop)
			e.Worker = w
			e.Arch = arch
			cfg.Trace.Emit(e)
		}
	}
	for _, rr := range results {
		if cfg.Trace != nil {
			for _, e := range rr.events {
				e.Run = rr.Run
				cfg.Trace.Emit(e)
			}
			e := obs.NewEvent(obs.EvRunOutcome)
			e.Run = rr.Run
			e.Outcome = string(rr.Outcome)
			e.ErrBits = rr.ErrBits
			e.Seed = rr.Seed
			cfg.Trace.Emit(e)
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Counter(`pd_campaign_outcomes_total{outcome="` + string(rr.Outcome) + `"}`).Inc()
		}
	}
	return assembleArch(cfg, arch, p.info, results), nil
}

// oneRun executes and classifies a single fault-injected run. Panics from
// anywhere in the stack are recovered into a crashed outcome — the
// campaign-level belt to the machine's braces. A context cancellation is
// the one failure that is NOT classified: it is an external abort, so it
// propagates as the error and the campaign stops instead of recording a
// bogus outcome.
func oneRun(ctx context.Context, cfg CampaignConfig, dbg *positdebug.Debugger, scfg shadow.Config, lim interp.Limits,
	retType ir.Type, goldenF float64, goldenCounts map[shadow.Kind]int, candidates int64, run int) (rr RunResult, abort error) {

	runSeed := Mix(cfg.Seed, run)
	rr = RunResult{Run: run, Seed: runSeed, Precision: scfg.Precision, Oracle: oracleLabel(scfg.OracleKind())}
	defer func() {
		if r := recover(); r != nil {
			rr.Outcome = OutcomeCrashed
			rr.Error = fmt.Sprintf("panic: %v", r)
		}
	}()

	model := cfg.Model
	if model.Occurrence == 0 && model.Rate == 0 {
		// Single-event-upset mode: one fault at a uniformly drawn site.
		rng := splitmix64{state: uint64(runSeed)}
		model.Occurrence = 1 + int64(rng.next()%uint64(candidates))
		model.MaxInjections = 1
	}
	inj := NewInjector(nil, model, runSeed)

	opts := []positdebug.Option{
		positdebug.WithContext(ctx),
		positdebug.WithLimits(lim),
		positdebug.WithHooksWrapper(func(h interp.Hooks) interp.Hooks {
			inj.Inner = h
			return inj
		}),
	}
	var buf *obs.Buffer
	if cfg.Trace != nil {
		// Stage this run's events in a private buffer; the campaign merges
		// buffers in run-index order, stamping the run index.
		buf = &obs.Buffer{}
		inj.Events = buf
		opts = append(opts, positdebug.WithTrace(buf))
	}
	res, err := dbg.Exec("main", opts...)
	if buf != nil {
		rr.events = append([]obs.Event(nil), buf.Events()...)
	}
	rr.Injected = len(inj.Schedule())
	rr.Schedule = append([]Record(nil), inj.Schedule()...)
	if err != nil {
		var c *interp.Cancelled
		if errors.As(err, &c) {
			return rr, err
		}
		var re *interp.ResourceExhausted
		if asResource(err, &re) && (re.Resource == interp.ResSteps || re.Resource == interp.ResWallClock) {
			rr.Outcome = OutcomeHung
		} else {
			rr.Outcome = OutcomeCrashed
		}
		rr.Error = err.Error()
		return rr, nil
	}

	rr.Degraded = res.Degraded
	rr.Precision = res.ShadowPrecision
	rr.Oracle = oracleLabel(res.ShadowOracle)
	rr.Detected = kindNamesOf(res.Summary.Counts, goldenCounts)
	rr.ErrBits = deviationBits(retType, goldenF, decode(retType, res.Value))

	switch {
	case len(rr.Detected) > 0:
		rr.Outcome = OutcomeDetected
	case rr.ErrBits > cfg.MaskedBits:
		rr.Outcome = OutcomeSDC
	default:
		rr.Outcome = OutcomeMasked
	}
	return rr, nil
}

func asResource(err error, re **interp.ResourceExhausted) bool {
	for err != nil {
		if r, ok := err.(*interp.ResourceExhausted); ok {
			*re = r
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// kindNamesOf lists the kinds whose counts exceed the baseline, in a fixed
// order.
func kindNamesOf(counts, baseline map[shadow.Kind]int) []string {
	var out []string
	for _, k := range detectable {
		if counts[k] > baseline[k] {
			out = append(out, k.String())
		}
	}
	return out
}

// decode interprets a result bit pattern as a float64 for comparison;
// integers and booleans pass through exactly.
func decode(t ir.Type, bits uint64) float64 {
	switch t {
	case ir.I64:
		return float64(int64(bits))
	case ir.Bool:
		return float64(bits & 1)
	default:
		return interp.ToFloat64(t, bits)
	}
}

// deviationBits measures how wrong the faulty final value is, in error
// bits (log2 of the double-ULP distance), with NaN/Inf divergence maxed.
func deviationBits(t ir.Type, golden, faulty float64) int {
	if golden == faulty {
		return 0
	}
	gBad := math.IsNaN(golden) || math.IsInf(golden, 0)
	fBad := math.IsNaN(faulty) || math.IsInf(faulty, 0)
	if gBad || fBad {
		// Non-finite values only count as matching when they are the same
		// exception: both NaN, or infinities of the same sign. golden=+Inf
		// vs faulty=−Inf is maximally wrong, not masked.
		bothNaN := math.IsNaN(golden) && math.IsNaN(faulty)
		sameInf := (math.IsInf(golden, 1) && math.IsInf(faulty, 1)) ||
			(math.IsInf(golden, -1) && math.IsInf(faulty, -1))
		if bothNaN || sameInf {
			return 0
		}
		return 64
	}
	if t == ir.I64 || t == ir.Bool {
		return 64 // integer results must match exactly
	}
	return ulp.Bits(ulp.Distance(golden, faulty))
}

func tallyOutcome(t *Totals, rr RunResult) {
	t.Runs++
	if rr.Injected > 0 {
		t.InjectedRuns++
	}
	if rr.Degraded {
		t.Degraded++
	}
	switch rr.Outcome {
	case OutcomeMasked:
		t.Masked++
	case OutcomeSDC:
		t.SDC++
	case OutcomeDetected:
		t.Detected++
	case OutcomeCrashed:
		t.Crashed++
	case OutcomeHung:
		t.Hung++
	}
}

func finishTotals(t *Totals) {
	if t.Detected+t.SDC > 0 {
		t.DetectionRate = float64(t.Detected) / float64(t.Detected+t.SDC)
	}
}

// String renders the report as an aligned text table, posit vs float.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fault-injection campaign: %s (n=%d), model=%s, %d runs/arch, seed=%d, precision=%d\n",
		r.Workload, r.N, r.Model, r.Runs, r.Seed, r.Precision)
	if r.Oracle != "" {
		fmt.Fprintf(&sb, "shadow oracle: %s\n", r.Oracle)
	}
	fmt.Fprintf(&sb, "%-8s%10s%10s%10s%10s%10s%10s%12s\n",
		"arch", "masked", "sdc", "detected", "crashed", "hung", "degraded", "det.rate")
	for _, a := range r.Arches {
		t := a.Totals
		fmt.Fprintf(&sb, "%-8s%10d%10d%10d%10d%10d%10d%11.1f%%\n",
			a.Arch, t.Masked, t.SDC, t.Detected, t.Crashed, t.Hung, t.Degraded, 100*t.DetectionRate)
	}
	for _, a := range r.Arches {
		if len(a.GoldenKinds) > 0 {
			fmt.Fprintf(&sb, "note: %s golden run already reports %s (new detections are counted on top)\n",
				a.Arch, strings.Join(a.GoldenKinds, ", "))
		}
	}
	return sb.String()
}

// SortedOutcomes lists outcomes with nonzero counts, for compact logs.
func (t Totals) SortedOutcomes() []string {
	m := map[string]int{
		string(OutcomeMasked): t.Masked, string(OutcomeSDC): t.SDC,
		string(OutcomeDetected): t.Detected, string(OutcomeCrashed): t.Crashed,
		string(OutcomeHung): t.Hung,
	}
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, fmt.Sprintf("%s:%d", k, v))
		}
	}
	sort.Strings(keys)
	return keys
}
