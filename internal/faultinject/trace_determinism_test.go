package faultinject

import (
	"bytes"
	"runtime"
	"testing"

	"positdebug/internal/obs"
)

// TestCampaignTraceParallelDeterminism: the campaign's structured event
// stream (JSON lines) is byte-identical whether the runs execute on one
// worker or are sharded across four. Events carry no timestamps and are
// buffered per run, then merged in run-index order by the campaign; the
// terminal sink assigns the sequence numbers — so scheduling cannot leak
// into the trace. Worker lifecycle events are excluded by default precisely
// because they would break this.
func TestCampaignTraceParallelDeterminism(t *testing.T) {
	runAt := func(procs int) (string, int) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		var out bytes.Buffer
		sink := obs.NewJSONLines(&out)
		cfg := CampaignConfig{
			Workload: "polybench/gemm", N: 8, Runs: 12, Seed: 7,
			Trace: sink,
		}
		if _, err := RunCampaign(cfg); err != nil {
			t.Fatalf("campaign at GOMAXPROCS=%d: %v", procs, err)
		}
		if sink.Err() != nil {
			t.Fatalf("sink error: %v", sink.Err())
		}
		return out.String(), int(sink.Count())
	}
	seq, nSeq := runAt(1)
	par, nPar := runAt(4)
	if seq != par {
		t.Fatalf("parallel campaign trace diverged from sequential (%d vs %d events):\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=4 ---\n%s",
			nSeq, nPar, seq, par)
	}
	// The trace must also be schema-valid and non-trivial: campaign
	// framing + one run-start/run-end/run-outcome triple per run at least.
	n, err := obs.ValidateJSONLines(bytes.NewReader([]byte(seq)))
	if err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	if want := 2 + 1 + 3*12; n < want {
		t.Fatalf("trace has %d events, want at least %d", n, want)
	}
}

// TestCampaignTraceWorkers: the opt-in worker lifecycle events appear and
// the rest of the stream still validates (seq numbering intact).
func TestCampaignTraceWorkers(t *testing.T) {
	var out bytes.Buffer
	sink := obs.NewJSONLines(&out)
	cfg := CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 4, Seed: 3,
		Trace: sink, TraceWorkers: true,
	}
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateJSONLines(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"worker-start"`)) ||
		!bytes.Contains(out.Bytes(), []byte(`"worker-stop"`)) {
		t.Fatalf("worker lifecycle events missing:\n%s", out.String())
	}
}

// TestCampaignTraceInjectEvents: injected faults show up as inject events
// stamped with their run index, interleaved before the run's outcome.
func TestCampaignTraceInjectEvents(t *testing.T) {
	var out bytes.Buffer
	sink := obs.NewJSONLines(&out)
	cfg := CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 6, Seed: 11,
		Trace: sink,
	}
	if _, err := RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out.Bytes(), []byte(`"kind":"inject"`)) {
		t.Fatalf("no inject events in trace:\n%s", out.String())
	}
}
