// Package faultinject turns PositDebug from a passive debugger into an
// active resilience-analysis tool: a deterministic fault injector that
// decorates any interp.Hooks (the shadow runtime, the no-op hooks, …) and
// corrupts the program's architectural values at configurable sites, plus
// a campaign runner that sweeps faults across workloads and classifies
// each run's outcome with the shadow oracle — masked, silent data
// corruption, detected, or crashed/hung.
//
// Everything is driven by a seeded splitmix64 PRNG, so a campaign is
// exactly reproducible: same seed + same fault model ⇒ byte-identical
// fault schedule and identical outcome classification, on any platform
// and Go release.
package faultinject

import (
	"fmt"
	"math"

	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/obs"
)

// Kind selects the corruption applied at an injection site.
type Kind uint8

// Fault kinds.
const (
	// BitFlip flips one bit of the value (the classic soft-error model).
	BitFlip Kind = iota
	// MultiBitFlip flips Model.FlipBits distinct bits (burst errors).
	MultiBitFlip
	// StuckNaR forces the value to NaR (posits) or quiet NaN (floats).
	StuckNaR
	// Saturate forces the value to ±maxpos (posits) or ±MaxFloat (floats),
	// keeping the original sign — the silent-overflow model.
	Saturate
)

var kindNames = [...]string{"bitflip", "multiflip", "nar", "saturate"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindByName parses a fault-kind name.
func KindByName(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q (want bitflip|multiflip|nar|saturate)", s)
}

// OpClass is a bitmask of instruction classes eligible for injection.
type OpClass uint32

// Instruction classes. Register moves and comparisons are deliberately not
// injectable: corrupting them would make the shadow runtime re-seed its
// metadata from the corrupted value and blind the oracle. Loads, stores
// and call returns carry the same hazard, so the injector announces those
// corruptions to inner hooks implementing interp.InjectionObserver, which
// lets the shadow runtime flag the divergence instead of resyncing.
const (
	ClassArith OpClass = 1 << iota // binary/unary/fma/quire-round results
	ClassConst                     // literal materialization
	ClassCast                      // numeric conversions
	ClassLoad                      // values arriving from memory
	ClassStore                     // values departing to memory
	ClassCall                      // values returned by calls

	ClassAll = ClassArith | ClassConst | ClassCast | ClassLoad | ClassStore | ClassCall
)

var classNames = map[string]OpClass{
	"arith": ClassArith, "const": ClassConst, "cast": ClassCast,
	"load": ClassLoad, "store": ClassStore, "call": ClassCall, "all": ClassAll,
}

// ClassByName parses a comma-separated class list ("arith,load,store").
func ClassByName(s string) (OpClass, error) {
	var c OpClass
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			name := s[start:i]
			start = i + 1
			if name == "" {
				continue
			}
			cl, ok := classNames[name]
			if !ok {
				return 0, fmt.Errorf("faultinject: unknown op class %q", name)
			}
			c |= cl
		}
	}
	if c == 0 {
		c = ClassAll
	}
	return c, nil
}

func classOf(op ir.Op) OpClass {
	switch op {
	case ir.OpShadowBin, ir.OpShadowUn, ir.OpShadowFMA, ir.OpShadowQVal:
		return ClassArith
	case ir.OpShadowConst:
		return ClassConst
	case ir.OpShadowCast:
		return ClassCast
	case ir.OpShadowLoad:
		return ClassLoad
	case ir.OpShadowStore:
		return ClassStore
	case ir.OpShadowPostCall:
		return ClassCall
	default:
		return 0
	}
}

// Model describes what to inject and where. The zero value injects
// nothing; set Occurrence or Rate to arm it.
type Model struct {
	// Kind selects the corruption.
	Kind Kind
	// FlipBits is the number of distinct bits MultiBitFlip flips
	// (default 2).
	FlipBits int
	// BitPos pins the flipped bit position; −1 draws it from the PRNG
	// (per injection), which is how bit-position sweeps randomize.
	BitPos int
	// Ops restricts injection to instruction classes (0 = ClassAll).
	Ops OpClass
	// InstID, when positive, restricts injection to one static
	// instruction id (0 or negative = any).
	InstID int32
	// Occurrence, when positive, injects exactly at the k-th eligible
	// dynamic event (1-based) — the deterministic single-fault mode
	// campaigns sweep over.
	Occurrence int64
	// Rate, used when Occurrence is 0, is the per-event injection
	// probability (Bernoulli per eligible event).
	Rate float64
	// MaxInjections caps injections per run (0 = unlimited for Rate mode,
	// 1 for Occurrence mode by construction).
	MaxInjections int
}

func (m Model) ops() OpClass {
	if m.Ops == 0 {
		return ClassAll
	}
	return m.Ops
}

// Record is one injected fault, in schedule order.
type Record struct {
	Seq    int64  `json:"seq"`    // 1-based index among eligible events
	InstID int32  `json:"inst"`   // static instruction id
	Op     string `json:"op"`     // shadow opcode name
	Type   string `json:"type"`   // value type
	Bit    int    `json:"bit"`    // flipped bit (−1 for nar/saturate)
	Before uint64 `json:"before"` // bits before corruption
	After  uint64 `json:"after"`  // bits after corruption
}

// splitmix64 is a tiny, platform-stable PRNG: unlike math/rand, its stream
// is fixed by this file, so schedules replay identically across Go
// releases.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0, n).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// Mix derives a per-run seed from a campaign seed and a run index — the
// documented way to vary faults across a sweep while keeping the whole
// campaign a pure function of one seed.
func Mix(seed int64, run int) int64 {
	s := splitmix64{state: uint64(seed) ^ (uint64(run)+1)*0xd1342543de82ef95}
	return int64(s.next())
}

// Injector decorates an interp.Hooks with deterministic fault injection.
// It implements both interp.Hooks (pure pass-through to Inner) and
// interp.Injector (the machine-side mutation seam). Reset re-seeds the
// PRNG, so two runs of the same machine replay the same schedule.
type Injector struct {
	Inner interp.Hooks
	model Model
	seed  int64

	rng        splitmix64
	candidates int64
	injected   int
	schedule   []Record

	// CountOnly makes the injector observe eligible events without
	// corrupting anything — the calibration pass campaigns use to size
	// their occurrence sweeps.
	CountOnly bool

	// Events, when set, receives one obs.EvInject event per injected fault,
	// in schedule order — interleaved with the shadow runtime's detection
	// events when both share a sink.
	Events obs.Sink
}

var (
	_ interp.Hooks    = (*Injector)(nil)
	_ interp.Injector = (*Injector)(nil)
)

// NewInjector wraps inner with the fault model, seeded for determinism.
func NewInjector(inner interp.Hooks, model Model, seed int64) *Injector {
	if inner == nil {
		inner = interp.NopHooks{}
	}
	if model.FlipBits <= 0 {
		model.FlipBits = 2
	}
	j := &Injector{Inner: inner, model: model, seed: seed}
	j.reseed()
	return j
}

func (j *Injector) reseed() {
	j.rng = splitmix64{state: uint64(j.seed) ^ 0x5851f42d4c957f2d}
	j.candidates = 0
	j.injected = 0
	j.schedule = j.schedule[:0]
}

// Candidates reports how many eligible events the last run saw.
func (j *Injector) Candidates() int64 { return j.candidates }

// Schedule returns the faults injected by the last run, in order.
func (j *Injector) Schedule() []Record { return j.schedule }

// Mutate implements interp.Injector: it decides, deterministically, whether
// this event is an injection site and corrupts the bits accordingly.
func (j *Injector) Mutate(id int32, op ir.Op, typ ir.Type, bits uint64) (uint64, bool) {
	if !typ.IsNumeric() {
		return 0, false
	}
	cl := classOf(op)
	if cl == 0 || cl&j.model.ops() == 0 {
		return 0, false
	}
	if j.model.InstID > 0 && id != j.model.InstID {
		return 0, false
	}
	j.candidates++
	if j.CountOnly {
		return 0, false
	}
	if j.model.MaxInjections > 0 && j.injected >= j.model.MaxInjections {
		return 0, false
	}
	var hit bool
	if j.model.Occurrence > 0 {
		hit = j.candidates == j.model.Occurrence
	} else if j.model.Rate > 0 {
		hit = j.rng.float64() < j.model.Rate
	}
	if !hit {
		return 0, false
	}
	after, bit := j.corrupt(typ, bits)
	j.injected++
	j.schedule = append(j.schedule, Record{
		Seq: j.candidates, InstID: id, Op: op.String(), Type: typ.String(),
		Bit: bit, Before: bits, After: after,
	})
	if j.Events != nil {
		e := obs.NewEvent(obs.EvInject)
		e.Inst = id
		e.Op = op.String()
		e.Bit = bit
		e.Before = fmt.Sprintf("0x%x", bits)
		e.After = fmt.Sprintf("0x%x", after)
		j.Events.Emit(e)
	}
	// Announce the corruption before the machine forwards the event, so
	// metadata-propagating hooks (load/store/post-call) treat their clean
	// shadow state as the reference instead of resyncing from the fault.
	if o, ok := j.Inner.(interp.InjectionObserver); ok {
		o.ObserveInjection(id, op, typ, bits, after)
	}
	return after, true
}

// corrupt applies the model's corruption to a value of the given type.
func (j *Injector) corrupt(typ ir.Type, bits uint64) (after uint64, bit int) {
	width := int(typ.Size()) * 8
	switch j.model.Kind {
	case BitFlip:
		b := j.model.BitPos
		if b < 0 || b >= width {
			b = j.rng.intn(width)
		}
		return bits ^ (1 << uint(b)), b
	case MultiBitFlip:
		n := j.model.FlipBits
		if n > width {
			n = width
		}
		var mask uint64
		for popcount(mask) < n {
			mask |= 1 << uint(j.rng.intn(width))
		}
		return bits ^ mask, -1
	case StuckNaR:
		return narBits(typ), -1
	case Saturate:
		return saturateBits(typ, bits), -1
	default:
		return bits, -1
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// narBits is the exceptional value of the type: posit NaR or quiet NaN.
func narBits(typ ir.Type) uint64 {
	switch typ {
	case ir.F32:
		return uint64(math.Float32bits(float32(math.NaN())))
	case ir.F64:
		return math.Float64bits(math.NaN())
	default:
		return uint64(typ.PositConfig().NaR())
	}
}

// saturateBits clamps the value to the type's largest magnitude, keeping
// the sign.
func saturateBits(typ ir.Type, bits uint64) uint64 {
	switch typ {
	case ir.F32:
		v := math.Float32bits(math.MaxFloat32)
		if bits&(1<<31) != 0 {
			v |= 1 << 31
		}
		return uint64(v)
	case ir.F64:
		v := math.Float64bits(math.MaxFloat64)
		if bits&(1<<63) != 0 {
			v |= 1 << 63
		}
		return v
	default:
		cfg := typ.PositConfig()
		maxpos := uint64(cfg.MaxPos())
		signBit := uint64(1) << (cfg.N - 1)
		if bits&signBit != 0 {
			// Negative posits are two's complements within N bits.
			return (-maxpos) & cfg.Mask()
		}
		return maxpos
	}
}
