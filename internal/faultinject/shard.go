package faultinject

import (
	"context"
	"fmt"
	"sort"
	"time"

	positdebug "positdebug"
	"positdebug/internal/parallel"
	"positdebug/internal/shadow/oracle"
)

func durationNS(ns int64) time.Duration { return time.Duration(ns) }

// ShardVersion guards the coordinator↔worker shard exchange format. A
// worker rejects requests from a coordinator speaking a different version
// rather than risk classifying runs under mismatched semantics: the whole
// fabric's byte-identity guarantee rests on every party running the same
// classification code.
const ShardVersion = 1

// WireConfig is CampaignConfig reduced to its serializable,
// result-determining fields — no Trace/Metrics/Journal, which are local
// concerns of whichever process runs the shard. Values are raw
// (pre-default), exactly as a CLI would build them, so defaulting happens
// once at the execution site and the −1 MaskedBits sentinel survives the
// wire.
type WireConfig struct {
	Workload       string `json:"workload"`
	N              int    `json:"n,omitempty"`
	Arch           string `json:"arch,omitempty"`
	Runs           int    `json:"runs,omitempty"`
	Seed           int64  `json:"seed"`
	Model          Model  `json:"model"`
	TimeoutNS      int64  `json:"timeout_ns,omitempty"`
	MaxSteps       int64  `json:"max_steps,omitempty"`
	Precision      uint   `json:"precision,omitempty"`
	Oracle         string `json:"oracle,omitempty"`
	MaxShadowBytes int64  `json:"max_shadow_bytes,omitempty"`
	MaskedBits     int    `json:"masked_bits,omitempty"`
	KeepSchedules  bool   `json:"keep_schedules,omitempty"`
}

// Wire extracts the serializable campaign parameters.
func (c CampaignConfig) Wire() WireConfig {
	return WireConfig{
		Workload: c.Workload, N: c.N, Arch: c.Arch, Runs: c.Runs,
		Seed: c.Seed, Model: c.Model,
		TimeoutNS: int64(c.Timeout), MaxSteps: c.MaxSteps,
		Precision: c.Precision, Oracle: string(c.Oracle),
		MaxShadowBytes: c.MaxShadowBytes,
		MaskedBits: c.MaskedBits, KeepSchedules: c.KeepSchedules,
	}
}

// Campaign rebuilds the campaign config the wire form describes.
func (w WireConfig) Campaign() CampaignConfig {
	return CampaignConfig{
		Workload: w.Workload, N: w.N, Arch: w.Arch, Runs: w.Runs,
		Seed: w.Seed, Model: w.Model,
		Timeout: durationNS(w.TimeoutNS), MaxSteps: w.MaxSteps,
		Precision: w.Precision, Oracle: oracle.Kind(w.Oracle),
		MaxShadowBytes: w.MaxShadowBytes,
		MaskedBits: w.MaskedBits, KeepSchedules: w.KeepSchedules,
	}
}

// EffectiveRuns returns the campaign's defaulted run count — what a shard
// partitioner must cover without applying (and re-applying) the full
// default set itself.
func (c CampaignConfig) EffectiveRuns() int { return c.withDefaults().Runs }

// EffectiveArches returns the architectures the campaign sweeps, in report
// order.
func (c CampaignConfig) EffectiveArches() ([]string, error) {
	switch a := c.withDefaults().Arch; a {
	case "posit", "float":
		return []string{a}, nil
	case "both":
		return []string{"posit", "float"}, nil
	default:
		return nil, fmt.Errorf("faultinject: unknown arch %q (want posit|float|both)", a)
	}
}

// ArchInfo is the golden + calibration pass's output for one architecture:
// the reference value runs are classified against and the eligible
// injection-event count the single-fault mode sweeps over. Every shard of
// an architecture recomputes it, which gives the coordinator a cheap skew
// detector: two workers disagreeing on ArchInfo are not running the same
// experiment.
type ArchInfo struct {
	GoldenValue float64  `json:"golden_value"`
	GoldenKinds []string `json:"golden_kinds,omitempty"`
	Candidates  int64    `json:"candidates"`
}

func (a ArchInfo) equal(b ArchInfo) bool {
	if a.GoldenValue != b.GoldenValue || a.Candidates != b.Candidates ||
		len(a.GoldenKinds) != len(b.GoldenKinds) {
		return false
	}
	for i := range a.GoldenKinds {
		if a.GoldenKinds[i] != b.GoldenKinds[i] {
			return false
		}
	}
	return true
}

// ShardRequest asks a worker to execute the runs [Lo, Hi) of one
// architecture of a campaign. Lo == Hi is a golden probe: the worker runs
// only the golden + calibration pass and returns the ArchInfo with no run
// results — how a resumed coordinator recovers golden data without
// re-running any journaled work.
type ShardRequest struct {
	Version int        `json:"version"`
	Config  WireConfig `json:"config"`
	Arch    string     `json:"arch"`
	Lo      int        `json:"lo"`
	Hi      int        `json:"hi"`
}

// Validate rejects malformed or version-skewed shard requests.
func (r ShardRequest) Validate() error {
	if r.Version != ShardVersion {
		return fmt.Errorf("faultinject: shard version %d, this worker speaks %d", r.Version, ShardVersion)
	}
	if r.Arch != "posit" && r.Arch != "float" {
		return fmt.Errorf("faultinject: shard arch %q (want posit|float)", r.Arch)
	}
	runs := r.Config.Campaign().withDefaults().Runs
	if r.Lo < 0 || r.Hi < r.Lo || r.Hi > runs {
		return fmt.Errorf("faultinject: shard range [%d,%d) outside campaign runs %d", r.Lo, r.Hi, runs)
	}
	return nil
}

// ShardResult is the worker's answer: the shard's classified runs in
// run-index order plus the golden info they were classified against.
type ShardResult struct {
	Version int         `json:"version"`
	Arch    string      `json:"arch"`
	Lo      int         `json:"lo"`
	Hi      int         `json:"hi"`
	Golden  ArchInfo    `json:"golden"`
	Results []RunResult `json:"results"`
}

// RunShard executes one shard of a campaign: the golden + calibration pass
// followed by the fault-injected runs [req.Lo, req.Hi), classified exactly
// as RunCampaign would classify them (same prepArch + oneRun path). Each
// run is a pure function of Mix(seed, run), so a shard computed on any
// machine slots into the campaign's result sequence unchanged.
func RunShard(ctx context.Context, req ShardRequest) (*ShardResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	cfg := req.Config.Campaign().withDefaults()
	src, _, err := ResolveWorkload(cfg.Workload, cfg.N)
	if err != nil {
		return nil, err
	}
	p, err := prepArch(ctx, cfg, req.Arch, src)
	if err != nil {
		return nil, err
	}
	out := &ShardResult{Version: ShardVersion, Arch: req.Arch, Lo: req.Lo, Hi: req.Hi, Golden: p.info}
	if req.Lo == req.Hi {
		return out, nil // golden probe
	}

	newWorker := func() (*positdebug.Debugger, error) {
		return p.prog.Session(positdebug.WithShadow(p.scfg), positdebug.WithBackend(cfg.Backend))
	}
	results, err := parallel.MapWorkerCtx(ctx, req.Hi-req.Lo, newWorker,
		func(d *positdebug.Debugger, i int) (RunResult, error) {
			return oneRun(ctx, cfg, d, p.scfg, p.lim, p.retType, p.goldenF, p.goldenCounts, p.info.Candidates, req.Lo+i)
		})
	if err != nil {
		return nil, asCancelled(ctx, err)
	}
	// Canonicalize for the wire: per-run events are process-local (they
	// never cross the fabric, mirroring journal-resume semantics) and
	// schedules travel only when the campaign keeps them.
	for i := range results {
		results[i].events = nil
		if !cfg.KeepSchedules {
			results[i].Schedule = nil
		}
	}
	out.Results = results
	return out, nil
}

// AssembleReport merges shard results — any order, any worker mix,
// duplicates from hedged requests or journal overlap welcome — into the
// campaign report. The output is byte-identical to RunCampaign on the same
// config: coverage must be exact (every run of every architecture present
// at least once), golden info must agree across all shards of an
// architecture, and duplicated runs must agree with each other; any
// violation is an error, because it means two workers computed different
// answers to the same pure function.
func AssembleReport(cfg CampaignConfig, shards []*ShardResult) (*Report, error) {
	dcfg := cfg.withDefaults()
	_, n, err := ResolveWorkload(dcfg.Workload, dcfg.N)
	if err != nil {
		return nil, err
	}
	var arches []string
	switch dcfg.Arch {
	case "posit", "float":
		arches = []string{dcfg.Arch}
	case "both":
		arches = []string{"posit", "float"}
	default:
		return nil, fmt.Errorf("faultinject: unknown arch %q (want posit|float|both)", dcfg.Arch)
	}

	rep := &Report{
		Workload: dcfg.Workload, N: n, Runs: dcfg.Runs, Seed: dcfg.Seed,
		Model: dcfg.Model.Kind.String(), Precision: dcfg.Precision,
		Oracle: oracleLabel(dcfg.Oracle),
	}
	for _, arch := range arches {
		var info ArchInfo
		haveInfo := false
		byRun := make(map[int]RunResult)
		for _, sh := range shards {
			if sh == nil || sh.Arch != arch {
				continue
			}
			if !haveInfo {
				info, haveInfo = sh.Golden, true
			} else if !info.equal(sh.Golden) {
				return nil, fmt.Errorf("faultinject: %s golden info disagrees across shards (%+v vs %+v)", arch, info, sh.Golden)
			}
			for _, rr := range sh.Results {
				if prev, ok := byRun[rr.Run]; ok {
					if prev.Seed != rr.Seed || prev.Outcome != rr.Outcome || prev.ErrBits != rr.ErrBits {
						return nil, fmt.Errorf("faultinject: %s run %d classified differently by two shards (%s/%d vs %s/%d)",
							arch, rr.Run, prev.Outcome, prev.ErrBits, rr.Outcome, rr.ErrBits)
					}
					continue
				}
				byRun[rr.Run] = rr
			}
		}
		if !haveInfo {
			return nil, fmt.Errorf("faultinject: no shard carries %s golden info", arch)
		}
		results := make([]RunResult, 0, dcfg.Runs)
		for run := 0; run < dcfg.Runs; run++ {
			rr, ok := byRun[run]
			if !ok {
				return nil, fmt.Errorf("faultinject: %s run %d missing from shard results", arch, run)
			}
			results = append(results, rr)
		}
		rep.Arches = append(rep.Arches, *assembleArch(dcfg, arch, info, results))
	}
	return rep, nil
}

// SortShards orders shards by (arch, lo) — a convenience for stable logs;
// AssembleReport itself is order-independent.
func SortShards(shards []*ShardResult) {
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].Arch != shards[j].Arch {
			return shards[i].Arch < shards[j].Arch
		}
		return shards[i].Lo < shards[j].Lo
	})
}
