package faultinject

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
	"time"

	positdebug "positdebug"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/shadow"
)

const accumSrc = `
var arr: [16]p32;

func main(): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 16; i += 1) {
		arr[i] = 0.125;
	}
	for (var it: i64 = 0; it < 24; it += 1) {
		for (var i: i64 = 0; i < 16; i += 1) {
			s = s + arr[i] * 1.0625;
		}
	}
	return s;
}
`

func compileAccum(t *testing.T) *positdebug.Program {
	t.Helper()
	prog, err := positdebug.Compile(accumSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

func injectedRun(t *testing.T, prog *positdebug.Program, model Model, seed int64, budget int64) (*positdebug.Result, *Injector) {
	t.Helper()
	cfg := shadow.DefaultConfig()
	cfg.MaxReports = 0
	cfg.Tracing = false
	cfg.MaxShadowBytes = budget
	inj := NewInjector(nil, model, seed)
	res, err := prog.Exec("main", positdebug.WithShadow(cfg),
		positdebug.WithLimits(interp.Limits{Timeout: 10 * time.Second}),
		positdebug.WithHooksWrapper(func(h interp.Hooks) interp.Hooks {
			inj.Inner = h
			return inj
		}))
	if err != nil {
		t.Fatalf("injected run: %v", err)
	}
	return res, inj
}

// TestInjectorDeterminism: the same seed and model must replay a
// byte-identical fault schedule and produce a bit-identical result,
// across fault kinds and op-class restrictions.
func TestInjectorDeterminism(t *testing.T) {
	prog := compileAccum(t)
	cases := []struct {
		name  string
		model Model
		seed  int64
	}{
		{"bitflip-rate", Model{Kind: BitFlip, Rate: 0.01}, 7},
		{"bitflip-occurrence", Model{Kind: BitFlip, Occurrence: 40}, 7},
		{"multiflip", Model{Kind: MultiBitFlip, FlipBits: 3, Rate: 0.02}, 11},
		{"nar", Model{Kind: StuckNaR, Occurrence: 100}, 3},
		{"saturate", Model{Kind: Saturate, Rate: 0.005}, 99},
		{"arith-only", Model{Kind: BitFlip, Ops: ClassArith, Rate: 0.01}, 21},
		{"store-only", Model{Kind: BitFlip, Ops: ClassStore, Rate: 0.05}, 21},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res1, inj1 := injectedRun(t, prog, tc.model, tc.seed, 0)
			res2, inj2 := injectedRun(t, prog, tc.model, tc.seed, 0)
			if !reflect.DeepEqual(inj1.Schedule(), inj2.Schedule()) {
				t.Fatalf("schedules differ:\n%v\nvs\n%v", inj1.Schedule(), inj2.Schedule())
			}
			if res1.Value != res2.Value {
				t.Fatalf("results differ: %#x vs %#x", res1.Value, res2.Value)
			}
			if res1.Summary.String() != res2.Summary.String() {
				t.Fatalf("oracle summaries differ:\n%s\nvs\n%s", res1.Summary, res2.Summary)
			}
			if inj1.Candidates() != inj2.Candidates() {
				t.Fatalf("candidate counts differ: %d vs %d", inj1.Candidates(), inj2.Candidates())
			}
		})
	}
}

// TestInjectorSeedsDiffer: different seeds must (for a random-site model)
// produce different schedules — the PRNG is actually wired in.
func TestInjectorSeedsDiffer(t *testing.T) {
	prog := compileAccum(t)
	model := Model{Kind: BitFlip, Rate: 0.02}
	_, inj1 := injectedRun(t, prog, model, 1, 0)
	_, inj2 := injectedRun(t, prog, model, 2, 0)
	if reflect.DeepEqual(inj1.Schedule(), inj2.Schedule()) {
		t.Fatalf("seeds 1 and 2 produced identical non-trivial schedules (len %d)", len(inj1.Schedule()))
	}
}

// TestCountOnly: the calibration pass counts eligible events without
// corrupting anything, and the count matches what a real run sees.
func TestCountOnly(t *testing.T) {
	prog := compileAccum(t)
	counter := NewInjector(nil, Model{Kind: BitFlip, Rate: 1}, 0)
	counter.CountOnly = true
	cfg := shadow.DefaultConfig()
	cfg.MaxReports = 0
	res, err := prog.Exec("main", positdebug.WithShadow(cfg),
		positdebug.WithHooksWrapper(func(h interp.Hooks) interp.Hooks {
			counter.Inner = h
			return counter
		}))
	if err != nil {
		t.Fatalf("count-only run: %v", err)
	}
	if len(counter.Schedule()) != 0 {
		t.Fatalf("count-only run injected %d faults", len(counter.Schedule()))
	}
	if counter.Candidates() == 0 {
		t.Fatal("count-only run saw no eligible events")
	}
	base, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if res.Value != base.Value {
		t.Fatalf("count-only run changed the result: %#x vs %#x", res.Value, base.Value)
	}
}

// TestOccurrenceInjectsOnce: occurrence mode hits exactly the k-th
// eligible event, once.
func TestOccurrenceInjectsOnce(t *testing.T) {
	prog := compileAccum(t)
	_, inj := injectedRun(t, prog, Model{Kind: BitFlip, Occurrence: 17, BitPos: 3}, 5, 0)
	sched := inj.Schedule()
	if len(sched) != 1 {
		t.Fatalf("want 1 injection, got %d", len(sched))
	}
	if sched[0].Seq != 17 {
		t.Fatalf("want injection at event 17, got %d", sched[0].Seq)
	}
	if sched[0].Bit != 3 {
		t.Fatalf("want pinned bit 3, got %d", sched[0].Bit)
	}
	if sched[0].After != sched[0].Before^(1<<3) {
		t.Fatalf("bit 3 not flipped: before %#x after %#x", sched[0].Before, sched[0].After)
	}
}

// TestMaxInjectionsCap: the per-run cap is honored in rate mode.
func TestMaxInjectionsCap(t *testing.T) {
	prog := compileAccum(t)
	_, inj := injectedRun(t, prog, Model{Kind: BitFlip, Rate: 1, MaxInjections: 4}, 5, 0)
	if got := len(inj.Schedule()); got != 4 {
		t.Fatalf("want 4 injections, got %d", got)
	}
}

// TestCorruptions: each fault kind produces the documented bit pattern.
func TestCorruptions(t *testing.T) {
	if got := narBits(ir.P32); got != 1<<31 {
		t.Errorf("posit NaR: got %#x", got)
	}
	if got := narBits(ir.F64); !isNaN64(got) {
		t.Errorf("float64 NaN: got %#x", got)
	}
	// Saturation keeps sign: a negative posit saturates to -maxpos.
	cfg := ir.P32.PositConfig()
	negOne := uint64(0xC0000000) // p32 for -1.0 (two's complement of 0x40000000)
	maxpos := uint64(cfg.MaxPos())
	if sat, want := saturateBits(ir.P32, negOne), (-maxpos)&uint64(cfg.Mask()); sat != want {
		t.Errorf("negative saturation: got %#x want %#x", sat, want)
	}
	if pos := saturateBits(ir.P32, uint64(0x40000000)); pos != maxpos {
		t.Errorf("positive saturation: got %#x want %#x", pos, maxpos)
	}
}

func isNaN64(bits uint64) bool {
	exp := bits >> 52 & 0x7ff
	return exp == 0x7ff && bits&((1<<52)-1) != 0
}

const callSrc = `
var arr: [8]p32;

func scale(x: p32): p32 {
	return x * 3.0;
}

func main(): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 8; i += 1) {
		arr[i] = 1.5;
	}
	for (var i: i64 = 0; i < 8; i += 1) {
		s = s + scale(arr[i]);
	}
	return s;
}
`

// TestInjectionVisibleToOracle: load-, store- and call-class faults reach
// hooks that propagate metadata instead of recomputing it, so without the
// InjectionObserver protocol the runtime would mistake them for
// uninstrumented writes and re-seed its clean shadow from the corrupted
// value — making every such fault undetectable by construction. A forced
// NaR at each class must instead be flagged by the oracle, with no
// spurious uninstrumented-write count.
func TestInjectionVisibleToOracle(t *testing.T) {
	prog, err := positdebug.Compile(callSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := shadow.DefaultConfig()
	cfg.Tracing = false
	base, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	detectableKinds := []shadow.Kind{
		shadow.KindCancellation, shadow.KindPrecisionLoss, shadow.KindSaturation,
		shadow.KindNaR, shadow.KindBranchFlip, shadow.KindWrongCast,
		shadow.KindHighError, shadow.KindWrongOutput,
	}
	for _, tc := range []struct {
		name string
		ops  OpClass
	}{
		{"load", ClassLoad}, {"store", ClassStore}, {"call", ClassCall},
	} {
		t.Run(tc.name, func(t *testing.T) {
			model := Model{Kind: StuckNaR, Ops: tc.ops, Occurrence: 2, MaxInjections: 1}
			res, inj := injectedRun(t, prog, model, 1, 0)
			if got := len(inj.Schedule()); got != 1 {
				t.Fatalf("want 1 injection, got %d", got)
			}
			if res.Summary.UninstrumentedWrites != base.Summary.UninstrumentedWrites {
				t.Fatalf("injection misread as uninstrumented writes: %d (baseline %d)",
					res.Summary.UninstrumentedWrites, base.Summary.UninstrumentedWrites)
			}
			newDetections := 0
			for _, k := range detectableKinds {
				if res.Summary.Counts[k] > base.Summary.Counts[k] {
					newDetections++
				}
			}
			if newDetections == 0 {
				t.Fatalf("NaR %s-class fault invisible to the oracle:\n%s", tc.name, res.Summary)
			}
		})
	}
}

// TestDeviationBitsNonFinite: non-finite golden/faulty pairs only count as
// equivalent when they are the same exception; +Inf vs −Inf or NaN vs Inf
// is maximal deviation, not a masked outcome.
func TestDeviationBitsNonFinite(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct {
		golden, faulty float64
		want           int
	}{
		{inf, inf, 0},
		{-inf, -inf, 0},
		{nan, nan, 0},
		{inf, -inf, 64},
		{-inf, inf, 64},
		{nan, inf, 64},
		{inf, nan, 64},
		{1.0, nan, 64},
		{inf, 1.0, 64},
	}
	for _, tc := range cases {
		if got := deviationBits(ir.F64, tc.golden, tc.faulty); got != tc.want {
			t.Errorf("deviationBits(%v, %v) = %d, want %d", tc.golden, tc.faulty, got, tc.want)
		}
	}
}

// TestMaskedBitsSentinel: 0 keeps the documented default of 10 and −1
// demands an exact output match (threshold 0).
func TestMaskedBitsSentinel(t *testing.T) {
	if got := (CampaignConfig{}).withDefaults().MaskedBits; got != 10 {
		t.Errorf("default MaskedBits = %d, want 10", got)
	}
	if got := (CampaignConfig{MaskedBits: -1}).withDefaults().MaskedBits; got != 0 {
		t.Errorf("exact-match MaskedBits = %d, want 0", got)
	}
	if got := (CampaignConfig{MaskedBits: 3}).withDefaults().MaskedBits; got != 3 {
		t.Errorf("explicit MaskedBits = %d, want 3", got)
	}
}

// TestParsers: name→kind and name→class round trips, including errors.
func TestParsers(t *testing.T) {
	for i, name := range []string{"bitflip", "multiflip", "nar", "saturate"} {
		k, err := KindByName(name)
		if err != nil || k != Kind(i) {
			t.Errorf("KindByName(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := KindByName("gamma-ray"); err == nil {
		t.Error("KindByName accepted junk")
	}
	c, err := ClassByName("arith,load")
	if err != nil || c != ClassArith|ClassLoad {
		t.Errorf("ClassByName(arith,load) = %v, %v", c, err)
	}
	if got, _ := ClassByName(""); got != ClassAll {
		t.Errorf("empty class list should mean all, got %v", got)
	}
	if _, err := ClassByName("cosmic"); err == nil {
		t.Error("ClassByName accepted junk")
	}
}

// TestCampaignDeterministicReport: the whole campaign — golden run,
// calibration, every injected run, classification — serializes to
// byte-identical JSON across two invocations.
func TestCampaignDeterministicReport(t *testing.T) {
	cfg := CampaignConfig{
		Workload: "polybench/gemm", N: 8, Arch: "both", Runs: 12, Seed: 42,
		KeepSchedules: true,
	}
	rep1, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign 1: %v", err)
	}
	rep2, err := RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign 2: %v", err)
	}
	j1, err := json.Marshal(rep1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("campaign reports differ:\n%s\nvs\n%s", j1, j2)
	}
}

// TestCampaignClassification: every run lands in exactly one outcome
// bucket, totals add up, and with a whole-campaign single-fault sweep at
// least one fault is visible (not everything masked).
func TestCampaignClassification(t *testing.T) {
	rep, err := RunCampaign(CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 25, Seed: 3,
	})
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	a := rep.Arches[0]
	tot := a.Totals
	if got := tot.Masked + tot.SDC + tot.Detected + tot.Crashed + tot.Hung; got != tot.Runs || tot.Runs != 25 {
		t.Fatalf("outcomes don't partition the runs: %+v", tot)
	}
	if tot.InjectedRuns != 25 {
		t.Fatalf("single-fault sweep should inject in every run, got %d/25", tot.InjectedRuns)
	}
	if tot.Masked == tot.Runs {
		t.Fatal("every fault was masked; the injector is probably not wired in")
	}
	valid := map[Outcome]bool{OutcomeMasked: true, OutcomeSDC: true, OutcomeDetected: true, OutcomeCrashed: true, OutcomeHung: true}
	for _, rr := range a.Results {
		if !valid[rr.Outcome] {
			t.Fatalf("run %d has invalid outcome %q", rr.Run, rr.Outcome)
		}
		if rr.Injected != 1 {
			t.Fatalf("run %d injected %d faults, want 1", rr.Run, rr.Injected)
		}
	}
}

// TestCampaignStepBudget: the per-run step budget is enforced — a starved
// golden run fails the campaign with a structured resource error, and a
// generous budget passes.
func TestCampaignStepBudget(t *testing.T) {
	_, err := RunCampaign(CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 1, Seed: 1, MaxSteps: 2000,
	})
	if err == nil {
		t.Fatal("starved golden run should fail the campaign")
	}
	var re *interp.ResourceExhausted
	if !asResource(err, &re) || re.Resource != interp.ResSteps {
		t.Fatalf("want a steps ResourceExhausted, got %v", err)
	}
	if _, err := RunCampaign(CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 1, Seed: 1,
	}); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

// TestCampaignDegradation: a shadow-memory budget between the 128-bit and
// 256-bit footprints degrades every run one precision step, flags it, and
// keeps the fault schedule identical to the unbudgeted campaign.
func TestCampaignDegradation(t *testing.T) {
	base := CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 6, Seed: 42, KeepSchedules: true,
	}
	full, err := RunCampaign(base)
	if err != nil {
		t.Fatalf("unbudgeted campaign: %v", err)
	}
	budgeted := base
	budgeted.MaxShadowBytes = 1_000_000 // gemm n=8: two 4096-entry pages; 256-bit needs ~1.44MB, 128-bit ~918KB
	deg, err := RunCampaign(budgeted)
	if err != nil {
		t.Fatalf("budgeted campaign: %v", err)
	}
	fa, da := full.Arches[0], deg.Arches[0]
	if da.Totals.Degraded != da.Totals.Runs {
		t.Fatalf("want every run degraded, got %d/%d", da.Totals.Degraded, da.Totals.Runs)
	}
	for i, rr := range da.Results {
		if !rr.Degraded || rr.Precision != 128 {
			t.Fatalf("run %d: degraded=%v precision=%d, want true/128", i, rr.Degraded, rr.Precision)
		}
		if !reflect.DeepEqual(rr.Schedule, fa.Results[i].Schedule) {
			t.Fatalf("run %d: degradation changed the fault schedule:\n%v\nvs\n%v",
				i, rr.Schedule, fa.Results[i].Schedule)
		}
	}
	if fa.Results[0].Degraded {
		t.Fatal("unbudgeted run reported degraded")
	}
}

// TestResolveWorkload: group prefixes, bare names, suite programs, and
// junk.
func TestResolveWorkload(t *testing.T) {
	for _, spec := range []string{"polybench/gemm", "gemm", "spec/spec_art", "suite/fp_quadratic"} {
		if _, _, err := ResolveWorkload(spec, 0); err != nil {
			t.Errorf("ResolveWorkload(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"polybench/nope", "nope", "weird/gemm"} {
		if _, _, err := ResolveWorkload(spec, 0); err == nil {
			t.Errorf("ResolveWorkload(%q) accepted junk", spec)
		}
	}
}
