package faultinject

import (
	"positdebug/internal/interp"
	"positdebug/internal/ir"
)

// The Injector is a transparent Hooks decorator: every event is forwarded
// to the inner hooks unchanged. Corruption happens machine-side through
// the interp.Injector seam (Mutate), before these observers fire, so the
// inner runtime always sees the post-fault program values.

// Reset implements interp.Hooks; it also re-seeds the PRNG so a rerun (or
// a precision-degraded retry) replays the identical fault schedule.
func (j *Injector) Reset() {
	j.reseed()
	j.Inner.Reset()
}

// EnterFunc implements interp.Hooks.
func (j *Injector) EnterFunc(fn *ir.Func, argVals []uint64) { j.Inner.EnterFunc(fn, argVals) }

// LeaveFunc implements interp.Hooks.
func (j *Injector) LeaveFunc() { j.Inner.LeaveFunc() }

// Const implements interp.Hooks.
func (j *Injector) Const(id int32, typ ir.Type, dst int32, bits uint64) {
	j.Inner.Const(id, typ, dst, bits)
}

// Mov implements interp.Hooks.
func (j *Injector) Mov(id int32, typ ir.Type, dst, src int32, bits uint64) {
	j.Inner.Mov(id, typ, dst, src, bits)
}

// Bin implements interp.Hooks.
func (j *Injector) Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	j.Inner.Bin(id, kind, typ, dst, a, b, dstVal, aVal, bVal)
}

// Un implements interp.Hooks.
func (j *Injector) Un(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {
	j.Inner.Un(id, kind, typ, dst, a, dstVal, aVal)
}

// Cmp implements interp.Hooks.
func (j *Injector) Cmp(id int32, pred ir.CmpPred, typ ir.Type, a, b int32, aVal, bVal uint64, outcome bool) {
	j.Inner.Cmp(id, pred, typ, a, b, aVal, bVal, outcome)
}

// Cast implements interp.Hooks.
func (j *Injector) Cast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {
	j.Inner.Cast(id, from, to, dst, src, dstVal, srcVal)
}

// Load implements interp.Hooks.
func (j *Injector) Load(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {
	j.Inner.Load(id, typ, dst, addr, bits)
}

// Store implements interp.Hooks.
func (j *Injector) Store(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {
	j.Inner.Store(id, typ, addr, src, bits)
}

// PreCall implements interp.Hooks.
func (j *Injector) PreCall(callee *ir.Func, args []int32, argVals []uint64) {
	j.Inner.PreCall(callee, args, argVals)
}

// PostCall implements interp.Hooks.
func (j *Injector) PostCall(id int32, typ ir.Type, dst int32, bits uint64) {
	j.Inner.PostCall(id, typ, dst, bits)
}

// Ret implements interp.Hooks.
func (j *Injector) Ret(typ ir.Type, src int32, bits uint64) { j.Inner.Ret(typ, src, bits) }

// Print implements interp.Hooks.
func (j *Injector) Print(id int32, typ ir.Type, src int32, bits uint64) {
	j.Inner.Print(id, typ, src, bits)
}

// FMA implements interp.Hooks.
func (j *Injector) FMA(id int32, typ ir.Type, dst, a, b, c int32, dstVal, aVal, bVal, cVal uint64) {
	j.Inner.FMA(id, typ, dst, a, b, c, dstVal, aVal, bVal, cVal)
}

// QClear implements interp.Hooks.
func (j *Injector) QClear(typ ir.Type) { j.Inner.QClear(typ) }

// QAdd implements interp.Hooks.
func (j *Injector) QAdd(typ ir.Type, a int32, aVal uint64, negate bool) {
	j.Inner.QAdd(typ, a, aVal, negate)
}

// QMAdd implements interp.Hooks.
func (j *Injector) QMAdd(typ ir.Type, a, b int32, aVal, bVal uint64, negate bool) {
	j.Inner.QMAdd(typ, a, b, aVal, bVal, negate)
}

// QVal implements interp.Hooks.
func (j *Injector) QVal(id int32, typ ir.Type, dst int32, bits uint64) {
	j.Inner.QVal(id, typ, dst, bits)
}

var _ interp.Hooks = (*Injector)(nil)
