package faultinject

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"positdebug/internal/interp"
)

func journalCfg() CampaignConfig {
	return CampaignConfig{
		Workload: "polybench/gemm", N: 8, Arch: "posit",
		Runs: 24, Seed: 42,
	}
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestJournalResumeByteIdentical is the crash-safety contract: a campaign
// cancelled mid-sweep (standing in for a killed process — the journal is
// fsync'd per record, so the on-disk state is the same) resumes from its
// journal and produces a report byte-identical to an uninterrupted run.
func TestJournalResumeByteIdentical(t *testing.T) {
	cfg := journalCfg()
	want, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := reportJSON(t, want)

	path := filepath.Join(t.TempDir(), "campaign.journal")

	// Pass 1: journaled, cut down by a context cancelled shortly after the
	// sweep starts. Any completed prefix (including none) is a valid crash
	// point.
	j1, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := cfg
	cfg1.Journal = j1
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := RunCampaignContext(ctx, cfg1); err != nil {
		var c *interp.Cancelled
		if !errors.As(err, &c) {
			t.Fatalf("interrupted campaign: want *interp.Cancelled, got %v", err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Pass 2: resume from the journal, uninterrupted.
	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	t.Logf("resuming past %d journaled runs", j2.Resumed())
	cfg2 := cfg
	cfg2.Journal = j2
	got, err := RunCampaign(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON := reportJSON(t, got); string(gotJSON) != string(wantJSON) {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", wantJSON, gotJSON)
	}
}

// TestJournalFullReplay: a journal from a completed campaign replays every
// run — zero re-execution, same bytes.
func TestJournalFullReplay(t *testing.T) {
	cfg := journalCfg()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j1, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := cfg
	cfg1.Journal = j1
	want, err := RunCampaign(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()

	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != cfg.Runs {
		t.Fatalf("want all %d runs journaled, got %d", cfg.Runs, j2.Resumed())
	}
	cfg2 := cfg
	cfg2.Journal = j2
	got, err := RunCampaign(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if string(reportJSON(t, got)) != string(reportJSON(t, want)) {
		t.Fatal("full replay differs from the journaled run")
	}
}

// TestJournalRejectsDifferentCampaign: a journal is pinned to its
// parameters; resuming under different flags is an error, not a silent mix
// of two experiments.
func TestJournalRejectsDifferentCampaign(t *testing.T) {
	cfg := journalCfg()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := cfg
	other.Seed = 7
	if _, err := OpenJournal(path, other); err == nil {
		t.Fatal("journal accepted a campaign with a different seed")
	}
	other = cfg
	other.Runs = cfg.Runs * 2
	if _, err := OpenJournal(path, other); err == nil {
		t.Fatal("journal accepted a campaign with a different run count")
	}
}

// TestJournalTornTail: a record torn by a crash mid-write is truncated on
// reopen; the intact prefix survives and appending resumes cleanly.
func TestJournalTornTail(t *testing.T) {
	cfg := journalCfg()
	path := filepath.Join(t.TempDir(), "campaign.journal")
	j, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.record("posit", RunResult{Run: 3, Seed: Mix(cfg.Seed, 3), Outcome: OutcomeMasked}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"run","arch":"posit","result":{"ru`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer j2.Close()
	if j2.Resumed() != 1 {
		t.Fatalf("want the 1 intact run, got %d", j2.Resumed())
	}
	if _, ok := j2.lookup("posit", 3); !ok {
		t.Fatal("intact record lost")
	}
	if err := j2.record("posit", RunResult{Run: 4, Outcome: OutcomeMasked}); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	// The file must be fully parseable again.
	j3, err := OpenJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Resumed() != 2 {
		t.Fatalf("want 2 runs after repair, got %d", j3.Resumed())
	}
}

// TestCampaignCancelled: cancelling the campaign context halts the sweep —
// including a hot interpreter loop in flight — and surfaces *Cancelled.
func TestCampaignCancelled(t *testing.T) {
	cfg := CampaignConfig{
		Workload: "polybench/gemm", N: 16, Arch: "posit",
		Runs: 200, Seed: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := RunCampaignContext(ctx, cfg)
	elapsed := time.Since(start)
	var c *interp.Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("want *interp.Cancelled, got %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("campaign took %v to honor cancellation", elapsed)
	}
}

// TestCampaignPreCancelled: an already-dead context never starts a run.
func TestCampaignPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCampaignContext(ctx, journalCfg())
	var c *interp.Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("want *interp.Cancelled, got %v", err)
	}
}
