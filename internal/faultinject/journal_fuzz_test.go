package faultinject

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fuzzCampaign is the fixed campaign every fuzz iteration opens against;
// only the journal bytes vary.
var fuzzCampaign = CampaignConfig{Workload: "polybench/gemm", Runs: 16, Seed: 42}

// validJournalBytes builds a well-formed journal for the fuzz corpus.
func validJournalBytes(t interface{ Fatal(...any) }, runs int) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	meta := metaFor(fuzzCampaign)
	if err := enc.Encode(journalRecord{Kind: "header", Meta: &meta}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		rr := RunResult{Run: i, Seed: Mix(fuzzCampaign.Seed, i), Outcome: OutcomeMasked}
		if err := enc.Encode(journalRecord{Kind: "run", Arch: "posit", Result: &rr}); err != nil {
			t.Fatal(err)
		}
	}
	info := ArchInfo{GoldenValue: 1.5, Candidates: 100}
	if err := enc.Encode(journalRecord{Kind: "golden", Arch: "posit", Golden: &info}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzJournalLoad feeds arbitrary bytes through the journal open path:
// torn tails, corrupt headers, mixed-fingerprint records, binary garbage.
// The contract under attack: OpenJournal never panics, and its torn-tail
// truncation is deterministic — opening the file it just repaired yields
// the same resume set and the same bytes (truncation reaches a fixed point
// after one pass).
func FuzzJournalLoad(f *testing.F) {
	valid := validJournalBytes(f, 4)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-7])                                              // torn tail mid-record
	f.Add(append(append([]byte{}, valid...), "{\"kind"...))                  // torn appended record
	f.Add(append(append([]byte{}, valid...), 0, 1, 2, 0xff))                 // binary garbage tail
	f.Add([]byte(`{"kind":"run","arch":"posit","result":{"run":0}}` + "\n")) // runs before header
	f.Add([]byte(`{"kind":"header","meta":{"version":99,"workload":"other"}}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add(bytes.Replace(valid, []byte(`"seed":42`), []byte(`"seed":43`), 1)) // fingerprint mismatch

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path, fuzzCampaign)
		if err != nil {
			// Rejected journals must be rejected identically on retry —
			// no partial truncation before the error.
			if _, err2 := OpenJournal(path, fuzzCampaign); err2 == nil {
				t.Fatalf("first open failed (%v) but second succeeded", err)
			}
			return
		}
		resumed := j.Resumed()
		after1, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		j2, err := OpenJournal(path, fuzzCampaign)
		if err != nil {
			t.Fatalf("reopen of repaired journal failed: %v", err)
		}
		if j2.Resumed() != resumed {
			t.Fatalf("resume set changed across reopen: %d then %d", resumed, j2.Resumed())
		}
		after2, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		j2.Close()
		if !bytes.Equal(after1, after2) {
			t.Fatalf("truncation not a fixed point: %d bytes then %d bytes", len(after1), len(after2))
		}
	})
}
