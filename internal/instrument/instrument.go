// Package instrument implements the compile-time instrumentation pass of
// PositDebug/FPSanitizer: it rewrites an IR module, inserting explicit
// shadow instructions around every operation involving numeric (posit or
// float) values — arithmetic, comparisons, casts, loads, stores, calls,
// returns, prints, and quire operations. The uninstrumented module is left
// untouched (the pass copies), so baselines pay zero overhead, exactly like
// the paper's LLVM pass.
package instrument

import "positdebug/internal/ir"

// Options configures the pass.
type Options struct {
	// Skip lists function names to leave uninstrumented, emulating the
	// paper's incremental-deployment mode (§4.1: values written by
	// uninstrumented code are detected at load time via the stored
	// program-value check).
	Skip map[string]bool
}

// Instrument returns an instrumented copy of the module. The input module
// is not modified; the two share the (immutable) instruction registry.
func Instrument(mod *ir.Module, opts Options) *ir.Module {
	out := &ir.Module{
		FuncIdx:    mod.FuncIdx,
		Globals:    mod.Globals,
		GlobalBase: mod.GlobalBase,
		GlobalSize: mod.GlobalSize,
		Registry:   mod.Registry,
		Source:     mod.Source,
	}
	out.Funcs = make([]*ir.Func, len(mod.Funcs))
	for i, f := range mod.Funcs {
		if opts.Skip[f.Name] {
			out.Funcs[i] = f
			continue
		}
		out.Funcs[i] = instrumentFunc(mod, f)
	}
	return out
}

func instrumentFunc(mod *ir.Module, f *ir.Func) *ir.Func {
	nf := &ir.Func{
		Name:         f.Name,
		Params:       f.Params,
		Ret:          f.Ret,
		NumRegs:      f.NumRegs,
		FrameSize:    f.FrameSize,
		Instrumented: true,
	}
	nf.Blocks = make([]ir.Block, len(f.Blocks))
	for bi, b := range f.Blocks {
		instrs := make([]ir.Instr, 0, len(b.Instrs)*2)
		for _, in := range b.Instrs {
			pre, post := shadowFor(mod, f, in)
			if pre != nil {
				instrs = append(instrs, *pre)
			}
			instrs = append(instrs, in)
			if post != nil {
				instrs = append(instrs, *post)
			}
		}
		nf.Blocks[bi].Instrs = instrs
	}
	return nf
}

// shadowFor decides which shadow instruction (if any) accompanies in, and
// whether it runs before or after it. Terminators take their shadow before
// (the transfer must remain last in the block); everything else after, so
// the hook observes the produced register value.
func shadowFor(mod *ir.Module, f *ir.Func, in ir.Instr) (pre, post *ir.Instr) {
	mk := func(op ir.Op) *ir.Instr {
		s := in // copies registers, types, kind, id, imm
		s.Op = op
		s.Args = in.Args
		return &s
	}
	switch in.Op {
	case ir.OpConst:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowConst)
		}
	case ir.OpMov:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowMov)
		}
	case ir.OpBin:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowBin)
		}
	case ir.OpUn:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowUn)
		}
	case ir.OpCmp:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowCmp)
		}
	case ir.OpCast:
		if in.Type.IsNumeric() || in.Type2.IsNumeric() {
			return nil, mk(ir.OpShadowCast)
		}
	case ir.OpLoad:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowLoad)
		}
	case ir.OpStore:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowStore)
		}
	case ir.OpCall:
		callee := mod.Funcs[in.Fn]
		if len(callee.Params) > 0 {
			pre = mk(ir.OpShadowPreCall)
		}
		if in.Dst >= 0 && in.Type.IsNumeric() {
			post = mk(ir.OpShadowPostCall)
		}
		return pre, post
	case ir.OpRet:
		// The runtime needs the return event for numeric returns (shadow
		// stack) — and terminators must stay last, so shadow goes before.
		if in.A >= 0 && f.Ret.IsNumeric() {
			s := mk(ir.OpShadowRet)
			s.Type = f.Ret
			return s, nil
		}
	case ir.OpPrint:
		if in.Type.IsNumeric() {
			return nil, mk(ir.OpShadowPrint)
		}
	case ir.OpQClear:
		return nil, mk(ir.OpShadowQClear)
	case ir.OpQAdd:
		return nil, mk(ir.OpShadowQAdd)
	case ir.OpQMAdd:
		return nil, mk(ir.OpShadowQMAdd)
	case ir.OpQVal:
		return nil, mk(ir.OpShadowQVal)
	case ir.OpFMA:
		return nil, mk(ir.OpShadowFMA)
	}
	return nil, nil
}
