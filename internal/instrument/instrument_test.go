package instrument

import (
	"testing"

	"positdebug/internal/codegen"
	"positdebug/internal/ir"
	"positdebug/internal/lang"
)

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

const src = `
var g: p32;

func helper(x: p32): p32 {
	return sqrt(x) * 2.0;
}

func main(): i64 {
	g = helper(2.25) - 1.0;
	if (g > 0.0) {
		print(g);
		return i64(g * 10.0);
	}
	qclear();
	qmadd(g, g);
	qadd(g);
	g = qround_p32() + fma(g, g, g);
	var n: i64 = 3 + 4;
	return n;
}
`

func countOps(m *ir.Module) map[ir.Op]int {
	counts := map[ir.Op]int{}
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				counts[in.Op]++
			}
		}
	}
	return counts
}

// TestPassInsertsShadows: every numeric instruction gains exactly one
// shadow instruction, non-numeric instructions gain none, and the
// original module is untouched.
func TestPassInsertsShadows(t *testing.T) {
	mod := compile(t, src)
	before := countOps(mod)
	inst := Instrument(mod, Options{})
	if err := inst.Verify(); err != nil {
		t.Fatalf("instrumented module invalid: %v", err)
	}
	after := countOps(inst)

	// The original is untouched.
	if got := countOps(mod); got[ir.OpShadowBin] != 0 || got[ir.OpShadowStore] != 0 {
		t.Fatal("input module was mutated")
	}
	for _, f := range mod.Funcs {
		if f.Instrumented {
			t.Fatal("input functions must stay unmarked")
		}
	}
	for _, f := range inst.Funcs {
		if !f.Instrumented {
			t.Fatalf("function %s not marked instrumented", f.Name)
		}
	}
	// One shadow per shadowed original (numeric ops only).
	pairs := []struct {
		orig, sh ir.Op
	}{
		{ir.OpLoad, ir.OpShadowLoad},
		{ir.OpUn, ir.OpShadowUn},
		{ir.OpCmp, ir.OpShadowCmp},
		{ir.OpQAdd, ir.OpShadowQAdd},
		{ir.OpQMAdd, ir.OpShadowQMAdd},
		{ir.OpQVal, ir.OpShadowQVal},
		{ir.OpQClear, ir.OpShadowQClear},
		{ir.OpFMA, ir.OpShadowFMA},
		{ir.OpPrint, ir.OpShadowPrint},
	}
	for _, p := range pairs {
		if after[p.sh] == 0 {
			t.Fatalf("no %v inserted", p.sh)
		}
		if after[p.sh] > before[p.orig] {
			t.Fatalf("%v: %d shadows for %d originals", p.sh, after[p.sh], before[p.orig])
		}
	}
	// Integer-only arithmetic (3+4, i64 n) must NOT be shadowed: the
	// number of shadow-bin instructions is strictly below the bin count.
	if after[ir.OpShadowBin] >= before[ir.OpBin] {
		t.Fatalf("i64 binops were shadowed: %d shadows for %d bins", after[ir.OpShadowBin], before[ir.OpBin])
	}
	if after[ir.OpShadowBin] == 0 {
		t.Fatal("posit binops not shadowed")
	}
}

// TestShadowPlacement: shadow instructions follow their target, except for
// returns (before the terminator) and pre-call events.
func TestShadowPlacement(t *testing.T) {
	mod := compile(t, src)
	inst := Instrument(mod, Options{})
	for _, f := range inst.Funcs {
		for bi, b := range f.Blocks {
			for ii, in := range b.Instrs {
				switch in.Op {
				case ir.OpShadowRet:
					if ii+1 >= len(b.Instrs) || b.Instrs[ii+1].Op != ir.OpRet {
						t.Fatalf("%s b%d: sh.ret not directly before ret", f.Name, bi)
					}
				case ir.OpShadowPreCall:
					if ii+1 >= len(b.Instrs) || b.Instrs[ii+1].Op != ir.OpCall {
						t.Fatalf("%s b%d: sh.precall not directly before call", f.Name, bi)
					}
				case ir.OpShadowBin:
					if ii == 0 || b.Instrs[ii-1].Op != ir.OpBin {
						t.Fatalf("%s b%d: sh.bin not directly after bin", f.Name, bi)
					}
				}
			}
			// Terminator still last.
			last := b.Instrs[len(b.Instrs)-1].Op
			if last != ir.OpBr && last != ir.OpJmp && last != ir.OpRet {
				t.Fatalf("%s b%d ends with %v", f.Name, bi, last)
			}
		}
	}
}

// TestSkipOption: skipped functions stay uninstrumented while the rest of
// the module is transformed (the paper's incremental-deployment mode).
func TestSkipOption(t *testing.T) {
	mod := compile(t, src)
	inst := Instrument(mod, Options{Skip: map[string]bool{"helper": true}})
	h := inst.FuncByName("helper")
	if h.Instrumented {
		t.Fatal("helper must be skipped")
	}
	for _, b := range h.Blocks {
		for _, in := range b.Instrs {
			if in.Op >= ir.OpShadowConst {
				t.Fatal("skipped function contains shadow instructions")
			}
		}
	}
	if !inst.FuncByName("main").Instrumented {
		t.Fatal("main must be instrumented")
	}
}

// TestRegistryShared: the instrumented module shares the immutable
// registry, so instruction ids resolve identically.
func TestRegistryShared(t *testing.T) {
	mod := compile(t, src)
	inst := Instrument(mod, Options{})
	if len(inst.Registry) != len(mod.Registry) {
		t.Fatal("registry must be shared")
	}
}
