package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// knownKinds is the closed event taxonomy; ValidateJSONLines rejects
// anything outside it so schema drift fails CI instead of silently passing.
var knownKinds = map[string]bool{
	EvRunStart:      true,
	EvRunEnd:        true,
	EvDetect:        true,
	EvDegrade:       true,
	EvInject:        true,
	EvRunOutcome:    true,
	EvWorkerStart:   true,
	EvWorkerStop:    true,
	EvCampaignStart: true,
	EvCampaignEnd:   true,
	EvArchStart:     true,
	EvSpanBegin:     true,
	EvSpanEnd:       true,

	EvShardDispatch:  true,
	EvShardDone:      true,
	EvShardRetry:     true,
	EvLeaseMigrate:   true,
	EvMemberJoin:     true,
	EvMemberLeave:    true,
	EvMemberDead:     true,
	EvDetectionFound: true,
}

// ValidateJSONLines checks a JSON-lines trace against the event schema:
// every line parses as an Event with no unknown fields, kinds come from the
// closed taxonomy, sequence numbers start at 1 and increase strictly by 1,
// and per-kind required fields are present. Sequencing is per stream: when
// the request id changes between lines, a new stream begins and its
// sequence may start anywhere (a flight log concatenates per-request ring
// dumps, and a full ring evicted its oldest events) — but within a stream
// the strict +1 rule holds. Returns the number of valid events, or the
// first violation.
func ValidateJSONLines(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var (
		n       int
		prev    uint64
		prevReq string
		first   = true
	)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		n++
		dec := json.NewDecoder(newByteReader(line))
		dec.DisallowUnknownFields()
		var e Event
		if err := dec.Decode(&e); err != nil {
			return n, fmt.Errorf("line %d: %v", n, err)
		}
		newStream := first || e.Req != prevReq
		if err := checkEvent(e, prev, newStream); err != nil {
			return n, fmt.Errorf("line %d: %v", n, err)
		}
		prev, prevReq, first = e.Seq, e.Req, false
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("trace: empty")
	}
	return n, nil
}

func checkEvent(e Event, prev uint64, newStream bool) error {
	if !knownKinds[e.Kind] {
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	// A request-stamped stream may begin at any sequence number (ring
	// eviction drops its head); unstamped traces must start at 1.
	if newStream && e.Req != "" {
		if e.Seq == 0 {
			return fmt.Errorf("seq 0 (must be positive)")
		}
	} else if e.Seq != prev+1 {
		return fmt.Errorf("seq %d after %d (must increase by 1 from 1)", e.Seq, prev)
	}
	switch e.Kind {
	case EvRunStart:
		if e.Func == "" {
			return fmt.Errorf("%s: missing func", e.Kind)
		}
	case EvRunEnd:
		if e.Outcome == "" {
			return fmt.Errorf("%s: missing outcome", e.Kind)
		}
	case EvDetect:
		if e.Detect == "" {
			return fmt.Errorf("%s: missing detect", e.Kind)
		}
	case EvDegrade:
		if e.Precision == 0 {
			return fmt.Errorf("%s: missing precision", e.Kind)
		}
	case EvInject:
		if e.Inst < 0 {
			return fmt.Errorf("%s: missing inst", e.Kind)
		}
	case EvRunOutcome:
		if e.Outcome == "" {
			return fmt.Errorf("%s: missing outcome", e.Kind)
		}
		if e.Run < 0 {
			return fmt.Errorf("%s: missing run", e.Kind)
		}
	case EvCampaignStart, EvCampaignEnd:
		if e.Name == "" {
			return fmt.Errorf("%s: missing name", e.Kind)
		}
	case EvArchStart:
		if e.Arch == "" {
			return fmt.Errorf("%s: missing arch", e.Kind)
		}
	case EvShardDispatch, EvShardDone, EvShardRetry, EvLeaseMigrate, EvDetectionFound:
		if e.Name == "" {
			return fmt.Errorf("%s: missing name", e.Kind)
		}
		if e.Addr == "" {
			return fmt.Errorf("%s: missing addr", e.Kind)
		}
		if e.Kind == EvShardDispatch && e.Outcome == "" {
			return fmt.Errorf("%s: missing outcome", e.Kind)
		}
	case EvMemberJoin, EvMemberLeave, EvMemberDead:
		if e.Addr == "" {
			return fmt.Errorf("%s: missing addr", e.Kind)
		}
	case EvSpanBegin, EvSpanEnd:
		if e.Name == "" {
			return fmt.Errorf("%s: missing name", e.Kind)
		}
		if e.Span == 0 {
			return fmt.Errorf("%s: missing span id", e.Kind)
		}
		if e.Kind == EvSpanBegin && e.Parent >= e.Span {
			return fmt.Errorf("%s: parent %d not older than span %d", e.Kind, e.Parent, e.Span)
		}
	}
	return nil
}

// newByteReader avoids importing bytes just for a one-shot reader.
type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}
