package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Cross-process trace propagation. One fleet job owns one 128-bit trace
// id; the coordinator stamps every outgoing worker request with a
// W3C-trace-context-shaped `traceparent` header carrying that id plus the
// span id of the coordinator-side attempt span that caused the request.
// The worker adopts the pair, stamps the trace id onto every event its
// flight recorder captures, and reports the parent span id back with its
// span batch so the merger can hang the worker's request span under the
// right coordinator attempt.

// TraceparentHeader is the canonical header name (W3C trace context).
const TraceparentHeader = "traceparent"

// RequestIDHeader carries the coordinator-chosen request id; the worker
// adopts it as its flight id so both sides log the same handle.
const RequestIDHeader = "X-Request-Id"

// TraceContext is one request's cross-process trace binding.
type TraceContext struct {
	// TraceID is 32 lowercase hex characters shared by every process
	// working on one job.
	TraceID string
	// SpanID is the coordinator-side parent span id (nonzero).
	SpanID uint64
}

// Valid reports whether the context is complete enough to propagate.
func (tc TraceContext) Valid() bool {
	return len(tc.TraceID) == 32 && tc.SpanID != 0
}

// Traceparent renders the context in W3C form:
// "00-<32 hex trace id>-<16 hex span id>-01".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%016x-01", tc.TraceID, tc.SpanID)
}

// ParseTraceparent parses a W3C traceparent header. It accepts any
// version field and ignores the trace flags; malformed headers return
// ok == false rather than an error, since an incoming request without a
// usable binding simply runs untraced.
func ParseTraceparent(h string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 {
		return TraceContext{}, false
	}
	traceID, spanHex := strings.ToLower(parts[1]), parts[2]
	if len(traceID) != 32 || !isHex(traceID) || len(spanHex) != 16 {
		return TraceContext{}, false
	}
	span, err := strconv.ParseUint(spanHex, 16, 64)
	if err != nil || span == 0 {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: span}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// DeriveTraceID hashes the given parts into a deterministic 128-bit trace
// id (32 hex chars). Deriving from the job's identity (workload, seed,
// runs, …) keeps the whole distributed trace — ids included —
// reproducible across reruns.
func DeriveTraceID(parts ...string) string {
	h := sha256.Sum256([]byte(strings.Join(parts, "\x1f")))
	return hex.EncodeToString(h[:16])
}
