package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLinesSeqAndValidate(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLines(&buf)

	e := NewEvent(EvRunStart)
	e.Func = "main"
	e.Precision = 256
	s.Emit(e)

	d := NewEvent(EvDetect)
	d.Detect = "cancellation"
	d.Inst = 7
	d.ErrBits = 48
	s.Emit(d)

	end := NewEvent(EvRunEnd)
	end.Outcome = "ok"
	end.Steps = 123
	s.Emit(end)

	if s.Err() != nil {
		t.Fatalf("sink error: %v", s.Err())
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	n, err := ValidateJSONLines(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if n != 3 {
		t.Fatalf("validated %d events, want 3", n)
	}
}

func TestValidateJSONLinesRejects(t *testing.T) {
	cases := []struct {
		name string
		line string
		want string
	}{
		{"unknown kind", `{"seq":1,"kind":"bogus","run":-1,"inst":-1}`, "unknown kind"},
		{"bad seq", `{"seq":2,"kind":"run-start","run":-1,"inst":-1,"func":"main"}`, "seq"},
		{"missing detect", `{"seq":1,"kind":"detection","run":-1,"inst":3}`, "missing detect"},
		{"unknown field", `{"seq":1,"kind":"run-start","run":-1,"inst":-1,"func":"main","bogus":1}`, "bogus"},
		{"empty", ``, "empty"},
	}
	for _, tc := range cases {
		_, err := ValidateJSONLines(strings.NewReader(tc.line))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateJSONLinesFlightLog: a flight log concatenates per-request
// ring dumps — the sequence restarts at each request-id change and, after
// eviction, a dump may start above 1. Both must validate; a seq break
// *within* one request's stream must not.
func TestValidateJSONLinesFlightLog(t *testing.T) {
	ok := strings.Join([]string{
		`{"seq":1,"kind":"run-start","run":-1,"inst":-1,"func":"main","req":"r1"}`,
		`{"seq":2,"kind":"run-end","run":-1,"inst":-1,"outcome":"ok","req":"r1"}`,
		`{"seq":4,"kind":"run-start","run":-1,"inst":-1,"func":"main","req":"r2"}`, // evicted head
		`{"seq":5,"kind":"run-end","run":-1,"inst":-1,"outcome":"ok","req":"r2"}`,
	}, "\n")
	if n, err := ValidateJSONLines(strings.NewReader(ok)); err != nil || n != 4 {
		t.Fatalf("flight log rejected: n=%d err=%v", n, err)
	}
	bad := strings.Join([]string{
		`{"seq":1,"kind":"run-start","run":-1,"inst":-1,"func":"main","req":"r1"}`,
		`{"seq":3,"kind":"run-end","run":-1,"inst":-1,"outcome":"ok","req":"r1"}`,
	}, "\n")
	if _, err := ValidateJSONLines(strings.NewReader(bad)); err == nil {
		t.Fatal("in-stream seq gap accepted")
	}
	// Unstamped traces still must start at 1.
	if _, err := ValidateJSONLines(strings.NewReader(
		`{"seq":2,"kind":"run-start","run":-1,"inst":-1,"func":"main"}`)); err == nil {
		t.Fatal("unstamped trace starting at 2 accepted")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		e := NewEvent(EvDetect)
		e.Inst = int32(i)
		r.Emit(e)
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	evs := r.Events()
	for i, want := range []int32{2, 3, 4} {
		if evs[i].Inst != want {
			t.Fatalf("events[%d].Inst = %d, want %d", i, evs[i].Inst, want)
		}
	}
	// Seq reflects lifetime position, not retained position.
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("seqs = %d..%d, want 3..5", evs[0].Seq, evs[2].Seq)
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatalf("reset: len=%d total=%d", r.Len(), r.Total())
	}
}

func TestBufferDrainDeterministicMerge(t *testing.T) {
	// Simulate a 2-run parallel campaign: each run buffers its own events;
	// draining in run order into one terminal sink must produce the same
	// bytes regardless of which buffer was filled first.
	mkRun := func(inst int32) *Buffer {
		b := &Buffer{}
		e := NewEvent(EvInject)
		e.Inst = inst
		b.Emit(e)
		return b
	}
	render := func(first, second *Buffer) string {
		var out bytes.Buffer
		sink := NewJSONLines(&out)
		for run, b := range []*Buffer{first, second} {
			run := run
			b.DrainTo(sink, func(e *Event) { e.Run = run })
		}
		return out.String()
	}
	a := render(mkRun(10), mkRun(20))
	b := render(mkRun(10), mkRun(20))
	if a != b {
		t.Fatalf("merge not deterministic:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `"run":0`) || !strings.Contains(a, `"run":1`) {
		t.Fatalf("run stamping missing: %s", a)
	}
}

func TestMultiFanOut(t *testing.T) {
	ring := NewRing(8)
	buf := &Buffer{}
	m := Multi{ring, buf}
	m.Emit(NewEvent(EvDetect))
	if ring.Len() != 1 || buf.Len() != 1 {
		t.Fatalf("fan-out: ring=%d buf=%d", ring.Len(), buf.Len())
	}
}

func TestRegistryPromDump(t *testing.T) {
	r := NewRegistry()
	r.Counter(`pd_detections_total{kind="nar"}`).Add(2)
	r.Counter(`pd_detections_total{kind="cancellation"}`).Inc()
	r.Counter("pd_shadow_ops_total").Add(100)
	r.Gauge("pd_precision_bits").Set(256)
	h := r.Histogram("pd_op_err_bits")
	h.Observe(10)
	h.Observe(10)
	h.Observe(64)
	h.Observe(999) // overflow

	out := r.String()
	for _, want := range []string{
		"# TYPE pd_detections_total counter",
		`pd_detections_total{kind="cancellation"} 1`,
		`pd_detections_total{kind="nar"} 2`,
		"pd_shadow_ops_total 100",
		"# TYPE pd_precision_bits gauge",
		"pd_precision_bits 256",
		"# TYPE pd_op_err_bits histogram",
		`pd_op_err_bits_bucket{le="10"} 2`,
		`pd_op_err_bits_bucket{le="64"} 3`,
		`pd_op_err_bits_bucket{le="+Inf"} 4`,
		"pd_op_err_bits_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}
	// Deterministic: two dumps identical.
	if out != r.String() {
		t.Fatalf("prom dump not deterministic")
	}
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(1.0); got != HistMax+1 {
		t.Fatalf("p100 = %d, want overflow bucket %d", got, HistMax+1)
	}
}

func TestLabeledHistogramProm(t *testing.T) {
	r := NewRegistry()
	r.Histogram(`pd_inst_err_bits{inst="7"}`).Observe(3)
	out := r.String()
	for _, want := range []string{
		`pd_inst_err_bits_bucket{inst="7",le="3"} 1`,
		`pd_inst_err_bits_sum{inst="7"} 3`,
		`pd_inst_err_bits_count{inst="7"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}
}

func TestGraphDOT(t *testing.T) {
	g := Graph{
		Name:  "dag",
		Label: "cancellation at foo.pcl:3:7 (48 bits)",
		Nodes: []Node{
			{ID: 1, Inst: 5, Op: "sub.p32", Pos: "foo.pcl:3:7", Program: "1.0", Shadow: "0.9", ErrBits: 48, Root: true},
			{ID: 2, Inst: 3, Op: "mul.p32", ErrBits: 2},
		},
		Edges: []Edge{{From: 1, To: 2}},
	}
	dot := g.DOT()
	if err := CheckDOT(dot); err != nil {
		t.Fatalf("CheckDOT: %v\n%s", err, dot)
	}
	for _, want := range []string{"digraph", "n1 ->", "sub.p32", "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if dot != g.DOT() {
		t.Fatalf("DOT not deterministic")
	}

	var all bytes.Buffer
	if err := WriteDOTAll(&all, "report", []Graph{g, g}); err != nil {
		t.Fatalf("WriteDOTAll: %v", err)
	}
	if err := CheckDOT(all.String()); err != nil {
		t.Fatalf("CheckDOT(all): %v\n%s", err, all.String())
	}
	if !strings.Contains(all.String(), "cluster_1") {
		t.Fatalf("missing cluster:\n%s", all.String())
	}
}

func TestCheckDOTRejects(t *testing.T) {
	cases := []struct{ name, src string }{
		{"no header", "graph g { }"},
		{"unclosed brace", "digraph g {"},
		{"stray close", "digraph g { } }"},
		{"unbalanced quote", "digraph g {\n  n1 [label=\"oops];\n}"},
	}
	for _, tc := range cases {
		if err := CheckDOT(tc.src); err == nil {
			t.Errorf("%s: CheckDOT accepted invalid input", tc.name)
		}
	}
}
