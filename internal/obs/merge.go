package obs

import (
	"fmt"
	"io"
	"sort"
)

// Multi-process Chrome-trace merging. A fleet campaign produces one
// coordinator event stream (scheduler spans + fleet instants) and, per
// worker, a set of per-request span batches fetched from the worker's
// /debug/trace endpoint. WriteFleetChromeTrace folds them into ONE
// Perfetto-loadable file: the coordinator on pid 1, each worker on its
// own pid row, and every worker request span parented (via args.coord_span)
// under the coordinator attempt span that dispatched it.
//
// Determinism rules. Output depends only on the *content* of the inputs,
// never on arrival order: workers are sorted by label, requests by their
// parent attempt's position then id, and all timestamps are Seq-virtual.
// Each process keeps its own virtual clock; the merger rebases them onto
// one timeline by slotting every worker batch strictly inside its parent
// attempt span: with W = 2 + the largest batch length, coordinator seq s
// maps to ts s·W, and a batch parented under an attempt that began at
// coordinator seq b occupies ts b·W+1 … b·W+1+len — always inside the
// attempt slice, which cannot end before (b+1)·W.

// coordinatorPID is the pid row the merger reserves for the coordinator
// process; ValidateChromeTrace resolves args.coord_span against it.
const coordinatorPID = 1

// RequestTrace is one worker request's span batch, as served by
// GET /debug/trace/{requestID}.
type RequestTrace struct {
	// Req is the request id (coordinator-stamped via X-Request-Id).
	Req string `json:"req"`
	// Trace is the trace id the request carried in (may be empty).
	Trace string `json:"trace,omitempty"`
	// Parent is the coordinator-side span id from the incoming
	// traceparent — the attempt span this request hangs under.
	Parent uint64 `json:"parent,omitempty"`
	// Events is the flight recorder's capture for the request, local
	// Seq/span-id space.
	Events []Event `json:"events"`
}

// WorkerTrace is one worker process's contribution to a fleet trace.
type WorkerTrace struct {
	// Label names the worker's pid row (its URL, typically).
	Label string `json:"label"`
	// Requests holds the request batches collected from this worker, in
	// any order.
	Requests []RequestTrace `json:"requests"`
}

// WriteFleetChromeTrace merges one coordinator event stream and any
// number of worker span batches into a single Chrome trace-event JSON
// file. Every request batch must carry a Parent naming a span that
// begins in the coordinator stream; an unresolvable parent is an error
// (rule orphan-parent), not a silent drop — a trace that quietly lost a
// worker would defeat its purpose.
func WriteFleetChromeTrace(w io.Writer, coordLabel string, coord []Event, workers []WorkerTrace) error {
	// Canonicalize inputs: workers by label, dedup by label (last write
	// wins would be order-dependent, so duplicates are an error).
	ws := append([]WorkerTrace(nil), workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Label < ws[j].Label })
	for i := 1; i < len(ws); i++ {
		if ws[i].Label == ws[i-1].Label {
			return fmt.Errorf("fleet trace: duplicate worker label %q", ws[i].Label)
		}
	}

	// Index coordinator span begins/ends by id.
	type spanPos struct{ begin, end uint64 }
	coordSpans := map[uint64]*spanPos{}
	for _, e := range coord {
		switch e.Kind {
		case EvSpanBegin:
			if e.Span != 0 {
				coordSpans[e.Span] = &spanPos{begin: e.Seq}
			}
		case EvSpanEnd:
			if sp := coordSpans[e.Span]; sp != nil && sp.end == 0 {
				sp.end = e.Seq
			}
		}
	}

	// Slot width: wide enough that any batch fits inside one coordinator
	// seq tick.
	maxBatch := 0
	for _, wt := range ws {
		for _, rt := range wt.Requests {
			if len(rt.Events) > maxBatch {
				maxBatch = len(rt.Events)
			}
		}
	}
	slot := uint64(2 + maxBatch)

	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	meta := func(pid int, name string) {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid, TID: 1,
			Args: map[string]string{"name": name},
		})
	}
	meta(coordinatorPID, coordLabel)
	for i, wt := range ws {
		meta(coordinatorPID + 1 + i, wt.Label)
	}

	// Coordinator row: spans emitted at their begin position in seq
	// order, instants in place. Lanes (tids) are allocated so that
	// overlapping attempt spans (hedges, concurrent shards) never share a
	// track unless properly nested — Chrome's "X" rendering stacks by
	// containment per tid.
	lanes := newLaneAlloc()
	for _, e := range coord {
		switch e.Kind {
		case EvSpanBegin:
			sp := coordSpans[e.Span]
			if sp == nil || sp.end == 0 || sp.end < sp.begin {
				continue // still open at stream end: dropped, like WriteChromeTrace
			}
			ts, end := sp.begin*slot, sp.end*slot
			ce := chromeEvent{
				Name: e.Name, Phase: "X", TS: ts, Dur: end - ts,
				PID: coordinatorPID, TID: lanes.assign(ts, end),
			}
			if ce.Dur == 0 {
				ce.Dur = 1
			}
			ce.Args = map[string]string{"span": fmt.Sprint(e.Span)}
			if e.Parent != 0 {
				ce.Args["parent"] = fmt.Sprint(e.Parent)
			}
			if e.Req != "" {
				ce.Args["req"] = e.Req
			}
			tr.TraceEvents = append(tr.TraceEvents, ce)
		case EvSpanEnd:
		default:
			ce := chromeEvent{
				Name: e.Kind, Phase: "i", Scope: "t",
				TS: e.Seq * slot, PID: coordinatorPID, TID: 1,
				Args: instantArgs(e),
			}
			tr.TraceEvents = append(tr.TraceEvents, ce)
		}
	}

	// Worker rows. Requests are ordered by their parent attempt's begin
	// position (then id), which both makes per-pid timestamps monotonic
	// and keeps the output independent of fetch/arrival order. Local span
	// ids are rebased to be unique within the pid.
	for wi, wt := range ws {
		pid := coordinatorPID + 1 + wi
		reqs := append([]RequestTrace(nil), wt.Requests...)
		baseOf := make(map[string]uint64, len(reqs))
		for _, rt := range reqs {
			sp := coordSpans[rt.Parent]
			if rt.Parent == 0 || sp == nil {
				return fmt.Errorf("fleet trace: rule orphan-parent: request %s from %s: parent span %d not in coordinator stream",
					rt.Req, wt.Label, rt.Parent)
			}
			baseOf[rt.Req] = sp.begin * slot
		}
		sort.Slice(reqs, func(i, j int) bool {
			bi, bj := baseOf[reqs[i].Req], baseOf[reqs[j].Req]
			if bi != bj {
				return bi < bj
			}
			return reqs[i].Req < reqs[j].Req
		})
		for i := 1; i < len(reqs); i++ {
			if reqs[i].Req == reqs[i-1].Req {
				return fmt.Errorf("fleet trace: duplicate request %s from %s", reqs[i].Req, wt.Label)
			}
		}
		var idOffset uint64
		for ti, rt := range reqs {
			base := baseOf[rt.Req]
			// End positions of local spans, by local id.
			ends := map[uint64]int{}
			var maxID uint64
			for idx, e := range rt.Events {
				if e.Kind == EvSpanEnd && e.Span != 0 {
					if _, ok := ends[e.Span]; !ok {
						ends[e.Span] = idx
					}
				}
				if e.Span > maxID {
					maxID = e.Span
				}
			}
			for idx, e := range rt.Events {
				ts := base + 1 + uint64(idx)
				switch e.Kind {
				case EvSpanBegin:
					endIdx, ok := ends[e.Span]
					if !ok || endIdx < idx {
						continue
					}
					ce := chromeEvent{
						Name: e.Name, Phase: "X", TS: ts,
						Dur: uint64(endIdx - idx), PID: pid, TID: ti + 1,
					}
					if ce.Dur == 0 {
						ce.Dur = 1
					}
					ce.Args = map[string]string{
						"span": fmt.Sprint(idOffset + e.Span),
						"req":  rt.Req,
					}
					if e.Parent != 0 {
						ce.Args["parent"] = fmt.Sprint(idOffset + e.Parent)
					} else {
						// Request-root span: its parent lives in the
						// coordinator process.
						ce.Args["coord_span"] = fmt.Sprint(rt.Parent)
						if rt.Trace != "" {
							ce.Args["trace"] = rt.Trace
						}
					}
					tr.TraceEvents = append(tr.TraceEvents, ce)
				case EvDetect, EvInject:
					ce := chromeEvent{
						Name: e.Kind, Phase: "i", Scope: "t",
						TS: ts, PID: pid, TID: ti + 1,
						Args: instantArgs(e),
					}
					tr.TraceEvents = append(tr.TraceEvents, ce)
				}
			}
			idOffset += maxID
		}
	}

	b, err := marshalChrome(&tr)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// instantArgs renders an event's populated fields as Chrome args.
func instantArgs(e Event) map[string]string {
	args := map[string]string{}
	if e.Detect != "" {
		args["detect"] = e.Detect
	}
	if e.Pos != "" {
		args["pos"] = e.Pos
	}
	if e.Inst >= 0 {
		args["inst"] = fmt.Sprint(e.Inst)
	}
	if e.Addr != "" {
		args["addr"] = e.Addr
	}
	if e.Outcome != "" {
		args["outcome"] = e.Outcome
	}
	if e.Name != "" {
		args["shard"] = e.Name
	}
	if e.Req != "" {
		args["req"] = e.Req
	}
	if e.Count != 0 {
		args["count"] = fmt.Sprint(e.Count)
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// laneAlloc assigns coordinator spans to tid lanes so that slices on one
// lane are always properly nested: a span may share a lane only if it is
// contained in the lane's innermost open span (or the lane is free).
// Spans must be offered in begin order.
type laneAlloc struct {
	open [][]uint64 // per lane, stack of open-span end timestamps
}

func newLaneAlloc() *laneAlloc { return &laneAlloc{} }

func (l *laneAlloc) assign(begin, end uint64) int {
	for i := range l.open {
		stack := l.open[i]
		for len(stack) > 0 && stack[len(stack)-1] <= begin {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 || stack[len(stack)-1] >= end {
			l.open[i] = append(stack, end)
			return i + 1
		}
		l.open[i] = stack
	}
	l.open = append(l.open, []uint64{end})
	return len(l.open)
}
