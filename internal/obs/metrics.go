package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric, safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a set-to-current-value metric, safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistMax is the largest exactly-bucketed histogram value: error bits run
// 0..64, so every possible double-ULP error count has its own bucket;
// larger observations land in one overflow bucket.
const HistMax = 64

// Histogram counts integer observations on the 0..HistMax scale (the
// error-bits domain of the paper's §4.2 metric), one bucket per value plus
// an overflow bucket. Safe for concurrent use.
type Histogram struct {
	buckets [HistMax + 2]atomic.Int64 // [0..64] exact, [65] overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int) {
	if v < 0 {
		v = 0
	}
	i := v
	if i > HistMax {
		i = HistMax + 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket returns the count of observations equal to v (or, for
// v == HistMax+1, greater than HistMax).
func (h *Histogram) Bucket(v int) int64 {
	if v < 0 || v > HistMax+1 {
		return 0
	}
	return h.buckets[v].Load()
}

// Quantile returns the smallest bucket value at or below which at least
// q of the observations fall — a coarse integer quantile. q is clamped
// into [0, 1]: q ≤ 0 returns the smallest observed bucket, q ≥ 1 the
// largest (never the overflow bucket unless observations landed there).
// An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) int {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 || q != q { // clamp negatives and NaN
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i <= HistMax+1; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i > HistMax {
				return HistMax + 1
			}
			return i
		}
	}
	return HistMax + 1
}

// Registry holds named counters, gauges and histograms. Metric names may
// carry Prometheus-style labels inline (`pd_detections_total{kind="nar"}`);
// the text dump sorts names, so output is deterministic given deterministic
// metric values. Get-or-create lookups take a mutex; the returned metric
// pointers are lock-free, so hot paths cache them once and pay only an
// atomic add per update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SumCounters returns the sum of every counter whose name is exactly base
// or base with an inline label set (`base{...}`) — the aggregate view of
// a labeled counter family, e.g. pd_detections_total across kinds.
func (r *Registry) SumCounters(base string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum int64
	for name, c := range r.counters {
		if name == base || (len(name) > len(base) && name[:len(base)] == base && name[len(base)] == '{') {
			sum += c.Value()
		}
	}
	return sum
}

func (r *Registry) sortedCounterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// baseName strips an inline label set from a metric name.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelPrefix rewrites `name{a="b"}` into `name{a="b",` (or `name{` for an
// unlabelled name) so histogram serialization can append its le label.
func labelPrefix(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return strings.TrimSuffix(name, "}") + ","
	}
	return name + "{"
}

// WriteProm writes the registry in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// le-bucketed series with _sum and _count. Names are sorted, so the dump
// is deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	typed := map[string]bool{}
	emitType := func(name, typ string) {
		base := baseName(name)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
		}
	}

	for _, name := range r.sortedCounterNames() {
		emitType(name, "counter")
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value()); err != nil {
			return err
		}
	}

	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		emitType(name, "gauge")
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.gauges[name].Value()); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := r.hists[name]
		emitType(name, "histogram")
		base := baseName(name)
		pre := labelPrefix(name)
		var cum int64
		for v := 0; v <= HistMax; v++ {
			cum += h.buckets[v].Load()
			// Sparse dump: only emit buckets that change the cumulative
			// count, plus the first; keeps gemm-scale dumps readable.
			if h.buckets[v].Load() == 0 && v != 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"%d\"} %d\n", base, pre[len(base):], v, cum); err != nil {
				return err
			}
		}
		cum += h.buckets[HistMax+1].Load()
		fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", base, pre[len(base):], cum)
		fmt.Fprintf(w, "%s_sum%s %d\n", base, labelSuffix(name), h.Sum())
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labelSuffix(name), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// labelSuffix returns the label set of a metric name ("{...}" or "").
func labelSuffix(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[i:]
	}
	return ""
}

// String renders the Prometheus text dump.
func (r *Registry) String() string {
	var sb strings.Builder
	_ = r.WriteProm(&sb)
	return sb.String()
}

// Publish exposes the registry under the given expvar name as a map of
// metric name → value (histograms export their count, sum and p50/p99).
// Publishing the same name twice is a no-op rather than an expvar panic,
// so warm sessions can call it unconditionally.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} {
		r.mu.Lock()
		defer r.mu.Unlock()
		out := map[string]int64{}
		for n, c := range r.counters {
			out[n] = c.Value()
		}
		for n, g := range r.gauges {
			out[n] = g.Value()
		}
		for n, h := range r.hists {
			out[n+"_count"] = h.Count()
			out[n+"_sum"] = h.Sum()
			out[n+"_p50"] = int64(h.Quantile(0.5))
			out[n+"_p99"] = int64(h.Quantile(0.99))
		}
		return out
	}))
}
