package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Tracer emits causal spans (span-begin/span-end event pairs) into a sink.
// Span ids are a per-tracer counter in begin order, and the canonical
// stream carries no wall time, so a tracer fed by a deterministic pipeline
// produces byte-identical spans regardless of scheduling; parallel sweeps
// give each run its own tracer over the run's Buffer, exactly like every
// other event. Timing mode (EnableTiming) adds wall-clock durations to
// span-end events for human profiling, at the documented cost of byte
// determinism.
//
// A nil *Tracer is valid and inert: Start returns a nil span whose End is
// a no-op, so call sites can trace unconditionally:
//
//	defer tr.Start("compile").End()
//
// Not safe for concurrent use — one tracer per goroutine, like Buffer.
type Tracer struct {
	sink  Sink
	req   string
	next  uint64
	stack []uint64
	clock func() int64 // monotonic ns; non-nil only in timing mode
}

// NewTracer returns a tracer emitting into sink.
func NewTracer(sink Sink) *Tracer { return &Tracer{sink: sink} }

// SetReq stamps every subsequent span event with the request/run id.
func (t *Tracer) SetReq(req string) {
	if t != nil {
		t.req = req
	}
}

// EnableTiming turns on wall-clock durations using the given monotonic
// nanosecond clock (pass nil to turn timing back off).
func (t *Tracer) EnableTiming(clock func() int64) {
	if t != nil {
		t.clock = clock
	}
}

// Span is one open span; End closes it. The zero of *Span (nil) is inert.
type Span struct {
	t     *Tracer
	id    uint64
	name  string
	start int64
	done  bool
	flat  bool // opened via StartChild: not on the nesting stack
}

// ID returns the span's id (0 for a nil span) — the value a caller
// propagates cross-process as the traceparent parent span id.
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Start opens a span nested under the tracer's currently open span.
func (t *Tracer) Start(name string) *Span {
	if t == nil || t.sink == nil {
		return nil
	}
	t.next++
	id := t.next
	var parent uint64
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.stack = append(t.stack, id)
	e := NewEvent(EvSpanBegin)
	e.Name = name
	e.Span = id
	e.Parent = parent
	e.Req = t.req
	t.sink.Emit(e)
	s := &Span{t: t, id: id, name: name}
	if t.clock != nil {
		s.start = t.clock()
	}
	return s
}

// StartChild opens a span explicitly parented under parent (0 = root),
// bypassing the tracer's nesting stack entirely. It exists for event-loop
// callers — a fleet scheduler has many attempt spans open at once, and
// stack discipline would mis-nest them; flat spans close in any order
// without touching each other. The stamped fields (Req, sink, timing)
// behave exactly as for Start.
func (t *Tracer) StartChild(name string, parent uint64) *Span {
	if t == nil || t.sink == nil {
		return nil
	}
	t.next++
	id := t.next
	e := NewEvent(EvSpanBegin)
	e.Name = name
	e.Span = id
	e.Parent = parent
	e.Req = t.req
	t.sink.Emit(e)
	s := &Span{t: t, id: id, name: name, flat: true}
	if t.clock != nil {
		s.start = t.clock()
	}
	return s
}

// End closes the span, emitting its span-end event. Ending out of order
// pops the stack down to (and including) this span, so a forgotten inner
// End cannot wedge the tracer. Double End is a no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	t := s.t
	if !s.flat {
		for i := len(t.stack) - 1; i >= 0; i-- {
			if t.stack[i] == s.id {
				t.stack = t.stack[:i]
				break
			}
		}
	}
	e := NewEvent(EvSpanEnd)
	e.Name = s.name
	e.Span = s.id
	e.Req = t.req
	if t.clock != nil {
		e.Nanos = t.clock() - s.start
	}
	t.sink.Emit(e)
}

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// with metadata" variant), the subset Perfetto renders: complete spans
// (ph "X") and instants (ph "i").
type chromeEvent struct {
	Name  string            `json:"name"`
	Phase string            `json:"ph"`
	TS    uint64            `json:"ts"`
	Dur   uint64            `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level trace-event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteChromeTrace converts an event stream into Chrome trace-event JSON
// loadable in Perfetto or chrome://tracing. Spans become complete ("X")
// slices, detections and injections become instant ("i") markers.
// Timestamps are virtual — the event's sequence number, in microsecond
// ticks — so the output inherits the stream's byte determinism; wall
// durations, when the tracer recorded them, ride along in args.wall_ns.
// Tracks (tids) are assigned per distinct (run, req) in first-appearance
// order. Spans still open at the end of the stream are dropped.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Pre-index span ends by id so a single forward pass can emit complete
	// slices at their begin position (keeping output order deterministic).
	type endInfo struct {
		seq   uint64
		nanos int64
	}
	ends := map[uint64]endInfo{}
	for _, e := range events {
		if e.Kind == EvSpanEnd && e.Span != 0 {
			ends[e.Span] = endInfo{seq: e.Seq, nanos: e.Nanos}
		}
	}

	tids := map[string]int{}
	tidOf := func(e Event) int {
		key := fmt.Sprintf("%d/%s", e.Run, e.Req)
		if id, ok := tids[key]; ok {
			return id
		}
		id := len(tids) + 1
		tids[key] = id
		return id
	}

	tr := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, e := range events {
		switch e.Kind {
		case EvSpanBegin:
			end, ok := ends[e.Span]
			if !ok || end.seq < e.Seq {
				continue
			}
			ce := chromeEvent{
				Name: e.Name, Phase: "X",
				TS: e.Seq, Dur: end.seq - e.Seq,
				PID: 1, TID: tidOf(e),
			}
			if ce.Dur == 0 {
				ce.Dur = 1
			}
			args := map[string]string{}
			if e.Req != "" {
				args["req"] = e.Req
			}
			if e.Parent != 0 {
				args["parent"] = fmt.Sprint(e.Parent)
			}
			if end.nanos != 0 {
				args["wall_ns"] = fmt.Sprint(end.nanos)
			}
			if len(args) > 0 {
				ce.Args = args
			}
			tr.TraceEvents = append(tr.TraceEvents, ce)
		case EvDetect, EvInject:
			ce := chromeEvent{
				Name: e.Kind, Phase: "i", Scope: "t",
				TS: e.Seq, PID: 1, TID: tidOf(e),
			}
			args := map[string]string{}
			if e.Detect != "" {
				args["detect"] = e.Detect
			}
			if e.Pos != "" {
				args["pos"] = e.Pos
			}
			if e.Inst >= 0 {
				args["inst"] = fmt.Sprint(e.Inst)
			}
			if len(args) > 0 {
				ce.Args = args
			}
			tr.TraceEvents = append(tr.TraceEvents, ce)
		}
	}
	b, err := marshalChrome(&tr)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

func marshalChrome(tr *chromeTrace) ([]byte, error) {
	b, err := json.MarshalIndent(tr, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ValidateChromeTrace checks Chrome trace-event JSON structurally,
// including the multi-process traces the fleet merger emits. Violations
// fail with a named rule:
//
//   - "parse": the top-level object must decode with no unknown fields.
//   - "name": every event needs a name.
//   - "phase": only complete ("X"), instant ("i") and metadata ("M")
//     events are in the supported subset.
//   - "dur": complete events carry a positive duration.
//   - "pid-tid": X and i events need positive pid and tid.
//   - "pid-monotonic-ts": within one pid, timestamps never go backward in
//     file order — per-process Seq-virtual time must stay monotonic after
//     the merger rebases it.
//   - "orphan-parent": in a pid whose spans declare their own ids
//     (args.span — the fleet merger always does), every args.parent must
//     name a span id declared in that same pid, and every args.coord_span
//     (a worker span's cross-process parent) must name a span id declared
//     by the coordinator process, pid 1. Single-process traces predating
//     args.span are exempt.
//
// Returns the number of trace events.
func ValidateChromeTrace(r io.Reader) (int, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var tr chromeTrace
	if err := dec.Decode(&tr); err != nil {
		return 0, fmt.Errorf("chrome trace: rule parse: %v", err)
	}

	// First pass: per-pid declared span ids, for the orphan-parent rule.
	spansByPID := map[int]map[string]bool{}
	for _, e := range tr.TraceEvents {
		if id := e.Args["span"]; id != "" {
			set := spansByPID[e.PID]
			if set == nil {
				set = map[string]bool{}
				spansByPID[e.PID] = set
			}
			set[id] = true
		}
	}

	lastTS := map[int]uint64{}
	seenPID := map[int]bool{}
	for i, e := range tr.TraceEvents {
		if e.Name == "" {
			return i, fmt.Errorf("chrome trace: event %d: rule name: missing name", i)
		}
		switch e.Phase {
		case "X":
			if e.Dur == 0 {
				return i, fmt.Errorf("chrome trace: event %d (%s): rule dur: complete event without dur", i, e.Name)
			}
		case "i":
		case "M":
			// Metadata events (process_name etc.) carry no timeline position.
			continue
		default:
			return i, fmt.Errorf("chrome trace: event %d (%s): rule phase: unsupported phase %q", i, e.Name, e.Phase)
		}
		if e.PID <= 0 || e.TID <= 0 {
			return i, fmt.Errorf("chrome trace: event %d (%s): rule pid-tid: bad pid/tid %d/%d", i, e.Name, e.PID, e.TID)
		}
		if seenPID[e.PID] && e.TS < lastTS[e.PID] {
			return i, fmt.Errorf("chrome trace: event %d (%s): rule pid-monotonic-ts: ts %d after %d in pid %d",
				i, e.Name, e.TS, lastTS[e.PID], e.PID)
		}
		seenPID[e.PID], lastTS[e.PID] = true, e.TS
		if set := spansByPID[e.PID]; set != nil {
			if p := e.Args["parent"]; p != "" && !set[p] {
				return i, fmt.Errorf("chrome trace: event %d (%s): rule orphan-parent: parent span %s not declared in pid %d",
					i, e.Name, p, e.PID)
			}
		}
		if cp := e.Args["coord_span"]; cp != "" && !spansByPID[coordinatorPID][cp] {
			return i, fmt.Errorf("chrome trace: event %d (%s): rule orphan-parent: coord_span %s not declared by coordinator pid %d",
				i, e.Name, cp, coordinatorPID)
		}
	}
	return len(tr.TraceEvents), nil
}
