package obs

import (
	"encoding/json"
	"io"
)

// JSONLines writes each event as one JSON object per line — the `pd -trace
// out.jsonl` format. It assigns sequence numbers as it writes, so a stream
// produced by deterministic emission order is byte-identical across runs.
// Errors are sticky: the first write error is kept and later emits become
// no-ops, so hot paths never need to check an error per event.
type JSONLines struct {
	w   io.Writer
	enc *json.Encoder
	n   uint64
	err error
}

// NewJSONLines returns a JSON-lines sink over w.
func NewJSONLines(w io.Writer) *JSONLines {
	return &JSONLines{w: w, enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONLines) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.n++
	e.Seq = s.n
	s.err = s.enc.Encode(e)
}

// Count reports how many events were written.
func (s *JSONLines) Count() uint64 { return s.n }

// Err returns the first write error, if any.
func (s *JSONLines) Err() error { return s.err }

// Ring keeps the most recent events in a fixed-capacity ring buffer — the
// bounded in-memory sink for always-on tracing: a warm session can emit
// indefinitely with memory bounded by the capacity.
type Ring struct {
	buf     []Event
	next    int
	total   uint64
	dropped uint64
}

// NewRing returns a ring sink holding at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	r.total++
	e.Seq = r.total
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
	r.dropped++
}

// Total reports how many events were emitted over the ring's lifetime
// (including evicted ones).
func (r *Ring) Total() uint64 { return r.total }

// Len reports how many events are currently retained.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped reports how many events the ring has evicted to make room —
// the flight recorder's data-loss indicator. Total() − Dropped() ==
// Len() always holds.
func (r *Ring) Dropped() uint64 { return r.dropped }

// PublishMetrics records the ring's lifetime totals into the registry as
// pd_flight_events_total / pd_flight_dropped_total counters (monotonic:
// callers invoke it once per ring lifetime, e.g. after a request).
func (r *Ring) PublishMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Counter("pd_flight_events_total").Add(int64(r.total))
	reg.Counter("pd_flight_dropped_total").Add(int64(r.dropped))
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// Reset drops all retained events and restarts the sequence.
func (r *Ring) Reset() {
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
	r.dropped = 0
}

// Buffer accumulates events in order without assigning sequence numbers —
// the per-shard staging area of a parallel sweep. Each worker fills its
// run's buffer; the campaign forwards buffers to the terminal sink in run
// index order, which assigns the final sequence numbers. That two-phase
// scheme is what makes a parallel trace byte-identical to a sequential one.
type Buffer struct {
	events []Event
}

// Emit implements Sink.
func (b *Buffer) Emit(e Event) { b.events = append(b.events, e) }

// Events returns the buffered events in emission order.
func (b *Buffer) Events() []Event { return b.events }

// Len reports the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// Reset drops the buffered events, keeping the backing array.
func (b *Buffer) Reset() { b.events = b.events[:0] }

// DrainTo forwards every buffered event to the sink (which assigns
// sequence numbers) and resets the buffer. stamp, when non-nil, is applied
// to each event first — campaigns use it to set the run index.
func (b *Buffer) DrainTo(s Sink, stamp func(*Event)) {
	for i := range b.events {
		e := b.events[i]
		if stamp != nil {
			stamp(&e)
		}
		s.Emit(e)
	}
	b.Reset()
}

// SeqBuffer is a terminal in-memory sink: like Buffer it retains every
// event, but it assigns sequence numbers on emit. It is the sink to feed
// WriteChromeTrace, whose virtual timestamps are the sequence numbers —
// events staged in per-run Buffers get their final order here.
type SeqBuffer struct {
	events []Event
}

// Emit implements Sink.
func (b *SeqBuffer) Emit(e Event) {
	e.Seq = uint64(len(b.events) + 1)
	b.events = append(b.events, e)
}

// Events returns the retained events in emission order.
func (b *SeqBuffer) Events() []Event { return b.events }

// Len reports the number of retained events.
func (b *SeqBuffer) Len() int { return len(b.events) }

// Multi fans one event out to several sinks in order.
type Multi []Sink

// Emit implements Sink.
func (m Multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
