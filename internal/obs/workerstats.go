package obs

// WorkerStats is the compact telemetry snapshot a worker's heartbeat
// carries to the coordinator — cheap enough to marshal every beat, rich
// enough for /fleet/status to answer "is this worker healthy and what is
// it doing" without another round trip. It lives in obs (not fabric or
// server) because both sides of the wire depend on the schema.
type WorkerStats struct {
	// QueueDepth is admission-queue length (requests waiting for a slot).
	QueueDepth int64 `json:"queue_depth"`
	// InFlight is requests currently executing.
	InFlight int64 `json:"inflight"`
	// ShadowTier names the worker's current shadow-oracle operating point
	// (e.g. "bigfp-256", "dd", "dd/sample-16") after watchdog degradation.
	ShadowTier string `json:"shadow_tier"`
	// Degraded is true when the memory watchdog has stepped the worker
	// down from its configured tier.
	Degraded bool `json:"degraded,omitempty"`
	// CacheHits / CacheMisses are cumulative compile-cache counters; the
	// hit rate they imply is the payoff of ring affinity.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Detections is the cumulative shadow-oracle detection count across
	// all kinds.
	Detections int64 `json:"detections"`
	// Shards is the cumulative count of campaign/profile shards served.
	Shards int64 `json:"shards"`
}

// CacheHitRate returns hits/(hits+misses), or 0 before any lookup.
func (s WorkerStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}
