// Package obs is the observability layer behind the option-based run API:
// a structured event stream with pluggable sinks, a metrics registry
// (counters and histograms exported via expvar and a Prometheus-style text
// dump), and machine-readable graph export (Graphviz DOT, JSON) for the
// error DAGs the shadow runtime produces.
//
// Determinism is a first-class constraint, matching internal/parallel's
// contract: events carry no wall-clock timestamps, and sequence numbers are
// assigned by the terminal sink, so a parallel campaign that buffers events
// per run and merges them in run-index order produces a byte-identical
// trace to a sequential one. Scheduling-dependent events (worker lifecycle)
// are segregated behind explicit opt-ins so the canonical stream stays
// reproducible across GOMAXPROCS settings.
package obs

// Event kinds. Every event in a trace carries exactly one of these.
const (
	// EvRunStart opens one program execution (fields: Func, Precision,
	// and Seed/Arch when a campaign stamps them).
	EvRunStart = "run-start"
	// EvRunEnd closes one program execution (fields: Steps, Precision,
	// Outcome "ok"/"degraded"/"error").
	EvRunEnd = "run-end"
	// EvDetect is one shadow-oracle detection (fields: Detect, Inst, Func,
	// Pos, ErrBits, Program, Shadow). Saturation and NaR exceptions are
	// detections with the corresponding Detect kind.
	EvDetect = "detection"
	// EvDegrade marks a shadow-memory-budget retry at a lower precision
	// (fields: Precision = the new, reduced precision).
	EvDegrade = "degrade"
	// EvInject is one injected fault (fields: Inst, Op, Bit, Before,
	// After), emitted in schedule order interleaved with detections.
	EvInject = "inject"
	// EvRunOutcome is a campaign's classification of one run (fields: Run,
	// Outcome masked/sdc/detected/crashed/hung, ErrBits, Seed).
	EvRunOutcome = "run-outcome"
	// EvWorkerStart / EvWorkerStop bracket one worker's lifetime (field:
	// Worker). They depend on GOMAXPROCS, so campaigns only emit them on
	// explicit opt-in, outside the deterministic canonical stream.
	EvWorkerStart = "worker-start"
	EvWorkerStop  = "worker-stop"
	// EvCampaignStart / EvCampaignEnd bracket a fault-injection campaign
	// (fields: Name = workload, Seed).
	EvCampaignStart = "campaign-start"
	EvCampaignEnd   = "campaign-end"
	// EvArchStart opens one architecture's half of a campaign (fields:
	// Arch, Program = formatted golden value).
	EvArchStart = "arch-start"
	// EvSpanBegin / EvSpanEnd bracket one causal span (fields: Name = span
	// name, Span = deterministic span id, Parent = enclosing span id or 0).
	// EvSpanEnd additionally carries Nanos = wall duration, but only when
	// the tracer runs in timing mode — wall clocks are nondeterministic, so
	// the canonical stream leaves Nanos zero.
	EvSpanBegin = "span-begin"
	EvSpanEnd   = "span-end"

	// Fleet-scheduler events, emitted coordinator-side into the fleet
	// trace and the /fleet/events SSE stream. They describe scheduling
	// decisions, so they live outside the deterministic canonical stream
	// (like worker lifecycle events).

	// EvShardDispatch records one shard attempt leaving the scheduler
	// (fields: Name = shard label, Addr = worker URL, Outcome =
	// "fresh"/"retry"/"hedge", Req = the stamped cross-process request id).
	EvShardDispatch = "shard-dispatch"
	// EvShardDone records one shard attempt completing successfully
	// (fields: Name, Addr, Req).
	EvShardDone = "shard-done"
	// EvShardRetry records a failed attempt being rescheduled (fields:
	// Name, Addr = the worker that failed, Outcome = failure reason).
	EvShardRetry = "shard-retry"
	// EvLeaseMigrate records a hung shard's lease moving off a worker
	// (fields: Name, Addr = the abandoned worker).
	EvLeaseMigrate = "lease-migrate"
	// EvMemberJoin / EvMemberLeave / EvMemberDead record fleet roster
	// transitions as the scheduler sees them (fields: Addr; Outcome =
	// reason for leave/dead).
	EvMemberJoin  = "member-join"
	EvMemberLeave = "member-leave"
	EvMemberDead  = "member-dead"
	// EvDetectionFound aggregates detections reported by a completed shard
	// (fields: Name, Addr, Count = detected runs in the shard).
	EvDetectionFound = "detection-found"
)

// Event is one observability record. The zero value is not valid; use
// NewEvent so the "absent" sentinels (Run = −1, Inst = −1) are in place.
// Fields are a fixed superset across kinds — see the Ev* constants for
// which fields each kind populates — so one JSON-lines schema covers the
// whole stream.
type Event struct {
	// Seq is assigned by the terminal sink, 1-based and strictly
	// increasing within one trace.
	Seq uint64 `json:"seq"`
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// Run is the campaign run index (0-based); −1 outside campaigns.
	Run int `json:"run"`
	// Inst is the static instruction id; −1 when not tied to one.
	Inst int32 `json:"inst"`

	Op        string `json:"op,omitempty"`
	Func      string `json:"func,omitempty"`
	Pos       string `json:"pos,omitempty"`
	Detect    string `json:"detect,omitempty"`
	ErrBits   int    `json:"err_bits,omitempty"`
	Program   string `json:"program,omitempty"`
	Shadow    string `json:"shadow,omitempty"`
	Arch      string `json:"arch,omitempty"`
	Name      string `json:"name,omitempty"`
	Outcome   string `json:"outcome,omitempty"`
	Steps     int64  `json:"steps,omitempty"`
	Precision uint   `json:"precision,omitempty"`
	Worker    int    `json:"worker,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Bit       int    `json:"bit,omitempty"`
	// Before/After are bit patterns rendered as 0x-prefixed hex so 64-bit
	// values survive JSON number precision.
	Before string `json:"before,omitempty"`
	After  string `json:"after,omitempty"`

	// Addr is a worker URL, stamped on fleet-scheduler events.
	Addr string `json:"addr,omitempty"`
	// Count is a generic occurrence count (detected runs on
	// detection-found events).
	Count int `json:"count,omitempty"`

	// Req identifies the request (or recording run) that produced the
	// event; pdserve stamps it end-to-end so trace lines from concurrent
	// requests stay separable.
	Req string `json:"req,omitempty"`
	// Trace is the fleet-wide trace id (32 hex chars) the request carried
	// in via its traceparent header; empty outside distributed traces.
	// Grep a coordinator-side trace id straight to the worker-side flight
	// dump.
	Trace string `json:"trace,omitempty"`
	// Span is the span id for span-begin/span-end events, deterministic by
	// construction (per-tracer counter), and Parent the enclosing span's
	// id (0 = root).
	Span   uint64 `json:"span,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Nanos is a wall-clock duration in nanoseconds, stamped only in
	// timing mode and excluded from byte-determinism guarantees.
	Nanos int64 `json:"nanos,omitempty"`
}

// NewEvent returns an event of the kind with the absent-field sentinels
// set.
func NewEvent(kind string) Event {
	return Event{Kind: kind, Run: -1, Inst: -1}
}

// Sink consumes events. Implementations must tolerate events arriving from
// a single goroutine at a time; concurrent producers buffer per shard (see
// Buffer) and merge deterministically.
type Sink interface {
	Emit(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Emit implements Sink.
func (f SinkFunc) Emit(e Event) { f(e) }
