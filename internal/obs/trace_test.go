package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerSpans(t *testing.T) {
	var buf Buffer
	tr := NewTracer(&buf)
	tr.SetReq("r1")
	outer := tr.Start("exec")
	inner := tr.Start("shadow-exec")
	inner.End()
	inner.End() // double End must be a no-op
	outer.End()

	evs := buf.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Kind != EvSpanBegin || evs[0].Name != "exec" || evs[0].Span != 1 || evs[0].Parent != 0 {
		t.Errorf("outer begin = %+v", evs[0])
	}
	if evs[1].Kind != EvSpanBegin || evs[1].Span != 2 || evs[1].Parent != 1 {
		t.Errorf("inner begin = %+v", evs[1])
	}
	if evs[2].Kind != EvSpanEnd || evs[2].Span != 2 {
		t.Errorf("inner end = %+v", evs[2])
	}
	if evs[3].Kind != EvSpanEnd || evs[3].Span != 1 {
		t.Errorf("outer end = %+v", evs[3])
	}
	for _, e := range evs {
		if e.Req != "r1" {
			t.Errorf("event missing req: %+v", e)
		}
		if e.Nanos != 0 {
			t.Errorf("canonical span carries wall time: %+v", e)
		}
	}
}

func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	tr.SetReq("x")
	tr.EnableTiming(nil)
	tr.Start("anything").End() // must not panic
}

func TestTracerTiming(t *testing.T) {
	var buf Buffer
	tr := NewTracer(&buf)
	now := int64(0)
	tr.EnableTiming(func() int64 { now += 100; return now })
	tr.Start("timed").End()
	evs := buf.Events()
	if evs[1].Nanos != 100 {
		t.Errorf("nanos = %d, want 100", evs[1].Nanos)
	}
}

func TestTracerOutOfOrderEnd(t *testing.T) {
	var buf Buffer
	tr := NewTracer(&buf)
	outer := tr.Start("outer")
	tr.Start("leaked") // never ended
	outer.End()
	next := tr.Start("after")
	if got := buf.Events()[len(buf.Events())-1].Parent; got != 0 {
		t.Errorf("span after out-of-order End has parent %d, want 0 (stack unwound)", got)
	}
	next.End()
}

func TestSpanSchemaValid(t *testing.T) {
	var sb strings.Builder
	jl := NewJSONLines(&sb)
	tr := NewTracer(jl)
	tr.Start("compile").End()
	e := NewEvent(EvRunStart)
	e.Func = "main"
	e.Req = "req-1"
	jl.Emit(e)
	if n, err := ValidateJSONLines(strings.NewReader(sb.String())); err != nil || n != 3 {
		t.Fatalf("validate: n=%d err=%v\n%s", n, err, sb.String())
	}
}

func TestSpanSchemaRejects(t *testing.T) {
	for _, line := range []string{
		`{"seq":1,"kind":"span-begin","run":-1,"inst":-1,"span":3}`,                       // no name
		`{"seq":1,"kind":"span-end","run":-1,"inst":-1,"name":"x"}`,                       // no span id
		`{"seq":1,"kind":"span-begin","run":-1,"inst":-1,"name":"x","span":1,"parent":5}`, // parent newer
	} {
		if _, err := ValidateJSONLines(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted invalid span line %s", line)
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var buf Buffer
	tr := NewTracer(&buf)
	tr.SetReq("r1")
	outer := tr.Start("exec")
	inner := tr.Start("shadow-exec")
	inner.End()
	d := NewEvent(EvDetect)
	d.Detect = "cancellation"
	d.Pos = "k:1:2"
	d.Inst = 7
	buf.Emit(d)
	outer.End()
	tr.Start("dangling") // open span: must be dropped, not crash

	// Assign seqs the way a terminal sink would.
	events := make([]Event, 0, buf.Len())
	for i, e := range buf.Events() {
		e.Seq = uint64(i + 1)
		events = append(events, e)
	}

	var out bytes.Buffer
	if err := WriteChromeTrace(&out, events); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, out.String())
	}
	if n != 3 { // exec, shadow-exec, detection instant
		t.Errorf("got %d chrome events, want 3:\n%s", n, out.String())
	}
	s := out.String()
	for _, want := range []string{`"name": "exec"`, `"name": "shadow-exec"`, `"ph": "X"`, `"ph": "i"`, `"detect": "cancellation"`} {
		if !strings.Contains(s, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, s)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	record := func() string {
		var buf Buffer
		tr := NewTracer(&buf)
		for i := 0; i < 3; i++ {
			s := tr.Start("run")
			tr.Start("inner").End()
			s.End()
		}
		events := make([]Event, 0, buf.Len())
		for i, e := range buf.Events() {
			e.Seq = uint64(i + 1)
			events = append(events, e)
		}
		var out bytes.Buffer
		if err := WriteChromeTrace(&out, events); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := record(), record(); a != b {
		t.Fatalf("chrome trace not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestValidateChromeTraceRejects(t *testing.T) {
	for _, body := range []string{
		`{"bogus":true}`,
		`{"traceEvents":[{"name":"","ph":"X","ts":1,"dur":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"Q","ts":1,"pid":1,"tid":1}]}`,
		`{"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":0,"tid":1}]}`,
	} {
		if _, err := ValidateChromeTrace(strings.NewReader(body)); err == nil {
			t.Errorf("accepted invalid chrome trace %s", body)
		}
	}
}

func TestRingDropped(t *testing.T) {
	r := NewRing(2)
	if r.Dropped() != 0 {
		t.Fatal("fresh ring reports drops")
	}
	for i := 0; i < 5; i++ {
		r.Emit(NewEvent(EvRunStart))
	}
	if r.Total() != 5 || r.Len() != 2 || r.Dropped() != 3 {
		t.Errorf("total/len/dropped = %d/%d/%d, want 5/2/3", r.Total(), r.Len(), r.Dropped())
	}
	reg := NewRegistry()
	r.PublishMetrics(reg)
	if got := reg.Counter("pd_flight_dropped_total").Value(); got != 3 {
		t.Errorf("dropped metric = %d, want 3", got)
	}
	r.Reset()
	if r.Dropped() != 0 {
		t.Error("Reset did not clear dropped")
	}
	r.PublishMetrics(nil) // must not panic
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Histogram
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %d, want 0", q, got)
		}
	}

	var single Histogram
	single.Observe(7)
	for _, q := range []float64{-0.5, 0, 0.5, 1, 1.5} {
		if got := single.Quantile(q); got != 7 {
			t.Errorf("single.Quantile(%v) = %d, want 7", q, got)
		}
	}

	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(60)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1", got)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("Quantile(0.5) = %d, want 1", got)
	}
	if got := h.Quantile(1); got != 60 {
		t.Errorf("Quantile(1) = %d, want 60", got)
	}
	// Out-of-range q must clamp, not fall into the overflow bucket.
	if got := h.Quantile(7.5); got != 60 {
		t.Errorf("Quantile(7.5) = %d, want 60", got)
	}
}
