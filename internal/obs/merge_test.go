package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: DeriveTraceID("polybench/gemm", "42"), SpanID: 0xdeadbeef}
	if !tc.Valid() {
		t.Fatalf("derived context invalid: %+v", tc)
	}
	h := tc.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok || got != tc {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", h, got, ok, tc)
	}
	for _, bad := range []string{
		"", "00-zz-11-01", "00-abc-0000000000000001-01",
		"00-" + tc.TraceID + "-0000000000000000-01", // zero span id
		"00-" + tc.TraceID + "-01",                  // missing field
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	if DeriveTraceID("a", "b") == DeriveTraceID("a", "c") {
		t.Error("distinct inputs derived the same trace id")
	}
	if DeriveTraceID("x") != DeriveTraceID("x") {
		t.Error("DeriveTraceID not deterministic")
	}
}

func TestStartChildFlatSpans(t *testing.T) {
	sb := &SeqBuffer{}
	tr := NewTracer(sb)
	root := tr.StartChild("campaign", 0)
	a := tr.StartChild("attempt-a", root.ID())
	b := tr.StartChild("attempt-b", root.ID())
	// Flat spans close in any order without disturbing each other.
	a.End()
	c := tr.StartChild("attempt-c", root.ID())
	b.End()
	c.End()
	root.End()
	evs := sb.Events()
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8", len(evs))
	}
	for _, e := range evs {
		if e.Kind == EvSpanBegin && e.Span != root.ID() && e.Parent != root.ID() {
			t.Errorf("span %d (%s) parent %d, want %d", e.Span, e.Name, e.Parent, root.ID())
		}
	}
}

// fleetFixture builds a small synthetic coordinator stream plus two worker
// batches — one hedged attempt (overlapping spans) included.
func fleetFixture() (coord []Event, workers []WorkerTrace) {
	sb := &SeqBuffer{}
	tr := NewTracer(sb)
	root := tr.StartChild("campaign", 0)
	a1 := tr.StartChild("shard[0,8) @ w1", root.ID())
	a2 := tr.StartChild("shard[8,16) @ w2", root.ID())
	// A hedge overlaps the first attempt.
	h := tr.StartChild("shard[0,8) @ w2 (hedge)", root.ID())
	ev := NewEvent(EvShardDispatch)
	ev.Name, ev.Addr, ev.Outcome, ev.Req = "shard[0,8)", "w2", "hedge", "c2"
	sb.Emit(ev)
	a1.End()
	h.End()
	a2.End()
	root.End()

	workerBatch := func(req string, parent uint64, withDetect bool) RequestTrace {
		wb := &SeqBuffer{}
		wtr := NewTracer(wb)
		wtr.SetReq(req)
		rs := wtr.Start("request")
		wtr.Start("compile").End()
		if withDetect {
			d := NewEvent(EvDetect)
			d.Detect, d.Req = "nar", req
			wb.Emit(d)
		}
		rs.End()
		return RequestTrace{Req: req, Trace: DeriveTraceID("t"), Parent: parent, Events: wb.Events()}
	}
	w1 := WorkerTrace{Label: "w1", Requests: []RequestTrace{workerBatch("c1", a1.ID(), true)}}
	w2 := WorkerTrace{Label: "w2", Requests: []RequestTrace{
		workerBatch("c2", h.ID(), false),
		workerBatch("c3", a2.ID(), false),
	}}
	return sb.Events(), []WorkerTrace{w1, w2}
}

func TestFleetChromeTraceMergeDeterministic(t *testing.T) {
	coord, workers := fleetFixture()
	var a, b bytes.Buffer
	if err := WriteFleetChromeTrace(&a, "pdcoord", coord, workers); err != nil {
		t.Fatal(err)
	}
	// Reversed arrival order (workers and requests) must not change a byte.
	rev := []WorkerTrace{workers[1], workers[0]}
	rev[0].Requests = []RequestTrace{rev[0].Requests[1], rev[0].Requests[0]}
	if err := WriteFleetChromeTrace(&b, "pdcoord", coord, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("merge depends on arrival order:\n%s\nvs\n%s", a.String(), b.String())
	}
	n, err := ValidateChromeTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("empty merged trace")
	}
	out := a.String()
	for _, want := range []string{
		`"pdcoord"`, `"w1"`, `"w2"`,
		`"coord_span"`, `"shard-dispatch"`, `"detection"`,
		`"shard[0,8) @ w2 (hedge)"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged trace missing %s", want)
		}
	}
}

func TestFleetChromeTraceOrphanParent(t *testing.T) {
	coord, workers := fleetFixture()
	workers[0].Requests[0].Parent = 9999
	err := WriteFleetChromeTrace(&bytes.Buffer{}, "pdcoord", coord, workers)
	if err == nil || !strings.Contains(err.Error(), "orphan-parent") {
		t.Fatalf("orphan parent not rejected by name: %v", err)
	}
}

func TestValidateChromeTraceMultiPIDRules(t *testing.T) {
	cases := []struct {
		name, rule, body string
	}{
		{"backward ts in one pid", "pid-monotonic-ts", `{"traceEvents":[
			{"name":"a","ph":"X","ts":5,"dur":1,"pid":2,"tid":1},
			{"name":"b","ph":"X","ts":3,"dur":1,"pid":2,"tid":1}]}`},
		{"orphan parent in span-declaring pid", "orphan-parent", `{"traceEvents":[
			{"name":"a","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"span":"1"}},
			{"name":"b","ph":"X","ts":2,"dur":1,"pid":1,"tid":1,"args":{"span":"2","parent":"7"}}]}`},
		{"coord_span unresolved", "orphan-parent", `{"traceEvents":[
			{"name":"a","ph":"X","ts":1,"dur":1,"pid":1,"tid":1,"args":{"span":"1"}},
			{"name":"b","ph":"X","ts":2,"dur":1,"pid":2,"tid":1,"args":{"span":"1","coord_span":"9"}}]}`},
		{"unknown phase", "phase", `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}`},
	}
	for _, tc := range cases {
		_, err := ValidateChromeTrace(strings.NewReader(tc.body))
		if err == nil || !strings.Contains(err.Error(), "rule "+tc.rule) {
			t.Errorf("%s: want rule %q, got %v", tc.name, tc.rule, err)
		}
	}
	// Different pids keep independent clocks: interleaved ts across pids
	// is legal, and metadata events are exempt from pid/tid rules.
	ok := `{"traceEvents":[
		{"name":"process_name","ph":"M","pid":1,"tid":1,"args":{"name":"coord"}},
		{"name":"a","ph":"X","ts":10,"dur":5,"pid":1,"tid":1,"args":{"span":"1"}},
		{"name":"b","ph":"X","ts":2,"dur":1,"pid":2,"tid":1},
		{"name":"c","ph":"i","ts":11,"pid":1,"tid":1}]}`
	if n, err := ValidateChromeTrace(strings.NewReader(ok)); err != nil || n != 4 {
		t.Errorf("legal multi-pid trace rejected: n=%d err=%v", n, err)
	}
}

func TestWorkerStatsCacheHitRate(t *testing.T) {
	if r := (WorkerStats{}).CacheHitRate(); r != 0 {
		t.Errorf("empty hit rate = %v", r)
	}
	if r := (WorkerStats{CacheHits: 3, CacheMisses: 1}).CacheHitRate(); r != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r)
	}
	reg := NewRegistry()
	reg.Counter(`pd_detections_total{kind="nar"}`).Add(2)
	reg.Counter(`pd_detections_total{kind="cancellation"}`).Add(3)
	reg.Counter("pd_detections_totally_different").Add(100)
	if s := reg.SumCounters("pd_detections_total"); s != 5 {
		t.Errorf("SumCounters = %d, want 5", s)
	}
}
