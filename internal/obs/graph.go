package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Graph is a machine-readable error DAG: nodes are instructions that
// contributed to a detected error, edges point from an instruction to the
// operands it consumed. It serializes to Graphviz DOT and to JSON, next to
// the shadow runtime's pretty-printer.
type Graph struct {
	// Name labels the graph (DOT graph id); sanitized on output.
	Name string `json:"name,omitempty"`
	// Label is a free-form caption (detection kind, position, error bits).
	Label string `json:"label,omitempty"`
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// Node is one DAG vertex.
type Node struct {
	// ID is unique within the graph. Negative-instruction placeholders
	// (arguments, constants folded away) get synthetic ids.
	ID int `json:"id"`
	// Inst is the static instruction id, −1 for synthetic nodes.
	Inst int32 `json:"inst"`
	// Op is the opcode mnemonic.
	Op string `json:"op,omitempty"`
	// Pos is the source position (file:line:col) when known.
	Pos string `json:"pos,omitempty"`
	// Program and Shadow are the computed and high-precision values.
	Program string `json:"program,omitempty"`
	Shadow  string `json:"shadow,omitempty"`
	// ErrBits is the bits-of-error at this node.
	ErrBits int `json:"err_bits"`
	// Root marks the node the detection fired on.
	Root bool `json:"root,omitempty"`
}

// Edge is one DAG arc from a consumer instruction to an operand.
type Edge struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// dotEscape makes a string safe inside a double-quoted DOT string.
func dotEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// WriteDOT writes the graph in Graphviz DOT syntax. Output is fully
// deterministic: nodes sort by id, edges by (from, to).
func (g *Graph) WriteDOT(w io.Writer) error {
	name := g.Name
	if name == "" {
		name = "errdag"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "  rankdir=BT;\n")
	fmt.Fprintf(w, "  node [shape=box, fontname=\"monospace\"];\n")
	if g.Label != "" {
		fmt.Fprintf(w, "  label=\"%s\";\n", dotEscape(g.Label))
	}

	nodes := append([]Node(nil), g.Nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	for _, n := range nodes {
		var parts []string
		if n.Op != "" {
			parts = append(parts, n.Op)
		}
		if n.Pos != "" {
			parts = append(parts, n.Pos)
		}
		if n.Program != "" || n.Shadow != "" {
			parts = append(parts, fmt.Sprintf("P=%s S=%s", n.Program, n.Shadow))
		}
		parts = append(parts, fmt.Sprintf("err=%d bits", n.ErrBits))
		attrs := fmt.Sprintf("label=\"%s\"", dotEscape(strings.Join(parts, "\n")))
		if n.Root {
			attrs += ", style=filled, fillcolor=\"#ffdddd\""
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", n.ID, attrs); err != nil {
			return err
		}
	}

	edges := append([]Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", e.From, e.To); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// DOT renders the graph as a DOT string.
func (g *Graph) DOT() string {
	var sb strings.Builder
	_ = g.WriteDOT(&sb)
	return sb.String()
}

// WriteDOTAll writes several graphs as one DOT file: a single digraph with
// one cluster subgraph per DAG, so `dot -Tsvg` renders the whole detection
// report at once.
func WriteDOTAll(w io.Writer, name string, graphs []Graph) error {
	if name == "" {
		name = "errdags"
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n", name); err != nil {
		return err
	}
	fmt.Fprintf(w, "  rankdir=BT;\n")
	fmt.Fprintf(w, "  node [shape=box, fontname=\"monospace\"];\n")
	for gi, g := range graphs {
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", gi)
		if g.Label != "" {
			fmt.Fprintf(w, "    label=\"%s\";\n", dotEscape(g.Label))
		}
		nodes := append([]Node(nil), g.Nodes...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
		for _, n := range nodes {
			var parts []string
			if n.Op != "" {
				parts = append(parts, n.Op)
			}
			if n.Pos != "" {
				parts = append(parts, n.Pos)
			}
			parts = append(parts, fmt.Sprintf("err=%d bits", n.ErrBits))
			attrs := fmt.Sprintf("label=\"%s\"", dotEscape(strings.Join(parts, "\n")))
			if n.Root {
				attrs += ", style=filled, fillcolor=\"#ffdddd\""
			}
			if _, err := fmt.Fprintf(w, "    g%dn%d [%s];\n", gi, n.ID, attrs); err != nil {
				return err
			}
		}
		edges := append([]Edge(nil), g.Edges...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].From != edges[j].From {
				return edges[i].From < edges[j].From
			}
			return edges[i].To < edges[j].To
		})
		for _, e := range edges {
			if _, err := fmt.Fprintf(w, "    g%dn%d -> g%dn%d;\n", gi, e.From, gi, e.To); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "  }"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// CheckDOT is a lightweight structural validator for the DOT we emit —
// enough for CI to catch a broken writer without depending on graphviz:
// it requires a digraph header, balanced braces/brackets, balanced quotes
// per line, and a closing brace.
func CheckDOT(src string) error {
	trimmed := strings.TrimSpace(src)
	if !strings.HasPrefix(trimmed, "digraph") {
		return fmt.Errorf("dot: missing digraph header")
	}
	braces, brackets := 0, 0
	for ln, line := range strings.Split(src, "\n") {
		inQuote := false
		esc := false
		for _, r := range line {
			if esc {
				esc = false
				continue
			}
			switch r {
			case '\\':
				if inQuote {
					esc = true
				}
			case '"':
				inQuote = !inQuote
			case '{':
				if !inQuote {
					braces++
				}
			case '}':
				if !inQuote {
					braces--
				}
			case '[':
				if !inQuote {
					brackets++
				}
			case ']':
				if !inQuote {
					brackets--
				}
			}
		}
		if inQuote {
			return fmt.Errorf("dot: unbalanced quote on line %d", ln+1)
		}
		if braces < 0 {
			return fmt.Errorf("dot: unmatched '}' on line %d", ln+1)
		}
		if brackets < 0 {
			return fmt.Errorf("dot: unmatched ']' on line %d", ln+1)
		}
	}
	if braces != 0 {
		return fmt.Errorf("dot: %d unclosed '{'", braces)
	}
	if brackets != 0 {
		return fmt.Errorf("dot: %d unclosed '['", brackets)
	}
	return nil
}
