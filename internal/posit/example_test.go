package posit_test

import (
	"fmt"

	"positdebug/internal/posit"
)

// ExampleConfig_Decode decodes the paper's §2.1 worked example:
// in ⟨8,1⟩, the pattern 01101101 represents 4¹·2¹·(1+5/8) = 13.
func ExampleConfig_Decode() {
	cfg := posit.Config{N: 8, ES: 1}
	p := posit.Bits(0b01101101)
	fmt.Println("value:", cfg.Format(p))
	fmt.Println("fields:", cfg.FieldString(p))
	d := cfg.Decode(p)
	fmt.Println("scale:", d.Scale, "fraction bits:", d.FracBits)
	// Output:
	// value: 13
	// fields: 0|110|1|101
	// scale: 3 fraction bits: 3
}

// ExampleConfig_Add shows saturation: posit arithmetic never overflows.
func ExampleConfig_Add() {
	cfg := posit.Config32
	max := cfg.MaxPos()
	fmt.Println(cfg.Format(cfg.Add(max, max)) == cfg.Format(max))
	// Output:
	// true
}

// ExampleQuire computes an exactly rounded fused dot product.
func ExampleQuire() {
	q := posit.NewQuire(posit.Config32)
	xs := []float64{1.5, 2.5, 3.5}
	ys := []float64{2.0, 4.0, 8.0}
	for i := range xs {
		q.AddProduct(posit.Config32.FromFloat64(xs[i]), posit.Config32.FromFloat64(ys[i]))
	}
	fmt.Println(posit.Config32.Format(q.Posit()))
	// Output:
	// 41
}

// ExamplePosit32_FMA: a fused multiply-add rounds once.
func ExamplePosit32_FMA() {
	a := posit.P32FromFloat64(2)
	b := posit.P32FromFloat64(3)
	c := posit.P32FromFloat64(0.5)
	fmt.Println(a.FMA(b, c))
	// Output:
	// 6.5
}
