package posit

import "math/big"

// unrounded is an exact (up to sticky) real value in unpacked form:
//
//	x = (−1)^neg · 2^scale · ((frac + δ) / 2^63)
//
// with frac normalized (bit 63 set) and δ = 0 when !sticky, δ ∈ (0,1) when
// sticky. All arithmetic routines reduce their exact result to this form
// before the single rounding step.
type unrounded struct {
	neg    bool
	scale  int
	frac   uint64
	sticky bool
}

// Encode rounds an unpacked value to the nearest posit of the configuration
// using round-to-nearest, ties to even bit pattern, with the posit
// saturation rules: magnitudes above maxpos clamp to maxpos and nonzero
// magnitudes below minpos clamp to minpos (never to zero).
func (c Config) encode(u unrounded) Bits {
	if u.frac == 0 {
		// Exact zero (arithmetic routines return it directly; kept for safety).
		return 0
	}
	mag := c.encodeMag(u.scale, u.frac, u.sticky)
	if u.neg {
		return c.Neg(mag)
	}
	return mag
}

// encodeMag rounds the positive magnitude 2^scale·(frac+δ)/2^63.
func (c Config) encodeMag(scale int, frac uint64, sticky bool) Bits {
	if scale > c.ScaleMax() {
		return c.MaxPos()
	}
	if scale < c.ScaleMin() {
		return c.MinPos()
	}
	es := c.ES
	k := scale >> es
	e := scale - k<<es
	// Regime length (with terminating bit). Given the scale clamps above,
	// regLen ≤ n and k ∈ [−(n−2), n−2].
	var regLen int
	var regBits uint64 // regime pattern, MSB-first in regLen bits
	if k >= 0 {
		regLen = k + 2
		regBits = (uint64(1)<<(k+1) - 1) << 1 // k+1 ones then a zero
	} else {
		regLen = -k + 1
		regBits = 1 // −k zeros then a one
	}
	// Assemble the conceptual (pre-rounding) bit string after the sign bit:
	// regime, exponent, fraction. regLen+es+63 ≤ 33+5+63 ≤ 128 always fits.
	var w bitString
	w.write(regBits, uint(regLen))
	if es > 0 {
		w.write(uint64(e), es)
	}
	w.write(frac<<1>>1, 63) // fraction field: significand without hidden bit

	kept := c.N - 1
	body := w.take(kept)
	guard := w.bit(kept)
	rest := w.anyBelow(kept+1) || sticky

	if regLen+int(es) <= int(kept) {
		// The rounding position lies within the fraction field: the two
		// candidate posits differ by exactly one unit in that field, so
		// bit-pattern RNE coincides with arithmetic round-to-nearest.
		if guard && (rest || body&1 == 1) {
			body++
			if Bits(body) > c.MaxPos() {
				body = uint64(c.MaxPos()) // saturate, never round to NaR
			}
		}
		return Bits(body)
	}
	// Slow path: the rounding position falls inside the regime or exponent
	// field, where consecutive posits are geometrically spaced; decide by
	// comparing the exact value against the exact midpoint of its two
	// neighboring posits.
	lo := Bits(body)
	if lo == c.MaxPos() {
		return lo // x ∈ [maxpos, 2·maxpos): saturates
	}
	hi := lo + 1
	cmp := c.compareToMid(scale, frac, lo, hi)
	switch {
	case cmp > 0:
		return hi
	case cmp < 0:
		return lo
	case sticky:
		return hi // strictly above the midpoint
	case body&1 == 0:
		return lo // tie: even pattern
	default:
		return hi
	}
}

// compareToMid compares x = 2^scale·frac/2^63 (the truncated value, sticky
// excluded) against the midpoint of the positive posits lo and hi.
// Returns −1, 0, +1.
func (c Config) compareToMid(scale int, frac uint64, lo, hi Bits) int {
	dl := c.Decode(lo)
	dh := c.Decode(hi)
	// All three quantities are dyadic: v = F · 2^(s−63). Align to the
	// smallest exponent and compare 2·x against lo+hi in big.Int.
	base := scale
	if dl.Scale < base {
		base = dl.Scale
	}
	if dh.Scale < base {
		base = dh.Scale
	}
	x2 := dyadic(frac, scale-base+1) // 2·x
	l := dyadic(dl.Frac, dl.Scale-base)
	h := dyadic(dh.Frac, dh.Scale-base)
	return x2.Cmp(l.Add(l, h))
}

func dyadic(frac uint64, shift int) *big.Int {
	v := new(big.Int).SetUint64(frac)
	return v.Lsh(v, uint(shift))
}

// bitString is a 128-bit MSB-first bit accumulator used to assemble the
// conceptual unrounded posit pattern.
type bitString struct {
	hi, lo uint64
	pos    uint // bits written so far, from the MSB of hi
}

func (w *bitString) write(v uint64, width uint) {
	if width == 0 {
		return
	}
	v &= ^uint64(0) >> (64 - width)
	end := w.pos + width
	switch {
	case end <= 64:
		w.hi |= v << (64 - end)
	case w.pos >= 64:
		w.lo |= v << (128 - end)
	default: // straddles the boundary
		w.hi |= v >> (end - 64)
		w.lo |= v << (128 - end)
	}
	w.pos = end
}

// take returns the first k bits (k ≤ 63) right-aligned.
func (w *bitString) take(k uint) uint64 { return w.hi >> (64 - k) }

// bit returns bit i (0-indexed from the MSB).
func (w *bitString) bit(i uint) bool {
	if i < 64 {
		return w.hi>>(63-i)&1 == 1
	}
	return w.lo>>(127-i)&1 == 1
}

// anyBelow reports whether any bit at index ≥ i is set.
func (w *bitString) anyBelow(i uint) bool {
	if i >= 128 {
		return false
	}
	if i >= 64 {
		return w.lo<<(i-64) != 0
	}
	return w.hi<<i != 0 || w.lo != 0
}
