package posit

import "math/bits"

// Add returns the correctly rounded sum a+b in the configuration.
// NaR propagates; saturation applies at maxpos/minpos. ⟨16,1⟩ runs on the
// integer fast path and ⟨8,0⟩ on the exhaustive result table (fast.go);
// both are differentially tested against GenericAdd.
func (c Config) Add(a, b Bits) Bits {
	switch c {
	case Config16:
		return add16(a, b)
	case Config8:
		return Bits(p8add[uint32(a)<<8|uint32(b)])
	case Config32:
		return add32(a, b)
	}
	return c.GenericAdd(a, b)
}

// GenericAdd is the table-free reference addition used to build and verify
// the fast paths; it rounds identically to Add for every configuration.
func (c Config) GenericAdd(a, b Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) {
		return c.NaR()
	}
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	da, db := c.genericDecode(a), c.genericDecode(b)
	return c.encode(addUnpacked(da, db))
}

// Sub returns the correctly rounded difference a−b.
func (c Config) Sub(a, b Bits) Bits {
	return c.Add(a, c.Neg(b))
}

// addUnpacked computes the exact sum of two unpacked posits and reduces it
// to unrounded form (64-bit significand + sticky). Inputs are exact.
func addUnpacked(x, y Decoded) unrounded {
	// Ensure |x| ≥ |y| so alignment shifts y only.
	if y.Scale > x.Scale || (y.Scale == x.Scale && y.Frac > x.Frac) {
		x, y = y, x
	}
	d := uint(x.Scale - y.Scale)
	// 128-bit significands aligned at x's scale: X = x.Frac·2^64.
	xh, xl := x.Frac, uint64(0)
	var yh, yl uint64
	var st bool
	switch {
	case d == 0:
		yh, yl = y.Frac, 0
	case d < 64:
		yh, yl = y.Frac>>d, y.Frac<<(64-d)
	case d == 64:
		yh, yl = 0, y.Frac
	case d < 128:
		yh, yl = 0, y.Frac>>(d-64)
		st = y.Frac<<(128-d) != 0
	default:
		yh, yl = 0, 0
		st = true
	}
	if x.Neg == y.Neg {
		lo, carry := bits.Add64(xl, yl, 0)
		hi, carry2 := bits.Add64(xh, yh, carry)
		scale := x.Scale
		if carry2 == 1 {
			st = st || lo&1 == 1
			lo = lo>>1 | hi<<63
			hi = hi>>1 | 1<<63
			scale++
		}
		return unrounded{neg: x.Neg, scale: scale, frac: hi, sticky: st || lo != 0}
	}
	// Opposite signs: |x| ≥ |y| so the result carries x's sign (or is zero).
	// When alignment dropped bits of y (st), the true y magnitude exceeds
	// its truncation by δ ∈ (0,1) ulp₁₂₈, so the true difference is
	// (X−Y) − δ; borrow one ulp and flip the tail into a positive sticky.
	lo, borrow := bits.Sub64(xl, yl, 0)
	hi, _ := bits.Sub64(xh, yh, borrow)
	if st {
		var b2 uint64
		lo, b2 = bits.Sub64(lo, 1, 0)
		hi, _ = bits.Sub64(hi, b2, 0)
	}
	if hi == 0 && lo == 0 {
		if st {
			// Cancellation to below one ulp₁₂₈: cannot happen, since st
			// implies y's scale is ≥128 below x's, leaving hi≈x.Frac.
			return unrounded{neg: x.Neg, scale: x.Scale - 128, frac: 1 << 63, sticky: true}
		}
		return unrounded{} // exact zero
	}
	scale := x.Scale
	var lz int
	if hi != 0 {
		lz = bits.LeadingZeros64(hi)
	} else {
		lz = 64 + bits.LeadingZeros64(lo)
	}
	if lz > 0 {
		if lz < 64 {
			hi = hi<<lz | lo>>(64-lz)
			lo <<= lz
		} else {
			hi = lo << (lz - 64)
			lo = 0
		}
		scale -= lz
	}
	return unrounded{neg: x.Neg, scale: scale, frac: hi, sticky: st || lo != 0}
}

// Mul returns the correctly rounded product a·b. Standard-config fast
// paths as in Add.
func (c Config) Mul(a, b Bits) Bits {
	switch c {
	case Config16:
		return mul16(a, b)
	case Config8:
		return Bits(p8mul[uint32(a)<<8|uint32(b)])
	case Config32:
		return mul32(a, b)
	}
	return c.GenericMul(a, b)
}

// GenericMul is the table-free reference multiplication; see GenericAdd.
func (c Config) GenericMul(a, b Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) {
		return c.NaR()
	}
	if a == 0 || b == 0 {
		return 0
	}
	da, db := c.genericDecode(a), c.genericDecode(b)
	hi, lo := bits.Mul64(da.Frac, db.Frac)
	scale := da.Scale + db.Scale
	// Product of [2^63,2^64) significands lies in [2^126,2^128).
	if hi>>63 == 1 {
		scale++
	} else {
		hi = hi<<1 | lo>>63
		lo <<= 1
	}
	return c.encode(unrounded{
		neg:    da.Neg != db.Neg,
		scale:  scale,
		frac:   hi,
		sticky: lo != 0,
	})
}

// Div returns the correctly rounded quotient a/b. Division by zero yields
// NaR (there are no signed infinities in the posit format).
func (c Config) Div(a, b Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) || b == 0 {
		return c.NaR()
	}
	if a == 0 {
		return 0
	}
	da, db := c.Decode(a), c.Decode(b)
	// q = (Fa·2^63) / Fb ∈ (2^62, 2^64): the dividend high word Fa>>1 is
	// below the divisor (which has bit 63 set), as bits.Div64 requires.
	q, r := bits.Div64(da.Frac>>1, da.Frac<<63, db.Frac)
	scale := da.Scale - db.Scale
	if q>>63 == 0 {
		// One more quotient bit to normalize: decide 2r ≥ Fb.
		rhi, rlo := r>>63, r<<1
		var bit uint64
		if rhi == 1 || rlo >= db.Frac {
			bit = 1
			rlo -= db.Frac
		}
		q = q<<1 | bit
		r = rlo
		scale--
	}
	return c.encode(unrounded{
		neg:    da.Neg != db.Neg,
		scale:  scale,
		frac:   q,
		sticky: r != 0,
	})
}
