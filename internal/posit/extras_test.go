package posit

import (
	"math"
	"sort"
	"testing"
)

func TestParse(t *testing.T) {
	c := Config32
	cases := []struct {
		in   string
		want Bits
	}{
		{"1", c.One()},
		{" 13 ", c.FromFloat64(13)},
		{"-2.5", c.FromFloat64(-2.5)},
		{"1e30", c.FromFloat64(1e30)},
		{"NaR", c.NaR()},
		{"nar", c.NaR()},
		{"0", 0},
	}
	for _, tc := range cases {
		got, err := c.Parse(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("Parse(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := c.Parse("not-a-number"); err == nil {
		t.Fatal("want parse error")
	}
}

func TestNextUpDown(t *testing.T) {
	c := Config32
	one := c.One()
	up := c.NextUp(one)
	if c.Cmp(up, one) <= 0 {
		t.Fatal("NextUp must increase")
	}
	if c.NextDown(up) != one {
		t.Fatal("NextDown must invert NextUp")
	}
	// Crossing zero.
	if c.NextUp(c.Neg(c.MinPos())) != 0 || c.NextUp(0) != c.MinPos() {
		t.Fatal("neighbors of zero")
	}
	// Top of the range wraps into NaR (no value above maxpos).
	if !c.IsNaR(c.NextUp(c.MaxPos())) {
		t.Fatal("NextUp(maxpos) must be NaR")
	}
	if !c.IsNaR(c.NextUp(c.NaR())) || !c.IsNaR(c.NextDown(c.NaR())) {
		t.Fatal("NaR neighbors")
	}
}

// TestULPTapering: the defining posit property — ULP grows away from 1.
func TestULPTapering(t *testing.T) {
	c := Config32
	near1 := c.ULP(c.One())
	if near1 != math.Ldexp(1, -27) {
		t.Fatalf("ULP(1) = %g, want 2^-27", near1)
	}
	big := c.ULP(c.FromFloat64(1e16))
	if big <= near1*1e15 {
		t.Fatalf("ULP at 1e16 (%g) must dwarf ULP at 1 (%g)", big, near1)
	}
	if !math.IsNaN(c.ULP(c.NaR())) {
		t.Fatal("ULP(NaR)")
	}
	if c.ULP(c.MaxPos()) <= 0 {
		t.Fatal("ULP(maxpos) must report the gap below")
	}
	// Symmetric in sign.
	if c.ULP(c.FromFloat64(-3)) != c.ULP(c.FromFloat64(3)) {
		t.Fatal("ULP must depend on magnitude only")
	}
}

func TestValuesSortedComplete(t *testing.T) {
	c := Config8
	vals, err := c.Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 255 { // 2^8 patterns minus NaR
		t.Fatalf("len = %d", len(vals))
	}
	if !sort.Float64sAreSorted(vals) {
		t.Fatal("values must come out ascending")
	}
	if vals[0] != -c.MaxValue() || vals[len(vals)-1] != c.MaxValue() {
		t.Fatal("range endpoints")
	}
	if _, err := Config32.Values(); err == nil {
		t.Fatal("Values must refuse n > 16")
	}
}

func TestMinMaxValue(t *testing.T) {
	c := Config32
	if c.MaxValue() != math.Ldexp(1, 120) || c.MinValue() != math.Ldexp(1, -120) {
		t.Fatalf("range: %g %g", c.MaxValue(), c.MinValue())
	}
}
