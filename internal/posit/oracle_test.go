package posit

import (
	"math/big"
	"math/rand"
	"testing"
)

// ratValue decodes a posit pattern to an exact rational using a literal,
// independent transcription of the paper's §2.1 decoding rules (regime run
// counting over the bit string). It is the oracle against which the fast
// codec is validated. Returns nil for NaR.
func ratValue(c Config, p Bits) *big.Rat {
	if p == 0 {
		return new(big.Rat)
	}
	if c.IsNaR(p) {
		return nil
	}
	neg := uint64(p)>>(c.N-1) == 1
	mag := uint64(p)
	if neg {
		mag = (-mag) & c.Mask()
	}
	// Bits of the magnitude, MSB first, skipping the (zero) sign bit.
	var bs []int
	for i := int(c.N) - 2; i >= 0; i-- {
		bs = append(bs, int(mag>>uint(i)&1))
	}
	// Regime: run of identical bits.
	run := 1
	for run < len(bs) && bs[run] == bs[0] {
		run++
	}
	var k int
	if bs[0] == 1 {
		k = run - 1
	} else {
		k = -run
	}
	idx := run
	if idx < len(bs) {
		idx++ // terminating bit
	}
	// Exponent: next up to es bits, zero-extended to es.
	e := 0
	for i := 0; i < int(c.ES); i++ {
		e <<= 1
		if idx < len(bs) {
			e |= bs[idx]
			idx++
		}
	}
	// Fraction: remaining bits.
	f := new(big.Rat).SetInt64(1)
	w := new(big.Rat).SetFrac64(1, 2)
	for ; idx < len(bs); idx++ {
		if bs[idx] == 1 {
			f.Add(f, w)
		}
		w.Mul(w, big.NewRat(1, 2))
	}
	// value = useed^k · 2^e · f, useed = 2^2^es.
	scale := k*(1<<c.ES) + e
	v := new(big.Rat).Set(f)
	v.Mul(v, pow2Rat(scale))
	if neg {
		v.Neg(v)
	}
	return v
}

func pow2Rat(e int) *big.Rat {
	one := big.NewInt(1)
	if e >= 0 {
		return new(big.Rat).SetInt(new(big.Int).Lsh(one, uint(e)))
	}
	return new(big.Rat).SetFrac(one, new(big.Int).Lsh(one, uint(-e)))
}

func absRat(x *big.Rat) *big.Rat { return new(big.Rat).Abs(x) }

// checkNearest verifies that got is the correct posit rounding of the exact
// value x: saturation at the extremes, and local optimality against both
// pattern neighbors elsewhere (sufficient globally because posit patterns
// are monotonic in value). Ties must resolve to the even pattern.
func checkNearest(t *testing.T, c Config, x *big.Rat, got Bits, ctx string) {
	t.Helper()
	if uint64(got) & ^c.Mask() != 0 {
		t.Fatalf("%s: non-canonical pattern %#x", ctx, uint64(got))
	}
	if x.Sign() == 0 {
		if got != 0 {
			t.Fatalf("%s: exact zero rounded to %s", ctx, c.Format(got))
		}
		return
	}
	if c.IsNaR(got) {
		t.Fatalf("%s: finite value %s rounded to NaR", ctx, x.FloatString(30))
		return
	}
	ax := absRat(x)
	maxpos := ratValue(c, c.MaxPos())
	minpos := ratValue(c, c.MinPos())
	if ax.Cmp(maxpos) >= 0 {
		want := c.MaxPos()
		if x.Sign() < 0 {
			want = c.Neg(want)
		}
		if got != want {
			t.Fatalf("%s: |x| ≥ maxpos must saturate; got %s", ctx, c.Format(got))
		}
		return
	}
	if ax.Cmp(minpos) <= 0 {
		want := c.MinPos()
		if x.Sign() < 0 {
			want = c.Neg(want)
		}
		if got != want {
			t.Fatalf("%s: 0 < |x| ≤ minpos must clamp to minpos; got %s", ctx, c.Format(got))
		}
		return
	}
	gv := ratValue(c, got)
	gd := new(big.Rat).Sub(gv, x)
	gd.Abs(gd)
	for _, nb := range []Bits{Bits((uint64(got) - 1) & c.Mask()), Bits((uint64(got) + 1) & c.Mask())} {
		if nb == 0 || c.IsNaR(nb) {
			continue // never round to zero or NaR
		}
		nv := ratValue(c, nb)
		nd := new(big.Rat).Sub(nv, x)
		nd.Abs(nd)
		switch gd.Cmp(nd) {
		case 1:
			t.Fatalf("%s: got %s (pattern %s, dist %s) but neighbor %s (dist %s) is closer to %s",
				ctx, c.Format(got), c.BitString(got), gd.FloatString(30),
				c.Format(nb), nd.FloatString(30), x.FloatString(30))
		case 0:
			if got&1 == 1 {
				t.Fatalf("%s: tie between %s and %s for %s must pick even pattern",
					ctx, c.BitString(got), c.BitString(nb), x.FloatString(30))
			}
		}
	}
}

func allPatterns(c Config) []Bits {
	out := make([]Bits, 0, 1<<c.N)
	for v := uint64(0); v <= c.Mask(); v++ {
		out = append(out, Bits(v))
	}
	return out
}

// finitePairs invokes fn for every pair of patterns of small
// configurations, and for a random sample of pairs of larger ones.
func finitePairs(t *testing.T, c Config, fn func(a, b Bits)) {
	if testing.Short() || c.N > 8 {
		rng := rand.New(rand.NewSource(int64(c.N)*1000 + int64(c.ES)))
		for i := 0; i < 30000; i++ {
			a := Bits(rng.Uint64() & c.Mask())
			b := Bits(rng.Uint64() & c.Mask())
			fn(a, b)
		}
		return
	}
	for _, a := range allPatterns(c) {
		for _, b := range allPatterns(c) {
			fn(a, b)
		}
	}
}

// finiteSingles invokes fn for every pattern of small configurations and a
// sample of patterns of larger ones.
func finiteSingles(t *testing.T, c Config, fn func(a Bits)) {
	if c.N > 16 {
		rng := rand.New(rand.NewSource(int64(c.N)))
		for i := 0; i < 60000; i++ {
			fn(Bits(rng.Uint64() & c.Mask()))
		}
		return
	}
	for _, a := range allPatterns(c) {
		fn(a)
	}
}

var oracleConfigs = []Config{
	{N: 8, ES: 0},
	{N: 8, ES: 1},
	{N: 8, ES: 2},
	{N: 9, ES: 1},
	{N: 13, ES: 2},
	{N: 16, ES: 1},
	{N: 32, ES: 2},
}

func TestAddOracle(t *testing.T) {
	for _, c := range oracleConfigs {
		c := c
		finitePairs(t, c, func(a, b Bits) {
			got := c.Add(a, b)
			if c.IsNaR(a) || c.IsNaR(b) {
				if !c.IsNaR(got) {
					t.Fatalf("⟨%d,%d⟩ NaR+x must be NaR", c.N, c.ES)
				}
				return
			}
			x := new(big.Rat).Add(ratValue(c, a), ratValue(c, b))
			checkNearest(t, c, x, got, "add "+c.BitString(a)+"+"+c.BitString(b))
		})
	}
}

func TestSubOracle(t *testing.T) {
	for _, c := range oracleConfigs {
		c := c
		finitePairs(t, c, func(a, b Bits) {
			got := c.Sub(a, b)
			if c.IsNaR(a) || c.IsNaR(b) {
				if !c.IsNaR(got) {
					t.Fatalf("⟨%d,%d⟩ NaR−x must be NaR", c.N, c.ES)
				}
				return
			}
			x := new(big.Rat).Sub(ratValue(c, a), ratValue(c, b))
			checkNearest(t, c, x, got, "sub "+c.BitString(a)+"-"+c.BitString(b))
		})
	}
}

func TestMulOracle(t *testing.T) {
	for _, c := range oracleConfigs {
		c := c
		finitePairs(t, c, func(a, b Bits) {
			got := c.Mul(a, b)
			if c.IsNaR(a) || c.IsNaR(b) {
				if !c.IsNaR(got) {
					t.Fatalf("⟨%d,%d⟩ NaR·x must be NaR", c.N, c.ES)
				}
				return
			}
			x := new(big.Rat).Mul(ratValue(c, a), ratValue(c, b))
			checkNearest(t, c, x, got, "mul "+c.BitString(a)+"*"+c.BitString(b))
		})
	}
}

func TestDivOracle(t *testing.T) {
	for _, c := range oracleConfigs {
		c := c
		finitePairs(t, c, func(a, b Bits) {
			got := c.Div(a, b)
			if c.IsNaR(a) || c.IsNaR(b) || b == 0 {
				if !c.IsNaR(got) {
					t.Fatalf("⟨%d,%d⟩ %s/%s must be NaR, got %s", c.N, c.ES, c.Format(a), c.Format(b), c.Format(got))
				}
				return
			}
			x := new(big.Rat).Quo(ratValue(c, a), ratValue(c, b))
			checkNearest(t, c, x, got, "div "+c.BitString(a)+"/"+c.BitString(b))
		})
	}
}

// TestSqrtOracle checks correct rounding of sqrt by comparing the squared
// midpoints of the result's neighbor gaps against the radicand — an exact
// test even though the root itself is irrational.
func TestSqrtOracle(t *testing.T) {
	for _, c := range oracleConfigs {
		c := c
		finiteSingles(t, c, func(a Bits) {
			got := c.Sqrt(a)
			if c.IsNaR(a) || c.Sign(a) < 0 {
				if !c.IsNaR(got) {
					t.Fatalf("⟨%d,%d⟩ sqrt(%s) must be NaR", c.N, c.ES, c.Format(a))
				}
				return
			}
			if a == 0 {
				if got != 0 {
					t.Fatalf("sqrt(0) must be 0")
				}
				return
			}
			x := ratValue(c, a)
			if c.IsNaR(got) || c.Sign(got) < 0 {
				t.Fatalf("⟨%d,%d⟩ sqrt(%s) = %s", c.N, c.ES, c.Format(a), c.Format(got))
			}
			// got must satisfy mid(prev,got)² ≤ x ≤ mid(got,next)², with
			// strictness resolving ties to even.
			gv := ratValue(c, got)
			if prev := Bits(uint64(got) - 1); prev != 0 && !c.IsNaR(prev) {
				mid := new(big.Rat).Add(ratValue(c, prev), gv)
				mid.Mul(mid, big.NewRat(1, 2))
				mid.Mul(mid, mid)
				if cmp := x.Cmp(mid); cmp < 0 || (cmp == 0 && got&1 == 1) {
					t.Fatalf("⟨%d,%d⟩ sqrt(%s): %s rounds too high", c.N, c.ES, c.Format(a), c.Format(got))
				}
			}
			if next := Bits(uint64(got) + 1); !c.IsNaR(next) && got != c.MaxPos() {
				mid := new(big.Rat).Add(ratValue(c, next), gv)
				mid.Mul(mid, big.NewRat(1, 2))
				mid.Mul(mid, mid)
				if cmp := x.Cmp(mid); cmp > 0 || (cmp == 0 && got&1 == 1) {
					t.Fatalf("⟨%d,%d⟩ sqrt(%s): %s rounds too low", c.N, c.ES, c.Format(a), c.Format(got))
				}
			}
		})
	}
}

// TestFromFloat64Oracle validates conversion rounding against the oracle.
func TestFromFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range oracleConfigs {
		for i := 0; i < 20000; i++ {
			// Mix of uniform mantissas over a wide exponent range.
			f := (rng.Float64()*2 - 1) * pow2float(rng.Intn(2*int(c.N))-int(c.N))
			got := c.FromFloat64(f)
			x := new(big.Rat).SetFloat64(f)
			checkNearest(t, c, x, got, "fromfloat")
		}
	}
}

func pow2float(e int) float64 {
	f := 1.0
	for ; e > 0; e-- {
		f *= 2
	}
	for ; e < 0; e++ {
		f /= 2
	}
	return f
}

// TestToFloat64Exact: the float64 image of every pattern must equal the
// oracle rational exactly (n ≤ 32 posits are all normal doubles).
func TestToFloat64Exact(t *testing.T) {
	for _, c := range oracleConfigs {
		if c.N > 16 {
			continue // spot-checked via round trip below
		}
		for _, p := range allPatterns(c) {
			if c.IsNaR(p) {
				continue
			}
			f := c.ToFloat64(p)
			want := ratValue(c, p)
			got := new(big.Rat).SetFloat64(f)
			if got.Cmp(want) != 0 {
				t.Fatalf("⟨%d,%d⟩ %s → %v ≠ %s", c.N, c.ES, c.BitString(p), f, want.FloatString(20))
			}
		}
	}
}

// TestRoundTrip: float64 is wide enough that posit→float64→posit must be
// the identity for every configuration we support.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, c := range oracleConfigs {
		for i := 0; i < 50000; i++ {
			p := Bits(rng.Uint64() & c.Mask())
			if c.IsNaR(p) {
				continue
			}
			if back := c.FromFloat64(c.ToFloat64(p)); back != p {
				t.Fatalf("⟨%d,%d⟩ round trip %s → %s", c.N, c.ES, c.BitString(p), c.BitString(back))
			}
		}
	}
}
