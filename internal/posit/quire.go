package posit

import "math/bits"

// Quire is the exact fixed-point accumulator mandated by the posit standard
// for fused operations. It holds 16·n bits of two's-complement fixed point
// whose least significant bit weighs minpos² = 2^(2·ScaleMin), which is
// enough to represent any sum of posit products — including
// maxpos² + minpos² — without rounding. Rounding happens exactly once, when
// the accumulated value is converted back to a posit with Posit().
//
// A Quire is created with NewQuire and is not safe for concurrent use.
type Quire struct {
	cfg Config
	w   []uint64 // little-endian words, two's complement
	nar bool
}

// NewQuire returns a cleared quire for the configuration. The standard's
// 16n bits suffice for es ≤ 2 (maxpos² spans 4·scaleMax+1 ≤ 16n−31 bits);
// for the nonstandard es ≥ 3 configurations this package also supports,
// the quire widens so that maxpos² plus carry headroom still fits exactly.
func NewQuire(cfg Config) *Quire {
	bits := 16 * cfg.N
	if need := uint(4*cfg.ScaleMax()) + 64; need > bits {
		bits = need
	}
	words := (bits + 63) / 64
	return &Quire{cfg: cfg, w: make([]uint64, words)}
}

// Clear resets the quire to zero.
func (q *Quire) Clear() {
	for i := range q.w {
		q.w[i] = 0
	}
	q.nar = false
}

// IsNaR reports whether the quire has absorbed a NaR operand or overflowed.
func (q *Quire) IsNaR() bool { return q.nar }

// Add accumulates the posit p exactly: q += p.
func (q *Quire) Add(p Bits) { q.addPosit(p, false) }

// Sub subtracts the posit p exactly: q −= p.
func (q *Quire) Sub(p Bits) { q.addPosit(p, true) }

func (q *Quire) addPosit(p Bits, negate bool) {
	if q.cfg.IsNaR(p) {
		q.nar = true
	}
	if q.nar || p == 0 {
		return
	}
	d := q.cfg.Decode(p)
	shift := d.Scale - 63 - 2*q.cfg.ScaleMin()
	q.addShifted(0, d.Frac, shift, d.Neg != negate)
}

// AddProduct accumulates the exact product a·b: q += a·b (fused
// multiply-add into the quire; the product is never rounded).
func (q *Quire) AddProduct(a, b Bits) { q.addProduct(a, b, false) }

// SubProduct computes q −= a·b exactly.
func (q *Quire) SubProduct(a, b Bits) { q.addProduct(a, b, true) }

func (q *Quire) addProduct(a, b Bits, negate bool) {
	if q.cfg.IsNaR(a) || q.cfg.IsNaR(b) {
		q.nar = true
	}
	if q.nar || a == 0 || b == 0 {
		return
	}
	da, db := q.cfg.Decode(a), q.cfg.Decode(b)
	hi, lo := bits.Mul64(da.Frac, db.Frac)
	shift := da.Scale + db.Scale - 126 - 2*q.cfg.ScaleMin()
	q.addShifted(hi, lo, shift, da.Neg != db.Neg != negate)
}

// addShifted adds (hi·2^64 + lo)·2^shift, negated when neg, into the quire.
// Negative shifts only ever drop zero bits: every posit's ULP is at least
// minpos-scaled, so products align at or above the quire's LSB.
func (q *Quire) addShifted(hi, lo uint64, shift int, neg bool) {
	if shift < 0 {
		s := uint(-shift)
		if s >= 64 {
			lo = hi >> (s - 64)
			hi = 0
		} else {
			lo = lo>>s | hi<<(64-s)
			hi >>= s
		}
		shift = 0
	}
	word, bit := shift/64, uint(shift%64)
	var v [3]uint64
	v[0] = lo << bit
	if bit == 0 {
		v[1] = hi
	} else {
		v[1] = hi<<bit | lo>>(64-bit)
		v[2] = hi >> (64 - bit)
	}
	topBefore := q.w[len(q.w)-1] >> 63
	if neg {
		var borrow uint64
		for i := 0; i < len(q.w)-word; i++ {
			var sub uint64
			if i < 3 {
				sub = v[i]
			}
			q.w[word+i], borrow = bits.Sub64(q.w[word+i], sub, borrow)
		}
	} else {
		var carry uint64
		for i := 0; i < len(q.w)-word; i++ {
			var add uint64
			if i < 3 {
				add = v[i]
			}
			q.w[word+i], carry = bits.Add64(q.w[word+i], add, carry)
		}
	}
	// Signed overflow check: adding a positive value must not turn a
	// non-negative quire negative, and vice versa. With the format's
	// guard bits this needs ≳2^(2n) accumulations to trigger.
	topAfter := q.w[len(q.w)-1] >> 63
	if topBefore != topAfter {
		// A sign change is legitimate when the magnitude crossed zero;
		// distinguish by the sign of the addend vs the transition.
		if (neg && topBefore == 1 && topAfter == 0) || (!neg && topBefore == 0 && topAfter == 1) {
			q.nar = true
		}
	}
}

// Sign returns −1, 0 or +1 for the accumulated value.
func (q *Quire) Sign() int {
	if q.w[len(q.w)-1]>>63 == 1 {
		return -1
	}
	for _, w := range q.w {
		if w != 0 {
			return 1
		}
	}
	return 0
}

// Posit rounds the accumulated value to the nearest posit — the single
// rounding step of a fused operation.
func (q *Quire) Posit() Bits {
	if q.nar {
		return q.cfg.NaR()
	}
	neg := q.w[len(q.w)-1]>>63 == 1
	mag := make([]uint64, len(q.w))
	copy(mag, q.w)
	if neg {
		var carry uint64 = 1
		for i := range mag {
			mag[i], carry = bits.Add64(^mag[i], 0, carry)
		}
	}
	// Locate the most significant set bit.
	top := -1
	for i := len(mag) - 1; i >= 0; i-- {
		if mag[i] != 0 {
			top = i*64 + 63 - bits.LeadingZeros64(mag[i])
			break
		}
	}
	if top < 0 {
		return 0
	}
	scale := 2*q.cfg.ScaleMin() + top
	// Extract the top 64 bits starting at `top` as the significand.
	frac, sticky := extractBits(mag, top)
	return q.cfg.encode(unrounded{neg: neg, scale: scale, frac: frac, sticky: sticky})
}

// extractBits returns the 64 bits of mag starting at bit index top
// (inclusive, counting from 0 = LSB) left-aligned into a uint64, plus
// whether any lower bit is set.
func extractBits(mag []uint64, top int) (frac uint64, sticky bool) {
	lowBit := top - 63
	for i := 0; i < 64; i++ {
		idx := top - i
		if idx < 0 {
			break
		}
		if mag[idx/64]>>(uint(idx)%64)&1 == 1 {
			frac |= 1 << (63 - i)
		}
	}
	for idx := 0; idx < lowBit; idx++ {
		if mag[idx/64]>>(uint(idx)%64)&1 == 1 {
			return frac, true
		}
	}
	return frac, false
}
