// Package posit implements arbitrary ⟨n,es⟩ posit arithmetic (the universal
// number format proposed by Gustafson) entirely in Go, following the posit
// standard semantics used by the SoftPosit reference library:
//
//   - a single rounding mode (round to nearest, ties to even bit pattern),
//   - saturation at maxpos/minpos instead of overflow/underflow (a nonzero
//     real value never rounds to zero or NaR),
//   - one zero, one exception value NaR (Not a Real),
//   - two's-complement total ordering of bit patterns.
//
// The package provides a generic codec and arithmetic valid for any
// configuration with 3 ≤ n ≤ 32 and 0 ≤ es ≤ 5, convenience wrapper types
// Posit32 ⟨32,2⟩, Posit16 ⟨16,1⟩ and Posit8 ⟨8,0⟩, and the quire: the
// 16n-bit fixed-point accumulator mandated by the standard for exact fused
// sums and dot products.
//
// All arithmetic is performed exactly in 128-bit integer form and rounded
// once, so results are correctly rounded for every configuration.
package posit

import "fmt"

// Config describes an ⟨n,es⟩ posit environment: n total bits, of which at
// most es encode the exponent. The dynamic range and the tapered-precision
// profile of the format are entirely determined by these two numbers.
type Config struct {
	N  uint // total bits, 3..32
	ES uint // maximum exponent bits, 0..5
}

// Standard configurations. Posit32 is the configuration recommended by the
// SoftPosit library and used for all experiments in the PositDebug paper.
var (
	Config8  = Config{N: 8, ES: 0}
	Config16 = Config{N: 16, ES: 1}
	Config32 = Config{N: 32, ES: 2}
)

// Bits is a posit bit pattern held in the low N bits of a uint64. The upper
// 64−N bits must be zero; every function in this package returns canonical
// patterns and tolerates only canonical inputs.
type Bits uint64

// Validate reports whether the configuration is supported by this package.
func (c Config) Validate() error {
	if c.N < 3 || c.N > 32 {
		return fmt.Errorf("posit: unsupported width n=%d (want 3..32)", c.N)
	}
	if c.ES > 5 {
		return fmt.Errorf("posit: unsupported exponent size es=%d (want 0..5)", c.ES)
	}
	return nil
}

// Mask returns a mask covering the low N bits.
func (c Config) Mask() uint64 { return (uint64(1) << c.N) - 1 }

// NaR returns the Not-a-Real bit pattern: a one followed by all zeros.
func (c Config) NaR() Bits { return Bits(uint64(1) << (c.N - 1)) }

// Zero returns the zero bit pattern (all zeros).
func (c Config) Zero() Bits { return 0 }

// One returns the bit pattern of the value 1 (0b01 followed by zeros).
func (c Config) One() Bits { return Bits(uint64(1) << (c.N - 2)) }

// MaxPos returns the bit pattern of maxpos, the largest finite posit:
// a zero sign bit followed by all ones.
func (c Config) MaxPos() Bits { return Bits(c.Mask() >> 1) }

// MinPos returns the bit pattern of minpos, the smallest positive posit.
func (c Config) MinPos() Bits { return 1 }

// ScaleMax returns the binary scale (power of two) of maxpos: (n−2)·2^es.
func (c Config) ScaleMax() int { return int(c.N-2) << c.ES }

// ScaleMin returns the binary scale of minpos: −(n−2)·2^es.
func (c Config) ScaleMin() int { return -(int(c.N-2) << c.ES) }

// UseedLog2 returns log2(useed) = 2^es; useed is the regime super-exponent
// base from the posit definition.
func (c Config) UseedLog2() int { return 1 << c.ES }

// IsNaR reports whether p is the Not-a-Real exception pattern.
func (c Config) IsNaR(p Bits) bool { return p == c.NaR() }

// IsZero reports whether p is zero.
func (c Config) IsZero(p Bits) bool { return p == 0 }

// Sign returns −1 for negative posits, 0 for zero and NaR, and +1 for
// positive posits.
func (c Config) Sign(p Bits) int {
	switch {
	case p == 0 || p == c.NaR():
		return 0
	case uint64(p)>>(c.N-1) == 1:
		return -1
	default:
		return 1
	}
}

// Neg returns −p: the two's complement of the pattern within n bits.
// Zero and NaR are their own negations.
func (c Config) Neg(p Bits) Bits {
	return Bits((-uint64(p)) & c.Mask())
}

// Abs returns |p|. NaR is returned unchanged.
func (c Config) Abs(p Bits) Bits {
	if c.IsNaR(p) {
		return p
	}
	if c.Sign(p) < 0 {
		return c.Neg(p)
	}
	return p
}

// IsMaxMag reports whether p has saturated magnitude: |p| equals maxpos.
// Operations producing such values likely overflowed in FP terms.
func (c Config) IsMaxMag(p Bits) bool { return c.Abs(p) == c.MaxPos() }

// IsMinMag reports whether p is nonzero with |p| equal to minpos, the
// saturation value for would-be underflows.
func (c Config) IsMinMag(p Bits) bool { return p != 0 && c.Abs(p) == c.MinPos() }
