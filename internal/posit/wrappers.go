package posit

// Posit32 is a value in the standard ⟨32,2⟩ configuration — the type used
// throughout the PositDebug evaluation. The zero value is posit zero.
type Posit32 uint32

// P32FromFloat64 rounds f to the nearest ⟨32,2⟩ posit.
func P32FromFloat64(f float64) Posit32 { return Posit32(Config32.FromFloat64(f)) }

// P32FromInt64 rounds i to the nearest ⟨32,2⟩ posit.
func P32FromInt64(i int64) Posit32 { return Posit32(Config32.FromInt64(i)) }

// NaR32 is the ⟨32,2⟩ Not-a-Real pattern.
const NaR32 Posit32 = 1 << 31

// Bits returns the generic pattern for use with Config32.
func (p Posit32) Bits() Bits { return Bits(p) }

// Float64 converts exactly to float64.
func (p Posit32) Float64() float64 { return Config32.ToFloat64(Bits(p)) }

// Add returns p+q correctly rounded.
func (p Posit32) Add(q Posit32) Posit32 { return Posit32(Config32.Add(Bits(p), Bits(q))) }

// Sub returns p−q correctly rounded.
func (p Posit32) Sub(q Posit32) Posit32 { return Posit32(Config32.Sub(Bits(p), Bits(q))) }

// Mul returns p·q correctly rounded.
func (p Posit32) Mul(q Posit32) Posit32 { return Posit32(Config32.Mul(Bits(p), Bits(q))) }

// Div returns p/q correctly rounded; division by zero yields NaR.
func (p Posit32) Div(q Posit32) Posit32 { return Posit32(Config32.Div(Bits(p), Bits(q))) }

// Sqrt returns the correctly rounded square root.
func (p Posit32) Sqrt() Posit32 { return Posit32(Config32.Sqrt(Bits(p))) }

// Neg returns −p.
func (p Posit32) Neg() Posit32 { return Posit32(Config32.Neg(Bits(p))) }

// Abs returns |p|.
func (p Posit32) Abs() Posit32 { return Posit32(Config32.Abs(Bits(p))) }

// IsNaR reports whether p is Not-a-Real.
func (p Posit32) IsNaR() bool { return p == NaR32 }

// Cmp compares numerically: −1, 0 or +1.
func (p Posit32) Cmp(q Posit32) int { return Config32.Cmp(Bits(p), Bits(q)) }

// Lt reports p < q.
func (p Posit32) Lt(q Posit32) bool { return p.Cmp(q) < 0 }

// Le reports p ≤ q.
func (p Posit32) Le(q Posit32) bool { return p.Cmp(q) <= 0 }

// String renders the value in decimal.
func (p Posit32) String() string { return Config32.Format(Bits(p)) }

// Posit16 is a value in the standard ⟨16,1⟩ configuration.
type Posit16 uint16

// P16FromFloat64 rounds f to the nearest ⟨16,1⟩ posit.
func P16FromFloat64(f float64) Posit16 { return Posit16(Config16.FromFloat64(f)) }

// Bits returns the generic pattern for use with Config16.
func (p Posit16) Bits() Bits { return Bits(p) }

// Float64 converts exactly to float64.
func (p Posit16) Float64() float64 { return Config16.ToFloat64(Bits(p)) }

// Add returns p+q correctly rounded.
func (p Posit16) Add(q Posit16) Posit16 { return Posit16(Config16.Add(Bits(p), Bits(q))) }

// Sub returns p−q correctly rounded.
func (p Posit16) Sub(q Posit16) Posit16 { return Posit16(Config16.Sub(Bits(p), Bits(q))) }

// Mul returns p·q correctly rounded.
func (p Posit16) Mul(q Posit16) Posit16 { return Posit16(Config16.Mul(Bits(p), Bits(q))) }

// Div returns p/q correctly rounded; division by zero yields NaR.
func (p Posit16) Div(q Posit16) Posit16 { return Posit16(Config16.Div(Bits(p), Bits(q))) }

// String renders the value in decimal.
func (p Posit16) String() string { return Config16.Format(Bits(p)) }

// Posit8 is a value in the ⟨8,0⟩ configuration used by SoftPosit.
type Posit8 uint8

// P8FromFloat64 rounds f to the nearest ⟨8,0⟩ posit.
func P8FromFloat64(f float64) Posit8 { return Posit8(Config8.FromFloat64(f)) }

// Bits returns the generic pattern for use with Config8.
func (p Posit8) Bits() Bits { return Bits(p) }

// Float64 converts exactly to float64.
func (p Posit8) Float64() float64 { return Config8.ToFloat64(Bits(p)) }

// Add returns p+q correctly rounded.
func (p Posit8) Add(q Posit8) Posit8 { return Posit8(Config8.Add(Bits(p), Bits(q))) }

// Sub returns p−q correctly rounded.
func (p Posit8) Sub(q Posit8) Posit8 { return Posit8(Config8.Sub(Bits(p), Bits(q))) }

// Mul returns p·q correctly rounded.
func (p Posit8) Mul(q Posit8) Posit8 { return Posit8(Config8.Mul(Bits(p), Bits(q))) }

// Div returns p/q correctly rounded; division by zero yields NaR.
func (p Posit8) Div(q Posit8) Posit8 { return Posit8(Config8.Div(Bits(p), Bits(q))) }

// String renders the value in decimal.
func (p Posit8) String() string { return Config8.Format(Bits(p)) }
