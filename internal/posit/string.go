package posit

import (
	"fmt"
	"strconv"
)

// Format renders a posit value in decimal (shortest representation that
// round-trips through float64, which is exact for n ≤ 32). NaR renders as
// "NaR".
func (c Config) Format(p Bits) string {
	if c.IsNaR(p) {
		return "NaR"
	}
	return strconv.FormatFloat(c.ToFloat64(p), 'g', -1, 64)
}

// BitString renders the raw pattern as an n-character binary string, useful
// when inspecting regime/exponent/fraction fields.
func (c Config) BitString(p Bits) string {
	return fmt.Sprintf("%0*b", c.N, uint64(p))
}

// FieldString renders the pattern with its fields separated:
// sign|regime|exponent|fraction, e.g. "0|110|1|101" for ⟨8,1⟩ 13.
func (c Config) FieldString(p Bits) string {
	if p == 0 || c.IsNaR(p) {
		return c.BitString(p)
	}
	bs := c.BitString(p)
	// Field boundaries are defined on the magnitude's pattern, but the
	// conventional display shows the stored bits; use the magnitude to
	// find the geometry.
	d := c.Decode(c.Abs(p))
	reg := 1 + d.RegimeBits
	expEnd := reg + int(c.ES)
	if expEnd > int(c.N) {
		expEnd = int(c.N)
	}
	out := bs[:1] + "|" + bs[1:reg]
	if reg < int(c.N) {
		out += "|" + bs[reg:expEnd]
	}
	if expEnd < int(c.N) {
		out += "|" + bs[expEnd:]
	}
	return out
}
