package posit

// ordinal maps a posit pattern to a signed integer whose natural order is
// the numeric order of posit values: patterns compare as n-bit two's
// complement integers, a defining property of the format. NaR is the most
// negative ordinal and therefore sorts below every real value.
func (c Config) ordinal(p Bits) int64 {
	shift := 64 - c.N
	return int64(uint64(p)<<shift) >> shift
}

// Cmp compares two posits numerically: −1 if a < b, 0 if equal, +1 if
// a > b. Following the posit standard's total order, NaR compares equal to
// itself and below every real value.
func (c Config) Cmp(a, b Bits) int {
	oa, ob := c.ordinal(a), c.ordinal(b)
	switch {
	case oa < ob:
		return -1
	case oa > ob:
		return 1
	default:
		return 0
	}
}

// Eq reports a == b (NaR equals NaR under the posit total order).
func (c Config) Eq(a, b Bits) bool { return a == b }

// Lt reports a < b.
func (c Config) Lt(a, b Bits) bool { return c.Cmp(a, b) < 0 }

// Le reports a ≤ b.
func (c Config) Le(a, b Bits) bool { return c.Cmp(a, b) <= 0 }
