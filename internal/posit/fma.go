package posit

import "math/bits"

// FMA returns a·b + c with a single rounding (fused multiply-add), the
// basic fused operation the posit standard builds on. The exact product
// has a 128-bit significand; the addition is carried out exactly in
// 256-bit fixed point before the one rounding step.
func (c Config) FMA(a, b, addend Bits) Bits {
	if c.IsNaR(a) || c.IsNaR(b) || c.IsNaR(addend) {
		return c.NaR()
	}
	if a == 0 || b == 0 {
		return addend
	}
	da, db := c.Decode(a), c.Decode(b)
	hi, lo := bits.Mul64(da.Frac, db.Frac)
	pScale := da.Scale + db.Scale
	// Normalize the product significand to have its MSB at bit 127.
	if hi>>63 == 1 {
		pScale++
	} else {
		hi = hi<<1 | lo>>63
		lo <<= 1
	}
	pNeg := da.Neg != db.Neg
	if addend == 0 {
		return c.encode(unrounded{neg: pNeg, scale: pScale, frac: hi, sticky: lo != 0})
	}
	dc := c.Decode(addend)
	// Align the addend (64-bit significand at scale dc.Scale) with the
	// product (128-bit significand at scale pScale) in 192-bit fixed
	// point: [x2 x1 x0] with the binary point under the top bit of x2.
	// The value with the smaller scale is shifted right; bits that fall
	// off the window set `dropped` (and by the binade argument, the
	// shifted value is always the one with the smaller magnitude).
	p2, p1, p0 := hi, lo, uint64(0)
	c2, c1, c0 := dc.Frac, uint64(0), uint64(0)
	scale := pScale
	var dropped bool
	if dc.Scale > pScale {
		d := dc.Scale - pScale
		scale = dc.Scale
		p2, p1, p0, dropped = shr192(p2, p1, p0, d)
	} else if dc.Scale < pScale {
		d := pScale - dc.Scale
		c2, c1, c0, dropped = shr192(c2, c1, c0, d)
	}
	if pNeg == dc.Neg {
		var carry uint64
		p0, carry = bits.Add64(p0, c0, 0)
		p1, carry = bits.Add64(p1, c1, carry)
		p2, carry = bits.Add64(p2, c2, carry)
		st := dropped
		if carry == 1 {
			st = st || p0&1 == 1
			p0 = p0>>1 | p1<<63
			p1 = p1>>1 | p2<<63
			p2 = p2>>1 | 1<<63
			scale++
		}
		return c.encode(unrounded{neg: pNeg, scale: scale, frac: p2,
			sticky: st || p1 != 0 || p0 != 0})
	}
	// Opposite signs: subtract the smaller magnitude (the shifted one, so
	// dropped bits always belong to the subtrahend). A dropped tail means
	// the true subtrahend is δ ∈ (0,1) window-ulps larger: borrow one
	// extra ulp and express the result as frac + positive sticky tail,
	// exactly as internal/posit's addUnpacked does.
	neg := pNeg
	if cmp192(p2, p1, p0, c2, c1, c0) < 0 {
		p2, c2 = c2, p2
		p1, c1 = c1, p1
		p0, c0 = c0, p0
		neg = dc.Neg
	}
	var borrow uint64
	p0, borrow = bits.Sub64(p0, c0, 0)
	p1, borrow = bits.Sub64(p1, c1, borrow)
	p2, _ = bits.Sub64(p2, c2, borrow)
	if dropped {
		var b2 uint64
		p0, b2 = bits.Sub64(p0, 1, 0)
		p1, b2 = bits.Sub64(p1, 0, b2)
		p2, _ = bits.Sub64(p2, 0, b2)
	}
	if p2 == 0 && p1 == 0 && p0 == 0 {
		if dropped {
			// Cannot happen: dropped implies a scale gap > 64, leaving
			// the minuend dominant; kept for defensive completeness.
			return c.MinPos()
		}
		return 0
	}
	// Normalize left.
	for p2>>63 == 0 {
		p2 = p2<<1 | p1>>63
		p1 = p1<<1 | p0>>63
		p0 <<= 1
		scale--
	}
	return c.encode(unrounded{neg: neg, scale: scale, frac: p2,
		sticky: dropped || p1 != 0 || p0 != 0})
}

// shr192 shifts a 192-bit value right by d, reporting whether any set bit
// was shifted out of the window.
func shr192(x2, x1, x0 uint64, d int) (r2, r1, r0 uint64, dropped bool) {
	if d <= 0 {
		return x2, x1, x0, false
	}
	for d >= 64 {
		dropped = dropped || x0 != 0
		x0, x1, x2 = x1, x2, 0
		d -= 64
	}
	if d > 0 {
		dropped = dropped || x0<<(64-d) != 0
		x0 = x0>>d | x1<<(64-d)
		x1 = x1>>d | x2<<(64-d)
		x2 >>= d
	}
	return x2, x1, x0, dropped
}

func cmp192(a2, a1, a0, b2, b1, b0 uint64) int {
	switch {
	case a2 != b2:
		if a2 > b2 {
			return 1
		}
		return -1
	case a1 != b1:
		if a1 > b1 {
			return 1
		}
		return -1
	case a0 != b0:
		if a0 > b0 {
			return 1
		}
		return -1
	}
	return 0
}

// FMA returns p·q + r with a single rounding.
func (p Posit32) FMA(q, r Posit32) Posit32 {
	return Posit32(Config32.FMA(Bits(p), Bits(q), Bits(r)))
}
