package posit

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestFMAOracle validates the fused multiply-add against the exact
// rational oracle across configurations (exhaustive on a dense sample of
// ⟨8,es⟩ triples, random for wider formats).
func TestFMAOracle(t *testing.T) {
	for _, c := range oracleConfigs {
		c := c
		rng := rand.New(rand.NewSource(int64(c.N)*31 + int64(c.ES)))
		iters := 60000
		for i := 0; i < iters; i++ {
			a := Bits(rng.Uint64() & c.Mask())
			b := Bits(rng.Uint64() & c.Mask())
			d := Bits(rng.Uint64() & c.Mask())
			got := c.FMA(a, b, d)
			if c.IsNaR(a) || c.IsNaR(b) || c.IsNaR(d) {
				if !c.IsNaR(got) {
					t.Fatalf("⟨%d,%d⟩ FMA with NaR must be NaR", c.N, c.ES)
				}
				continue
			}
			x := new(big.Rat).Mul(ratValue(c, a), ratValue(c, b))
			x.Add(x, ratValue(c, d))
			checkNearest(t, c, x, got,
				"fma "+c.BitString(a)+"*"+c.BitString(b)+"+"+c.BitString(d))
		}
	}
}

// TestFMACancellation exercises the catastrophic-cancellation corner the
// fused operation exists to avoid: a·b ≈ −c with the true result far
// below either magnitude must still round correctly.
func TestFMACancellation(t *testing.T) {
	c := Config32
	for _, tc := range []struct{ a, b, d float64 }{
		{3, 1.0 / 3, -1},               // a·b just off −d
		{1 << 20, 1 << 20, -(1 << 40)}, // exact cancellation to 0
		{1.0000001, 1.0000001, -1},
		{1e10, 1e-10, -1},
	} {
		a := c.FromFloat64(tc.a)
		b := c.FromFloat64(tc.b)
		d := c.FromFloat64(tc.d)
		got := c.FMA(a, b, d)
		x := new(big.Rat).Mul(ratValue(c, a), ratValue(c, b))
		x.Add(x, ratValue(c, d))
		checkNearest(t, c, x, got, "fma cancellation")
	}
}

// TestFMASingleRounding: fma(a,b,c) must beat mul-then-add when the
// product's low bits matter.
func TestFMASingleRounding(t *testing.T) {
	c := Config32
	a := c.FromFloat64(1 + 1.0/(1<<20))
	b := c.FromFloat64(1 - 1.0/(1<<20))
	d := c.Neg(c.One())
	fused := c.FMA(a, b, d)
	split := c.Add(c.Mul(a, b), d)
	// Exact: a·b−1 = −2^-40; the two-rounding version loses it entirely.
	if fused == 0 {
		t.Fatal("fused result must retain the −2^-40 residue")
	}
	if split != 0 {
		t.Skip("split result kept the residue at this precision")
	}
	if c.ToFloat64(fused) >= 0 {
		t.Fatalf("fma = %v, want negative residue", c.Format(fused))
	}
}

// TestFMAZeroCases: the a=0/b=0 shortcut must return the addend.
func TestFMAZeroCases(t *testing.T) {
	c := Config32
	x := c.FromFloat64(7.5)
	if c.FMA(0, x, x) != x || c.FMA(x, 0, x) != x {
		t.Fatal("0·x + c must be c")
	}
	if c.FMA(x, x, 0) != c.Mul(x, x) {
		t.Fatal("x·x + 0 must equal x·x")
	}
}

func TestPosit32FMAWrapper(t *testing.T) {
	a := P32FromFloat64(2)
	b := P32FromFloat64(3)
	d := P32FromFloat64(0.5)
	if got := a.FMA(b, d).Float64(); got != 6.5 {
		t.Fatalf("2·3+0.5 = %v", got)
	}
}

func BenchmarkP32FMA(b *testing.B) {
	x := Config32.FromFloat64(1.87654321)
	y := Config32.FromFloat64(3.14159)
	z := Config32.FromFloat64(-5.8979)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Config32.FMA(x, y, z)
	}
}
