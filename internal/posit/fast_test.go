package posit

import (
	"math/rand"
	"testing"
)

// TestFastDecode16Exhaustive checks the ⟨16,1⟩ decode table against the
// generic decoder for every one of the 65536 bit patterns, including zero
// and NaR (the table stores whatever the reference computes for them, so
// dispatch is equivalent even off-contract).
func TestFastDecode16Exhaustive(t *testing.T) {
	for i := 0; i < 1<<16; i++ {
		p := Bits(i)
		got := Config16.Decode(p)
		want := Config16.GenericDecode(p)
		if got != want {
			t.Fatalf("Decode(%#04x) = %+v, generic %+v", i, got, want)
		}
		if want.Frac&(1<<48-1) != 0 {
			t.Fatalf("Decode(%#04x): generic Frac %#x has bits below 48; table packing would be lossy", i, want.Frac)
		}
	}
}

// TestFastDecode8Exhaustive does the same for all 256 ⟨8,0⟩ patterns.
func TestFastDecode8Exhaustive(t *testing.T) {
	for i := 0; i < 1<<8; i++ {
		p := Bits(i)
		got := Config8.Decode(p)
		want := Config8.GenericDecode(p)
		if got != want {
			t.Fatalf("Decode(%#02x) = %+v, generic %+v", i, got, want)
		}
		if want.Frac&(1<<56-1) != 0 {
			t.Fatalf("Decode(%#02x): generic Frac %#x has bits below 56; table packing would be lossy", i, want.Frac)
		}
	}
}

// TestFastArith8Exhaustive checks the ⟨8,0⟩ result tables against the
// generic reference for all 256×256 operand pairs.
func TestFastArith8Exhaustive(t *testing.T) {
	for a := 0; a < 1<<8; a++ {
		for b := 0; b < 1<<8; b++ {
			pa, pb := Bits(a), Bits(b)
			if got, want := Config8.Add(pa, pb), Config8.GenericAdd(pa, pb); got != want {
				t.Fatalf("Add8(%#02x, %#02x) = %#02x, generic %#02x", a, b, got, want)
			}
			if got, want := Config8.Mul(pa, pb), Config8.GenericMul(pa, pb); got != want {
				t.Fatalf("Mul8(%#02x, %#02x) = %#02x, generic %#02x", a, b, got, want)
			}
		}
	}
}

// edge16 is the set of patterns most likely to stress rounding corners:
// zero, NaR, ±1, ±minpos, ±maxpos, the saturation-region neighbors where
// encode16 falls back to the midpoint comparison, and powers of two.
func edge16() []Bits {
	c := Config16
	edges := []Bits{0, c.NaR(), c.One(), c.Neg(c.One()), c.MinPos(), c.Neg(c.MinPos()),
		c.MaxPos(), c.Neg(c.MaxPos())}
	for _, p := range []Bits{0x7ffe, 0x7ff0, 0x7f00, 0x0002, 0x0003, 0x4001, 0x3fff, 0x5555, 0xaaaa & Bits(c.Mask())} {
		edges = append(edges, p, c.Neg(p))
	}
	return edges
}

// TestFastArith16Edges crosses every edge pattern with all 65536 patterns
// for both Add and Mul: full coverage of the rows where saturation,
// cancellation and NaR/zero handling live.
func TestFastArith16Edges(t *testing.T) {
	if testing.Short() {
		t.Skip("65536×len(edges) operand pairs")
	}
	for _, a := range edge16() {
		for b := 0; b < 1<<16; b++ {
			pb := Bits(b)
			if got, want := Config16.Add(a, pb), Config16.GenericAdd(a, pb); got != want {
				t.Fatalf("Add16(%#04x, %#04x) = %#04x, generic %#04x", a, pb, got, want)
			}
			if got, want := Config16.Mul(a, pb), Config16.GenericMul(a, pb); got != want {
				t.Fatalf("Mul16(%#04x, %#04x) = %#04x, generic %#04x", a, pb, got, want)
			}
		}
	}
}

// TestFastArith16Random samples uniform operand pairs; combined with the
// edge rows this gives strong coverage of the in-range rounding logic
// (the exhaustive 2^32 cross product runs ~minutes, too slow for CI).
func TestFastArith16Random(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2_000_000
	if testing.Short() {
		n = 100_000
	}
	for i := 0; i < n; i++ {
		a := Bits(rng.Intn(1 << 16))
		b := Bits(rng.Intn(1 << 16))
		if got, want := Config16.Add(a, b), Config16.GenericAdd(a, b); got != want {
			t.Fatalf("Add16(%#04x, %#04x) = %#04x, generic %#04x", a, b, got, want)
		}
		if got, want := Config16.Mul(a, b), Config16.GenericMul(a, b); got != want {
			t.Fatalf("Mul16(%#04x, %#04x) = %#04x, generic %#04x", a, b, got, want)
		}
		if got, want := Config16.Sub(a, b), Config16.GenericAdd(a, Config16.Neg(b)); got != want {
			t.Fatalf("Sub16(%#04x, %#04x) = %#04x, generic %#04x", a, b, got, want)
		}
	}
}

// FuzzDecode32 cross-checks the constant-folded ⟨32,2⟩ decoder against the
// generic field walk.
func FuzzDecode32(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0x80000000)) // NaR
	f.Add(uint32(0x40000000)) // one
	f.Add(uint32(0x7fffffff)) // maxpos
	f.Add(uint32(1))          // minpos
	f.Add(uint32(0xdeadbeef))
	f.Fuzz(func(t *testing.T, u uint32) {
		p := Bits(u)
		if got, want := Config32.Decode(p), Config32.GenericDecode(p); got != want {
			t.Fatalf("decode32(%#08x) = %+v, generic %+v", u, got, want)
		}
	})
}

// TestDecode32Sampled gives the fuzz target deterministic baseline coverage
// in plain `go test` runs: every pattern with the low 16 bits zero plus a
// random sample.
func TestDecode32Sampled(t *testing.T) {
	for hi := 0; hi < 1<<16; hi++ {
		p := Bits(uint32(hi) << 16)
		if got, want := Config32.Decode(p), Config32.GenericDecode(p); got != want {
			t.Fatalf("decode32(%#08x) = %+v, generic %+v", p, got, want)
		}
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1_000_000; i++ {
		p := Bits(rng.Uint32())
		if got, want := Config32.Decode(p), Config32.GenericDecode(p); got != want {
			t.Fatalf("decode32(%#08x) = %+v, generic %+v", p, got, want)
		}
	}
}

// TestFastArithAllocs pins the LUT paths at zero allocations per op — the
// property that keeps shadow execution allocation-free at steady state.
func TestFastArithAllocs(t *testing.T) {
	a, b := Config16.One(), Bits(0x3000) // 1 + 0.5: plain in-range rounding
	if n := testing.AllocsPerRun(1000, func() {
		sink16 = Config16.Add(a, b)
	}); n != 0 {
		t.Errorf("Config16.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sink16 = Config16.Mul(a, b)
	}); n != 0 {
		t.Errorf("Config16.Mul allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sink16 = Config8.Add(Bits(0x40), Bits(0x30))
	}); n != 0 {
		t.Errorf("Config8.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sinkDec = Config32.Decode(Bits(0x40000000))
	}); n != 0 {
		t.Errorf("Config32.Decode allocates %v/op, want 0", n)
	}
}

var (
	sink16  Bits
	sinkDec Decoded
)

// edge32 mirrors edge16 for ⟨32,2⟩: zero, NaR, ±1, ±minpos, ±maxpos,
// saturation-region neighbors and patterns that exercise long regimes.
func edge32() []Bits {
	c := Config32
	edges := []Bits{0, c.NaR(), c.One(), c.Neg(c.One()), c.MinPos(), c.Neg(c.MinPos()),
		c.MaxPos(), c.Neg(c.MaxPos())}
	for _, p := range []Bits{0x7ffffffe, 0x7ffffff0, 0x7fff0000, 0x00000002, 0x00000003,
		0x40000001, 0x3fffffff, 0x55555555, 0xaaaaaaaa & Bits(c.Mask())} {
		edges = append(edges, p, c.Neg(p))
	}
	return edges
}

// TestFastArith32Random differentially tests the ⟨32,2⟩ fast Add/Mul paths
// against the table-free generic reference: the full edge cross product
// plus uniform random pairs (the exhaustive 2^64 product is infeasible).
func TestFastArith32Random(t *testing.T) {
	edges := edge32()
	for _, a := range edges {
		for _, b := range edges {
			if got, want := Config32.Add(a, b), Config32.GenericAdd(a, b); got != want {
				t.Fatalf("Add32(%#08x, %#08x) = %#08x, generic %#08x", a, b, got, want)
			}
			if got, want := Config32.Mul(a, b), Config32.GenericMul(a, b); got != want {
				t.Fatalf("Mul32(%#08x, %#08x) = %#08x, generic %#08x", a, b, got, want)
			}
		}
	}
	rng := rand.New(rand.NewSource(3))
	n := 2_000_000
	if testing.Short() {
		n = 100_000
	}
	for i := 0; i < n; i++ {
		a := Bits(rng.Uint32())
		b := Bits(rng.Uint32())
		// Bias a fraction of pairs toward nearby magnitudes, where addition's
		// cancellation and renormalization paths live.
		if i%4 == 0 {
			b = a ^ Bits(rng.Uint32()&0xffff)
		}
		if got, want := Config32.Add(a, b), Config32.GenericAdd(a, b); got != want {
			t.Fatalf("Add32(%#08x, %#08x) = %#08x, generic %#08x", a, b, got, want)
		}
		if got, want := Config32.Mul(a, b), Config32.GenericMul(a, b); got != want {
			t.Fatalf("Mul32(%#08x, %#08x) = %#08x, generic %#08x", a, b, got, want)
		}
		if got, want := Config32.Sub(a, b), Config32.GenericAdd(a, Config32.Neg(b)); got != want {
			t.Fatalf("Sub32(%#08x, %#08x) = %#08x, generic %#08x", a, b, got, want)
		}
	}
}
