package posit

import "math/bits"

// This file holds the fast paths for the three standard configurations.
// The generic ⟨n,es⟩ pipeline decodes fields with variable shifts and
// assembles the rounding candidate through a 128-bit bit accumulator; for
// the shadow-execution hot loop (decode two operands, one exact op, one
// rounding) that generality is the dominant cost. Here:
//
//   - Config16 and Config8 decode from exhaustive lookup tables (2^16 and
//     2^8 entries) built at init() by running the generic decoder over
//     every pattern, so the tables are equal to the reference by
//     construction (the differential tests in fast_test.go enforce this).
//   - Config16 Add/Mul run on 48-bit integer significands with a computed
//     encoder that performs round-to-nearest-even inline when the rounding
//     position falls in the fraction field, deferring to the generic
//     midpoint comparison only near saturation where consecutive posits
//     are geometrically spaced.
//   - Config8 Add/Mul are complete 2^16-entry result tables (the whole
//     function is only 64 KiB), again built from the generic reference.
//   - Config32 decodes through decode32, the generic algorithm with n=32,
//     es=2 folded into constants so every field shift is immediate.
//
// All entry points stay behind the Config API (Decode/Add/Sub/Mul
// dispatch on the configuration value), so interp, shadow, the quire and
// the refactorer speed up without source changes. The Generic* methods
// keep the table-free reference reachable for differential tests and the
// ablation benchmarks.

// dec16 is a packed Decoded for ⟨16,1⟩: frac is Decoded.Frac>>48 (the
// hidden bit lands at bit 15; the low 48 bits of Frac are provably zero
// for every 16-bit pattern), scale spans [−30,29] and fits int8.
type dec16 struct {
	frac  uint16
	scale int8
	reg   uint8
	fb    uint8
	neg   bool
	_     uint16 // pad to 8 bytes so table indexing is a shift, not a multiply
}

func (e dec16) decoded() Decoded {
	return Decoded{
		Neg:        e.neg,
		Scale:      int(e.scale),
		Frac:       uint64(e.frac) << 48,
		RegimeBits: int(e.reg),
		FracBits:   int(e.fb),
	}
}

// dec8 is the ⟨8,0⟩ analogue: frac is Decoded.Frac>>56 (hidden bit 7).
type dec8 struct {
	frac  uint8
	scale int8
	reg   uint8
	fb    uint8
	neg   bool
}

func (e dec8) decoded() Decoded {
	return Decoded{
		Neg:        e.neg,
		Scale:      int(e.scale),
		Frac:       uint64(e.frac) << 56,
		RegimeBits: int(e.reg),
		FracBits:   int(e.fb),
	}
}

var (
	p16dec [1 << 16]dec16
	p8dec  [1 << 8]dec8
	// Full result tables for ⟨8,0⟩ addition and multiplication, indexed by
	// a<<8|b. Built from the generic reference, so NaR/zero handling and
	// rounding are identical by construction.
	p8add [1 << 16]uint8
	p8mul [1 << 16]uint8
)

func init() {
	for i := range p16dec {
		d := Config16.genericDecode(Bits(i))
		p16dec[i] = dec16{
			frac:  uint16(d.Frac >> 48),
			scale: int8(d.Scale),
			reg:   uint8(d.RegimeBits),
			fb:    uint8(d.FracBits),
			neg:   d.Neg,
		}
	}
	for i := range p8dec {
		d := Config8.genericDecode(Bits(i))
		p8dec[i] = dec8{
			frac:  uint8(d.Frac >> 56),
			scale: int8(d.Scale),
			reg:   uint8(d.RegimeBits),
			fb:    uint8(d.FracBits),
			neg:   d.Neg,
		}
	}
	for a := 0; a < 1<<8; a++ {
		for b := 0; b < 1<<8; b++ {
			p8add[a<<8|b] = uint8(Config8.GenericAdd(Bits(a), Bits(b)))
			p8mul[a<<8|b] = uint8(Config8.GenericMul(Bits(a), Bits(b)))
		}
	}
}

const (
	nar16    = Bits(0x8000)
	maxPos16 = Bits(0x7fff)
	mask16   = uint64(0xffff)
)

func neg16(p Bits) Bits { return Bits((-uint64(p)) & mask16) }

// add16 computes the correctly rounded ⟨16,1⟩ sum on 48-bit integer
// significands (hidden bit at 47). Alignment distances reach at most
// scaleMax−scaleMin = 56, so the shifted-out tail folds into a sticky bit
// exactly as in the generic 128-bit path; for opposite signs the dropped
// tail is borrowed back as one ulp plus a positive sticky.
func add16(a, b Bits) Bits {
	if a == nar16 || b == nar16 {
		return nar16
	}
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	ea, eb := p16dec[uint16(a)], p16dec[uint16(b)]
	xn, xs, xf := ea.neg, int(ea.scale), uint64(ea.frac)
	yn, ys, yf := eb.neg, int(eb.scale), uint64(eb.frac)
	// Ensure |x| ≥ |y| so alignment shifts y only.
	if ys > xs || (ys == xs && yf > xf) {
		xn, yn = yn, xn
		xs, ys = ys, xs
		xf, yf = yf, xf
	}
	sx := xf << 32 // hidden bit at 47
	sy := yf << 32
	d := uint(xs - ys) // ≤ 56
	yv := sy
	var st bool
	if d != 0 {
		yv = sy >> d
		st = sy<<(64-d) != 0
	}
	scale := xs
	var s uint64
	if xn == yn {
		s = sx + yv
		if s >= 1<<48 {
			st = st || s&1 == 1
			s >>= 1
			scale++
		}
	} else {
		// |x| ≥ |y|, so the difference carries x's sign (or is exactly zero,
		// which requires d == 0 and hence no sticky). When alignment dropped
		// bits of y, the true magnitude of y exceeds its truncation by
		// δ ∈ (0,1), so borrow one ulp and flip the tail into a positive
		// sticky; the subsequent normalize shift is then at most 1, keeping
		// the uncertainty strictly below the rounding granularity.
		s = sx - yv
		if st {
			s--
		}
		if s == 0 {
			return 0
		}
		if nz := bits.LeadingZeros64(s) - 16; nz > 0 {
			s <<= uint(nz)
			scale -= nz
		}
	}
	return encode16(xn, scale, s, st)
}

// mul16 computes the correctly rounded ⟨16,1⟩ product. The 16×16-bit
// significand product is exact in 32 bits, so no sticky tracking is needed
// before encoding.
func mul16(a, b Bits) Bits {
	if a == nar16 || b == nar16 {
		return nar16
	}
	if a == 0 || b == 0 {
		return 0
	}
	ea, eb := p16dec[uint16(a)], p16dec[uint16(b)]
	pr := uint64(ea.frac) * uint64(eb.frac) // ∈ [2^30, 2^32)
	scale := int(ea.scale) + int(eb.scale)
	if pr>>31 == 1 {
		scale++
	} else {
		pr <<= 1
	}
	return encode16(ea.neg != eb.neg, scale, pr<<16, false)
}

// encode16 rounds (−1)^neg · 2^(scale−47) · (sig + t) to the nearest
// ⟨16,1⟩ posit, where sig ∈ [2^47, 2^48) and t ∈ [0,1) with sticky ⇔ t>0.
// When the rounding position lies in the fraction field the two candidates
// differ by one unit there, so bit-pattern RNE runs inline on sig; when it
// falls inside the regime/exponent field (|scale| near saturation) the
// generic midpoint comparison decides.
func encode16(neg bool, scale int, sig uint64, sticky bool) Bits {
	var mag Bits
	switch {
	case scale > 28:
		mag = maxPos16
	case scale < -28:
		mag = 1
	default:
		k := scale >> 1
		e := uint64(scale & 1)
		var regLen int
		var regBits uint64
		if k >= 0 {
			regLen = k + 2
			regBits = (uint64(1)<<(k+1) - 1) << 1 // k+1 ones then a zero
		} else {
			regLen = -k + 1
			regBits = 1 // −k zeros then a one
		}
		fb := 14 - regLen // fraction bits in the 15-bit body after regime+exp
		if fb < 0 {
			mag = Config16.encodeMag(scale, sig<<16, sticky)
			break
		}
		body := regBits<<uint(1+fb) | e<<uint(fb) | sig>>uint(47-fb)&(1<<uint(fb)-1)
		g := uint(46 - fb) // guard bit position in sig
		if sig>>g&1 == 1 && (sticky || sig&(1<<g-1) != 0 || body&1 == 1) {
			body++
			if body > uint64(maxPos16) {
				body = uint64(maxPos16) // saturate, never round to NaR
			}
		}
		mag = Bits(body)
	}
	if neg {
		return neg16(mag)
	}
	return mag
}

// decode32 is the generic decoder with n=32, es=2 folded into constants,
// removing every variable-distance shift from the ⟨32,2⟩ hot path. It
// matches genericDecode bit for bit on all 2^32 patterns (fuzzed in
// fast_test.go).
func decode32(p Bits) Decoded {
	var d Decoded
	v := uint64(p) << 32
	if v>>63 == 1 {
		d.Neg = true
		v = -v
	}
	rest := v << 1 // low 33 bits zero
	var run, k int
	if rest>>63 == 1 {
		run = bits.LeadingZeros64(^rest) // ≤ 31: the low 33 bits of ^rest are ones
		k = run - 1
	} else {
		run = bits.LeadingZeros64(rest)
		if run > 31 {
			run = 31
		}
		k = -run
	}
	regField := run + 1
	if regField > 31 {
		regField = 31 // terminator did not fit
	}
	d.RegimeBits = regField
	d.FracBits = 29 - regField
	if d.FracBits < 0 {
		d.FracBits = 0
	}
	after := rest << uint(regField)
	d.Scale = k<<2 + int(after>>62)
	d.Frac = 1<<63 | after<<2>>1
	return d
}

const nar32 = Bits(0x8000_0000)

// add32 is ⟨32,2⟩ addition: the generic exact-sum pipeline fed by the
// constant-folded decoder. The arithmetic after decoding is GenericAdd's
// own (addUnpacked + encode), and decode32 matches genericDecode on all
// 2^32 patterns, so add32 rounds identically to the reference by
// construction (enforced in fast_test.go).
func add32(a, b Bits) Bits {
	if a == nar32 || b == nar32 {
		return nar32
	}
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	return Config32.AddDecoded(decode32(a), decode32(b))
}

// mul32 is ⟨32,2⟩ multiplication; see add32.
func mul32(a, b Bits) Bits {
	if a == nar32 || b == nar32 {
		return nar32
	}
	if a == 0 || b == 0 {
		return 0
	}
	return Config32.MulDecoded(decode32(a), decode32(b))
}

// AddDecoded returns the correctly rounded sum of two pre-decoded posits.
// Both operands must be finite and nonzero (a Decoded is only defined for
// such patterns); callers that cache decodes — the shadow runtime's fused
// superinstruction path — handle the NaR/zero cases on the raw bits first.
// Subtraction is AddDecoded with the subtrahend's Neg flipped: decoders
// negate before extracting fields, so Decode(Neg(p)) differs from
// Decode(p) only in Neg.
func (c Config) AddDecoded(da, db Decoded) Bits {
	return c.encode(addUnpacked(da, db))
}

// MulDecoded returns the correctly rounded product of two pre-decoded
// posits; the same operand contract as AddDecoded applies. The body is
// GenericMul's own post-decode arithmetic.
func (c Config) MulDecoded(da, db Decoded) Bits {
	hi, lo := bits.Mul64(da.Frac, db.Frac)
	scale := da.Scale + db.Scale
	// Product of [2^63,2^64) significands lies in [2^126,2^128).
	if hi>>63 == 1 {
		scale++
	} else {
		hi = hi<<1 | lo>>63
		lo <<= 1
	}
	return c.encode(unrounded{
		neg:    da.Neg != db.Neg,
		scale:  scale,
		frac:   hi,
		sticky: lo != 0,
	})
}
