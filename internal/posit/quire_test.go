package posit

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestQuireDotProduct: the quire must compute exactly rounded fused dot
// products — the accumulated rationals rounded once.
func TestQuireDotProduct(t *testing.T) {
	for _, c := range []Config{Config8, Config16, Config32, {N: 13, ES: 2}} {
		rng := rand.New(rand.NewSource(int64(c.N)))
		for trial := 0; trial < 200; trial++ {
			q := NewQuire(c)
			exact := new(big.Rat)
			n := 1 + rng.Intn(40)
			for i := 0; i < n; i++ {
				a := Bits(rng.Uint64() & c.Mask())
				b := Bits(rng.Uint64() & c.Mask())
				if c.IsNaR(a) || c.IsNaR(b) {
					continue
				}
				if rng.Intn(2) == 0 {
					q.AddProduct(a, b)
					exact.Add(exact, new(big.Rat).Mul(ratValue(c, a), ratValue(c, b)))
				} else {
					q.SubProduct(a, b)
					exact.Sub(exact, new(big.Rat).Mul(ratValue(c, a), ratValue(c, b)))
				}
			}
			got := q.Posit()
			checkNearest(t, c, exact, got, "quire fdp")
		}
	}
}

// TestQuireFusedSum: exact accumulation of plain posit values.
func TestQuireFusedSum(t *testing.T) {
	for _, c := range []Config{Config8, Config16, Config32} {
		rng := rand.New(rand.NewSource(int64(c.N) + 99))
		for trial := 0; trial < 200; trial++ {
			q := NewQuire(c)
			exact := new(big.Rat)
			for i := 0; i < 1+rng.Intn(60); i++ {
				a := Bits(rng.Uint64() & c.Mask())
				if c.IsNaR(a) {
					continue
				}
				if rng.Intn(4) == 0 {
					q.Sub(a)
					exact.Sub(exact, ratValue(c, a))
				} else {
					q.Add(a)
					exact.Add(exact, ratValue(c, a))
				}
			}
			checkNearest(t, c, exact, q.Posit(), "quire fsum")
		}
	}
}

// TestQuireExtremes: maxpos² + minpos² must be held exactly (the standard's
// sizing requirement), and cancel back out exactly.
func TestQuireExtremes(t *testing.T) {
	c := Config32
	q := NewQuire(c)
	q.AddProduct(c.MaxPos(), c.MaxPos())
	q.AddProduct(c.MinPos(), c.MinPos())
	exact := new(big.Rat).Mul(ratValue(c, c.MaxPos()), ratValue(c, c.MaxPos()))
	exact.Add(exact, new(big.Rat).Mul(ratValue(c, c.MinPos()), ratValue(c, c.MinPos())))
	checkNearest(t, c, exact, q.Posit(), "maxpos²+minpos²")

	q.SubProduct(c.MaxPos(), c.MaxPos())
	if got := q.Posit(); got != c.MinPos() {
		// The remainder is exactly minpos² = 2^-240, far below minpos, so
		// it must clamp to minpos (never to zero).
		t.Fatalf("residual minpos² must round to minpos, got %s", c.Format(got))
	}
	q.SubProduct(c.MinPos(), c.MinPos())
	if got := q.Posit(); got != 0 {
		t.Fatalf("exact cancellation must give zero, got %s", c.Format(got))
	}
}

// TestQuireNaR: NaR operands poison the quire until cleared.
func TestQuireNaR(t *testing.T) {
	c := Config32
	q := NewQuire(c)
	q.Add(c.One())
	q.Add(c.NaR())
	if !q.IsNaR() || q.Posit() != c.NaR() {
		t.Fatal("quire must absorb NaR")
	}
	q.Clear()
	if q.IsNaR() || q.Posit() != 0 {
		t.Fatal("Clear must reset NaR and value")
	}
}

// TestQuireSimpsonStyle: long accumulation of same-sign terms (the paper's
// §5.2.2 failure mode) — the quire must agree with exact arithmetic where
// naive posit accumulation drifts.
func TestQuireSimpsonStyle(t *testing.T) {
	c := Config32
	q := NewQuire(c)
	exact := new(big.Rat)
	naive := Bits(0)
	term := c.FromFloat64(1.8e14)
	for i := 0; i < 5000; i++ {
		q.Add(term)
		naive = c.Add(naive, term)
		exact.Add(exact, ratValue(c, term))
	}
	checkNearest(t, c, exact, q.Posit(), "simpson-style fused sum")
	// And the naive sum must (by design of the workload) have drifted.
	nf := c.ToFloat64(naive)
	ef, _ := exact.Float64()
	if nf == ef {
		t.Skip("naive accumulation did not drift at this scale")
	}
}

func BenchmarkQuireAddProduct(b *testing.B) {
	c := Config32
	q := NewQuire(c)
	x := c.FromFloat64(1.5)
	y := c.FromFloat64(2.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.AddProduct(x, y)
	}
}

// TestQuireWideES: nonstandard es ≥ 3 configurations need a wider quire
// than the standard's 16n bits; maxpos²±minpos² must still be exact.
func TestQuireWideES(t *testing.T) {
	for _, c := range []Config{{N: 16, ES: 3}, {N: 12, ES: 4}, {N: 10, ES: 5}} {
		q := NewQuire(c)
		q.AddProduct(c.MaxPos(), c.MaxPos())
		q.AddProduct(c.MinPos(), c.MinPos())
		exact := new(big.Rat).Mul(ratValue(c, c.MaxPos()), ratValue(c, c.MaxPos()))
		exact.Add(exact, new(big.Rat).Mul(ratValue(c, c.MinPos()), ratValue(c, c.MinPos())))
		checkNearest(t, c, exact, q.Posit(), "wide-es maxpos²+minpos²")
		q.SubProduct(c.MaxPos(), c.MaxPos())
		q.SubProduct(c.MinPos(), c.MinPos())
		if got := q.Posit(); got != 0 {
			t.Fatalf("⟨%d,%d⟩ exact cancellation gave %s", c.N, c.ES, c.Format(got))
		}
		// Random fused dot products stay correctly rounded.
		rng := rand.New(rand.NewSource(int64(c.N + c.ES)))
		for trial := 0; trial < 50; trial++ {
			q.Clear()
			ex := new(big.Rat)
			for i := 0; i < 20; i++ {
				a := Bits(rng.Uint64() & c.Mask())
				b := Bits(rng.Uint64() & c.Mask())
				if c.IsNaR(a) || c.IsNaR(b) {
					continue
				}
				q.AddProduct(a, b)
				ex.Add(ex, new(big.Rat).Mul(ratValue(c, a), ratValue(c, b)))
			}
			checkNearest(t, c, ex, q.Posit(), "wide-es fdp")
		}
	}
}
