package posit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPaperDecodeExample reproduces the worked example from §2.1 of the
// paper: in ⟨8,1⟩, the pattern 01101101 decodes to
// (−1)^0 · 4^1 · 2^1 · (1 + 5/8) = 13.
func TestPaperDecodeExample(t *testing.T) {
	c := Config{N: 8, ES: 1}
	p := Bits(0b01101101)
	if got := c.ToFloat64(p); got != 13 {
		t.Fatalf("⟨8,1⟩ 01101101 = %v, want 13", got)
	}
	d := c.Decode(p)
	if d.Neg || d.Scale != 3 {
		t.Fatalf("decode: %+v", d)
	}
	if d.RegimeBits != 3 { // "110"
		t.Fatalf("regime bits = %d, want 3", d.RegimeBits)
	}
	if d.FracBits != 3 {
		t.Fatalf("frac bits = %d, want 3", d.FracBits)
	}
	if fs := c.FieldString(p); fs != "0|110|1|101" {
		t.Fatalf("field string = %q", fs)
	}
}

// TestSpecialValues covers the two special patterns and their arithmetic.
func TestSpecialValues(t *testing.T) {
	c := Config32
	if !c.IsNaR(c.NaR()) || c.IsNaR(0) {
		t.Fatal("NaR predicate")
	}
	if c.Neg(0) != 0 || c.Neg(c.NaR()) != c.NaR() {
		t.Fatal("zero and NaR are their own negations")
	}
	if got := c.Div(c.One(), 0); !c.IsNaR(got) {
		t.Fatal("x/0 must be NaR")
	}
	if got := c.Div(0, c.One()); got != 0 {
		t.Fatal("0/x must be 0")
	}
	if got := c.Sqrt(c.Neg(c.One())); !c.IsNaR(got) {
		t.Fatal("sqrt of negative must be NaR")
	}
	if !math.IsNaN(c.ToFloat64(c.NaR())) {
		t.Fatal("NaR must convert to NaN")
	}
	if c.Format(c.NaR()) != "NaR" {
		t.Fatal("NaR formatting")
	}
}

// TestGoldenZone: a ⟨32,2⟩ posit matches or beats float32 precision inside
// [1/useed², useed²]-ish band; concretely, values near 1 carry 27 fraction
// bits (> float32's 23).
func TestGoldenZone(t *testing.T) {
	c := Config32
	if fb := c.FracBits(c.One()); fb != 27 {
		t.Fatalf("fraction bits at 1.0 = %d, want 27", fb)
	}
	// Tapering: maxpos has no fraction bits at all.
	if fb := c.FracBits(c.MaxPos()); fb != 0 {
		t.Fatalf("fraction bits at maxpos = %d, want 0", fb)
	}
	if s := c.Scale(c.MaxPos()); s != 120 {
		t.Fatalf("maxpos scale = %d, want 120", s)
	}
	if s := c.Scale(c.MinPos()); s != -120 {
		t.Fatalf("minpos scale = %d, want -120", s)
	}
}

// TestSaturation checks the posit no-overflow rule: results beyond maxpos
// clamp to maxpos, and nonzero results below minpos clamp to minpos.
func TestSaturation(t *testing.T) {
	c := Config32
	if got := c.Mul(c.MaxPos(), c.MaxPos()); got != c.MaxPos() {
		t.Fatalf("maxpos² = %s, want maxpos", c.Format(got))
	}
	if got := c.Mul(c.MinPos(), c.MinPos()); got != c.MinPos() {
		t.Fatalf("minpos² = %s, want minpos", c.Format(got))
	}
	if got := c.Add(c.MaxPos(), c.MaxPos()); got != c.MaxPos() {
		t.Fatalf("maxpos+maxpos = %s, want maxpos", c.Format(got))
	}
	big := c.FromFloat64(1e300)
	if big != c.MaxPos() {
		t.Fatalf("1e300 must clamp to maxpos")
	}
	tiny := c.FromFloat64(1e-300)
	if tiny != c.MinPos() {
		t.Fatalf("1e-300 must clamp to minpos")
	}
	if got := c.FromFloat64(-1e300); got != c.Neg(c.MaxPos()) {
		t.Fatalf("-1e300 must clamp to -maxpos")
	}
}

// TestFig2RootCount reproduces the paper's Figure 2 behaviour directly on
// the arithmetic: in ⟨32,2⟩, b·b and 4·a·c both round to the same posit and
// the discriminant cancels to exactly zero, while the true value is ≈2.4e20.
func TestFig2RootCount(t *testing.T) {
	c := Config32
	a := c.FromFloat64(1.8309067625725952e16)
	b := c.FromFloat64(3.24664295424e12)
	cc := c.FromFloat64(1.43923904e8)

	t1 := c.Mul(b, b)
	t2 := c.Mul(c.Mul(c.FromFloat64(4.0), a), cc)
	if t1 != t2 {
		t.Fatalf("b² (%s) and 4ac (%s) must round to the same posit", c.Format(t1), c.Format(t2))
	}
	if got := c.ToFloat64(t1); math.Abs(got-1.057810092162800527867904e25) > 1e10 {
		t.Fatalf("rounded intermediate = %g, want ≈1.0578100…e25", got)
	}
	t3 := c.Sub(t1, t2)
	if t3 != 0 {
		t.Fatalf("discriminant must cancel to 0, got %s", c.Format(t3))
	}
	// Figure 2 also reports the available fraction bits per value.
	for _, tc := range []struct {
		p    Bits
		want int
	}{{a, 14}, {b, 17}, {cc, 21}, {t1, 7}} {
		if fb := c.FracBits(tc.p); fb != tc.want {
			t.Fatalf("frac bits of %s = %d, want %d", c.Format(tc.p), fb, tc.want)
		}
	}
	// The paper's rewrite (b−2√a√c)(b+2√a√c) recovers ≈2.179e20.
	two := c.FromFloat64(2)
	sa, sc := c.Sqrt(a), c.Sqrt(cc)
	left := c.Sub(b, c.Mul(two, c.Mul(sa, sc)))
	right := c.Add(b, c.Mul(two, c.Mul(sa, sc)))
	rewritten := c.Mul(left, right)
	if got := c.ToFloat64(rewritten); math.Abs(got-2.17902164370694078464e20)/2.179e20 > 1e-6 {
		t.Fatalf("rewritten discriminant = %g, want ≈2.17902…e20", got)
	}
}

// TestIntConversions exercises the posit↔int64 paths.
func TestIntConversions(t *testing.T) {
	c := Config32
	for _, v := range []int64{0, 1, -1, 2, 13, -13, 1000, 123456, -99999, 1 << 40} {
		p := c.FromInt64(v)
		got, ok := c.ToInt64(p)
		// Large magnitudes lose integer precision but small ones are exact.
		if v < 1<<27 && v > -(1<<27) {
			if !ok || got != v {
				t.Fatalf("int round trip %d → %d (ok=%v)", v, got, ok)
			}
		}
	}
	// Truncation toward zero, like a C cast.
	if got, _ := c.ToInt64(c.FromFloat64(2.9)); got != 2 {
		t.Fatalf("ToInt64(2.9) = %d, want 2", got)
	}
	if got, _ := c.ToInt64(c.FromFloat64(-2.9)); got != -2 {
		t.Fatalf("ToInt64(-2.9) = %d, want -2", got)
	}
	if _, ok := c.ToInt64(c.NaR()); ok {
		t.Fatal("ToInt64(NaR) must report !ok")
	}
}

// TestConvertBetweenConfigs: widening a posit to a strictly finer
// configuration and back must be the identity.
func TestConvertBetweenConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		p := Bits(rng.Uint64() & Config16.Mask())
		if Config16.IsNaR(p) {
			continue
		}
		wide := Config16.Convert(p, Config32)
		back := Config32.Convert(wide, Config16)
		if back != p {
			t.Fatalf("16→32→16 round trip failed for %s", Config16.BitString(p))
		}
	}
	if got := Config16.Convert(Config16.NaR(), Config32); got != Config32.NaR() {
		t.Fatal("NaR must convert to NaR")
	}
}

// TestOrderingMatchesValues: the two's-complement pattern order must agree
// with numeric order — the property the comparison operators rely on.
func TestOrderingMatchesValues(t *testing.T) {
	for _, c := range []Config{Config8, Config16} {
		var prev float64
		first := true
		for o := int64(-(1 << (c.N - 1))) + 1; o < int64(1<<(c.N-1)); o++ {
			p := Bits(uint64(o) & c.Mask())
			v := c.ToFloat64(p)
			if !first && !(v > prev) {
				t.Fatalf("⟨%d,%d⟩ ordering violated at %s", c.N, c.ES, c.BitString(p))
			}
			prev, first = v, false
		}
	}
}

// Property-based tests on algebraic identities that posit arithmetic must
// satisfy exactly (commutativity, sign symmetry, involution).
func TestQuickProperties(t *testing.T) {
	c := Config32
	mask := c.Mask()
	cfgOK := func(a, b uint64) (Bits, Bits) { return Bits(a & mask), Bits(b & mask) }

	if err := quick.Check(func(x, y uint64) bool {
		a, b := cfgOK(x, y)
		return c.Add(a, b) == c.Add(b, a)
	}, nil); err != nil {
		t.Error("add commutativity:", err)
	}
	if err := quick.Check(func(x, y uint64) bool {
		a, b := cfgOK(x, y)
		return c.Mul(a, b) == c.Mul(b, a)
	}, nil); err != nil {
		t.Error("mul commutativity:", err)
	}
	if err := quick.Check(func(x, y uint64) bool {
		a, b := cfgOK(x, y)
		return c.Add(c.Neg(a), c.Neg(b)) == c.Neg(c.Add(a, b))
	}, nil); err != nil {
		t.Error("negation symmetry:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		a := Bits(x & mask)
		return c.Neg(c.Neg(a)) == a
	}, nil); err != nil {
		t.Error("neg involution:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		a := Bits(x & mask)
		return c.Mul(a, c.One()) == a
	}, nil); err != nil {
		t.Error("multiplicative identity:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		a := Bits(x & mask)
		return c.Add(a, 0) == a
	}, nil); err != nil {
		t.Error("additive identity:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		a := Bits(x & mask)
		if c.IsNaR(a) {
			return c.IsNaR(c.Sub(a, a))
		}
		return c.Sub(a, a) == 0
	}, nil); err != nil {
		t.Error("x−x = 0:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		a := Bits(x & mask)
		if c.IsNaR(a) || a == 0 {
			return true
		}
		d := c.Div(a, a)
		return d == c.One()
	}, nil); err != nil {
		t.Error("x/x = 1:", err)
	}
	if err := quick.Check(func(x uint64) bool {
		a := c.Abs(Bits(x & mask))
		if c.IsNaR(a) {
			return true
		}
		// sqrt(x)² ≈ x within one rounding each way: check ordering only.
		s := c.Sqrt(a)
		return c.Sign(s) >= 0
	}, nil); err != nil {
		t.Error("sqrt sign:", err)
	}
}

// TestWrapperTypes gives the convenience types a smoke pass.
func TestWrapperTypes(t *testing.T) {
	a := P32FromFloat64(1.5)
	b := P32FromFloat64(2.5)
	if got := a.Add(b).Float64(); got != 4 {
		t.Fatalf("1.5+2.5 = %v", got)
	}
	if got := a.Mul(b).Float64(); got != 3.75 {
		t.Fatalf("1.5·2.5 = %v", got)
	}
	if got := b.Sub(a).Float64(); got != 1 {
		t.Fatalf("2.5−1.5 = %v", got)
	}
	if got := b.Div(a).String(); got != "1.6666666" && got == "" {
		t.Fatalf("2.5/1.5 = %v", got)
	}
	if !a.Lt(b) || b.Le(a) {
		t.Fatal("comparisons")
	}
	if P32FromFloat64(math.NaN()) != NaR32 || !NaR32.IsNaR() {
		t.Fatal("NaR32")
	}
	if got := P32FromFloat64(9).Sqrt().Float64(); got != 3 {
		t.Fatalf("sqrt(9) = %v", got)
	}
	if got := P32FromInt64(-7).Abs().Float64(); got != 7 {
		t.Fatalf("abs(-7) = %v", got)
	}
	x16 := P16FromFloat64(0.5)
	if got := x16.Add(x16).Float64(); got != 1 {
		t.Fatalf("p16 0.5+0.5 = %v", got)
	}
	if got := x16.Mul(x16).Float64(); got != 0.25 {
		t.Fatalf("p16 0.5·0.5 = %v", got)
	}
	if got := x16.Div(x16).Float64(); got != 1 {
		t.Fatalf("p16 0.5/0.5 = %v", got)
	}
	if got := x16.Sub(x16).Float64(); got != 0 {
		t.Fatalf("p16 0.5-0.5 = %v", got)
	}
	x8 := P8FromFloat64(2)
	if got := x8.Mul(x8).Float64(); got != 4 {
		t.Fatalf("p8 2·2 = %v", got)
	}
	if got := x8.Add(x8).Float64(); got != 4 {
		t.Fatalf("p8 2+2 = %v", got)
	}
	if got := x8.Sub(x8).Float64(); got != 0 {
		t.Fatalf("p8 2-2 = %v", got)
	}
	if got := x8.Div(x8).Float64(); got != 1 {
		t.Fatalf("p8 2/2 = %v", got)
	}
}

// TestValidate rejects unsupported configurations.
func TestValidate(t *testing.T) {
	for _, c := range []Config{{N: 2}, {N: 33}, {N: 64, ES: 2}, {N: 16, ES: 6}} {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v must be rejected", c)
		}
	}
	for _, c := range oracleConfigs {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %+v must validate: %v", c, err)
		}
	}
}

func BenchmarkP32Add(b *testing.B) {
	x := Config32.FromFloat64(1.87654321)
	y := Config32.FromFloat64(-0.0043210987)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = Config32.Add(x, y)
	}
	_ = x
}

func BenchmarkP32Mul(b *testing.B) {
	x := Config32.FromFloat64(1.0000001)
	y := Config32.FromFloat64(0.9999999)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Config32.Mul(x, y)
	}
}

func BenchmarkP32Div(b *testing.B) {
	x := Config32.FromFloat64(1.87654321)
	y := Config32.FromFloat64(3.14159)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Config32.Div(x, y)
	}
}

func BenchmarkP32Sqrt(b *testing.B) {
	x := Config32.FromFloat64(1.87654321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Config32.Sqrt(x)
	}
}

// BenchmarkEncodePaths isolates the two rounding paths of the encoder:
// golden-zone operations round within the fraction field (fast integer
// RNE), while tapered-edge operations fall into the exact big.Int
// neighbor-midpoint comparison.
func BenchmarkEncodePaths(b *testing.B) {
	c := Config32
	b.Run("fast-infraction", func(b *testing.B) {
		x := c.FromFloat64(1.2345678)
		y := c.FromFloat64(1.0000001)
		for i := 0; i < b.N; i++ {
			_ = c.Mul(x, y)
		}
	})
	b.Run("slow-taperededge", func(b *testing.B) {
		// Products near maxpos: the rounding position lands inside the
		// regime, forcing the exact midpoint comparison.
		x := c.FromFloat64(1.1e17)
		y := c.FromFloat64(0.9e17)
		for i := 0; i < b.N; i++ {
			_ = c.Mul(x, y)
		}
	})
}

// TestSmallAccessors sweeps the trivial accessors.
func TestSmallAccessors(t *testing.T) {
	c := Config32
	if c.Zero() != 0 || !c.IsZero(c.Zero()) || c.IsZero(c.One()) {
		t.Fatal("zero accessors")
	}
	if c.UseedLog2() != 4 || Config16.UseedLog2() != 2 || Config8.UseedLog2() != 1 {
		t.Fatal("useed")
	}
	if c.RegimeLen(c.One()) != 2 {
		t.Fatalf("regime of 1.0 = %d", c.RegimeLen(c.One()))
	}
	if !c.IsMaxMag(c.Neg(c.MaxPos())) || c.IsMaxMag(c.One()) {
		t.Fatal("IsMaxMag")
	}
	if !c.IsMinMag(c.MinPos()) || c.IsMinMag(0) {
		t.Fatal("IsMinMag")
	}
	if c.Abs(c.NaR()) != c.NaR() {
		t.Fatal("Abs(NaR)")
	}
	q := NewQuire(c)
	if q.Sign() != 0 {
		t.Fatal("empty quire sign")
	}
	q.Add(c.One())
	if q.Sign() != 1 {
		t.Fatal("positive quire sign")
	}
	q.Sub(c.One())
	q.Sub(c.One())
	if q.Sign() != -1 {
		t.Fatal("negative quire sign")
	}
}
