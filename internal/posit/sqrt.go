package posit

// Sqrt returns the correctly rounded square root of a. Negative inputs and
// NaR yield NaR; Sqrt(0) = 0.
func (c Config) Sqrt(a Bits) Bits {
	if c.IsNaR(a) {
		return c.NaR()
	}
	if a == 0 {
		return 0
	}
	d := c.Decode(a)
	if d.Neg {
		return c.NaR()
	}
	// value = 2^scale · F/2^63. Fold scale parity into the radicand:
	//   scale even: M = F·2^63  ⇒ sqrt = 2^(scale/2) · isqrt(M)/2^63
	//   scale odd:  M = F·2^64  ⇒ sqrt = 2^((scale−1)/2) · isqrt(M)/2^63
	var mh, ml uint64
	scale := d.Scale
	if scale&1 == 0 {
		mh, ml = d.Frac>>1, d.Frac<<63
	} else {
		mh, ml = d.Frac, 0
		scale--
	}
	r, exact := isqrt128(mh, ml)
	return c.encode(unrounded{
		scale:  scale >> 1,
		frac:   r,
		sticky: !exact,
	})
}

// isqrt128 computes the integer square root of the 128-bit value hi·2^64+lo
// for inputs in [2^126, 2^128), returning the 64-bit root (∈ [2^63, 2^64))
// and whether the input was a perfect square. Classic restoring bit-by-bit
// method on (remainder, root) pairs.
func isqrt128(hi, lo uint64) (root uint64, exact bool) {
	var rh, rl uint64 // current remainder (left part of the radicand consumed)
	for i := 0; i < 64; i++ {
		// Shift two radicand bits into the remainder.
		rh = rh<<2 | rl>>62
		rl = rl<<2 | hi>>62
		hi = hi<<2 | lo>>62
		lo <<= 2
		// Trial subtract t = (root<<2) | 1, a value of at most 66 bits;
		// the remainder never exceeds 2·root+1+3 so 128 bits suffice.
		th, tl := root>>62, root<<2|1
		// remainder − t
		bl := rl - tl
		borrow := uint64(0)
		if rl < tl {
			borrow = 1
		}
		bh := rh - th - borrow
		if rh >= th+borrow { // no overall borrow: bit is 1
			rh, rl = bh, bl
			root = root<<1 | 1
		} else {
			root <<= 1
		}
	}
	return root, rh == 0 && rl == 0
}
