package posit

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse converts a decimal string to the nearest posit of the
// configuration. It accepts everything strconv.ParseFloat does, plus
// "NaR" (case-insensitive) for the exception value.
func (c Config) Parse(s string) (Bits, error) {
	if strings.EqualFold(strings.TrimSpace(s), "nar") {
		return c.NaR(), nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("posit: parsing %q: %w", s, err)
	}
	return c.FromFloat64(f), nil
}

// NextUp returns the smallest posit strictly greater than p, following the
// two's-complement successor order of the format. NextUp(maxpos) and
// NextUp(NaR) return NaR (there is nothing above maxpos).
func (c Config) NextUp(p Bits) Bits {
	if c.IsNaR(p) {
		return p
	}
	return Bits((uint64(p) + 1) & c.Mask())
}

// NextDown returns the largest posit strictly less than p. NextDown of the
// most negative real (the successor of NaR) and of NaR return NaR.
func (c Config) NextDown(p Bits) Bits {
	if c.IsNaR(p) {
		return p
	}
	return Bits((uint64(p) - 1) & c.Mask())
}

// ULP returns the distance to the next representable posit above |p| as a
// float64 — the local unit in the last place, which varies with magnitude
// under tapered accuracy (§2.3 of the paper). ULP of NaR is NaN; ULP of
// maxpos reports the gap below it instead (there is no value above).
func (c Config) ULP(p Bits) float64 {
	if c.IsNaR(p) {
		return math.NaN()
	}
	a := c.Abs(p)
	if a == c.MaxPos() {
		return c.ToFloat64(a) - c.ToFloat64(c.NextDown(a))
	}
	return c.ToFloat64(c.NextUp(a)) - c.ToFloat64(a)
}

// Values returns all finite values of a small configuration in ascending
// numeric order (useful for analysis and tests; refuses n > 16 to avoid
// surprise multi-gigabyte slices).
func (c Config) Values() ([]float64, error) {
	if c.N > 16 {
		return nil, fmt.Errorf("posit: Values is limited to n ≤ 16 (n=%d)", c.N)
	}
	out := make([]float64, 0, 1<<c.N-1)
	// Ascending pattern order starts just above NaR (most negative).
	for o := uint64(c.NaR()) + 1; ; o = (o + 1) & c.Mask() {
		if o == uint64(c.NaR()) {
			break
		}
		out = append(out, c.ToFloat64(Bits(o)))
	}
	return out, nil
}

// Dynamic range helpers: the golden zone of a configuration is the band
// where it matches or beats an IEEE format of equal width (the paper's
// [1/useed, useed] approximation for ⟨32,2⟩ vs float).

// MaxValue returns maxpos as a float64.
func (c Config) MaxValue() float64 { return c.ToFloat64(c.MaxPos()) }

// MinValue returns minpos as a float64.
func (c Config) MinValue() float64 { return c.ToFloat64(c.MinPos()) }
