package posit

import "math/bits"

// Decoded is the unpacked exact form of a finite nonzero posit:
//
//	value = (−1)^Neg · 2^Scale · (Frac / 2^63)
//
// Frac is the significand normalized so that bit 63 (the hidden bit) is set,
// i.e. Frac/2^63 ∈ [1, 2). Scale is the combined exponent k·2^es + e.
// RegimeBits and FracBits describe the field layout of the encoded pattern
// (they are what taper: large |Scale| ⇒ long regime ⇒ few fraction bits).
type Decoded struct {
	Neg        bool
	Scale      int
	Frac       uint64
	RegimeBits int // regime field length including the terminating bit, if present
	FracBits   int // number of fraction bits available in the pattern
}

// Decode unpacks a finite nonzero posit pattern. It must not be called with
// the zero or NaR patterns; use IsZero/IsNaR first. The standard
// configurations dispatch to the fast paths in fast.go (lookup tables for
// ⟨16,1⟩ and ⟨8,0⟩, a constant-folded decoder for ⟨32,2⟩); every other
// configuration uses the generic field walk.
func (c Config) Decode(p Bits) Decoded {
	switch c {
	case Config16:
		return p16dec[uint16(p)].decoded()
	case Config8:
		return p8dec[uint8(p)].decoded()
	case Config32:
		return decode32(p)
	}
	return c.genericDecode(p)
}

// GenericDecode is the table-free reference decoder, exported so that
// differential tests and ablation benchmarks can compare the fast paths
// against it (Config16 etc. compare equal to Config{N:16,ES:1}, so calling
// Decode on a freshly built Config still reaches the fast path).
func (c Config) GenericDecode(p Bits) Decoded { return c.genericDecode(p) }

func (c Config) genericDecode(p Bits) Decoded {
	var d Decoded
	// Align the n-bit pattern to the top of a uint64 so that shifts expose
	// fields MSB-first and two's-complement negation works on the full word.
	v := uint64(p) << (64 - c.N)
	if v>>63 == 1 {
		d.Neg = true
		v = -v
	}
	rest := v << 1 // drop sign bit; low 64−n+1 bits are zero
	// Regime: run of identical bits, terminated by the opposite bit or by
	// running out of pattern bits.
	var run int
	var k int
	if rest>>63 == 1 {
		run = bits.LeadingZeros64(^rest)
		if run > int(c.N)-1 {
			run = int(c.N) - 1
		}
		k = run - 1
	} else {
		run = bits.LeadingZeros64(rest)
		if run > int(c.N)-1 {
			run = int(c.N) - 1
		}
		k = -run
	}
	// Field geometry.
	regField := run + 1 // with terminator
	if regField > int(c.N)-1 {
		regField = int(c.N) - 1 // terminator did not fit
	}
	d.RegimeBits = regField
	expAvail := int(c.N) - 1 - regField
	if expAvail > int(c.ES) {
		expAvail = int(c.ES)
	}
	d.FracBits = int(c.N) - 1 - regField - int(c.ES)
	if d.FracBits < 0 {
		d.FracBits = 0
	}
	// Exponent: the next es bits after the regime; if fewer remain they are
	// implicitly zero-extended on the right, which the left-aligned shift
	// provides automatically.
	after := rest << uint(regField)
	var e int
	if c.ES > 0 {
		e = int(after >> (64 - c.ES))
	}
	d.Scale = k<<c.ES + e
	// Fraction with hidden bit at position 63.
	d.Frac = 1<<63 | after<<c.ES>>1
	return d
}

// Scale returns the binary scale (combined exponent) of a finite nonzero
// posit: the power of two such that |value| ∈ [2^scale, 2^(scale+1)).
func (c Config) Scale(p Bits) int { return c.Decode(p).Scale }

// RegimeLen returns the length of the regime field (including the
// terminating bit when present) of a finite nonzero posit pattern.
func (c Config) RegimeLen(p Bits) int { return c.Decode(p).RegimeBits }

// FracBits returns the number of fraction bits available in the pattern of
// a finite nonzero posit — the precision remaining after the regime and
// exponent consume their share. Returns the maximum (n−1−2−es, floored at 0)
// for zero, and 0 for NaR.
func (c Config) FracBits(p Bits) int {
	if p == 0 {
		fb := int(c.N) - 3 - int(c.ES)
		if fb < 0 {
			fb = 0
		}
		return fb
	}
	if c.IsNaR(p) {
		return 0
	}
	return c.Decode(p).FracBits
}
