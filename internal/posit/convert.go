package posit

import (
	"math"
	"math/bits"
)

// FromFloat64 returns the posit nearest to f. NaN and ±Inf map to NaR;
// magnitudes beyond maxpos saturate and nonzero magnitudes below minpos
// clamp to minpos, per the posit rounding rules.
func (c Config) FromFloat64(f float64) Bits {
	b := math.Float64bits(f)
	exp := int(b >> 52 & 0x7ff)
	mant := b & (1<<52 - 1)
	neg := b>>63 == 1
	switch {
	case exp == 0x7ff: // NaN or Inf
		return c.NaR()
	case exp == 0 && mant == 0:
		return 0
	case exp == 0: // subnormal: normalize
		lz := bits.LeadingZeros64(mant) - 11
		mant <<= uint(lz + 1)
		exp = -lz
	}
	frac := 1<<63 | mant<<11
	return c.encode(unrounded{
		neg:   neg,
		scale: exp - 1023,
		frac:  frac,
	})
}

// ToFloat64 converts a posit to float64. For n ≤ 32 the conversion is exact
// (every ⟨32,2⟩ posit is a normal double). NaR maps to NaN.
func (c Config) ToFloat64(p Bits) float64 {
	if p == 0 {
		return 0
	}
	if c.IsNaR(p) {
		return math.NaN()
	}
	d := c.Decode(p)
	f := math.Ldexp(float64(d.Frac), d.Scale-63)
	if d.Neg {
		f = -f
	}
	return f
}

// FromInt64 returns the posit nearest to i.
func (c Config) FromInt64(i int64) Bits {
	if i == 0 {
		return 0
	}
	neg := i < 0
	var u uint64
	if neg {
		u = uint64(-i) // also correct for MinInt64 via two's complement
	} else {
		u = uint64(i)
	}
	lz := bits.LeadingZeros64(u)
	return c.encode(unrounded{
		neg:   neg,
		scale: 63 - lz,
		frac:  u << uint(lz),
	})
}

// ToInt64 converts a posit to an integer, truncating toward zero like a C
// cast (the conversion PositDebug instruments). NaR yields 0 and ok=false;
// magnitudes beyond the int64 range also report ok=false and clamp.
func (c Config) ToInt64(p Bits) (v int64, ok bool) {
	if p == 0 {
		return 0, true
	}
	if c.IsNaR(p) {
		return 0, false
	}
	d := c.Decode(p)
	if d.Scale < 0 {
		return 0, true
	}
	if d.Scale > 62 {
		if d.Neg {
			return math.MinInt64, false
		}
		return math.MaxInt64, false
	}
	u := d.Frac >> uint(63-d.Scale)
	if d.Neg {
		return -int64(u), true
	}
	return int64(u), true
}

// Convert re-rounds a posit from configuration c into configuration dst.
func (c Config) Convert(p Bits, dst Config) Bits {
	if p == 0 {
		return 0
	}
	if c.IsNaR(p) {
		return dst.NaR()
	}
	d := c.Decode(p)
	return dst.encode(unrounded{neg: d.Neg, scale: d.Scale, frac: d.Frac})
}
