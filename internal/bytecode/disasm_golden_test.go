package bytecode_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/bytecode"
	"positdebug/internal/ir"
)

// -update rewrites the golden files from the current disassembler output:
//
//	go test ./internal/bytecode -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("disassembly drifted from %s — if the chunk encoding change is intentional, re-run with -update and review the diff\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// allOpcodesModule builds a synthetic chunk containing every opcode exactly
// once, with operands chosen so each Disasm format arm renders its full
// shape (pools, id suffixes, cast targets, quire negation, …).
func allOpcodesModule() *bytecode.Module {
	p32 := uint8(ir.P32)
	p16 := uint8(ir.P16)
	f64 := uint8(ir.F64)
	i64 := uint8(ir.I64)
	ins := func(op bytecode.Op, in bytecode.Inst) bytecode.Inst {
		in.Op = op
		return in
	}
	code := []bytecode.Inst{
		ins(bytecode.OpInvalid, bytecode.Inst{ID: -1}),
		ins(bytecode.OpNop, bytecode.Inst{ID: -1}),
		ins(bytecode.OpConst, bytecode.Inst{Dst: 1, Imm: 0x4000_0000, ID: -1}),
		ins(bytecode.OpMov, bytecode.Inst{Dst: 2, A: 1, ID: -1}),
		ins(bytecode.OpAddI64, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpSubI64, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpMulI64, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpDivI64, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpRemI64, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpAddP16, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpSubP16, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpMulP16, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpAddP32, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpSubP32, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpMulP32, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpBin, bytecode.Inst{K: uint8(ir.BinDiv), T: f64, Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpUn, bytecode.Inst{K: uint8(ir.UnNeg), T: p32, Dst: 3, A: 1, ID: -1}),
		ins(bytecode.OpLtI64, bytecode.Inst{Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpCmp, bytecode.Inst{K: uint8(ir.CmpLe), T: p32, Dst: 3, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpCast, bytecode.Inst{T: p32, T2: f64, Dst: 3, A: 1, ID: -1}),
		ins(bytecode.OpLoad1, bytecode.Inst{Dst: 3, A: 1, ID: -1}),
		ins(bytecode.OpLoad2, bytecode.Inst{Dst: 3, A: 1, ID: -1}),
		ins(bytecode.OpLoad4, bytecode.Inst{Dst: 3, A: 1, ID: -1}),
		ins(bytecode.OpLoad8, bytecode.Inst{Dst: 3, A: 1, ID: -1}),
		ins(bytecode.OpStore1, bytecode.Inst{A: 1, B: 2, ID: -1}),
		ins(bytecode.OpStore2, bytecode.Inst{A: 1, B: 2, ID: -1}),
		ins(bytecode.OpStore4, bytecode.Inst{A: 1, B: 2, ID: -1}),
		ins(bytecode.OpStore8, bytecode.Inst{A: 1, B: 2, ID: -1}),
		ins(bytecode.OpFrameAddr, bytecode.Inst{Dst: 3, Imm: 16, ID: -1}),
		ins(bytecode.OpAddrIndex, bytecode.Inst{Dst: 3, A: 1, B: 2, Imm: 8, ID: -1}),
		ins(bytecode.OpBr, bytecode.Inst{A: 1, Dst: 40, B: 41, ID: -1}),
		ins(bytecode.OpJmp, bytecode.Inst{Dst: 0, ID: -1}),
		ins(bytecode.OpCall, bytecode.Inst{Dst: 3, A: 0, B: 2, Imm: 0, ID: -1}),
		ins(bytecode.OpRet, bytecode.Inst{A: 3, ID: -1}),
		ins(bytecode.OpPrint, bytecode.Inst{T: p32, A: 1, ID: -1}),
		ins(bytecode.OpPrintStr, bytecode.Inst{Imm: 0, ID: -1}),
		ins(bytecode.OpQClear, bytecode.Inst{T: p32, ID: -1}),
		ins(bytecode.OpQAdd, bytecode.Inst{T: p32, A: 1, K: 1, ID: -1}),
		ins(bytecode.OpQMAdd, bytecode.Inst{T: p32, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpQVal, bytecode.Inst{T: p32, Dst: 3, ID: -1}),
		ins(bytecode.OpFMA, bytecode.Inst{T: p32, Dst: 3, A: 1, B: 2, Imm: 1, ID: -1}),
		ins(bytecode.OpShConst, bytecode.Inst{T: p32, Dst: 1, ID: 0}),
		ins(bytecode.OpShMov, bytecode.Inst{T: p32, Dst: 2, A: 1, ID: 1}),
		ins(bytecode.OpShBin, bytecode.Inst{K: uint8(ir.BinAdd), T: p32, Dst: 3, A: 1, B: 2, ID: 2}),
		ins(bytecode.OpShUn, bytecode.Inst{K: uint8(ir.UnSqrt), T: p32, Dst: 3, A: 1, ID: 3}),
		ins(bytecode.OpShCmp, bytecode.Inst{K: uint8(ir.CmpEq), T: p32, Dst: 3, A: 1, B: 2, ID: 4}),
		ins(bytecode.OpShCast, bytecode.Inst{T: p32, T2: i64, Dst: 3, A: 1, ID: 5}),
		ins(bytecode.OpShLoad, bytecode.Inst{T: p32, Dst: 3, A: 1, ID: 6}),
		ins(bytecode.OpShStore, bytecode.Inst{T: p32, A: 1, B: 2, ID: 7}),
		ins(bytecode.OpShPreCall, bytecode.Inst{A: 0, B: 2, Imm: 0, ID: -1}),
		ins(bytecode.OpShPostCall, bytecode.Inst{T: p32, Dst: 3, ID: 8}),
		ins(bytecode.OpShRet, bytecode.Inst{T: p32, A: 3, ID: -1}),
		ins(bytecode.OpShPrint, bytecode.Inst{T: p32, A: 1, ID: 9}),
		ins(bytecode.OpShQClear, bytecode.Inst{T: p32, ID: -1}),
		ins(bytecode.OpShQAdd, bytecode.Inst{T: p32, A: 1, ID: -1}),
		ins(bytecode.OpShQMAdd, bytecode.Inst{T: p32, A: 1, B: 2, K: 1, ID: -1}),
		ins(bytecode.OpShQVal, bytecode.Inst{T: p32, Dst: 3, ID: 10}),
		ins(bytecode.OpShFMA, bytecode.Inst{T: p32, Dst: 3, A: 1, B: 2, Imm: 1, ID: 11}),
		ins(bytecode.OpFusedConst, bytecode.Inst{T: p32, Dst: 1, Imm: 0x4000_0000, ID: 0}),
		ins(bytecode.OpFusedMov, bytecode.Inst{T: p32, Dst: 2, A: 1, ID: 1}),
		ins(bytecode.OpFusedAddP16, bytecode.Inst{T: p16, Dst: 3, A: 1, B: 2, ID: 2}),
		ins(bytecode.OpFusedSubP16, bytecode.Inst{T: p16, Dst: 3, A: 1, B: 2, ID: 3}),
		ins(bytecode.OpFusedMulP16, bytecode.Inst{T: p16, Dst: 3, A: 1, B: 2, ID: 4}),
		ins(bytecode.OpFusedAddP32, bytecode.Inst{T: p32, Dst: 3, A: 1, B: 2, ID: 5}),
		ins(bytecode.OpFusedSubP32, bytecode.Inst{T: p32, Dst: 3, A: 1, B: 2, ID: 6}),
		ins(bytecode.OpFusedMulP32, bytecode.Inst{T: p32, Dst: 3, A: 1, B: 2, ID: 7}),
		ins(bytecode.OpFusedBin, bytecode.Inst{K: uint8(ir.BinDiv), T: f64, Dst: 3, A: 1, B: 2, ID: 8}),
		ins(bytecode.OpFusedUn, bytecode.Inst{K: uint8(ir.UnNeg), T: p32, Dst: 3, A: 1, ID: 9}),
		ins(bytecode.OpFusedCmp, bytecode.Inst{K: uint8(ir.CmpLt), T: p32, Dst: 3, A: 1, B: 2, ID: 10}),
		ins(bytecode.OpFusedCast, bytecode.Inst{T: p32, T2: f64, Dst: 3, A: 1, ID: 11}),
		ins(bytecode.OpFusedLoad, bytecode.Inst{K: 4, T: p32, Dst: 3, A: 1, ID: 12}),
		ins(bytecode.OpFusedStore, bytecode.Inst{K: 4, T: p32, A: 1, B: 2, ID: 13}),
		ins(bytecode.OpFusedPrint, bytecode.Inst{T: p32, A: 1, ID: 14}),
		ins(bytecode.OpFusedQClear, bytecode.Inst{T: p32, ID: -1}),
		ins(bytecode.OpFusedQAdd, bytecode.Inst{T: p32, A: 1, K: 1, ID: -1}),
		ins(bytecode.OpFusedQMAdd, bytecode.Inst{T: p32, A: 1, B: 2, ID: -1}),
		ins(bytecode.OpFusedQVal, bytecode.Inst{T: p32, Dst: 3, ID: 15}),
		ins(bytecode.OpFusedFMA, bytecode.Inst{T: p32, Dst: 3, A: 1, B: 2, Imm: 1, ID: 16}),
		ins(bytecode.OpFusedRet, bytecode.Inst{T: p32, A: 3, ID: -1}),
	}
	pos := make([]bytecode.Pos, len(code))
	for i := range pos {
		pos[i] = bytecode.Pos{Blk: int32(i / 16), Idx: int32(i % 16)}
	}
	return &bytecode.Module{
		Funcs: []*bytecode.Func{{
			Name: "every_op", NumParams: 1, NumRegs: 8, FrameSize: 32,
			Instrumented: true, Code: code, Pos: pos,
		}},
		Args:        []int32{1, 2},
		Strs:        []string{"hello\n"},
		GlobalBase:  0,
		GlobalSize:  64,
		NumRegistry: 32,
		Fused:       true,
	}
}

// TestDisasmGoldenAllOpcodes pins the disassembly of a synthetic chunk
// holding every opcode — base, shadow, and fused superinstruction — so any
// change to the instruction set or its rendering is a reviewable golden
// diff. The completeness check makes it impossible to add an opcode without
// extending the golden.
func TestDisasmGoldenAllOpcodes(t *testing.T) {
	m := allOpcodesModule()
	seen := make(map[bytecode.Op]bool)
	for _, in := range m.Funcs[0].Code {
		if seen[in.Op] {
			t.Fatalf("opcode %v listed twice in the synthetic chunk", in.Op)
		}
		seen[in.Op] = true
	}
	if len(seen) != bytecode.NumOps {
		for op := 0; op < bytecode.NumOps; op++ {
			if !seen[bytecode.Op(op)] {
				t.Errorf("opcode %v missing from the synthetic chunk", bytecode.Op(op))
			}
		}
		t.Fatalf("synthetic chunk covers %d of %d opcodes", len(seen), bytecode.NumOps)
	}
	checkGolden(t, "all_opcodes.golden", m.Disasm())
}

// goldenSrc is a small posit program whose compiled chunk exercises the
// compiler end of the format: loops, memory traffic, calls, prints, and —
// when instrumented — the fusion pass pairing base ops with their shadow
// events.
const goldenSrc = `
var buf: [4]p32;
func scale(x: p32, f: p32): p32 {
	return x * f;
}
func main(): p32 {
	var acc: p32 = 0.0;
	var i: i64 = 0;
	while (i < 4) {
		buf[i] = scale(1.5, 0.25) + acc;
		acc = acc - buf[i];
		i = i + 1;
	}
	print(acc);
	return acc;
}
`

// TestDisasmGoldenCompiled pins the chunks the compiler actually emits for
// goldenSrc, fused and unfused, so fusion-rule changes show up as golden
// diffs reviewable instruction by instruction.
func TestDisasmGoldenCompiled(t *testing.T) {
	prog, err := positdebug.Compile(goldenSrc)
	if err != nil {
		t.Fatal(err)
	}
	mod := prog.Instrumented()
	for _, tc := range []struct {
		name string
		fuse bool
	}{
		{"compiled_fused.golden", true},
		{"compiled_unfused.golden", false},
	} {
		ch, err := bytecode.Compile(mod, bytecode.Options{Fuse: tc.fuse})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := bytecode.Verify(ch); err != nil {
			t.Fatalf("%s: compiler emitted a chunk the verifier rejects: %v", tc.name, err)
		}
		checkGolden(t, tc.name, ch.Disasm())
	}
}

// TestDisasmInstCoversEveryOpcode guards the format switch itself: no
// opcode may fall through to the "op?" arm, and every rendered line must
// carry its position comment.
func TestDisasmInstCoversEveryOpcode(t *testing.T) {
	m := allOpcodesModule()
	f := m.Funcs[0]
	for pc := range f.Code {
		line := m.DisasmInst(f, pc)
		if op := f.Code[pc].Op; op != bytecode.OpInvalid {
			if want := op.String(); line == "" || !contains(line, want) {
				t.Errorf("pc %d (%v): rendering %q does not contain mnemonic %q", pc, op, line, want)
			}
		}
		if !contains(line, "; b") {
			t.Errorf("pc %d: rendering %q lacks the position comment", pc, line)
		}
	}
}

func contains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && index(s, sub) >= 0)
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

var _ = fmt.Sprintf // keep fmt for debug edits
