package bytecode_test

import (
	"bytes"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/bytecode"
)

// FuzzChunkLoad throws arbitrary bytes at the chunk decoder and asserts the
// loading contract: Decode never panics, and any chunk that passes Verify
// can be disassembled and re-encoded to a byte-identical form that still
// verifies. This is the safety boundary the VM relies on — vmCall assumes
// every structural invariant Verify checks.
func FuzzChunkLoad(f *testing.F) {
	// Real encodes as seeds: the synthetic every-opcode chunk and both
	// compiled forms of the golden program give the fuzzer a valid corpus
	// to mutate from.
	f.Add(allOpcodesModule().Encode())
	if prog, err := positdebug.Compile(goldenSrc); err == nil {
		for _, fuse := range []bool{false, true} {
			if ch, err := bytecode.Compile(prog.Instrumented(), bytecode.Options{Fuse: fuse}); err == nil {
				f.Add(ch.Encode())
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte("pdbc1\n"))
	f.Add(append([]byte("pdbc1\n"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff))
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := bytecode.Decode(raw)
		if err != nil {
			return // malformed input rejected cleanly — that's the contract
		}
		if err := bytecode.Verify(m); err != nil {
			return // decoded but structurally invalid; the VM never sees it
		}
		// Verifier-accepted chunks must survive the full tool pipeline.
		dis := m.Disasm()
		enc := m.Encode()
		m2, err := bytecode.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk failed: %v", err)
		}
		if err := bytecode.Verify(m2); err != nil {
			t.Fatalf("re-encoded chunk no longer verifies: %v", err)
		}
		if dis2 := m2.Disasm(); dis2 != dis {
			t.Fatalf("encode/decode changed the chunk:\n--- before ---\n%s--- after ---\n%s", dis, dis2)
		}
		if enc2 := m2.Encode(); !bytes.Equal(enc2, enc) {
			t.Fatalf("Encode is not a fixed point: %d bytes vs %d bytes", len(enc2), len(enc))
		}
	})
}
