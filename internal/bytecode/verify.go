package bytecode

import (
	"fmt"

	"positdebug/internal/ir"
)

// Verify statically checks a chunk so the VM can execute it without
// per-instruction register or pc bounds checks: every register index is in
// range, every branch target is a valid pc, pools are referenced in bounds,
// kinds and types are within their enums, and control can never fall off
// the end of a function. Memory addresses stay dynamic (the machine traps
// those at runtime, exactly like the tree-walker).
func Verify(m *Module) error {
	if m == nil {
		return fmt.Errorf("nil chunk")
	}
	for fi, f := range m.Funcs {
		if f == nil {
			return fmt.Errorf("func %d: nil", fi)
		}
		if err := verifyFunc(m, f); err != nil {
			return fmt.Errorf("func %d (%s): %w", fi, f.Name, err)
		}
	}
	return nil
}

func verifyFunc(m *Module, f *Func) error {
	if f.NumRegs < 0 || f.NumParams < 0 || f.NumParams > f.NumRegs {
		return fmt.Errorf("bad register counts: params %d regs %d", f.NumParams, f.NumRegs)
	}
	// Cap the frame so the VM's stack-pointer arithmetic (uint64 widened)
	// can never wrap on a hostile decoded chunk.
	if f.FrameSize > 1<<30 {
		return fmt.Errorf("frame size %d too large", f.FrameSize)
	}
	if len(f.Pos) != len(f.Code) {
		return fmt.Errorf("position table length %d != code length %d", len(f.Pos), len(f.Code))
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("empty code")
	}
	switch f.Code[len(f.Code)-1].Op {
	case OpRet, OpJmp, OpBr, OpFusedRet:
	default:
		return fmt.Errorf("control falls off the end (last op %v)", f.Code[len(f.Code)-1].Op)
	}
	for pc := range f.Code {
		if err := verifyInst(m, f, pc); err != nil {
			return fmt.Errorf("pc %d (%v): %w", pc, f.Code[pc].Op, err)
		}
	}
	return nil
}

func verifyInst(m *Module, f *Func, pc int) error {
	in := &f.Code[pc]
	reg := func(r int32) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("register %d out of range [0,%d)", r, f.NumRegs)
		}
		return nil
	}
	optReg := func(r int32) error {
		if r == -1 {
			return nil
		}
		return reg(r)
	}
	pcOK := func(p int32) error {
		if p < 0 || int(p) >= len(f.Code) {
			return fmt.Errorf("pc target %d out of range [0,%d)", p, len(f.Code))
		}
		return nil
	}
	typ := func(t uint8) error {
		if t == 0 || t > uint8(ir.P32) {
			return fmt.Errorf("bad type %d", t)
		}
		return nil
	}
	id := func(v int32) error {
		if v < -1 || v >= m.NumRegistry {
			return fmt.Errorf("registry id %d out of range [-1,%d)", v, m.NumRegistry)
		}
		return nil
	}
	binK := func(k uint8) error {
		if k > uint8(ir.BinRem) {
			return fmt.Errorf("bad bin kind %d", k)
		}
		return nil
	}
	unK := func(k uint8) error {
		if k > uint8(ir.UnAbs) {
			return fmt.Errorf("bad un kind %d", k)
		}
		return nil
	}
	cmpK := func(k uint8) error {
		if k > uint8(ir.CmpGe) {
			return fmt.Errorf("bad cmp pred %d", k)
		}
		return nil
	}
	negK := func(k uint8) error {
		if k > 1 {
			return fmt.Errorf("bad negate flag %d", k)
		}
		return nil
	}
	width := func(k uint8) error {
		switch k {
		case 1, 2, 4, 8:
			return nil
		}
		return fmt.Errorf("bad width %d", k)
	}
	pool := func(off uint64, n int32) error {
		if n < 0 || off > uint64(len(m.Args)) || uint64(n) > uint64(len(m.Args))-off {
			return fmt.Errorf("arg pool [%d,%d+%d) out of range [0,%d)", off, off, n, len(m.Args))
		}
		for _, r := range m.Args[off : off+uint64(n)] {
			if err := reg(r); err != nil {
				return err
			}
		}
		return nil
	}
	immReg := func(v uint64) error {
		if !immFitsI32(v) {
			return fmt.Errorf("imm register %d overflows int32", v)
		}
		return reg(int32(v))
	}
	callee := func(v int32) error {
		if v < 0 || int(v) >= len(m.Funcs) {
			return fmt.Errorf("callee %d out of range [0,%d)", v, len(m.Funcs))
		}
		return nil
	}
	err2 := func(errs ...error) error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}

	switch in.Op {
	case OpNop:
		return nil
	case OpConst:
		return reg(in.Dst)
	case OpMov:
		return err2(reg(in.Dst), reg(in.A))
	case OpAddI64, OpSubI64, OpMulI64, OpDivI64, OpRemI64,
		OpAddP16, OpSubP16, OpMulP16, OpAddP32, OpSubP32, OpMulP32, OpLtI64:
		return err2(reg(in.Dst), reg(in.A), reg(in.B))
	case OpBin:
		return err2(binK(in.K), typ(in.T), reg(in.Dst), reg(in.A), reg(in.B))
	case OpUn:
		return err2(unK(in.K), typ(in.T), reg(in.Dst), reg(in.A))
	case OpCmp:
		return err2(cmpK(in.K), typ(in.T), reg(in.Dst), reg(in.A), reg(in.B))
	case OpCast:
		return err2(typ(in.T), typ(in.T2), reg(in.Dst), reg(in.A))
	case OpLoad1, OpLoad2, OpLoad4, OpLoad8:
		return err2(reg(in.Dst), reg(in.A))
	case OpStore1, OpStore2, OpStore4, OpStore8:
		return err2(reg(in.A), reg(in.B))
	case OpFrameAddr:
		return reg(in.Dst)
	case OpAddrIndex:
		return err2(reg(in.Dst), reg(in.A), reg(in.B))
	case OpBr:
		return err2(reg(in.A), pcOK(in.Dst), pcOK(in.B))
	case OpJmp:
		return pcOK(in.Dst)
	case OpCall:
		return err2(callee(in.A), optReg(in.Dst), pool(in.Imm, in.B))
	case OpRet:
		return optReg(in.A)
	case OpPrint:
		return err2(typ(in.T), reg(in.A))
	case OpPrintStr:
		if in.Imm >= uint64(len(m.Strs)) {
			return fmt.Errorf("string index %d out of range [0,%d)", in.Imm, len(m.Strs))
		}
		return nil
	case OpQClear:
		return nil
	case OpQAdd:
		return err2(negK(in.K), typ(in.T), reg(in.A))
	case OpQMAdd:
		return err2(negK(in.K), typ(in.T), reg(in.A), reg(in.B))
	case OpQVal:
		return err2(typ(in.T), reg(in.Dst))
	case OpFMA:
		return err2(typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), immReg(in.Imm))

	case OpShConst:
		return err2(typ(in.T), reg(in.Dst), id(in.ID))
	case OpShMov:
		return err2(typ(in.T), reg(in.Dst), reg(in.A), id(in.ID))
	case OpShBin:
		return err2(binK(in.K), typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), id(in.ID))
	case OpShUn:
		return err2(unK(in.K), typ(in.T), reg(in.Dst), reg(in.A), id(in.ID))
	case OpShCmp:
		return err2(cmpK(in.K), typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), id(in.ID))
	case OpShCast:
		return err2(typ(in.T), typ(in.T2), reg(in.Dst), reg(in.A), id(in.ID))
	case OpShLoad:
		return err2(typ(in.T), reg(in.Dst), reg(in.A), id(in.ID))
	case OpShStore:
		return err2(typ(in.T), reg(in.A), reg(in.B), id(in.ID))
	case OpShPreCall:
		return err2(callee(in.A), pool(in.Imm, in.B))
	case OpShPostCall:
		return err2(typ(in.T), optReg(in.Dst), id(in.ID))
	case OpShRet:
		return err2(typ(in.T), optReg(in.A))
	case OpShPrint:
		return err2(typ(in.T), reg(in.A), id(in.ID))
	case OpShQClear:
		return nil
	case OpShQAdd:
		return err2(negK(in.K), typ(in.T), reg(in.A))
	case OpShQMAdd:
		return err2(negK(in.K), typ(in.T), reg(in.A), reg(in.B))
	case OpShQVal:
		return err2(typ(in.T), reg(in.Dst), id(in.ID))
	case OpShFMA:
		return err2(typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), immReg(in.Imm), id(in.ID))

	case OpFusedConst:
		return err2(typ(in.T), reg(in.Dst), id(in.ID))
	case OpFusedMov:
		return err2(typ(in.T), reg(in.Dst), reg(in.A), id(in.ID))
	case OpFusedAddP16, OpFusedSubP16, OpFusedMulP16:
		if ir.Type(in.T) != ir.P16 {
			return fmt.Errorf("p16 superinstruction with type %v", ir.Type(in.T))
		}
		return err2(fusedBinKindOK(in), reg(in.Dst), reg(in.A), reg(in.B), id(in.ID))
	case OpFusedAddP32, OpFusedSubP32, OpFusedMulP32:
		if ir.Type(in.T) != ir.P32 {
			return fmt.Errorf("p32 superinstruction with type %v", ir.Type(in.T))
		}
		return err2(fusedBinKindOK(in), reg(in.Dst), reg(in.A), reg(in.B), id(in.ID))
	case OpFusedBin:
		return err2(binK(in.K), typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), id(in.ID))
	case OpFusedUn:
		return err2(unK(in.K), typ(in.T), reg(in.Dst), reg(in.A), id(in.ID))
	case OpFusedCmp:
		return err2(cmpK(in.K), typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), id(in.ID))
	case OpFusedCast:
		return err2(typ(in.T), typ(in.T2), reg(in.Dst), reg(in.A), id(in.ID))
	case OpFusedLoad:
		return err2(width(in.K), typ(in.T), reg(in.Dst), reg(in.A), id(in.ID))
	case OpFusedStore:
		return err2(width(in.K), typ(in.T), reg(in.A), reg(in.B), id(in.ID))
	case OpFusedPrint:
		return err2(typ(in.T), reg(in.A), id(in.ID))
	case OpFusedQClear:
		return nil
	case OpFusedQAdd:
		return err2(negK(in.K), typ(in.T), reg(in.A))
	case OpFusedQMAdd:
		return err2(negK(in.K), typ(in.T), reg(in.A), reg(in.B))
	case OpFusedQVal:
		return err2(typ(in.T), reg(in.Dst), id(in.ID))
	case OpFusedFMA:
		return err2(typ(in.T), reg(in.Dst), reg(in.A), reg(in.B), immReg(in.Imm), id(in.ID))
	case OpFusedRet:
		return err2(typ(in.T), optReg(in.A))
	default:
		return fmt.Errorf("undefined opcode %d", uint8(in.Op))
	}
}

// fusedBinKindOK checks that a specialized posit superinstruction's K field
// agrees with its opcode (the VM hardcodes the arithmetic but hands K to
// the shadow hook).
func fusedBinKindOK(in *Inst) error {
	var want ir.BinKind
	switch in.Op {
	case OpFusedAddP16, OpFusedAddP32:
		want = ir.BinAdd
	case OpFusedSubP16, OpFusedSubP32:
		want = ir.BinSub
	case OpFusedMulP16, OpFusedMulP32:
		want = ir.BinMul
	}
	if ir.BinKind(in.K) != want {
		return fmt.Errorf("kind %d does not match opcode %v", in.K, in.Op)
	}
	return nil
}
