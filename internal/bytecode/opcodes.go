// Package bytecode compiles ir.Module functions into flat, register-based
// bytecode chunks and defines the instruction set the VM backend executes.
//
// The design is a classic chunk/compiler/verifier/disassembler split:
//
//   - Inst is a fixed-size instruction word; branch targets are pre-resolved
//     program counters, so the VM never touches basic-block structure.
//   - Hot opcodes are specialized by type and kind (AddP16, MulP32, Load4…)
//     so one dispatch replaces the tree-walker's nested switches, and the
//     hottest base-op/shadow-hook pairs are fused into superinstructions
//     (add.p16.lut+sh, mul.p32+sh, load+sh, store+sh…) so one dispatch
//     covers arithmetic, the LUT codec fast path, and shadow bookkeeping.
//   - Every instruction carries a position-table entry mapping its pc back
//     to the (block, index) of the ir.Instr it came from, so structured
//     fault reports and the file:line:col profiler keep their coordinates.
//
// Fused instructions cost two interpreter steps (they stand for two IR
// instructions); everything else costs one. That keeps step budgets,
// deadline polling cadence and campaign classifications byte-identical to
// the tree-walking oracle.
package bytecode

// Op enumerates VM opcodes. The fused superinstructions form a contiguous
// block at the end so the VM can classify them with one compare (see
// FusedFirst and Weight).
type Op uint8

// Base opcodes (one IR instruction each).
const (
	OpInvalid Op = iota
	OpNop
	OpConst // Dst ← Imm
	OpMov   // Dst ← A

	// i64 arithmetic, specialized (loop indices are the common case).
	OpAddI64
	OpSubI64
	OpMulI64
	OpDivI64 // traps on zero divisor
	OpRemI64 // traps on zero divisor

	// Posit arithmetic, specialized per configuration: ⟨16,1⟩ runs on the
	// LUT decode + integer-RNE fast path, ⟨32,2⟩ on the branch-lean decoder.
	OpAddP16
	OpSubP16
	OpMulP16
	OpAddP32
	OpSubP32
	OpMulP32

	OpBin // generic: K = ir.BinKind, T = ir.Type (floats, p8, div, …)
	OpUn  // K = ir.UnKind, T = ir.Type

	OpLtI64 // Dst ← A < B (signed), the dominant loop condition
	OpCmp   // generic: K = ir.CmpPred, T = ir.Type

	OpCast // T → T2

	// Loads/stores specialized by width; A is the address register.
	OpLoad1
	OpLoad2
	OpLoad4
	OpLoad8
	OpStore1 // mem[A] ← B
	OpStore2
	OpStore4
	OpStore8

	OpFrameAddr // Dst ← fp + Imm
	OpAddrIndex // Dst ← A + B·Imm

	OpBr   // if A ≠ 0 then pc ← Dst else pc ← B
	OpJmp  // pc ← Dst
	OpCall // Dst ← Funcs[A](args); B = arg count, Imm = arg-pool offset
	OpRet  // return A (−1 void)

	OpPrint    // print value in A of type T
	OpPrintStr // print Strs[Imm]

	OpQClear
	OpQAdd  // quire[T] ±= A (K=1 negates)
	OpQMAdd // quire[T] ±= A·B (K=1 negates)
	OpQVal  // Dst ← round quire[T]
	OpFMA   // Dst ← A·B + regs[Imm], single rounding

	// Shadow opcodes: the un-fused forms, emitted when an OpShadow* ir
	// instruction is not adjacent to a fusable base instruction (or when
	// fusion is disabled). Each routes one event to the machine's Hooks
	// exactly as the tree-walker does.
	OpShConst
	OpShMov
	OpShBin
	OpShUn
	OpShCmp
	OpShCast
	OpShLoad
	OpShStore
	OpShPreCall  // A = callee, B = arg count, Imm = arg-pool offset
	OpShPostCall // Dst (−1 void)
	OpShRet      // A (−1 void)
	OpShPrint
	OpShQClear
	OpShQAdd
	OpShQMAdd
	OpShQVal
	OpShFMA

	// Fused superinstructions: one dispatch executes the base operation and
	// delivers its shadow event. Each stands for two IR instructions and
	// costs two steps. Keep this block contiguous and last.
	OpFusedConst
	OpFusedMov
	OpFusedAddP16 // the paper-hot pairs get named superinstructions:
	OpFusedSubP16 // p16 runs arith on the LUT fast path, then the shadow
	OpFusedMulP16 // check, in one dispatch
	OpFusedAddP32
	OpFusedSubP32
	OpFusedMulP32
	OpFusedBin  // generic fused binop (K, T)
	OpFusedUn   // K, T
	OpFusedCmp  // K, T
	OpFusedCast // T → T2
	OpFusedLoad // K = width, T = value type; load + shadow-load check
	OpFusedStore
	OpFusedPrint
	OpFusedQClear
	OpFusedQAdd
	OpFusedQMAdd
	OpFusedQVal
	OpFusedFMA
	OpFusedRet // sh.ret event then return A — the shadow half runs first

	opMax
)

// FusedFirst is the first fused superinstruction; ops ≥ FusedFirst cost two
// steps.
const FusedFirst = OpFusedConst

// NumOps is the number of defined opcodes (golden tests iterate it).
const NumOps = int(opMax)

// Weight is the step cost of an opcode: fused superinstructions stand for
// two IR instructions.
func (o Op) Weight() int64 {
	if o >= FusedFirst {
		return 2
	}
	return 1
}

// Fused reports whether o is a fused superinstruction.
func (o Op) Fused() bool { return o >= FusedFirst && o < opMax }

var opNames = [...]string{
	OpInvalid: "invalid",
	OpNop:     "nop",
	OpConst:   "const",
	OpMov:     "mov",

	OpAddI64: "add.i64",
	OpSubI64: "sub.i64",
	OpMulI64: "mul.i64",
	OpDivI64: "div.i64",
	OpRemI64: "rem.i64",

	OpAddP16: "add.p16.lut",
	OpSubP16: "sub.p16.lut",
	OpMulP16: "mul.p16.lut",
	OpAddP32: "add.p32",
	OpSubP32: "sub.p32",
	OpMulP32: "mul.p32",

	OpBin: "bin",
	OpUn:  "un",

	OpLtI64: "lt.i64",
	OpCmp:   "cmp",

	OpCast: "cast",

	OpLoad1:  "load.1",
	OpLoad2:  "load.2",
	OpLoad4:  "load.4",
	OpLoad8:  "load.8",
	OpStore1: "store.1",
	OpStore2: "store.2",
	OpStore4: "store.4",
	OpStore8: "store.8",

	OpFrameAddr: "frameaddr",
	OpAddrIndex: "addridx",

	OpBr:   "br",
	OpJmp:  "jmp",
	OpCall: "call",
	OpRet:  "ret",

	OpPrint:    "print",
	OpPrintStr: "printstr",

	OpQClear: "qclear",
	OpQAdd:   "qadd",
	OpQMAdd:  "qmadd",
	OpQVal:   "qval",
	OpFMA:    "fma",

	OpShConst:    "sh.const",
	OpShMov:      "sh.mov",
	OpShBin:      "sh.bin",
	OpShUn:       "sh.un",
	OpShCmp:      "sh.cmp",
	OpShCast:     "sh.cast",
	OpShLoad:     "sh.load",
	OpShStore:    "sh.store",
	OpShPreCall:  "sh.precall",
	OpShPostCall: "sh.postcall",
	OpShRet:      "sh.ret",
	OpShPrint:    "sh.print",
	OpShQClear:   "sh.qclear",
	OpShQAdd:     "sh.qadd",
	OpShQMAdd:    "sh.qmadd",
	OpShQVal:     "sh.qval",
	OpShFMA:      "sh.fma",

	OpFusedConst:  "const+sh",
	OpFusedMov:    "mov+sh",
	OpFusedAddP16: "add.p16.lut+sh",
	OpFusedSubP16: "sub.p16.lut+sh",
	OpFusedMulP16: "mul.p16.lut+sh",
	OpFusedAddP32: "add.p32+sh",
	OpFusedSubP32: "sub.p32+sh",
	OpFusedMulP32: "mul.p32+sh",
	OpFusedBin:    "bin+sh",
	OpFusedUn:     "un+sh",
	OpFusedCmp:    "cmp+sh",
	OpFusedCast:   "cast+sh",
	OpFusedLoad:   "load+sh",
	OpFusedStore:  "store+sh",
	OpFusedPrint:  "print+sh",
	OpFusedQClear: "qclear+sh",
	OpFusedQAdd:   "qadd+sh",
	OpFusedQMAdd:  "qmadd+sh",
	OpFusedQVal:   "qval+sh",
	OpFusedFMA:    "fma+sh",
	OpFusedRet:    "sh+ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}
