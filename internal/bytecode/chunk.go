package bytecode

import (
	"encoding/binary"
	"fmt"
	"math"

	"positdebug/internal/ir"
)

// Inst is one fixed-size bytecode instruction. Field meaning is per opcode
// (see opcodes.go); unused register fields hold −1, unused scalars 0.
type Inst struct {
	Op Op
	K  uint8 // ir.BinKind / ir.UnKind / ir.CmpPred / quire-negate / width
	T  uint8 // ir.Type of the operand or result
	T2 uint8 // ir.Type cast target
	// Dst is the destination register; for OpBr the taken pc, for OpJmp the
	// target pc. A and B are source registers; for OpBr, B is the
	// fall-through pc; for calls, A is the callee index and B the argument
	// count. Imm carries constants, frame offsets, index scales, arg-pool
	// offsets, string indices, and the FMA addend register.
	Dst int32
	A   int32
	B   int32
	ID  int32 // instruction registry id (−1 untracked)
	Imm uint64
}

// Pos maps one pc back to its IR coordinate. Fused instructions record the
// coordinate of the pair's first IR instruction; the second half is by
// construction at Idx+1 in the same block.
type Pos struct {
	Blk int32
	Idx int32
}

// Func is one compiled function. IR points back at the source function for
// hook callbacks (EnterFunc, PreCall) and trap messages; it is not part of
// the serialized form.
type Func struct {
	Name         string
	NumParams    int32
	NumRegs      int32
	FrameSize    uint32
	Instrumented bool
	Code         []Inst
	Pos          []Pos // len(Pos) == len(Code)

	IR *ir.Func
}

// Module is a compiled chunk: all functions plus the shared pools. Function
// order matches ir.Module.Funcs, so call sites index both the same way.
type Module struct {
	Funcs []*Func
	// Args is the shared call-argument register pool; OpCall/OpShPreCall
	// reference Args[Imm : Imm+B].
	Args []int32
	// Strs is the print-string pool for OpPrintStr.
	Strs       []string
	GlobalBase uint32
	GlobalSize uint32
	// NumRegistry bounds Inst.ID (ir registry size at compile time).
	NumRegistry int32
	// Fused records whether superinstruction fusion was applied.
	Fused bool
}

// FuncByIndex returns the i-th function, or nil when out of range.
func (m *Module) FuncByIndex(i int32) *Func {
	if i < 0 || int(i) >= len(m.Funcs) {
		return nil
	}
	return m.Funcs[i]
}

// chunkMagic versions the serialized form; bump when the layout changes.
const chunkMagic = "pdbc1\n"

// Encode serializes the chunk to a portable little-endian byte form —
// the format FuzzChunkLoad mutates and golden tests diff.
func (m *Module) Encode() []byte {
	var b []byte
	b = append(b, chunkMagic...)
	b = appendU32(b, m.GlobalBase)
	b = appendU32(b, m.GlobalSize)
	b = appendU32(b, uint32(m.NumRegistry))
	if m.Fused {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, uint32(len(m.Args)))
	for _, a := range m.Args {
		b = appendU32(b, uint32(a))
	}
	b = appendU32(b, uint32(len(m.Strs)))
	for _, s := range m.Strs {
		b = appendU32(b, uint32(len(s)))
		b = append(b, s...)
	}
	b = appendU32(b, uint32(len(m.Funcs)))
	for _, f := range m.Funcs {
		b = appendU32(b, uint32(len(f.Name)))
		b = append(b, f.Name...)
		b = appendU32(b, uint32(f.NumParams))
		b = appendU32(b, uint32(f.NumRegs))
		b = appendU32(b, f.FrameSize)
		if f.Instrumented {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendU32(b, uint32(len(f.Code)))
		for i := range f.Code {
			in := &f.Code[i]
			b = append(b, byte(in.Op), in.K, in.T, in.T2)
			b = appendU32(b, uint32(in.Dst))
			b = appendU32(b, uint32(in.A))
			b = appendU32(b, uint32(in.B))
			b = appendU32(b, uint32(in.ID))
			b = appendU64(b, in.Imm)
			b = appendU32(b, uint32(f.Pos[i].Blk))
			b = appendU32(b, uint32(f.Pos[i].Idx))
		}
	}
	return b
}

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// decoder walks the serialized form with bounds checks (Decode handles
// untrusted input: errors, never panics).
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) u8() (byte, error) {
	if d.off+1 > len(d.b) {
		return 0, fmt.Errorf("bytecode: truncated at %d", d.off)
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.off+4 > len(d.b) {
		return 0, fmt.Errorf("bytecode: truncated at %d", d.off)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.off+8 > len(d.b) {
		return 0, fmt.Errorf("bytecode: truncated at %d", d.off)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str(max int) (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if int(n) > max || d.off+int(n) > len(d.b) {
		return "", fmt.Errorf("bytecode: bad string length %d at %d", n, d.off)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// decodeMax caps element counts while decoding untrusted bytes, so a
// corrupt header cannot make Decode allocate unbounded memory.
const decodeMax = 1 << 20

// Decode parses a serialized chunk. It validates structure (lengths,
// truncation) but not semantics; run Verify on the result before executing
// it.
func Decode(raw []byte) (*Module, error) {
	if len(raw) < len(chunkMagic) || string(raw[:len(chunkMagic)]) != chunkMagic {
		return nil, fmt.Errorf("bytecode: bad magic")
	}
	d := &decoder{b: raw, off: len(chunkMagic)}
	m := &Module{}
	var err error
	if m.GlobalBase, err = d.u32(); err != nil {
		return nil, err
	}
	if m.GlobalSize, err = d.u32(); err != nil {
		return nil, err
	}
	nreg, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nreg > decodeMax {
		return nil, fmt.Errorf("bytecode: registry size %d too large", nreg)
	}
	m.NumRegistry = int32(nreg)
	fused, err := d.u8()
	if err != nil {
		return nil, err
	}
	m.Fused = fused != 0
	nargs, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nargs > decodeMax {
		return nil, fmt.Errorf("bytecode: arg pool %d too large", nargs)
	}
	m.Args = make([]int32, nargs)
	for i := range m.Args {
		v, err := d.u32()
		if err != nil {
			return nil, err
		}
		m.Args[i] = int32(v)
	}
	nstrs, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nstrs > decodeMax {
		return nil, fmt.Errorf("bytecode: string pool %d too large", nstrs)
	}
	for i := uint32(0); i < nstrs; i++ {
		s, err := d.str(decodeMax)
		if err != nil {
			return nil, err
		}
		m.Strs = append(m.Strs, s)
	}
	nfuncs, err := d.u32()
	if err != nil {
		return nil, err
	}
	if nfuncs > decodeMax {
		return nil, fmt.Errorf("bytecode: func count %d too large", nfuncs)
	}
	for i := uint32(0); i < nfuncs; i++ {
		f := &Func{}
		if f.Name, err = d.str(decodeMax); err != nil {
			return nil, err
		}
		np, err := d.u32()
		if err != nil {
			return nil, err
		}
		nr, err := d.u32()
		if err != nil {
			return nil, err
		}
		if np > decodeMax || nr > decodeMax {
			return nil, fmt.Errorf("bytecode: func %q register counts too large", f.Name)
		}
		f.NumParams, f.NumRegs = int32(np), int32(nr)
		if f.FrameSize, err = d.u32(); err != nil {
			return nil, err
		}
		inst, err := d.u8()
		if err != nil {
			return nil, err
		}
		f.Instrumented = inst != 0
		ncode, err := d.u32()
		if err != nil {
			return nil, err
		}
		if ncode > decodeMax {
			return nil, fmt.Errorf("bytecode: func %q code size %d too large", f.Name, ncode)
		}
		f.Code = make([]Inst, ncode)
		f.Pos = make([]Pos, ncode)
		for j := range f.Code {
			in := &f.Code[j]
			op, err := d.u8()
			if err != nil {
				return nil, err
			}
			in.Op = Op(op)
			if in.K, err = d.u8(); err != nil {
				return nil, err
			}
			if in.T, err = d.u8(); err != nil {
				return nil, err
			}
			if in.T2, err = d.u8(); err != nil {
				return nil, err
			}
			dst, err := d.u32()
			if err != nil {
				return nil, err
			}
			a, err := d.u32()
			if err != nil {
				return nil, err
			}
			bb, err := d.u32()
			if err != nil {
				return nil, err
			}
			id, err := d.u32()
			if err != nil {
				return nil, err
			}
			in.Dst, in.A, in.B, in.ID = int32(dst), int32(a), int32(bb), int32(id)
			if in.Imm, err = d.u64(); err != nil {
				return nil, err
			}
			blk, err := d.u32()
			if err != nil {
				return nil, err
			}
			idx, err := d.u32()
			if err != nil {
				return nil, err
			}
			f.Pos[j] = Pos{Blk: int32(blk), Idx: int32(idx)}
		}
		m.Funcs = append(m.Funcs, f)
	}
	if d.off != len(raw) {
		return nil, fmt.Errorf("bytecode: %d trailing bytes", len(raw)-d.off)
	}
	return m, nil
}

// immFitsI32 reports whether an Imm holds a value representable as int32 —
// used by the verifier for register-carrying Imm fields (OpFMA addend).
func immFitsI32(v uint64) bool { return v <= math.MaxInt32 }
