package bytecode

import (
	"fmt"
	"strings"

	"positdebug/internal/ir"
)

// Disasm renders the whole chunk in a stable, diff-friendly text form — the
// artifact the golden-file tests pin, so chunk-encoding or fusion-rule
// changes show up as reviewable diffs.
func (m *Module) Disasm() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chunk globals=[%d,%d) registry=%d fused=%v\n",
		m.GlobalBase, m.GlobalBase+m.GlobalSize, m.NumRegistry, m.Fused)
	for fi, f := range m.Funcs {
		fmt.Fprintf(&sb, "func %d %s: params=%d regs=%d frame=%d instrumented=%v\n",
			fi, f.Name, f.NumParams, f.NumRegs, f.FrameSize, f.Instrumented)
		for pc := range f.Code {
			sb.WriteString("  ")
			sb.WriteString(m.DisasmInst(f, pc))
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// DisasmInst renders one instruction with its pc and source coordinate.
func (m *Module) DisasmInst(f *Func, pc int) string {
	in := &f.Code[pc]
	body := m.instBody(in)
	pos := ""
	if pc < len(f.Pos) {
		pos = fmt.Sprintf("  ; b%d[%d]", f.Pos[pc].Blk, f.Pos[pc].Idx)
	}
	return fmt.Sprintf("%04d  %-40s%s", pc, body, pos)
}

func (m *Module) instBody(in *Inst) string {
	op := in.Op.String()
	t := ir.Type(in.T)
	idSuffix := ""
	if in.ID >= 0 {
		idSuffix = fmt.Sprintf(" id=%d", in.ID)
	}
	switch in.Op {
	case OpNop:
		return op
	case OpConst:
		return fmt.Sprintf("%s r%d, %#x", op, in.Dst, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s r%d, r%d", op, in.Dst, in.A)
	case OpAddI64, OpSubI64, OpMulI64, OpDivI64, OpRemI64,
		OpAddP16, OpSubP16, OpMulP16, OpAddP32, OpSubP32, OpMulP32, OpLtI64:
		return fmt.Sprintf("%s r%d, r%d, r%d", op, in.Dst, in.A, in.B)
	case OpBin:
		return fmt.Sprintf("%s.%s.%s r%d, r%d, r%d", op, binName(in.K), t, in.Dst, in.A, in.B)
	case OpUn:
		return fmt.Sprintf("%s.%s.%s r%d, r%d", op, unName(in.K), t, in.Dst, in.A)
	case OpCmp:
		return fmt.Sprintf("%s.%s.%s r%d, r%d, r%d", op, cmpName(in.K), t, in.Dst, in.A, in.B)
	case OpCast:
		return fmt.Sprintf("%s.%s.%s r%d, r%d", op, t, ir.Type(in.T2), in.Dst, in.A)
	case OpLoad1, OpLoad2, OpLoad4, OpLoad8:
		return fmt.Sprintf("%s r%d, [r%d]", op, in.Dst, in.A)
	case OpStore1, OpStore2, OpStore4, OpStore8:
		return fmt.Sprintf("%s [r%d], r%d", op, in.A, in.B)
	case OpFrameAddr:
		return fmt.Sprintf("%s r%d, fp+%d", op, in.Dst, in.Imm)
	case OpAddrIndex:
		return fmt.Sprintf("%s r%d, r%d + r%d*%d", op, in.Dst, in.A, in.B, in.Imm)
	case OpBr:
		return fmt.Sprintf("%s r%d, @%d, @%d", op, in.A, in.Dst, in.B)
	case OpJmp:
		return fmt.Sprintf("%s @%d", op, in.Dst)
	case OpCall:
		return fmt.Sprintf("%s r%d, fn%d%s", op, in.Dst, in.A, m.argList(in))
	case OpRet:
		if in.A < 0 {
			return op
		}
		return fmt.Sprintf("%s r%d", op, in.A)
	case OpPrint:
		return fmt.Sprintf("%s.%s r%d", op, t, in.A)
	case OpPrintStr:
		if in.Imm < uint64(len(m.Strs)) {
			return fmt.Sprintf("%s %q", op, m.Strs[in.Imm])
		}
		return fmt.Sprintf("%s str#%d", op, in.Imm)
	case OpQClear:
		return op
	case OpQAdd:
		return fmt.Sprintf("%s.%s%s r%d", op, t, negSuffix(in.K), in.A)
	case OpQMAdd:
		return fmt.Sprintf("%s.%s%s r%d, r%d", op, t, negSuffix(in.K), in.A, in.B)
	case OpQVal:
		return fmt.Sprintf("%s.%s r%d", op, t, in.Dst)
	case OpFMA:
		return fmt.Sprintf("%s.%s r%d, r%d, r%d, r%d", op, t, in.Dst, in.A, in.B, int32(in.Imm))

	case OpShConst:
		return fmt.Sprintf("%s.%s r%d%s", op, t, in.Dst, idSuffix)
	case OpShMov:
		return fmt.Sprintf("%s.%s r%d, r%d%s", op, t, in.Dst, in.A, idSuffix)
	case OpShBin:
		return fmt.Sprintf("%s.%s.%s r%d, r%d, r%d%s", op, binName(in.K), t, in.Dst, in.A, in.B, idSuffix)
	case OpShUn:
		return fmt.Sprintf("%s.%s.%s r%d, r%d%s", op, unName(in.K), t, in.Dst, in.A, idSuffix)
	case OpShCmp:
		return fmt.Sprintf("%s.%s.%s r%d, r%d, r%d%s", op, cmpName(in.K), t, in.Dst, in.A, in.B, idSuffix)
	case OpShCast:
		return fmt.Sprintf("%s.%s.%s r%d, r%d%s", op, t, ir.Type(in.T2), in.Dst, in.A, idSuffix)
	case OpShLoad:
		return fmt.Sprintf("%s.%s r%d, [r%d]%s", op, t, in.Dst, in.A, idSuffix)
	case OpShStore:
		return fmt.Sprintf("%s.%s [r%d], r%d%s", op, t, in.A, in.B, idSuffix)
	case OpShPreCall:
		return fmt.Sprintf("%s fn%d%s", op, in.A, m.argList(in))
	case OpShPostCall:
		return fmt.Sprintf("%s.%s r%d%s", op, t, in.Dst, idSuffix)
	case OpShRet:
		return fmt.Sprintf("%s.%s r%d", op, t, in.A)
	case OpShPrint:
		return fmt.Sprintf("%s.%s r%d%s", op, t, in.A, idSuffix)
	case OpShQClear:
		return op
	case OpShQAdd:
		return fmt.Sprintf("%s.%s%s r%d", op, t, negSuffix(in.K), in.A)
	case OpShQMAdd:
		return fmt.Sprintf("%s.%s%s r%d, r%d", op, t, negSuffix(in.K), in.A, in.B)
	case OpShQVal:
		return fmt.Sprintf("%s.%s r%d%s", op, t, in.Dst, idSuffix)
	case OpShFMA:
		return fmt.Sprintf("%s.%s r%d, r%d, r%d, r%d%s", op, t, in.Dst, in.A, in.B, int32(in.Imm), idSuffix)

	case OpFusedConst:
		return fmt.Sprintf("%s.%s r%d, %#x%s", op, t, in.Dst, in.Imm, idSuffix)
	case OpFusedMov:
		return fmt.Sprintf("%s.%s r%d, r%d%s", op, t, in.Dst, in.A, idSuffix)
	case OpFusedAddP16, OpFusedSubP16, OpFusedMulP16,
		OpFusedAddP32, OpFusedSubP32, OpFusedMulP32:
		return fmt.Sprintf("%s r%d, r%d, r%d%s", op, in.Dst, in.A, in.B, idSuffix)
	case OpFusedBin:
		return fmt.Sprintf("%s.%s.%s r%d, r%d, r%d%s", op, binName(in.K), t, in.Dst, in.A, in.B, idSuffix)
	case OpFusedUn:
		return fmt.Sprintf("%s.%s.%s r%d, r%d%s", op, unName(in.K), t, in.Dst, in.A, idSuffix)
	case OpFusedCmp:
		return fmt.Sprintf("%s.%s.%s r%d, r%d, r%d%s", op, cmpName(in.K), t, in.Dst, in.A, in.B, idSuffix)
	case OpFusedCast:
		return fmt.Sprintf("%s.%s.%s r%d, r%d%s", op, t, ir.Type(in.T2), in.Dst, in.A, idSuffix)
	case OpFusedLoad:
		return fmt.Sprintf("%s.%s.%d r%d, [r%d]%s", op, t, in.K, in.Dst, in.A, idSuffix)
	case OpFusedStore:
		return fmt.Sprintf("%s.%s.%d [r%d], r%d%s", op, t, in.K, in.A, in.B, idSuffix)
	case OpFusedPrint:
		return fmt.Sprintf("%s.%s r%d%s", op, t, in.A, idSuffix)
	case OpFusedQClear:
		return op
	case OpFusedQAdd:
		return fmt.Sprintf("%s.%s%s r%d", op, t, negSuffix(in.K), in.A)
	case OpFusedQMAdd:
		return fmt.Sprintf("%s.%s%s r%d, r%d", op, t, negSuffix(in.K), in.A, in.B)
	case OpFusedQVal:
		return fmt.Sprintf("%s.%s r%d%s", op, t, in.Dst, idSuffix)
	case OpFusedFMA:
		return fmt.Sprintf("%s.%s r%d, r%d, r%d, r%d%s", op, t, in.Dst, in.A, in.B, int32(in.Imm), idSuffix)
	case OpFusedRet:
		return fmt.Sprintf("%s.%s r%d", op, t, in.A)
	default:
		return fmt.Sprintf("%s?%d", op, uint8(in.Op))
	}
}

// argList renders a call's argument registers from the shared pool.
func (m *Module) argList(in *Inst) string {
	off, n := in.Imm, in.B
	if n < 0 || off > uint64(len(m.Args)) || uint64(n) > uint64(len(m.Args))-off {
		return fmt.Sprintf(" args[%d+%d?]", off, n)
	}
	var sb strings.Builder
	sb.WriteString(" (")
	for i, r := range m.Args[off : off+uint64(n)] {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d", r)
	}
	sb.WriteString(")")
	return sb.String()
}

// binName/unName/cmpName avoid relying on the enum String methods for
// out-of-range fuzz values (their name tables index by value).
func binName(k uint8) string {
	if k <= uint8(ir.BinRem) {
		return ir.BinKind(k).String()
	}
	return fmt.Sprintf("bin%d", k)
}

func unName(k uint8) string {
	if k <= uint8(ir.UnAbs) {
		return ir.UnKind(k).String()
	}
	return fmt.Sprintf("un%d", k)
}

// cmpName avoids relying on CmpPred.String for out-of-range fuzz values.
func cmpName(k uint8) string {
	if k <= uint8(ir.CmpGe) {
		return ir.CmpPred(k).String()
	}
	return fmt.Sprintf("pred%d", k)
}

func negSuffix(k uint8) string {
	if k == 1 {
		return ".neg"
	}
	return ""
}
