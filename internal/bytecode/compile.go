package bytecode

import (
	"fmt"

	"positdebug/internal/ir"
)

// Options configures compilation.
type Options struct {
	// Fuse turns adjacent base-op/shadow-hook pairs into superinstructions.
	// Disable it when per-IR-instruction granularity matters (instruction
	// tracing, per-opcode timing) — the unfused chunk maps 1:1 to the IR.
	Fuse bool
}

// Compile lowers an ir.Module into a flat bytecode chunk and verifies the
// result: a non-nil return is always a chunk the verifier accepts, so the
// VM can execute it with static register and pc checks already discharged.
func Compile(mod *ir.Module, opts Options) (*Module, error) {
	out := &Module{
		GlobalBase:  mod.GlobalBase,
		GlobalSize:  mod.GlobalSize,
		NumRegistry: int32(len(mod.Registry)),
		Fused:       opts.Fuse,
	}
	for fi, f := range mod.Funcs {
		cf, err := compileFunc(out, f, opts)
		if err != nil {
			return nil, fmt.Errorf("bytecode: %s (func %d): %w", f.Name, fi, err)
		}
		out.Funcs = append(out.Funcs, cf)
	}
	if err := Verify(out); err != nil {
		return nil, fmt.Errorf("bytecode: compiled chunk failed verification: %w", err)
	}
	return out, nil
}

// fixup records a branch whose target pc is patched once all block start
// pcs are known. field 0 patches Dst, 1 patches B.
type fixup struct {
	pc    int
	blk   int32
	field int
}

func compileFunc(out *Module, f *ir.Func, opts Options) (*Func, error) {
	cf := &Func{
		Name:         f.Name,
		NumParams:    int32(len(f.Params)),
		NumRegs:      f.NumRegs,
		FrameSize:    f.FrameSize,
		Instrumented: f.Instrumented,
		IR:           f,
	}
	blockStart := make([]int32, len(f.Blocks))
	var fixups []fixup

	emit := func(in Inst, blk int32, idx int) {
		cf.Code = append(cf.Code, in)
		cf.Pos = append(cf.Pos, Pos{Blk: blk, Idx: int32(idx)})
	}

	for bi := range f.Blocks {
		blockStart[bi] = int32(len(cf.Code))
		instrs := f.Blocks[bi].Instrs
		for i := 0; i < len(instrs); {
			in := &instrs[i]
			if opts.Fuse && i+1 < len(instrs) {
				if fused, ok := fusePair(in, &instrs[i+1]); ok {
					if fused.Op == OpCall || fused.Op == OpShPreCall {
						// unreachable: call fusion is not attempted
						return nil, fmt.Errorf("bad fusion at block %d instr %d", bi, i)
					}
					fused, err := fillPools(out, cf, fused, in, &instrs[i+1])
					if err != nil {
						return nil, err
					}
					emit(fused, int32(bi), i)
					i += 2
					continue
				}
			}
			lowered, err := lower(out, cf, in)
			if err != nil {
				return nil, fmt.Errorf("block %d instr %d: %w", bi, i, err)
			}
			switch in.Op {
			case ir.OpBr:
				fixups = append(fixups,
					fixup{pc: len(cf.Code), blk: in.Blk[0], field: 0},
					fixup{pc: len(cf.Code), blk: in.Blk[1], field: 1})
			case ir.OpJmp:
				fixups = append(fixups, fixup{pc: len(cf.Code), blk: in.Blk[0], field: 0})
			}
			emit(lowered, int32(bi), i)
			i++
		}
	}

	for _, fx := range fixups {
		if fx.blk < 0 || int(fx.blk) >= len(blockStart) {
			return nil, fmt.Errorf("branch to undefined block %d", fx.blk)
		}
		if fx.field == 0 {
			cf.Code[fx.pc].Dst = blockStart[fx.blk]
		} else {
			cf.Code[fx.pc].B = blockStart[fx.blk]
		}
	}
	return cf, nil
}

// lower translates one IR instruction to one bytecode instruction.
// Branch targets are left as placeholders for the fixup pass.
func lower(out *Module, cf *Func, in *ir.Instr) (Inst, error) {
	bi := Inst{K: in.Kind, T: uint8(in.Type), T2: uint8(in.Type2),
		Dst: in.Dst, A: in.A, B: in.B, ID: in.ID, Imm: in.Imm}
	switch in.Op {
	case ir.OpNop:
		bi.Op = OpNop
	case ir.OpConst:
		bi.Op = OpConst
	case ir.OpMov:
		bi.Op = OpMov
	case ir.OpBin:
		bi.Op = binOpcode(ir.BinKind(in.Kind), in.Type)
	case ir.OpUn:
		bi.Op = OpUn
	case ir.OpCmp:
		if in.Type == ir.I64 && ir.CmpPred(in.Kind) == ir.CmpLt {
			bi.Op = OpLtI64
		} else {
			bi.Op = OpCmp
		}
	case ir.OpCast:
		bi.Op = OpCast
	case ir.OpLoad:
		op, err := loadOpcode(in.Type)
		if err != nil {
			return Inst{}, err
		}
		bi.Op = op
	case ir.OpStore:
		op, err := storeOpcode(in.Type)
		if err != nil {
			return Inst{}, err
		}
		bi.Op = op
	case ir.OpFrameAddr:
		bi.Op = OpFrameAddr
	case ir.OpGlobalAddr:
		// A global's absolute address is a compile-time constant.
		bi.Op = OpConst
	case ir.OpAddrIndex:
		bi.Op = OpAddrIndex
	case ir.OpBr:
		bi.Op = OpBr
		bi.Dst, bi.B = 0, 0 // patched by fixups
	case ir.OpJmp:
		bi.Op = OpJmp
		bi.Dst = 0 // patched
	case ir.OpCall:
		bi.Op = OpCall
		bi.A = in.Fn
		bi.B = int32(len(in.Args))
		bi.Imm = uint64(len(out.Args))
		out.Args = append(out.Args, in.Args...)
	case ir.OpRet:
		bi.Op = OpRet
	case ir.OpPrint:
		bi.Op = OpPrint
	case ir.OpPrintStr:
		bi.Op = OpPrintStr
		bi.Imm = uint64(len(out.Strs))
		out.Strs = append(out.Strs, in.Str)
	case ir.OpQClear:
		bi.Op = OpQClear
	case ir.OpQAdd:
		bi.Op = OpQAdd
	case ir.OpQMAdd:
		bi.Op = OpQMAdd
	case ir.OpQVal:
		bi.Op = OpQVal
	case ir.OpFMA:
		if len(in.Args) != 3 {
			return Inst{}, fmt.Errorf("fma needs 3 args, got %d", len(in.Args))
		}
		bi.Op = OpFMA
		bi.A, bi.B, bi.Imm = in.Args[0], in.Args[1], uint64(uint32(in.Args[2]))

	case ir.OpShadowConst:
		bi.Op = OpShConst
	case ir.OpShadowMov:
		bi.Op = OpShMov
	case ir.OpShadowBin:
		bi.Op = OpShBin
	case ir.OpShadowUn:
		bi.Op = OpShUn
	case ir.OpShadowCmp:
		bi.Op = OpShCmp
	case ir.OpShadowCast:
		bi.Op = OpShCast
	case ir.OpShadowLoad:
		bi.Op = OpShLoad
	case ir.OpShadowStore:
		bi.Op = OpShStore
	case ir.OpShadowPreCall:
		bi.Op = OpShPreCall
		bi.A = in.Fn
		bi.B = int32(len(in.Args))
		bi.Imm = uint64(len(out.Args))
		out.Args = append(out.Args, in.Args...)
	case ir.OpShadowPostCall:
		bi.Op = OpShPostCall
	case ir.OpShadowRet:
		bi.Op = OpShRet
	case ir.OpShadowPrint:
		bi.Op = OpShPrint
	case ir.OpShadowQClear:
		bi.Op = OpShQClear
	case ir.OpShadowQAdd:
		bi.Op = OpShQAdd
	case ir.OpShadowQMAdd:
		bi.Op = OpShQMAdd
	case ir.OpShadowQVal:
		bi.Op = OpShQVal
	case ir.OpShadowFMA:
		if len(in.Args) != 3 {
			return Inst{}, fmt.Errorf("sh.fma needs 3 args, got %d", len(in.Args))
		}
		bi.Op = OpShFMA
		bi.A, bi.B, bi.Imm = in.Args[0], in.Args[1], uint64(uint32(in.Args[2]))
	default:
		return Inst{}, fmt.Errorf("unknown opcode %v", in.Op)
	}
	return bi, nil
}

func binOpcode(k ir.BinKind, t ir.Type) Op {
	switch t {
	case ir.I64:
		switch k {
		case ir.BinAdd:
			return OpAddI64
		case ir.BinSub:
			return OpSubI64
		case ir.BinMul:
			return OpMulI64
		case ir.BinDiv:
			return OpDivI64
		case ir.BinRem:
			return OpRemI64
		}
	case ir.P16:
		switch k {
		case ir.BinAdd:
			return OpAddP16
		case ir.BinSub:
			return OpSubP16
		case ir.BinMul:
			return OpMulP16
		}
	case ir.P32:
		switch k {
		case ir.BinAdd:
			return OpAddP32
		case ir.BinSub:
			return OpSubP32
		case ir.BinMul:
			return OpMulP32
		}
	}
	return OpBin
}

func loadOpcode(t ir.Type) (Op, error) {
	switch t.Size() {
	case 1:
		return OpLoad1, nil
	case 2:
		return OpLoad2, nil
	case 4:
		return OpLoad4, nil
	case 8:
		return OpLoad8, nil
	}
	return OpInvalid, fmt.Errorf("load of zero-size type %v", t)
}

func storeOpcode(t ir.Type) (Op, error) {
	switch t.Size() {
	case 1:
		return OpStore1, nil
	case 2:
		return OpStore2, nil
	case 4:
		return OpStore4, nil
	case 8:
		return OpStore8, nil
	}
	return OpInvalid, fmt.Errorf("store of zero-size type %v", t)
}

// fusePair recognizes a base instruction followed (or, for returns,
// preceded) by its matching shadow instruction and builds the fused
// superinstruction. The instrumentation pass emits shadows as verbatim
// field copies of their base, so matching is strict field equality on every
// field either half consumes — anything else stays unfused.
func fusePair(a, b *ir.Instr) (Inst, bool) {
	// sh.ret precedes its ret.
	if a.Op == ir.OpShadowRet && b.Op == ir.OpRet && a.A == b.A {
		return Inst{Op: OpFusedRet, T: uint8(a.Type), A: a.A, Dst: -1, B: -1, ID: a.ID}, true
	}
	sameDst := a.Dst == b.Dst
	sameA := a.A == b.A
	sameB := a.B == b.B
	sameTK := a.Type == b.Type && a.Kind == b.Kind
	mk := func(op Op) Inst {
		return Inst{Op: op, K: a.Kind, T: uint8(a.Type), T2: uint8(a.Type2),
			Dst: a.Dst, A: a.A, B: a.B, ID: b.ID, Imm: a.Imm}
	}
	switch {
	case a.Op == ir.OpConst && b.Op == ir.OpShadowConst && sameDst && a.Type == b.Type:
		return mk(OpFusedConst), true
	case a.Op == ir.OpMov && b.Op == ir.OpShadowMov && sameDst && sameA && a.Type == b.Type:
		return mk(OpFusedMov), true
	case a.Op == ir.OpBin && b.Op == ir.OpShadowBin && sameDst && sameA && sameB && sameTK:
		in := mk(fusedBinOpcode(ir.BinKind(a.Kind), a.Type))
		return in, true
	case a.Op == ir.OpUn && b.Op == ir.OpShadowUn && sameDst && sameA && sameTK:
		return mk(OpFusedUn), true
	case a.Op == ir.OpCmp && b.Op == ir.OpShadowCmp && sameDst && sameA && sameB && sameTK:
		return mk(OpFusedCmp), true
	case a.Op == ir.OpCast && b.Op == ir.OpShadowCast && sameDst && sameA &&
		a.Type == b.Type && a.Type2 == b.Type2:
		return mk(OpFusedCast), true
	case a.Op == ir.OpLoad && b.Op == ir.OpShadowLoad && sameDst && sameA && a.Type == b.Type:
		if sz := a.Type.Size(); sz != 0 {
			in := mk(OpFusedLoad)
			in.K = uint8(sz)
			return in, true
		}
	case a.Op == ir.OpStore && b.Op == ir.OpShadowStore && sameA && sameB && a.Type == b.Type:
		if sz := a.Type.Size(); sz != 0 {
			in := mk(OpFusedStore)
			in.K = uint8(sz)
			return in, true
		}
	case a.Op == ir.OpPrint && b.Op == ir.OpShadowPrint && sameA && a.Type == b.Type:
		return mk(OpFusedPrint), true
	case a.Op == ir.OpQClear && b.Op == ir.OpShadowQClear:
		return mk(OpFusedQClear), true
	case a.Op == ir.OpQAdd && b.Op == ir.OpShadowQAdd && sameA && sameTK:
		return mk(OpFusedQAdd), true
	case a.Op == ir.OpQMAdd && b.Op == ir.OpShadowQMAdd && sameA && sameB && sameTK:
		return mk(OpFusedQMAdd), true
	case a.Op == ir.OpQVal && b.Op == ir.OpShadowQVal && sameDst && a.Type == b.Type:
		return mk(OpFusedQVal), true
	case a.Op == ir.OpFMA && b.Op == ir.OpShadowFMA && sameDst && a.Type == b.Type &&
		len(a.Args) == 3 && len(b.Args) == 3 &&
		a.Args[0] == b.Args[0] && a.Args[1] == b.Args[1] && a.Args[2] == b.Args[2]:
		in := mk(OpFusedFMA)
		in.A, in.B, in.Imm = a.Args[0], a.Args[1], uint64(uint32(a.Args[2]))
		return in, true
	}
	return Inst{}, false
}

func fusedBinOpcode(k ir.BinKind, t ir.Type) Op {
	switch t {
	case ir.P16:
		switch k {
		case ir.BinAdd:
			return OpFusedAddP16
		case ir.BinSub:
			return OpFusedSubP16
		case ir.BinMul:
			return OpFusedMulP16
		}
	case ir.P32:
		switch k {
		case ir.BinAdd:
			return OpFusedAddP32
		case ir.BinSub:
			return OpFusedSubP32
		case ir.BinMul:
			return OpFusedMulP32
		}
	}
	return OpFusedBin
}

// fillPools is a hook for fused instructions that need pool entries; today
// none do (call fusion is never attempted), but the seam keeps pool writes
// in one place if a fused call ever lands.
func fillPools(out *Module, cf *Func, fused Inst, a, b *ir.Instr) (Inst, error) {
	return fused, nil
}
