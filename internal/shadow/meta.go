// Package shadow implements the PositDebug/FPSanitizer runtime: shadow
// execution with high-precision values, the paper's constant-size metadata
// per memory location and per temporary (§3.2), metadata propagation on
// loads, stores, calls and returns (§3.3), detection and classification of
// numerical errors (§3.4), and DAG construction for debugging (§3.5).
//
// The same runtime serves both posit programs (PositDebug) and IEEE FP
// programs (FPSanitizer) — exactly the paper's claim that the metadata
// design generalizes; only value decoding differs per type. The shadow
// arithmetic itself is pluggable (internal/shadow/oracle): the paper's
// arbitrary-precision bigfp oracle, an allocation-free double-double
// oracle, or a residue-tracking float64 oracle, selected by Config.Oracle.
package shadow

import (
	"positdebug/internal/ir"
	"positdebug/internal/shadow/oracle"
)

// mdRef is a guarded pointer to a temporary's metadata: the lock-and-key
// pair captured when the reference was created decides at use time whether
// the referenced frame is still alive (§3.2 "lock-and-key metadata for
// temporal safety"). A stale reference fails the key comparison because
// keys increase monotonically and are never reused.
type mdRef struct {
	md   *TempMeta
	lock *uint64
	key  uint64
}

// valid reports whether the reference may be dereferenced.
func (r mdRef) valid() bool { return r.md != nil && r.lock != nil && *r.lock == r.key }

// TempMeta is the constant-size metadata of one temporary (virtual
// register), Figure 3(b) of the paper: the high-precision shadow value, the
// program's bit-pattern value, the producing instruction, guarded pointers
// to the operands' metadata, the owning frame's lock and key, and the
// timestamp that orders updates when a static temporary is rewritten in a
// loop.
type TempMeta struct {
	Real  oracle.Value // shadow value (in-place, storage reused across updates)
	Undef bool      // shadow value undefined (NaR/NaN territory)
	Prog  uint64    // program bits at write time
	Inst  int32     // producing instruction id (−1 unknown)
	Err   int32     // bits of error recorded when produced
	Time  uint64    // update timestamp
	Op1   mdRef
	Op2   mdRef

	lock    *uint64
	key     uint64
	written bool

	// pv caches the detection pass's decoded view of Prog (see fastpath.go).
	// Validity is keyed on (pvBits, pv.typ) matching the read, so the cache
	// is a pure memoization and never needs invalidating when Prog changes.
	pv     pval
	pvBits uint64
}

// ref returns a guarded reference to t.
func (t *TempMeta) ref() mdRef { return mdRef{md: t, lock: t.lock, key: t.key} }

// MemMeta is the constant-size metadata of one memory location, Figure 3(a)
// of the paper: shadow value, guarded pointer to the last writer's
// temporary metadata, producing instruction, and the program's stored bits
// (used both to detect writes by uninstrumented code, §4.1, and to
// re-initialize after branch flips).
type MemMeta struct {
	Real   oracle.Value
	Undef  bool
	Writer mdRef
	Inst   int32
	Err    int32
	Prog   uint64
	epoch  uint32 // resync epoch; lags runtime.flipEpoch until refreshed
	set    bool

	// pv caches the decoded view of the stored bits (see fastpath.go).
	// Like TempMeta's cache it is a pure memoization keyed on (pvBits,
	// pv.typ), so generation rollover and resyncs need not clear it: a
	// stale entry whose key still matches is still correct.
	pv     pval
	pvBits uint64
}

// shadowMem is the two-level trie mapping program addresses to MemMeta
// (§4.1 "Shadow memory"). First-level entries exist for the whole address
// space up front; second-level pages are allocated on demand, so shadow
// memory usage is proportional to the program's footprint.
const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

// shadowPage is one second-level page plus the generation that last touched
// it. Pages survive Runtime.Reset: a new run bumps the trie's generation and
// each page lazily invalidates its cells on first touch, so the cells' lazily
// grown big.Float mantissas stay warm across runs.
type shadowPage struct {
	gen   uint64
	cells [pageSize]MemMeta
}

type shadowMem struct {
	pages     []*shadowPage
	gen       uint64
	allocated int // second-level pages touched this generation

	// One-entry lookup cache: loop nests hit the same page for long runs,
	// so the common get() is an index compare instead of a trie walk. The
	// cached page is always one already validated for the current
	// generation; reset() drops it.
	lastIdx uint32
	last    *shadowPage
}

func newShadowMem(limit uint32) *shadowMem {
	n := (int(limit) + pageSize - 1) / pageSize
	return &shadowMem{pages: make([]*shadowPage, n), gen: 1}
}

// reset starts a new generation: pages (and their mantissas) are kept, but
// every cell is invalidated on its page's first touch of the new generation.
// The touched-page counter restarts so the shadow-memory budget keeps its
// per-run semantics.
func (s *shadowMem) reset() {
	s.gen++
	s.allocated = 0
	s.last = nil
}

// get returns the metadata cell for addr, allocating or revalidating its
// page on demand.
func (s *shadowMem) get(addr uint32) *MemMeta {
	p := addr >> pageBits
	if p == s.lastIdx && s.last != nil {
		return &s.last.cells[addr&pageMask]
	}
	if int(p) >= len(s.pages) {
		// Grow geometrically for machines with larger stacks than the
		// initial limit: doubling keeps page-table extension amortized O(1)
		// per page instead of re-copying the table on every new high page.
		newLen := 2 * len(s.pages)
		if newLen < int(p)+1 {
			newLen = int(p) + 1
		}
		np := make([]*shadowPage, newLen)
		copy(np, s.pages)
		s.pages = np
	}
	pg := s.pages[p]
	switch {
	case pg == nil:
		pg = &shadowPage{gen: s.gen}
		s.pages[p] = pg
		s.allocated++
	case pg.gen != s.gen:
		// First touch this generation: invalidate every cell in place,
		// dropping writer references but preserving allocated mantissas.
		for i := range pg.cells {
			c := &pg.cells[i]
			c.set = false
			c.Writer = mdRef{}
		}
		pg.gen = s.gen
		s.allocated++
	}
	s.lastIdx, s.last = p, pg
	return &pg.cells[addr&pageMask]
}

// pageCount reports second-level pages touched this generation (tests,
// stats, and the shadow-memory budget).
func (s *shadowMem) pageCount() int { return s.allocated }

// shadowFrame holds the temporary metadata of one activation. Frames are
// pooled: the paper bounds stack-side metadata by the static temporary
// count per function, and the pool keeps allocation out of the hot path.
type shadowFrame struct {
	fn      *ir.Func
	temps   []TempMeta
	lockIdx int
}

// reset prepares a pooled frame for reuse, preserving allocated big.Float
// mantissas but invalidating all metadata.
func (f *shadowFrame) reset(n int32) {
	if cap(f.temps) < int(n) {
		f.temps = make([]TempMeta, n)
		return
	}
	f.temps = f.temps[:n]
	for i := range f.temps {
		t := &f.temps[i]
		t.written = false
		t.Undef = false
		t.Op1 = mdRef{}
		t.Op2 = mdRef{}
		t.Inst = -1
		t.Err = 0
	}
}
