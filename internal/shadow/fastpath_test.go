package shadow

import (
	"encoding/json"
	"math"
	"testing"

	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/posit"
)

// xorshift is a tiny deterministic PRNG so the property tests sample the
// same patterns on every run and every platform.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// checkPval asserts every pval field against the slow derivation it
// replaces: ToFloat64 for the conversion, valueExp for the cancellation
// exponent, Decode(Abs) for the precision-loss geometry.
func checkPval(t *testing.T, typ ir.Type, bits uint64) {
	t.Helper()
	pv := computePval(typ, bits)
	slowF := interp.ToFloat64(typ, bits)
	if math.Float64bits(pv.f) != math.Float64bits(slowF) {
		t.Fatalf("%v %#x: f = %v (%#x), ToFloat64 = %v (%#x)",
			typ, bits, pv.f, math.Float64bits(pv.f), slowF, math.Float64bits(slowF))
	}
	slowExp, slowZero := valueExp(typ, bits)
	if pv.zero != slowZero {
		t.Fatalf("%v %#x: zero = %v, valueExp zero = %v", typ, bits, pv.zero, slowZero)
	}
	if !slowZero && int(pv.exp) != slowExp {
		t.Fatalf("%v %#x: exp = %d, valueExp = %d", typ, bits, pv.exp, slowExp)
	}
	if undef := math.IsNaN(slowF) || math.IsInf(slowF, 0); pv.undef != undef {
		t.Fatalf("%v %#x: undef = %v, want %v", typ, bits, pv.undef, undef)
	}
	if typ.IsPosit() {
		cfg := typ.PositConfig()
		pb := posit.Bits(bits)
		if pb != 0 && !cfg.IsNaR(pb) {
			d := cfg.Decode(cfg.Abs(pb))
			if int(pv.fbits) != d.FracBits || int(pv.rbits) != d.RegimeBits {
				t.Fatalf("%v %#x: geometry (%d,%d), Decode(Abs) (%d,%d)",
					typ, bits, pv.fbits, pv.rbits, d.FracBits, d.RegimeBits)
			}
			// The reconstructed decode must be the literal Decode result:
			// FastBinP32 feeds it to AddDecoded and MulDecoded, where
			// Frac/Scale/Neg all matter, not just the geometry fields.
			if want := cfg.Decode(pb); pv.decoded() != want {
				t.Fatalf("%v %#x: decoded() = %+v, want %+v", typ, bits, pv.decoded(), want)
			}
		}
	}
}

// TestPvalMatchesSlowDerivations checks the single-decode view against the
// regular detection pass's helpers: exhaustively for ⟨8,0⟩ and ⟨16,1⟩,
// and over structured + random patterns for ⟨32,2⟩, f32, f64 and i64.
func TestPvalMatchesSlowDerivations(t *testing.T) {
	for b := uint64(0); b < 1<<8; b++ {
		checkPval(t, ir.P8, b)
	}
	for b := uint64(0); b < 1<<16; b++ {
		checkPval(t, ir.P16, b)
	}
	specials := []uint64{
		0, 0x80000000, // zero, NaR
		1, 0x7fffffff, // minpos, maxpos
		0xffffffff, 0x80000001, // -minpos, -maxpos
		0x40000000, 0xc0000000, // ±1
		math.Float64bits(math.NaN()), math.Float64bits(math.Inf(1)),
		math.Float64bits(math.Inf(-1)), math.Float64bits(0.1),
		1 << 63, ^uint64(0),
	}
	for _, b := range specials {
		checkPval(t, ir.P32, b&0xffffffff)
		checkPval(t, ir.F32, b&0xffffffff)
		checkPval(t, ir.F64, b)
		checkPval(t, ir.I64, b)
	}
	rng := xorshift(0x9e3779b97f4a7c15)
	for i := 0; i < 200000; i++ {
		b := rng.next()
		checkPval(t, ir.P32, b&0xffffffff)
		checkPval(t, ir.F32, b&0xffffffff)
		checkPval(t, ir.F64, b)
		checkPval(t, ir.I64, b)
	}
}

// TestFastCheckOpByteIdentical drives the same adversarial event stream —
// random and special patterns, including NaR results from finite operands,
// saturated results, cancellations and precision loss — through binImpl's
// regular and fast detection passes on two runtimes, and requires
// identical summaries (counts, error maxima, and full report lists).
func TestFastCheckOpByteIdentical(t *testing.T) {
	for _, typ := range []ir.Type{ir.P16, ir.P32} {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			drive := func(fast bool) *Summary {
				rt, _ := buildPipeline(t, rootCountSrc, DefaultConfig())
				fn := rt.mod.FuncByName("rootcount")
				var id int32 = -1
				for i := int32(0); int(i) < len(rt.mod.Registry); i++ {
					if rt.mod.Meta(i).Type != ir.Void {
						id = i
						break
					}
				}
				if id < 0 {
					t.Fatal("no instrumented instruction found")
				}
				one := uint64(typ.PositConfig().FromFloat64(1))
				rt.Reset()
				rt.EnterFunc(fn, []uint64{one, one, one})
				cfg := typ.PositConfig()
				mask := uint64(1)<<cfg.N - 1
				special := []uint64{0, uint64(cfg.NaR()), uint64(cfg.MaxPos()),
					uint64(cfg.MinPos()), uint64(cfg.Neg(cfg.MaxPos())), one}
				rng := xorshift(0x2545f4914f6cdd1d)
				for i := 0; i < 4000; i++ {
					pick := func() uint64 {
						v := rng.next()
						if v%4 == 0 {
							return special[(v>>8)%uint64(len(special))]
						}
						return v & mask
					}
					aBits, bBits := pick(), pick()
					kind := ir.BinKind(rng.next() % 4)
					var res posit.Bits
					switch kind {
					case ir.BinAdd:
						res = cfg.Add(posit.Bits(aBits), posit.Bits(bBits))
					case ir.BinSub:
						res = cfg.Sub(posit.Bits(aBits), posit.Bits(bBits))
					case ir.BinMul:
						res = cfg.Mul(posit.Bits(aBits), posit.Bits(bBits))
					case ir.BinDiv:
						res = cfg.Div(posit.Bits(aBits), posit.Bits(bBits))
					}
					rt.binImpl(id, kind, typ, 3, 1, 2, uint64(res), aBits, bBits, fast)
					// Occasionally chain: reuse the destination as an operand
					// so the fast pass exercises its memoized decode.
					if rng.next()%3 == 0 {
						chained := cfg.Add(res, posit.Bits(aBits))
						rt.binImpl(id, ir.BinAdd, typ, 4, 3, 1, uint64(chained), uint64(res), aBits, fast)
					}
				}
				return rt.Summary()
			}
			slow, fastSum := drive(false), drive(true)
			sj, err := json.Marshal(slow)
			if err != nil {
				t.Fatal(err)
			}
			fj, err := json.Marshal(fastSum)
			if err != nil {
				t.Fatal(err)
			}
			if string(sj) != string(fj) {
				t.Fatalf("summaries diverged\n  slow: %s\n  fast: %s", sj, fj)
			}
		})
	}
}

// TestFastBinP32MatchesConfig32 pins the fused superinstruction's program
// arithmetic: the bits FastBinP32 returns to the VM must equal
// Config32.Add/Sub/Mul for every operand pair, specials included. The
// decoded-operand path (AddDecoded/MulDecoded over memoized decodes) is
// bit-identical to the codec by construction; this test is the proof
// obligation.
func TestFastBinP32MatchesConfig32(t *testing.T) {
	rt, _ := buildPipeline(t, rootCountSrc, DefaultConfig())
	fn := rt.mod.FuncByName("rootcount")
	var id int32 = -1
	for i := int32(0); int(i) < len(rt.mod.Registry); i++ {
		if rt.mod.Meta(i).Type != ir.Void {
			id = i
			break
		}
	}
	if id < 0 {
		t.Fatal("no instrumented instruction found")
	}
	cfg := posit.Config32
	one := uint64(cfg.FromFloat64(1))
	rt.Reset()
	rt.EnterFunc(fn, []uint64{one, one, one})

	mask := uint64(1)<<cfg.N - 1
	special := []uint64{0, uint64(cfg.NaR()), uint64(cfg.MaxPos()),
		uint64(cfg.MinPos()), uint64(cfg.Neg(cfg.MaxPos())),
		uint64(cfg.Neg(cfg.MinPos())), one, uint64(cfg.Neg(cfg.One()))}
	check := func(kind ir.BinKind, aBits, bBits uint64) {
		t.Helper()
		var want posit.Bits
		switch kind {
		case ir.BinAdd:
			want = cfg.Add(posit.Bits(aBits), posit.Bits(bBits))
		case ir.BinSub:
			want = cfg.Sub(posit.Bits(aBits), posit.Bits(bBits))
		case ir.BinMul:
			want = cfg.Mul(posit.Bits(aBits), posit.Bits(bBits))
		}
		got := rt.FastBinP32(id, kind, 3, 1, 2, aBits, bBits)
		if got != uint64(want) {
			t.Fatalf("FastBinP32(%v, %#x, %#x) = %#x, Config32 = %#x",
				kind, aBits, bBits, got, uint64(want))
		}
	}
	kinds := []ir.BinKind{ir.BinAdd, ir.BinSub, ir.BinMul}
	// Full special × special cross product for every kind.
	for _, kind := range kinds {
		for _, a := range special {
			for _, b := range special {
				check(kind, a, b)
			}
		}
	}
	// Random sweep, with a bias toward near-equal operands so Sub's
	// cancellation/renormalization path is exercised.
	rng := xorshift(0x9e3779b97f4a7c15)
	n := 200000
	if testing.Short() {
		n = 20000
	}
	for i := 0; i < n; i++ {
		a := rng.next() & mask
		b := rng.next() & mask
		if i%4 == 0 {
			b = a ^ (rng.next() & 0xffff)
		}
		check(kinds[rng.next()%3], a, b)
	}
}
