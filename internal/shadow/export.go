package shadow

import (
	"encoding/json"
	"fmt"
	"io"

	"positdebug/internal/obs"
)

// Graph converts a report's instruction DAG to the machine-readable
// obs.Graph form (Graphviz DOT, JSON). Node ids are assigned in DFS order,
// so the conversion is deterministic.
func (rep *Report) Graph() obs.Graph {
	g := obs.Graph{
		Name:  fmt.Sprintf("inst%d", rep.Inst),
		Label: fmt.Sprintf("%s in %s @%s (%d bits)", rep.Kind, rep.Func, rep.Pos, rep.ErrBits),
		Nodes: []obs.Node{},
		Edges: []obs.Edge{},
	}
	if rep.DAG == nil {
		return g
	}
	var walk func(n *DAGNode, root bool) int
	walk = func(n *DAGNode, root bool) int {
		id := len(g.Nodes) + 1
		g.Nodes = append(g.Nodes, obs.Node{
			ID:      id,
			Inst:    n.Inst,
			Op:      n.Op,
			Pos:     n.Pos,
			Program: n.Program,
			Shadow:  n.Shadow,
			ErrBits: n.ErrBits,
			Root:    root,
		})
		for _, k := range n.Kids {
			kid := walk(k, false)
			g.Edges = append(g.Edges, obs.Edge{From: id, To: kid})
		}
		return id
	}
	walk(rep.DAG, true)
	return g
}

// Graphs converts every materialized report's DAG (reports without a DAG —
// tracing disabled — are skipped).
func (s *Summary) Graphs() []obs.Graph {
	var out []obs.Graph
	for _, rep := range s.Reports {
		if rep.DAG == nil {
			continue
		}
		out = append(out, rep.Graph())
	}
	return out
}

// WriteDOT writes all report DAGs as one Graphviz file (a cluster per
// detection). Writes a valid empty digraph when no DAGs were produced.
func (s *Summary) WriteDOT(w io.Writer) error {
	return obs.WriteDOTAll(w, "positdebug", s.Graphs())
}

// GraphsJSON renders all report DAGs as indented JSON.
func (s *Summary) GraphsJSON() ([]byte, error) {
	gs := s.Graphs()
	if gs == nil {
		gs = []obs.Graph{}
	}
	return json.MarshalIndent(gs, "", "  ")
}
