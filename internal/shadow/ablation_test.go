package shadow

import "testing"

// BenchmarkAblationLockKey quantifies design decision 4 of DESIGN.md: the
// per-dereference cost of the lock-and-key temporal-safety check guarding
// DAG pointer traversal, against an unchecked pointer chase.
func BenchmarkAblationLockKey(b *testing.B) {
	var lock uint64 = 42
	t := &TempMeta{}
	t.lock = &lock
	t.key = 42
	ref := t.ref()
	b.Run("checked", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if ref.valid() {
				n++
			}
		}
		if n != b.N {
			b.Fatal("ref must stay valid")
		}
	})
	b.Run("unchecked", func(b *testing.B) {
		n := 0
		for i := 0; i < b.N; i++ {
			if ref.md != nil {
				n++
			}
		}
		if n != b.N {
			b.Fatal("pointer must stay set")
		}
	})
	b.Run("stale", func(b *testing.B) {
		lock = 0 // the frame died
		defer func() { lock = 42 }()
		for i := 0; i < b.N; i++ {
			if ref.valid() {
				b.Fatal("stale ref must be rejected")
			}
		}
	})
}

// BenchmarkShadowBinOp measures the per-operation cost of the shadow
// runtime's hot path at each precision (the direct driver of Figures 7/9).
func BenchmarkShadowBinOp(b *testing.B) {
	for _, prec := range []uint{128, 256, 512} {
		prec := prec
		b.Run(benchName(prec), func(b *testing.B) {
			src := `
func main(): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 1000; i += 1) {
		s = s + 1.0625;
	}
	return s;
}
`
			rt, m := buildPipeline(b, src, Config{Precision: prec, Tracing: true, MaxReports: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run("main"); err != nil {
					b.Fatal(err)
				}
			}
			_ = rt
		})
	}
}

func benchName(prec uint) string {
	switch prec {
	case 128:
		return "prec128"
	case 256:
		return "prec256"
	default:
		return "prec512"
	}
}
