package shadow

import (
	"fmt"
	"sort"
	"strings"

	"positdebug/internal/ir"
)

// Kind classifies a detected numerical error (§3.4 of the paper).
type Kind uint8

// Error kinds.
const (
	KindNone Kind = iota
	// KindCancellation: a subtraction cancelled the significant digits of
	// rounded operands and the result differs from the real value by at
	// least a factor of ε (catastrophic cancellation).
	KindCancellation
	// KindPrecisionLoss: the result needed more regime bits than its
	// operands, losing fraction bits beyond the configured threshold
	// (posit-specific tapered-accuracy loss).
	KindPrecisionLoss
	// KindSaturation: the operation produced or consumed maxpos/minpos —
	// a silently-hidden overflow or underflow.
	KindSaturation
	// KindNaR: the operation produced Not-a-Real (posit) while the shadow
	// value was defined, or NaN/Inf for FP programs (exceptions).
	KindNaR
	// KindBranchFlip: a comparison evaluated differently in the shadow
	// execution — control flow diverged from the ideal execution.
	KindBranchFlip
	// KindWrongCast: a numeric→integer conversion produced a different
	// integer than the shadow execution.
	KindWrongCast
	// KindHighError: the result's error exceeded the reporting threshold
	// without a more specific classification.
	KindHighError
	// KindWrongOutput: a printed or returned value carried error beyond
	// the output threshold ("wrong results" in the paper's taxonomy).
	KindWrongOutput
)

var kindNames = map[Kind]string{
	KindNone: "none", KindCancellation: "catastrophic-cancellation",
	KindPrecisionLoss: "precision-loss", KindSaturation: "saturation",
	KindNaR: "exception-nar", KindBranchFlip: "branch-flip",
	KindWrongCast: "wrong-int-cast", KindHighError: "high-error",
	KindWrongOutput: "wrong-output",
}

func (k Kind) String() string { return kindNames[k] }

// MarshalText renders the kind name, so JSON maps keyed by Kind serialize
// as readable strings instead of enum ordinals.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Report describes one detected error instance, optionally with the DAG of
// instructions likely responsible (§3.5).
type Report struct {
	Kind    Kind
	Inst    int32
	Func    string
	Pos     string
	Text    string
	ErrBits int
	ULPs    uint64
	Program string // program value, formatted
	Shadow  string // shadow (real) value, formatted
	DAG     *DAGNode
}

// String renders the report header and DAG.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s] in %s @%s — %q: program=%s shadow=%s (%d bits of error)",
		r.Kind, r.Func, r.Pos, r.Text, r.Program, r.Shadow, r.ErrBits)
	if r.DAG != nil {
		sb.WriteString("\n")
		sb.WriteString(r.DAG.Render())
	}
	return sb.String()
}

// Summary aggregates a run's detections — the data behind the paper's §5.1
// effectiveness table.
type Summary struct {
	Counts               map[Kind]int
	TotalOps             uint64 // shadowed numeric operations executed
	MaxOpErrBits         int    // worst per-operation error observed
	OutputMaxErrBits     int    // worst error among printed/returned values
	BranchFlips          int
	UninstrumentedWrites uint64
	Reports              []*Report
}

// Has reports whether any error of the kind was counted.
func (s *Summary) Has(k Kind) bool { return s.Counts[k] > 0 }

// ByFunction groups the materialized reports by the function containing
// the offending instruction — the first place to look when triaging a
// large application.
func (s *Summary) ByFunction() map[string][]*Report {
	out := map[string][]*Report{}
	for _, r := range s.Reports {
		out[r.Func] = append(out[r.Func], r)
	}
	return out
}

// WorstReport returns the materialized report with the most bits of
// error, or nil if none were kept.
func (s *Summary) WorstReport() *Report {
	var worst *Report
	for _, r := range s.Reports {
		if worst == nil || r.ErrBits > worst.ErrBits {
			worst = r
		}
	}
	return worst
}

// String renders a human-readable summary.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "shadow execution summary: %d numeric ops, worst op error %d bits, worst output error %d bits\n",
		s.TotalOps, s.MaxOpErrBits, s.OutputMaxErrBits)
	kinds := make([]Kind, 0, len(s.Counts))
	for k := range s.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if s.Counts[k] > 0 {
			fmt.Fprintf(&sb, "  %-26s %d\n", k.String()+":", s.Counts[k])
		}
	}
	if s.UninstrumentedWrites > 0 {
		fmt.Fprintf(&sb, "  uninstrumented writes:     %d\n", s.UninstrumentedWrites)
	}
	return sb.String()
}

// DAGNode is one node of the reported instruction DAG: the instruction, its
// program and shadow values at the time, and its error (the paper's Figures
// 5 and 6 show exactly these fields per node).
type DAGNode struct {
	Inst    int32
	Text    string
	Op      string
	Pos     string
	Program string
	Shadow  string
	ErrBits int
	Kids    []*DAGNode
}

// Render draws the DAG as an indented tree.
func (n *DAGNode) Render() string {
	var sb strings.Builder
	n.render(&sb, "", true)
	return sb.String()
}

func (n *DAGNode) render(sb *strings.Builder, prefix string, root bool) {
	head := prefix
	if !root {
		head += "└─ "
	}
	fmt.Fprintf(sb, "%s[%d bits] %s %s @%s  program=%s shadow=%s\n",
		head, n.ErrBits, n.Op, n.Text, n.Pos, n.Program, n.Shadow)
	childPrefix := prefix
	if !root {
		childPrefix += "   "
	}
	for _, k := range n.Kids {
		k.render(sb, childPrefix+"  ", false)
	}
}

// Size returns the number of nodes in the DAG.
func (n *DAGNode) Size() int {
	if n == nil {
		return 0
	}
	sz := 1
	for _, k := range n.Kids {
		sz += k.Size()
	}
	return sz
}

// Meta resolution for report rendering.
func metaPos(m ir.InstrMeta) string {
	return m.Pos.String()
}
