package shadow

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"positdebug/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden export files")

// exportSrc is the Figure 2 discriminant: a stable cancellation whose DAG
// (b*b, 4ac, the subtraction) is small and deterministic — ideal for
// pinning the DOT and JSON export formats.
const exportSrc = `
func main(): i64 {
	var a: p32 = 18309067625725952.0;
	var b: p32 = 3246642954240.0;
	var c: p32 = 143923904.0;
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
`

// TestGoldenDAGExport pins the Graphviz DOT and JSON renderings of the
// error DAGs byte-for-byte. Run with -update after an intentional format
// change. The files also feed CheckDOT, so a format regression that breaks
// DOT syntax fails twice.
func TestGoldenDAGExport(t *testing.T) {
	rt, m := buildPipeline(t, exportSrc, DefaultConfig())
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	sum := rt.Summary()
	if len(sum.Reports) == 0 {
		t.Fatal("export program produced no reports")
	}

	var dot bytes.Buffer
	if err := sum.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckDOT(dot.String()); err != nil {
		t.Fatalf("exported DOT fails the syntax checker: %v", err)
	}
	jsonOut, err := sum.GraphsJSON()
	if err != nil {
		t.Fatal(err)
	}

	compareGolden(t, "fig2_dag.dot.golden", dot.Bytes())
	compareGolden(t, "fig2_dag.json.golden", jsonOut)
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}
