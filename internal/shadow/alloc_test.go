package shadow

import (
	"testing"
)

// allocSrc exercises the whole hot path — loads, stores, binops, a call per
// iteration — without tripping any detector, so a steady-state run emits no
// reports and should therefore allocate nothing on a warm runtime.
const allocSrc = `
func scale(x: p32, f: p32): p32 {
	return x * f;
}
func main(): p32 {
	var acc: p32 = 0.0;
	var buf: [16]p32;
	var i: i64 = 0;
	while (i < 16) {
		buf[i] = scale(1.5, 0.25) + acc;
		acc = acc + buf[i];
		i = i + 1;
	}
	return acc;
}
`

// TestWarmRuntimeAllocs pins the per-run allocation count of a warm
// Runtime+Machine pair at zero: Reset reuses the shadow-memory trie, frame
// pool, quire accumulators and counts map in place, the interpreter pools
// register frames, and the load/store/binop path only touches pre-grown
// big.Float mantissas. This is the property that lets each campaign worker
// keep one runtime across hundreds of runs.
func TestWarmRuntimeAllocs(t *testing.T) {
	_, m := buildPipeline(t, allocSrc, DefaultConfig())
	// Warm up: grow mantissas, pools and shadow pages to steady state.
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if n != 0 {
		t.Errorf("warm shadow-execution run allocates %v/op, want 0", n)
	}
}

// TestWarmRuntimeAllocsNoTracing covers the paper's no-tracing
// configuration (Figures 8 and 10) on the same property.
func TestWarmRuntimeAllocsNoTracing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tracing = false
	_, m := buildPipeline(t, allocSrc, cfg)
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if n != 0 {
		t.Errorf("warm no-tracing run allocates %v/op, want 0", n)
	}
}
