package shadow

import (
	"testing"

	"positdebug/internal/obs"
)

// allocSrc exercises the whole hot path — loads, stores, binops, a call per
// iteration — without tripping any detector, so a steady-state run emits no
// reports and should therefore allocate nothing on a warm runtime.
const allocSrc = `
func scale(x: p32, f: p32): p32 {
	return x * f;
}
func main(): p32 {
	var acc: p32 = 0.0;
	var buf: [16]p32;
	var i: i64 = 0;
	while (i < 16) {
		buf[i] = scale(1.5, 0.25) + acc;
		acc = acc + buf[i];
		i = i + 1;
	}
	return acc;
}
`

// TestWarmRuntimeAllocs pins the per-run allocation count of a warm
// Runtime+Machine pair at zero: Reset reuses the shadow-memory trie, frame
// pool, quire accumulators and counts map in place, the interpreter pools
// register frames, and the load/store/binop path only touches pre-grown
// big.Float mantissas. This is the property that lets each campaign worker
// keep one runtime across hundreds of runs.
func TestWarmRuntimeAllocs(t *testing.T) {
	_, m := buildPipeline(t, allocSrc, DefaultConfig())
	// Warm up: grow mantissas, pools and shadow pages to steady state.
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if n != 0 {
		t.Errorf("warm shadow-execution run allocates %v/op, want 0", n)
	}
}

// TestWarmRuntimeAllocsEventsAttached: attaching an event sink and a
// metrics registry must not cost the warm path anything when no detector
// fires — events are only built on detection, and metric updates are
// cached-pointer atomic adds plus one map read for the per-instruction
// histogram. AllocsPerRun must stay at zero with tracing observability
// enabled but quiet.
func TestWarmRuntimeAllocsEventsAttached(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Events = obs.NewRing(64)
	cfg.Metrics = obs.NewRegistry()
	_, m := buildPipeline(t, allocSrc, cfg)
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if n != 0 {
		t.Errorf("warm run with sink+metrics attached allocates %v/op, want 0", n)
	}
}

// allocDetectSrc trips the cancellation detector every run, so each run
// emits detection events into the sink.
const allocDetectSrc = `
func main(): p32 {
	var big: p32 = 16777216.0;
	var one: p32 = 1.0;
	var x: p32 = (big + one) - big;
	return x;
}
`

// TestWarmRuntimeAllocsRingSinkBounded: with a detection-emitting program
// and a ring sink, per-run allocations stay bounded — the ring evicts
// rather than grows, so a long campaign with tracing enabled has constant
// memory. The bound is deliberately loose (event construction does
// allocate strings); the property under test is boundedness, not zero.
func TestWarmRuntimeAllocsRingSinkBounded(t *testing.T) {
	ring := obs.NewRing(8)
	cfg := DefaultConfig()
	cfg.MaxReports = 1
	cfg.Events = ring
	_, m := buildPipeline(t, allocDetectSrc, cfg)
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if n > 500 {
		t.Errorf("warm detecting run with ring sink allocates %v/op, want bounded (<= 500)", n)
	}
	if ring.Len() > 8 {
		t.Errorf("ring holds %d events, cap 8", ring.Len())
	}
}

// TestWarmRuntimeAllocsNoTracing covers the paper's no-tracing
// configuration (Figures 8 and 10) on the same property.
func TestWarmRuntimeAllocsNoTracing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tracing = false
	_, m := buildPipeline(t, allocSrc, cfg)
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("warmup run: %v", err)
		}
	}
	n := testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	if n != 0 {
		t.Errorf("warm no-tracing run allocates %v/op, want 0", n)
	}
}
