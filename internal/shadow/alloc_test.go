package shadow

import (
	"testing"

	"positdebug/internal/backend"
	"positdebug/internal/interp"
	"positdebug/internal/obs"
	"positdebug/internal/shadow/oracle"
)

// allocSrc exercises the whole hot path — loads, stores, binops, a call per
// iteration — without tripping any detector, so a steady-state run emits no
// reports and should therefore allocate nothing on a warm runtime.
const allocSrc = `
func scale(x: p32, f: p32): p32 {
	return x * f;
}
func main(): p32 {
	var acc: p32 = 0.0;
	var buf: [16]p32;
	var i: i64 = 0;
	while (i < 16) {
		buf[i] = scale(1.5, 0.25) + acc;
		acc = acc + buf[i];
		i = i + 1;
	}
	return acc;
}
`

// warmAllocsPerRun measures steady-state allocations of m.Run on one
// backend: warm up (growing mantissas, pools, shadow pages, and — on the
// VM — compiling and caching the bytecode chunk), then count.
func warmAllocsPerRun(t *testing.T, m *interp.Machine, k backend.Kind) float64 {
	t.Helper()
	m.Backend = k
	for i := 0; i < 3; i++ {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("%v warmup run: %v", k, err)
		}
	}
	return testing.AllocsPerRun(10, func() {
		if _, err := m.Run("main"); err != nil {
			t.Fatalf("%v run: %v", k, err)
		}
	})
}

// eachBackend runs the guard on the tree-walker and the VM. Both must hold
// the same steady-state allocation property: the register pool, chunk
// cache, and shadow structures all live on the shared Machine/Runtime, so
// warm Session reuse — and even switching backends between runs — costs
// nothing at steady state.
func eachBackend(t *testing.T, f func(t *testing.T, k backend.Kind)) {
	for _, k := range []backend.Kind{backend.Treewalk, backend.VM} {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

// TestWarmRuntimeAllocs pins the per-run allocation count of a warm
// Runtime+Machine pair at zero on both backends: Reset reuses the
// shadow-memory trie, frame pool, quire accumulators and counts map in
// place, the interpreter pools register frames (one pool on the Machine,
// shared by tree-walk and VM runs), and the load/store/binop path only
// touches pre-grown big.Float mantissas. This is the property that lets
// each campaign worker keep one runtime across hundreds of runs.
func TestWarmRuntimeAllocs(t *testing.T) {
	_, m := buildPipeline(t, allocSrc, DefaultConfig())
	eachBackend(t, func(t *testing.T, k backend.Kind) {
		if n := warmAllocsPerRun(t, m, k); n != 0 {
			t.Errorf("warm %v shadow-execution run allocates %v/op, want 0", k, n)
		}
	})
}

// TestWarmRuntimeAllocsOracles holds the same zero-allocation property
// under the cheaper shadow oracles: a warm dd or residue runtime must not
// allocate at all on either backend — there are no mantissas to grow in
// the first place, which is exactly why the server's watchdog may degrade
// onto them under memory pressure.
func TestWarmRuntimeAllocsOracles(t *testing.T) {
	for _, kind := range []oracle.Kind{oracle.DD, oracle.Residue} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			_, m := buildPipeline(t, allocSrc, ConfigFor(kind, 0))
			eachBackend(t, func(t *testing.T, k backend.Kind) {
				if n := warmAllocsPerRun(t, m, k); n != 0 {
					t.Errorf("warm %v/%s shadow-execution run allocates %v/op, want 0", k, kind, n)
				}
			})
		})
	}
}

// TestWarmRuntimeAllocsEventsAttached: attaching an event sink and a
// metrics registry must not cost the warm path anything when no detector
// fires — events are only built on detection, and metric updates are
// cached-pointer atomic adds plus one map read for the per-instruction
// histogram. AllocsPerRun must stay at zero with tracing observability
// enabled but quiet, on both backends.
func TestWarmRuntimeAllocsEventsAttached(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Events = obs.NewRing(64)
	cfg.Metrics = obs.NewRegistry()
	_, m := buildPipeline(t, allocSrc, cfg)
	eachBackend(t, func(t *testing.T, k backend.Kind) {
		if n := warmAllocsPerRun(t, m, k); n != 0 {
			t.Errorf("warm %v run with sink+metrics attached allocates %v/op, want 0", k, n)
		}
	})
}

// allocDetectSrc trips the cancellation detector every run, so each run
// emits detection events into the sink.
const allocDetectSrc = `
func main(): p32 {
	var big: p32 = 16777216.0;
	var one: p32 = 1.0;
	var x: p32 = (big + one) - big;
	return x;
}
`

// TestWarmRuntimeAllocsRingSinkBounded: with a detection-emitting program
// and a ring sink, per-run allocations stay bounded — the ring evicts
// rather than grows, so a long campaign with tracing enabled has constant
// memory. The bound is deliberately loose (event construction does
// allocate strings); the property under test is boundedness, not zero.
func TestWarmRuntimeAllocsRingSinkBounded(t *testing.T) {
	ring := obs.NewRing(8)
	cfg := DefaultConfig()
	cfg.MaxReports = 1
	cfg.Events = ring
	_, m := buildPipeline(t, allocDetectSrc, cfg)
	eachBackend(t, func(t *testing.T, k backend.Kind) {
		if n := warmAllocsPerRun(t, m, k); n > 500 {
			t.Errorf("warm %v detecting run with ring sink allocates %v/op, want bounded (<= 500)", k, n)
		}
		if ring.Len() > 8 {
			t.Errorf("ring holds %d events, cap 8", ring.Len())
		}
	})
}

// TestWarmRuntimeAllocsNoTracing covers the paper's no-tracing
// configuration (Figures 8 and 10) on the same property.
func TestWarmRuntimeAllocsNoTracing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tracing = false
	_, m := buildPipeline(t, allocSrc, cfg)
	eachBackend(t, func(t *testing.T, k backend.Kind) {
		if n := warmAllocsPerRun(t, m, k); n != 0 {
			t.Errorf("warm %v no-tracing run allocates %v/op, want 0", k, n)
		}
	})
}
