package shadow

import (
	"fmt"
	"math"
	"math/big"

	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
	"positdebug/internal/shadow/oracle"
)

// Config controls the shadow runtime.
type Config struct {
	// Oracle selects the shadow-arithmetic backend: oracle.BigFP
	// (arbitrary precision, governed by Precision), oracle.DD
	// (allocation-free double-double, ~106 bits) or oracle.Residue
	// (float64 estimate + per-op rounding residues, 53 bits). The zero
	// value selects BigFP, so configurations that only set Precision —
	// including ones decoded from pre-oracle JSON — keep their exact
	// historical behavior.
	Oracle oracle.Kind
	// Precision is the bigfp oracle's mantissa precision in bits (the
	// paper evaluates 128, 256 and 512; 256 is the default). Other
	// oracles have fixed precision and ignore it.
	//
	// Deprecated: setting Precision alone is the legacy way to choose a
	// shadow configuration and implies the bigfp oracle. New code should
	// set Oracle explicitly (see ConfigFor / Config.ForOracle).
	Precision uint
	// Tracing enables the DAG metadata (operand pointers, lock-and-key,
	// timestamps). Disabling it reproduces the paper's "no tracing"
	// configuration (Figures 8 and 10): errors are still detected from the
	// shadow values, but no instruction DAGs can be produced.
	Tracing bool
	// ErrBitsThreshold is the per-operation error (in double-ULP bits,
	// §4.2) at which an otherwise-unclassified result is reported. The
	// paper's prototype reads this from an environment variable.
	ErrBitsThreshold int
	// OutputThreshold is the error at which printed/returned values are
	// reported as wrong outputs.
	OutputThreshold int
	// PrecisionLossThreshold is the number of fraction bits an operation
	// must lose (while growing its regime) to be reported.
	PrecisionLossThreshold int
	// MaxReports caps the number of detailed reports kept (counts are
	// always complete).
	MaxReports int
	// MaxDAGDepth caps DAG traversal depth (0 uses the default of 16).
	MaxDAGDepth int
	// MaxShadowBytes budgets the estimated shadow-memory footprint
	// (0 = unlimited). The estimate scales with Precision, so a run that
	// trips the budget can be retried at a lower precision with the same
	// budget — the graceful-degradation path campaign runners rely on.
	// When the budget is exceeded the runtime raises a structured
	// *interp.ResourceExhausted (resource "shadow-memory") that
	// Machine.Run returns as an error.
	MaxShadowBytes int64
	// OnError, when set, is invoked synchronously for each report — the
	// library equivalent of the paper's gdb conditional breakpoints.
	OnError func(*Report)
	// BreakOn, when set and returning true for a report, halts execution
	// at the offending instruction: Machine.Run returns *interp.Stopped
	// carrying the report. This is the paper's "conditional breakpoint
	// depending on the amount of the error" workflow as a library API.
	BreakOn func(*Report) bool
	// Events, when set, receives one obs.EvDetect event per detection —
	// uncapped by MaxReports (use a bounded sink such as obs.Ring to bound
	// memory). Events carry no timestamps, so the stream is deterministic.
	Events obs.Sink
	// Metrics, when set, receives counters and histograms: detections by
	// kind (pd_detections_total{kind=...}), shadowed ops
	// (pd_shadow_ops_total), the per-operation error-bits distribution
	// (pd_op_err_bits) and its per-instruction breakdown
	// (pd_inst_err_bits{inst=...}).
	Metrics *obs.Registry
	// Profile, when set, accumulates per-static-instruction error
	// statistics (error-bits histogram, cancellation severity,
	// saturation/NaR tallies) across runs — the numerical-error profiler's
	// feed. The collector is not reset between runs; snapshot and merge it
	// from the caller (see internal/profile).
	Profile *profile.Collector
}

// DefaultConfig mirrors the paper's default setup: 256-bit shadow
// execution with tracing enabled.
func DefaultConfig() Config {
	return Config{
		Precision:              256,
		Tracing:                true,
		ErrBitsThreshold:       45,
		OutputThreshold:        35,
		PrecisionLossThreshold: 10,
		MaxReports:             32,
		MaxDAGDepth:            16,
	}
}

// ConfigFor returns DefaultConfig retargeted at the given oracle backend.
// precision applies to the bigfp oracle only; 0 keeps the 256-bit default.
func ConfigFor(kind oracle.Kind, precision uint) Config {
	return DefaultConfig().ForOracle(kind, precision)
}

// ForOracle returns c retargeted at kind — the migration path off raw
// Precision-only construction. precision applies to the bigfp oracle only;
// 0 keeps c.Precision.
func (c Config) ForOracle(kind oracle.Kind, precision uint) Config {
	c.Oracle = kind
	if precision != 0 {
		c.Precision = precision
	}
	return c
}

// OracleKind normalizes the configured oracle (empty selects BigFP).
func (c Config) OracleKind() oracle.Kind {
	k, err := oracle.Parse(string(c.Oracle))
	if err != nil {
		return c.Oracle
	}
	return k
}

// NewOracle constructs the configured oracle instance.
func (c Config) NewOracle() (oracle.Oracle, error) {
	return oracle.New(c.Oracle, c.Precision)
}

const maxLockDepth = 1100

// Runtime implements interp.Hooks: the PositDebug runtime when the program
// computes in posits, and the FPSanitizer runtime when it computes in IEEE
// floats. One instance serves one machine at a time.
type Runtime struct {
	mod *ir.Module
	cfg Config
	orc oracle.Oracle

	frames  []*shadowFrame
	pool    []*shadowFrame
	locks   [maxLockDepth]uint64
	lockTop int
	nextKey uint64
	now     uint64

	mem       *shadowMem
	argStack  []TempMeta
	retMeta   TempMeta
	retValid  bool
	flipEpoch uint32

	// pendInj records a corruption a fault injector just applied to the
	// value the next hook event delivers (see interp.InjectionObserver).
	pendInj struct {
		valid         bool
		id            int32
		op            ir.Op
		before, after uint64
	}

	quires map[ir.Type]*shadowQuire

	counts        map[Kind]int
	reports       []*Report
	totalOps      uint64
	flushedOps    uint64
	maxOpErr      int
	outputMaxErr  int
	branchFlips   int
	uninstrWrites uint64

	// Scratch big.Floats for operand decoding.
	sa, sb big.Float
	// Scratch for allocation-free float64 rounding in error checks.
	ulpScratch big.Float
	// Scratch big.Floats bridging oracle values into the 768-bit shadow
	// quire (and one for the shadow fused product), so quire-carrying
	// programs stay allocation-free on the warm path.
	qsA, qsB, qProd big.Float

	// Observability bindings (see Config.Events / Config.Metrics). Metric
	// pointers are resolved once at bind time so the hot path pays one nil
	// check plus an atomic add, never a registry lookup.
	events     obs.Sink
	reg        *obs.Registry
	metOps     *obs.Counter
	metDet     [KindWrongOutput + 1]*obs.Counter
	metErrHist *obs.Histogram
	instHist   map[int32]*obs.Histogram

	// prof, when non-nil, receives per-instruction error statistics from
	// checkOp (see Config.Profile).
	prof *profile.Collector
}

// shadowQuire mirrors the program's quire with a wide accumulator; 768
// mantissa bits exceed the exact range of ⟨32,2⟩ products (481 bits), so
// the shadow fused operations are effectively exact too.
type shadowQuire struct {
	acc   big.Float
	undef bool
}

var (
	_ interp.Hooks             = (*Runtime)(nil)
	_ interp.InjectionObserver = (*Runtime)(nil)
)

// ObserveInjection implements interp.InjectionObserver: a fault injector
// announces that the value delivered by the next hook event was corrupted
// from before to after. Load, Store and PostCall consume the record so
// their clean metadata stays the reference the corruption is judged
// against — the divergence is flagged — instead of being mistaken for an
// uninstrumented write and re-seeded from the corrupted value.
func (r *Runtime) ObserveInjection(id int32, op ir.Op, typ ir.Type, before, after uint64) {
	r.pendInj.valid = true
	r.pendInj.id = id
	r.pendInj.op = op
	r.pendInj.before = before
	r.pendInj.after = after
}

// injectedBefore consumes a pending injection matching this event,
// returning the pre-corruption bits metadata should be compared against.
func (r *Runtime) injectedBefore(id int32, op ir.Op, bits uint64) (uint64, bool) {
	if !r.pendInj.valid || r.pendInj.id != id || r.pendInj.op != op || r.pendInj.after != bits {
		return bits, false
	}
	r.pendInj.valid = false
	return r.pendInj.before, true
}

// Config validation bounds: precisions below the narrowest sensible
// shadow (the paper evaluates down to 128 bits; 64 is the degradation
// floor) or absurdly large ones are configuration mistakes, not
// experiments.
const (
	MinPrecision = 64
	MaxPrecision = 4096
)

// Validate rejects configurations that the runtime would previously have
// patched silently. Campaign sweeps over precision configs fail loudly on
// bad input instead of producing tables at an unintended precision.
func (c Config) Validate() error {
	kind, err := oracle.Parse(string(c.Oracle))
	if err != nil {
		return fmt.Errorf("shadow: %w", err)
	}
	// Precision governs only the bigfp oracle; fixed-precision oracles
	// ignore it, so a stale Precision in a retargeted config is not an
	// error.
	if kind == oracle.BigFP && (c.Precision < MinPrecision || c.Precision > MaxPrecision) {
		return fmt.Errorf("shadow: precision %d out of range [%d, %d]", c.Precision, MinPrecision, MaxPrecision)
	}
	if c.ErrBitsThreshold < 0 {
		return fmt.Errorf("shadow: negative ErrBitsThreshold %d", c.ErrBitsThreshold)
	}
	if c.OutputThreshold < 0 {
		return fmt.Errorf("shadow: negative OutputThreshold %d", c.OutputThreshold)
	}
	if c.PrecisionLossThreshold < 0 {
		return fmt.Errorf("shadow: negative PrecisionLossThreshold %d", c.PrecisionLossThreshold)
	}
	if c.MaxReports < 0 {
		return fmt.Errorf("shadow: negative MaxReports %d", c.MaxReports)
	}
	if c.MaxDAGDepth < 0 {
		return fmt.Errorf("shadow: negative MaxDAGDepth %d", c.MaxDAGDepth)
	}
	if c.MaxShadowBytes < 0 {
		return fmt.Errorf("shadow: negative MaxShadowBytes %d", c.MaxShadowBytes)
	}
	return nil
}

// New returns a runtime for the module, validating the configuration.
// Attach it to a machine via machine.Hooks before running an instrumented
// module.
func New(mod *ir.Module, cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxDAGDepth == 0 {
		cfg.MaxDAGDepth = 16
	}
	orc, err := cfg.NewOracle()
	if err != nil {
		return nil, err
	}
	r := &Runtime{
		mod:    mod,
		cfg:    cfg,
		orc:    orc,
		mem:    newShadowMem(mod.GlobalBase + mod.GlobalSize + interp.DefaultStackSize),
		quires: map[ir.Type]*shadowQuire{},
		counts: map[Kind]int{},
	}
	r.events = cfg.Events
	r.bindMetrics(cfg.Metrics)
	r.prof = cfg.Profile
	return r, nil
}

// SetEvents rebinds the event sink on a warm runtime (per-run tracing in
// campaign workers). A nil sink disables emission.
func (r *Runtime) SetEvents(s obs.Sink) {
	r.events = s
	r.cfg.Events = s
}

// SetMetrics rebinds the metrics registry on a warm runtime, re-resolving
// the cached counter pointers. A nil registry disables metric updates.
func (r *Runtime) SetMetrics(reg *obs.Registry) {
	r.cfg.Metrics = reg
	r.bindMetrics(reg)
}

// SetProfile rebinds the profile collector on a warm runtime. A nil
// collector disables profiling.
func (r *Runtime) SetProfile(c *profile.Collector) {
	r.cfg.Profile = c
	r.prof = c
}

func (r *Runtime) bindMetrics(reg *obs.Registry) {
	r.reg = reg
	if reg == nil {
		r.metOps = nil
		r.metDet = [KindWrongOutput + 1]*obs.Counter{}
		r.metErrHist = nil
		r.instHist = nil
		return
	}
	r.metOps = reg.Counter("pd_shadow_ops_total")
	for k := KindCancellation; k <= KindWrongOutput; k++ {
		r.metDet[k] = reg.Counter(`pd_detections_total{kind="` + k.String() + `"}`)
	}
	r.metErrHist = reg.Histogram("pd_op_err_bits")
	r.instHist = map[int32]*obs.Histogram{}
}

// instHistFor returns the per-instruction error histogram, creating it on
// first observation. The map persists across Reset, so warm runs reach a
// steady state with no per-run allocation.
func (r *Runtime) instHistFor(id int32) *obs.Histogram {
	h, ok := r.instHist[id]
	if !ok {
		h = r.reg.Histogram(`pd_inst_err_bits{inst="` + fmt.Sprint(id) + `"}`)
		r.instHist[id] = h
	}
	return h
}

// NewRuntime is the legacy constructor; it panics on an invalid
// configuration. Prefer New, which reports the validation error.
func NewRuntime(mod *ir.Module, cfg Config) *Runtime {
	r, err := New(mod, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// Reset clears all state at the start of a run. It reuses the shadow-memory
// trie, the frame pool, the quire accumulators and the counts map in place,
// so a Runtime kept warm across runs (one per campaign worker) reaches a
// steady state with no per-run allocation beyond the reports it emits.
func (r *Runtime) Reset() {
	r.frames = r.frames[:0]
	r.lockTop = 0
	r.nextKey = 1
	r.now = 1
	r.mem.reset()
	r.argStack = r.argStack[:0]
	r.retValid = false
	r.flipEpoch = 0
	r.pendInj.valid = false
	for _, q := range r.quires {
		q.acc.SetInt64(0)
		q.undef = false
	}
	clear(r.counts)
	// Summaries hand out the reports slice, so start a fresh one rather
	// than truncating the backing array a previous caller may still hold.
	r.reports = nil
	r.flushOps()
	r.totalOps = 0
	r.flushedOps = 0
	r.maxOpErr = 0
	r.outputMaxErr = 0
	r.branchFlips = 0
	r.uninstrWrites = 0
}

// flushOps forwards the not-yet-exported portion of totalOps to the
// shadow-ops counter. Delta tracking keeps Summary and Reset both safe to
// call without double-counting.
func (r *Runtime) flushOps() {
	if r.metOps != nil && r.totalOps > r.flushedOps {
		r.metOps.Add(int64(r.totalOps - r.flushedOps))
		r.flushedOps = r.totalOps
	}
}

// Summary returns the aggregated detections of the last run.
func (r *Runtime) Summary() *Summary {
	r.flushOps()
	counts := make(map[Kind]int, len(r.counts))
	for k, v := range r.counts {
		counts[k] = v
	}
	return &Summary{
		Counts:               counts,
		TotalOps:             r.totalOps,
		MaxOpErrBits:         r.maxOpErr,
		OutputMaxErrBits:     r.outputMaxErr,
		BranchFlips:          r.branchFlips,
		UninstrumentedWrites: r.uninstrWrites,
		Reports:              r.reports,
	}
}

// ShadowMemPages reports allocated shadow pages (ablation instrumentation).
func (r *Runtime) ShadowMemPages() int { return r.mem.pageCount() }

// entryBytes estimates the shadow-memory cost of one MemMeta cell: the
// struct itself plus the selected oracle's real per-entry footprint —
// bigfp's lazily grown mantissa scales with Precision, dd is a fixed
// 16-byte pair, residue a single float64. The estimate only needs to be
// deterministic and monotone across degradation steps so the budget
// shrinks when a degraded retry drops precision or switches to a cheaper
// oracle.
func (r *Runtime) entryBytes() int64 { return 48 + r.orc.EntryBytes() }

// OracleKind reports the backend this runtime shadows with.
func (r *Runtime) OracleKind() oracle.Kind { return r.orc.Kind() }

// ShadowMemBytes reports the estimated shadow-memory footprint.
func (r *Runtime) ShadowMemBytes() int64 {
	return int64(r.mem.pageCount()) * pageSize * r.entryBytes()
}

// memAt returns the metadata cell for addr, enforcing the shadow-memory
// budget: exceeding it raises *interp.ResourceExhausted, which the machine
// recovers into a structured error (the trigger for precision-degraded
// retries).
func (r *Runtime) memAt(addr uint32) *MemMeta {
	mm := r.mem.get(addr)
	if r.cfg.MaxShadowBytes > 0 {
		if used := r.ShadowMemBytes(); used > r.cfg.MaxShadowBytes {
			panic(&interp.ResourceExhausted{
				Resource: interp.ResShadowMemory,
				Limit:    r.cfg.MaxShadowBytes,
				Used:     used,
			})
		}
	}
	return mm
}

func (r *Runtime) cur() *shadowFrame { return r.frames[len(r.frames)-1] }

func (r *Runtime) temp(reg int32) *TempMeta { return &r.cur().temps[reg] }

// EnterFunc pushes a shadow frame, allocates its lock-and-key, and binds
// parameter metadata from the shadow argument stack (or from the program
// values for the entry call).
func (r *Runtime) EnterFunc(fn *ir.Func, argVals []uint64) {
	if r.lockTop+1 >= maxLockDepth {
		// Beyond instrumentable depth the machine traps soon anyway.
		r.lockTop++
	} else {
		r.lockTop++
	}
	r.locks[r.lockTop] = r.nextKey
	key := r.nextKey
	r.nextKey++

	var f *shadowFrame
	if n := len(r.pool); n > 0 {
		f = r.pool[n-1]
		r.pool = r.pool[:n-1]
	} else {
		f = &shadowFrame{}
	}
	f.fn = fn
	f.lockIdx = r.lockTop
	f.reset(fn.NumRegs)
	r.frames = append(r.frames, f)

	// Lock-and-key only guards DAG pointer traversal; the no-tracing
	// configuration (Fig 8/10) skips the whole mechanism.
	if r.cfg.Tracing {
		lock := &r.locks[r.lockTop]
		for i := range f.temps {
			f.temps[i].lock = lock
			f.temps[i].key = key
		}
	}

	// Bind parameters: the caller's PreCall pushed one entry per argument.
	n := len(fn.Params)
	if len(r.argStack) >= n && n > 0 {
		base := len(r.argStack) - n
		for i := 0; i < n; i++ {
			src := &r.argStack[base+i]
			if !fn.Params[i].IsNumeric() {
				continue
			}
			dst := &f.temps[i]
			if src.written {
				r.copyMeta(dst, src)
			} else {
				r.initFromProgram(dst, fn.Params[i], argVals[i])
			}
		}
		r.argStack = r.argStack[:base]
	} else {
		// Entry call (no PreCall): seed parameters from program values.
		for i := 0; i < n && i < len(argVals); i++ {
			if fn.Params[i].IsNumeric() {
				r.initFromProgram(&f.temps[i], fn.Params[i], argVals[i])
			}
		}
	}
}

// LeaveFunc invalidates the frame's lock and recycles the frame.
func (r *Runtime) LeaveFunc() {
	f := r.cur()
	r.locks[f.lockIdx] = 0 // keys are never reused, so 0 invalidates
	r.lockTop--
	r.frames = r.frames[:len(r.frames)-1]
	r.pool = append(r.pool, f)
}

// copyMeta copies metadata content (assignment of temporaries, §3.3),
// keeping the destination's lock/key and refreshing the timestamp.
func (r *Runtime) copyMeta(dst, src *TempMeta) {
	r.orc.Copy(&dst.Real, &src.Real)
	dst.Undef = src.Undef
	dst.Prog = src.Prog
	dst.Inst = src.Inst
	dst.Err = src.Err
	if r.cfg.Tracing {
		dst.Op1 = src.Op1
		dst.Op2 = src.Op2
		dst.Time = r.tick()
	}
	dst.written = true
}

// initFromProgram seeds metadata from the program's own value — used for
// entry arguments, values written by uninstrumented code, and resync after
// branch flips.
func (r *Runtime) initFromProgram(t *TempMeta, typ ir.Type, bits uint64) {
	f := interp.ToFloat64(typ, bits)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		t.Undef = true
		r.orc.SetInt64(&t.Real, 0)
	} else {
		t.Undef = false
		r.orc.SetFloat64(&t.Real, f)
	}
	t.Prog = bits
	t.Inst = -1
	t.Err = 0
	if r.cfg.Tracing {
		t.Op1 = mdRef{}
		t.Op2 = mdRef{}
		t.Time = r.tick()
	}
	t.written = true
}

// ensure returns the metadata for a register, seeding it from the program
// value if the shadow has not seen it yet.
func (r *Runtime) ensure(reg int32, typ ir.Type, bits uint64) *TempMeta {
	t := r.temp(reg)
	if !t.written || t.Prog != bits {
		// Unseen, or the register was rewritten by an untracked
		// instruction: fall back to the program's value.
		r.initFromProgram(t, typ, bits)
	}
	return t
}

func (r *Runtime) tick() uint64 {
	r.now++
	return r.now
}

// Const seeds a literal's metadata with the exact source value (§3.3
// "creation of temporary constants").
func (r *Runtime) Const(id int32, typ ir.Type, dst int32, bits uint64) {
	t := r.temp(dst)
	meta := r.mod.Meta(id)
	r.orc.SetFloat64(&t.Real, meta.Const)
	t.Undef = false
	t.Prog = bits
	t.Inst = id
	t.Err = 0
	if r.cfg.Tracing {
		t.Op1 = mdRef{}
		t.Op2 = mdRef{}
		t.Time = r.tick()
	}
	t.written = true
}

// Mov copies metadata on register copies.
func (r *Runtime) Mov(id int32, typ ir.Type, dst, src int32, bits uint64) {
	s := r.ensure(src, typ, bits)
	d := r.temp(dst)
	r.copyMeta(d, s)
}

// Bin performs the shadow binary operation and runs error detection
// (§3.3 "posit binary and unary operations", §3.4).
func (r *Runtime) Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	r.binImpl(id, kind, typ, dst, a, b, dstVal, aVal, bVal, false)
}

// binImpl is Bin with the detection pass selectable: the regular decode-
// per-check path (fast=false, the tree-walker's contract) or the
// single-decode fast path (fast=true, reached only through FastBin). Both
// produce byte-identical observable behavior.
func (r *Runtime) binImpl(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64, fast bool) {
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	r.binCore(id, kind, typ, dst, dstVal, ta, tb, fast)
}

// binCore is binImpl past operand resolution: FastBinP32 has already
// ensured the operand temps (it needed their decodes to compute the
// result), so it enters here directly rather than re-running ensure.
func (r *Runtime) binCore(id int32, kind ir.BinKind, typ ir.Type, dst int32, dstVal uint64, ta, tb *TempMeta, fast bool) {
	d := r.temp(dst)

	undef := ta.Undef || tb.Undef
	if !undef {
		switch kind {
		case ir.BinAdd:
			r.orc.Add(&d.Real, &ta.Real, &tb.Real)
		case ir.BinSub:
			r.orc.Sub(&d.Real, &ta.Real, &tb.Real)
		case ir.BinMul:
			r.orc.Mul(&d.Real, &ta.Real, &tb.Real)
		case ir.BinDiv:
			bad := r.orc.Div(&d.Real, &ta.Real, &tb.Real)
			undef = undef || bad
		}
	}
	if undef {
		r.orc.SetInt64(&d.Real, 0)
	}
	d.Undef = undef
	d.Prog = dstVal
	d.Inst = id
	d.written = true
	if r.cfg.Tracing {
		d.Op1 = ta.ref()
		d.Op2 = tb.ref()
		d.Time = r.tick()
	}
	r.totalOps++
	if fast {
		r.fastCheckOp(id, typ, opSub(kind), d, ta, tb)
	} else {
		r.checkOp(id, typ, opSub(kind), d, ta, tb)
	}
}

func opSub(kind ir.BinKind) bool { return kind == ir.BinSub || kind == ir.BinAdd }

// Un performs the shadow unary operation.
func (r *Runtime) Un(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {
	r.unImpl(id, kind, typ, dst, a, dstVal, aVal, false)
}

func (r *Runtime) unImpl(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64, fast bool) {
	ta := r.ensure(a, typ, aVal)
	d := r.temp(dst)
	undef := ta.Undef
	if !undef {
		switch kind {
		case ir.UnNeg:
			r.orc.Neg(&d.Real, &ta.Real)
		case ir.UnAbs:
			r.orc.Abs(&d.Real, &ta.Real)
		case ir.UnSqrt:
			bad := r.orc.Sqrt(&d.Real, &ta.Real)
			undef = undef || bad
		default:
			r.orc.Copy(&d.Real, &ta.Real)
		}
	}
	if undef {
		r.orc.SetInt64(&d.Real, 0)
	}
	d.Undef = undef
	d.Prog = dstVal
	d.Inst = id
	d.written = true
	if r.cfg.Tracing {
		d.Op1 = ta.ref()
		d.Op2 = mdRef{}
		d.Time = r.tick()
	}
	r.totalOps++
	if fast {
		r.fastCheckOp(id, typ, false, d, ta, nil)
	} else {
		r.checkOp(id, typ, false, d, ta, nil)
	}
}

// Cmp compares in the shadow execution and reports branch flips; after a
// flip the shadow follows the program's path and re-initializes metadata
// from the program's values (§3.1).
func (r *Runtime) Cmp(id int32, pred ir.CmpPred, typ ir.Type, a, b int32, aVal, bVal uint64, outcome bool) {
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	if ta.Undef || tb.Undef {
		return
	}
	c := r.orc.Cmp(&ta.Real, &tb.Real)
	var shadowOutcome bool
	switch pred {
	case ir.CmpEq:
		shadowOutcome = c == 0
	case ir.CmpNe:
		shadowOutcome = c != 0
	case ir.CmpLt:
		shadowOutcome = c < 0
	case ir.CmpLe:
		shadowOutcome = c <= 0
	case ir.CmpGt:
		shadowOutcome = c > 0
	case ir.CmpGe:
		shadowOutcome = c >= 0
	}
	if shadowOutcome == outcome {
		return
	}
	r.branchFlips++
	r.count(KindBranchFlip)
	r.emit(KindBranchFlip, id, errInfo{
		errBits: maxInt(ta.Err, tb.Err),
		program: interp.FormatValue(typ, aVal) + " vs " + interp.FormatValue(typ, bVal),
		shadow:  r.orc.Format(&ta.Real) + " vs " + r.orc.Format(&tb.Real),
		root:    pickRoot(ta, tb),
	})
	r.resyncAfterFlip()
}

func pickRoot(ta, tb *TempMeta) *TempMeta {
	if ta.Err >= tb.Err {
		return ta
	}
	return tb
}

// resyncAfterFlip re-initializes the current frame's temporaries from the
// program's values and marks shadow memory for lazy resync, so feedback
// stays meaningful on the program's (divergent) path.
func (r *Runtime) resyncAfterFlip() {
	r.flipEpoch++
	f := r.cur()
	for i := range f.temps {
		t := &f.temps[i]
		if !t.written {
			continue
		}
		typ := r.typeOfInst(t.Inst)
		if typ == ir.Void {
			// Unknown producer: re-seed from the recorded program bits
			// assuming the dominant posit type; conservative but safe.
			continue
		}
		r.initFromProgram(t, typ, t.Prog)
	}
}

func (r *Runtime) typeOfInst(id int32) ir.Type {
	if id < 0 {
		return ir.Void
	}
	return r.mod.Meta(id).Type
}

// Cast propagates metadata through conversions and checks numeric→integer
// casts against the shadow execution (§3.4 "casts to integers").
func (r *Runtime) Cast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {
	r.castImpl(id, from, to, dst, src, dstVal, srcVal, false)
}

func (r *Runtime) castImpl(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64, fast bool) {
	switch {
	case from.IsNumeric() && to.IsNumeric():
		s := r.ensure(src, from, srcVal)
		d := r.temp(dst)
		r.copyMeta(d, s)
		d.Prog = dstVal
		d.Inst = id
		r.totalOps++
		if fast {
			r.fastCheckOp(id, to, false, d, s, nil)
		} else {
			r.checkOp(id, to, false, d, s, nil)
		}
	case from.IsNumeric() && to == ir.I64:
		s := r.ensure(src, from, srcVal)
		if s.Undef {
			return
		}
		shadowInt := r.orc.Int64(&s.Real)
		if shadowInt != int64(dstVal) {
			r.count(KindWrongCast)
			r.emit(KindWrongCast, id, errInfo{
				errBits: int(s.Err),
				program: interp.FormatValue(ir.I64, dstVal),
				shadow:  interp.FormatValue(ir.I64, uint64(shadowInt)),
				root:    s,
			})
		}
	case from == ir.I64 && to.IsNumeric():
		d := r.temp(dst)
		r.orc.SetInt64(&d.Real, int64(srcVal))
		d.Undef = false
		d.Prog = dstVal
		d.Inst = id
		d.Err = 0
		if r.cfg.Tracing {
			d.Op1 = mdRef{}
			d.Op2 = mdRef{}
			d.Time = r.tick()
		}
		d.written = true
		r.totalOps++
		if fast {
			r.fastCheckOp(id, to, false, d, nil, nil)
		} else {
			r.checkOp(id, to, false, d, nil, nil)
		}
	}
}

// Load propagates metadata from shadow memory to a temporary (§3.3
// "memory loads"), detecting uninstrumented writes (§4.1) and applying
// lazy post-flip resynchronization.
func (r *Runtime) Load(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {
	r.loadImpl(id, typ, dst, addr, bits)
}

// loadImpl is Load's body; it returns the touched cells so the fast path
// (fastpath.go) can move the memoized decode between them.
func (r *Runtime) loadImpl(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) (*MemMeta, *TempMeta) {
	// An injected fault corrupts the loaded register, not memory: match the
	// memory metadata against the clean pre-corruption bits so the fault is
	// flagged below instead of resynced away as an uninstrumented write.
	clean, injected := r.injectedBefore(id, ir.OpShadowLoad, bits)
	mm := r.memAt(addr)
	d := r.temp(dst)
	switch {
	case !mm.set:
		r.initFromProgram(d, typ, clean)
		d.Inst = id
	case mm.Prog != clean:
		// Some untracked write changed program memory: trust the program.
		r.uninstrWrites++
		r.initFromProgram(d, typ, clean)
		d.Inst = id
		// Refresh the stale memory metadata too.
		r.seedMemFromProgram(mm, typ, clean)
	case mm.epoch < r.flipEpoch:
		// Post-branch-flip lazy resync.
		r.initFromProgram(d, typ, clean)
		d.Inst = id
		r.seedMemFromProgram(mm, typ, clean)
	default:
		r.orc.Copy(&d.Real, &mm.Real)
		d.Undef = mm.Undef
		d.Prog = clean
		d.Inst = mm.Inst
		d.Err = mm.Err
		if r.cfg.Tracing {
			// If the last writer's frame is still live, inherit its operand
			// pointers so the DAG can cross the store/load (Figure 4).
			if mm.Writer.valid() {
				d.Op1 = mm.Writer.md.Op1
				d.Op2 = mm.Writer.md.Op2
			} else {
				d.Op1 = mdRef{}
				d.Op2 = mdRef{}
			}
			d.Time = r.tick()
		}
		d.written = true
	}
	if injected {
		// The register the program computes with holds the corrupted bits;
		// the shadow just installed stays clean. Record and judge the
		// divergence exactly like an arithmetic result.
		d.Prog = bits
		r.checkOp(id, typ, false, d, nil, nil)
	}
	return mm, d
}

func (r *Runtime) seedMemFromProgram(mm *MemMeta, typ ir.Type, bits uint64) {
	f := interp.ToFloat64(typ, bits)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		mm.Undef = true
		r.orc.SetInt64(&mm.Real, 0)
	} else {
		mm.Undef = false
		r.orc.SetFloat64(&mm.Real, f)
	}
	mm.Prog = bits
	mm.Inst = -1
	mm.Err = 0
	mm.Writer = mdRef{}
	mm.epoch = r.flipEpoch
	mm.set = true
}

// Store propagates metadata from a temporary to shadow memory (§3.3
// "memory stores").
func (r *Runtime) Store(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {
	r.storeImpl(id, typ, addr, src, bits)
}

// storeImpl is Store's body; it returns the touched cells so the fast path
// can move the memoized decode between them.
func (r *Runtime) storeImpl(id int32, typ ir.Type, addr uint32, src int32, bits uint64) (*MemMeta, *TempMeta) {
	// An injected fault corrupts the stored memory cell, not the source
	// register: bind the register metadata by its clean value, then record
	// the corrupted bits as the cell's program value so every later load
	// observes the divergence against the clean shadow.
	clean, injected := r.injectedBefore(id, ir.OpShadowStore, bits)
	s := r.ensure(src, typ, clean)
	mm := r.memAt(addr)
	r.orc.Copy(&mm.Real, &s.Real)
	mm.Undef = s.Undef
	mm.Prog = bits
	mm.Inst = s.Inst
	mm.Err = s.Err
	if r.cfg.Tracing {
		mm.Writer = s.ref()
	} else {
		mm.Writer = mdRef{}
	}
	mm.epoch = r.flipEpoch
	mm.set = true
	if injected {
		var tmp TempMeta
		r.copyMeta(&tmp, s)
		tmp.Prog = bits
		r.checkOp(id, typ, false, &tmp, nil, nil)
		mm.Err = tmp.Err
	}
	return mm, s
}

// PreCall pushes argument metadata onto the shadow argument stack (§3.2
// "shadow stack to store metadata for arguments and return values").
// Entries are written into the stack slots in place so the slots' lazily
// grown mantissas are reused call after call instead of reallocated.
func (r *Runtime) PreCall(callee *ir.Func, args []int32, argVals []uint64) {
	for i, reg := range args {
		n := len(r.argStack)
		if n < cap(r.argStack) {
			r.argStack = r.argStack[:n+1]
		} else {
			r.argStack = append(r.argStack, TempMeta{})
		}
		entry := &r.argStack[n]
		entry.written = false
		entry.Undef = false
		entry.Op1 = mdRef{}
		entry.Op2 = mdRef{}
		if callee.Params[i].IsNumeric() {
			src := r.ensure(reg, callee.Params[i], argVals[i])
			r.orc.Copy(&entry.Real, &src.Real)
			entry.Undef = src.Undef
			entry.Prog = src.Prog
			entry.Inst = src.Inst
			entry.Err = src.Err
			if r.cfg.Tracing {
				entry.Op1 = src.Op1
				entry.Op2 = src.Op2
			}
			entry.written = true
		}
	}
}

// Ret records the return value's metadata before the frame dies.
func (r *Runtime) Ret(typ ir.Type, src int32, bits uint64) {
	r.retValid = false
	if src < 0 || !typ.IsNumeric() {
		if len(r.frames) == 1 {
			// Entry function returning a non-numeric value: nothing to do.
			r.retValid = false
		}
		return
	}
	s := r.ensure(src, typ, bits)
	r.orc.Copy(&r.retMeta.Real, &s.Real)
	r.retMeta.Undef = s.Undef
	r.retMeta.Prog = s.Prog
	r.retMeta.Inst = s.Inst
	r.retMeta.Err = s.Err
	if r.cfg.Tracing {
		r.retMeta.Op1 = s.Op1
		r.retMeta.Op2 = s.Op2
	}
	r.retMeta.written = true
	r.retValid = true
	if len(r.frames) == 1 {
		// The entry function's return is a program output.
		r.checkOutput(typ, s)
	}
}

// PostCall binds the returned metadata into the caller's destination.
func (r *Runtime) PostCall(id int32, typ ir.Type, dst int32, bits uint64) {
	if dst < 0 || !typ.IsNumeric() {
		return
	}
	// An injected fault corrupts the register the return value landed in,
	// after the callee's Ret recorded clean metadata: match on the clean
	// bits and flag the divergence instead of treating the callee as
	// untracked and re-seeding from the corruption.
	clean, injected := r.injectedBefore(id, ir.OpShadowPostCall, bits)
	d := r.temp(dst)
	if r.retValid && r.retMeta.Prog == clean {
		r.copyMeta(d, &r.retMeta)
		d.Inst = r.retMeta.Inst
	} else {
		// Callee was untracked (or returned through an untracked path).
		r.initFromProgram(d, typ, clean)
		d.Inst = id
	}
	r.retValid = false
	if injected {
		d.Prog = bits
		r.checkOp(id, typ, false, d, nil, nil)
	}
}

// Print checks program outputs against the shadow execution (§2.2 "wrong
// outputs").
func (r *Runtime) Print(id int32, typ ir.Type, src int32, bits uint64) {
	if !typ.IsNumeric() {
		return
	}
	s := r.ensure(src, typ, bits)
	r.checkOutputAt(id, typ, s)
}

func (r *Runtime) checkOutput(typ ir.Type, s *TempMeta) {
	r.checkOutputAt(s.Inst, typ, s)
}

// FMA performs the fused multiply-add in the shadow execution: at the
// shadow precision the product+add rounds once, matching the program's
// single-rounding semantics.
func (r *Runtime) FMA(id int32, typ ir.Type, dst, a, b, c int32, dstVal, aVal, bVal, cVal uint64) {
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	tc := r.ensure(c, typ, cVal)
	d := r.temp(dst)
	undef := ta.Undef || tb.Undef || tc.Undef
	if !undef {
		r.orc.FMA(&d.Real, &ta.Real, &tb.Real, &tc.Real)
	} else {
		r.orc.SetInt64(&d.Real, 0)
	}
	d.Undef = undef
	d.Prog = dstVal
	d.Inst = id
	d.written = true
	if r.cfg.Tracing {
		// Two operand slots: point at the product inputs; the addend is
		// typically the accumulator this value overwrites next.
		d.Op1 = ta.ref()
		d.Op2 = tc.ref()
		d.Time = r.tick()
	}
	r.totalOps++
	r.checkOp(id, typ, true, d, ta, tc)
}

// QClear resets all shadow quires.
func (r *Runtime) QClear(typ ir.Type) {
	for _, q := range r.quires {
		q.acc.SetPrec(768).SetInt64(0)
		q.undef = false
	}
}

func (r *Runtime) squire(typ ir.Type) *shadowQuire {
	q, ok := r.quires[typ]
	if !ok {
		q = &shadowQuire{}
		q.acc.SetPrec(768).SetMode(big.ToNearestEven)
		r.quires[typ] = q
	}
	return q
}

// QAdd mirrors quire accumulation with shadow operand values.
func (r *Runtime) QAdd(typ ir.Type, a int32, aVal uint64, negate bool) {
	q := r.squire(typ)
	ta := r.ensure(a, typ, aVal)
	if ta.Undef {
		q.undef = true
		return
	}
	r.orc.Big(&r.qsA, &ta.Real)
	if negate {
		q.acc.Sub(&q.acc, &r.qsA)
	} else {
		q.acc.Add(&q.acc, &r.qsA)
	}
}

// QMAdd mirrors fused multiply-accumulate with shadow operand values.
func (r *Runtime) QMAdd(typ ir.Type, a, b int32, aVal, bVal uint64, negate bool) {
	q := r.squire(typ)
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	if ta.Undef || tb.Undef {
		q.undef = true
		return
	}
	r.orc.Big(&r.qsA, &ta.Real)
	r.orc.Big(&r.qsB, &tb.Real)
	r.qProd.SetPrec(768).Mul(&r.qsA, &r.qsB)
	if negate {
		q.acc.Sub(&q.acc, &r.qProd)
	} else {
		q.acc.Add(&q.acc, &r.qProd)
	}
}

// QVal seeds the rounded quire value's metadata and checks its error.
func (r *Runtime) QVal(id int32, typ ir.Type, dst int32, bits uint64) {
	q := r.squire(typ)
	d := r.temp(dst)
	if q.undef {
		d.Undef = true
		r.orc.SetInt64(&d.Real, 0)
	} else {
		d.Undef = false
		r.orc.SetBig(&d.Real, &q.acc)
	}
	d.Prog = bits
	d.Inst = id
	if r.cfg.Tracing {
		d.Op1 = mdRef{}
		d.Op2 = mdRef{}
		d.Time = r.tick()
	}
	d.written = true
	r.totalOps++
	r.checkOp(id, typ, false, d, nil, nil)
}

func maxInt(a, b int32) int {
	if a > b {
		return int(a)
	}
	return int(b)
}
