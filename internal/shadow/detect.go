package shadow

import (
	"math"

	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/obs"
	"positdebug/internal/posit"
	"positdebug/internal/profile"
	"positdebug/internal/ulp"
)

// errInfo carries the data needed to materialize a Report.
type errInfo struct {
	errBits int
	ulps    uint64
	program string
	shadow  string
	root    *TempMeta
}

func (r *Runtime) count(k Kind) {
	r.counts[k]++
	if c := r.metDet[k]; c != nil {
		c.Inc()
	}
}

// emit materializes a detailed report (respecting the cap) and invokes the
// user callback. The event stream, when bound, sees every detection — it is
// not subject to MaxReports; a bounded sink (obs.Ring) bounds memory
// instead.
func (r *Runtime) emit(k Kind, inst int32, info errInfo) {
	if r.events != nil {
		em := r.mod.Meta(inst)
		e := obs.NewEvent(obs.EvDetect)
		e.Detect = k.String()
		e.Inst = inst
		e.Func = em.Func
		e.Pos = metaPos(em)
		e.ErrBits = info.errBits
		e.Program = info.program
		e.Shadow = info.shadow
		r.events.Emit(e)
	}
	if r.cfg.OnError == nil && r.cfg.MaxReports > 0 && len(r.reports) >= r.cfg.MaxReports {
		return
	}
	meta := r.mod.Meta(inst)
	rep := &Report{
		Kind:    k,
		Inst:    inst,
		Func:    meta.Func,
		Pos:     metaPos(meta),
		Text:    meta.Text,
		ErrBits: info.errBits,
		ULPs:    info.ulps,
		Program: info.program,
		Shadow:  info.shadow,
	}
	if r.cfg.Tracing && info.root != nil {
		rep.DAG = r.buildDAG(info.root)
	}
	if r.cfg.MaxReports == 0 || len(r.reports) < r.cfg.MaxReports {
		r.reports = append(r.reports, rep)
	}
	if r.cfg.OnError != nil {
		r.cfg.OnError(rep)
	}
	if r.cfg.BreakOn != nil && r.cfg.BreakOn(rep) {
		panic(&interp.Stopped{Reason: rep})
	}
}

// checkOp classifies the error of a freshly produced value (§3.4). subLike
// marks additive operations, the only ones that can cancel.
func (r *Runtime) checkOp(id int32, typ ir.Type, subLike bool, d, ta, tb *TempMeta) {
	progF := interp.ToFloat64(typ, d.Prog)

	// Exceptions first: the program produced NaR/NaN/Inf from operands
	// that were still finite. (NaR flowing through later operations is the
	// same exception, not a new one.)
	progUndef := math.IsNaN(progF) || math.IsInf(progF, 0)
	if progUndef {
		opsWereFinite := true
		for _, op := range []*TempMeta{ta, tb} {
			if op == nil {
				continue
			}
			of := interp.ToFloat64(typ, op.Prog)
			if math.IsNaN(of) || math.IsInf(of, 0) {
				opsWereFinite = false
			}
		}
		if opsWereFinite {
			r.count(KindNaR)
			if r.prof != nil {
				r.prof.Checked(id, 64)
				r.prof.Detect(id, profile.DetectNaR, 0)
			}
			r.emit(KindNaR, id, errInfo{
				errBits: 64,
				program: interp.FormatValue(typ, d.Prog),
				shadow:  r.orc.Format(&d.Real),
				root:    d,
			})
			d.Err = 64
		}
		return
	}
	if d.Undef {
		// Shadow blew up (divide by shadow-zero, etc.) while the program
		// kept a finite value; nothing meaningful to compare.
		return
	}

	ulps := r.orc.Ulps(progF, &d.Real, &r.ulpScratch)
	bits := ulp.Bits(ulps)
	d.Err = int32(bits)
	if bits > r.maxOpErr {
		r.maxOpErr = bits
	}
	if r.metErrHist != nil {
		r.metErrHist.Observe(bits)
		if id >= 0 {
			r.instHistFor(id).Observe(bits)
		}
	}
	if r.prof != nil {
		r.prof.Checked(id, bits)
	}

	// Catastrophic cancellation (§3.4): cancelled leading bits AND the
	// computed result at least a factor of ε=2 away from the real result.
	if subLike && ta != nil && tb != nil && !ta.Undef && !tb.Undef {
		if cb := cancelledBits(typ, ta.Prog, tb.Prog, d.Prog); cb > 0 && factorTwoOff(progF, r.orc.Float64(&d.Real), r.orc.Sign(&d.Real)) {
			r.count(KindCancellation)
			if r.prof != nil {
				r.prof.Detect(id, profile.DetectCancellation, cb)
			}
			r.emit(KindCancellation, id, errInfo{
				errBits: bits, ulps: ulps,
				program: interp.FormatValue(typ, d.Prog),
				shadow:  r.orc.Format(&d.Real),
				root:    d,
			})
			return
		}
	}

	if typ.IsPosit() {
		cfg := typ.PositConfig()
		pb := posit.Bits(d.Prog)
		// Saturation: the operation produced maxpos/minpos magnitude while
		// the real value disagrees — a silently hidden overflow/underflow.
		if (cfg.IsMaxMag(pb) || cfg.IsMinMag(pb)) && bits > 0 {
			r.count(KindSaturation)
			if r.prof != nil {
				r.prof.Detect(id, profile.DetectSaturation, 0)
			}
			r.emit(KindSaturation, id, errInfo{
				errBits: bits, ulps: ulps,
				program: interp.FormatValue(typ, d.Prog),
				shadow:  r.orc.Format(&d.Real),
				root:    d,
			})
			return
		}
		// Loss of precision bits: the result's regime grew past both
		// operands', shrinking the fraction beyond the threshold (§3.4).
		if ta != nil && r.cfg.PrecisionLossThreshold > 0 {
			if lost := fracBitsLost(cfg, d.Prog, ta, tb); lost >= r.cfg.PrecisionLossThreshold {
				r.count(KindPrecisionLoss)
				r.emit(KindPrecisionLoss, id, errInfo{
					errBits: bits, ulps: ulps,
					program: interp.FormatValue(typ, d.Prog),
					shadow:  r.orc.Format(&d.Real),
					root:    d,
				})
				return
			}
		}
	}

	if r.cfg.ErrBitsThreshold > 0 && bits >= r.cfg.ErrBitsThreshold {
		r.count(KindHighError)
		r.emit(KindHighError, id, errInfo{
			errBits: bits, ulps: ulps,
			program: interp.FormatValue(typ, d.Prog),
			shadow:  r.orc.Format(&d.Real),
			root:    d,
		})
	}
}

// cancelledBits computes cbits = max(exp(a), exp(b)) − exp(result): the
// number of leading bits the additive operation cancelled. Zero results
// with nonzero operands cancel everything (returns a large count).
func cancelledBits(typ ir.Type, aBits, bBits, resBits uint64) int {
	ea, aZero := valueExp(typ, aBits)
	eb, bZero := valueExp(typ, bBits)
	er, rZero := valueExp(typ, resBits)
	if aZero || bZero {
		return 0 // nothing to cancel
	}
	top := ea
	if eb > top {
		top = eb
	}
	if rZero {
		return 64
	}
	return top - er
}

// valueExp returns the binary exponent of a program value and whether it is
// zero (or NaR/NaN, treated as zero for cancellation purposes).
func valueExp(typ ir.Type, bits uint64) (int, bool) {
	f := interp.ToFloat64(typ, bits)
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return 0, true
	}
	return math.Ilogb(f), false
}

// factorTwoOff implements the paper's ε test: v ≥ 2r or v ≤ r/2 on
// magnitudes, with the degenerate zero cases counted as catastrophic. It
// takes the shadow value pre-rounded to float64 (plus its exact sign) so
// one implementation serves every oracle; for bigfp this matches the old
// big.Float comparison because round-to-nearest preserves magnitude order
// and |fl(x)| == fl(|x|).
func factorTwoOff(computed, shadowF float64, shadowSign int) bool {
	v := math.Abs(computed)
	if shadowSign == 0 {
		return v != 0
	}
	rf := math.Abs(shadowF)
	if v == 0 {
		return true
	}
	// Sign disagreement is at least as bad as a factor-2 error.
	if (computed < 0) != (shadowSign < 0) {
		return true
	}
	return v >= 2*rf || v <= rf/2
}

// fracBitsLost computes how many fraction bits the result lost relative to
// its best operand when its regime grew (tapered-precision loss).
func fracBitsLost(cfg posit.Config, resBits uint64, ta, tb *TempMeta) int {
	pr := posit.Bits(resBits)
	if pr == 0 || cfg.IsNaR(pr) {
		return 0
	}
	dr := cfg.Decode(cfg.Abs(pr))
	bestFrac := -1
	maxReg := 0
	for _, op := range []*TempMeta{ta, tb} {
		if op == nil {
			continue
		}
		pb := posit.Bits(op.Prog)
		if pb == 0 || cfg.IsNaR(pb) {
			continue
		}
		od := cfg.Decode(cfg.Abs(pb))
		if od.FracBits > bestFrac {
			bestFrac = od.FracBits
		}
		if od.RegimeBits > maxReg {
			maxReg = od.RegimeBits
		}
	}
	if bestFrac < 0 || dr.RegimeBits <= maxReg {
		return 0
	}
	return bestFrac - dr.FracBits
}

// checkOutputAt applies the output threshold to printed/returned values.
func (r *Runtime) checkOutputAt(id int32, typ ir.Type, s *TempMeta) {
	progF := interp.ToFloat64(typ, s.Prog)
	if s.Undef {
		return
	}
	if math.IsNaN(progF) || math.IsInf(progF, 0) {
		r.count(KindWrongOutput)
		r.emit(KindWrongOutput, id, errInfo{
			errBits: 64,
			program: interp.FormatValue(typ, s.Prog),
			shadow:  r.orc.Format(&s.Real),
			root:    s,
		})
		if r.outputMaxErr < 64 {
			r.outputMaxErr = 64
		}
		return
	}
	ulps := r.orc.Ulps(progF, &s.Real, &r.ulpScratch)
	bits := ulp.Bits(ulps)
	if bits > r.outputMaxErr {
		r.outputMaxErr = bits
	}
	if r.cfg.OutputThreshold > 0 && bits >= r.cfg.OutputThreshold {
		r.count(KindWrongOutput)
		r.emit(KindWrongOutput, id, errInfo{
			errBits: bits, ulps: ulps,
			program: interp.FormatValue(typ, s.Prog),
			shadow:  r.orc.Format(&s.Real),
			root:    s,
		})
	}
}
