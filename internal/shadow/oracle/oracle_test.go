package oracle_test

import (
	"math"
	"math/big"
	"testing"

	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/posit"
	"positdebug/internal/shadow/oracle"
)

// mustNew builds an oracle or fails the test.
func mustNew(t *testing.T, kind oracle.Kind, prec uint) oracle.Oracle {
	t.Helper()
	o, err := oracle.New(kind, prec)
	if err != nil {
		t.Fatalf("New(%s): %v", kind, err)
	}
	return o
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want oracle.Kind
		ok   bool
	}{
		{"", oracle.BigFP, true},
		{"bigfp", oracle.BigFP, true},
		{"dd", oracle.DD, true},
		{"residue", oracle.Residue, true},
		{"mpfr", "", false},
	} {
		got, err := oracle.Parse(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("Parse(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("Parse(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
}

func TestNominalFootprint(t *testing.T) {
	for _, tc := range []struct {
		kind  oracle.Kind
		prec  uint
		bytes int64
	}{
		{oracle.BigFP, 256, 128},
		{oracle.DD, 106, 16},
		{oracle.Residue, 53, 8},
	} {
		o := mustNew(t, tc.kind, 0)
		if got := o.Precision(); got != tc.prec {
			t.Errorf("%s Precision = %d, want %d", tc.kind, got, tc.prec)
		}
		if got := o.EntryBytes(); got != tc.bytes {
			t.Errorf("%s EntryBytes = %d, want %d", tc.kind, got, tc.bytes)
		}
		if got := oracle.NominalPrecision(tc.kind, 0); got != tc.prec {
			t.Errorf("NominalPrecision(%s, 0) = %d, want %d", tc.kind, got, tc.prec)
		}
	}
	if got := oracle.NominalPrecision(oracle.BigFP, 128); got != 128 {
		t.Errorf("NominalPrecision(bigfp, 128) = %d, want 128", got)
	}
}

// TestDDMatchesBigFPExhaustiveP8 drives every ⟨8,0⟩ operand pair — all
// 256×256 bit patterns, NaR and zero included — through add, sub, mul and
// div on the dd and bigfp-256 oracles in lockstep. For each pair it checks
// the observable surface the shadow runtime consumes: the float64
// rounding, sign, three-way comparison against the other operand, the
// undefined flag from Div, and the ULP distance against the program's own
// ⟨8,0⟩ result. 106 double-double bits dwarf any single-op ⟨8,0⟩ result,
// so every disagreement is a bug, not a precision artifact.
func TestDDMatchesBigFPExhaustiveP8(t *testing.T) {
	cfg := posit.Config8
	dd := mustNew(t, oracle.DD, 0)
	bf := mustNew(t, oracle.BigFP, 256)
	var scratch big.Float

	// Pre-decode the 254 finite, non-NaR ⟨8,0⟩ values (0 is finite;
	// NaR = 0x80 is skipped — the runtime never feeds NaR operands to
	// oracle arithmetic, it short-circuits them to undefined first).
	type opnd struct {
		bits uint64
		f    float64
	}
	var vals []opnd
	for b := 0; b < 256; b++ {
		pb := posit.Bits(b)
		if cfg.IsNaR(pb) {
			continue
		}
		vals = append(vals, opnd{uint64(b), interp.ToFloat64(ir.P8, uint64(b))})
	}

	type binop struct {
		name string
		prog func(a, b posit.Bits) posit.Bits
		dd   func(z, x, y *oracle.Value) bool
		bf   func(z, x, y *oracle.Value) bool
	}
	wrap := func(f func(z, x, y *oracle.Value)) func(z, x, y *oracle.Value) bool {
		return func(z, x, y *oracle.Value) bool { f(z, x, y); return false }
	}
	ops := []binop{
		{"add", cfg.Add, wrap(dd.Add), wrap(bf.Add)},
		{"sub", cfg.Sub, wrap(dd.Sub), wrap(bf.Sub)},
		{"mul", cfg.Mul, wrap(dd.Mul), wrap(bf.Mul)},
		{"div", cfg.Div, dd.Div, bf.Div},
	}

	var xd, yd, zd, xb, yb, zb oracle.Value
	for _, op := range ops {
		for _, a := range vals {
			dd.SetFloat64(&xd, a.f)
			bf.SetFloat64(&xb, a.f)
			for _, b := range vals {
				dd.SetFloat64(&yd, b.f)
				bf.SetFloat64(&yb, b.f)

				undefD := op.dd(&zd, &xd, &yd)
				undefB := op.bf(&zb, &xb, &yb)
				if undefD != undefB {
					t.Fatalf("%s(%#02x, %#02x): dd undefined=%v, bigfp undefined=%v",
						op.name, a.bits, b.bits, undefD, undefB)
				}
				if undefD {
					continue
				}
				fD, fB := dd.Float64(&zd), bf.Float64(&zb)
				if fD != fB && !(math.IsNaN(fD) && math.IsNaN(fB)) {
					t.Fatalf("%s(%v, %v): dd rounds to %g, bigfp to %g",
						op.name, a.f, b.f, fD, fB)
				}
				if sD, sB := dd.Sign(&zd), bf.Sign(&zb); sD != sB {
					t.Fatalf("%s(%v, %v): dd sign %d, bigfp sign %d",
						op.name, a.f, b.f, sD, sB)
				}
				computed := interp.ToFloat64(ir.P8, uint64(op.prog(posit.Bits(a.bits), posit.Bits(b.bits))))
				if math.IsNaN(computed) {
					continue // program result saturated to NaR (e.g. x/0)
				}
				uD := dd.Ulps(computed, &zd, &scratch)
				uB := bf.Ulps(computed, &zb, &scratch)
				if uD != uB {
					t.Fatalf("%s(%v, %v): dd ulps %d, bigfp ulps %d (computed %g)",
						op.name, a.f, b.f, uD, uB, computed)
				}
			}
		}
	}

	// Cmp agreement over every finite pair — the branch-flip oracle.
	for _, a := range vals {
		dd.SetFloat64(&xd, a.f)
		bf.SetFloat64(&xb, a.f)
		for _, b := range vals {
			dd.SetFloat64(&yd, b.f)
			bf.SetFloat64(&yb, b.f)
			if cD, cB := dd.Cmp(&xd, &yd), bf.Cmp(&xb, &yb); cD != cB {
				t.Fatalf("Cmp(%v, %v): dd %d, bigfp %d", a.f, b.f, cD, cB)
			}
		}
	}
}

// TestDDAlgebra exercises the dd kernels on values chosen to need the low
// word: sums that cancel catastrophically in one double, products whose
// error term carries half the bits, and the Newton-corrected div/sqrt.
func TestDDAlgebra(t *testing.T) {
	dd := mustNew(t, oracle.DD, 0)
	var x, y, z oracle.Value

	// (1 + 2^-60) - 1 = 2^-60 exactly: pure-double arithmetic would
	// return 2^-60 only because 1+2^-60 rounds to 1... dd must keep it.
	dd.SetFloat64(&x, 1)
	dd.SetFloat64(&y, math.Ldexp(1, -60))
	dd.Add(&z, &x, &y)
	dd.Sub(&z, &z, &x)
	if got := dd.Float64(&z); got != math.Ldexp(1, -60) {
		t.Errorf("(1+2^-60)-1 = %g, want 2^-60", got)
	}

	// (2^30+1)^2 = 2^60 + 2^61/2^30... : the cross term 2·2^30 and the +1
	// land entirely in the low word.
	dd.SetFloat64(&x, math.Ldexp(1, 30)+1)
	dd.Mul(&z, &x, &x)
	want := new(big.Float).SetPrec(200).SetFloat64(math.Ldexp(1, 30) + 1)
	want.Mul(want, want)
	var got big.Float
	dd.Big(&got, &z)
	if got.Cmp(want) != 0 {
		t.Errorf("(2^30+1)^2: dd holds %s, want %s", got.Text('g', 30), want.Text('g', 30))
	}

	// Division round-trips: (x/y)*y ≈ x to well past double precision.
	dd.SetFloat64(&x, 1)
	dd.SetFloat64(&y, 3)
	if undef := dd.Div(&z, &x, &y); undef {
		t.Fatal("1/3 reported undefined")
	}
	dd.Mul(&z, &z, &y)
	dd.Sub(&z, &z, &x)
	var diff big.Float
	dd.Big(&diff, &z)
	f, _ := diff.Float64()
	if math.Abs(f) > math.Ldexp(1, -100) {
		t.Errorf("(1/3)*3 - 1 = %g, want |err| <= 2^-100", f)
	}

	// Sqrt: sqrt(2)^2 - 2 within the dd window.
	dd.SetFloat64(&x, 2)
	if undef := dd.Sqrt(&z, &x); undef {
		t.Fatal("sqrt(2) reported undefined")
	}
	dd.Mul(&z, &z, &z)
	dd.Sub(&z, &z, &x)
	dd.Big(&diff, &z)
	f, _ = diff.Float64()
	if math.Abs(f) > math.Ldexp(1, -100) {
		t.Errorf("sqrt(2)^2 - 2 = %g, want |err| <= 2^-100", f)
	}

	// Undefined guards mirror bigfp: div by zero and negative sqrt.
	dd.SetFloat64(&y, 0)
	if undef := dd.Div(&z, &x, &y); !undef {
		t.Error("x/0 not reported undefined")
	}
	dd.SetFloat64(&x, -1)
	if undef := dd.Sqrt(&z, &x); !undef {
		t.Error("sqrt(-1) not reported undefined")
	}
}

// TestDDInt64Edges pins the truncation semantics at the boundaries the
// wrong-cast oracle cares about: values a hair under an integer whose Hi
// alone rounds across it, and saturation at the int64 range.
func TestDDInt64Edges(t *testing.T) {
	dd := mustNew(t, oracle.DD, 0)
	var x, y, z oracle.Value

	// 2^60 - 0.5: Hi rounds to 2^60 exactly, Lo = -0.5; truncation toward
	// zero must yield 2^60 - 1, not 2^60.
	dd.SetFloat64(&x, math.Ldexp(1, 60))
	dd.SetFloat64(&y, 0.5)
	dd.Sub(&z, &x, &y)
	if got, want := dd.Int64(&z), int64(1)<<60-1; got != want {
		t.Errorf("trunc(2^60 - 0.5) = %d, want %d", got, want)
	}
	// The mirrored negative case truncates toward zero the other way.
	dd.Neg(&z, &z)
	if got, want := dd.Int64(&z), -(int64(1)<<60 - 1); got != want {
		t.Errorf("trunc(-(2^60 - 0.5)) = %d, want %d", got, want)
	}

	// SetInt64 is exact for every int64, including ones float64 cannot
	// represent alone.
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, (1 << 62) + 1, -((1 << 62) + 3)} {
		dd.SetInt64(&z, v)
		if got := dd.Int64(&z); got != v {
			t.Errorf("Int64(SetInt64(%d)) = %d", v, got)
		}
	}

	// Saturation beyond the range.
	dd.SetFloat64(&x, math.Ldexp(1, 70))
	if got := dd.Int64(&x); got != math.MaxInt64 {
		t.Errorf("trunc(2^70) = %d, want MaxInt64", got)
	}
	dd.Neg(&x, &x)
	if got := dd.Int64(&x); got != math.MinInt64 {
		t.Errorf("trunc(-2^70) = %d, want MinInt64", got)
	}
}

// TestQuireBridgeRoundTrip checks Big/SetBig on every oracle: the quire
// bridge must reconstruct dd pairs exactly and round back without losing
// more than the oracle's own precision.
func TestQuireBridgeRoundTrip(t *testing.T) {
	for _, kind := range oracle.Kinds() {
		o := mustNew(t, kind, 0)
		var v, back oracle.Value
		var big1 big.Float
		o.SetFloat64(&v, 1.5)
		var lo oracle.Value
		o.SetFloat64(&lo, math.Ldexp(1, -70))
		o.Add(&v, &v, &lo) // a value needing > 53 bits for dd/bigfp
		o.Big(&big1, &v)
		o.SetBig(&back, &big1)
		if o.Cmp(&v, &back) != 0 {
			t.Errorf("%s: Big/SetBig round-trip moved the value (%s -> %s)",
				kind, o.Format(&v), o.Format(&back))
		}
	}
}

// TestWarmOracleAllocs pins the steady-state allocation count of the dd
// and residue arithmetic at zero — the property that makes them safe
// degradation targets under memory pressure. bigfp is exempt: big.Float
// Div/Sqrt allocate internal temporaries by design, which is half the
// reason the cheaper tiers exist.
func TestWarmOracleAllocs(t *testing.T) {
	for _, kind := range []oracle.Kind{oracle.DD, oracle.Residue} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			o := mustNew(t, kind, 0)
			var x, y, z, w oracle.Value
			var scratch big.Float
			o.SetFloat64(&x, 1.375)
			o.SetFloat64(&y, 0.8125)
			// Warm up: bigfp grows mantissas and scratch once.
			o.Mul(&z, &x, &y)
			o.Add(&z, &z, &x)
			o.Div(&w, &z, &y)
			o.Sqrt(&w, &z)
			o.FMA(&w, &x, &y, &z)
			_ = o.Ulps(1.1171875, &z, &scratch)
			n := testing.AllocsPerRun(100, func() {
				o.Mul(&z, &x, &y)
				o.Add(&z, &z, &x)
				o.Sub(&z, &z, &x)
				o.Div(&w, &z, &y)
				o.Sqrt(&w, &z)
				o.FMA(&w, &x, &y, &z)
				o.Neg(&w, &w)
				o.Abs(&w, &w)
				o.Copy(&w, &z)
				_ = o.Cmp(&z, &w)
				_ = o.Sign(&z)
				_ = o.Float64(&z)
				_ = o.Int64(&z)
				_ = o.Ulps(1.1171875, &z, &scratch)
			})
			if n != 0 {
				t.Errorf("%s warm arithmetic allocates %v/op, want 0", kind, n)
			}
		})
	}
}
