// Package oracle defines the pluggable shadow-value backends behind the
// shadow runtime (the "multi-oracle" tier of the roadmap): the paper's
// arbitrary-precision MPFR stand-in (bigfp), an allocation-free
// double-double oracle in the spirit of NSan's twice-the-width native
// shadowing, and a residue-tracking oracle that carries a single float64
// estimate plus the last operation's exact rounding residue.
//
// All three share one Value representation and one Oracle interface, so the
// runtime's constant-size metadata (§3.2 of the paper) is oracle-agnostic:
// selecting a cheaper oracle changes per-entry cost and shadow precision,
// never metadata shape or propagation rules. The ULP error metric (§4.2)
// is preserved across oracles because it is defined on the float64
// roundings of both values — every oracle rounds its shadow value to the
// nearest float64 before the distance is taken, exactly as the bigfp
// runtime always has.
package oracle

import (
	"fmt"
	"math/big"
)

// Kind names a shadow-oracle backend.
type Kind string

const (
	// BigFP is the arbitrary-precision big.Float oracle (internal/bigfp,
	// the paper's MPFR stand-in). Its mantissa precision is configurable;
	// the paper evaluates 128, 256 and 512 bits.
	BigFP Kind = "bigfp"
	// DD is the double-double oracle: an unevaluated float64 pair carrying
	// ~106 significand bits, computed allocation-free with two-sum /
	// FMA-based two-product kernels. It is the sanitizer-grade middle
	// tier — far above any ⟨n≤32⟩ posit's precision at a fraction of
	// bigfp's cost.
	DD Kind = "dd"
	// Residue is the cheapest tier: the shadow value is a single float64
	// estimate and each operation additionally records its own exact
	// rounding residue (captured with error-free transformations). Error
	// localization in the style of "Accurate Residues"; 53 significand
	// bits.
	Residue Kind = "residue"
)

// Parse normalizes a kind string. The empty string selects BigFP — the
// pre-oracle default, so Precision-only configurations (including configs
// decoded from old JSON) keep their exact historical behavior.
func Parse(s string) (Kind, error) {
	switch Kind(s) {
	case "", BigFP:
		return BigFP, nil
	case DD:
		return DD, nil
	case Residue:
		return Residue, nil
	}
	return "", fmt.Errorf("oracle: unknown kind %q (want bigfp, dd or residue)", s)
}

// Kinds lists every backend, cheapest last.
func Kinds() []Kind { return []Kind{BigFP, DD, Residue} }

// Value is the shadow value of one temporary or one memory cell. It is a
// plain struct — not an interface — so metadata stays constant-size and
// pool-friendly: the selected oracle uses either the big.Float (BigFP) or
// the float64 pair (DD: Hi+Lo is the unevaluated sum; Residue: Hi is the
// shadow estimate, Lo the producing operation's rounding residue). The
// zero Value represents zero under every oracle.
type Value struct {
	Big    big.Float
	Hi, Lo float64
}

// Oracle is the pluggable arithmetic behind shadow execution: value
// creation, the shadow counterparts of every program operation, comparison
// (branch-flip oracle), the ULP-distance error metric, and serialization
// for reports. Operations write through pointers so implementations reuse
// storage (lazily grown mantissas for BigFP, plain fields otherwise).
//
// Implementations may keep internal scratch state: an Oracle instance
// serves one runtime on one goroutine at a time, mirroring the runtime's
// own concurrency contract.
type Oracle interface {
	// Kind identifies the backend.
	Kind() Kind
	// Precision reports nominal significand bits: the configured mantissa
	// precision for BigFP, 106 for DD, 53 for Residue.
	Precision() uint
	// EntryBytes estimates the per-metadata-entry storage this oracle
	// costs beyond the fixed struct overhead — the honest input to the
	// shadow-memory budget (BigFP: precision/2 for the lazily grown
	// mantissa; DD: the fixed 16-byte pair; Residue: 8).
	EntryBytes() int64

	// SetFloat64 sets z to the exact value of f (callers guard NaN/Inf).
	SetFloat64(z *Value, f float64)
	// SetInt64 sets z to v.
	SetInt64(z *Value, v int64)
	// Copy sets z to x.
	Copy(z, x *Value)

	// Add/Sub/Mul set z to the rounded result at the oracle's precision.
	Add(z, x, y *Value)
	Sub(z, x, y *Value)
	Mul(z, x, y *Value)
	// Div reports undefined=true (and leaves z zero) on division by zero.
	Div(z, x, y *Value) bool
	// Sqrt reports undefined=true (and leaves z zero) for negative x.
	Sqrt(z, x *Value) bool
	Neg(z, x *Value)
	Abs(z, x *Value)
	// FMA sets z = a·b + c with a single rounding at the oracle's
	// precision, matching the program's fused semantics.
	FMA(z, a, b, c *Value)

	// Cmp compares x and y (-1, 0, +1) — the branch-flip oracle.
	Cmp(x, y *Value) int
	// Sign reports the sign of x (-1, 0, +1).
	Sign(x *Value) int
	// Float64 rounds x to the nearest float64.
	Float64(x *Value) float64
	// Int64 truncates x toward zero, saturating at the int64 range — the
	// wrong-cast oracle.
	Int64(x *Value) int64
	// Ulps is the paper's error metric: the ULP distance between the
	// computed float64 and x rounded to float64. scratch keeps the BigFP
	// rounding allocation-free; other oracles ignore it.
	Ulps(computed float64, x *Value, scratch *big.Float) uint64
	// Format renders x for reports and DAG nodes ('g', 10 digits, on the
	// float64 rounding — identical formatting across oracles).
	Format(x *Value) string

	// Big sets z to x exactly — the bridge into the runtime's 768-bit
	// shadow quire.
	Big(z *big.Float, x *Value)
	// SetBig sets z to x rounded to the oracle's precision — the bridge
	// back out of the quire.
	SetBig(z *Value, x *big.Float)
}

// New constructs the oracle for kind. precision applies to BigFP only
// (0 means 256, bigfp's default).
func New(kind Kind, precision uint) (Oracle, error) {
	k, err := Parse(string(kind))
	if err != nil {
		return nil, err
	}
	switch k {
	case DD:
		return &ddOracle{}, nil
	case Residue:
		return &residueOracle{}, nil
	default:
		return newBigFPOracle(precision), nil
	}
}

// NominalPrecision reports the significand bits kind would serve at the
// given bigfp precision without constructing an oracle — the feed for
// fleet-wide precision gauges.
func NominalPrecision(kind Kind, precision uint) uint {
	switch kind {
	case DD:
		return ddPrecision
	case Residue:
		return residuePrecision
	default:
		if precision == 0 {
			return 256
		}
		return precision
	}
}
