package oracle

import (
	"math"
	"math/big"
	"strconv"

	"positdebug/internal/ulp"
)

// residuePrecision: the estimate is one float64.
const residuePrecision = 53

// residueOracle is the cheapest shadow tier: Hi carries a plain float64
// shadow estimate (NSan's "shadow in twice-the-width native FP" applied to
// ≤32-bit posits, whose 28 max fraction bits sit far below float64's 53),
// and Lo records the producing operation's *own* exact rounding residue,
// captured with the same error-free transformations the dd oracle builds
// on. The residue is not propagated into later arithmetic — that is the
// dd oracle's job — but it pins down exactly how much error the local
// operation contributed, in the spirit of "Accurate Residues": a report
// for instruction i can distinguish error *introduced* at i (large |Lo|
// relative to Hi) from error *inherited* through operands.
type residueOracle struct{}

func (o *residueOracle) Kind() Kind        { return Residue }
func (o *residueOracle) Precision() uint   { return residuePrecision }
func (o *residueOracle) EntryBytes() int64 { return 8 }

func (o *residueOracle) SetFloat64(z *Value, f float64) { z.Hi, z.Lo = f, 0 }

func (o *residueOracle) SetInt64(z *Value, v int64) { z.Hi, z.Lo = float64(v), 0 }

func (o *residueOracle) Copy(z, x *Value) { z.Hi, z.Lo = x.Hi, x.Lo }

func (o *residueOracle) Add(z, x, y *Value) { z.Hi, z.Lo = twoSum(x.Hi, y.Hi) }

func (o *residueOracle) Sub(z, x, y *Value) { z.Hi, z.Lo = twoSum(x.Hi, -y.Hi) }

func (o *residueOracle) Mul(z, x, y *Value) { z.Hi, z.Lo = twoProd(x.Hi, y.Hi) }

func (o *residueOracle) Div(z, x, y *Value) bool {
	if y.Hi == 0 {
		z.Hi, z.Lo = 0, 0
		return true
	}
	q := x.Hi / y.Hi
	// r = x − q·y is the exact remainder (FMA), so −r/y is the rounding
	// error of the quotient to first order.
	z.Hi, z.Lo = q, -math.FMA(q, y.Hi, -x.Hi)/y.Hi
	return false
}

func (o *residueOracle) Sqrt(z, x *Value) bool {
	if x.Hi < 0 {
		z.Hi, z.Lo = 0, 0
		return true
	}
	s := math.Sqrt(x.Hi)
	var e float64
	if s != 0 && !math.IsInf(s, 0) {
		e = -math.FMA(s, s, -x.Hi) / (2 * s)
	}
	z.Hi, z.Lo = s, e
	return false
}

func (o *residueOracle) Neg(z, x *Value) { z.Hi, z.Lo = -x.Hi, -x.Lo }

func (o *residueOracle) Abs(z, x *Value) {
	if x.Hi < 0 || (x.Hi == 0 && math.Signbit(x.Hi)) {
		z.Hi, z.Lo = -x.Hi, -x.Lo
	} else {
		z.Hi, z.Lo = x.Hi, x.Lo
	}
}

func (o *residueOracle) FMA(z, a, b, c *Value) {
	r := math.FMA(a.Hi, b.Hi, c.Hi)
	// The fused op rounds once; recover its residue with a dd-valued
	// recomputation of a·b + c against the rounded result.
	ph, pl := twoProd(a.Hi, b.Hi)
	sh, sl := ddAdd(ph, pl, c.Hi, 0)
	eh, el := ddAdd(sh, sl, -r, 0)
	z.Hi, z.Lo = r, eh+el
}

func (o *residueOracle) Cmp(x, y *Value) int {
	switch {
	case x.Hi < y.Hi:
		return -1
	case x.Hi > y.Hi:
		return 1
	}
	return 0
}

func (o *residueOracle) Sign(x *Value) int {
	switch {
	case x.Hi < 0:
		return -1
	case x.Hi > 0:
		return 1
	}
	return 0
}

func (o *residueOracle) Float64(x *Value) float64 { return x.Hi }

func (o *residueOracle) Int64(x *Value) int64 {
	hi := x.Hi
	if hi >= maxI64f {
		return math.MaxInt64
	}
	if hi < -maxI64f {
		return math.MinInt64
	}
	return int64(math.Trunc(hi))
}

func (o *residueOracle) Ulps(computed float64, x *Value, _ *big.Float) uint64 {
	return ulp.Distance(computed, x.Hi)
}

func (o *residueOracle) Format(x *Value) string {
	return strconv.FormatFloat(x.Hi, 'g', 10, 64)
}

func (o *residueOracle) Big(z *big.Float, x *Value) {
	if z.Prec() == 0 {
		z.SetPrec(64)
	}
	z.SetFloat64(x.Hi)
}

func (o *residueOracle) SetBig(z *Value, x *big.Float) {
	f, _ := x.Float64()
	z.Hi, z.Lo = f, 0
}
