package oracle

import (
	"math"
	"math/big"
	"strconv"

	"positdebug/internal/ulp"
)

// ddPrecision is the worst-case significand width a normalized
// double-double pair is guaranteed to carry (2×53 with the binding bit
// between the halves).
const ddPrecision = 106

// ddOracle shadows in double-double arithmetic: each Value holds an
// unevaluated sum Hi+Lo of two float64s with |Lo| ≤ ulp(Hi)/2 (normalized),
// giving ~106 significand bits from plain float64 hardware ops — no big.Int
// mantissas, no allocation, no rounding-mode plumbing. The kernels are the
// classical error-free transformations (Knuth two-sum, FMA two-product)
// composed the way QD/crlibm do.
//
// Divergence from bigfp comes in two flavors. Exponent range: double-
// double inherits float64's overflow/underflow, so values beyond ~1e308
// collapse to ±Inf where bigfp would keep going — posit programs saturate
// at maxpos (~1.3e36 for ⟨32,2⟩) long before that, so this one is
// unobservable on the detection suite. Significand width: an adversarial
// recurrence that amplifies the shadow's own rounding error (Muller's
// recurrence gains ~2^4.3 per iteration) eventually drags a 106-bit
// shadow to the same wrong attractor as the program, shrinking the
// measured output error where bigfp-256 keeps tracking the true orbit.
// The per-op detectors (cancellation, high-error) fire long before the
// collapse, so flagged/clean verdicts survive — the cross-oracle
// differential suite (oracle_diff_test.go) pins exactly this contract.
type ddOracle struct {
	// scratch bigs for the quire bridge (Big/SetBig) so quire-carrying
	// programs stay allocation-free on the warm path.
	bs1, bs2 big.Float
}

// twoSum returns s = fl(a+b) and the exact error e with a+b = s+e
// (Knuth's branch-free version, valid for any ordering of |a|, |b|).
func twoSum(a, b float64) (s, e float64) {
	s = a + b
	bb := s - a
	e = (a - (s - bb)) + (b - bb)
	return s, e
}

// quickTwoSum is twoSum under the precondition |a| ≥ |b| (or a == 0).
func quickTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return s, e
}

// twoProd returns p = fl(a·b) and the exact error e with a·b = p+e,
// using the hardware FMA.
func twoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return p, e
}

// ddAdd computes (ah,al) + (bh,bl) with the full-accuracy (Knuth/QD
// "ieee_add") algorithm: both error terms are recovered before the final
// renormalization, keeping the result within 1 ulp of the exact sum.
func ddAdd(ah, al, bh, bl float64) (float64, float64) {
	sh, se := twoSum(ah, bh)
	tl, te := twoSum(al, bl)
	se += tl
	sh, se = quickTwoSum(sh, se)
	se += te
	return quickTwoSum(sh, se)
}

// ddMul computes (ah,al) × (bh,bl); the al·bl term is below the result's
// 106-bit window and is dropped, as in QD.
func ddMul(ah, al, bh, bl float64) (float64, float64) {
	ph, pl := twoProd(ah, bh)
	pl += ah*bl + al*bh
	return quickTwoSum(ph, pl)
}

// ddMulF computes (ah,al) × b for a plain float64 b.
func ddMulF(ah, al, b float64) (float64, float64) {
	ph, pl := twoProd(ah, b)
	pl += al * b
	return quickTwoSum(ph, pl)
}

func (o *ddOracle) Kind() Kind        { return DD }
func (o *ddOracle) Precision() uint   { return ddPrecision }
func (o *ddOracle) EntryBytes() int64 { return 16 }

func (o *ddOracle) SetFloat64(z *Value, f float64) { z.Hi, z.Lo = f, 0 }

func (o *ddOracle) SetInt64(z *Value, v int64) {
	hi := float64(v)
	var lo float64
	// Recover the rounding error of the int64→float64 conversion when hi
	// is safely convertible back. The excluded sliver (|v| within 512 of
	// MaxInt64, where hi rounds to 2^63) loses ≤ 2^-54 relative — and the
	// runtime only reaches here for program int64 temps, which are tiny.
	if hi >= -9.2233720368547748e18 && hi <= 9.2233720368547748e18 {
		lo = float64(v - int64(hi))
	}
	z.Hi, z.Lo = hi, lo
}

func (o *ddOracle) Copy(z, x *Value) { z.Hi, z.Lo = x.Hi, x.Lo }

func (o *ddOracle) Add(z, x, y *Value) {
	z.Hi, z.Lo = ddAdd(x.Hi, x.Lo, y.Hi, y.Lo)
}

func (o *ddOracle) Sub(z, x, y *Value) {
	z.Hi, z.Lo = ddAdd(x.Hi, x.Lo, -y.Hi, -y.Lo)
}

func (o *ddOracle) Mul(z, x, y *Value) {
	z.Hi, z.Lo = ddMul(x.Hi, x.Lo, y.Hi, y.Lo)
}

// Div refines q1 = x.Hi/y.Hi with two exact-residual correction steps —
// the long-division scheme from QD, accurate to the last dd bit. A
// normalized pair is zero iff Hi is zero, so the undefined guard mirrors
// bigfp's y.Sign()==0 check.
func (o *ddOracle) Div(z, x, y *Value) bool {
	if y.Hi == 0 {
		z.Hi, z.Lo = 0, 0
		return true
	}
	q1 := x.Hi / y.Hi
	ph, pl := ddMulF(y.Hi, y.Lo, q1)
	rh, rl := ddAdd(x.Hi, x.Lo, -ph, -pl)
	q2 := rh / y.Hi
	ph, pl = ddMulF(y.Hi, y.Lo, q2)
	rh, rl = ddAdd(rh, rl, -ph, -pl)
	q3 := rh / y.Hi
	q1, q2 = quickTwoSum(q1, q2)
	z.Hi, z.Lo = ddAdd(q1, q2, q3, 0)
	return false
}

// Sqrt takes the hardware root and applies one Newton correction in dd:
// s + (x − s²)/(2s), which doubles the 53 correct bits to the full window.
func (o *ddOracle) Sqrt(z, x *Value) bool {
	if x.Hi < 0 {
		z.Hi, z.Lo = 0, 0
		return true
	}
	if x.Hi == 0 {
		z.Hi, z.Lo = 0, 0
		return false
	}
	s := math.Sqrt(x.Hi)
	ph, pl := twoProd(s, s)
	rh, rl := ddAdd(x.Hi, x.Lo, -ph, -pl)
	d := (rh + rl) / (2 * s)
	z.Hi, z.Lo = quickTwoSum(s, d)
	return false
}

func (o *ddOracle) Neg(z, x *Value) { z.Hi, z.Lo = -x.Hi, -x.Lo }

func (o *ddOracle) Abs(z, x *Value) {
	if x.Hi < 0 || (x.Hi == 0 && x.Lo < 0) {
		z.Hi, z.Lo = -x.Hi, -x.Lo
	} else {
		z.Hi, z.Lo = x.Hi, x.Lo
	}
}

func (o *ddOracle) FMA(z, a, b, c *Value) {
	ph, pl := ddMul(a.Hi, a.Lo, b.Hi, b.Lo)
	z.Hi, z.Lo = ddAdd(ph, pl, c.Hi, c.Lo)
}

// Cmp relies on normalization: Hi alone orders distinct pairs, and equal
// Hi defers to the error terms.
func (o *ddOracle) Cmp(x, y *Value) int {
	switch {
	case x.Hi < y.Hi:
		return -1
	case x.Hi > y.Hi:
		return 1
	case x.Lo < y.Lo:
		return -1
	case x.Lo > y.Lo:
		return 1
	}
	return 0
}

func (o *ddOracle) Sign(x *Value) int {
	h := x.Hi
	if h == 0 {
		h = x.Lo
	}
	switch {
	case h < 0:
		return -1
	case h > 0:
		return 1
	}
	return 0
}

// Float64 rounds to nearest: for a normalized pair Hi already is
// RN(Hi+Lo), and the explicit IEEE add makes that hold for denormalized
// pairs too.
func (o *ddOracle) Float64(x *Value) float64 { return x.Hi + x.Lo }

const maxI64f = 9223372036854775808.0 // 2^63, exactly representable

func (o *ddOracle) Int64(x *Value) int64 {
	hi, lo := x.Hi, x.Lo
	if hi >= maxI64f {
		return math.MaxInt64
	}
	if hi < -maxI64f {
		return math.MinInt64
	}
	t := math.Trunc(hi)
	r := (hi - t) + lo // exact: both terms are < 1 in magnitude apart
	n := int64(t) + int64(math.Trunc(r))
	// Truncation is toward zero on the combined value, so a leftover
	// fractional part whose sign opposes n means the Hi-only truncation
	// overshot across an integer boundary (e.g. 2^60 − 0.5).
	fr := r - math.Trunc(r)
	switch {
	case fr < 0 && n > 0:
		n--
	case fr > 0 && n < 0:
		n++
	}
	return n
}

func (o *ddOracle) Ulps(computed float64, x *Value, _ *big.Float) uint64 {
	return ulp.Distance(computed, x.Hi+x.Lo)
}

func (o *ddOracle) Format(x *Value) string {
	return strconv.FormatFloat(x.Hi+x.Lo, 'g', 10, 64)
}

// Big reconstructs the exact pair value: 128 bits comfortably holds the
// ≤107-bit span of a normalized dd.
func (o *ddOracle) Big(z *big.Float, x *Value) {
	z.SetPrec(128).SetFloat64(x.Hi)
	o.bs1.SetFloat64(x.Lo)
	z.Add(z, &o.bs1)
}

func (o *ddOracle) SetBig(z *Value, x *big.Float) {
	hi, _ := x.Float64()
	if math.IsInf(hi, 0) {
		z.Hi, z.Lo = hi, 0
		return
	}
	o.bs1.SetFloat64(hi)
	o.bs2.SetPrec(x.Prec() + 64).Sub(x, &o.bs1)
	lo, _ := o.bs2.Float64()
	z.Hi, z.Lo = hi, lo
}
