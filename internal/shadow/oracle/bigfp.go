package oracle

import (
	"math/big"
	"strconv"

	"positdebug/internal/bigfp"
	"positdebug/internal/ulp"
)

// bigFPOracle adapts internal/bigfp to the Oracle interface. Every method
// mirrors the bigfp.Context call the pre-oracle runtime made, so bigfp-
// configured runs stay byte-identical to the historical shadow engine:
// same rounding (to-nearest-even at the configured precision), same
// division-by-zero / negative-sqrt undefined handling, same float64
// rounding in the ULP metric and report formatting.
type bigFPOracle struct {
	ctx  bigfp.Context
	prec uint
	// fmaProd holds the exact a·b product at double precision between the
	// multiply and the single rounding add, so fused ops stay
	// allocation-free on the warm path.
	fmaProd big.Float
}

func newBigFPOracle(prec uint) *bigFPOracle {
	if prec == 0 {
		prec = 256
	}
	return &bigFPOracle{ctx: bigfp.New(prec), prec: prec}
}

func (o *bigFPOracle) Kind() Kind        { return BigFP }
func (o *bigFPOracle) Precision() uint   { return o.prec }
func (o *bigFPOracle) EntryBytes() int64 { return int64(o.prec) / 2 }

func (o *bigFPOracle) SetFloat64(z *Value, f float64) { o.ctx.SetFloat64(&z.Big, f) }

func (o *bigFPOracle) SetInt64(z *Value, v int64) {
	z.Big.SetPrec(o.prec).SetInt64(v)
}

func (o *bigFPOracle) Copy(z, x *Value) { o.ctx.Copy(&z.Big, &x.Big) }

func (o *bigFPOracle) Add(z, x, y *Value) { o.ctx.Add(&z.Big, &x.Big, &y.Big) }
func (o *bigFPOracle) Sub(z, x, y *Value) { o.ctx.Sub(&z.Big, &x.Big, &y.Big) }
func (o *bigFPOracle) Mul(z, x, y *Value) { o.ctx.Mul(&z.Big, &x.Big, &y.Big) }

func (o *bigFPOracle) Div(z, x, y *Value) bool {
	_, undef := o.ctx.Div(&z.Big, &x.Big, &y.Big)
	return undef
}

func (o *bigFPOracle) Sqrt(z, x *Value) bool {
	_, undef := o.ctx.Sqrt(&z.Big, &x.Big)
	return undef
}

func (o *bigFPOracle) Neg(z, x *Value) { o.ctx.Neg(&z.Big, &x.Big) }
func (o *bigFPOracle) Abs(z, x *Value) { o.ctx.Abs(&z.Big, &x.Big) }

func (o *bigFPOracle) FMA(z, a, b, c *Value) {
	o.fmaProd.SetPrec(2 * o.prec).Mul(&a.Big, &b.Big)
	o.ctx.Add(&z.Big, &o.fmaProd, &c.Big)
}

func (o *bigFPOracle) Cmp(x, y *Value) int { return x.Big.Cmp(&y.Big) }
func (o *bigFPOracle) Sign(x *Value) int   { return x.Big.Sign() }

func (o *bigFPOracle) Float64(x *Value) float64 {
	f, _ := x.Big.Float64()
	return f
}

func (o *bigFPOracle) Int64(x *Value) int64 {
	i, _ := x.Big.Int64()
	return i
}

func (o *bigFPOracle) Ulps(computed float64, x *Value, scratch *big.Float) uint64 {
	return ulp.DistanceBigScratch(computed, &x.Big, scratch)
}

func (o *bigFPOracle) Format(x *Value) string {
	f, _ := x.Big.Float64()
	return strconv.FormatFloat(f, 'g', 10, 64)
}

// Big copies exactly: big.Float.Copy preserves the source precision, so
// quire accumulation sees the same operand the pre-oracle runtime fed it.
func (o *bigFPOracle) Big(z *big.Float, x *Value) { z.Copy(&x.Big) }

func (o *bigFPOracle) SetBig(z *Value, x *big.Float) { o.ctx.Copy(&z.Big, x) }
