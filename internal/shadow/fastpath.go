package shadow

import (
	"math"

	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/posit"
	"positdebug/internal/profile"
	"positdebug/internal/ulp"
)

// This file implements interp.FastShadow: the VM's fused superinstructions
// deliver shadow events here when no injector or sampler wraps the
// runtime. The contract is byte-identity with the regular Hooks methods —
// same reports, same counters, same DAGs, same panics — which the
// differential suite (backend_diff_test.go) enforces end to end. What the
// fast path buys is a single posit decode per program value: the regular
// detection pass re-derives the float64 conversion, the binary exponent
// (cancellation check) and the regime/fraction geometry (precision-loss
// check) from the raw bits separately, decoding the same posit up to three
// times per operation and once more at every consumer. Here each (bits,
// type) pair is decoded once into a pval and memoized on the TempMeta, so
// a value produced by one operation and consumed by the next is decoded
// exactly once in its lifetime.
//
// The memoization is sound because every pval field is a pure function of
// (bits, type): genericDecode — and the table/constant-folded fast
// decoders built from it — negate before extracting fields, so
// Decode(p) and Decode(Abs(p)) agree on all geometry, and for n ≤ 32
// every finite posit converts to float64 exactly with Ilogb(f) == Scale.

var _ interp.FastShadow = (*Runtime)(nil)

// pval is the single-decode view of one program value: everything the
// detection pass (checkOp and its helpers) derives from the (type, bits)
// pair. It is embedded in every TempMeta and MemMeta, so the posit decode
// is stored in compacted fields (32 bytes total) rather than a full
// posit.Decoded; decoded() rebuilds the struct on the stack for the
// fused-arithmetic consumers.
type pval struct {
	f    float64 // interp.ToFloat64(typ, bits), bit-exact
	frac uint64  // decoded fraction; valid iff posit, finite, nonzero
	exp  int32   // binary exponent of f (valueExp) == decoded Scale for posits
	// rbits/fbits are the precision-loss geometry: RegimeBits/FracBits of
	// Decode(Abs(bits)) — decoders negate first, so Decode and Decode∘Abs
	// agree on everything but the sign.
	rbits uint8
	fbits uint8
	neg   bool
	typ   uint8 // the ir.Type this decode was computed for (cache key)
	zero  bool  // valueExp's "zero": the value is 0, NaN or ±Inf
	undef bool  // NaN or ±Inf (the posit NaR pattern)
	ok    bool  // set once computed; zero pval is never a valid decode
}

// decoded rebuilds the posit.Decoded this pval was computed from, the
// operand form AddDecoded/MulDecoded consume in the fused-arithmetic
// superinstructions.
func (p *pval) decoded() posit.Decoded {
	return posit.Decoded{
		Neg: p.neg, Scale: int(p.exp), Frac: p.frac,
		RegimeBits: int(p.rbits), FracBits: int(p.fbits),
	}
}

// computePval decodes (typ, bits) once. For posits this is the only
// Decode; float64/float32/int64 conversions are cheap bit casts plus one
// Ilogb.
func computePval(typ ir.Type, bits uint64) pval {
	switch typ {
	case ir.P8, ir.P16, ir.P32:
		cfg := typ.PositConfig()
		pb := posit.Bits(bits)
		if pb == 0 {
			return pval{typ: uint8(typ), zero: true, ok: true}
		}
		if cfg.IsNaR(pb) {
			return pval{f: math.NaN(), typ: uint8(typ), zero: true, undef: true, ok: true}
		}
		d := cfg.Decode(pb)
		// float64(d.Frac) is a positive double with unbiased exponent 63
		// (or 64 when the 53-bit rounding carries out), so Ldexp(·, Scale-63)
		// reduces to adding Scale-63 to the exponent field: posit scales are
		// bounded (|Scale| ≤ 120 for n ≤ 32), the sum stays strictly inside
		// the normal range, and the bit-add is exact — no Ldexp call.
		f := math.Float64frombits(math.Float64bits(float64(d.Frac)) +
			uint64(int64(d.Scale-63))<<52)
		if d.Neg {
			f = -f
		}
		// Frac ∈ [2^63, 2^64) makes |f| ∈ [2^Scale, 2^(Scale+1)), and every
		// n ≤ 32 posit is a normal double, so Ilogb(f) == Scale exactly.
		return pval{
			f: f, frac: d.Frac, exp: int32(d.Scale),
			rbits: uint8(d.RegimeBits), fbits: uint8(d.FracBits),
			neg: d.Neg, typ: uint8(typ), ok: true,
		}
	default:
		f := interp.ToFloat64(typ, bits)
		p := pval{f: f, typ: uint8(typ), ok: true}
		if math.IsNaN(f) || math.IsInf(f, 0) {
			p.zero, p.undef = true, true
		} else if f == 0 {
			p.zero = true
		} else {
			p.exp = int32(math.Ilogb(f))
		}
		return p
	}
}

// pvalFor returns the decoded view of t.Prog read as typ, memoized on the
// metadata cell. The cache key is the (bits, type) pair itself, so writes
// to Prog by any path — regular hooks included — simply miss rather than
// serve stale data.
func (t *TempMeta) pvalFor(typ ir.Type) *pval {
	if !t.pv.ok || t.pvBits != t.Prog || t.pv.typ != uint8(typ) {
		t.pv = computePval(typ, t.Prog)
		t.pvBits = t.Prog
	}
	return &t.pv
}

// FastConst et al. implement interp.FastShadow. Const, Mov, Load and
// Store have no redundant decodes in their hot paths (metadata copies and
// shadow-memory traffic dominate), so they share the regular
// implementations; the arithmetic events route their detection pass
// through fastCheckOp.

// FastConst implements interp.FastShadow.
func (r *Runtime) FastConst(id int32, typ ir.Type, dst int32, bits uint64) {
	r.Const(id, typ, dst, bits)
}

// FastMov implements interp.FastShadow.
func (r *Runtime) FastMov(id int32, typ ir.Type, dst, src int32, bits uint64) {
	r.Mov(id, typ, dst, src, bits)
}

// FastBin implements interp.FastShadow.
func (r *Runtime) FastBin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	r.binImpl(id, kind, typ, dst, a, b, dstVal, aVal, bVal, true)
}

// FastBinP32 implements interp.FastShadow: the ⟨32,2⟩ add/sub/mul
// superinstruction hands the base arithmetic to the runtime too, so the
// operands' memoized decodes feed AddDecoded/MulDecoded directly instead
// of being re-derived from the raw bits inside Config32.Add/Sub/Mul. The
// special cases run on the raw bits exactly as the Config32 entry points
// do, so the returned result is bit-identical by construction
// (fastpath_test.go drives the equivalence over random and special
// operands).
func (r *Runtime) FastBinP32(id int32, kind ir.BinKind, dst, a, b int32, aVal, bVal uint64) uint64 {
	const typ = ir.P32
	cfg := posit.Config32
	// ensure(a); ensure(b) with the frame fetched once — this runs once
	// per fused arithmetic op, so the repeated frames[len-1] indirection
	// inside temp() is worth hoisting.
	temps := r.frames[len(r.frames)-1].temps
	ta, tb := &temps[a], &temps[b]
	if !ta.written || ta.Prog != aVal {
		r.initFromProgram(ta, typ, aVal)
	}
	if !tb.written || tb.Prog != bVal {
		r.initFromProgram(tb, typ, bVal)
	}
	pa := ta.pvalFor(typ)
	pb := tb.pvalFor(typ)
	var res posit.Bits
	switch {
	case pa.undef || pb.undef:
		res = cfg.NaR()
	case kind == ir.BinMul:
		if aVal == 0 || bVal == 0 {
			res = 0
		} else {
			res = cfg.MulDecoded(pa.decoded(), pb.decoded())
		}
	case kind == ir.BinAdd:
		switch {
		case aVal == 0:
			res = posit.Bits(bVal)
		case bVal == 0:
			res = posit.Bits(aVal)
		default:
			res = cfg.AddDecoded(pa.decoded(), pb.decoded())
		}
	default: // ir.BinSub: Add(a, Neg(b)); Decode(Neg(b)) is Decode(b) with Neg flipped
		switch {
		case aVal == 0:
			res = cfg.Neg(posit.Bits(bVal))
		case bVal == 0:
			res = posit.Bits(aVal)
		default:
			db := pb.decoded()
			db.Neg = !db.Neg
			res = cfg.AddDecoded(pa.decoded(), db)
		}
	}
	r.binCore(id, kind, typ, dst, uint64(res), ta, tb, true)
	return uint64(res)
}

// FastUn implements interp.FastShadow.
func (r *Runtime) FastUn(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {
	r.unImpl(id, kind, typ, dst, a, dstVal, aVal, true)
}

// FastCast implements interp.FastShadow.
func (r *Runtime) FastCast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {
	r.castImpl(id, from, to, dst, src, dstVal, srcVal, true)
}

// FastLoad implements interp.FastShadow. Beyond the regular Load it keeps
// the single-decode invariant across memory: a posit loaded from a cell
// with a matching memoized decode inherits it, and a cache miss decodes
// eagerly into both the temporary and the cell, so an array element
// re-loaded n times in a loop nest is decoded once, not n times.
func (r *Runtime) FastLoad(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {
	mm, d := r.loadImpl(id, typ, dst, addr, bits)
	if !typ.IsPosit() {
		return
	}
	if mm.pv.ok && mm.pvBits == d.Prog && mm.pv.typ == uint8(typ) {
		d.pv, d.pvBits = mm.pv, mm.pvBits
		return
	}
	pv := d.pvalFor(typ)
	mm.pv, mm.pvBits = *pv, d.pvBits
}

// FastStore implements interp.FastShadow. The source temporary's memoized
// decode (if it matches the stored bits) moves into the cell, priming the
// cache for later loads of the same address.
func (r *Runtime) FastStore(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {
	mm, s := r.storeImpl(id, typ, addr, src, bits)
	if typ.IsPosit() && s.pv.ok && s.pvBits == mm.Prog && s.pv.typ == uint8(typ) {
		mm.pv, mm.pvBits = s.pv, s.pvBits
	}
}

// fastCheckOp is checkOp with every ToFloat64/Decode replaced by the
// memoized pval of the same (bits, type) pair. Control flow, counters,
// report emission and metadata side effects mirror checkOp line for line;
// fastpath_test.go checks the derived quantities against the slow helpers
// over exhaustive/ randomized patterns, and the backend differential suite
// checks the observable behavior end to end.
func (r *Runtime) fastCheckOp(id int32, typ ir.Type, subLike bool, d, ta, tb *TempMeta) {
	pd := d.pvalFor(typ)
	progF := pd.f

	if pd.undef {
		opsWereFinite := true
		if ta != nil && ta.pvalFor(typ).undef {
			opsWereFinite = false
		}
		if tb != nil && tb.pvalFor(typ).undef {
			opsWereFinite = false
		}
		if opsWereFinite {
			r.count(KindNaR)
			if r.prof != nil {
				r.prof.Checked(id, 64)
				r.prof.Detect(id, profile.DetectNaR, 0)
			}
			r.emit(KindNaR, id, errInfo{
				errBits: 64,
				program: interp.FormatValue(typ, d.Prog),
				shadow:  r.orc.Format(&d.Real),
				root:    d,
			})
			d.Err = 64
		}
		return
	}
	if d.Undef {
		return
	}

	ulps := r.orc.Ulps(progF, &d.Real, &r.ulpScratch)
	bits := ulp.Bits(ulps)
	d.Err = int32(bits)
	if bits > r.maxOpErr {
		r.maxOpErr = bits
	}
	if r.metErrHist != nil {
		r.metErrHist.Observe(bits)
		if id >= 0 {
			r.instHistFor(id).Observe(bits)
		}
	}
	if r.prof != nil {
		r.prof.Checked(id, bits)
	}

	if subLike && ta != nil && tb != nil && !ta.Undef && !tb.Undef {
		if cb := fastCancelledBits(ta.pvalFor(typ), tb.pvalFor(typ), pd); cb > 0 && factorTwoOff(progF, r.orc.Float64(&d.Real), r.orc.Sign(&d.Real)) {
			r.count(KindCancellation)
			if r.prof != nil {
				r.prof.Detect(id, profile.DetectCancellation, cb)
			}
			r.emit(KindCancellation, id, errInfo{
				errBits: bits, ulps: ulps,
				program: interp.FormatValue(typ, d.Prog),
				shadow:  r.orc.Format(&d.Real),
				root:    d,
			})
			return
		}
	}

	if typ.IsPosit() {
		cfg := typ.PositConfig()
		pb := posit.Bits(d.Prog)
		if (cfg.IsMaxMag(pb) || cfg.IsMinMag(pb)) && bits > 0 {
			r.count(KindSaturation)
			if r.prof != nil {
				r.prof.Detect(id, profile.DetectSaturation, 0)
			}
			r.emit(KindSaturation, id, errInfo{
				errBits: bits, ulps: ulps,
				program: interp.FormatValue(typ, d.Prog),
				shadow:  r.orc.Format(&d.Real),
				root:    d,
			})
			return
		}
		if ta != nil && r.cfg.PrecisionLossThreshold > 0 {
			var ptb *pval
			if tb != nil {
				ptb = tb.pvalFor(typ)
			}
			if lost := fastFracBitsLost(pd, ta.pvalFor(typ), ptb); lost >= r.cfg.PrecisionLossThreshold {
				r.count(KindPrecisionLoss)
				r.emit(KindPrecisionLoss, id, errInfo{
					errBits: bits, ulps: ulps,
					program: interp.FormatValue(typ, d.Prog),
					shadow:  r.orc.Format(&d.Real),
					root:    d,
				})
				return
			}
		}
	}

	if r.cfg.ErrBitsThreshold > 0 && bits >= r.cfg.ErrBitsThreshold {
		r.count(KindHighError)
		r.emit(KindHighError, id, errInfo{
			errBits: bits, ulps: ulps,
			program: interp.FormatValue(typ, d.Prog),
			shadow:  r.orc.Format(&d.Real),
			root:    d,
		})
	}
}

// fastCancelledBits is cancelledBits on pre-decoded values: pval.zero is
// exactly valueExp's zero predicate and pval.exp its exponent.
func fastCancelledBits(pa, pb, pr *pval) int {
	if pa.zero || pb.zero {
		return 0 // nothing to cancel
	}
	top := pa.exp
	if pb.exp > top {
		top = pb.exp
	}
	if pr.zero {
		return 64
	}
	return int(top - pr.exp)
}

// fastFracBitsLost is fracBitsLost on pre-decoded values: pval.zero covers
// the zero-pattern and NaR skips (the only posits with no geometry), and
// rbits/fbits carry Decode(Abs)'s RegimeBits/FracBits.
func fastFracBitsLost(pr, pa, pb *pval) int {
	if pr.zero {
		return 0
	}
	bestFrac := -1
	maxReg := 0
	if pa != nil && !pa.zero {
		bestFrac = int(pa.fbits)
		maxReg = int(pa.rbits)
	}
	if pb != nil && !pb.zero {
		if int(pb.fbits) > bestFrac {
			bestFrac = int(pb.fbits)
		}
		if int(pb.rbits) > maxReg {
			maxReg = int(pb.rbits)
		}
	}
	if bestFrac < 0 || int(pr.rbits) <= maxReg {
		return 0
	}
	return bestFrac - int(pr.fbits)
}
