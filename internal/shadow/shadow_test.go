package shadow

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"positdebug/internal/codegen"
	"positdebug/internal/instrument"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/lang"
	"positdebug/internal/posit"
)

// buildPipeline compiles and instruments a source, returning a runtime and
// a machine wired together.
func buildPipeline(tb testing.TB, src string, cfg Config) (*Runtime, *interp.Machine) {
	tb.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		tb.Fatalf("check: %v", err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	inst := instrument.Instrument(mod, instrument.Options{})
	if err := inst.Verify(); err != nil {
		tb.Fatalf("verify instrumented: %v", err)
	}
	rt := NewRuntime(inst, cfg)
	m := interp.New(inst)
	m.Hooks = rt
	return rt, m
}

// pipeline compiles, instruments and runs a source under the shadow
// runtime, returning the result, the printed output and the summary.
func pipeline(t *testing.T, src string, cfg Config, fn string, args ...uint64) (uint64, string, *Summary) {
	t.Helper()
	rt, m := buildPipeline(t, src, cfg)
	var out bytes.Buffer
	m.Out = &out
	v, err := m.Run(fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, out.String(), rt.Summary()
}

const rootCountSrc = `
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
func main(): i64 {
	var a: p32 = 18309067625725952.0;
	var b: p32 = 3246642954240.0;
	var c: p32 = 143923904.0;
	return rootcount(a, b, c);
}
`

// TestFig2Detection reproduces the paper's headline example end to end:
// the posit program returns 1 root while shadow execution knows there are
// 2; PositDebug must report the catastrophic cancellation and the branch
// flip, with a DAG rooted at the subtraction (Figure 5).
func TestFig2Detection(t *testing.T) {
	v, _, sum := pipeline(t, rootCountSrc, DefaultConfig(), "main")
	if int64(v) != 1 {
		t.Fatalf("program result = %d, want 1 (the wrong-but-actual result)", int64(v))
	}
	if !sum.Has(KindCancellation) {
		t.Fatalf("catastrophic cancellation not detected: %s", sum)
	}
	if sum.BranchFlips == 0 {
		t.Fatalf("branch flip not detected: %s", sum)
	}
	var cc *Report
	for _, r := range sum.Reports {
		if r.Kind == KindCancellation {
			cc = r
			break
		}
	}
	if cc == nil {
		t.Fatal("no cancellation report materialized")
	}
	if !strings.Contains(cc.Text, "-") {
		t.Fatalf("cancellation reported at %q, want the subtraction", cc.Text)
	}
	if cc.DAG == nil {
		t.Fatal("cancellation report carries no DAG")
	}
	// Figure 5's DAG has the subtraction, two multiplications, the
	// constant 4.0 and the loaded operands: at least 5 nodes.
	if cc.DAG.Size() < 5 {
		t.Fatalf("DAG too small (%d nodes):\n%s", cc.DAG.Size(), cc.DAG.Render())
	}
	rendered := cc.DAG.Render()
	for _, frag := range []string{"t1 - t2", "b * b", "4"} {
		if !strings.Contains(rendered, frag) {
			t.Fatalf("DAG missing %q:\n%s", frag, rendered)
		}
	}
}

// TestMetadataThroughMemory: the DAG must cross store/load pairs via the
// last-writer pointer in shadow memory (Figure 4's red arrows).
func TestMetadataThroughMemory(t *testing.T) {
	// big1 and big2 differ by 10^9 — representable in float64 (so the
	// shadow sees two values) but far below the ⟨32,2⟩ ULP at 1.8e16
	// (so the posits collapse to one value and the difference cancels).
	src := `
var buf: [4]p32;

func main(): i64 {
	var big1: p32 = 18309067625725952.0;
	var big2: p32 = 18309068625725952.0;
	buf[0] = big1 * 577.0;
	buf[1] = big2 * 577.0;
	var d: p32 = buf[0] - buf[1];
	print(d);
	return 0;
}
`
	_, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if !sum.Has(KindCancellation) {
		t.Fatalf("expected cancellation through memory: %s", sum)
	}
	var cc *Report
	for _, r := range sum.Reports {
		if r.Kind == KindCancellation {
			cc = r
		}
	}
	rendered := cc.DAG.Render()
	// The multiplications happened before the stores; the DAG must reach
	// them through the loads.
	if !strings.Contains(rendered, "*") {
		t.Fatalf("DAG did not cross the store/load boundary:\n%s", rendered)
	}
}

// TestBranchFlipResync: after a flip the shadow must follow the program's
// values so subsequent detection stays meaningful (§3.1).
func TestBranchFlipResync(t *testing.T) {
	src := `
func main(): i64 {
	var a: p32 = 18309067625725952.0;
	var b: p32 = 3246642954240.0;
	var c: p32 = 143923904.0;
	var d: p32 = b * b - 4.0 * a * c;
	var flips: i64 = 0;
	if (d == 0.0) { flips = 1; }
	// After the flip, this comparison agrees between program and shadow
	// because the shadow was re-initialized from the program's values.
	if (d < 1.0) { flips = flips + 1; }
	return flips;
}
`
	v, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if int64(v) != 2 {
		t.Fatalf("result = %d, want 2", int64(v))
	}
	if sum.BranchFlips != 1 {
		t.Fatalf("branch flips = %d, want exactly 1 (resync must prevent the second)", sum.BranchFlips)
	}
}

// TestWrongCast: posit→int casts that disagree with the shadow are
// reported (§3.4).
func TestWrongCast(t *testing.T) {
	// The difference cancels to 0 in posits while the shadow knows it is
	// ≈577e9; the integer cast therefore disagrees (0 vs a large count).
	src := `
func main(): i64 {
	var big1: p32 = 18309067625725952.0;
	var big2: p32 = 18309068625725952.0;
	var d: p32 = big1 * 577.0 - big2 * 577.0;
	return i64(d);
}
`
	v, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if int64(v) != 0 {
		t.Fatalf("program cast = %d, want 0", int64(v))
	}
	if !sum.Has(KindWrongCast) {
		t.Fatalf("wrong int cast not detected: %s", sum)
	}
}

// TestSaturation: operations that silently clamp to maxpos/minpos are
// reported (§2.2 "saturation with maxpos and minpos").
func TestSaturation(t *testing.T) {
	src := `
func main(): p32 {
	var x: p32 = 1000000000000000000.0;
	var y: p32 = x * x * x;
	return y;
}
`
	_, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if !sum.Has(KindSaturation) {
		t.Fatalf("saturation not detected: %s", sum)
	}
}

// TestNaRDetection: producing NaR is reported as an exception.
func TestNaRDetection(t *testing.T) {
	src := `
func main(): p32 {
	var x: p32 = 2.0;
	var y: p32 = x - 3.0;
	return sqrt(y);
}
`
	_, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if !sum.Has(KindNaR) {
		t.Fatalf("NaR not detected: %s", sum)
	}
}

// TestPrecisionLoss: a division whose result needs far more regime bits
// than its operands loses fraction bits (§2.2, the quadratic-root case
// study's second root).
func TestPrecisionLoss(t *testing.T) {
	src := `
func main(): p32 {
	var num: p32 = 650000.0;
	var den: p32 = 0.0000000288;
	return num / den;
}
`
	cfg := DefaultConfig()
	cfg.PrecisionLossThreshold = 5
	_, _, sum := pipeline(t, src, cfg, "main")
	if !sum.Has(KindPrecisionLoss) {
		t.Fatalf("precision loss not detected: %s", sum)
	}
}

// TestWrongOutput: printed values with large error are flagged.
func TestWrongOutput(t *testing.T) {
	src := `
func main(): i64 {
	var a: p32 = 18309067625725952.0;
	var b: p32 = 3246642954240.0;
	var c: p32 = 143923904.0;
	print(b * b - 4.0 * a * c);
	return 0;
}
`
	_, out, sum := pipeline(t, rootCountSrc, DefaultConfig(), "main")
	_ = out
	_ = sum
	_, _, sum2 := pipeline(t, src, DefaultConfig(), "main")
	if !sum2.Has(KindWrongOutput) {
		t.Fatalf("wrong output not detected: %s", sum2)
	}
	if sum2.OutputMaxErrBits < 52 {
		t.Fatalf("output error bits = %d, want ≥ 52 (all fraction bits wrong)", sum2.OutputMaxErrBits)
	}
}

// TestQuireShadow: fused accumulation through the quire must agree with
// the shadow execution (the Simpson's-rule fix, §5.2.2).
func TestQuireShadow(t *testing.T) {
	// Terms and the total are exactly representable in ⟨32,2⟩, so the
	// fused sum must agree with the shadow to the last bit. (Outside the
	// golden zone, even a correctly rounded posit shows tens of bits of
	// double-ULP distance — the paper's §4.2 caveat — so this test stays
	// inside it.)
	src := `
var xs: [128]p32;

func main(): p32 {
	for (var i: i64 = 0; i < 128; i += 1) {
		xs[i] = p32(i) + 0.25;
	}
	qclear();
	for (var i: i64 = 0; i < 128; i += 1) {
		qadd(xs[i]);
	}
	return qround_p32();
}
`
	cfg := DefaultConfig()
	cfg.OutputThreshold = 5
	_, _, sum := pipeline(t, src, cfg, "main")
	if sum.Has(KindWrongOutput) {
		t.Fatalf("fused sum must match the shadow execution: %s", sum)
	}
	if sum.OutputMaxErrBits > 1 {
		t.Fatalf("fused sum output error = %d bits, want ≤ 1", sum.OutputMaxErrBits)
	}
}

// TestTracingOffStillDetects: disabling tracing removes DAGs but keeps
// detection (the Figure 8/10 configuration).
func TestTracingOffStillDetects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tracing = false
	_, _, sum := pipeline(t, rootCountSrc, cfg, "main")
	if !sum.Has(KindCancellation) {
		t.Fatalf("cancellation must be detected without tracing: %s", sum)
	}
	for _, r := range sum.Reports {
		if r.DAG != nil {
			t.Fatal("no DAGs may be produced with tracing off")
		}
	}
}

// TestUninstrumentedInterfacing: a skipped (library-like) function writes
// program memory without updating shadow memory; the load-side program-
// value check must catch it and re-initialize (§4.1).
func TestUninstrumentedInterfacing(t *testing.T) {
	src := `
var g: p32;

func libwrite() {
	g = 42.5;
}
func main(): p32 {
	g = 1.0;
	libwrite();
	return g + 0.0;
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		t.Fatal(err)
	}
	inst := instrument.Instrument(mod, instrument.Options{Skip: map[string]bool{"libwrite": true}})
	rt := NewRuntime(inst, DefaultConfig())
	m := interp.New(inst)
	m.Hooks = rt
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if posit.Config32.ToFloat64(posit.Bits(v)) != 42.5 {
		t.Fatalf("result = %v", posit.Config32.ToFloat64(posit.Bits(v)))
	}
	sum := rt.Summary()
	if sum.UninstrumentedWrites == 0 {
		t.Fatalf("uninstrumented write not detected: %s", sum)
	}
	// And no spurious error: the shadow adopted the program's value.
	if sum.OutputMaxErrBits > 1 {
		t.Fatalf("interfacing produced phantom error: %d bits", sum.OutputMaxErrBits)
	}
}

// TestLockAndKeyAcrossFrames: a returned value's operand pointers refer to
// the dead callee frame; DAG traversal must stop at the invalid reference
// instead of following garbage (§3.2, and the single-instruction DAGs the
// paper observed in §5.1).
func TestLockAndKeyAcrossFrames(t *testing.T) {
	src := `
func cancel(): p32 {
	var big1: p32 = 10564069047231623.0;
	var big2: p32 = 10564049965177959.0;
	return (big1 - big2) - (big1 - big2 + 1000000000.0);
}
func main(): i64 {
	var r: p32 = cancel();
	// Force frame churn so the callee's shadow frame is recycled.
	var x: p32 = helper();
	print(r + x);
	return 0;
}
func helper(): p32 {
	var a: p32 = 1.5;
	var b: p32 = 2.5;
	return a * b;
}
`
	cfg := DefaultConfig()
	cfg.OutputThreshold = 10
	_, _, sum := pipeline(t, src, cfg, "main")
	for _, r := range sum.Reports {
		if r.DAG != nil {
			assertNoGarbage(t, r.DAG)
		}
	}
}

func assertNoGarbage(t *testing.T, n *DAGNode) {
	t.Helper()
	if n.Size() > 64 {
		t.Fatal("DAG exploded — stale pointers followed")
	}
}

// TestFPSanitizerMode: the identical runtime serves FP programs — an f32
// cancellation must be detected just like the posit one.
func TestFPSanitizerMode(t *testing.T) {
	src := `
func main(): f32 {
	var a: f32 = 16777216.0;
	var b: f32 = a + 1.0;   // rounds to a in f32
	var d: f32 = b - a;     // 0.0, exact answer 1.0
	print(d);
	return d;
}
`
	cfg := DefaultConfig()
	cfg.OutputThreshold = 10
	_, _, sum := pipeline(t, src, cfg, "main")
	if !sum.Has(KindCancellation) && !sum.Has(KindWrongOutput) {
		t.Fatalf("f32 cancellation not detected: %s", sum)
	}
}

// TestF64HighError: FP error accumulation through a load/store chain.
func TestF64HighError(t *testing.T) {
	src := `
func main(): f64 {
	var x: f64 = 1.0e16;
	var y: f64 = x + 1.0;
	var d: f64 = y - x;     // 2.0 or 0.0 depending on rounding; exact 1.0
	print(d);
	return d;
}
`
	cfg := DefaultConfig()
	cfg.OutputThreshold = 5
	_, _, sum := pipeline(t, src, cfg, "main")
	if !sum.Has(KindWrongOutput) && !sum.Has(KindCancellation) {
		t.Fatalf("f64 rounding not flagged at output: %s", sum)
	}
}

// TestSummaryString smoke-tests the reporting surface.
func TestSummaryString(t *testing.T) {
	_, _, sum := pipeline(t, rootCountSrc, DefaultConfig(), "main")
	s := sum.String()
	for _, frag := range []string{"catastrophic-cancellation", "branch-flip", "numeric ops"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("summary missing %q:\n%s", frag, s)
		}
	}
	var withDAG *Report
	for _, r := range sum.Reports {
		if r.DAG != nil {
			withDAG = r
			break
		}
	}
	if withDAG == nil {
		t.Fatal("no report with DAG")
	}
	if !strings.Contains(withDAG.String(), "bits of error") {
		t.Fatal("report string")
	}
}

// TestShadowMemTrie exercises page allocation.
func TestShadowMemTrie(t *testing.T) {
	sm := newShadowMem(1 << 20)
	if sm.pageCount() != 0 {
		t.Fatal("pages must be lazy")
	}
	a := sm.get(5000)
	a.set = true
	if sm.get(5000) != a {
		t.Fatal("stable cells")
	}
	if sm.pageCount() != 1 {
		t.Fatal("one page")
	}
	sm.get(1 << 19)
	if sm.pageCount() != 2 {
		t.Fatal("two pages")
	}
	// Growth beyond the initial limit.
	sm.get(1 << 21)
	if sm.pageCount() != 3 {
		t.Fatal("grown")
	}
}

// TestOnErrorCallback: the debugger-style hook fires synchronously.
func TestOnErrorCallback(t *testing.T) {
	prog, _ := lang.Parse(rootCountSrc)
	chk, _ := lang.Check(prog)
	mod, _ := codegen.Compile(chk)
	inst := instrument.Instrument(mod, instrument.Options{})
	cfg := DefaultConfig()
	fired := 0
	cfg.OnError = func(r *Report) { fired++ }
	rt := NewRuntime(inst, cfg)
	m := interp.New(inst)
	m.Hooks = rt
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Fatal("OnError never fired")
	}
}

var _ = ir.OpNop // keep import for helper usage in future edits

// TestFMAShadow: the fused operation is shadowed with a single rounding;
// a well-conditioned fused dot product shows no spurious detections.
func TestFMAShadow(t *testing.T) {
	src := `
var xs: [32]p32;
var ys: [32]p32;

func main(): p32 {
	for (var i: i64 = 0; i < 32; i += 1) {
		xs[i] = p32(i) + 0.5;
		ys[i] = 2.0;
	}
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 32; i += 1) {
		s = fma(xs[i], ys[i], s);
	}
	return s;
}
`
	cfg := DefaultConfig()
	cfg.OutputThreshold = 5
	v, _, sum := pipeline(t, src, cfg, "main")
	// Σ 2(i+0.5) for i<32 = 1024, exactly representable.
	if posit.Config32.ToFloat64(posit.Bits(v)) != 1024 {
		t.Fatalf("fused dot = %v", posit.Config32.ToFloat64(posit.Bits(v)))
	}
	if sum.Has(KindWrongOutput) || sum.OutputMaxErrBits > 1 {
		t.Fatalf("exact fused dot flagged: %s", sum)
	}
	// The fma must appear in tracked ops.
	if sum.TotalOps == 0 {
		t.Fatal("no ops shadowed")
	}
}

// TestBreakOn: the conditional-breakpoint workflow — execution halts at
// the first report matching the predicate and Machine.Run surfaces it.
func TestBreakOn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BreakOn = func(r *Report) bool { return r.Kind == KindCancellation }
	rt, m := buildPipeline(t, rootCountSrc, cfg)
	_, err := m.Run("main")
	var stopped *interp.Stopped
	if !errorsAs(err, &stopped) {
		t.Fatalf("want *interp.Stopped, got %v", err)
	}
	rep, ok := stopped.Reason.(*Report)
	if !ok || rep.Kind != KindCancellation {
		t.Fatalf("breakpoint payload: %#v", stopped.Reason)
	}
	if rep.DAG == nil {
		t.Fatal("breakpoint report must carry the DAG")
	}
	// Branch flips after the break point must not have been reached.
	if rt.Summary().BranchFlips != 0 {
		t.Fatal("execution must have stopped before the comparison")
	}
}

func errorsAs(err error, target **interp.Stopped) bool {
	s, ok := err.(*interp.Stopped)
	if ok {
		*target = s
	}
	return ok
}

// TestP16Programs: the runtime serves every posit width; a ⟨16,1⟩ program
// cancels far earlier than ⟨32,2⟩ would.
func TestP16Programs(t *testing.T) {
	src := `
func main(): p16 {
	var a: p16 = 3001.0;
	var b: p16 = 3002.0;   // rounds to the same p16 (11 frac bits at 2^11)
	var d: p16 = (a * 17.0) - (b * 17.0);
	print(d);
	return d;
}
`
	_, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if !sum.Has(KindCancellation) && !sum.Has(KindHighError) {
		t.Fatalf("p16 cancellation not detected: %s", sum)
	}
}

// TestMixedWidthProgram: p16 and p32 values coexist; casts propagate
// metadata across widths.
func TestMixedWidthProgram(t *testing.T) {
	src := `
func main(): p32 {
	var narrow: p16 = 0.1;
	var wide: p32 = p32(narrow);   // carries p16's rounding error
	var ref: p32 = 0.1;
	var diff: p32 = (wide - ref) * 1000000.0;
	print(diff);
	return diff;
}
`
	cfg := DefaultConfig()
	cfg.OutputThreshold = 20
	_, out, sum := pipeline(t, src, cfg, "main")
	if strings.TrimSpace(out) == "0" {
		t.Fatal("p16 0.1 must differ from p32 0.1")
	}
	_ = sum
}

// TestDeepRecursionLockReuse: hundreds of nested frames exercise the lock
// stack's push/invalidate/reuse cycle; keys stay monotonic so references
// into dead frames always fail validation, and detection still works at
// the bottom of the stack.
func TestDeepRecursionLockReuse(t *testing.T) {
	src := `
func deep(n: i64, x: p32): p32 {
	if (n == 0) {
		var big1: p32 = 18309067625725952.0;
		var big2: p32 = 18309068625725952.0;
		return (big1 * 577.0 - big2 * 577.0) + x;
	}
	return deep(n - 1, x + 0.0078125) - 0.0078125;
}
func main(): p32 {
	var total: p32 = 0.0;
	for (var rep: i64 = 0; rep < 20; rep += 1) {
		total = deep(400, 1.0);
	}
	return total;
}
`
	_, _, sum := pipeline(t, src, DefaultConfig(), "main")
	if !sum.Has(KindCancellation) {
		t.Fatalf("cancellation at the bottom of 400 frames not detected: %s", sum)
	}
	for _, r := range sum.Reports {
		if r.DAG != nil && r.DAG.Size() > 200 {
			t.Fatalf("DAG exploded across frames: %d nodes", r.DAG.Size())
		}
	}
}

// TestConcurrentRuntimes: separate machines with separate runtimes are
// independent; running them concurrently must be race-free (the posit and
// bigfp layers are pure, all runtime state is per-instance).
func TestConcurrentRuntimes(t *testing.T) {
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					done <- fmt.Errorf("panic: %v", r)
					return
				}
			}()
			rt, m := buildPipeline(t, rootCountSrc, DefaultConfig())
			for i := 0; i < 5; i++ {
				if _, err := m.Run("main"); err != nil {
					done <- err
					return
				}
				if !rt.Summary().Has(KindCancellation) {
					done <- fmt.Errorf("missing detection")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSummaryByFunctionAndWorst(t *testing.T) {
	_, _, sum := pipeline(t, rootCountSrc, DefaultConfig(), "main")
	by := sum.ByFunction()
	if len(by["rootcount"]) == 0 {
		t.Fatalf("reports must group under rootcount: %v", by)
	}
	w := sum.WorstReport()
	if w == nil || w.ErrBits < 60 {
		t.Fatalf("worst report: %+v", w)
	}
	empty := &Summary{}
	if empty.WorstReport() != nil {
		t.Fatal("empty summary has no worst report")
	}
}

// TestDAGRenderGolden pins the exact rendering of the Figure 5 DAG so
// report formatting stays stable.
func TestDAGRenderGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDAGDepth = 2
	_, _, sum := pipeline(t, rootCountSrc, cfg, "main")
	var cc *Report
	for _, r := range sum.Reports {
		if r.Kind == KindCancellation {
			cc = r
		}
	}
	if cc == nil {
		t.Fatal("no cancellation report")
	}
	got := cc.DAG.Render()
	// The multiplications' operands resolve through the caller's constant
	// metadata (the parameters were passed from main's literals and the
	// frame is still live) — the cross-frame propagation of Figure 4.
	want := `[63 bits] - t1 - t2 @5:19  program=0 shadow=2.405071383e+20
  └─ [44 bits] * b * b @3:18  program=1.0578100921628005e+25 shadow=1.054069047e+25
       └─ [0 bits] const 3246642954240.0 @12:15  program=3.24664295424e+12 shadow=3.246642954e+12
       └─ [0 bits] const 3246642954240.0 @12:15  program=3.24664295424e+12 shadow=3.246642954e+12
  └─ [44 bits] * 4.0 * a * c @4:24  program=1.0578100921628005e+25 shadow=1.054044997e+25
       └─ [0 bits] * 4.0 * a @4:20  program=7.32362705029038e+16 shadow=7.32362705e+16
       └─ [0 bits] const 143923904.0 @13:15  program=1.43923904e+08 shadow=143923904
`
	if got != want {
		t.Fatalf("DAG rendering changed:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestUnlimitedReports: MaxReports = 0 keeps every report.
func TestUnlimitedReports(t *testing.T) {
	src := `
func main(): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 50; i += 1) {
		var x: p32 = 1000000000000000000.0;
		s = x * x * x;
	}
	return s;
}
`
	cfg := DefaultConfig()
	cfg.MaxReports = 0
	_, _, sum := pipeline(t, src, cfg, "main")
	if len(sum.Reports) < 50 {
		t.Fatalf("unlimited reports truncated: %d kept", len(sum.Reports))
	}
	cfg.MaxReports = 3
	_, _, sum = pipeline(t, src, cfg, "main")
	if len(sum.Reports) != 3 {
		t.Fatalf("cap ignored: %d kept", len(sum.Reports))
	}
}
