package shadow

import (
	"positdebug/internal/interp"
	"positdebug/internal/ir"
)

// buildDAG walks the metadata graph rooted at a temporary and materializes
// the DAG of instructions likely responsible for an error (§3.5): operand
// references are followed only when their lock-and-key check passes and
// their timestamp precedes the referring node's (so a loop-carried
// temporary does not appear as its own ancestor).
func (r *Runtime) buildDAG(root *TempMeta) *DAGNode {
	return r.dagNode(root, root.Time+1, r.cfg.MaxDAGDepth)
}

func (r *Runtime) dagNode(t *TempMeta, parentTime uint64, depth int) *DAGNode {
	meta := r.mod.Meta(t.Inst)
	n := &DAGNode{
		Inst:    t.Inst,
		Text:    meta.Text,
		Op:      opLabel(meta),
		Pos:     metaPos(meta),
		Program: interp.FormatValue(meta.Type, t.Prog),
		Shadow:  r.orc.Format(&t.Real),
		ErrBits: int(t.Err),
	}
	if t.Inst < 0 {
		n.Op = "value"
		n.Text = "(program value)"
	}
	if depth <= 0 {
		return n
	}
	for _, ref := range []mdRef{t.Op1, t.Op2} {
		if !ref.valid() {
			continue
		}
		child := ref.md
		if child.Time >= parentTime && parentTime > 0 {
			// The operand's metadata was overwritten after this node was
			// produced (a loop rewrote the static temporary): stop.
			continue
		}
		if child.Time >= t.Time && t.Time > 0 {
			continue
		}
		n.Kids = append(n.Kids, r.dagNode(child, t.Time, depth-1))
	}
	return n
}

func opLabel(meta ir.InstrMeta) string {
	switch meta.Op {
	case ir.OpBin:
		return ir.BinKind(meta.Kind).String()
	case ir.OpUn:
		return ir.UnKind(meta.Kind).String()
	case ir.OpCmp:
		return ir.CmpPred(meta.Kind).String()
	case ir.OpLoad:
		return "load"
	case ir.OpStore:
		return "store"
	case ir.OpConst:
		return "const"
	case ir.OpCast:
		return "cast"
	case ir.OpCall:
		return "call"
	case ir.OpQVal:
		return "qval"
	case ir.OpPrint:
		return "print"
	default:
		return meta.Op.String()
	}
}
