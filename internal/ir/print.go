package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a readable assembly-like form, mainly for
// tests and debugging of the compilation pipeline.
func (m *Module) String() string {
	var sb strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&sb, "global %s: %s @%d (%d bytes)\n", g.Name, g.Type, g.Offset, g.Size)
	}
	for _, f := range m.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "r%d: %s", i, p)
	}
	fmt.Fprintf(&sb, "): %s  ; regs=%d frame=%d\n", f.Ret, f.NumRegs, f.FrameSize)
	for bi := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", bi)
		for _, in := range f.Blocks[bi].Instrs {
			sb.WriteString("  " + in.String() + "\n")
		}
	}
	return sb.String()
}

// String renders one instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const.%s %#x", in.Dst, in.Type, in.Imm)
	case OpMov:
		return fmt.Sprintf("r%d = mov.%s r%d", in.Dst, in.Type, in.A)
	case OpBin:
		return fmt.Sprintf("r%d = r%d %s r%d (%s)", in.Dst, in.A, BinKind(in.Kind), in.B, in.Type)
	case OpUn:
		return fmt.Sprintf("r%d = %s r%d (%s)", in.Dst, UnKind(in.Kind), in.A, in.Type)
	case OpCmp:
		return fmt.Sprintf("r%d = r%d %s r%d (%s)", in.Dst, in.A, CmpPred(in.Kind), in.B, in.Type)
	case OpCast:
		return fmt.Sprintf("r%d = cast.%s→%s r%d", in.Dst, in.Type, in.Type2, in.A)
	case OpLoad:
		return fmt.Sprintf("r%d = load.%s [r%d]", in.Dst, in.Type, in.A)
	case OpStore:
		return fmt.Sprintf("store.%s [r%d] = r%d", in.Type, in.A, in.B)
	case OpFrameAddr:
		return fmt.Sprintf("r%d = fp+%d", in.Dst, in.Imm)
	case OpGlobalAddr:
		return fmt.Sprintf("r%d = global@%d", in.Dst, in.Imm)
	case OpAddrIndex:
		return fmt.Sprintf("r%d = r%d + r%d*%d", in.Dst, in.A, in.B, in.Imm)
	case OpBr:
		return fmt.Sprintf("br r%d, b%d, b%d", in.A, in.Blk[0], in.Blk[1])
	case OpJmp:
		return fmt.Sprintf("jmp b%d", in.Blk[0])
	case OpCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = fmt.Sprintf("r%d", a)
		}
		if in.Dst >= 0 {
			return fmt.Sprintf("r%d = call f%d(%s)", in.Dst, in.Fn, strings.Join(args, ", "))
		}
		return fmt.Sprintf("call f%d(%s)", in.Fn, strings.Join(args, ", "))
	case OpRet:
		if in.A >= 0 {
			return fmt.Sprintf("ret r%d", in.A)
		}
		return "ret"
	case OpPrint:
		return fmt.Sprintf("print.%s r%d", in.Type, in.A)
	case OpPrintStr:
		return fmt.Sprintf("print %q", in.Str)
	case OpQClear:
		return "qclear"
	case OpQAdd:
		if in.Kind == 1 {
			return fmt.Sprintf("qsub.%s r%d", in.Type, in.A)
		}
		return fmt.Sprintf("qadd.%s r%d", in.Type, in.A)
	case OpQMAdd:
		if in.Kind == 1 {
			return fmt.Sprintf("qmsub.%s r%d, r%d", in.Type, in.A, in.B)
		}
		return fmt.Sprintf("qmadd.%s r%d, r%d", in.Type, in.A, in.B)
	case OpQVal:
		return fmt.Sprintf("r%d = qval.%s", in.Dst, in.Type)
	case OpFMA:
		return fmt.Sprintf("r%d = fma.%s(r%d, r%d, r%d)", in.Dst, in.Type,
			in.Args[0], in.Args[1], in.Args[2])
	default:
		if strings.HasPrefix(in.Op.String(), "sh.") {
			return fmt.Sprintf("%s id=%d dst=r%d a=r%d b=r%d (%s)", in.Op, in.ID, in.Dst, in.A, in.B, in.Type)
		}
		return in.Op.String()
	}
}
