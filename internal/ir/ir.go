// Package ir defines the register-based intermediate representation that
// PCL programs compile to and that the PositDebug instrumentation pass
// transforms. Its shape deliberately mirrors the slice of LLVM IR the paper
// operates on: virtual registers play the role of LLVM temporaries, scalar
// variables live in frame slots accessed through explicit loads and stores
// (so shadow memory is exercised exactly as in the paper), and functions
// are lists of basic blocks ending in explicit control transfers.
//
// Shadow instructions (OpShadow*) are ordinary instructions inserted by
// internal/instrument; an uninstrumented module contains none and pays no
// cost, which is what makes the paper's overhead measurements meaningful.
package ir

import (
	"positdebug/internal/lang"
	"positdebug/internal/posit"
)

// Type is the scalar value type of a register or memory cell. All runtime
// values are carried as uint64 bit patterns: i64 as itself, bool as 0/1,
// f32/f64 as their IEEE bits, posits as their pattern in the low bits.
type Type uint8

// Scalar types.
const (
	Void Type = iota
	I64
	Bool
	F32
	F64
	P8
	P16
	P32
)

var typeNames = [...]string{"void", "i64", "bool", "f32", "f64", "p8", "p16", "p32"}

func (t Type) String() string { return typeNames[t] }

// Size returns the storage footprint in bytes.
func (t Type) Size() uint32 {
	switch t {
	case I64, F64:
		return 8
	case F32, P32:
		return 4
	case P16:
		return 2
	case Bool, P8:
		return 1
	default:
		return 0
	}
}

// IsPosit reports whether t is a posit type.
func (t Type) IsPosit() bool { return t == P8 || t == P16 || t == P32 }

// IsFloat reports whether t is an IEEE floating-point type.
func (t Type) IsFloat() bool { return t == F32 || t == F64 }

// IsNumeric reports whether t is shadow-tracked (posit or float).
func (t Type) IsNumeric() bool { return t.IsPosit() || t.IsFloat() }

// PositConfig returns the posit configuration of a posit type.
func (t Type) PositConfig() posit.Config {
	switch t {
	case P8:
		return posit.Config8
	case P16:
		return posit.Config16
	default:
		return posit.Config32
	}
}

// TypeFromLang maps a language scalar kind to an IR type.
func TypeFromLang(k lang.TypeKind) Type {
	switch k {
	case lang.TI64:
		return I64
	case lang.TBool:
		return Bool
	case lang.TF32:
		return F32
	case lang.TF64:
		return F64
	case lang.TP8:
		return P8
	case lang.TP16:
		return P16
	case lang.TP32:
		return P32
	default:
		return Void
	}
}

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes. The OpShadow* group is only ever produced by the
// instrumentation pass.
const (
	OpNop Op = iota
	OpConst
	OpMov
	OpBin
	OpUn
	OpCmp
	OpCast
	OpLoad
	OpStore
	OpFrameAddr  // Dst = frame pointer + Imm
	OpGlobalAddr // Dst = Imm (absolute address of a global)
	OpAddrIndex  // Dst = A + B·Imm (address arithmetic for array indexing)
	OpBr         // if reg A then Blocks[0] else Blocks[1]
	OpJmp        // Blocks[0]
	OpCall       // Dst = Callee(Args…); Dst −1 for void
	OpRet        // return A (A = −1 for void)
	OpPrint
	OpPrintStr
	OpQClear
	OpQAdd  // quire += A (Kind=0) or −= A (Kind=1)
	OpQMAdd // quire += A·B (Kind=0) or −= (Kind=1)
	OpQVal  // Dst = round quire to Type
	OpFMA   // Dst = Args[0]·Args[1] + Args[2], single rounding

	// Shadow instructions: each mirrors the instruction it follows (or, for
	// branches/calls/returns, precedes) and routes the event to the Hooks.
	OpShadowConst
	OpShadowMov
	OpShadowBin
	OpShadowUn
	OpShadowCmp
	OpShadowCast
	OpShadowLoad
	OpShadowStore
	OpShadowPreCall
	OpShadowPostCall
	OpShadowRet
	OpShadowPrint
	OpShadowQClear
	OpShadowQAdd
	OpShadowQMAdd
	OpShadowQVal
	OpShadowFMA
)

var opNames = map[Op]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov", OpBin: "bin", OpUn: "un",
	OpCmp: "cmp", OpCast: "cast", OpLoad: "load", OpStore: "store",
	OpFrameAddr: "frameaddr", OpGlobalAddr: "globaladdr", OpAddrIndex: "addridx",
	OpBr: "br", OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpPrint: "print",
	OpPrintStr: "printstr", OpQClear: "qclear", OpQAdd: "qadd",
	OpQMAdd: "qmadd", OpQVal: "qval",
	OpShadowConst: "sh.const", OpShadowMov: "sh.mov", OpShadowBin: "sh.bin",
	OpShadowUn: "sh.un", OpShadowCmp: "sh.cmp", OpShadowCast: "sh.cast",
	OpShadowLoad: "sh.load", OpShadowStore: "sh.store",
	OpShadowPreCall: "sh.precall", OpShadowPostCall: "sh.postcall",
	OpShadowRet: "sh.ret", OpShadowPrint: "sh.print", OpShadowQClear: "sh.qclear",
	OpShadowQAdd: "sh.qadd", OpShadowQMAdd: "sh.qmadd", OpShadowQVal: "sh.qval",
	OpFMA: "fma", OpShadowFMA: "sh.fma",
}

func (o Op) String() string { return opNames[o] }

// BinKind selects the operation of OpBin.
type BinKind uint8

// Binary operation kinds.
const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinRem // i64 only
)

var binNames = [...]string{"+", "-", "*", "/", "%"}

func (b BinKind) String() string { return binNames[b] }

// UnKind selects the operation of OpUn.
type UnKind uint8

// Unary operation kinds.
const (
	UnNeg UnKind = iota
	UnNot
	UnSqrt
	UnAbs
)

var unNames = [...]string{"neg", "not", "sqrt", "abs"}

func (u UnKind) String() string { return unNames[u] }

// CmpPred selects the predicate of OpCmp.
type CmpPred uint8

// Comparison predicates.
const (
	CmpEq CmpPred = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

var predNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

func (p CmpPred) String() string { return predNames[p] }

// Instr is a single instruction. Fields are interpreted per opcode; unused
// register fields hold −1.
type Instr struct {
	Op    Op
	Kind  uint8 // BinKind / UnKind / CmpPred / quire negate flag
	Type  Type  // operand or result type
	Type2 Type  // cast target type
	Dst   int32
	A, B  int32
	Imm   uint64
	ID    int32    // registry index (source info); −1 when untracked
	Blk   [2]int32 // branch targets
	Fn    int32    // callee function index
	Args  []int32  // call argument registers
	Str   string   // print string payload
}

// InstrMeta records source information for one tracked instruction; the
// shadow runtime renders DAG nodes from it.
type InstrMeta struct {
	Func string
	Pos  lang.Pos
	Text string // short human-readable form, e.g. "t1 - t2" or variable name
	Op   Op
	Kind uint8
	Type Type
	// Const holds the exact source-literal value for OpConst instructions;
	// the shadow execution seeds its high-precision value from it rather
	// than from the already-rounded program bits (the paper's runtime does
	// the same with MPFR constants).
	Const float64
}

// Block is a basic block: straight-line instructions ending in a control
// transfer (OpBr, OpJmp or OpRet).
type Block struct {
	Instrs []Instr
}

// Func is a function body.
type Func struct {
	Name         string
	Params       []Type // parameter registers are 0..len(Params)-1
	Ret          Type
	Blocks       []Block
	NumRegs      int32
	FrameSize    uint32
	Instrumented bool
}

// GlobalInfo describes one global variable's storage.
type GlobalInfo struct {
	Name   string
	Type   Type // element type for arrays
	Offset uint32
	Size   uint32
}

// Module is a compiled compilation unit.
type Module struct {
	Funcs      []*Func
	FuncIdx    map[string]int32
	Globals    []GlobalInfo
	GlobalBase uint32 // first address of global storage
	GlobalSize uint32
	Registry   []InstrMeta // indexed by Instr.ID
	// Source names where the module came from (workload name, source
	// hash). PCL has no file system, so reports and profiles prefix
	// positions with this to form a conventional file:line:col.
	Source string
}

// Meta returns the registry entry for an instruction id, or a zero entry
// for untracked instructions.
func (m *Module) Meta(id int32) InstrMeta {
	if id < 0 || int(id) >= len(m.Registry) {
		return InstrMeta{}
	}
	return m.Registry[id]
}

// FuncByName returns the function with the given name, or nil.
func (m *Module) FuncByName(name string) *Func {
	i, ok := m.FuncIdx[name]
	if !ok {
		return nil
	}
	return m.Funcs[i]
}
