package ir

import (
	"strings"
	"testing"

	"positdebug/internal/posit"
)

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		typ     Type
		size    uint32
		posit   bool
		float   bool
		numeric bool
	}{
		{I64, 8, false, false, false},
		{Bool, 1, false, false, false},
		{F32, 4, false, true, true},
		{F64, 8, false, true, true},
		{P8, 1, true, false, true},
		{P16, 2, true, false, true},
		{P32, 4, true, false, true},
		{Void, 0, false, false, false},
	}
	for _, c := range cases {
		if c.typ.Size() != c.size {
			t.Fatalf("%v size %d", c.typ, c.typ.Size())
		}
		if c.typ.IsPosit() != c.posit || c.typ.IsFloat() != c.float || c.typ.IsNumeric() != c.numeric {
			t.Fatalf("%v predicates", c.typ)
		}
	}
	if P32.PositConfig() != posit.Config32 || P16.PositConfig() != posit.Config16 || P8.PositConfig() != posit.Config8 {
		t.Fatal("posit configs")
	}
}

func minimalModule() *Module {
	f := &Func{
		Name:    "f",
		Params:  []Type{I64},
		Ret:     I64,
		NumRegs: 3,
		Blocks: []Block{{Instrs: []Instr{
			{Op: OpConst, Type: I64, Dst: 1, Imm: 2, ID: -1, A: -1, B: -1},
			{Op: OpBin, Kind: uint8(BinAdd), Type: I64, Dst: 2, A: 0, B: 1, ID: -1},
			{Op: OpRet, A: 2, Dst: -1, B: -1, ID: -1},
		}}},
	}
	return &Module{Funcs: []*Func{f}, FuncIdx: map[string]int32{"f": 0}, GlobalBase: 4096}
}

func TestVerifyAcceptsMinimal(t *testing.T) {
	if err := minimalModule().Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejects(t *testing.T) {
	breakers := []struct {
		name string
		mut  func(*Module)
		want string
	}{
		{"reg out of range", func(m *Module) { m.Funcs[0].Blocks[0].Instrs[1].A = 99 }, "out of range"},
		{"missing terminator", func(m *Module) {
			m.Funcs[0].Blocks[0].Instrs[2] = Instr{Op: OpNop, ID: -1, Dst: -1, A: -1, B: -1}
		}, "terminators"},
		{"mid-block terminator", func(m *Module) {
			m.Funcs[0].Blocks[0].Instrs[0] = Instr{Op: OpJmp, Blk: [2]int32{0}, ID: -1, Dst: -1, A: -1, B: -1}
		}, "terminators"},
		{"bad branch target", func(m *Module) {
			m.Funcs[0].Blocks[0].Instrs[2] = Instr{Op: OpJmp, Blk: [2]int32{7}, ID: -1, Dst: -1, A: -1, B: -1}
		}, "target"},
		{"empty function", func(m *Module) { m.Funcs[0].Blocks = nil }, "no blocks"},
		{"bad callee", func(m *Module) {
			m.Funcs[0].Blocks[0].Instrs[1] = Instr{Op: OpCall, Fn: 4, Dst: 2, ID: -1, A: -1, B: -1}
		}, "callee"},
		{"bad registry id", func(m *Module) { m.Funcs[0].Blocks[0].Instrs[1].ID = 5 }, "registry"},
		{"call arity", func(m *Module) {
			m.Funcs[0].Blocks[0].Instrs[1] = Instr{Op: OpCall, Fn: 0, Dst: 2, ID: -1, A: -1, B: -1}
		}, "args"},
	}
	for _, br := range breakers {
		t.Run(br.name, func(t *testing.T) {
			m := minimalModule()
			br.mut(m)
			err := m.Verify()
			if err == nil || !strings.Contains(err.Error(), br.want) {
				t.Fatalf("want error containing %q, got %v", br.want, err)
			}
		})
	}
}

func TestMetaOutOfRange(t *testing.T) {
	m := minimalModule()
	if got := m.Meta(-1); got.Func != "" {
		t.Fatal("negative id must yield zero meta")
	}
	if got := m.Meta(100); got.Func != "" {
		t.Fatal("oob id must yield zero meta")
	}
}

func TestFuncByName(t *testing.T) {
	m := minimalModule()
	if m.FuncByName("f") == nil || m.FuncByName("g") != nil {
		t.Fatal("lookup")
	}
}

func TestInstrStrings(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpConst, Type: P32, Dst: 1, Imm: 0x40000000}, "r1 = const.p32 0x40000000"},
		{Instr{Op: OpBin, Kind: uint8(BinMul), Type: F64, Dst: 2, A: 0, B: 1}, "r2 = r0 * r1 (f64)"},
		{Instr{Op: OpCmp, Kind: uint8(CmpLe), Type: I64, Dst: 2, A: 0, B: 1}, "r2 = r0 <= r1 (i64)"},
		{Instr{Op: OpLoad, Type: P16, Dst: 3, A: 2}, "r3 = load.p16 [r2]"},
		{Instr{Op: OpStore, Type: F32, A: 1, B: 2}, "store.f32 [r1] = r2"},
		{Instr{Op: OpBr, A: 0, Blk: [2]int32{1, 2}}, "br r0, b1, b2"},
		{Instr{Op: OpJmp, Blk: [2]int32{3}}, "jmp b3"},
		{Instr{Op: OpRet, A: 1}, "ret r1"},
		{Instr{Op: OpRet, A: -1}, "ret"},
		{Instr{Op: OpUn, Kind: uint8(UnSqrt), Type: F64, Dst: 1, A: 0}, "r1 = sqrt r0 (f64)"},
		{Instr{Op: OpCast, Type: F64, Type2: P32, Dst: 1, A: 0}, "r1 = cast.f64→p32 r0"},
		{Instr{Op: OpQAdd, Type: P32, A: 1}, "qadd.p32 r1"},
		{Instr{Op: OpQAdd, Kind: 1, Type: P32, A: 1}, "qsub.p32 r1"},
		{Instr{Op: OpQMAdd, Type: P32, A: 1, B: 2}, "qmadd.p32 r1, r2"},
		{Instr{Op: OpQVal, Type: P32, Dst: 4}, "r4 = qval.p32"},
		{Instr{Op: OpQClear}, "qclear"},
		{Instr{Op: OpPrint, Type: I64, A: 0}, "print.i64 r0"},
		{Instr{Op: OpPrintStr, Str: "hi"}, `print "hi"`},
		{Instr{Op: OpFrameAddr, Dst: 1, Imm: 16}, "r1 = fp+16"},
		{Instr{Op: OpGlobalAddr, Dst: 1, Imm: 4096}, "r1 = global@4096"},
		{Instr{Op: OpAddrIndex, Dst: 3, A: 1, B: 2, Imm: 8}, "r3 = r1 + r2*8"},
		{Instr{Op: OpMov, Type: Bool, Dst: 1, A: 0}, "r1 = mov.bool r0"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Fatalf("%q != %q", got, c.want)
		}
	}
	// Shadow instruction and call rendering are format-only smoke checks.
	sh := Instr{Op: OpShadowBin, ID: 3, Dst: 2, A: 0, B: 1, Type: P32}
	if !strings.Contains(sh.String(), "sh.bin") {
		t.Fatal(sh.String())
	}
	call := Instr{Op: OpCall, Fn: 1, Dst: 2, Args: []int32{0, 1}}
	if call.String() != "r2 = call f1(r0, r1)" {
		t.Fatal(call.String())
	}
	vcall := Instr{Op: OpCall, Fn: 0, Dst: -1}
	if vcall.String() != "call f0()" {
		t.Fatal(vcall.String())
	}
}

func TestModuleString(t *testing.T) {
	m := minimalModule()
	m.Globals = append(m.Globals, GlobalInfo{Name: "g", Type: F64, Offset: 4096, Size: 8})
	s := m.String()
	for _, frag := range []string{"global g: f64 @4096", "func f(r0: i64): i64", "b0:"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in:\n%s", frag, s)
		}
	}
}

func TestVerifyShadowRegisters(t *testing.T) {
	m := minimalModule()
	f := m.Funcs[0]
	// Insert a shadow instruction with an out-of-range register mid-block.
	bad := Instr{Op: OpShadowBin, Dst: 2, A: 77, B: 1, ID: -1}
	f.Blocks[0].Instrs = append(f.Blocks[0].Instrs[:2:2],
		append([]Instr{bad}, f.Blocks[0].Instrs[2:]...)...)
	if err := m.Verify(); err == nil || !strings.Contains(err.Error(), "shadow operand") {
		t.Fatalf("want shadow operand error, got %v", err)
	}
}
