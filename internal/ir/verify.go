package ir

import "fmt"

// Verify checks structural well-formedness of a module: register indices in
// range, branch targets valid, blocks properly terminated, call signatures
// consistent. The compiler and the instrumentation pass both run it in
// tests to catch lowering bugs early.
func (m *Module) Verify() error {
	for fi, f := range m.Funcs {
		if err := m.verifyFunc(f); err != nil {
			return fmt.Errorf("func %s (#%d): %w", f.Name, fi, err)
		}
	}
	return nil
}

func (m *Module) verifyFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	if int32(len(f.Params)) > f.NumRegs {
		return fmt.Errorf("params exceed register count")
	}
	checkReg := func(r int32, what string) error {
		if r < 0 || r >= f.NumRegs {
			return fmt.Errorf("%s register r%d out of range [0,%d)", what, r, f.NumRegs)
		}
		return nil
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("b%d: empty block", bi)
		}
		for ii, in := range b.Instrs {
			last := ii == len(b.Instrs)-1
			isTerm := in.Op == OpBr || in.Op == OpJmp || in.Op == OpRet
			if last != isTerm {
				return fmt.Errorf("b%d[%d]: %s — terminators exactly at block ends", bi, ii, in)
			}
			switch in.Op {
			case OpBr:
				if err := checkReg(in.A, "cond"); err != nil {
					return err
				}
				fallthrough
			case OpJmp:
				for k := 0; k < 2; k++ {
					if k == 1 && in.Op == OpJmp {
						break
					}
					if t := in.Blk[k]; t < 0 || int(t) >= len(f.Blocks) {
						return fmt.Errorf("b%d[%d]: branch target b%d out of range", bi, ii, t)
					}
				}
			case OpRet:
				if f.Ret != Void {
					if err := checkReg(in.A, "ret"); err != nil {
						return err
					}
				}
			case OpCall:
				if in.Fn < 0 || int(in.Fn) >= len(m.Funcs) {
					return fmt.Errorf("b%d[%d]: callee f%d out of range", bi, ii, in.Fn)
				}
				callee := m.Funcs[in.Fn]
				if len(in.Args) != len(callee.Params) {
					return fmt.Errorf("b%d[%d]: call %s with %d args, want %d", bi, ii, callee.Name, len(in.Args), len(callee.Params))
				}
				for _, a := range in.Args {
					if err := checkReg(a, "arg"); err != nil {
						return err
					}
				}
				if callee.Ret != Void {
					if err := checkReg(in.Dst, "call dst"); err != nil {
						return err
					}
				}
			case OpConst, OpFrameAddr, OpGlobalAddr, OpQVal:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
			case OpMov, OpUn, OpLoad, OpCast:
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				if err := checkReg(in.A, "src"); err != nil {
					return err
				}
			case OpBin, OpCmp, OpStore, OpAddrIndex:
				regs := []int32{in.A, in.B}
				if in.Op != OpStore {
					regs = append(regs, in.Dst)
				}
				for _, r := range regs {
					if err := checkReg(r, "operand"); err != nil {
						return err
					}
				}
			case OpPrint, OpQAdd:
				if err := checkReg(in.A, "src"); err != nil {
					return err
				}
			case OpQMAdd:
				if err := checkReg(in.A, "a"); err != nil {
					return err
				}
				if err := checkReg(in.B, "b"); err != nil {
					return err
				}
			case OpFMA:
				if len(in.Args) != 3 {
					return fmt.Errorf("b%d[%d]: fma needs 3 operands", bi, ii)
				}
				if err := checkReg(in.Dst, "dst"); err != nil {
					return err
				}
				for _, a := range in.Args {
					if err := checkReg(a, "fma operand"); err != nil {
						return err
					}
				}
			}
			// Shadow instructions read registers at dispatch time; validate
			// every register field they might touch.
			if in.Op >= OpShadowConst {
				for _, r := range []int32{in.Dst, in.A, in.B} {
					if r >= 0 {
						if err := checkReg(r, "shadow operand"); err != nil {
							return err
						}
					}
				}
				for _, r := range in.Args {
					if err := checkReg(r, "shadow arg"); err != nil {
						return err
					}
				}
			}
			// Tracked instructions must have valid registry entries.
			if in.ID >= 0 && int(in.ID) >= len(m.Registry) {
				return fmt.Errorf("b%d[%d]: registry id %d out of range", bi, ii, in.ID)
			}
		}
	}
	return nil
}
