// Package ulp implements the error metric of the paper (§2.3, §4.2):
// because the ULP of a posit varies wildly with magnitude under tapered
// accuracy, PositDebug measures error as the ULP distance between the
// computed and the exact value after converting both to float64 — a format
// that represents every ⟨32,2⟩ posit exactly as a normal value. The number
// of "bits of error" is ⌈log2(ulp distance)⌉.
package ulp

import (
	"math"
	"math/big"
)

// Ordinal maps a float64 onto a signed integer whose natural ordering is
// numeric ordering, such that consecutive representable doubles map to
// consecutive integers. NaN maps to the most negative ordinal.
func Ordinal(f float64) int64 {
	if math.IsNaN(f) {
		return math.MinInt64
	}
	b := int64(math.Float64bits(f))
	if b < 0 {
		return math.MinInt64 - b // flip the negative range; −0 maps to 0 like +0
	}
	return b
}

// Distance returns the number of representable doubles between a and b —
// the ULP error between a computed value and an oracle value. Returns
// MaxInt64 if either value is NaN.
func Distance(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	oa, ob := Ordinal(a), Ordinal(b)
	if oa > ob {
		oa, ob = ob, oa
	}
	return uint64(ob - oa)
}

// DistanceBig converts the high-precision oracle value to float64 (rounding
// to nearest; overflow saturates at ±Inf, which maps to the extreme
// ordinals) and returns the ULP distance to the computed value.
func DistanceBig(computed float64, oracle *big.Float) uint64 {
	f, _ := oracle.Float64()
	return Distance(computed, f)
}

// DistanceBigScratch is DistanceBig with a caller-provided scratch, so the
// per-operation error check of the shadow runtime stays allocation-free.
func DistanceBigScratch(computed float64, oracle, scratch *big.Float) uint64 {
	return Distance(computed, RoundToFloat64(oracle, scratch))
}

// RoundToFloat64 rounds x to the nearest float64 exactly like
// big.Float.Float64, but routes the intermediate rounding through scratch:
// big.Float.Float64 allocates a fresh mantissa on every call, while here
// the common case (finite value with a normal-range exponent) reuses
// scratch's mantissa and performs round-to-nearest-even on integers.
// Subnormal and overflowing magnitudes take the reference slow path.
func RoundToFloat64(x, scratch *big.Float) float64 {
	if x.Sign() == 0 || x.IsInf() {
		f, _ := x.Float64()
		return f
	}
	exp := x.MantExp(nil) // |x| ∈ [2^(exp−1), 2^exp)
	if exp < -1021 || exp > 1024 {
		f, _ := x.Float64() // subnormal or overflowing: rare, keep reference behavior
		return f
	}
	if scratch.Prec() < x.Prec() {
		scratch.SetPrec(x.Prec())
	}
	scratch.SetMantExp(x, 54-exp) // |scratch| ∈ [2^53, 2^54): 53 bits + guard
	v, acc := scratch.Int64()
	neg := v < 0
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	m := u >> 1
	// RNE: round up on guard set with a nonzero tail (truncated Int64) or an
	// odd kept mantissa.
	if u&1 == 1 && (acc != big.Exact || m&1 == 1) {
		m++
		if m == 1<<53 {
			m = 1 << 52
			exp++
		}
	}
	f := math.Ldexp(float64(m), exp-53)
	if neg {
		f = -f
	}
	return f
}

// Bits converts a ULP distance to "bits of error": 0 for a distance of 0 or
// 1 (correctly rounded), otherwise ⌈log2(d)⌉. The output of a correctly
// rounded ⟨32,2⟩ operation can still legitimately show up to ~25 bits in
// double space (posit32 has 27 fraction bits vs double's 52).
func Bits(d uint64) int {
	if d <= 1 {
		return 0
	}
	// ceil(log2(d)) = bit length of d−1.
	n := 0
	for v := d - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// RelativeError returns |computed − oracle| / |oracle| as a float64, or
// +Inf when the oracle is zero and the computed value is not.
func RelativeError(computed float64, oracle *big.Float) float64 {
	if oracle.Sign() == 0 {
		if computed == 0 {
			return 0
		}
		return math.Inf(1)
	}
	c := new(big.Float).SetPrec(128).SetFloat64(computed)
	diff := new(big.Float).SetPrec(128).Sub(c, oracle)
	diff.Abs(diff)
	den := new(big.Float).SetPrec(128).Abs(oracle)
	diff.Quo(diff, den)
	f, _ := diff.Float64()
	return f
}
