// Package ulp implements the error metric of the paper (§2.3, §4.2):
// because the ULP of a posit varies wildly with magnitude under tapered
// accuracy, PositDebug measures error as the ULP distance between the
// computed and the exact value after converting both to float64 — a format
// that represents every ⟨32,2⟩ posit exactly as a normal value. The number
// of "bits of error" is ⌈log2(ulp distance)⌉.
package ulp

import (
	"math"
	"math/big"
)

// Ordinal maps a float64 onto a signed integer whose natural ordering is
// numeric ordering, such that consecutive representable doubles map to
// consecutive integers. NaN maps to the most negative ordinal.
func Ordinal(f float64) int64 {
	if math.IsNaN(f) {
		return math.MinInt64
	}
	b := int64(math.Float64bits(f))
	if b < 0 {
		return math.MinInt64 - b // flip the negative range; −0 maps to 0 like +0
	}
	return b
}

// Distance returns the number of representable doubles between a and b —
// the ULP error between a computed value and an oracle value. Returns
// MaxInt64 if either value is NaN.
func Distance(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	oa, ob := Ordinal(a), Ordinal(b)
	if oa > ob {
		oa, ob = ob, oa
	}
	return uint64(ob - oa)
}

// DistanceBig converts the high-precision oracle value to float64 (rounding
// to nearest; overflow saturates at ±Inf, which maps to the extreme
// ordinals) and returns the ULP distance to the computed value.
func DistanceBig(computed float64, oracle *big.Float) uint64 {
	f, _ := oracle.Float64()
	return Distance(computed, f)
}

// Bits converts a ULP distance to "bits of error": 0 for a distance of 0 or
// 1 (correctly rounded), otherwise ⌈log2(d)⌉. The output of a correctly
// rounded ⟨32,2⟩ operation can still legitimately show up to ~25 bits in
// double space (posit32 has 27 fraction bits vs double's 52).
func Bits(d uint64) int {
	if d <= 1 {
		return 0
	}
	// ceil(log2(d)) = bit length of d−1.
	n := 0
	for v := d - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}

// RelativeError returns |computed − oracle| / |oracle| as a float64, or
// +Inf when the oracle is zero and the computed value is not.
func RelativeError(computed float64, oracle *big.Float) float64 {
	if oracle.Sign() == 0 {
		if computed == 0 {
			return 0
		}
		return math.Inf(1)
	}
	c := new(big.Float).SetPrec(128).SetFloat64(computed)
	diff := new(big.Float).SetPrec(128).Sub(c, oracle)
	diff.Abs(diff)
	den := new(big.Float).SetPrec(128).Abs(oracle)
	diff.Quo(diff, den)
	f, _ := diff.Float64()
	return f
}
