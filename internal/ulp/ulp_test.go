package ulp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrdinalAdjacency(t *testing.T) {
	cases := []float64{0, 1, -1, 1e-300, -1e-300, 1e300, -1e300, math.Pi, -math.Pi}
	for _, f := range cases {
		up := math.Nextafter(f, math.Inf(1))
		if Ordinal(up)-Ordinal(f) != 1 {
			t.Fatalf("Nextafter(%g) must be 1 ulp away, got %d", f, Ordinal(up)-Ordinal(f))
		}
	}
	if Ordinal(math.Copysign(0, -1)) != Ordinal(0.0) {
		t.Fatal("±0 must share an ordinal")
	}
}

func TestOrdinalMonotone(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a < b {
			return Ordinal(a) < Ordinal(b)
		}
		if a > b {
			return Ordinal(a) > Ordinal(b)
		}
		return Ordinal(a) == Ordinal(b) || a == 0 // ±0 compare equal
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	if d := Distance(1.0, 1.0); d != 0 {
		t.Fatalf("identical values: %d", d)
	}
	if d := Distance(1.0, math.Nextafter(1.0, 2)); d != 1 {
		t.Fatalf("adjacent values: %d", d)
	}
	if d := Distance(-1.0, 1.0); d == 0 {
		t.Fatal("crossing zero must be a large distance")
	}
	if d := Distance(math.NaN(), 1.0); d != math.MaxUint64 {
		t.Fatal("NaN must be maximal distance")
	}
	// Symmetry.
	if Distance(3.5, -7.25) != Distance(-7.25, 3.5) {
		t.Fatal("distance must be symmetric")
	}
}

func TestBits(t *testing.T) {
	cases := []struct {
		d    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
		{1 << 52, 52}, {1<<52 + 1, 53},
	}
	for _, tc := range cases {
		if got := Bits(tc.d); got != tc.want {
			t.Fatalf("Bits(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestPaperExample: §2.3 — a posit computing 2^-116 where the ideal value
// is 2^-120 has relative error 15 even though it is only 1 posit-ULP off.
func TestPaperExample(t *testing.T) {
	computed := math.Ldexp(1, -116)
	oracle := new(big.Float).SetFloat64(math.Ldexp(1, -120))
	if rel := RelativeError(computed, oracle); math.Abs(rel-15) > 1e-9 {
		t.Fatalf("relative error = %v, want 15", rel)
	}
	// In double-ULP space the same error is huge — the paper's reporting
	// metric makes the error visible: 4 binades ≈ 2^54 ulps.
	d := DistanceBig(computed, oracle)
	if Bits(d) < 50 {
		t.Fatalf("bits of error = %d, want ≥ 50", Bits(d))
	}
}

func TestDistanceBigOverflow(t *testing.T) {
	huge := new(big.Float).SetPrec(64)
	huge.SetString("1e400") // beyond double range → +Inf
	d := DistanceBig(1.0, huge)
	if d == 0 || d == math.MaxUint64 {
		t.Fatalf("overflowing oracle must give a finite large distance, got %d", d)
	}
}

func TestRelativeError(t *testing.T) {
	if rel := RelativeError(0, new(big.Float)); rel != 0 {
		t.Fatal("0 vs 0")
	}
	if rel := RelativeError(1, new(big.Float)); !math.IsInf(rel, 1) {
		t.Fatal("nonzero vs 0 must be +Inf")
	}
	if rel := RelativeError(1.1, new(big.Float).SetFloat64(1.0)); math.Abs(rel-0.1) > 1e-12 {
		t.Fatalf("rel = %v", rel)
	}
}

// TestRoundToFloat64Differential checks the scratch-based rounding against
// big.Float.Float64 across magnitudes that cross every code path: normal
// range, ties, subnormals, overflow, zero and negatives.
func TestRoundToFloat64Differential(t *testing.T) {
	var scratch big.Float
	check := func(x *big.Float) {
		t.Helper()
		want, _ := x.Float64()
		got := RoundToFloat64(x, &scratch)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("RoundToFloat64(%s) = %g (%#x), Float64 %g (%#x)",
				x.Text('g', 30), got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	for _, prec := range []uint{64, 128, 256, 512} {
		rng := rand.New(rand.NewSource(int64(prec)))
		for i := 0; i < 20000; i++ {
			x := new(big.Float).SetPrec(prec)
			x.SetFloat64(rng.NormFloat64())
			// Perturb below float64 precision so rounding decisions matter.
			eps := new(big.Float).SetPrec(prec).SetFloat64(rng.Float64() - 0.5)
			eps.SetMantExp(eps, -60+rng.Intn(20))
			x.Add(x, eps)
			check(x)
			check(x.Neg(x))
		}
		// Exact ties at the float64 rounding position.
		tie := new(big.Float).SetPrec(prec).SetFloat64(1)
		half := new(big.Float).SetPrec(prec).SetMantExp(big.NewFloat(1), -53)
		tie.Add(tie, half)
		check(tie)
		// Extremes.
		for _, e := range []int{-1080, -1074, -1040, -1022, -1021, -1020, 1020, 1023, 1024, 1025, 2000} {
			x := new(big.Float).SetPrec(prec).SetMantExp(big.NewFloat(1.37), e)
			check(x)
			check(new(big.Float).Neg(x))
		}
		check(new(big.Float).SetPrec(prec)) // zero
		check(new(big.Float).SetInf(false))
		check(new(big.Float).SetInf(true))
	}
}

// TestRoundToFloat64Allocs pins the common case at zero allocations.
func TestRoundToFloat64Allocs(t *testing.T) {
	x := new(big.Float).SetPrec(256).SetFloat64(1.0 / 3.0)
	var scratch big.Float
	RoundToFloat64(x, &scratch) // warm the scratch mantissa
	var sink float64
	if n := testing.AllocsPerRun(1000, func() {
		sink = RoundToFloat64(x, &scratch)
	}); n != 0 {
		t.Errorf("RoundToFloat64 allocates %v/op, want 0", n)
	}
	_ = sink
}
