// Package backend names the execution backends the interpreter machine can
// run a module on: the tree-walking interpreter over internal/ir (the
// reference semantics and differential-testing oracle) and the flat-bytecode
// VM with fused shadow superinstructions (internal/bytecode). Everything
// above the machine — Exec options, campaign configs, CLI flags — selects a
// backend through this one enum so the two execution paths never fork the
// public API.
package backend

import "fmt"

// Kind selects an execution backend.
type Kind uint8

const (
	// Treewalk executes ir.Module directly, one instruction struct at a
	// time. It is the reference implementation: simplest, most debuggable,
	// and the oracle the VM is differentially tested against.
	Treewalk Kind = iota
	// VM compiles the module to a flat bytecode chunk (internal/bytecode)
	// and executes it in a threaded-dispatch loop with fused op+shadow
	// superinstructions. Byte-identical observable behavior, lower ns/op.
	VM
)

// Default is the backend used when nothing selects one explicitly. The
// tree-walker stays the default until a release's differential suite has
// proven the VM on every workload; callers opt in per run, per session, or
// per process with -backend=vm.
const Default = Treewalk

func (k Kind) String() string {
	switch k {
	case Treewalk:
		return "treewalk"
	case VM:
		return "vm"
	default:
		return fmt.Sprintf("backend(%d)", uint8(k))
	}
}

// Parse maps a flag value to a Kind. The empty string selects Default, so
// CLIs can declare -backend with an empty default and stay stable if the
// project default ever changes.
func Parse(s string) (Kind, error) {
	switch s {
	case "", "default":
		return Default, nil
	case "treewalk", "tree", "interp":
		return Treewalk, nil
	case "vm", "bytecode":
		return VM, nil
	default:
		return Default, fmt.Errorf("unknown backend %q (want treewalk or vm)", s)
	}
}

// Kinds lists the selectable backends in a stable order (benchmark and
// comparison harnesses iterate it).
func Kinds() []Kind { return []Kind{Treewalk, VM} }
