package workloads

import (
	"fmt"
	"math"
	"strings"
)

// RootCountSource is the paper's Figure 2 program with its inputs.
const RootCountSource = `
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}

func main(): i64 {
	var a: p32 = 18309067625725952.0;
	var b: p32 = 3246642954240.0;
	var c: p32 = 143923904.0;
	return rootcount(a, b, c);
}
`

// CordicSinSource generates the §5.2.1 case study: sin(θ) by 50-iteration
// rotation-mode CORDIC in ⟨32,2⟩ posit arithmetic. The atan table and the
// scale constant are precomputed at high precision (the paper used
// 2000-bit MPFR; float64 is exact to well beyond posit32's 27 fraction
// bits). Running it under PositDebug for θ = 1e−8 reproduces the branch
// flip in iteration 29 and the error accumulation in y.
func CordicSinSource(theta float64) string {
	var sb strings.Builder
	sb.WriteString("var atan_tab: [50]p32;\nvar pow2_tab: [50]p32;\n\n")
	sb.WriteString("func init_tables() {\n")
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "\tatan_tab[%d] = %s;\n", i, floatLit(math.Atan(math.Ldexp(1, -i))))
		fmt.Fprintf(&sb, "\tpow2_tab[%d] = %s;\n", i, floatLit(math.Ldexp(1, -i)))
	}
	sb.WriteString("}\n\n")
	kc := 1.0
	for i := 0; i < 50; i++ {
		kc /= math.Sqrt(1 + math.Ldexp(1, -2*i))
	}
	fmt.Fprintf(&sb, `
func cordic_sin(theta: p32): p32 {
	var x: p32 = %s;
	var y: p32 = 0.0;
	var z: p32 = theta;
	for (var i: i64 = 0; i < 50; i += 1) {
		var xs: p32 = x * pow2_tab[i];
		var ys: p32 = y * pow2_tab[i];
		if (z >= 0.0) {
			x = x - ys;
			y = y + xs;
			z = z - atan_tab[i];
		} else {
			x = x + ys;
			y = y - xs;
			z = z + atan_tab[i];
		}
	}
	return y;
}

func main(): p32 {
	init_tables();
	var s: p32 = cordic_sin(%s);
	print(s);
	return s;
}
`, floatLit(kc), floatLit(theta))
	return sb.String()
}

// SimpsonSource generates the §5.2.2 case study: ∫ x² dx over
// [13223113, 13223113+n] by Simpson's rule. fused=false accumulates with
// ordinary posit additions (the failing version); fused=true uses the
// quire (the paper's fix), keeping the sum exact until a single rounding.
// The interval count n must be even.
func SimpsonSource(n int, fused bool) string {
	acc := `
	var s: p32 = fx(a) + fx(b);
	for (var i: i64 = 1; i < n; i += 1) {
		var x: p32 = a + p32(i) * h;
		if (i % 2 == 1) {
			s = s + 4.0 * fx(x);
		} else {
			s = s + 2.0 * fx(x);
		}
	}
	var integral: p32 = s * h / 3.0;`
	if fused {
		acc = `
	qclear();
	qadd(fx(a));
	qadd(fx(b));
	for (var i: i64 = 1; i < n; i += 1) {
		var x: p32 = a + p32(i) * h;
		if (i % 2 == 1) {
			qmadd(4.0, fx(x));
		} else {
			qmadd(2.0, fx(x));
		}
	}
	var s: p32 = qround_p32();
	var integral: p32 = s * h / 3.0;`
	}
	return fmt.Sprintf(`
var n: i64 = %d;

func fx(x: p32): p32 { return x * x; }

func main(): p32 {
	var a: p32 = 13223113.0;
	var b: p32 = a + p32(n);
	var h: p32 = (b - a) / p32(n);
%s
	print(integral);
	return integral;
}
`, n, acc)
}

// QuadraticSource is the §5.2.3 case study: both roots of ax²+bx+c with
// the paper's inputs (equations 5–7). PositDebug reports ~48 bits of error
// on the first root (cancellation in −b+√disc) and precision loss through
// the division by 2a on the second.
const QuadraticSource = `
func main(): i64 {
	var a: p32 = 0.000000000000014396470127131522076524561271071;
	var b: p32 = 324.884063720703125;
	var c: p32 = 1822878072832.0;
	var disc: p32 = sqrt(b * b - 4.0 * a * c);
	var twoa: p32 = 2.0 * a;
	var root1: p32 = (0.0 - b + disc) / twoa;
	var root2: p32 = (0.0 - b - disc) / twoa;
	print(root1);
	print(root2);
	return 0;
}
`

func floatLit(f float64) string {
	s := fmt.Sprintf("%.17g", f)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
