package workloads

// SpecLike returns the seven SPEC-FP substitutes. The licensed SPEC 2000/
// 2006 sources are unavailable, so each substitute is a synthetic kernel
// exercising the same FP-operation mix and (relative) memory footprint as
// the application it stands in for:
//
//	spec_ammp   — molecular-dynamics pairwise force loop (6/12 potential)
//	spec_art    — neural-network forward pass with winner-take-all
//	spec_equake — seismic wave propagation stencil over a 2D grid
//	spec_lbm    — lattice-Boltzmann-style streaming/collision over planes
//	spec_mesa   — 4×4 transform + lighting pipeline over a vertex stream
//	spec_milc   — 3×3 complex (su3-like) matrix products over sites
//	spec_sphinx — Gaussian-mixture acoustic scoring (distance + exp-ish)
//
// The footprint-heavy ones (lbm, milc, sphinx) stream over larger arrays;
// the paper observes exactly that class showing the highest shadow
// overheads because metadata accesses double the cache pressure.
func SpecLike() []Kernel {
	return []Kernel{
		{Name: "spec_ammp", Source: specAmmp, DefaultN: 56, Footprint: "large"},
		{Name: "spec_art", Source: specArt, DefaultN: 40, Footprint: "large"},
		{Name: "spec_equake", Source: specEquake, DefaultN: 48, Footprint: "large"},
		{Name: "spec_lbm", Source: specLbm, DefaultN: 56, Footprint: "large"},
		{Name: "spec_mesa", Source: specMesa, DefaultN: 1200, Footprint: "large"},
		{Name: "spec_milc", Source: specMilc, DefaultN: 420, Footprint: "large"},
		{Name: "spec_sphinx", Source: specSphinx, DefaultN: 64, Footprint: "large"},
	}
}

func specAmmp(n int) string {
	return at(`
// MD pairwise forces with a Lennard-Jones-like 6/12 potential.
var px: [NN]f64;
var py: [NN]f64;
var pz: [NN]f64;
var fx: [NN]f64;
var fy: [NN]f64;
var fz: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		px[i] = f64(i % 17) / 4.0 + 0.5;
		py[i] = f64((i * 3) % 23) / 5.0 + 0.5;
		pz[i] = f64((i * 7) % 29) / 6.0 + 0.5;
		fx[i] = 0.0;
		fy[i] = 0.0;
		fz[i] = 0.0;
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = i + 1; j < n; j += 1) {
			var dx: f64 = px[i] - px[j];
			var dy: f64 = py[i] - py[j];
			var dz: f64 = pz[i] - pz[j];
			var r2: f64 = dx * dx + dy * dy + dz * dz + 0.01;
			var inv2: f64 = 1.0 / r2;
			var inv6: f64 = inv2 * inv2 * inv2;
			var coef: f64 = inv6 * (inv6 - 0.5) * inv2;
			fx[i] = fx[i] + coef * dx;
			fy[i] = fy[i] + coef * dy;
			fz[i] = fz[i] + coef * dz;
			fx[j] = fx[j] - coef * dx;
			fy[j] = fy[j] - coef * dy;
			fz[j] = fz[j] - coef * dz;
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + fx[i] * fx[i] + fy[i] * fy[i] + fz[i] * fz[i];
	}
	print(s);
	return s;
}
`, n)
}

func specArt(n int) string {
	return at(`
// Adaptive-resonance-flavoured neural net: feature match + normalization.
var w: [NN][NN]f64;
var input: [NN]f64;
var act: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		input[i] = f64((i * 5 + 1) % 31) / 31.0;
		for (var j: i64 = 0; j < n; j += 1) {
			w[i][j] = f64((i * j + 3) % 37) / 37.0;
		}
	}
}

func kernel(): i64 {
	var winner: i64 = 0;
	for (var pass: i64 = 0; pass < 4; pass += 1) {
		var best: f64 = -1000000.0;
		for (var i: i64 = 0; i < n; i += 1) {
			var dot: f64 = 0.0;
			var norm: f64 = 0.0;
			for (var j: i64 = 0; j < n; j += 1) {
				dot = dot + w[i][j] * input[j];
				norm = norm + w[i][j];
			}
			act[i] = dot / (0.5 + norm);
			if (act[i] > best) {
				best = act[i];
				winner = i;
			}
		}
		// Learn: move the winner toward the input.
		for (var j: i64 = 0; j < n; j += 1) {
			w[winner][j] = 0.75 * w[winner][j] + 0.25 * input[j];
		}
	}
	return winner;
}

func main(): f64 {
	init_data();
	var win: i64 = kernel();
	var s: f64 = f64(win);
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + act[i];
	}
	print(s);
	return s;
}
`, n)
}

func specEquake(n int) string {
	return at(`
// Seismic wave propagation: damped 5-point stencil time stepping.
var u0: [NN][NN]f64;
var u1: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			u0[i][j] = 0.0;
			u1[i][j] = 0.0;
		}
	}
	u0[n / 2][n / 2] = 100.0;
}

func kernel() {
	for (var t: i64 = 0; t < 20; t += 1) {
		for (var i: i64 = 1; i < n - 1; i += 1) {
			for (var j: i64 = 1; j < n - 1; j += 1) {
				u1[i][j] = 0.995 * (u0[i][j]
					+ 0.175 * (u0[i - 1][j] + u0[i + 1][j] + u0[i][j - 1] + u0[i][j + 1]
					- 4.0 * u0[i][j]));
			}
		}
		for (var i: i64 = 1; i < n - 1; i += 1) {
			for (var j: i64 = 1; j < n - 1; j += 1) {
				u0[i][j] = u1[i][j];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + u0[i][j] * u0[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func specLbm(n int) string {
	return at(`
// Lattice-Boltzmann-style: 5 distribution planes, stream + collide (BGK).
var f0: [NN][NN]f64;
var fe: [NN][NN]f64;
var fw: [NN][NN]f64;
var fn_: [NN][NN]f64;
var fs: [NN][NN]f64;
var rho: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			f0[i][j] = 0.4 + f64((i + j) % 5) / 100.0;
			fe[i][j] = 0.15;
			fw[i][j] = 0.15;
			fn_[i][j] = 0.15;
			fs[i][j] = 0.15;
		}
	}
}

func kernel() {
	for (var t: i64 = 0; t < 6; t += 1) {
		// Collision toward local equilibrium.
		for (var i: i64 = 0; i < n; i += 1) {
			for (var j: i64 = 0; j < n; j += 1) {
				rho[i][j] = f0[i][j] + fe[i][j] + fw[i][j] + fn_[i][j] + fs[i][j];
				var eq: f64 = rho[i][j] / 5.0;
				var omega: f64 = 0.6;
				f0[i][j] = f0[i][j] + omega * (eq - f0[i][j]);
				fe[i][j] = fe[i][j] + omega * (eq - fe[i][j]);
				fw[i][j] = fw[i][j] + omega * (eq - fw[i][j]);
				fn_[i][j] = fn_[i][j] + omega * (eq - fn_[i][j]);
				fs[i][j] = fs[i][j] + omega * (eq - fs[i][j]);
			}
		}
		// Streaming east/west/north/south with periodic wrap.
		for (var i: i64 = 0; i < n; i += 1) {
			for (var j: i64 = n - 1; j > 0; j = j - 1) {
				fe[i][j] = fe[i][j - 1];
			}
			fe[i][0] = fe[i][n - 1];
			for (var j: i64 = 0; j < n - 1; j += 1) {
				fw[i][j] = fw[i][j + 1];
			}
			fw[i][n - 1] = fw[i][0];
		}
		for (var j: i64 = 0; j < n; j += 1) {
			for (var i: i64 = n - 1; i > 0; i = i - 1) {
				fn_[i][j] = fn_[i - 1][j];
			}
			fn_[0][j] = fn_[n - 1][j];
			for (var i: i64 = 0; i < n - 1; i += 1) {
				fs[i][j] = fs[i + 1][j];
			}
			fs[n - 1][j] = fs[0][j];
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + rho[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func specMesa(n int) string {
	return at(`
// Graphics pipeline: 4×4 model-view transform + perspective divide +
// diffuse lighting over a stream of NN vertices.
var vx: [NN]f64;
var vy: [NN]f64;
var vz: [NN]f64;
var outc: [NN]f64;
var M: [4][4]f64;
var n: i64 = NN;

func init_data() {
	M[0][0] = 0.96; M[0][1] = 0.10; M[0][2] = 0.00; M[0][3] = 1.0;
	M[1][0] = -0.1; M[1][1] = 0.95; M[1][2] = 0.05; M[1][3] = 2.0;
	M[2][0] = 0.02; M[2][1] = -0.05; M[2][2] = 0.99; M[2][3] = 5.0;
	M[3][0] = 0.0;  M[3][1] = 0.0;  M[3][2] = 0.2;  M[3][3] = 1.0;
	for (var i: i64 = 0; i < n; i += 1) {
		vx[i] = f64(i % 97) / 48.5 - 1.0;
		vy[i] = f64((i * 3) % 89) / 44.5 - 1.0;
		vz[i] = f64((i * 7) % 83) / 41.5 - 1.0;
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		var x: f64 = M[0][0] * vx[i] + M[0][1] * vy[i] + M[0][2] * vz[i] + M[0][3];
		var y: f64 = M[1][0] * vx[i] + M[1][1] * vy[i] + M[1][2] * vz[i] + M[1][3];
		var z: f64 = M[2][0] * vx[i] + M[2][1] * vy[i] + M[2][2] * vz[i] + M[2][3];
		var w: f64 = M[3][0] * vx[i] + M[3][1] * vy[i] + M[3][2] * vz[i] + M[3][3];
		x = x / w;
		y = y / w;
		z = z / w;
		// Diffuse shading against a fixed light direction.
		var len: f64 = sqrt(x * x + y * y + z * z) + 0.0001;
		var ndotl: f64 = (0.3 * x + 0.5 * y + 0.8 * z) / len;
		if (ndotl < 0.0) { ndotl = 0.0; }
		outc[i] = 0.1 + 0.9 * ndotl;
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + outc[i];
	}
	print(s);
	return s;
}
`, n)
}

func specMilc(n int) string {
	return at(`
// Lattice QCD flavour: 3×3 complex matrix times vector per site,
// accumulated along a path (su3 multiply-add chains).
var mre: [9]f64;
var mim: [9]f64;
var vre: [NN][3]f64;
var vim: [NN][3]f64;
var n: i64 = NN;

func init_data() {
	for (var k: i64 = 0; k < 9; k += 1) {
		mre[k] = f64((k * 5 + 1) % 7) / 7.0 - 0.4;
		mim[k] = f64((k * 3 + 2) % 5) / 5.0 - 0.4;
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var c: i64 = 0; c < 3; c += 1) {
			vre[i][c] = f64((i + c) % 11) / 11.0;
			vim[i][c] = f64((i * 2 + c) % 13) / 13.0;
		}
	}
}

func kernel() {
	for (var step: i64 = 0; step < 4; step += 1) {
		for (var i: i64 = 0; i < n; i += 1) {
			var r0: f64 = 0.0; var i0: f64 = 0.0;
			var r1: f64 = 0.0; var i1: f64 = 0.0;
			var r2: f64 = 0.0; var i2: f64 = 0.0;
			for (var c: i64 = 0; c < 3; c += 1) {
				r0 = r0 + mre[c] * vre[i][c] - mim[c] * vim[i][c];
				i0 = i0 + mre[c] * vim[i][c] + mim[c] * vre[i][c];
				r1 = r1 + mre[3 + c] * vre[i][c] - mim[3 + c] * vim[i][c];
				i1 = i1 + mre[3 + c] * vim[i][c] + mim[3 + c] * vre[i][c];
				r2 = r2 + mre[6 + c] * vre[i][c] - mim[6 + c] * vim[i][c];
				i2 = i2 + mre[6 + c] * vim[i][c] + mim[6 + c] * vre[i][c];
			}
			vre[i][0] = r0 * 0.5 + vre[i][0] * 0.5;
			vim[i][0] = i0 * 0.5 + vim[i][0] * 0.5;
			vre[i][1] = r1 * 0.5 + vre[i][1] * 0.5;
			vim[i][1] = i1 * 0.5 + vim[i][1] * 0.5;
			vre[i][2] = r2 * 0.5 + vre[i][2] * 0.5;
			vim[i][2] = i2 * 0.5 + vim[i][2] * 0.5;
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var c: i64 = 0; c < 3; c += 1) {
			s = s + vre[i][c] * vre[i][c] + vim[i][c] * vim[i][c];
		}
	}
	print(s);
	return s;
}
`, n)
}

func specSphinx(n int) string {
	return at(`
// Acoustic scoring: per-frame Gaussian mixture distances with a softmax-
// style normalization (exp approximated by a rational, as fixed-point
// speech decoders do).
var feat: [NN][8]f64;
var mean: [16][8]f64;
var ivar: [16][8]f64;
var score: [NN]f64;
var n: i64 = NN;

func approx_exp(x: f64): f64 {
	// 4th-order rational approximation of e^x on the scoring range.
	var t: f64 = 1.0 + x / 16.0;
	t = t * t;
	t = t * t;
	t = t * t;
	t = t * t;
	return t;
}

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var d: i64 = 0; d < 8; d += 1) {
			feat[i][d] = f64((i * 3 + d) % 21) / 21.0;
		}
	}
	for (var g: i64 = 0; g < 16; g += 1) {
		for (var d: i64 = 0; d < 8; d += 1) {
			mean[g][d] = f64((g * 7 + d) % 19) / 19.0;
			ivar[g][d] = 1.0 + f64((g + d) % 5) / 5.0;
		}
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		var total: f64 = 0.0;
		for (var g: i64 = 0; g < 16; g += 1) {
			var d2: f64 = 0.0;
			for (var d: i64 = 0; d < 8; d += 1) {
				var diff: f64 = feat[i][d] - mean[g][d];
				d2 = d2 + diff * diff * ivar[g][d];
			}
			total = total + approx_exp(0.0 - d2);
		}
		score[i] = total / 16.0;
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + score[i];
	}
	print(s);
	return s;
}
`, n)
}
