// Package workloads holds the PCL programs the evaluation runs: the 19
// PolyBench linear-algebra kernels and 7 SPEC-like applications used for
// the overhead figures (7–10), the 32-program error-detection suite behind
// the §5.1 table, and the case-study programs of §5.2. Kernels are written
// in FP (f64) exactly as the paper's C sources were; the harness derives
// posit versions with the refactorer, mirroring the paper's methodology.
package workloads

import (
	"strconv"
	"strings"
)

// Kernel is one benchmark program.
type Kernel struct {
	// Name is the display name used in the paper's figures (e.g. "2mm").
	Name string
	// Source returns the FP PCL source at problem size n.
	Source func(n int) string
	// DefaultN is the problem size used by the experiment harness; sized
	// so a full figure regenerates in minutes on a laptop.
	DefaultN int
	// Footprint marks kernels with large memory footprints (the paper
	// observes higher overheads for them).
	Footprint string // "small" or "large"
}

func at(src string, n int) string {
	return strings.ReplaceAll(src, "NN", strconv.Itoa(n))
}

// PolyBench returns the 19 kernels of PolyBench's linear-algebra suite, in
// the order the paper's figures plot them.
func PolyBench() []Kernel {
	return []Kernel{
		{Name: "gemm", Source: gemm, DefaultN: 28, Footprint: "small"},
		{Name: "gemver", Source: gemver, DefaultN: 48, Footprint: "small"},
		{Name: "gesummv", Source: gesummv, DefaultN: 48, Footprint: "small"},
		{Name: "symm", Source: symm, DefaultN: 28, Footprint: "small"},
		{Name: "syr2k", Source: syr2k, DefaultN: 26, Footprint: "small"},
		{Name: "syrk", Source: syrk, DefaultN: 28, Footprint: "small"},
		{Name: "trmm", Source: trmm, DefaultN: 30, Footprint: "small"},
		{Name: "2mm", Source: twoMM, DefaultN: 24, Footprint: "small"},
		{Name: "3mm", Source: threeMM, DefaultN: 22, Footprint: "small"},
		{Name: "atax", Source: atax, DefaultN: 48, Footprint: "small"},
		{Name: "bicg", Source: bicg, DefaultN: 48, Footprint: "small"},
		{Name: "doitgen", Source: doitgen, DefaultN: 16, Footprint: "small"},
		{Name: "mvt", Source: mvt, DefaultN: 48, Footprint: "small"},
		{Name: "cholesky", Source: cholesky, DefaultN: 32, Footprint: "small"},
		{Name: "durbin", Source: durbin, DefaultN: 64, Footprint: "small"},
		{Name: "gramschmidt", Source: gramschmidt, DefaultN: 26, Footprint: "small"},
		{Name: "ludcmp", Source: ludcmp, DefaultN: 30, Footprint: "small"},
		{Name: "lu", Source: lu, DefaultN: 32, Footprint: "small"},
		{Name: "trisolv", Source: trisolv, DefaultN: 64, Footprint: "small"},
	}
}

// KernelByName finds a kernel across PolyBench and the SPEC-like set.
func KernelByName(name string) (Kernel, bool) {
	for _, k := range append(PolyBench(), SpecLike()...) {
		if k.Name == name {
			return k, true
		}
	}
	return Kernel{}, false
}

func gemm(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var C: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			B[i][j] = f64((i * (j + 1)) % n) / f64(n);
			C[i][j] = f64((i * (j + 2)) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			C[i][j] = C[i][j] * beta;
		}
		for (var k: i64 = 0; k < n; k += 1) {
			for (var j: i64 = 0; j < n; j += 1) {
				C[i][j] = C[i][j] + alpha * A[i][k] * B[k][j];
			}
		}
	}
}

func checksum(): f64 {
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + C[i][j];
		}
	}
	return s;
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = checksum();
	print(s);
	return s;
}
`, n)
}

func gemver(n int) string {
	return at(`
var A: [NN][NN]f64;
var u1: [NN]f64;
var v1: [NN]f64;
var u2: [NN]f64;
var v2: [NN]f64;
var w: [NN]f64;
var x: [NN]f64;
var y: [NN]f64;
var z: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		u1[i] = f64(i % 7) / 7.0;
		u2[i] = f64((i + 1) % 5) / 5.0;
		v1[i] = f64((i + 2) % 9) / 9.0;
		v2[i] = f64((i + 3) % 11) / 11.0;
		y[i] = f64((i + 4) % 13) / 13.0;
		z[i] = f64((i + 5) % 17) / 17.0;
		x[i] = 0.0;
		w[i] = 0.0;
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			x[i] = x[i] + beta * A[j][i] * y[j];
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		x[i] = x[i] + z[i];
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			w[i] = w[i] + alpha * A[i][j] * x[j];
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + w[i];
	}
	print(s);
	return s;
}
`, n)
}

func gesummv(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var x: [NN]f64;
var y: [NN]f64;
var tmp: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		x[i] = f64(i % 19) / 19.0;
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			B[i][j] = f64((i * j + 2) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		tmp[i] = 0.0;
		y[i] = 0.0;
		for (var j: i64 = 0; j < n; j += 1) {
			tmp[i] = A[i][j] * x[j] + tmp[i];
			y[i] = B[i][j] * x[j] + y[i];
		}
		y[i] = alpha * tmp[i] + beta * y[i];
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + y[i];
	}
	print(s);
	return s;
}
`, n)
}

func symm(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var C: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i + j) % n) / f64(n);
			B[i][j] = f64((i * 2 + j) % n) / f64(n);
			C[i][j] = f64((i + j * 2) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			var temp2: f64 = 0.0;
			for (var k: i64 = 0; k < i; k += 1) {
				C[k][j] = C[k][j] + alpha * B[i][j] * A[i][k];
				temp2 = temp2 + B[k][j] * A[i][k];
			}
			C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2;
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + C[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func syr2k(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var C: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			B[i][j] = f64((i * j + 2) % n) / f64(n);
			C[i][j] = f64((i + j) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j <= i; j += 1) {
			C[i][j] = C[i][j] * beta;
		}
		for (var k: i64 = 0; k < n; k += 1) {
			for (var j: i64 = 0; j <= i; j += 1) {
				C[i][j] = C[i][j] + A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + C[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func syrk(n int) string {
	return at(`
var A: [NN][NN]f64;
var C: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			C[i][j] = f64((i + j) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j <= i; j += 1) {
			C[i][j] = C[i][j] * beta;
		}
		for (var k: i64 = 0; k < n; k += 1) {
			for (var j: i64 = 0; j <= i; j += 1) {
				C[i][j] = C[i][j] + alpha * A[i][k] * A[j][k];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + C[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func trmm(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			B[i][j] = f64((n + i - j) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			for (var k: i64 = i + 1; k < n; k += 1) {
				B[i][j] = B[i][j] + A[k][i] * B[k][j];
			}
			B[i][j] = alpha * B[i][j];
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + B[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func twoMM(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var C: [NN][NN]f64;
var D: [NN][NN]f64;
var tmp: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			B[i][j] = f64((i * (j + 1)) % n) / f64(n);
			C[i][j] = f64((i * (j + 3) + 1) % n) / f64(n);
			D[i][j] = f64((i * (j + 2)) % n) / f64(n);
		}
	}
}

func kernel() {
	var alpha: f64 = 1.5;
	var beta: f64 = 1.2;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			tmp[i][j] = 0.0;
			for (var k: i64 = 0; k < n; k += 1) {
				tmp[i][j] = tmp[i][j] + alpha * A[i][k] * B[k][j];
			}
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			D[i][j] = D[i][j] * beta;
			for (var k: i64 = 0; k < n; k += 1) {
				D[i][j] = D[i][j] + tmp[i][k] * C[k][j];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + D[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func threeMM(n int) string {
	return at(`
var A: [NN][NN]f64;
var B: [NN][NN]f64;
var C: [NN][NN]f64;
var D: [NN][NN]f64;
var E: [NN][NN]f64;
var F: [NN][NN]f64;
var G: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j + 1) % n) / f64(n);
			B[i][j] = f64((i * (j + 1) + 2) % n) / f64(n);
			C[i][j] = f64((i * (j + 3)) % n) / f64(n);
			D[i][j] = f64((i * (j + 2) + 2) % n) / f64(n);
		}
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			E[i][j] = 0.0;
			for (var k: i64 = 0; k < n; k += 1) {
				E[i][j] = E[i][j] + A[i][k] * B[k][j];
			}
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			F[i][j] = 0.0;
			for (var k: i64 = 0; k < n; k += 1) {
				F[i][j] = F[i][j] + C[i][k] * D[k][j];
			}
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			G[i][j] = 0.0;
			for (var k: i64 = 0; k < n; k += 1) {
				G[i][j] = G[i][j] + E[i][k] * F[k][j];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + G[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func atax(n int) string {
	return at(`
var A: [NN][NN]f64;
var x: [NN]f64;
var y: [NN]f64;
var tmp: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		x[i] = 1.0 + f64(i) / f64(n);
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i + j) % n) / (5.0 * f64(n));
		}
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		y[i] = 0.0;
	}
	for (var i: i64 = 0; i < n; i += 1) {
		tmp[i] = 0.0;
		for (var j: i64 = 0; j < n; j += 1) {
			tmp[i] = tmp[i] + A[i][j] * x[j];
		}
		for (var j: i64 = 0; j < n; j += 1) {
			y[j] = y[j] + A[i][j] * tmp[i];
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + y[i];
	}
	print(s);
	return s;
}
`, n)
}

func bicg(n int) string {
	return at(`
var A: [NN][NN]f64;
var s: [NN]f64;
var q: [NN]f64;
var p: [NN]f64;
var r: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		p[i] = f64(i % 11) / 11.0;
		r[i] = f64(i % 7) / 7.0;
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * (j + 1)) % n) / f64(n);
		}
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		s[i] = 0.0;
	}
	for (var i: i64 = 0; i < n; i += 1) {
		q[i] = 0.0;
		for (var j: i64 = 0; j < n; j += 1) {
			s[j] = s[j] + r[i] * A[i][j];
			q[i] = q[i] + A[i][j] * p[j];
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var acc: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		acc = acc + s[i] + q[i];
	}
	print(acc);
	return acc;
}
`, n)
}

func doitgen(n int) string {
	return at(`
var A: [NN][NN]f64;
var C4: [NN][NN]f64;
var sum: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			C4[i][j] = f64((i * j) % n) / f64(n);
		}
	}
}

func kernel() {
	// The r/q planes of the 3D tensor are iterated as repeated 2D passes.
	for (var r: i64 = 0; r < n; r += 1) {
		for (var q: i64 = 0; q < n; q += 1) {
			for (var p: i64 = 0; p < n; p += 1) {
				A[q][p] = f64((r + q + p) % n) / f64(n);
			}
			for (var p: i64 = 0; p < n; p += 1) {
				sum[p] = 0.0;
				for (var k: i64 = 0; k < n; k += 1) {
					sum[p] = sum[p] + A[q][k] * C4[k][p];
				}
			}
			for (var p: i64 = 0; p < n; p += 1) {
				A[q][p] = sum[p];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var acc: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			acc = acc + A[i][j];
		}
	}
	print(acc);
	return acc;
}
`, n)
}

func mvt(n int) string {
	return at(`
var A: [NN][NN]f64;
var x1: [NN]f64;
var x2: [NN]f64;
var y1: [NN]f64;
var y2: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		x1[i] = f64(i % n) / f64(n);
		x2[i] = f64((i + 1) % n) / f64(n);
		y1[i] = f64((i + 3) % n) / f64(n);
		y2[i] = f64((i + 4) % n) / f64(n);
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64((i * j) % n) / f64(n);
		}
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			x1[i] = x1[i] + A[i][j] * y1[j];
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			x2[i] = x2[i] + A[j][i] * y2[j];
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + x1[i] + x2[i];
	}
	print(s);
	return s;
}
`, n)
}

func cholesky(n int) string {
	return at(`
var A: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	// Symmetric positive definite: A = B·Bᵀ + n·I, built in place.
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = 0.0;
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			for (var k: i64 = 0; k < n; k += 1) {
				A[i][j] = A[i][j] + (f64((i + k) % n) / f64(n)) * (f64((j + k) % n) / f64(n));
			}
		}
		A[i][i] = A[i][i] + f64(n);
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < i; j += 1) {
			for (var k: i64 = 0; k < j; k += 1) {
				A[i][j] = A[i][j] - A[i][k] * A[j][k];
			}
			A[i][j] = A[i][j] / A[j][j];
		}
		for (var k: i64 = 0; k < i; k += 1) {
			A[i][i] = A[i][i] - A[i][k] * A[i][k];
		}
		A[i][i] = sqrt(A[i][i]);
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j <= i; j += 1) {
			s = s + A[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func durbin(n int) string {
	return at(`
var r: [NN]f64;
var y: [NN]f64;
var z: [NN]f64;
var n: i64 = NN;

func init_data() {
	// A decaying autocorrelation keeps the reflection coefficients in
	// (−1, 1) so the recursion stays finite.
	for (var i: i64 = 0; i < n; i += 1) {
		r[i] = f64(n - i) / f64(2 * n);
	}
}

func kernel() {
	y[0] = -r[0];
	var beta: f64 = 1.0;
	var alpha: f64 = -r[0];
	for (var k: i64 = 1; k < n; k += 1) {
		beta = (1.0 - alpha * alpha) * beta;
		var summ: f64 = 0.0;
		for (var i: i64 = 0; i < k; i += 1) {
			summ = summ + r[k - i - 1] * y[i];
		}
		alpha = -(r[k] + summ) / beta;
		for (var i: i64 = 0; i < k; i += 1) {
			z[i] = y[i] + alpha * y[k - i - 1];
		}
		for (var i: i64 = 0; i < k; i += 1) {
			y[i] = z[i];
		}
		y[k] = alpha;
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + y[i];
	}
	print(s);
	return s;
}
`, n)
}

func gramschmidt(n int) string {
	return at(`
var A: [NN][NN]f64;
var Q: [NN][NN]f64;
var R: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = (f64((i * j + 1) % n) / f64(n)) * 100.0 + 10.0;
			Q[i][j] = 0.0;
			R[i][j] = 0.0;
		}
	}
}

func kernel() {
	for (var k: i64 = 0; k < n; k += 1) {
		var nrm: f64 = 0.0;
		for (var i: i64 = 0; i < n; i += 1) {
			nrm = nrm + A[i][k] * A[i][k];
		}
		R[k][k] = sqrt(nrm);
		for (var i: i64 = 0; i < n; i += 1) {
			Q[i][k] = A[i][k] / R[k][k];
		}
		for (var j: i64 = k + 1; j < n; j += 1) {
			R[k][j] = 0.0;
			for (var i: i64 = 0; i < n; i += 1) {
				R[k][j] = R[k][j] + Q[i][k] * A[i][j];
			}
			for (var i: i64 = 0; i < n; i += 1) {
				A[i][j] = A[i][j] - Q[i][k] * R[k][j];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + R[i][j] + Q[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func ludcmp(n int) string {
	return at(`
var A: [NN][NN]f64;
var b: [NN]f64;
var x: [NN]f64;
var y: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		b[i] = (f64(i) + 1.0) / (f64(n) * 2.0) + 4.0;
		for (var j: i64 = 0; j < n; j += 1) {
			if (j <= i) {
				A[i][j] = (0.0 - f64(j % n)) / f64(n) + 1.0;
			} else {
				A[i][j] = 0.0;
			}
		}
		A[i][i] = 1.0;
	}
	// Make it diagonally dominant: A = A·Aᵀ done row by row in place is
	// costly; instead boost the diagonal.
	for (var i: i64 = 0; i < n; i += 1) {
		A[i][i] = A[i][i] + f64(n);
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < i; j += 1) {
			var w: f64 = A[i][j];
			for (var k: i64 = 0; k < j; k += 1) {
				w = w - A[i][k] * A[k][j];
			}
			A[i][j] = w / A[j][j];
		}
		for (var j: i64 = i; j < n; j += 1) {
			var w: f64 = A[i][j];
			for (var k: i64 = 0; k < i; k += 1) {
				w = w - A[i][k] * A[k][j];
			}
			A[i][j] = w;
		}
	}
	for (var i: i64 = 0; i < n; i += 1) {
		var w: f64 = b[i];
		for (var j: i64 = 0; j < i; j += 1) {
			w = w - A[i][j] * y[j];
		}
		y[i] = w;
	}
	for (var i: i64 = n - 1; i >= 0; i = i - 1) {
		var w: f64 = y[i];
		for (var j: i64 = i + 1; j < n; j += 1) {
			w = w - A[i][j] * x[j];
		}
		x[i] = w / A[i][i];
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + x[i];
	}
	print(s);
	return s;
}
`, n)
}

func lu(n int) string {
	return at(`
var A: [NN][NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			if (j <= i) {
				A[i][j] = (0.0 - f64(j % n)) / f64(n) + 1.0;
			} else {
				A[i][j] = 0.0;
			}
		}
		A[i][i] = f64(n);
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < i; j += 1) {
			for (var k: i64 = 0; k < j; k += 1) {
				A[i][j] = A[i][j] - A[i][k] * A[k][j];
			}
			A[i][j] = A[i][j] / A[j][j];
		}
		for (var j: i64 = i; j < n; j += 1) {
			for (var k: i64 = 0; k < i; k += 1) {
				A[i][j] = A[i][j] - A[i][k] * A[k][j];
			}
		}
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + A[i][j];
		}
	}
	print(s);
	return s;
}
`, n)
}

func trisolv(n int) string {
	return at(`
var L: [NN][NN]f64;
var x: [NN]f64;
var b: [NN]f64;
var n: i64 = NN;

func init_data() {
	for (var i: i64 = 0; i < n; i += 1) {
		b[i] = f64(i % 13) / 13.0 + 1.0;
		for (var j: i64 = 0; j <= i; j += 1) {
			L[i][j] = (f64(i + n - j) + 1.0) * 2.0 / f64(n);
		}
		L[i][i] = L[i][i] + f64(n);
	}
}

func kernel() {
	for (var i: i64 = 0; i < n; i += 1) {
		x[i] = b[i];
		for (var j: i64 = 0; j < i; j += 1) {
			x[i] = x[i] - L[i][j] * x[j];
		}
		x[i] = x[i] / L[i][i];
	}
}

func main(): f64 {
	init_data();
	kernel();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + x[i];
	}
	print(s);
	return s;
}
`, n)
}
