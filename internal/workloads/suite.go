package workloads

import "positdebug/internal/shadow"

// SuiteProgram is one entry of the 32-program error-detection suite used
// for the paper's §5.1 effectiveness table: twelve FP programs in the style
// of the Herbgrind suite (classic floating-point pathologies, refactored to
// posits exactly as the paper did) and twenty posit programs covering the
// posit-specific error classes.
type SuiteProgram struct {
	Name   string
	Source string
	// FromFP marks the Herbgrind-style FP programs that the harness first
	// rewrites to posits with the refactorer.
	FromFP bool
	// Expect lists error kinds this program is known to exhibit; the
	// detection experiment asserts at least one of them is found.
	Expect []shadow.Kind
}

// Suite returns the 32 programs.
func Suite() []SuiteProgram {
	return append(herbgrindStyle(), positPrograms()...)
}

func herbgrindStyle() []SuiteProgram {
	cc := []shadow.Kind{shadow.KindCancellation}
	high := []shadow.Kind{shadow.KindHighError, shadow.KindWrongOutput, shadow.KindPrecisionLoss}
	return []SuiteProgram{
		{Name: "fp_quadratic", FromFP: true, Expect: cc, Source: `
// Naive quadratic formula: −b+sqrt(b²−4ac) cancels for b² ≫ 4ac.
func main(): f64 {
	var a: f64 = 1.0;
	var b: f64 = 20000.0;
	var c: f64 = 0.015625;
	var disc: f64 = b * b - 4.0 * a * c;
	var root: f64 = (0.0 - b + sqrt(disc)) / (2.0 * a);
	print(root);
	return root;
}`},
		{Name: "fp_variance", FromFP: true, Expect: cc, Source: `
// Single-pass variance E[x²]−E[x]² on near-constant data.
var xs: [256]f64;
func main(): f64 {
	for (var i: i64 = 0; i < 256; i += 1) {
		xs[i] = 10000.0 + f64(i % 2) / 64.0;
	}
	var s: f64 = 0.0;
	var s2: f64 = 0.0;
	for (var i: i64 = 0; i < 256; i += 1) {
		s = s + xs[i];
		s2 = s2 + xs[i] * xs[i];
	}
	var mean: f64 = s / 256.0;
	var variance: f64 = s2 / 256.0 - mean * mean;
	print(variance);
	return variance;
}`},
		{Name: "fp_exp_taylor", FromFP: true, Expect: cc, Source: `
// Taylor series of e^x at x = −12: alternating huge terms cancel.
func main(): f64 {
	var x: f64 = -12.0;
	var term: f64 = 1.0;
	var s: f64 = 1.0;
	for (var i: i64 = 1; i < 60; i += 1) {
		term = term * x / f64(i);
		s = s + term;
	}
	print(s);
	return s;
}`},
		{Name: "fp_sqrt_diff", FromFP: true, Expect: cc, Source: `
// sqrt(x+1) − sqrt(x) for large x.
func main(): f64 {
	var x: f64 = 67108864.0;
	var d: f64 = sqrt(x + 1.0) - sqrt(x);
	print(d);
	return d;
}`},
		{Name: "fp_archimedes", FromFP: true, Expect: cc, Source: `
// Archimedes' recurrence for π: t ← (sqrt(t²+1)−1)/t loses all bits.
func main(): f64 {
	var t: f64 = 0.57735026918962573;
	var pi: f64 = 0.0;
	var sides: f64 = 6.0;
	for (var i: i64 = 0; i < 20; i += 1) {
		t = (sqrt(t * t + 1.0) - 1.0) / t;
		sides = sides * 2.0;
		pi = sides * t;
	}
	print(pi);
	return pi;
}`},
		{Name: "fp_harmonic_drift", FromFP: true, Expect: high, Source: `
// Forward harmonic accumulation into a large base value.
func main(): f64 {
	var s: f64 = 16777216.0;
	for (var i: i64 = 1; i < 4000; i += 1) {
		s = s + 1.0 / f64(i);
	}
	var drift: f64 = s - 16777216.0;
	print(drift);
	return drift;
}`},
		{Name: "fp_small_into_large", FromFP: true, Expect: high, Source: `
// Absorbing small increments into a large accumulator.
func main(): f64 {
	var s: f64 = 33554432.0;
	for (var i: i64 = 0; i < 3000; i += 1) {
		s = s + 0.0009765625;
	}
	var delta: f64 = s - 33554432.0;
	print(delta);
	return delta;
}`},
		{Name: "fp_muller", FromFP: true, Expect: append(cc, shadow.KindBranchFlip, shadow.KindWrongOutput), Source: `
// Muller's recurrence: converges to 100 in exact arithmetic but to 5
// under any finite precision — outputs diverge wildly.
func main(): f64 {
	var x0: f64 = 2.0;
	var x1: f64 = -4.0;
	for (var i: i64 = 0; i < 40; i += 1) {
		var x2: f64 = 111.0 - (1130.0 - 3000.0 / x0) / x1;
		x0 = x1;
		x1 = x2;
	}
	print(x1);
	return x1;
}`},
		{Name: "fp_heron_needle", FromFP: true, Expect: cc, Source: `
// Heron's formula on a needle triangle.
func main(): f64 {
	var a: f64 = 100000.0;
	var b: f64 = 99999.9999999;
	var c: f64 = 0.0000000001;
	var s: f64 = (a + b + c) / 2.0;
	var area2: f64 = s * (s - a) * (s - b) * (s - c);
	print(area2);
	return area2;
}`},
		{Name: "fp_log1p_naive", FromFP: true, Expect: cc, Source: `
// ((1+x) − 1)/x for tiny x: the numerator cancels.
func main(): f64 {
	var x: f64 = 0.0000000001;
	var y: f64 = ((1.0 + x) - 1.0) / x;
	print(y);
	return y;
}`},
		{Name: "fp_poly_expanded", FromFP: true, Expect: append(cc, shadow.KindHighError), Source: `
// (x−1)^7 expanded, evaluated near x = 1: alternating cancellation.
func main(): f64 {
	var x: f64 = 1.0009765625;
	var y: f64 = x*x*x*x*x*x*x - 7.0*x*x*x*x*x*x + 21.0*x*x*x*x*x
		- 35.0*x*x*x*x + 35.0*x*x*x - 21.0*x*x + 7.0*x - 1.0;
	print(y);
	return y;
}`},
		{Name: "fp_diff_quotient", FromFP: true, Expect: cc, Source: `
// Numerical derivative of x² at 1 with a step below the posit ULP at 1:
// x+h rounds back to x and the numerator cancels completely.
func main(): f64 {
	var h: f64 = 0.000000003;
	var x: f64 = 1.0;
	var d: f64 = ((x + h) * (x + h) - x * x) / h;
	print(d);
	return d;
}`},
	}
}

func positPrograms() []SuiteProgram {
	cc := []shadow.Kind{shadow.KindCancellation}
	lp := []shadow.Kind{shadow.KindPrecisionLoss}
	sat := []shadow.Kind{shadow.KindSaturation}
	nar := []shadow.Kind{shadow.KindNaR}
	bf := []shadow.Kind{shadow.KindBranchFlip}
	return []SuiteProgram{
		{Name: "p_rootcount", Expect: append(cc, shadow.KindBranchFlip), Source: `
// Figure 2 of the paper.
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
func main(): i64 {
	var r: i64 = rootcount(18309067625725952.0, 3246642954240.0, 143923904.0);
	print(p32(r));
	return r;
}`},
		{Name: "p_simpson_sum", Expect: []shadow.Kind{shadow.KindPrecisionLoss, shadow.KindHighError, shadow.KindWrongOutput}, Source: `
// Simpson-style accumulation of large terms: the running sum climbs out
// of the golden zone and new terms are rounded away (§5.2.2).
func f(x: p32): p32 { return x * x; }
func main(): p32 {
	var a: p32 = 13223113.0;
	var h: p32 = 1.0;
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 4000; i += 1) {
		var x: p32 = a + p32(i) * h;
		var w: p32 = 2.0;
		if (i % 2 == 1) { w = 4.0; }
		s = s + w * f(x);
	}
	print(s);
	return s;
}`},
		{Name: "p_dot_mixed", Expect: []shadow.Kind{shadow.KindPrecisionLoss, shadow.KindHighError}, Source: `
var xs: [128]p32;
var ys: [128]p32;
func main(): p32 {
	for (var i: i64 = 0; i < 128; i += 1) {
		xs[i] = 1000000.0 + p32(i);
		ys[i] = 1000000.0 - p32(i);
	}
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 128; i += 1) {
		s = s + xs[i] * ys[i];
	}
	print(s);
	return s;
}`},
		{Name: "p_saturate_mul", Expect: sat, Source: `
func main(): p32 {
	var x: p32 = 1000000000000000000.0;
	var y: p32 = x * x * x;
	print(y);
	return y;
}`},
		{Name: "p_underflow_clamp", Expect: sat, Source: `
func main(): p32 {
	var x: p32 = 0.000000000000000001;
	var y: p32 = x * x * x;
	print(y);
	return y;
}`},
		{Name: "p_div_zero", Expect: nar, Source: `
func main(): p32 {
	var a: p32 = 1.5;
	var b: p32 = a - 1.5;
	var c: p32 = a / b;
	print(c);
	return c;
}`},
		{Name: "p_sqrt_negative", Expect: nar, Source: `
func main(): p32 {
	var a: p32 = 2.0;
	var b: p32 = a - 5.0;
	var c: p32 = sqrt(b);
	print(c);
	return c;
}`},
		{Name: "p_wrong_cast", Expect: []shadow.Kind{shadow.KindWrongCast}, Source: `
func main(): i64 {
	var big1: p32 = 18309067625725952.0;
	var big2: p32 = 18309068625725952.0;
	var d: p32 = big1 * 577.0 - big2 * 577.0;
	var idx: i64 = i64(d);
	print(idx);
	return idx;
}`},
		{Name: "p_threshold_flip", Expect: bf, Source: `
func main(): i64 {
	var x: p32 = 16777216.0;
	var y: p32 = x + 0.4375;
	if (y > x) {
		print(1);
		return 1;
	}
	print(0);
	return 0;
}`},
		{Name: "p_loop_exit_flip", Expect: bf, Source: `
// The loop guard tests a cancellation-damaged value: the program sees 0
// (loop runs), the ideal execution sees a negative value (loop skipped).
func main(): i64 {
	var big1: p32 = 18309067625725952.0;
	var big2: p32 = 18309068625725952.0;
	var d: p32 = big1 * 577.0 - big2 * 577.0;
	var i: i64 = 0;
	while (d >= 0.0 && i < 10) {
		d = d - 1.0;
		i += 1;
	}
	print(d);
	return i;
}`},
		{Name: "p_det_illcond", Expect: cc, Source: `
// 2×2 determinant of an ill-conditioned integer matrix whose exact
// determinant is 1 (Rump-style): the ~1.3e16 products carry only 8
// fraction bits in ⟨32,2⟩, so the subtraction is pure noise.
func main(): p32 {
	var a: p32 = 64919121.0;
	var b: p32 = 159018721.0;
	var c: p32 = 83739041.0;
	var d: p32 = 205117922.0;
	var det: p32 = a * d - b * c;
	print(det);
	return det;
}`},
		{Name: "p_running_mean", Expect: []shadow.Kind{shadow.KindHighError, shadow.KindWrongOutput, shadow.KindPrecisionLoss}, Source: `
var data: [512]p32;
func main(): p32 {
	for (var i: i64 = 0; i < 512; i += 1) {
		data[i] = 250000.0 + p32(i % 3);
	}
	var mean: p32 = 0.0;
	for (var i: i64 = 0; i < 512; i += 1) {
		mean = mean + (data[i] - mean) / p32(i + 1);
	}
	var centered: p32 = mean - 250001.0;
	print(centered);
	return centered;
}`},
		{Name: "p_compound_growth", Expect: lp, Source: `
// Repeated multiplication walks the value out of the golden zone,
// shedding fraction bits at every regime crossing.
func main(): p32 {
	var v: p32 = 1.0000001;
	var r: p32 = 1.9999999;
	for (var i: i64 = 0; i < 70; i += 1) {
		v = v * r;
	}
	print(v);
	return v;
}`},
		{Name: "p_softmax_overflow", Expect: []shadow.Kind{shadow.KindPrecisionLoss, shadow.KindSaturation, shadow.KindHighError}, Source: `
// Unnormalized softmax on large logits.
var logits: [8]p32;
func main(): p32 {
	for (var i: i64 = 0; i < 8; i += 1) {
		logits[i] = 40000000.0 + p32(i) * 11.0;
	}
	var denom: p32 = 0.0;
	for (var i: i64 = 0; i < 8; i += 1) {
		denom = denom + logits[i] * logits[i] * logits[i];
	}
	var out: p32 = logits[0] * logits[0] * logits[0] / denom;
	print(out);
	return out;
}`},
		{Name: "p_alternating_ln2", Expect: []shadow.Kind{shadow.KindHighError, shadow.KindWrongOutput, shadow.KindCancellation}, Source: `
// Alternating series for ln 2 with pairwise cancellation amplified by a
// large multiplier.
func main(): p32 {
	var s: p32 = 0.0;
	var sign: p32 = 1.0;
	for (var i: i64 = 1; i < 500; i += 1) {
		s = s + sign * 20000000.0 / p32(i);
		sign = 0.0 - sign;
	}
	var residue: p32 = s - 13862943.0;
	print(residue);
	return residue;
}`},
		{Name: "p_fib_ratio_flip", Expect: bf, Source: `
// Golden-ratio convergence test: the equality check flips.
func main(): i64 {
	var a: p32 = 1.0;
	var b: p32 = 1.0;
	var iters: i64 = 0;
	for (var i: i64 = 0; i < 40; i += 1) {
		var c: p32 = a + b;
		a = b;
		b = c;
		var ratio: p32 = b / a;
		var prev: p32 = a / (b - a);
		if (ratio == prev) {
			iters = i;
			break;
		}
	}
	print(iters);
	return iters;
}`},
		{Name: "p_telescope", Expect: []shadow.Kind{shadow.KindHighError, shadow.KindWrongOutput, shadow.KindPrecisionLoss}, Source: `
// Telescoping sum Σ 1/(i(i+1)) scaled up: exact answer n/(n+1) · scale.
func main(): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 1; i <= 2000; i += 1) {
		s = s + 90000000.0 / (p32(i) * p32(i + 1));
	}
	var residue: p32 = s - 89955022.0;
	print(residue);
	return residue;
}`},
		{Name: "p_cordic_mini", Expect: []shadow.Kind{shadow.KindBranchFlip, shadow.KindHighError, shadow.KindCancellation}, Source: `
// A miniature of the paper's CORDIC case study: rotation-mode iterations
// for a tiny angle; z's cancellation flips the direction decisions.
var atan_tab: [30]p32;
func main(): p32 {
	atan_tab[0] = 0.7853981633974483;
	atan_tab[1] = 0.4636476090008061;
	atan_tab[2] = 0.24497866312686414;
	atan_tab[3] = 0.12435499454676144;
	atan_tab[4] = 0.06241880999595735;
	atan_tab[5] = 0.031239833430268277;
	atan_tab[6] = 0.015623728620476831;
	atan_tab[7] = 0.007812341060101111;
	atan_tab[8] = 0.0039062301319669718;
	atan_tab[9] = 0.0019531225164788188;
	atan_tab[10] = 0.0009765621895593195;
	atan_tab[11] = 0.0004882812111948983;
	atan_tab[12] = 0.00024414062014936177;
	atan_tab[13] = 0.00012207031189367021;
	atan_tab[14] = 0.00006103515617420877;
	atan_tab[15] = 0.000030517578115526096;
	atan_tab[16] = 0.000015258789061315762;
	atan_tab[17] = 0.00000762939453110197;
	atan_tab[18] = 0.000003814697265606496;
	atan_tab[19] = 0.000001907348632810187;
	atan_tab[20] = 0.0000009536743164059608;
	atan_tab[21] = 0.00000047683715820308884;
	atan_tab[22] = 0.00000023841857910155797;
	atan_tab[23] = 0.00000011920928955078068;
	atan_tab[24] = 0.00000005960464477539055;
	atan_tab[25] = 0.000000029802322387695303;
	atan_tab[26] = 0.000000014901161193847655;
	atan_tab[27] = 0.000000007450580596923828;
	atan_tab[28] = 0.000000003725290298461914;
	atan_tab[29] = 0.000000001862645149230957;
	var kc: p32 = 0.6072529350088813;
	var x: p32 = kc;
	var y: p32 = 0.0;
	var z: p32 = 0.00000001;
	var p2: p32 = 1.0;
	for (var i: i64 = 0; i < 30; i += 1) {
		var xs: p32 = x * p2;
		var ys: p32 = y * p2;
		if (z >= 0.0) {
			x = x - ys;
			y = y + xs;
			z = z - atan_tab[i];
		} else {
			x = x + ys;
			y = y - xs;
			z = z + atan_tab[i];
		}
		p2 = p2 * 0.5;
	}
	print(y);
	return y;
}`},
		{Name: "p_norm_skewed", Expect: []shadow.Kind{shadow.KindPrecisionLoss, shadow.KindSaturation, shadow.KindHighError}, Source: `
// Euclidean norm of a vector with one dominant coordinate: the squares
// saturate toward maxpos.
var v: [16]p32;
func main(): p32 {
	v[0] = 30000000000000000.0;
	for (var i: i64 = 1; i < 16; i += 1) {
		v[i] = p32(i);
	}
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 16; i += 1) {
		s = s + v[i] * v[i];
	}
	var nrm: p32 = sqrt(s);
	print(nrm);
	return nrm;
}`},
		{Name: "p_second_root", Expect: lp, Source: `
// The quadratic case study's second root (§5.2.3): the division by 2a
// grows the regime and sheds fraction bits.
func main(): p32 {
	var a: p32 = 0.000000000000014396470127131522;
	var b: p32 = 324.884063720703125;
	var c: p32 = 1822878072832.0;
	var disc: p32 = sqrt(b * b - 4.0 * a * c);
	var root2: p32 = (0.0 - b - disc) / (2.0 * a);
	print(root2);
	return root2;
}`},
	}
}
