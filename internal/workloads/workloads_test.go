package workloads

import (
	"math"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/shadow"
)

// TestAllKernelsCompileAndRun: every PolyBench and SPEC-like kernel must
// compile, run as FP, refactor to posits, and run as a posit program with
// a finite checksum.
func TestAllKernelsCompileAndRun(t *testing.T) {
	for _, k := range append(PolyBench(), SpecLike()...) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			n := k.DefaultN
			if n > 24 {
				n = smallSize(k) // keep the test suite fast
			}
			src := k.Source(n)
			prog, err := positdebug.Compile(src)
			if err != nil {
				t.Fatalf("FP compile: %v", err)
			}
			res, err := prog.Run("main")
			if err != nil {
				t.Fatalf("FP run: %v", err)
			}
			if math.IsNaN(res.F64()) || math.IsInf(res.F64(), 0) {
				t.Fatalf("FP checksum not finite: %v", res.F64())
			}
			psrc, err := positdebug.RefactorToPosit(src)
			if err != nil {
				t.Fatalf("refactor: %v", err)
			}
			pprog, err := positdebug.Compile(psrc)
			if err != nil {
				t.Fatalf("posit compile: %v", err)
			}
			pres, err := pprog.Run("main")
			if err != nil {
				t.Fatalf("posit run: %v", err)
			}
			// The posit checksum should be in the same ballpark as FP —
			// these kernels stay near the golden zone.
			fp, pp := res.F64(), pres.P32()
			if fp != 0 && math.Abs(pp-fp)/math.Abs(fp) > 0.2 {
				t.Fatalf("posit checksum %v far from FP %v", pp, fp)
			}
		})
	}
}

func smallSize(k Kernel) int {
	switch k.Name {
	case "spec_mesa":
		return 200
	case "spec_milc":
		return 64
	default:
		if k.DefaultN > 24 {
			return 24
		}
		return k.DefaultN
	}
}

// TestSuitePrograms: all 32 error programs compile and run (refactoring
// the FP ones first), and shadow execution detects at least one expected
// error kind in each.
func TestSuitePrograms(t *testing.T) {
	progs := Suite()
	if len(progs) != 32 {
		t.Fatalf("suite has %d programs, want 32", len(progs))
	}
	fp, posits := 0, 0
	for _, p := range progs {
		if p.FromFP {
			fp++
		} else {
			posits++
		}
	}
	if fp != 12 || posits != 20 {
		t.Fatalf("suite split %d FP + %d posit, want 12 + 20", fp, posits)
	}
	for _, p := range progs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src := p.Source
			if p.FromFP {
				var err error
				src, err = positdebug.RefactorToPosit(src)
				if err != nil {
					t.Fatalf("refactor: %v", err)
				}
			}
			prog, err := positdebug.Compile(src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			cfg := shadow.DefaultConfig()
			cfg.ErrBitsThreshold = 35
			cfg.OutputThreshold = 35
			res, err := prog.Exec("main", positdebug.WithShadow(cfg))
			if err != nil {
				t.Fatalf("debug: %v", err)
			}
			found := false
			for _, k := range p.Expect {
				if res.Summary.Has(k) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("none of the expected kinds %v detected:\n%s", p.Expect, res.Summary)
			}
		})
	}
}

// TestCordicCaseStudy: the generated CORDIC program reproduces §5.2.1 —
// branch flips and a badly wrong sin for θ = 1e−8.
func TestCordicCaseStudy(t *testing.T) {
	src := CordicSinSource(1e-8)
	prog, err := positdebug.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cfg := shadow.DefaultConfig()
	res, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	got := res.P32()
	rel := math.Abs(got-1e-8) / 1e-8
	if rel < 0.01 {
		t.Fatalf("expected the case study's ~0.3 relative error, got %g (value %g)", rel, got)
	}
	if res.Summary.BranchFlips == 0 {
		t.Fatalf("expected branch flips in the z recurrence:\n%s", res.Summary)
	}
	// Accuracy for a midrange angle stays good.
	src2 := CordicSinSource(0.7853981633974483)
	prog2, _ := positdebug.Compile(src2)
	res2, err := prog2.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.P32()-math.Sin(0.7853981633974483)) > 1e-6 {
		t.Fatalf("midrange sin = %v", res2.P32())
	}
}

// TestSimpsonCaseStudy: the naive accumulation drifts; the quire version
// agrees with the shadow execution (§5.2.2).
func TestSimpsonCaseStudy(t *testing.T) {
	naive, err := positdebug.Compile(SimpsonSource(4000, false))
	if err != nil {
		t.Fatal(err)
	}
	fused, err := positdebug.Compile(SimpsonSource(4000, true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := shadow.DefaultConfig()
	resN, err := naive.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	resF, err := fused.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	// Exact integral of x² over [a, a+4000] with a = 13223113:
	a := 13223113.0
	b := a + 4000
	exact := (b*b*b - a*a*a) / 3
	errN := math.Abs(resN.P32()-exact) / exact
	errF := math.Abs(resF.P32()-exact) / exact
	// Each f(x) term carries only ~16 fraction bits at this magnitude, so
	// even the exactly accumulated quire version sits ~1e-4 off the true
	// integral (the paper's own fixed result, 1.8850e20 vs 1.8840e20,
	// shows the same ~5e-4 gap); what matters is the naive/fused contrast.
	if errF > 1e-3 {
		t.Fatalf("fused Simpson error %g too large (got %v, want %v)", errF, resF.P32(), exact)
	}
	if errN < errF*10 {
		t.Fatalf("naive (%g) should be much worse than fused (%g)", errN, errF)
	}
	if resN.Summary.OutputMaxErrBits <= resF.Summary.OutputMaxErrBits {
		t.Fatalf("shadow execution should show naive (%d bits) worse than fused (%d bits)",
			resN.Summary.OutputMaxErrBits, resF.Summary.OutputMaxErrBits)
	}
}

// TestQuadraticCaseStudy: §5.2.3 — the first root shows heavy error from
// cancellation; the division by 2a loses precision on the second.
func TestQuadraticCaseStudy(t *testing.T) {
	prog, err := positdebug.Compile(QuadraticSource)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shadow.DefaultConfig()
	cfg.PrecisionLossThreshold = 5
	res, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Summary.Has(shadow.KindPrecisionLoss) && !res.Summary.Has(shadow.KindHighError) &&
		!res.Summary.Has(shadow.KindWrongOutput) {
		t.Fatalf("quadratic roots must show precision loss or high error:\n%s", res.Summary)
	}
	if res.Summary.OutputMaxErrBits < 30 {
		t.Fatalf("output error %d bits, expected ≥ 30 (the paper reports 48 and 36)", res.Summary.OutputMaxErrBits)
	}
}

// TestRootCountCaseStudy matches Figure 2's observable behaviour.
func TestRootCountCaseStudy(t *testing.T) {
	prog, err := positdebug.Compile(RootCountSource)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Exec("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.I64() != 1 {
		t.Fatalf("rootcount = %d, want 1", res.I64())
	}
	if !res.Summary.Has(shadow.KindCancellation) || res.Summary.BranchFlips == 0 {
		t.Fatalf("expected cancellation + branch flip:\n%s", res.Summary)
	}
}
