// Package parallel provides the bounded worker pool behind every
// multi-program sweep in this repository: the §5.1 detection suite, the
// Figure 7–10 overhead sweeps, and fault-injection campaigns all shard
// independent program runs across GOMAXPROCS goroutines through it.
//
// Determinism is the design constraint: results are merged by item index,
// never by completion order, so a parallel sweep produces byte-identical
// output to the sequential one regardless of scheduling. Work items must be
// pure functions of their index (campaigns achieve this by partitioning
// their splitmix64 seed stream per run); the pool guarantees the rest:
//
//   - results land in a pre-sized slice at their own index,
//   - the reported error is the lowest-index failure, not the first to
//     happen on the clock,
//   - a panic in any item is re-raised in the caller, again lowest index
//     first, after all workers have drained.
//
// Work is distributed by an atomic cursor (work stealing), so uneven item
// costs — one hung fault-injection run, one slow kernel — never idle the
// other workers.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the effective worker count for n independent items:
// min(GOMAXPROCS, n), and at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// panicValue records a panic captured in a worker so it can be re-raised
// deterministically in the caller.
type panicValue struct {
	index int
	value interface{}
}

// run distributes indices [0,n) over `workers` goroutines via an atomic
// cursor and invokes item(w, i), where w identifies the executing worker
// (0..workers−1). Panics from items are captured and the lowest-index one
// re-raised after all workers drain. workers ≤ 1 runs inline on the
// caller's goroutine.
//
// done, when non-nil, is a cancellation signal: once it is closed, workers
// stop claiming new items (items already executing are interrupted only by
// their own cooperative mechanisms — see interp.RunContext). Cancellation
// never tears a merge: every claimed item either completes or records its
// own error.
func run(done <-chan struct{}, workers, n int, item func(w, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var cursor atomic.Int64
	var panicMu sync.Mutex
	var first *panicValue
	worker := func(w int) {
		for {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					// A worker survives any number of panicking items (it
					// keeps draining the cursor), so the capture must never
					// block — a mutex-guarded min, not a bounded channel.
					if r := recover(); r != nil {
						panicMu.Lock()
						if first == nil || i < first.index {
							first = &panicValue{index: i, value: r}
						}
						panicMu.Unlock()
					}
				}()
				item(w, i)
			}()
		}
	}
	if workers == 1 {
		worker(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			w := w
			go func() {
				defer wg.Done()
				worker(w)
			}()
		}
		wg.Wait()
	}
	if first != nil {
		panic(first.value)
	}
}

// firstErr returns the lowest-index non-nil error, making the reported
// failure independent of completion order.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForEach invokes fn(i) for every i in [0,n) across min(GOMAXPROCS, n)
// goroutines. A panic in fn is re-raised in the caller (lowest index wins
// when several items panic). ForEach returns only after every item ran.
func ForEach(n int, fn func(i int)) {
	ForEachN(Workers(n), n, fn)
}

// ForEachN is ForEach with an explicit worker count; workers ≤ 1 runs
// sequentially on the calling goroutine.
func ForEachN(workers, n int, fn func(i int)) {
	run(nil, workers, n, func(_, i int) { fn(i) })
}

// ForEachCtx is ForEach under a context: once ctx is cancelled no new
// items start. It returns ctx.Err() when the sweep was cut short, nil when
// every item ran.
func ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	run(ctx.Done(), Workers(n), n, func(_, i int) { fn(i) })
	return ctx.Err()
}

// Map computes results[i] = fn(i) for every i in [0,n) across
// min(GOMAXPROCS, n) goroutines. All items run even if some fail; the
// returned error is the lowest-index one, so the outcome is independent of
// scheduling. The results slice always has length n, with zero values at
// failed indices.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN[T](Workers(n), n, fn)
}

// MapN is Map with an explicit worker count; workers ≤ 1 runs sequentially
// on the calling goroutine (the escape hatch for timing-sensitive sweeps).
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	run(nil, workers, n, func(_, i int) {
		results[i], errs[i] = fn(i)
	})
	return results, firstErr(errs)
}

// MapCtx is Map under a context: once ctx is cancelled, workers stop
// claiming new items and MapCtx returns after in-flight items finish. The
// returned error is the lowest-index item error, or ctx.Err() when the
// sweep was cut short with no item failing on its own. A cut-short result
// slice still has length n, with zero values at unvisited indices.
func MapCtx[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	run(ctx.Done(), Workers(n), n, func(_, i int) {
		results[i], errs[i] = fn(i)
	})
	if err := firstErr(errs); err != nil {
		return results, err
	}
	return results, ctx.Err()
}

// MapWorker is Map with per-worker state: each worker constructs its state
// once via newState and threads it through every item it processes. This is
// how campaign runners keep one shadow runtime + interpreter + shadow-memory
// trie warm per worker instead of reallocating them per run. For the merged
// output to stay deterministic, an item's result must not depend on which
// worker (or after which other items) it ran — state may cache and pool, not
// accumulate semantics.
//
// A newState error aborts before any item runs.
func MapWorker[S, T any](n int, newState func() (S, error), fn func(s S, i int) (T, error)) ([]T, error) {
	return MapWorkerCtx(context.Background(), n, newState, fn)
}

// MapWorkerCtx is MapWorker under a context: once ctx is cancelled,
// workers stop claiming new items (in-flight items are interrupted only by
// their own cooperative mechanisms) and the call returns after they drain.
// The returned error is the lowest-index item error, or ctx.Err() when the
// sweep was cut short with no item failing on its own.
func MapWorkerCtx[S, T any](ctx context.Context, n int, newState func() (S, error), fn func(s S, i int) (T, error)) ([]T, error) {
	results, _, err := MapWorkerStates(ctx, Workers(n), n, newState, fn)
	return results, err
}

// MapWorkerStates is MapWorkerCtx with an explicit worker count and the
// per-worker states returned to the caller. Profiling sweeps use it to run
// one profile.Collector per worker and merge the collectors' snapshots
// afterwards — since the merge is commutative and states are returned in
// worker order, the merged profile is identical whatever the worker count
// or item placement. workers ≤ 1 runs sequentially on the calling
// goroutine. The states slice has one entry per effective worker
// (min(workers, n), at least 1); on a newState error it is nil.
func MapWorkerStates[S, T any](ctx context.Context, workers, n int, newState func() (S, error), fn func(s S, i int) (T, error)) ([]T, []S, error) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	states := make([]S, workers)
	for w := 0; w < workers; w++ {
		s, err := newState()
		if err != nil {
			return nil, nil, err
		}
		states[w] = s
	}
	results := make([]T, n)
	errs := make([]error, n)
	run(ctx.Done(), workers, n, func(w, i int) {
		results[i], errs[i] = fn(states[w], i)
	})
	if err := firstErr(errs); err != nil {
		return results, states, err
	}
	return results, states, ctx.Err()
}
