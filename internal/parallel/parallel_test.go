package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Fatalf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Fatalf("Workers(1) = %d, want 1", w)
	}
	max := runtime.GOMAXPROCS(0)
	if w := Workers(10 * max); w != max {
		t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", 10*max, w, max)
	}
}

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		res, err := MapN(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(res))
		}
		for i, v := range res {
			if v != i*i {
				t.Fatalf("workers=%d: res[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	res, err := Map(0, func(i int) (int, error) {
		t.Fatal("fn must not run for n=0")
		return 0, nil
	})
	if err != nil || len(res) != 0 {
		t.Fatalf("Map(0): res=%v err=%v", res, err)
	}
}

// TestMapLowestIndexError: the reported error must be the lowest-index
// failure regardless of which worker finished first, and all items must
// still run.
func TestMapLowestIndexError(t *testing.T) {
	var ran atomic.Int64
	_, err := MapN(4, 50, func(i int) (int, error) {
		ran.Add(1)
		if i%10 == 3 { // fails at 3, 13, 23, 33, 43
			return 0, fmt.Errorf("item %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 3 failed" {
		t.Fatalf("error = %v, want lowest-index failure (item 3)", err)
	}
	if n := ran.Load(); n != 50 {
		t.Fatalf("only %d of 50 items ran", n)
	}
}

// TestPanicPropagation: a panic in any item is re-raised in the caller,
// lowest index first when several panic.
func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: expected panic", workers)
				}
				if s, ok := r.(string); !ok || s != "boom 7" {
					t.Fatalf("workers=%d: recovered %v, want lowest-index panic 'boom 7'", workers, r)
				}
			}()
			ForEachN(workers, 30, func(i int) {
				if i == 7 || i == 21 {
					panic(fmt.Sprintf("boom %d", i))
				}
			})
		}()
	}
}

// TestMapWorkerState: every invocation must see the state built for its
// worker, and exactly `workers` states are constructed.
func TestMapWorkerState(t *testing.T) {
	var built atomic.Int64
	type state struct{ id int64 }
	res, err := MapWorker(200, func() (*state, error) {
		return &state{id: built.Add(1)}, nil
	}, func(s *state, i int) (int64, error) {
		if s == nil || s.id < 1 || s.id > built.Load() {
			return 0, fmt.Errorf("item %d got bad state %+v", i, s)
		}
		return s.id, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(Workers(200)); built.Load() != want {
		t.Fatalf("built %d states, want %d", built.Load(), want)
	}
	for i, id := range res {
		if id < 1 {
			t.Fatalf("item %d ran without a state", i)
		}
	}
}

func TestMapWorkerNewStateError(t *testing.T) {
	sentinel := errors.New("no state")
	ran := false
	_, err := MapWorker(10, func() (int, error) { return 0, sentinel },
		func(s, i int) (int, error) { ran = true; return 0, nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want newState error", err)
	}
	if ran {
		t.Fatal("items must not run when newState fails")
	}
}

// TestSequentialInline: workers ≤ 1 must run on the calling goroutine (the
// timing-sweep escape hatch) — observable because goroutine-local state
// like the goroutine ID is awkward to check, so assert via execution order
// instead: a single worker consumes the cursor strictly in order.
func TestSequentialInline(t *testing.T) {
	var order []int
	ForEachN(1, 10, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential run out of order: %v", order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("ran %d of 10", len(order))
	}
}
