package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestMapCtxCompletesWithoutCancel(t *testing.T) {
	res, err := MapCtx(context.Background(), 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapCtxStopsClaimingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	const n = 10_000
	_, err := MapCtx(ctx, n, func(i int) (int, error) {
		if started.Add(1) == 1 {
			cancel() // first item cancels the sweep from inside
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Workers may each claim one more item racing the cancellation, but the
	// sweep must not run to completion.
	if got := started.Load(); got >= n {
		t.Fatalf("sweep ran all %d items despite cancellation", got)
	}
}

func TestMapCtxItemErrorWinsOverCtxErr(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	_, err := MapCtx(ctx, 8, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the item error, got %v", err)
	}
}

func TestMapWorkerCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	res, err := MapWorkerCtx(ctx, 64,
		func() (int, error) { return 0, nil },
		func(s, i int) (int, error) { ran.Add(1); return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(res) != 64 {
		t.Fatalf("result slice must keep length n, got %d", len(res))
	}
	if ran.Load() != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

func TestForEachCtx(t *testing.T) {
	var ran atomic.Int64
	if err := ForEachCtx(context.Background(), 50, func(i int) { ran.Add(1) }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 items", ran.Load())
	}
}
