package chaos

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// Worker is one orchestrated pdserve instance behind a chaos proxy: the
// proxy URL is its stable fleet identity, the backend process can be
// killed (connections severed, dials refused) and restarted on a fresh
// port without the fleet roster noticing an address change.
type Worker struct {
	// Server is the live pdserve core (nil while killed).
	Server *server.Server
	// Metrics is the worker's own registry — per-worker cache hit/miss
	// counters for affinity assertions.
	Metrics *obs.Registry
	// Proxy fronts the worker; fleet members dial Proxy.URL().
	Proxy *Proxy

	cfg server.Config
	hs  *http.Server
	ln  net.Listener
}

// NewWorker starts a pdserve worker behind a fresh chaos proxy. The
// proxy's fault rolls are seeded with seed; cfg.Metrics is replaced with a
// private registry so per-worker counters stay attributable.
func NewWorker(cfg server.Config, seed int64) (*Worker, error) {
	w := &Worker{cfg: cfg}
	w.cfg.Metrics = nil // each (re)start gets its own registry via start
	if err := w.start(); err != nil {
		return nil, err
	}
	w.Proxy = NewProxy("http://"+w.ln.Addr().String(), seed)
	return w, nil
}

// start boots the backend http.Server on a fresh port. A raw http.Server
// (not server.Serve) so Kill can sever connections instantly — graceful
// drain is exactly what a chaos kill must NOT do.
func (w *Worker) start() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	cfg := w.cfg
	cfg.Metrics = obs.NewRegistry()
	w.Metrics = cfg.Metrics
	w.Server = server.New(cfg)
	w.ln = ln
	w.hs = &http.Server{Handler: w.Server.Handler()}
	go w.hs.Serve(ln)
	return nil
}

// Kill destroys the backend process-equivalent: every open connection is
// severed mid-flight and every later dial is refused. The proxy stays up,
// answering 502 for forwards — the fleet sees a dead-but-addressable
// worker, the realistic kill -9 shape.
func (w *Worker) Kill() {
	if w.hs == nil {
		return
	}
	w.hs.Close() // closes listener and all active connections
	w.hs = nil
	w.Server = nil
}

// Restart boots a fresh backend (new port, cold compile cache, fresh
// metrics) and retargets the proxy at it — a crashed worker coming back
// under its old fleet identity.
func (w *Worker) Restart() error {
	if w.hs != nil {
		w.Kill()
	}
	if err := w.start(); err != nil {
		return err
	}
	w.Proxy.SetTarget("http://" + w.ln.Addr().String())
	return nil
}

// URL is the worker's fleet identity: the chaos proxy's address.
func (w *Worker) URL() string { return w.Proxy.URL() }

// CacheHits and CacheMisses read the live backend's compile-cache
// counters (zero while killed).
func (w *Worker) CacheHits() int64 {
	if w.Metrics == nil {
		return 0
	}
	return w.Metrics.Counter("pd_serve_cache_hits_total").Value()
}

func (w *Worker) CacheMisses() int64 {
	if w.Metrics == nil {
		return 0
	}
	return w.Metrics.Counter("pd_serve_cache_misses_total").Value()
}

// Close tears the worker and its proxy down.
func (w *Worker) Close() {
	w.Kill()
	w.Proxy.Close()
}

// Fleet is a set of chaos-orchestrated workers.
type Fleet struct {
	Workers []*Worker
}

// NewFleet starts n workers behind proxies with per-worker derived seeds.
func NewFleet(n int, cfg server.Config, seed int64) (*Fleet, error) {
	f := &Fleet{}
	for i := 0; i < n; i++ {
		w, err := NewWorker(cfg, seed+int64(i)*7919)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("chaos: starting worker %d: %w", i, err)
		}
		f.Workers = append(f.Workers, w)
	}
	return f, nil
}

// URLs lists the fleet's proxy URLs in worker order.
func (f *Fleet) URLs() []string {
	urls := make([]string, len(f.Workers))
	for i, w := range f.Workers {
		urls[i] = w.URL()
	}
	return urls
}

// Close tears the whole fleet down.
func (f *Fleet) Close() {
	for _, w := range f.Workers {
		w.Close()
	}
}

// TotalCounts sums injected-fault counters across the fleet's proxies.
func (f *Fleet) TotalCounts() Counts {
	var t Counts
	for _, w := range f.Workers {
		c := w.Proxy.Counts()
		t.Forwarded += c.Forwarded
		t.Latency += c.Latency
		t.Errors += c.Errors
		t.Resets += c.Resets
		t.Truncates += c.Truncates
		t.Blackholes += c.Blackholes
	}
	return t
}

// DefaultWorkerConfig is the pdserve shape chaos tests run: generous
// timeouts (the fault injection supplies the adversity).
func DefaultWorkerConfig() server.Config {
	return server.Config{DefaultTimeout: 30 * time.Second}
}
