package chaos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"positdebug/internal/fabric"
	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// tracedWorkerConfig is DefaultWorkerConfig plus a flight recorder, so the
// worker serves /debug/trace span batches for the coordinator to merge.
func tracedWorkerConfig() server.Config {
	cfg := DefaultWorkerConfig()
	cfg.FlightRecorder = 64
	cfg.FlightLog = io.Discard
	return cfg
}

// TestChaosFleetTraceThroughStorm is the observability acceptance test:
// a campaign with full fleet tracing on runs through a blackholed worker
// (forcing at least one hedge), an error/latency storm, and a mid-run
// join — and the merged Chrome trace must still validate structurally,
// span at least three processes, and re-merge byte-identically under
// permuted worker arrival order. The live SSE stream is consumed during
// the run. Run it under -cpu=1,4: nothing here may depend on GOMAXPROCS.
func TestChaosFleetTraceThroughStorm(t *testing.T) {
	ccfg := chaosCampaign()
	want := oracleBytes(t, ccfg)

	members := fabric.NewMembership()
	metrics := obs.NewRegistry()
	registrar, err := fabric.NewRegistrar(fabric.RegistrarConfig{
		Members: members, ProbeInterval: -1, HeartbeatTTL: time.Hour,
		Metrics: metrics, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(registrar.Handler())
	t.Cleanup(coordSrv.Close)

	fleet, err := NewFleet(2, tracedWorkerConfig(), 6060)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	blackhole, survivor := fleet.Workers[0], fleet.Workers[1]
	// Shard traffic only: /debug/trace fetches pass through untouched, as
	// they would for a real worker whose campaign port is wedged.
	blackhole.Proxy.SetRoute("/campaign/shard", Spec{BlackholeRate: 1})
	survivor.Proxy.SetRoute("/campaign/shard", Spec{Latency: 15 * time.Millisecond, ErrorRate: 0.2})
	registerWorker(t, coordSrv.URL, blackhole.URL())
	registerWorker(t, coordSrv.URL, survivor.URL())

	// After the survivor serves two shards, a brand-new traced worker
	// joins mid-run and must show up in the merged trace.
	var joiner *Worker
	joined := make(chan struct{})
	survivor.Proxy.OnForward(func(path string, n int) {
		if path != "/campaign/shard" || n != 2 {
			return
		}
		go func() {
			defer close(joined)
			w, err := NewWorker(tracedWorkerConfig(), 616)
			if err != nil {
				t.Error(err)
				return
			}
			joiner = w
			registerWorker(t, coordSrv.URL, w.URL())
		}()
	})

	trace := fabric.NewFleetTrace(ccfg.Workload, "chaos", "16")
	bus := fabric.NewBus()
	prog := fabric.NewProgress()

	// The SSE stream is consumed live through a real FleetHandler while
	// the storm rages; it must deliver at least one dispatch.
	fh := fabric.NewFleetHandler(members, prog, bus, metrics)
	fleetSrv := httptest.NewServer(fh.Handler())
	t.Cleanup(fleetSrv.Close)
	sseCtx, sseCancel := context.WithCancel(context.Background())
	t.Cleanup(sseCancel)
	sseReq, _ := http.NewRequestWithContext(sseCtx, http.MethodGet, fleetSrv.URL+"/fleet/events", nil)
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sseResp.Body.Close() })
	sseKinds := make(chan string, 1024)
	go func() {
		sc := bufio.NewScanner(sseResp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				select {
				case sseKinds <- strings.TrimPrefix(line, "event: "):
				default:
				}
			}
		}
	}()

	cfg := chaosCfg()
	cfg.Members = members
	cfg.Metrics = metrics
	cfg.HedgeAfter = 250 * time.Millisecond
	cfg.Trace = trace
	cfg.Events = bus
	cfg.Progress = prog
	cfg.Logf = t.Logf
	co, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-joined:
	case <-time.After(10 * time.Second):
		t.Fatal("join trigger never fired: the survivor served fewer than 2 shards")
	}
	t.Cleanup(func() {
		if joiner != nil {
			joiner.Close()
		}
	})

	// Tracing must never touch results: the report still matches the
	// sequential oracle byte for byte.
	if got := fabricBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("traced storm campaign differs from sequential oracle")
	}
	if joiner == nil || joiner.Proxy.Counts().Forwarded == 0 {
		t.Fatal("the mid-run joiner served nothing")
	}
	if n := metrics.Counter(`pd_fabric_hedges_total{kind="campaign"}`).Value(); n == 0 {
		t.Fatal("no hedge fired; the blackholed worker should have forced one")
	}
	if st := prog.Status(); st.Running || st.DoneShards != st.TotalShards || st.TotalShards == 0 {
		t.Fatalf("progress after storm = %+v", st)
	}

	// The live stream saw the campaign happen.
	streamed := map[string]int{}
	for len(sseKinds) > 0 {
		streamed[<-sseKinds]++
	}
	if streamed[obs.EvShardDispatch] == 0 || streamed[obs.EvShardDone] == 0 {
		t.Fatalf("SSE stream kinds = %v; want dispatches and completions", streamed)
	}
	if streamed[obs.EvShardDispatch] <= streamed[obs.EvShardDone] {
		t.Fatalf("SSE stream kinds = %v; a hedge/retry storm must dispatch more than it completes", streamed)
	}

	// The merged fleet trace survives the storm structurally: it
	// validates whole, spans the coordinator and at least two workers
	// (the blackholed one never answered a span-batch fetch), and names
	// hedged dispatches.
	var out bytes.Buffer
	if err := trace.WriteChrome(&out, "pdcoord"); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(bytes.NewReader(out.Bytes())); err != nil {
		t.Fatalf("storm-merged fleet trace invalid: %v", err)
	}
	var parsed struct {
		TraceEvents []struct {
			PID int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, ev := range parsed.TraceEvents {
		pids[ev.PID] = true
	}
	if len(pids) < 3 {
		t.Fatalf("merged trace spans %d processes, want >=3 (coordinator, survivor, joiner)", len(pids))
	}
	if !strings.Contains(out.String(), `"hedge"`) {
		t.Error("merged trace records no hedged dispatch")
	}

	// Merge determinism holds under chaos too: re-merging the same
	// snapshot with workers and requests in reversed order reproduces
	// the bytes exactly.
	coordEvents, workerTraces := trace.Snapshot()
	rev := make([]obs.WorkerTrace, len(workerTraces))
	for i, wt := range workerTraces {
		rev[len(workerTraces)-1-i] = wt
		for j, k := 0, len(wt.Requests)-1; j < k; j, k = j+1, k-1 {
			wt.Requests[j], wt.Requests[k] = wt.Requests[k], wt.Requests[j]
		}
	}
	var out2 bytes.Buffer
	if err := obs.WriteFleetChromeTrace(&out2, "pdcoord", coordEvents, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("storm trace merge depends on arrival order")
	}
}
