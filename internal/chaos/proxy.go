// Package chaos is the fabric's hostile-network harness: an in-process
// fault-injecting reverse proxy plus worker kill/restart orchestration,
// used by the chaos-smoke suite to prove the coordinator's byte-identical
// determinism guarantee survives latency, error storms, connection resets,
// truncated responses, blackholes, and fleet churn — the failure modes a
// long-running numerical-debugging service actually meets.
//
// Design notes. The proxy is the worker's public identity: the coordinator
// dials the proxy URL, the proxy forwards to whatever backend it currently
// targets. That split is what makes kill/restart realistic — the worker
// process behind a proxy can die (connections severed, dials refused) and
// come back on a different port while the fleet roster keeps one stable
// URL. Fault rolls draw from a seeded PRNG, so a failing chaos schedule
// replays exactly; faults compose per request in a fixed precedence
// (blackhole > reset > error > truncate), with latency applied first.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Spec is one route's fault profile. Rates are probabilities in [0, 1],
// rolled independently per request in precedence order: Blackhole, Reset,
// Error, Truncate. Latency (when set) always applies first.
type Spec struct {
	// Latency delays the request before anything else happens — injected
	// network slowness, not worker slowness, so hedging and lease logic
	// see realistic in-flight time.
	Latency time.Duration
	// ErrorRate answers with ErrorCode (default 503) and a short body
	// without touching the backend — an error storm from a sick LB or a
	// crashing worker.
	ErrorRate float64
	ErrorCode int
	// ResetRate severs the TCP connection mid-request with no response
	// bytes at all — a connection reset as the client sees it.
	ResetRate float64
	// TruncateRate forwards to the backend but cuts the response body off
	// partway and severs the connection — a torn response that must fail
	// decoding, never be half-merged.
	TruncateRate float64
	// BlackholeRate accepts the request and then holds it open in silence
	// until the client gives up — the lease-timeout / hedging trigger.
	BlackholeRate float64
}

// Counts reports how many of each fault the proxy actually injected —
// tests assert these are nonzero so a "passing" chaos run can't silently
// have been a calm one.
type Counts struct {
	Forwarded  int
	Latency    int
	Errors     int
	Resets     int
	Truncates  int
	Blackholes int
}

// Proxy is a fault-injecting reverse proxy for one worker. Create with
// NewProxy, point the fleet at URL(), shape faults with SetSpec/SetRoute,
// retarget (worker restart) with SetTarget.
type Proxy struct {
	ts     *httptest.Server
	client *http.Client

	mu       sync.Mutex
	target   string
	spec     Spec // default for routes without an override
	routes   map[string]Spec
	rng      *rand.Rand
	counts   Counts
	onFwd    func(path string, n int)
	fwdCount int
}

// NewProxy starts a proxy in front of target with deterministic fault
// rolls from seed. The zero Spec injects nothing until SetSpec/SetRoute.
func NewProxy(target string, seed int64) *Proxy {
	p := &Proxy{
		target: target,
		routes: map[string]Spec{},
		rng:    rand.New(rand.NewSource(seed)),
		client: &http.Client{
			// One connection per request: connection reuse across a reset
			// test would leak faults between requests.
			Transport: &http.Transport{DisableKeepAlives: true},
		},
	}
	p.ts = httptest.NewServer(http.HandlerFunc(p.serve))
	return p
}

// URL is the proxy's base URL — the worker's stable identity as the
// coordinator and the fleet roster see it.
func (p *Proxy) URL() string { return p.ts.URL }

// Close shuts the proxy down.
func (p *Proxy) Close() { p.ts.Close() }

// SetTarget retargets the proxy (a restarted worker on a new port).
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// SetSpec installs the default fault profile for all routes.
func (p *Proxy) SetSpec(s Spec) {
	p.mu.Lock()
	p.spec = s
	p.mu.Unlock()
}

// SetRoute overrides the fault profile for one exact request path.
func (p *Proxy) SetRoute(path string, s Spec) {
	p.mu.Lock()
	p.routes[path] = s
	p.mu.Unlock()
}

// OnForward installs a hook called (outside the proxy lock) after each
// successfully forwarded request with the path and the running forward
// count — the chaos tests' trigger point for mid-campaign kills and joins.
func (p *Proxy) OnForward(fn func(path string, n int)) {
	p.mu.Lock()
	p.onFwd = fn
	p.mu.Unlock()
}

// Counts returns a snapshot of injected-fault counters.
func (p *Proxy) Counts() Counts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.counts
}

// roll decides this request's fate under the route's spec. All PRNG use
// happens here, under the lock, in a fixed draw order — concurrent
// requests still see a deterministic fault stream.
type fate struct {
	latency   time.Duration
	blackhole bool
	reset     bool
	errCode   int
	truncate  bool
	target    string
}

func (p *Proxy) roll(path string) fate {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, ok := p.routes[path]
	if !ok {
		s = p.spec
	}
	f := fate{latency: s.Latency, target: p.target}
	switch {
	case s.BlackholeRate > 0 && p.rng.Float64() < s.BlackholeRate:
		f.blackhole = true
		p.counts.Blackholes++
	case s.ResetRate > 0 && p.rng.Float64() < s.ResetRate:
		f.reset = true
		p.counts.Resets++
	case s.ErrorRate > 0 && p.rng.Float64() < s.ErrorRate:
		f.errCode = s.ErrorCode
		if f.errCode == 0 {
			f.errCode = http.StatusServiceUnavailable
		}
		p.counts.Errors++
	case s.TruncateRate > 0 && p.rng.Float64() < s.TruncateRate:
		f.truncate = true
		p.counts.Truncates++
	}
	if f.latency > 0 {
		p.counts.Latency++
	}
	return f
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	f := p.roll(r.URL.Path)
	if f.latency > 0 {
		select {
		case <-time.After(f.latency):
		case <-r.Context().Done():
			return
		}
	}
	if f.blackhole {
		// Hold the request in silence until the client (lease, hedge, or
		// test teardown) gives up, then sever without a response. The body
		// must be drained first: the server only watches the connection for
		// client aborts once the request body has been consumed, so an
		// unread body would keep this handler hanging past the cancel.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		p.sever(w)
		return
	}
	if f.reset {
		p.sever(w)
		return
	}
	if f.errCode != 0 {
		http.Error(w, fmt.Sprintf(`{"error":"chaos injected %d","kind":"internal-fault"}`, f.errCode), f.errCode)
		return
	}

	// Forward to the current backend target.
	req, err := http.NewRequestWithContext(r.Context(), r.Method, f.target+r.URL.Path, r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		// Backend unreachable (killed worker): the classic dead-upstream
		// 502 a real reverse proxy would emit.
		http.Error(w, fmt.Sprintf(`{"error":"upstream unreachable: %v","kind":"bad-gateway"}`, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"upstream read: %v","kind":"bad-gateway"}`, err), http.StatusBadGateway)
		return
	}

	if f.truncate && len(body) > 1 {
		p.truncateAndSever(w, resp, body)
		p.notifyForward(r.URL.Path)
		return
	}

	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
	p.notifyForward(r.URL.Path)
}

func (p *Proxy) notifyForward(path string) {
	p.mu.Lock()
	p.counts.Forwarded++
	n := p.counts.Forwarded
	fn := p.onFwd
	p.mu.Unlock()
	if fn != nil {
		fn(path, n)
	}
}

// sever hijacks the connection and closes it raw — the client observes a
// TCP reset / EOF with no HTTP response.
func (p *Proxy) sever(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: response writer is not hijackable")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	conn.Close()
}

// truncateAndSever writes legitimate-looking headers and the first half of
// the body, then kills the connection: the client reads a torn payload
// that must fail JSON decoding — the fabric treats it as a transient
// worker fault, never merges it.
func (p *Proxy) truncateAndSever(w http.ResponseWriter, resp *http.Response, body []byte) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: response writer is not hijackable")
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	cut := body[:len(body)/2]
	fmt.Fprintf(buf, "HTTP/1.1 %d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	fmt.Fprintf(buf, "Content-Type: application/json\r\n")
	// Advertise the FULL length, deliver half: the decoder sees an
	// unexpected EOF, exactly what a torn wire looks like.
	fmt.Fprintf(buf, "Content-Length: %d\r\n\r\n", len(body))
	buf.Write(cut)
	buf.Flush()
	if tcp, ok := conn.(*net.TCPConn); ok {
		// SO_LINGER 0: close with RST, not FIN, so buffered bytes die too.
		tcp.SetLinger(0)
	}
}
