package chaos

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func backendEcho(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","payload":"`+strings.Repeat("x", 256)+`"}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestProxyPassThrough(t *testing.T) {
	be := backendEcho(t)
	p := NewProxy(be.URL, 1)
	t.Cleanup(p.Close)

	resp, err := http.Get(p.URL() + "/run")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("pass-through body = %v", body)
	}
	if c := p.Counts(); c.Forwarded != 1 || c.Errors+c.Resets+c.Truncates+c.Blackholes != 0 {
		t.Fatalf("zero-spec proxy injected faults: %+v", c)
	}
}

func TestProxyErrorStorm(t *testing.T) {
	be := backendEcho(t)
	p := NewProxy(be.URL, 2)
	t.Cleanup(p.Close)
	p.SetSpec(Spec{ErrorRate: 1, ErrorCode: http.StatusInternalServerError})

	resp, err := http.Get(p.URL() + "/run")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(b), "chaos injected") {
		t.Fatalf("body = %s", b)
	}
	if c := p.Counts(); c.Errors != 1 || c.Forwarded != 0 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestProxyReset(t *testing.T) {
	be := backendEcho(t)
	p := NewProxy(be.URL, 3)
	t.Cleanup(p.Close)
	p.SetSpec(Spec{ResetRate: 1})

	_, err := http.Get(p.URL() + "/run")
	if err == nil {
		t.Fatal("reset-rate-1 proxy answered successfully")
	}
	if c := p.Counts(); c.Resets != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestProxyTruncate: the torn response must be undecodable — a client that
// JSON-decodes it gets an error, never a silently short value.
func TestProxyTruncate(t *testing.T) {
	be := backendEcho(t)
	p := NewProxy(be.URL, 4)
	t.Cleanup(p.Close)
	p.SetSpec(Spec{TruncateRate: 1})

	resp, err := http.Get(p.URL() + "/run")
	if err != nil {
		t.Fatal(err) // headers arrive intact; the tear is in the body
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	var decoded map[string]any
	decodeErr := json.Unmarshal(body, &decoded)
	if readErr == nil && decodeErr == nil {
		t.Fatalf("truncated response read cleanly AND decoded: %q", body)
	}
	if c := p.Counts(); c.Truncates != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestProxyBlackhole(t *testing.T) {
	be := backendEcho(t)
	p := NewProxy(be.URL, 5)
	t.Cleanup(p.Close)
	p.SetSpec(Spec{BlackholeRate: 1})

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL()+"/run", nil)
	start := time.Now()
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("blackholed request answered")
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("blackholed request failed after %v; it should hang until the client deadline", elapsed)
	}
	if c := p.Counts(); c.Blackholes != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestProxyRouteOverrideAndLatency(t *testing.T) {
	be := backendEcho(t)
	p := NewProxy(be.URL, 6)
	t.Cleanup(p.Close)
	p.SetSpec(Spec{ErrorRate: 1}) // default: storm everything...
	p.SetRoute("/healthz", Spec{Latency: 50 * time.Millisecond})

	// ...except /healthz, which only gets latency.
	start := time.Now()
	resp, err := http.Get(p.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route-override request got %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Fatalf("latency spec not applied: %v", elapsed)
	}
	resp, err = http.Get(p.URL() + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("default spec not applied to /run: %d", resp.StatusCode)
	}
}

// TestProxyDeterministicFaults: same seed, same request sequence → same
// fault stream; that is what makes a chaos failure replayable.
func TestProxyDeterministicFaults(t *testing.T) {
	run := func(seed int64) []int {
		be := backendEcho(t)
		p := NewProxy(be.URL, seed)
		defer p.Close()
		p.SetSpec(Spec{ErrorRate: 0.5})
		var codes []int
		for i := 0; i < 40; i++ {
			resp, err := http.Get(p.URL() + "/run")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes = append(codes, resp.StatusCode)
		}
		return codes
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed fault streams diverge at request %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestWorkerKillRestart: a killed worker's proxy answers 502; after
// Restart the same proxy URL serves again from a cold cache.
func TestWorkerKillRestart(t *testing.T) {
	w, err := NewWorker(DefaultWorkerConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	get := func(path string) int {
		resp, err := http.Get(w.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before kill = %d", code)
	}
	w.Kill()
	if code := get("/healthz"); code != http.StatusBadGateway {
		t.Fatalf("healthz after kill = %d, want 502", code)
	}
	if err := w.Restart(); err != nil {
		t.Fatal(err)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after restart = %d", code)
	}
}
