package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"positdebug/internal/fabric"
	"positdebug/internal/faultinject"
	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// The chaos campaign suite: real multi-worker campaigns through the
// fault-injecting proxy, each asserting the merged report is
// byte-identical to a sequential single-process pdfault run. Every test
// also asserts its faults actually fired — a calm run must not pass as a
// chaotic one.

func chaosCampaign() faultinject.CampaignConfig {
	return faultinject.CampaignConfig{
		Workload: "polybench/gemm", N: 8, Arch: "both", Runs: 16, Seed: 1337,
	}
}

func oracleBytes(t *testing.T, cfg faultinject.CampaignConfig) []byte {
	t.Helper()
	rep, err := faultinject.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func fabricBytes(t *testing.T, rep *faultinject.Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosCfg is the coordinator shape for chaos runs: quick retries, quick
// ejections, death verdicts on, hedging off unless a test opts in.
func chaosCfg(workers ...string) fabric.Config {
	return fabric.Config{
		Workers:      workers,
		ShardSize:    2,
		MaxAttempts:  12,
		BaseBackoff:  5 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		LeaseTimeout: time.Minute,
		HedgeAfter:   -1,
		EjectAfter:   2,
		DeadAfter:    2,
		Probation:    50 * time.Millisecond,
		JitterSeed:   42,
	}
}

// TestChaosFaultStormByteIdentical drives a campaign through three
// proxies injecting a mixed storm — latency, 5xx errors, connection
// resets, truncated bodies — and requires the merged report to match the
// sequential oracle byte for byte.
func TestChaosFaultStormByteIdentical(t *testing.T) {
	ccfg := chaosCampaign()
	want := oracleBytes(t, ccfg)

	fleet, err := NewFleet(3, DefaultWorkerConfig(), 4242)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	fleet.Workers[0].Proxy.SetRoute("/campaign/shard", Spec{Latency: 20 * time.Millisecond, ErrorRate: 0.5, ErrorCode: http.StatusServiceUnavailable})
	fleet.Workers[1].Proxy.SetRoute("/campaign/shard", Spec{ResetRate: 0.5})
	fleet.Workers[2].Proxy.SetRoute("/campaign/shard", Spec{TruncateRate: 0.4, ErrorRate: 0.25, ErrorCode: http.StatusInternalServerError})

	reg := obs.NewRegistry()
	cfg := chaosCfg(fleet.URLs()...)
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	co, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := fabricBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("fault-storm report differs from sequential oracle")
	}
	c := fleet.TotalCounts()
	t.Logf("injected faults: %+v", c)
	if c.Errors+c.Resets+c.Truncates < 3 {
		t.Fatalf("storm injected too few faults to prove anything: %+v", c)
	}
	if c.Latency == 0 {
		t.Fatalf("latency spec never applied: %+v", c)
	}
}

// TestChaosBlackholeHedgeEscape: one worker blackholes every shard (accepts
// and hangs in silence). Hedging must rescue every stuck shard onto the
// healthy workers — long before the (deliberately long) lease.
func TestChaosBlackholeHedgeEscape(t *testing.T) {
	ccfg := chaosCampaign()
	want := oracleBytes(t, ccfg)

	fleet, err := NewFleet(3, DefaultWorkerConfig(), 77)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	fleet.Workers[0].Proxy.SetRoute("/campaign/shard", Spec{BlackholeRate: 1})

	reg := obs.NewRegistry()
	cfg := chaosCfg(fleet.URLs()...)
	cfg.HedgeAfter = 250 * time.Millisecond
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	co, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 45*time.Second {
		t.Fatalf("campaign took %v; hedges should escape blackholes far inside the lease", elapsed)
	}
	if got := fabricBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("blackholed campaign differs from sequential oracle")
	}
	c := fleet.TotalCounts()
	t.Logf("injected faults: %+v", c)
	if c.Blackholes == 0 {
		t.Fatal("no blackhole ever fired; test proves nothing")
	}
	if n := reg.Counter(`pd_fabric_hedges_total{kind="campaign"}`).Value(); n == 0 {
		t.Fatal("no hedge fired; blackholed shards should have been hedged")
	}
}

// registerWorker posts one registration to the registrar, as pdserve
// -coordinator does on its first heartbeat.
func registerWorker(t *testing.T, coordURL, workerURL string) {
	t.Helper()
	body, _ := json.Marshal(fabric.RegisterRequest{URL: workerURL})
	resp, err := http.Post(coordURL+"/fabric/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: %d", workerURL, resp.StatusCode)
	}
}

// TestChaosChurnByteIdentical is the acceptance-criteria test: a campaign
// through fault-injecting proxies during which one worker is killed
// mid-run (no goodbye — backend dead, proxy answering 502) and another
// worker joins mid-run via the registration endpoint. The merged report
// must equal the sequential oracle byte for byte, and the joiner must
// actually have served shards.
func TestChaosChurnByteIdentical(t *testing.T) {
	ccfg := chaosCampaign()
	want := oracleBytes(t, ccfg)

	// The fleet roster is fed by a real registrar over HTTP — the same
	// surface pdcoord -listen serves.
	members := fabric.NewMembership()
	metrics := obs.NewRegistry()
	registrar, err := fabric.NewRegistrar(fabric.RegistrarConfig{
		Members: members, ProbeInterval: -1, HeartbeatTTL: time.Hour,
		Metrics: metrics, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(registrar.Handler())
	t.Cleanup(coordSrv.Close)

	fleet, err := NewFleet(2, DefaultWorkerConfig(), 31337)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	victim, survivor := fleet.Workers[0], fleet.Workers[1]
	victim.Proxy.SetRoute("/campaign/shard", Spec{ErrorRate: 0.15})
	survivor.Proxy.SetRoute("/campaign/shard", Spec{Latency: 25 * time.Millisecond})
	registerWorker(t, coordSrv.URL, victim.URL())
	registerWorker(t, coordSrv.URL, survivor.URL())

	// Mid-campaign churn, triggered by real traffic: after the victim has
	// served two shards its backend dies (kill -9 shape: connections
	// severed, proxy 502s), and a brand-new worker registers.
	var joiner *Worker
	joined := make(chan struct{})
	victim.Proxy.OnForward(func(path string, n int) {
		if path != "/campaign/shard" || n != 2 {
			return
		}
		go func() {
			defer close(joined)
			victim.Kill()
			w, err := NewWorker(DefaultWorkerConfig(), 555)
			if err != nil {
				t.Error(err)
				return
			}
			joiner = w
			registerWorker(t, coordSrv.URL, w.URL())
		}()
	})

	cfg := chaosCfg() // no static workers: the roster is the registrar's
	cfg.Members = members
	cfg.Metrics = metrics
	cfg.Logf = t.Logf
	co, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-joined:
	case <-time.After(10 * time.Second):
		t.Fatal("churn trigger never fired: the victim served fewer than 2 shards")
	}
	t.Cleanup(func() {
		if joiner != nil {
			joiner.Close()
		}
	})

	if got := fabricBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("churned campaign differs from sequential oracle")
	}
	if joiner == nil || joiner.Proxy.Counts().Forwarded == 0 {
		t.Fatal("the mid-campaign joiner served nothing")
	}
	if n := metrics.Counter("pd_fabric_member_deaths_total").Value(); n < 1 {
		t.Fatalf("deaths counter = %d; the killed worker was never declared dead", n)
	}
	for _, m := range members.Snapshot() {
		if m.URL == victim.URL() {
			t.Fatal("the killed worker is still in the roster")
		}
	}
}

// TestChaosDrainAnnouncementMigratesLeases: a worker running the real
// registration loop begins draining mid-campaign; its deregistration must
// reach the registrar and migrate its in-flight lease immediately — the
// campaign must finish far inside the deliberately long lease timeout.
func TestChaosDrainAnnouncementMigratesLeases(t *testing.T) {
	ccfg := chaosCampaign()
	want := oracleBytes(t, ccfg)

	members := fabric.NewMembership()
	metrics := obs.NewRegistry()
	registrar, err := fabric.NewRegistrar(fabric.RegistrarConfig{
		Members: members, ProbeInterval: -1, HeartbeatTTL: time.Hour,
		Metrics: metrics, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	coordSrv := httptest.NewServer(registrar.Handler())
	t.Cleanup(coordSrv.Close)

	fleet, err := NewFleet(2, DefaultWorkerConfig(), 909)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	leaver, stayer := fleet.Workers[0], fleet.Workers[1]

	// The leaver runs the real worker-side registration loop; its drain
	// will announce departure over the wire.
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		leaver.Server.RegisterLoop(ctx, server.RegisterConfig{
			Coordinator: coordSrv.URL,
			Advertise:   leaver.URL(),
			Interval:    100 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()
	registerWorker(t, coordSrv.URL, stayer.URL())
	deadline := time.Now().Add(5 * time.Second)
	for members.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if members.Len() < 2 {
		t.Fatal("fleet never assembled")
	}

	// After the leaver serves two shards, its graceful drain begins: new
	// requests get 503, and the registration loop posts the departure.
	var drained bool
	leaver.Proxy.OnForward(func(path string, n int) {
		if path == "/campaign/shard" && n == 2 && !drained {
			drained = true
			leaver.Server.BeginDrain()
		}
	})

	cfg := chaosCfg()
	cfg.Members = members
	cfg.Metrics = metrics
	cfg.LeaseTimeout = 5 * time.Minute // migration must not need the lease
	cfg.Logf = t.Logf
	co, err := fabric.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("campaign took %v; the drain announcement should migrate leases immediately", elapsed)
	}
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("registration loop did not exit after drain")
	}
	if got := fabricBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("drained campaign differs from sequential oracle")
	}
	if !drained {
		t.Fatal("drain trigger never fired")
	}
	if n := metrics.Counter("pd_fabric_member_leaves_total").Value(); n < 1 {
		t.Fatal("no member ever left; the departure announcement was lost")
	}
}
