package interp

import (
	"context"
	"encoding/binary"
	"fmt"
	"time"

	"positdebug/internal/bytecode"
	"positdebug/internal/ir"
	"positdebug/internal/posit"
)

// FastShadow is an optional interface a Hooks implementation may satisfy to
// receive shadow events through the VM's fused superinstructions without an
// injector in the loop. The methods mirror the corresponding Hooks methods
// exactly and MUST produce byte-identical observable behavior (reports,
// traces, profiles, panics); what they may additionally assume is that the
// delivered program value is the uncorrupted result of the base operation
// that just executed, which lets a runtime reuse one decode of that result
// for conversion, exponent and precision-geometry checks instead of
// re-deriving each from the raw bits.
//
// The machine binds FastShadow only when the run has no Injector and the
// Hooks value implements it directly. Sampling composes: it implements
// FastShadow as an adapter, gating fused compute events with the same
// take() decision it applies on the tree-walker path. Other wrapping
// decorators (injectors, user hooks) naturally break the type assertion
// and fall back to the generic mutate-then-Hooks path the tree-walker
// uses.
type FastShadow interface {
	FastConst(id int32, typ ir.Type, dst int32, bits uint64)
	FastMov(id int32, typ ir.Type, dst, src int32, bits uint64)
	FastBin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64)
	// FastBinP32 fuses the ⟨32,2⟩ add/sub/mul base arithmetic into the
	// shadow event: the implementation computes and returns the program
	// result itself (bit-identical to Config32.Add/Sub/Mul), which lets it
	// reuse its memoized operand decodes for both the arithmetic and the
	// detection pass. kind is one of BinAdd/BinSub/BinMul.
	FastBinP32(id int32, kind ir.BinKind, dst, a, b int32, aVal, bVal uint64) uint64
	FastUn(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64)
	FastCast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64)
	FastLoad(id int32, typ ir.Type, dst int32, addr uint32, bits uint64)
	FastStore(id int32, typ ir.Type, addr uint32, src int32, bits uint64)
}

// ensureChunk lazily compiles the module to fused bytecode, once per
// machine. Compile verifies the chunk before returning it, so execution
// never sees an unverified program.
func (m *Machine) ensureChunk() (*bytecode.Module, error) {
	if m.chunk != nil {
		return m.chunk, nil
	}
	ch, err := bytecode.Compile(m.Mod, bytecode.Options{Fuse: true})
	if err != nil {
		return nil, fmt.Errorf("interp: vm backend: %w", err)
	}
	m.chunk = ch
	return ch, nil
}

// zeroDirtyMem prepares memory for a VM run by zeroing globals plus only
// the dirty region of the stack — everything at or above lowWater is
// untouched since the last reset and still zero. Frame pushes and stores
// maintain lowWater, and tree-walk runs poison it to "whole stack dirty",
// so the optimization is exact: a VM run always starts from the same
// all-zero image a full memclr would produce.
func (m *Machine) zeroDirtyMem() {
	gb, gs := m.Mod.GlobalBase, m.Mod.GlobalSize
	clear(m.mem[gb : gb+gs])
	lw := m.lowWater
	if lw < gb+gs {
		lw = gb + gs
	}
	if int(lw) < len(m.mem) {
		clear(m.mem[lw:])
	}
	m.lowWater = uint32(len(m.mem))
}

// vmMutate is mutate for bytecode instructions: consult the injector right
// before a value-producing shadow event and rewrite the destination
// register with the corrupted bits.
func (m *Machine) vmMutate(id int32, op ir.Op, t ir.Type, regs []uint64, dst int32) {
	if m.inj == nil {
		return
	}
	if nb, ok := m.inj.Mutate(id, op, t, regs[dst]); ok {
		regs[dst] = nb
	}
}

// memTrap builds the out-of-bounds trap off the hot path, keeping
// vmLoad/vmStore within the inlining budget.
func (m *Machine) memTrap(fname string, size, addr uint32) error {
	return &Trap{Msg: fmt.Sprintf("memory access out of bounds: addr=%d size=%d", addr, size), Func: fname}
}

// vmLoad reads size bytes little-endian with the tree-walker's bounds rule.
func (m *Machine) vmLoad(ch *bytecode.Module, fname string, size, addr uint32) (uint64, error) {
	if addr < ch.GlobalBase || uint64(addr)+uint64(size) > uint64(len(m.mem)) {
		return 0, m.memTrap(fname, size, addr)
	}
	switch size {
	case 1:
		return uint64(m.mem[addr]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.mem[addr:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.mem[addr:])), nil
	default:
		return binary.LittleEndian.Uint64(m.mem[addr:]), nil
	}
}

// vmStore writes size bytes little-endian and tracks the stack low-water
// mark that zeroDirtyMem relies on.
func (m *Machine) vmStore(ch *bytecode.Module, fname string, size, addr uint32, v uint64) error {
	if addr < ch.GlobalBase || uint64(addr)+uint64(size) > uint64(len(m.mem)) {
		return m.memTrap(fname, size, addr)
	}
	// Only stack addresses move the low-water mark: the globals region is
	// unconditionally cleared by zeroDirtyMem, and letting a global store
	// drag lowWater below the stack base would degenerate the next reset
	// into a full-stack memclr.
	if sb := ch.GlobalBase + ch.GlobalSize; addr >= sb && addr < m.lowWater {
		m.lowWater = addr
	}
	switch size {
	case 1:
		m.mem[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.mem[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.mem[addr:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(m.mem[addr:], v)
	}
	return nil
}

// vmCall executes one verified bytecode function, mirroring Machine.call
// exactly: same frame discipline, register pooling, hook protocol, step
// accounting, poll cadence, traps, and panic annotation — so every
// observable artifact is byte-identical to the tree-walker's.
func (m *Machine) vmCall(ch *bytecode.Module, fi int32, args []uint64) (uint64, error) {
	f := ch.Funcs[fi]
	if m.depth++; m.depth > maxCallDepth {
		return 0, &Trap{Msg: "call depth exceeded", Func: f.Name}
	}
	defer func() { m.depth-- }()

	frame := (f.FrameSize + 7) / 8 * 8
	// The comparison runs in uint64 so a decoded chunk with absurd global
	// or frame sizes traps instead of wrapping the stack pointer.
	base := uint64(ch.GlobalBase) + uint64(ch.GlobalSize)
	if uint64(m.sp) < base+uint64(frame) {
		return 0, &Trap{Msg: "stack overflow", Func: f.Name}
	}
	savedSP := m.sp
	m.sp -= frame
	fp := m.sp
	if fp < m.lowWater {
		m.lowWater = fp
	}
	// Zero the frame so stale stack data never leaks into locals.
	for i := fp; i < savedSP; i++ {
		m.mem[i] = 0
	}
	defer func() { m.sp = savedSP }()

	regs := m.getRegs(f.NumRegs)
	defer m.putRegs(regs)
	copy(regs, args)
	if f.Instrumented {
		m.Hooks.EnterFunc(f.IR, regs[:f.NumParams])
		defer m.Hooks.LeaveFunc()
	}

	maxSteps := m.limSteps
	if maxSteps == 0 {
		maxSteps = m.MaxSteps
	}
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}

	prevFn := m.curFn
	m.curFn = f.IR
	defer func() {
		m.curFn = prevFn
		r := recover()
		if r == nil {
			return
		}
		// Annotate the panic at the innermost frame, where the breadcrumbs
		// still name the panicking function; outer frames pass the
		// structured value through unchanged.
		switch fv := r.(type) {
		case *Stopped, *InternalFault:
		case *Cancelled:
			if fv.Func == "" {
				fv.Func = f.Name
			}
		case *ResourceExhausted:
			if fv.Func == "" {
				fv.Func = f.Name
			}
		default:
			// Resolve the lazy breadcrumb: the dispatch loop records only
			// the bytecode pc; block/index are looked up here, on the one
			// path that reads them. A panic in the shadow half of a fused
			// pair reports the second IR instruction of the pair, matching
			// the tree-walker's position at the equivalent point.
			blk, idx := m.curBlk, m.curIdx
			if p := m.vmPC; p >= 0 && p < len(f.Pos) {
				blk, idx = f.Pos[p].Blk, int(f.Pos[p].Idx)
				if f.Code[p].Op >= bytecode.FusedFirst {
					idx++
				}
			}
			r = &InternalFault{
				Func: f.Name, Block: blk, Index: idx,
				Steps: m.steps, Recovered: fv,
			}
		}
		panic(r)
	}()

	code := f.Code
	pos := f.Pos
	fh := m.fastHooks
	pc := 0
	// checkAt folds the step limit and the poll cadence into one per-op
	// comparison: the slow path below disambiguates and recomputes it. A
	// stale (too low) checkAt after a nested call merely re-enters the slow
	// path early; nextPoll only grows and maxSteps is fixed per run, so the
	// cached value never overshoots either threshold.
	checkAt := maxSteps
	if m.nextPoll-1 < checkAt {
		checkAt = m.nextPoll - 1
	}
	for {
		in := &code[pc]
		op := in.Op
		// A fused superinstruction is two IR steps; charge both up front
		// and, when the budget splits the pair, replay exactly what the
		// tree-walker would have executed before tripping.
		var w int64 = 1
		if op >= bytecode.FusedFirst {
			w = 2
		}
		if m.steps += w; m.steps > checkAt {
			if m.steps > maxSteps {
				if w == 2 && m.steps-1 <= maxSteps {
					// Eager breadcrumb: the replayed first half is the base
					// op, so the fused +1 in the lazy resolution must not
					// apply.
					m.curBlk, m.curIdx = pos[pc].Blk, int(pos[pc].Idx)
					m.vmPC = -1
					if err := m.vmFirstHalf(ch, f, in, regs); err != nil {
						return 0, err
					}
				} else if w == 2 {
					m.steps--
				}
				return 0, &ResourceExhausted{
					Resource: ResSteps, Limit: maxSteps, Used: m.steps,
					Func: f.Name, Steps: m.steps,
				}
			}
			if m.steps >= m.nextPoll {
				m.nextPoll = (m.steps &^ deadlineCheckMask) + deadlineCheckMask + 1
				if m.checkDeadline && time.Now().After(m.deadline) {
					return 0, &ResourceExhausted{
						Resource: ResWallClock, Limit: int64(m.limTimeout), Used: m.steps,
						Func: f.Name, Steps: m.steps,
					}
				}
				if m.ctxDone != nil {
					select {
					case <-m.ctxDone:
						return 0, &Cancelled{Func: f.Name, Steps: m.steps, Cause: context.Cause(m.runCtx)}
					default:
					}
				}
			}
			checkAt = maxSteps
			if m.nextPoll-1 < checkAt {
				checkAt = m.nextPoll - 1
			}
		}
		m.vmPC = pc
		pc++
		switch op {
		case bytecode.OpNop:
		case bytecode.OpConst:
			regs[in.Dst] = in.Imm
		case bytecode.OpMov:
			regs[in.Dst] = regs[in.A]
		case bytecode.OpAddI64:
			regs[in.Dst] = uint64(int64(regs[in.A]) + int64(regs[in.B]))
		case bytecode.OpSubI64:
			regs[in.Dst] = uint64(int64(regs[in.A]) - int64(regs[in.B]))
		case bytecode.OpMulI64:
			regs[in.Dst] = uint64(int64(regs[in.A]) * int64(regs[in.B]))
		case bytecode.OpDivI64, bytecode.OpRemI64:
			k := ir.BinDiv
			if op == bytecode.OpRemI64 {
				k = ir.BinRem
			}
			v, err := binEvalN(f.Name, k, ir.I64, regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case bytecode.OpAddP16:
			regs[in.Dst] = uint64(posit.Config16.Add(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
		case bytecode.OpSubP16:
			regs[in.Dst] = uint64(posit.Config16.Sub(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
		case bytecode.OpMulP16:
			regs[in.Dst] = uint64(posit.Config16.Mul(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
		case bytecode.OpAddP32:
			regs[in.Dst] = uint64(posit.Config32.Add(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
		case bytecode.OpSubP32:
			regs[in.Dst] = uint64(posit.Config32.Sub(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
		case bytecode.OpMulP32:
			regs[in.Dst] = uint64(posit.Config32.Mul(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
		case bytecode.OpBin:
			v, err := binEvalN(f.Name, ir.BinKind(in.K), ir.Type(in.T), regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case bytecode.OpUn:
			regs[in.Dst] = unEval(ir.UnKind(in.K), ir.Type(in.T), regs[in.A])
		case bytecode.OpLtI64:
			if int64(regs[in.A]) < int64(regs[in.B]) {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case bytecode.OpCmp:
			if cmpEval(ir.CmpPred(in.K), ir.Type(in.T), regs[in.A], regs[in.B]) {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case bytecode.OpCast:
			regs[in.Dst] = castEval(ir.Type(in.T), ir.Type(in.T2), regs[in.A])
		case bytecode.OpLoad1:
			v, err := m.vmLoad(ch, f.Name, 1, uint32(regs[in.A]))
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case bytecode.OpLoad2:
			v, err := m.vmLoad(ch, f.Name, 2, uint32(regs[in.A]))
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case bytecode.OpLoad4:
			// Widths 4 and 8 carry all numeric and index traffic; inlined
			// like the fused load to keep the call out of the loop.
			a := uint32(regs[in.A])
			if a < ch.GlobalBase || uint64(a)+4 > uint64(len(m.mem)) {
				return 0, m.memTrap(f.Name, 4, a)
			}
			regs[in.Dst] = uint64(binary.LittleEndian.Uint32(m.mem[a:]))
		case bytecode.OpLoad8:
			a := uint32(regs[in.A])
			if a < ch.GlobalBase || uint64(a)+8 > uint64(len(m.mem)) {
				return 0, m.memTrap(f.Name, 8, a)
			}
			regs[in.Dst] = binary.LittleEndian.Uint64(m.mem[a:])
		case bytecode.OpStore1:
			if err := m.vmStore(ch, f.Name, 1, uint32(regs[in.A]), regs[in.B]); err != nil {
				return 0, err
			}
		case bytecode.OpStore2:
			if err := m.vmStore(ch, f.Name, 2, uint32(regs[in.A]), regs[in.B]); err != nil {
				return 0, err
			}
		case bytecode.OpStore4:
			a := uint32(regs[in.A])
			if a < ch.GlobalBase || uint64(a)+4 > uint64(len(m.mem)) {
				return 0, m.memTrap(f.Name, 4, a)
			}
			if sb := ch.GlobalBase + ch.GlobalSize; a >= sb && a < m.lowWater {
				m.lowWater = a
			}
			binary.LittleEndian.PutUint32(m.mem[a:], uint32(regs[in.B]))
		case bytecode.OpStore8:
			a := uint32(regs[in.A])
			if a < ch.GlobalBase || uint64(a)+8 > uint64(len(m.mem)) {
				return 0, m.memTrap(f.Name, 8, a)
			}
			if sb := ch.GlobalBase + ch.GlobalSize; a >= sb && a < m.lowWater {
				m.lowWater = a
			}
			binary.LittleEndian.PutUint64(m.mem[a:], regs[in.B])
		case bytecode.OpFrameAddr:
			regs[in.Dst] = uint64(fp) + in.Imm
		case bytecode.OpAddrIndex:
			regs[in.Dst] = regs[in.A] + regs[in.B]*in.Imm
		case bytecode.OpBr:
			if regs[in.A] != 0 {
				pc = int(in.Dst)
			} else {
				pc = int(in.B)
			}
		case bytecode.OpJmp:
			pc = int(in.Dst)
		case bytecode.OpCall:
			m.argScratch = m.argScratch[:0]
			for _, a := range ch.Args[in.Imm : in.Imm+uint64(in.B)] {
				m.argScratch = append(m.argScratch, regs[a])
			}
			v, err := m.vmCall(ch, in.A, m.argScratch)
			if err != nil {
				return 0, err
			}
			if in.Dst >= 0 {
				regs[in.Dst] = v
			}
		case bytecode.OpRet:
			if in.A >= 0 {
				return regs[in.A], nil
			}
			return 0, nil
		case bytecode.OpPrint:
			m.print(ir.Type(in.T), regs[in.A])
		case bytecode.OpPrintStr:
			if m.Out != nil {
				fmt.Fprintln(m.Out, ch.Strs[in.Imm])
			}
		case bytecode.OpQClear:
			// qclear() is untyped at the source level; reset every quire.
			for _, q := range m.quires {
				q.Clear()
			}
		case bytecode.OpQAdd:
			q := m.quire(ir.Type(in.T))
			if in.K == 1 {
				q.Sub(posit.Bits(regs[in.A]))
			} else {
				q.Add(posit.Bits(regs[in.A]))
			}
		case bytecode.OpQMAdd:
			q := m.quire(ir.Type(in.T))
			if in.K == 1 {
				q.SubProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			} else {
				q.AddProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			}
		case bytecode.OpQVal:
			regs[in.Dst] = uint64(m.quire(ir.Type(in.T)).Posit())
		case bytecode.OpFMA:
			regs[in.Dst] = fmaEval(ir.Type(in.T), regs[in.A], regs[in.B], regs[int32(in.Imm)])

		case bytecode.OpShConst:
			m.vmMutate(in.ID, ir.OpShadowConst, ir.Type(in.T), regs, in.Dst)
			m.Hooks.Const(in.ID, ir.Type(in.T), in.Dst, regs[in.Dst])
		case bytecode.OpShMov:
			m.Hooks.Mov(in.ID, ir.Type(in.T), in.Dst, in.A, regs[in.Dst])
		case bytecode.OpShBin:
			m.vmMutate(in.ID, ir.OpShadowBin, ir.Type(in.T), regs, in.Dst)
			m.Hooks.Bin(in.ID, ir.BinKind(in.K), ir.Type(in.T), in.Dst, in.A, in.B,
				regs[in.Dst], regs[in.A], regs[in.B])
		case bytecode.OpShUn:
			m.vmMutate(in.ID, ir.OpShadowUn, ir.Type(in.T), regs, in.Dst)
			m.Hooks.Un(in.ID, ir.UnKind(in.K), ir.Type(in.T), in.Dst, in.A, regs[in.Dst], regs[in.A])
		case bytecode.OpShCmp:
			m.Hooks.Cmp(in.ID, ir.CmpPred(in.K), ir.Type(in.T), in.A, in.B,
				regs[in.A], regs[in.B], regs[in.Dst] != 0)
		case bytecode.OpShCast:
			m.vmMutate(in.ID, ir.OpShadowCast, ir.Type(in.T), regs, in.Dst)
			m.Hooks.Cast(in.ID, ir.Type(in.T), ir.Type(in.T2), in.Dst, in.A, regs[in.Dst], regs[in.A])
		case bytecode.OpShLoad:
			m.vmMutate(in.ID, ir.OpShadowLoad, ir.Type(in.T), regs, in.Dst)
			m.Hooks.Load(in.ID, ir.Type(in.T), in.Dst, uint32(regs[in.A]), regs[in.Dst])
		case bytecode.OpShStore:
			stored := regs[in.B]
			if m.inj != nil {
				if nb, ok := m.inj.Mutate(in.ID, ir.OpShadowStore, ir.Type(in.T), stored); ok {
					// A store fault corrupts the memory cell, not the
					// register: rewrite the bytes the store just wrote.
					stored = nb
					if err := m.vmStore(ch, f.Name, ir.Type(in.T).Size(), uint32(regs[in.A]), stored); err != nil {
						return 0, err
					}
				}
			}
			m.Hooks.Store(in.ID, ir.Type(in.T), uint32(regs[in.A]), in.B, stored)
		case bytecode.OpShPreCall:
			m.argScratch = m.argScratch[:0]
			argRegs := ch.Args[in.Imm : in.Imm+uint64(in.B)]
			for _, a := range argRegs {
				m.argScratch = append(m.argScratch, regs[a])
			}
			m.Hooks.PreCall(ch.Funcs[in.A].IR, argRegs, m.argScratch)
		case bytecode.OpShPostCall:
			var bits uint64
			if in.Dst >= 0 {
				m.vmMutate(in.ID, ir.OpShadowPostCall, ir.Type(in.T), regs, in.Dst)
				bits = regs[in.Dst]
			}
			m.Hooks.PostCall(in.ID, ir.Type(in.T), in.Dst, bits)
		case bytecode.OpShRet:
			var bits uint64
			if in.A >= 0 {
				bits = regs[in.A]
			}
			m.Hooks.Ret(ir.Type(in.T), in.A, bits)
		case bytecode.OpShPrint:
			m.Hooks.Print(in.ID, ir.Type(in.T), in.A, regs[in.A])
		case bytecode.OpShQClear:
			m.Hooks.QClear(ir.Type(in.T))
		case bytecode.OpShQAdd:
			m.Hooks.QAdd(ir.Type(in.T), in.A, regs[in.A], in.K == 1)
		case bytecode.OpShQMAdd:
			m.Hooks.QMAdd(ir.Type(in.T), in.A, in.B, regs[in.A], regs[in.B], in.K == 1)
		case bytecode.OpShQVal:
			m.vmMutate(in.ID, ir.OpShadowQVal, ir.Type(in.T), regs, in.Dst)
			m.Hooks.QVal(in.ID, ir.Type(in.T), in.Dst, regs[in.Dst])
		case bytecode.OpShFMA:
			m.vmMutate(in.ID, ir.OpShadowFMA, ir.Type(in.T), regs, in.Dst)
			c := int32(in.Imm)
			m.Hooks.FMA(in.ID, ir.Type(in.T), in.Dst, in.A, in.B, c,
				regs[in.Dst], regs[in.A], regs[in.B], regs[c])

		case bytecode.OpFusedConst:
			regs[in.Dst] = in.Imm
			if fh != nil {
				fh.FastConst(in.ID, ir.Type(in.T), in.Dst, in.Imm)
			} else {
				m.vmMutate(in.ID, ir.OpShadowConst, ir.Type(in.T), regs, in.Dst)
				m.Hooks.Const(in.ID, ir.Type(in.T), in.Dst, regs[in.Dst])
			}
		case bytecode.OpFusedMov:
			regs[in.Dst] = regs[in.A]
			if fh != nil {
				fh.FastMov(in.ID, ir.Type(in.T), in.Dst, in.A, regs[in.Dst])
			} else {
				m.Hooks.Mov(in.ID, ir.Type(in.T), in.Dst, in.A, regs[in.Dst])
			}
		case bytecode.OpFusedAddP16:
			av, bv := regs[in.A], regs[in.B]
			regs[in.Dst] = uint64(posit.Config16.Add(posit.Bits(av), posit.Bits(bv)))
			if fh != nil {
				fh.FastBin(in.ID, ir.BinAdd, ir.P16, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			} else {
				m.vmMutate(in.ID, ir.OpShadowBin, ir.P16, regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinAdd, ir.P16, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedSubP16:
			av, bv := regs[in.A], regs[in.B]
			regs[in.Dst] = uint64(posit.Config16.Sub(posit.Bits(av), posit.Bits(bv)))
			if fh != nil {
				fh.FastBin(in.ID, ir.BinSub, ir.P16, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			} else {
				m.vmMutate(in.ID, ir.OpShadowBin, ir.P16, regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinSub, ir.P16, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedMulP16:
			av, bv := regs[in.A], regs[in.B]
			regs[in.Dst] = uint64(posit.Config16.Mul(posit.Bits(av), posit.Bits(bv)))
			if fh != nil {
				fh.FastBin(in.ID, ir.BinMul, ir.P16, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			} else {
				m.vmMutate(in.ID, ir.OpShadowBin, ir.P16, regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinMul, ir.P16, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedAddP32:
			av, bv := regs[in.A], regs[in.B]
			if fh != nil {
				// One dispatch covers arithmetic, codec fast path, and
				// shadow bookkeeping: the shadow runtime computes the
				// program result from its memoized operand decodes —
				// bit-identical to Config32.Add — so the ⟨32,2⟩ bits are
				// decoded exactly once per operand.
				regs[in.Dst] = fh.FastBinP32(in.ID, ir.BinAdd, in.Dst, in.A, in.B, av, bv)
			} else {
				regs[in.Dst] = uint64(posit.Config32.Add(posit.Bits(av), posit.Bits(bv)))
				m.vmMutate(in.ID, ir.OpShadowBin, ir.P32, regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinAdd, ir.P32, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedSubP32:
			av, bv := regs[in.A], regs[in.B]
			if fh != nil {
				regs[in.Dst] = fh.FastBinP32(in.ID, ir.BinSub, in.Dst, in.A, in.B, av, bv)
			} else {
				regs[in.Dst] = uint64(posit.Config32.Sub(posit.Bits(av), posit.Bits(bv)))
				m.vmMutate(in.ID, ir.OpShadowBin, ir.P32, regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinSub, ir.P32, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedMulP32:
			av, bv := regs[in.A], regs[in.B]
			if fh != nil {
				regs[in.Dst] = fh.FastBinP32(in.ID, ir.BinMul, in.Dst, in.A, in.B, av, bv)
			} else {
				regs[in.Dst] = uint64(posit.Config32.Mul(posit.Bits(av), posit.Bits(bv)))
				m.vmMutate(in.ID, ir.OpShadowBin, ir.P32, regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinMul, ir.P32, in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedBin:
			av, bv := regs[in.A], regs[in.B]
			v, err := binEvalN(f.Name, ir.BinKind(in.K), ir.Type(in.T), av, bv)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
			if fh != nil {
				fh.FastBin(in.ID, ir.BinKind(in.K), ir.Type(in.T), in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			} else {
				m.vmMutate(in.ID, ir.OpShadowBin, ir.Type(in.T), regs, in.Dst)
				m.Hooks.Bin(in.ID, ir.BinKind(in.K), ir.Type(in.T), in.Dst, in.A, in.B, regs[in.Dst], av, bv)
			}
		case bytecode.OpFusedUn:
			av := regs[in.A]
			regs[in.Dst] = unEval(ir.UnKind(in.K), ir.Type(in.T), av)
			if fh != nil {
				fh.FastUn(in.ID, ir.UnKind(in.K), ir.Type(in.T), in.Dst, in.A, regs[in.Dst], av)
			} else {
				m.vmMutate(in.ID, ir.OpShadowUn, ir.Type(in.T), regs, in.Dst)
				m.Hooks.Un(in.ID, ir.UnKind(in.K), ir.Type(in.T), in.Dst, in.A, regs[in.Dst], av)
			}
		case bytecode.OpFusedCmp:
			av, bv := regs[in.A], regs[in.B]
			res := cmpEval(ir.CmpPred(in.K), ir.Type(in.T), av, bv)
			if res {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
			m.Hooks.Cmp(in.ID, ir.CmpPred(in.K), ir.Type(in.T), in.A, in.B, av, bv, res)
		case bytecode.OpFusedCast:
			av := regs[in.A]
			regs[in.Dst] = castEval(ir.Type(in.T), ir.Type(in.T2), av)
			if fh != nil {
				fh.FastCast(in.ID, ir.Type(in.T), ir.Type(in.T2), in.Dst, in.A, regs[in.Dst], av)
			} else {
				m.vmMutate(in.ID, ir.OpShadowCast, ir.Type(in.T), regs, in.Dst)
				m.Hooks.Cast(in.ID, ir.Type(in.T), ir.Type(in.T2), in.Dst, in.A, regs[in.Dst], av)
			}
		case bytecode.OpFusedLoad:
			// Manually inlined vmLoad: the 4- and 8-byte widths carry all
			// numeric traffic, and the call overhead is visible at this
			// opcode's frequency.
			addr := uint32(regs[in.A])
			sz := uint32(in.K)
			if addr < ch.GlobalBase || uint64(addr)+uint64(sz) > uint64(len(m.mem)) {
				return 0, m.memTrap(f.Name, sz, addr)
			}
			var v uint64
			switch sz {
			case 1:
				v = uint64(m.mem[addr])
			case 2:
				v = uint64(binary.LittleEndian.Uint16(m.mem[addr:]))
			case 4:
				v = uint64(binary.LittleEndian.Uint32(m.mem[addr:]))
			default:
				v = binary.LittleEndian.Uint64(m.mem[addr:])
			}
			regs[in.Dst] = v
			if fh != nil {
				fh.FastLoad(in.ID, ir.Type(in.T), in.Dst, uint32(regs[in.A]), regs[in.Dst])
			} else {
				m.vmMutate(in.ID, ir.OpShadowLoad, ir.Type(in.T), regs, in.Dst)
				m.Hooks.Load(in.ID, ir.Type(in.T), in.Dst, uint32(regs[in.A]), regs[in.Dst])
			}
		case bytecode.OpFusedStore:
			// Manually inlined vmStore, including its low-water bookkeeping.
			saddr := uint32(regs[in.A])
			ssz := uint32(in.K)
			if saddr < ch.GlobalBase || uint64(saddr)+uint64(ssz) > uint64(len(m.mem)) {
				return 0, m.memTrap(f.Name, ssz, saddr)
			}
			if sb := ch.GlobalBase + ch.GlobalSize; saddr >= sb && saddr < m.lowWater {
				m.lowWater = saddr
			}
			sv := regs[in.B]
			switch ssz {
			case 1:
				m.mem[saddr] = byte(sv)
			case 2:
				binary.LittleEndian.PutUint16(m.mem[saddr:], uint16(sv))
			case 4:
				binary.LittleEndian.PutUint32(m.mem[saddr:], uint32(sv))
			default:
				binary.LittleEndian.PutUint64(m.mem[saddr:], sv)
			}
			if fh != nil {
				fh.FastStore(in.ID, ir.Type(in.T), uint32(regs[in.A]), in.B, regs[in.B])
			} else {
				stored := regs[in.B]
				if m.inj != nil {
					if nb, ok := m.inj.Mutate(in.ID, ir.OpShadowStore, ir.Type(in.T), stored); ok {
						stored = nb
						if err := m.vmStore(ch, f.Name, ir.Type(in.T).Size(), uint32(regs[in.A]), stored); err != nil {
							return 0, err
						}
					}
				}
				m.Hooks.Store(in.ID, ir.Type(in.T), uint32(regs[in.A]), in.B, stored)
			}
		case bytecode.OpFusedPrint:
			m.print(ir.Type(in.T), regs[in.A])
			m.Hooks.Print(in.ID, ir.Type(in.T), in.A, regs[in.A])
		case bytecode.OpFusedQClear:
			for _, q := range m.quires {
				q.Clear()
			}
			m.Hooks.QClear(ir.Type(in.T))
		case bytecode.OpFusedQAdd:
			q := m.quire(ir.Type(in.T))
			if in.K == 1 {
				q.Sub(posit.Bits(regs[in.A]))
			} else {
				q.Add(posit.Bits(regs[in.A]))
			}
			m.Hooks.QAdd(ir.Type(in.T), in.A, regs[in.A], in.K == 1)
		case bytecode.OpFusedQMAdd:
			q := m.quire(ir.Type(in.T))
			if in.K == 1 {
				q.SubProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			} else {
				q.AddProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			}
			m.Hooks.QMAdd(ir.Type(in.T), in.A, in.B, regs[in.A], regs[in.B], in.K == 1)
		case bytecode.OpFusedQVal:
			regs[in.Dst] = uint64(m.quire(ir.Type(in.T)).Posit())
			m.vmMutate(in.ID, ir.OpShadowQVal, ir.Type(in.T), regs, in.Dst)
			m.Hooks.QVal(in.ID, ir.Type(in.T), in.Dst, regs[in.Dst])
		case bytecode.OpFusedFMA:
			c := int32(in.Imm)
			regs[in.Dst] = fmaEval(ir.Type(in.T), regs[in.A], regs[in.B], regs[c])
			m.vmMutate(in.ID, ir.OpShadowFMA, ir.Type(in.T), regs, in.Dst)
			m.Hooks.FMA(in.ID, ir.Type(in.T), in.Dst, in.A, in.B, c,
				regs[in.Dst], regs[in.A], regs[in.B], regs[c])
		case bytecode.OpFusedRet:
			// The shadow half comes first here: instrumentation emits
			// sh.ret immediately before ret.
			var bits uint64
			if in.A >= 0 {
				bits = regs[in.A]
			}
			m.Hooks.Ret(ir.Type(in.T), in.A, bits)
			if in.A >= 0 {
				return regs[in.A], nil
			}
			return 0, nil
		default:
			return 0, &Trap{Msg: fmt.Sprintf("unknown opcode %v", op), Func: f.Name}
		}
	}
}

// vmFirstHalf executes only the first IR instruction of a fused pair — the
// base operation, or for sh.ret+ret the shadow event — reproducing exactly
// what the tree-walker would have run before a step budget that splits the
// pair trips. The second half is never executed.
func (m *Machine) vmFirstHalf(ch *bytecode.Module, f *bytecode.Func, in *bytecode.Inst, regs []uint64) error {
	switch in.Op {
	case bytecode.OpFusedConst:
		regs[in.Dst] = in.Imm
	case bytecode.OpFusedMov:
		regs[in.Dst] = regs[in.A]
	case bytecode.OpFusedAddP16:
		regs[in.Dst] = uint64(posit.Config16.Add(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
	case bytecode.OpFusedSubP16:
		regs[in.Dst] = uint64(posit.Config16.Sub(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
	case bytecode.OpFusedMulP16:
		regs[in.Dst] = uint64(posit.Config16.Mul(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
	case bytecode.OpFusedAddP32:
		regs[in.Dst] = uint64(posit.Config32.Add(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
	case bytecode.OpFusedSubP32:
		regs[in.Dst] = uint64(posit.Config32.Sub(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
	case bytecode.OpFusedMulP32:
		regs[in.Dst] = uint64(posit.Config32.Mul(posit.Bits(regs[in.A]), posit.Bits(regs[in.B])))
	case bytecode.OpFusedBin:
		v, err := binEvalN(f.Name, ir.BinKind(in.K), ir.Type(in.T), regs[in.A], regs[in.B])
		if err != nil {
			return err
		}
		regs[in.Dst] = v
	case bytecode.OpFusedUn:
		regs[in.Dst] = unEval(ir.UnKind(in.K), ir.Type(in.T), regs[in.A])
	case bytecode.OpFusedCmp:
		if cmpEval(ir.CmpPred(in.K), ir.Type(in.T), regs[in.A], regs[in.B]) {
			regs[in.Dst] = 1
		} else {
			regs[in.Dst] = 0
		}
	case bytecode.OpFusedCast:
		regs[in.Dst] = castEval(ir.Type(in.T), ir.Type(in.T2), regs[in.A])
	case bytecode.OpFusedLoad:
		v, err := m.vmLoad(ch, f.Name, uint32(in.K), uint32(regs[in.A]))
		if err != nil {
			return err
		}
		regs[in.Dst] = v
	case bytecode.OpFusedStore:
		return m.vmStore(ch, f.Name, uint32(in.K), uint32(regs[in.A]), regs[in.B])
	case bytecode.OpFusedPrint:
		m.print(ir.Type(in.T), regs[in.A])
	case bytecode.OpFusedQClear:
		for _, q := range m.quires {
			q.Clear()
		}
	case bytecode.OpFusedQAdd:
		q := m.quire(ir.Type(in.T))
		if in.K == 1 {
			q.Sub(posit.Bits(regs[in.A]))
		} else {
			q.Add(posit.Bits(regs[in.A]))
		}
	case bytecode.OpFusedQMAdd:
		q := m.quire(ir.Type(in.T))
		if in.K == 1 {
			q.SubProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
		} else {
			q.AddProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
		}
	case bytecode.OpFusedQVal:
		regs[in.Dst] = uint64(m.quire(ir.Type(in.T)).Posit())
	case bytecode.OpFusedFMA:
		regs[in.Dst] = fmaEval(ir.Type(in.T), regs[in.A], regs[in.B], regs[int32(in.Imm)])
	case bytecode.OpFusedRet:
		var bits uint64
		if in.A >= 0 {
			bits = regs[in.A]
		}
		m.Hooks.Ret(ir.Type(in.T), in.A, bits)
	}
	return nil
}
