package interp

import (
	"fmt"
	"math"

	"positdebug/internal/ir"
	"positdebug/internal/posit"
)

// binEval computes a binary operation on bit-pattern values.
func (m *Machine) binEval(fn *ir.Func, k ir.BinKind, t ir.Type, a, b uint64) (uint64, error) {
	return binEvalN(fn.Name, k, t, a, b)
}

// binEvalN is binEval keyed by function name, so the VM backend can report
// identical traps from chunk functions (whose ir.Func may be absent).
func binEvalN(name string, k ir.BinKind, t ir.Type, a, b uint64) (uint64, error) {
	switch t {
	case ir.I64:
		x, y := int64(a), int64(b)
		switch k {
		case ir.BinAdd:
			return uint64(x + y), nil
		case ir.BinSub:
			return uint64(x - y), nil
		case ir.BinMul:
			return uint64(x * y), nil
		case ir.BinDiv:
			if y == 0 {
				return 0, &Trap{Msg: "integer division by zero", Func: name}
			}
			if x == math.MinInt64 && y == -1 {
				return uint64(x), nil // wraps, like hardware
			}
			return uint64(x / y), nil
		case ir.BinRem:
			if y == 0 {
				return 0, &Trap{Msg: "integer modulo by zero", Func: name}
			}
			if x == math.MinInt64 && y == -1 {
				return 0, nil
			}
			return uint64(x % y), nil
		}
	case ir.F64:
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var r float64
		switch k {
		case ir.BinAdd:
			r = x + y
		case ir.BinSub:
			r = x - y
		case ir.BinMul:
			r = x * y
		case ir.BinDiv:
			r = x / y
		}
		return math.Float64bits(r), nil
	case ir.F32:
		x, y := math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))
		var r float32
		switch k {
		case ir.BinAdd:
			r = x + y
		case ir.BinSub:
			r = x - y
		case ir.BinMul:
			r = x * y
		case ir.BinDiv:
			r = x / y
		}
		return uint64(math.Float32bits(r)), nil
	case ir.P8, ir.P16, ir.P32:
		cfg := t.PositConfig()
		x, y := posit.Bits(a), posit.Bits(b)
		switch k {
		case ir.BinAdd:
			return uint64(cfg.Add(x, y)), nil
		case ir.BinSub:
			return uint64(cfg.Sub(x, y)), nil
		case ir.BinMul:
			return uint64(cfg.Mul(x, y)), nil
		case ir.BinDiv:
			return uint64(cfg.Div(x, y)), nil
		}
	}
	return 0, &Trap{Msg: fmt.Sprintf("bad binop %v on %v", k, t), Func: name}
}

func unEval(k ir.UnKind, t ir.Type, a uint64) uint64 {
	switch t {
	case ir.I64:
		switch k {
		case ir.UnNeg:
			return uint64(-int64(a))
		case ir.UnAbs:
			if int64(a) < 0 {
				return uint64(-int64(a))
			}
			return a
		}
	case ir.Bool:
		if k == ir.UnNot {
			return a ^ 1
		}
	case ir.F64:
		x := math.Float64frombits(a)
		switch k {
		case ir.UnNeg:
			return math.Float64bits(-x)
		case ir.UnSqrt:
			return math.Float64bits(math.Sqrt(x))
		case ir.UnAbs:
			return math.Float64bits(math.Abs(x))
		}
	case ir.F32:
		x := math.Float32frombits(uint32(a))
		switch k {
		case ir.UnNeg:
			return uint64(math.Float32bits(-x))
		case ir.UnSqrt:
			return uint64(math.Float32bits(float32(math.Sqrt(float64(x)))))
		case ir.UnAbs:
			return uint64(math.Float32bits(float32(math.Abs(float64(x)))))
		}
	case ir.P8, ir.P16, ir.P32:
		cfg := t.PositConfig()
		x := posit.Bits(a)
		switch k {
		case ir.UnNeg:
			return uint64(cfg.Neg(x))
		case ir.UnSqrt:
			return uint64(cfg.Sqrt(x))
		case ir.UnAbs:
			return uint64(cfg.Abs(x))
		}
	}
	return a
}

func cmpEval(p ir.CmpPred, t ir.Type, a, b uint64) bool {
	var c int
	switch t {
	case ir.I64:
		x, y := int64(a), int64(b)
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	case ir.Bool:
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
	case ir.F64:
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		// IEEE semantics: comparisons with NaN are false except !=.
		if x != x || y != y {
			return p == ir.CmpNe
		}
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	case ir.F32:
		x, y := math.Float32frombits(uint32(a)), math.Float32frombits(uint32(b))
		if x != x || y != y {
			return p == ir.CmpNe
		}
		switch {
		case x < y:
			c = -1
		case x > y:
			c = 1
		}
	case ir.P8, ir.P16, ir.P32:
		c = t.PositConfig().Cmp(posit.Bits(a), posit.Bits(b))
	}
	switch p {
	case ir.CmpEq:
		return c == 0
	case ir.CmpNe:
		return c != 0
	case ir.CmpLt:
		return c < 0
	case ir.CmpLe:
		return c <= 0
	case ir.CmpGt:
		return c > 0
	case ir.CmpGe:
		return c >= 0
	}
	return false
}

// fmaEval computes a·b + c with a single rounding for posits (via the
// exact 192-bit fused path) and for f64 (math.FMA). f32 goes through the
// correctly rounded f64 FMA and re-rounds; the double rounding can differ
// from a true f32 FMA by one ulp in rare boundary cases.
func fmaEval(t ir.Type, a, b, c uint64) uint64 {
	switch t {
	case ir.F64:
		return math.Float64bits(math.FMA(
			math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c)))
	case ir.F32:
		r := math.FMA(
			float64(math.Float32frombits(uint32(a))),
			float64(math.Float32frombits(uint32(b))),
			float64(math.Float32frombits(uint32(c))))
		return uint64(math.Float32bits(float32(r)))
	case ir.P8, ir.P16, ir.P32:
		cfg := t.PositConfig()
		return uint64(cfg.FMA(posit.Bits(a), posit.Bits(b), posit.Bits(c)))
	default:
		return 0
	}
}

// toFloat64 converts a bit-pattern value of a numeric or integer type to
// float64 (exactly for f32/f64/posit; i64 rounds for |v| > 2^53).
func toFloat64(t ir.Type, v uint64) float64 {
	switch t {
	case ir.I64:
		return float64(int64(v))
	case ir.F64:
		return math.Float64frombits(v)
	case ir.F32:
		return float64(math.Float32frombits(uint32(v)))
	case ir.P8, ir.P16, ir.P32:
		return t.PositConfig().ToFloat64(posit.Bits(v))
	default:
		return 0
	}
}

// ToFloat64 exposes bit-pattern decoding for harnesses and runtimes.
func ToFloat64(t ir.Type, v uint64) float64 { return toFloat64(t, v) }

// FromFloat64 encodes a float64 into the bit pattern of the given type,
// rounding as the type requires.
func FromFloat64(t ir.Type, f float64) uint64 {
	switch t {
	case ir.I64:
		return uint64(clampToInt64(f))
	case ir.F64:
		return math.Float64bits(f)
	case ir.F32:
		return uint64(math.Float32bits(float32(f)))
	case ir.P8, ir.P16, ir.P32:
		return uint64(t.PositConfig().FromFloat64(f))
	default:
		return 0
	}
}

func clampToInt64(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	default:
		return int64(f)
	}
}

func castEval(from, to ir.Type, v uint64) uint64 {
	if from == to {
		return v
	}
	// Posit↔posit conversions re-round directly (exact intermediate).
	if from.IsPosit() && to.IsPosit() {
		return uint64(from.PositConfig().Convert(posit.Bits(v), to.PositConfig()))
	}
	// Posit→i64 truncates toward zero like a C cast.
	if from.IsPosit() && to == ir.I64 {
		iv, _ := from.PositConfig().ToInt64(posit.Bits(v))
		return uint64(iv)
	}
	// Float→i64 truncates toward zero.
	if from.IsFloat() && to == ir.I64 {
		return uint64(clampToInt64(math.Trunc(toFloat64(from, v))))
	}
	// Everything else goes through float64, which is exact for i64 up to
	// 2^53 and for every f32/posit value.
	return FromFloat64(to, toFloat64(from, v))
}

// CastEval exposes cast semantics for the shadow runtimes.
func CastEval(from, to ir.Type, v uint64) uint64 { return castEval(from, to, v) }
