package interp

import "positdebug/internal/ir"

// Hooks receives shadow-execution events. The instrumentation pass inserts
// explicit shadow instructions into the IR; when the machine executes one it
// calls the corresponding method with the instruction id (an index into the
// module registry), the registers involved, and their current bit-pattern
// values. internal/shadow implements the PositDebug/FPSanitizer runtime on
// this interface and internal/herbgrind implements the trace-heavy baseline.
//
// A nil Hooks on the machine makes shadow instructions no-ops, but the
// normal configuration runs uninstrumented modules for baselines (zero
// overhead) and instrumented modules with a runtime attached.
type Hooks interface {
	// Reset is called at the start of every Machine.Run.
	Reset()
	// EnterFunc is called when an instrumented function's frame is pushed;
	// argVals holds the parameter values (registers 0..n−1).
	EnterFunc(fn *ir.Func, argVals []uint64)
	// LeaveFunc is called when the frame is popped.
	LeaveFunc()
	// Const: register dst was set to the literal bits of type typ.
	Const(id int32, typ ir.Type, dst int32, bits uint64)
	// Mov: register dst was copied from src.
	Mov(id int32, typ ir.Type, dst, src int32, bits uint64)
	// Bin: dst = a <kind> b just executed; values are the current contents.
	Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64)
	// Un: dst = <kind> a.
	Un(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64)
	// Cmp: a <pred> b evaluated to outcome on numeric operands.
	Cmp(id int32, pred ir.CmpPred, typ ir.Type, a, b int32, aVal, bVal uint64, outcome bool)
	// Cast: dst = cast a from type `from` to type `to`.
	Cast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64)
	// Load: dst was loaded from memory address addr.
	Load(id int32, typ ir.Type, dst int32, addr uint32, bits uint64)
	// Store: the value of register src was stored to addr.
	Store(id int32, typ ir.Type, addr uint32, src int32, bits uint64)
	// PreCall: about to call callee with the given argument registers.
	PreCall(callee *ir.Func, args []int32, argVals []uint64)
	// PostCall: callee returned; its value (if any) landed in register dst.
	PostCall(id int32, typ ir.Type, dst int32, bits uint64)
	// Ret: the current function is about to return register src.
	Ret(typ ir.Type, src int32, bits uint64)
	// Print: the program printed the value of register src.
	Print(id int32, typ ir.Type, src int32, bits uint64)
	// FMA: dst = a·b + c with a single rounding just executed.
	FMA(id int32, typ ir.Type, dst, a, b, c int32, dstVal, aVal, bVal, cVal uint64)
	// QClear/QAdd/QMAdd/QVal mirror the quire operations (negate: Kind=1).
	QClear(typ ir.Type)
	QAdd(typ ir.Type, a int32, aVal uint64, negate bool)
	QMAdd(typ ir.Type, a, b int32, aVal, bVal uint64, negate bool)
	QVal(id int32, typ ir.Type, dst int32, bits uint64)
}

// Injector is an optional interface a Hooks implementation may satisfy to
// mutate architectural state — the mechanism behind fault injection. When
// the machine's hooks implement it, Mutate is consulted immediately before
// each value-producing shadow event (const, bin, un, cast, load, store,
// post-call, qval, fma) with the instruction's registry id, opcode, type
// and the destination's current bits. Returning (newBits, true) rewrites
// the destination register — or, for stores, the stored memory bytes —
// before the event is delivered to the hooks, so a decorated shadow
// runtime observes the corrupted program value against its clean
// high-precision shadow and can flag the divergence.
//
// Injection therefore only reaches instrumented instructions; register
// moves and comparisons are deliberately excluded (corrupting them would
// re-seed the shadow from the corrupted value and blind the oracle).
// Events whose hooks propagate metadata rather than recompute it — loads,
// stores, call returns — carry the same re-seed hazard: without extra
// signalling the runtime would mistake the corruption for an
// uninstrumented write and resync from it. An injecting decorator must
// therefore announce each injection to inner hooks implementing
// InjectionObserver before the corrupted event is forwarded.
type Injector interface {
	Mutate(id int32, op ir.Op, typ ir.Type, bits uint64) (mutated uint64, inject bool)
}

// InjectionObserver is an optional interface the hooks wrapped by an
// injecting decorator may implement to be told, immediately before the
// corresponding event fires, that the value it is about to observe was
// corrupted by fault injection: before is the pre-corruption bit pattern,
// after the corrupted bits the event will deliver. The shadow runtime uses
// the announcement to keep its clean metadata as the reference — flagging
// the divergence — instead of mistaking the corruption for an
// uninstrumented write and re-seeding the shadow from it.
type InjectionObserver interface {
	ObserveInjection(id int32, op ir.Op, typ ir.Type, before, after uint64)
}

// NopHooks is the no-op Hooks implementation installed automatically when
// an instrumented module runs without a runtime attached: shadow
// instructions execute but observe nothing.
type NopHooks struct{}

var _ Hooks = NopHooks{}

// Reset implements Hooks.
func (NopHooks) Reset() {}

// EnterFunc implements Hooks.
func (NopHooks) EnterFunc(fn *ir.Func, argVals []uint64) {}

// LeaveFunc implements Hooks.
func (NopHooks) LeaveFunc() {}

// Const implements Hooks.
func (NopHooks) Const(id int32, typ ir.Type, dst int32, bits uint64) {}

// Mov implements Hooks.
func (NopHooks) Mov(id int32, typ ir.Type, dst, src int32, bits uint64) {}

// Bin implements Hooks.
func (NopHooks) Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
}

// Un implements Hooks.
func (NopHooks) Un(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {}

// Cmp implements Hooks.
func (NopHooks) Cmp(id int32, pred ir.CmpPred, typ ir.Type, a, b int32, aVal, bVal uint64, outcome bool) {
}

// Cast implements Hooks.
func (NopHooks) Cast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {}

// Load implements Hooks.
func (NopHooks) Load(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {}

// Store implements Hooks.
func (NopHooks) Store(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {}

// PreCall implements Hooks.
func (NopHooks) PreCall(callee *ir.Func, args []int32, argVals []uint64) {}

// PostCall implements Hooks.
func (NopHooks) PostCall(id int32, typ ir.Type, dst int32, bits uint64) {}

// Ret implements Hooks.
func (NopHooks) Ret(typ ir.Type, src int32, bits uint64) {}

// Print implements Hooks.
func (NopHooks) Print(id int32, typ ir.Type, src int32, bits uint64) {}

// FMA implements Hooks.
func (NopHooks) FMA(id int32, typ ir.Type, dst, a, b, c int32, dstVal, aVal, bVal, cVal uint64) {}

// QClear implements Hooks.
func (NopHooks) QClear(typ ir.Type) {}

// QAdd implements Hooks.
func (NopHooks) QAdd(typ ir.Type, a int32, aVal uint64, negate bool) {}

// QMAdd implements Hooks.
func (NopHooks) QMAdd(typ ir.Type, a, b int32, aVal, bVal uint64, negate bool) {}

// QVal implements Hooks.
func (NopHooks) QVal(id int32, typ ir.Type, dst int32, bits uint64) {}
