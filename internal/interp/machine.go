// Package interp executes IR modules on a simple abstract machine: virtual
// registers hold uint64 bit patterns, and a single linear byte-addressed
// memory holds globals (at ir.Module.GlobalBase) and the runtime stack
// (growing down from the top). Real addresses are what make the paper's
// shadow-memory design — a trie keyed by address — meaningful, which is why
// the substrate is an interpreter rather than closures.
//
// An uninstrumented module executes with no shadow overhead; instrumented
// modules route their shadow instructions to a Hooks implementation.
package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"positdebug/internal/backend"
	"positdebug/internal/bytecode"
	"positdebug/internal/ir"
	"positdebug/internal/posit"
)

// Default machine limits.
const (
	DefaultStackSize = 1 << 22 // 4 MiB
	DefaultMaxSteps  = 2_000_000_000
	maxCallDepth     = 1024

	// deadlineCheckMask throttles wall-clock polling to every 8192 steps —
	// cheap enough to leave on for every limited run.
	deadlineCheckMask = 1<<13 - 1
)

// Machine executes one module. Not safe for concurrent use.
type Machine struct {
	Mod      *ir.Module
	Hooks    Hooks
	Out      io.Writer // print destination; nil discards
	Trace    io.Writer // when set, every executed instruction is logged
	MaxSteps int64     // instruction budget; 0 means DefaultMaxSteps
	// Prof, when set, accumulates per-opcode counts and wall time (see
	// OpProfile). Nil disables the two clock reads per instruction.
	Prof *OpProfile
	// Backend selects the execution engine: the tree-walking reference
	// interpreter (default) or the fused-bytecode VM. Both produce
	// byte-identical observable behavior; per-instruction tracing and
	// opcode profiling need per-IR-step granularity, so runs with Trace or
	// Prof set always take the tree-walker regardless of Backend.
	Backend backend.Kind

	mem    []byte
	sp     uint32
	steps  int64
	depth  int
	quires map[ir.Type]*posit.Quire

	// chunk caches the module compiled to fused bytecode (VM backend).
	chunk *bytecode.Module
	// lowWater tracks the lowest stack byte written since the last memory
	// reset, letting VM runs zero only the dirty region. Tree-walk runs
	// poison it to "whole stack dirty".
	lowWater uint32
	// nextPoll is the step count at which the VM loop next polls the
	// deadline and context (every deadlineCheckMask+1 steps, like the
	// tree-walker's mask check, which fused two-step ops may straddle).
	nextPoll int64
	// fastHooks is non-nil when the current run's hooks implement
	// FastShadow and no injector is active; fused superinstructions then
	// deliver events through it.
	fastHooks FastShadow

	// Execution-position breadcrumbs for structured fault reports. The
	// tree-walker maintains curBlk/curIdx per instruction; the VM loop
	// stores only vmPC and resolves it to block/index lazily in the
	// panic-annotation path (breadcrumbs are read exclusively there).
	curFn  *ir.Func
	curBlk int32
	curIdx int
	vmPC   int

	deadline      time.Time
	checkDeadline bool
	limSteps      int64
	limTimeout    time.Duration

	// runCtx/ctxDone carry the run's context (RunContext). ctxDone is the
	// pre-fetched Done channel so the hot loop pays one nil check plus a
	// non-blocking receive every deadlineCheckMask steps, never a ctx
	// method call per instruction.
	runCtx  context.Context
	ctxDone <-chan struct{}

	inj Injector

	argScratch []uint64
	// regPool recycles register frames across calls; depth is bounded by
	// maxCallDepth, so the pool is too.
	regPool [][]uint64
}

// New returns a machine for the module with the default stack size.
func New(mod *ir.Module) *Machine {
	return NewWithStack(mod, DefaultStackSize)
}

// NewWithStack returns a machine with an explicit stack size in bytes.
func NewWithStack(mod *ir.Module, stack uint32) *Machine {
	total := mod.GlobalBase + mod.GlobalSize
	total = (total + 7) / 8 * 8
	total += stack
	return &Machine{
		Mod:      mod,
		mem:      make([]byte, total),
		quires:   map[ir.Type]*posit.Quire{},
		lowWater: total, // fresh memory is all zero: nothing dirty
	}
}

// Trap is a runtime error raised by the executing program.
type Trap struct {
	Msg  string
	Func string
}

func (t *Trap) Error() string { return fmt.Sprintf("trap in %s: %s", t.Func, t.Msg) }

// ErrStepLimit is wrapped by the ResourceExhausted error returned when the
// instruction budget is exhausted.
var ErrStepLimit = errors.New("step limit exceeded")

// Resource names carried by ResourceExhausted.
const (
	ResSteps        = "steps"
	ResWallClock    = "wall-clock"
	ResShadowMemory = "shadow-memory"
)

// Limits bounds one execution. The zero value applies only the machine's
// (default) step budget.
type Limits struct {
	// Timeout is the wall-clock budget; 0 disables the deadline. The
	// machine polls the clock every few thousand instructions, so very
	// short timeouts overshoot by a sliver.
	Timeout time.Duration
	// MaxSteps overrides the machine's instruction budget when positive.
	MaxSteps int64
}

// ResourceExhausted is returned when a run exceeds one of its execution
// limits — the step budget, the wall-clock deadline, or (raised by the
// shadow runtime) the shadow-memory budget. Campaign runners switch on
// Resource to classify the run or retry with a degraded configuration.
type ResourceExhausted struct {
	Resource string // ResSteps, ResWallClock or ResShadowMemory
	Limit    int64  // the configured budget (steps, nanoseconds or bytes)
	Used     int64  // consumption when the limit tripped
	Func     string // function executing when the limit tripped
	Steps    int64  // instructions executed so far
}

func (e *ResourceExhausted) Error() string {
	return fmt.Sprintf("resource exhausted in %s after %d steps: %s (limit %d, used %d)",
		e.Func, e.Steps, e.Resource, e.Limit, e.Used)
}

// Unwrap lets errors.Is(err, ErrStepLimit) keep working for step budgets.
func (e *ResourceExhausted) Unwrap() error {
	if e.Resource == ResSteps {
		return ErrStepLimit
	}
	return nil
}

// InternalFault is returned when a panic escapes the interpreter or a hook
// during a run: instead of killing the process, Run converts it into a
// diagnosable error carrying the execution position. One poisoned run in a
// fault-injection campaign therefore never takes down the sweep.
type InternalFault struct {
	Func      string      // function executing when the panic fired
	Block     int32       // basic block index
	Index     int         // instruction index within the block
	Steps     int64       // instructions executed so far
	Recovered interface{} // the original panic value
}

func (e *InternalFault) Error() string {
	return fmt.Sprintf("internal fault in %s (block %d, instr %d, step %d): %v",
		e.Func, e.Block, e.Index, e.Steps, e.Recovered)
}

// Cancelled is returned by RunContext when the governing context is
// cancelled while the program runs. It is deliberately distinct from
// *ResourceExhausted: a cancellation is an external decision (client
// disconnect, server drain, campaign deadline), not a budget the run blew
// through, and callers map the two to different failure handling (HTTP 499
// vs 503, campaign abort vs "hung" classification). The interpreter polls
// the context cooperatively every few thousand instructions, so a hot loop
// stops within one step-budget check of the cancellation.
type Cancelled struct {
	Func  string // function executing when the cancellation was observed
	Steps int64  // instructions executed so far
	Cause error  // context.Cause at observation time
}

func (e *Cancelled) Error() string {
	return fmt.Sprintf("run cancelled in %s after %d steps: %v", e.Func, e.Steps, e.Cause)
}

// Unwrap exposes the context cause, so errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded) work.
func (e *Cancelled) Unwrap() error { return e.Cause }

// Stopped is returned by Run when a hook deliberately halted execution —
// the mechanism behind PositDebug's conditional error breakpoints (the
// paper's gdb workflow). Reason carries the hook's payload, typically a
// *shadow.Report.
type Stopped struct{ Reason interface{} }

func (s *Stopped) Error() string { return "execution stopped by shadow hook" }

// Steps returns the number of instructions executed by the last Run.
func (m *Machine) Steps() int64 { return m.steps }

// Mem exposes the memory image (tests and the shadow runtime's re-init path
// read it; the program mutates it only through stores).
func (m *Machine) Mem() []byte { return m.mem }

// Run executes the module's __init function and then the named function
// with the given argument bit patterns, returning the function's result.
// If a hook panics with *Stopped (a debugger breakpoint), Run recovers it
// and returns it as the error. Any other panic escaping the interpreter or
// a hook is recovered into a structured *InternalFault (or the
// *ResourceExhausted a hook raised) rather than re-panicking.
func (m *Machine) Run(name string, args ...uint64) (v uint64, err error) {
	return m.RunWithLimits(name, Limits{}, args...)
}

// RunWithLimits is Run with explicit execution limits: a wall-clock
// timeout on top of the instruction budget, both reported as structured
// *ResourceExhausted errors.
func (m *Machine) RunWithLimits(name string, lim Limits, args ...uint64) (v uint64, err error) {
	return m.RunContext(context.Background(), name, lim, args...)
}

// RunContext is RunWithLimits governed by a context: when ctx is cancelled
// the interpreter stops cooperatively within one step-budget check and
// returns a structured *Cancelled error. A context with no Done channel
// (context.Background()) adds no per-step cost beyond one nil check per
// poll interval.
func (m *Machine) RunContext(ctx context.Context, name string, lim Limits, args ...uint64) (v uint64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	m.runCtx, m.ctxDone = ctx, ctx.Done()
	if m.ctxDone != nil {
		select {
		case <-m.ctxDone:
			return 0, &Cancelled{Cause: context.Cause(ctx)}
		default:
		}
	}
	defer func() {
		if r := recover(); r != nil {
			switch f := r.(type) {
			case *Stopped:
				err = f
			case *InternalFault:
				err = f
			case *Cancelled:
				if f.Func == "" && m.curFn != nil {
					f.Func = m.curFn.Name
				}
				f.Steps = m.steps
				err = f
			case *ResourceExhausted:
				if f.Func == "" && m.curFn != nil {
					f.Func = m.curFn.Name
				}
				f.Steps = m.steps
				err = f
			default:
				fault := &InternalFault{Block: m.curBlk, Index: m.curIdx, Steps: m.steps, Recovered: r}
				if m.curFn != nil {
					fault.Func = m.curFn.Name
				}
				err = fault
			}
		}
	}()
	if m.Hooks == nil {
		m.Hooks = NopHooks{}
	}
	m.inj, _ = m.Hooks.(Injector)
	useVM := m.Backend == backend.VM && m.Trace == nil && m.Prof == nil
	var chunk *bytecode.Module
	if useVM {
		var cerr error
		if chunk, cerr = m.ensureChunk(); cerr != nil {
			return 0, cerr
		}
	}
	m.fastHooks = nil
	if useVM && m.inj == nil {
		m.fastHooks, _ = m.Hooks.(FastShadow)
	}
	if lim.Timeout > 0 {
		m.deadline = time.Now().Add(lim.Timeout)
		m.checkDeadline = true
	} else {
		m.deadline = time.Time{}
		m.checkDeadline = false
	}
	m.limSteps = lim.MaxSteps
	m.limTimeout = lim.Timeout
	m.curFn, m.curBlk, m.curIdx = nil, 0, 0
	m.steps = 0
	m.depth = 0
	m.sp = uint32(len(m.mem))
	if useVM {
		m.zeroDirtyMem()
		m.nextPoll = deadlineCheckMask + 1
	} else {
		for i := range m.mem {
			m.mem[i] = 0
		}
		// A tree-walk run dirties the stack without low-water tracking;
		// make the next VM run on this machine re-zero the whole stack.
		m.lowWater = m.Mod.GlobalBase + m.Mod.GlobalSize
	}
	for _, q := range m.quires {
		q.Clear()
	}
	if m.Hooks != nil {
		m.Hooks.Reset()
	}
	fn := m.Mod.FuncByName(name)
	if fn == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("interp: %s takes %d args, got %d", name, len(fn.Params), len(args))
	}
	if useVM {
		if ii, ok := m.Mod.FuncIdx["__init"]; ok {
			if _, err := m.vmCall(chunk, ii, nil); err != nil {
				return 0, err
			}
		}
		return m.vmCall(chunk, m.Mod.FuncIdx[name], args)
	}
	if init := m.Mod.FuncByName("__init"); init != nil {
		if _, err := m.call(init, nil); err != nil {
			return 0, err
		}
	}
	return m.call(fn, args)
}

func (m *Machine) trap(fn *ir.Func, format string, args ...interface{}) error {
	return &Trap{Msg: fmt.Sprintf(format, args...), Func: fn.Name}
}

// getRegs returns a zeroed register frame of n slots, reusing a pooled one
// when it is large enough (callers rely on unwritten registers reading 0).
func (m *Machine) getRegs(n int32) []uint64 {
	if l := len(m.regPool); l > 0 {
		r := m.regPool[l-1]
		m.regPool = m.regPool[:l-1]
		if cap(r) >= int(n) {
			r = r[:n]
			clear(r)
			return r
		}
	}
	return make([]uint64, n)
}

func (m *Machine) putRegs(regs []uint64) {
	m.regPool = append(m.regPool, regs)
}

func (m *Machine) call(fn *ir.Func, args []uint64) (uint64, error) {
	if m.depth++; m.depth > maxCallDepth {
		return 0, m.trap(fn, "call depth exceeded")
	}
	defer func() { m.depth-- }()

	frame := (fn.FrameSize + 7) / 8 * 8
	base := m.Mod.GlobalBase + m.Mod.GlobalSize
	if m.sp < base+frame {
		return 0, m.trap(fn, "stack overflow")
	}
	savedSP := m.sp
	m.sp -= frame
	fp := m.sp
	// Zero the frame so stale stack data never leaks into locals.
	for i := fp; i < savedSP; i++ {
		m.mem[i] = 0
	}
	defer func() { m.sp = savedSP }()

	regs := m.getRegs(fn.NumRegs)
	defer m.putRegs(regs)
	copy(regs, args)
	hooked := fn.Instrumented && m.Hooks != nil
	if hooked {
		m.Hooks.EnterFunc(fn, regs[:len(fn.Params)])
		defer m.Hooks.LeaveFunc()
	}

	maxSteps := m.limSteps
	if maxSteps == 0 {
		maxSteps = m.MaxSteps
	}
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}

	prevFn := m.curFn
	m.curFn = fn
	defer func() {
		m.curFn = prevFn
		r := recover()
		if r == nil {
			return
		}
		// Annotate the panic at the innermost frame, where the
		// breadcrumbs still name the panicking function; outer frames
		// pass the structured value through unchanged.
		switch f := r.(type) {
		case *Stopped, *InternalFault:
		case *Cancelled:
			if f.Func == "" {
				f.Func = fn.Name
			}
		case *ResourceExhausted:
			if f.Func == "" {
				f.Func = fn.Name
			}
		default:
			r = &InternalFault{
				Func: fn.Name, Block: m.curBlk, Index: m.curIdx,
				Steps: m.steps, Recovered: f,
			}
		}
		panic(r)
	}()

	b, i := int32(0), 0
	for {
		if m.steps++; m.steps > maxSteps {
			return 0, &ResourceExhausted{
				Resource: ResSteps, Limit: maxSteps, Used: m.steps,
				Func: fn.Name, Steps: m.steps,
			}
		}
		if m.steps&deadlineCheckMask == 0 {
			if m.checkDeadline && time.Now().After(m.deadline) {
				return 0, &ResourceExhausted{
					Resource: ResWallClock, Limit: int64(m.limTimeout), Used: m.steps,
					Func: fn.Name, Steps: m.steps,
				}
			}
			if m.ctxDone != nil {
				select {
				case <-m.ctxDone:
					return 0, &Cancelled{Func: fn.Name, Steps: m.steps, Cause: context.Cause(m.runCtx)}
				default:
				}
			}
		}
		m.curBlk, m.curIdx = b, i
		in := &fn.Blocks[b].Instrs[i]
		i++
		if m.Trace != nil {
			fmt.Fprintf(m.Trace, "%s b%d: %s\n", fn.Name, b, in)
		}
		var opStart time.Time
		if m.Prof != nil {
			opStart = time.Now()
		}
		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			regs[in.Dst] = in.Imm
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
		case ir.OpBin:
			v, err := m.binEval(fn, ir.BinKind(in.Kind), in.Type, regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case ir.OpUn:
			regs[in.Dst] = unEval(ir.UnKind(in.Kind), in.Type, regs[in.A])
		case ir.OpCmp:
			if cmpEval(ir.CmpPred(in.Kind), in.Type, regs[in.A], regs[in.B]) {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case ir.OpCast:
			regs[in.Dst] = castEval(in.Type, in.Type2, regs[in.A])
		case ir.OpLoad:
			v, err := m.load(fn, in.Type, uint32(regs[in.A]))
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case ir.OpStore:
			if err := m.store(fn, in.Type, uint32(regs[in.A]), regs[in.B]); err != nil {
				return 0, err
			}
		case ir.OpFrameAddr:
			regs[in.Dst] = uint64(fp) + in.Imm
		case ir.OpGlobalAddr:
			regs[in.Dst] = in.Imm
		case ir.OpAddrIndex:
			regs[in.Dst] = regs[in.A] + regs[in.B]*in.Imm
		case ir.OpBr:
			if regs[in.A] != 0 {
				b = in.Blk[0]
			} else {
				b = in.Blk[1]
			}
			i = 0
		case ir.OpJmp:
			b, i = in.Blk[0], 0
		case ir.OpCall:
			callee := m.Mod.Funcs[in.Fn]
			m.argScratch = m.argScratch[:0]
			for _, a := range in.Args {
				m.argScratch = append(m.argScratch, regs[a])
			}
			v, err := m.call(callee, m.argScratch)
			if err != nil {
				return 0, err
			}
			if in.Dst >= 0 {
				regs[in.Dst] = v
			}
		case ir.OpRet:
			if in.A >= 0 {
				return regs[in.A], nil
			}
			return 0, nil
		case ir.OpPrint:
			m.print(in.Type, regs[in.A])
		case ir.OpPrintStr:
			if m.Out != nil {
				fmt.Fprintln(m.Out, in.Str)
			}
		case ir.OpQClear:
			// qclear() is untyped at the source level; reset every quire.
			for _, q := range m.quires {
				q.Clear()
			}
		case ir.OpQAdd:
			q := m.quire(in.Type)
			if in.Kind == 1 {
				q.Sub(posit.Bits(regs[in.A]))
			} else {
				q.Add(posit.Bits(regs[in.A]))
			}
		case ir.OpQMAdd:
			q := m.quire(in.Type)
			if in.Kind == 1 {
				q.SubProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			} else {
				q.AddProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			}
		case ir.OpQVal:
			regs[in.Dst] = uint64(m.quire(in.Type).Posit())
		case ir.OpFMA:
			regs[in.Dst] = fmaEval(in.Type, regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]])

		case ir.OpShadowConst:
			m.mutate(in, regs)
			m.Hooks.Const(in.ID, in.Type, in.Dst, regs[in.Dst])
		case ir.OpShadowMov:
			m.Hooks.Mov(in.ID, in.Type, in.Dst, in.A, regs[in.Dst])
		case ir.OpShadowBin:
			m.mutate(in, regs)
			m.Hooks.Bin(in.ID, ir.BinKind(in.Kind), in.Type, in.Dst, in.A, in.B,
				regs[in.Dst], regs[in.A], regs[in.B])
		case ir.OpShadowUn:
			m.mutate(in, regs)
			m.Hooks.Un(in.ID, ir.UnKind(in.Kind), in.Type, in.Dst, in.A, regs[in.Dst], regs[in.A])
		case ir.OpShadowCmp:
			m.Hooks.Cmp(in.ID, ir.CmpPred(in.Kind), in.Type, in.A, in.B,
				regs[in.A], regs[in.B], regs[in.Dst] != 0)
		case ir.OpShadowCast:
			m.mutate(in, regs)
			m.Hooks.Cast(in.ID, in.Type, in.Type2, in.Dst, in.A, regs[in.Dst], regs[in.A])
		case ir.OpShadowLoad:
			m.mutate(in, regs)
			m.Hooks.Load(in.ID, in.Type, in.Dst, uint32(regs[in.A]), regs[in.Dst])
		case ir.OpShadowStore:
			stored := regs[in.B]
			if m.inj != nil {
				if nb, ok := m.inj.Mutate(in.ID, in.Op, in.Type, stored); ok {
					// A store fault corrupts the memory cell, not the
					// register: rewrite the bytes the OpStore just wrote.
					stored = nb
					if err := m.store(fn, in.Type, uint32(regs[in.A]), stored); err != nil {
						return 0, err
					}
				}
			}
			m.Hooks.Store(in.ID, in.Type, uint32(regs[in.A]), in.B, stored)
		case ir.OpShadowPreCall:
			m.argScratch = m.argScratch[:0]
			for _, a := range in.Args {
				m.argScratch = append(m.argScratch, regs[a])
			}
			m.Hooks.PreCall(m.Mod.Funcs[in.Fn], in.Args, m.argScratch)
		case ir.OpShadowPostCall:
			var bits uint64
			if in.Dst >= 0 {
				m.mutate(in, regs)
				bits = regs[in.Dst]
			}
			m.Hooks.PostCall(in.ID, in.Type, in.Dst, bits)
		case ir.OpShadowRet:
			var bits uint64
			if in.A >= 0 {
				bits = regs[in.A]
			}
			m.Hooks.Ret(in.Type, in.A, bits)
		case ir.OpShadowPrint:
			m.Hooks.Print(in.ID, in.Type, in.A, regs[in.A])
		case ir.OpShadowQClear:
			m.Hooks.QClear(in.Type)
		case ir.OpShadowQAdd:
			m.Hooks.QAdd(in.Type, in.A, regs[in.A], in.Kind == 1)
		case ir.OpShadowQMAdd:
			m.Hooks.QMAdd(in.Type, in.A, in.B, regs[in.A], regs[in.B], in.Kind == 1)
		case ir.OpShadowQVal:
			m.mutate(in, regs)
			m.Hooks.QVal(in.ID, in.Type, in.Dst, regs[in.Dst])
		case ir.OpShadowFMA:
			m.mutate(in, regs)
			m.Hooks.FMA(in.ID, in.Type, in.Dst, in.Args[0], in.Args[1], in.Args[2],
				regs[in.Dst], regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]])
		default:
			return 0, m.trap(fn, "unknown opcode %v", in.Op)
		}
		if m.Prof != nil {
			m.Prof.observe(in.Op, time.Since(opStart))
		}
	}
}

// mutate consults the injector (when the hooks implement Injector) right
// before a value-producing shadow event is delivered, rewriting the
// destination register with the corrupted bits. The inner hooks then
// observe the corrupted program value against a clean shadow value, which
// is exactly what lets the shadow oracle detect the fault.
func (m *Machine) mutate(in *ir.Instr, regs []uint64) {
	if m.inj == nil {
		return
	}
	if nb, ok := m.inj.Mutate(in.ID, in.Op, in.Type, regs[in.Dst]); ok {
		regs[in.Dst] = nb
	}
}

func (m *Machine) quire(t ir.Type) *posit.Quire {
	q, ok := m.quires[t]
	if !ok {
		q = posit.NewQuire(t.PositConfig())
		m.quires[t] = q
	}
	return q
}

func (m *Machine) checkAddr(fn *ir.Func, addr, size uint32) error {
	if addr < m.Mod.GlobalBase || uint64(addr)+uint64(size) > uint64(len(m.mem)) {
		return m.trap(fn, "memory access out of bounds: addr=%d size=%d", addr, size)
	}
	return nil
}

func (m *Machine) load(fn *ir.Func, t ir.Type, addr uint32) (uint64, error) {
	size := t.Size()
	if err := m.checkAddr(fn, addr, size); err != nil {
		return 0, err
	}
	var v uint64
	for k := uint32(0); k < size; k++ {
		v |= uint64(m.mem[addr+k]) << (8 * k)
	}
	return v, nil
}

func (m *Machine) store(fn *ir.Func, t ir.Type, addr uint32, v uint64) error {
	size := t.Size()
	if err := m.checkAddr(fn, addr, size); err != nil {
		return err
	}
	for k := uint32(0); k < size; k++ {
		m.mem[addr+k] = byte(v >> (8 * k))
	}
	return nil
}

func (m *Machine) print(t ir.Type, v uint64) {
	if m.Out == nil {
		return
	}
	fmt.Fprintln(m.Out, FormatValue(t, v))
}

// FormatValue renders a bit-pattern value of the given type.
func FormatValue(t ir.Type, v uint64) string {
	switch t {
	case ir.I64:
		return fmt.Sprintf("%d", int64(v))
	case ir.Bool:
		if v != 0 {
			return "true"
		}
		return "false"
	case ir.F32:
		return fmt.Sprintf("%g", math.Float32frombits(uint32(v)))
	case ir.F64:
		return fmt.Sprintf("%g", math.Float64frombits(v))
	case ir.P8, ir.P16, ir.P32:
		return t.PositConfig().Format(posit.Bits(v))
	default:
		return fmt.Sprintf("%#x", v)
	}
}
