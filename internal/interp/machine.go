// Package interp executes IR modules on a simple abstract machine: virtual
// registers hold uint64 bit patterns, and a single linear byte-addressed
// memory holds globals (at ir.Module.GlobalBase) and the runtime stack
// (growing down from the top). Real addresses are what make the paper's
// shadow-memory design — a trie keyed by address — meaningful, which is why
// the substrate is an interpreter rather than closures.
//
// An uninstrumented module executes with no shadow overhead; instrumented
// modules route their shadow instructions to a Hooks implementation.
package interp

import (
	"errors"
	"fmt"
	"io"
	"math"

	"positdebug/internal/ir"
	"positdebug/internal/posit"
)

// Default machine limits.
const (
	DefaultStackSize = 1 << 22 // 4 MiB
	DefaultMaxSteps  = 2_000_000_000
	maxCallDepth     = 1024
)

// Machine executes one module. Not safe for concurrent use.
type Machine struct {
	Mod      *ir.Module
	Hooks    Hooks
	Out      io.Writer // print destination; nil discards
	Trace    io.Writer // when set, every executed instruction is logged
	MaxSteps int64     // instruction budget; 0 means DefaultMaxSteps

	mem    []byte
	sp     uint32
	steps  int64
	depth  int
	quires map[ir.Type]*posit.Quire

	argScratch []uint64
}

// New returns a machine for the module with the default stack size.
func New(mod *ir.Module) *Machine {
	return NewWithStack(mod, DefaultStackSize)
}

// NewWithStack returns a machine with an explicit stack size in bytes.
func NewWithStack(mod *ir.Module, stack uint32) *Machine {
	total := mod.GlobalBase + mod.GlobalSize
	total = (total + 7) / 8 * 8
	total += stack
	return &Machine{
		Mod:    mod,
		mem:    make([]byte, total),
		quires: map[ir.Type]*posit.Quire{},
	}
}

// Trap is a runtime error raised by the executing program.
type Trap struct {
	Msg  string
	Func string
}

func (t *Trap) Error() string { return fmt.Sprintf("trap in %s: %s", t.Func, t.Msg) }

// ErrStepLimit is wrapped by the trap raised when the instruction budget is
// exhausted.
var ErrStepLimit = errors.New("step limit exceeded")

// Stopped is returned by Run when a hook deliberately halted execution —
// the mechanism behind PositDebug's conditional error breakpoints (the
// paper's gdb workflow). Reason carries the hook's payload, typically a
// *shadow.Report.
type Stopped struct{ Reason interface{} }

func (s *Stopped) Error() string { return "execution stopped by shadow hook" }

// Steps returns the number of instructions executed by the last Run.
func (m *Machine) Steps() int64 { return m.steps }

// Mem exposes the memory image (tests and the shadow runtime's re-init path
// read it; the program mutates it only through stores).
func (m *Machine) Mem() []byte { return m.mem }

// Run executes the module's __init function and then the named function
// with the given argument bit patterns, returning the function's result.
// If a hook panics with *Stopped (a debugger breakpoint), Run recovers it
// and returns it as the error.
func (m *Machine) Run(name string, args ...uint64) (v uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(*Stopped); ok {
				err = s
				return
			}
			panic(r)
		}
	}()
	if m.Hooks == nil {
		m.Hooks = NopHooks{}
	}
	m.steps = 0
	m.depth = 0
	m.sp = uint32(len(m.mem))
	for i := range m.mem {
		m.mem[i] = 0
	}
	for _, q := range m.quires {
		q.Clear()
	}
	if m.Hooks != nil {
		m.Hooks.Reset()
	}
	if init := m.Mod.FuncByName("__init"); init != nil {
		if _, err := m.call(init, nil); err != nil {
			return 0, err
		}
	}
	fn := m.Mod.FuncByName(name)
	if fn == nil {
		return 0, fmt.Errorf("interp: no function %q", name)
	}
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("interp: %s takes %d args, got %d", name, len(fn.Params), len(args))
	}
	return m.call(fn, args)
}

func (m *Machine) trap(fn *ir.Func, format string, args ...interface{}) error {
	return &Trap{Msg: fmt.Sprintf(format, args...), Func: fn.Name}
}

func (m *Machine) call(fn *ir.Func, args []uint64) (uint64, error) {
	if m.depth++; m.depth > maxCallDepth {
		return 0, m.trap(fn, "call depth exceeded")
	}
	defer func() { m.depth-- }()

	frame := (fn.FrameSize + 7) / 8 * 8
	base := m.Mod.GlobalBase + m.Mod.GlobalSize
	if m.sp < base+frame {
		return 0, m.trap(fn, "stack overflow")
	}
	savedSP := m.sp
	m.sp -= frame
	fp := m.sp
	// Zero the frame so stale stack data never leaks into locals.
	for i := fp; i < savedSP; i++ {
		m.mem[i] = 0
	}
	defer func() { m.sp = savedSP }()

	regs := make([]uint64, fn.NumRegs)
	copy(regs, args)
	hooked := fn.Instrumented && m.Hooks != nil
	if hooked {
		m.Hooks.EnterFunc(fn, regs[:len(fn.Params)])
		defer m.Hooks.LeaveFunc()
	}

	maxSteps := m.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}

	b, i := int32(0), 0
	for {
		if m.steps++; m.steps > maxSteps {
			return 0, m.trap(fn, "%v", ErrStepLimit)
		}
		in := &fn.Blocks[b].Instrs[i]
		i++
		if m.Trace != nil {
			fmt.Fprintf(m.Trace, "%s b%d: %s\n", fn.Name, b, in)
		}
		switch in.Op {
		case ir.OpNop:
		case ir.OpConst:
			regs[in.Dst] = in.Imm
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
		case ir.OpBin:
			v, err := m.binEval(fn, ir.BinKind(in.Kind), in.Type, regs[in.A], regs[in.B])
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case ir.OpUn:
			regs[in.Dst] = unEval(ir.UnKind(in.Kind), in.Type, regs[in.A])
		case ir.OpCmp:
			if cmpEval(ir.CmpPred(in.Kind), in.Type, regs[in.A], regs[in.B]) {
				regs[in.Dst] = 1
			} else {
				regs[in.Dst] = 0
			}
		case ir.OpCast:
			regs[in.Dst] = castEval(in.Type, in.Type2, regs[in.A])
		case ir.OpLoad:
			v, err := m.load(fn, in.Type, uint32(regs[in.A]))
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = v
		case ir.OpStore:
			if err := m.store(fn, in.Type, uint32(regs[in.A]), regs[in.B]); err != nil {
				return 0, err
			}
		case ir.OpFrameAddr:
			regs[in.Dst] = uint64(fp) + in.Imm
		case ir.OpGlobalAddr:
			regs[in.Dst] = in.Imm
		case ir.OpAddrIndex:
			regs[in.Dst] = regs[in.A] + regs[in.B]*in.Imm
		case ir.OpBr:
			if regs[in.A] != 0 {
				b = in.Blk[0]
			} else {
				b = in.Blk[1]
			}
			i = 0
		case ir.OpJmp:
			b, i = in.Blk[0], 0
		case ir.OpCall:
			callee := m.Mod.Funcs[in.Fn]
			m.argScratch = m.argScratch[:0]
			for _, a := range in.Args {
				m.argScratch = append(m.argScratch, regs[a])
			}
			v, err := m.call(callee, m.argScratch)
			if err != nil {
				return 0, err
			}
			if in.Dst >= 0 {
				regs[in.Dst] = v
			}
		case ir.OpRet:
			if in.A >= 0 {
				return regs[in.A], nil
			}
			return 0, nil
		case ir.OpPrint:
			m.print(in.Type, regs[in.A])
		case ir.OpPrintStr:
			if m.Out != nil {
				fmt.Fprintln(m.Out, in.Str)
			}
		case ir.OpQClear:
			// qclear() is untyped at the source level; reset every quire.
			for _, q := range m.quires {
				q.Clear()
			}
		case ir.OpQAdd:
			q := m.quire(in.Type)
			if in.Kind == 1 {
				q.Sub(posit.Bits(regs[in.A]))
			} else {
				q.Add(posit.Bits(regs[in.A]))
			}
		case ir.OpQMAdd:
			q := m.quire(in.Type)
			if in.Kind == 1 {
				q.SubProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			} else {
				q.AddProduct(posit.Bits(regs[in.A]), posit.Bits(regs[in.B]))
			}
		case ir.OpQVal:
			regs[in.Dst] = uint64(m.quire(in.Type).Posit())
		case ir.OpFMA:
			regs[in.Dst] = fmaEval(in.Type, regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]])

		case ir.OpShadowConst:
			m.Hooks.Const(in.ID, in.Type, in.Dst, regs[in.Dst])
		case ir.OpShadowMov:
			m.Hooks.Mov(in.ID, in.Type, in.Dst, in.A, regs[in.Dst])
		case ir.OpShadowBin:
			m.Hooks.Bin(in.ID, ir.BinKind(in.Kind), in.Type, in.Dst, in.A, in.B,
				regs[in.Dst], regs[in.A], regs[in.B])
		case ir.OpShadowUn:
			m.Hooks.Un(in.ID, ir.UnKind(in.Kind), in.Type, in.Dst, in.A, regs[in.Dst], regs[in.A])
		case ir.OpShadowCmp:
			m.Hooks.Cmp(in.ID, ir.CmpPred(in.Kind), in.Type, in.A, in.B,
				regs[in.A], regs[in.B], regs[in.Dst] != 0)
		case ir.OpShadowCast:
			m.Hooks.Cast(in.ID, in.Type, in.Type2, in.Dst, in.A, regs[in.Dst], regs[in.A])
		case ir.OpShadowLoad:
			m.Hooks.Load(in.ID, in.Type, in.Dst, uint32(regs[in.A]), regs[in.Dst])
		case ir.OpShadowStore:
			m.Hooks.Store(in.ID, in.Type, uint32(regs[in.A]), in.B, regs[in.B])
		case ir.OpShadowPreCall:
			m.argScratch = m.argScratch[:0]
			for _, a := range in.Args {
				m.argScratch = append(m.argScratch, regs[a])
			}
			m.Hooks.PreCall(m.Mod.Funcs[in.Fn], in.Args, m.argScratch)
		case ir.OpShadowPostCall:
			var bits uint64
			if in.Dst >= 0 {
				bits = regs[in.Dst]
			}
			m.Hooks.PostCall(in.ID, in.Type, in.Dst, bits)
		case ir.OpShadowRet:
			var bits uint64
			if in.A >= 0 {
				bits = regs[in.A]
			}
			m.Hooks.Ret(in.Type, in.A, bits)
		case ir.OpShadowPrint:
			m.Hooks.Print(in.ID, in.Type, in.A, regs[in.A])
		case ir.OpShadowQClear:
			m.Hooks.QClear(in.Type)
		case ir.OpShadowQAdd:
			m.Hooks.QAdd(in.Type, in.A, regs[in.A], in.Kind == 1)
		case ir.OpShadowQMAdd:
			m.Hooks.QMAdd(in.Type, in.A, in.B, regs[in.A], regs[in.B], in.Kind == 1)
		case ir.OpShadowQVal:
			m.Hooks.QVal(in.ID, in.Type, in.Dst, regs[in.Dst])
		case ir.OpShadowFMA:
			m.Hooks.FMA(in.ID, in.Type, in.Dst, in.Args[0], in.Args[1], in.Args[2],
				regs[in.Dst], regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]])
		default:
			return 0, m.trap(fn, "unknown opcode %v", in.Op)
		}
	}
}

func (m *Machine) quire(t ir.Type) *posit.Quire {
	q, ok := m.quires[t]
	if !ok {
		q = posit.NewQuire(t.PositConfig())
		m.quires[t] = q
	}
	return q
}

func (m *Machine) checkAddr(fn *ir.Func, addr, size uint32) error {
	if addr < m.Mod.GlobalBase || uint64(addr)+uint64(size) > uint64(len(m.mem)) {
		return m.trap(fn, "memory access out of bounds: addr=%d size=%d", addr, size)
	}
	return nil
}

func (m *Machine) load(fn *ir.Func, t ir.Type, addr uint32) (uint64, error) {
	size := t.Size()
	if err := m.checkAddr(fn, addr, size); err != nil {
		return 0, err
	}
	var v uint64
	for k := uint32(0); k < size; k++ {
		v |= uint64(m.mem[addr+k]) << (8 * k)
	}
	return v, nil
}

func (m *Machine) store(fn *ir.Func, t ir.Type, addr uint32, v uint64) error {
	size := t.Size()
	if err := m.checkAddr(fn, addr, size); err != nil {
		return err
	}
	for k := uint32(0); k < size; k++ {
		m.mem[addr+k] = byte(v >> (8 * k))
	}
	return nil
}

func (m *Machine) print(t ir.Type, v uint64) {
	if m.Out == nil {
		return
	}
	fmt.Fprintln(m.Out, FormatValue(t, v))
}

// FormatValue renders a bit-pattern value of the given type.
func FormatValue(t ir.Type, v uint64) string {
	switch t {
	case ir.I64:
		return fmt.Sprintf("%d", int64(v))
	case ir.Bool:
		if v != 0 {
			return "true"
		}
		return "false"
	case ir.F32:
		return fmt.Sprintf("%g", math.Float32frombits(uint32(v)))
	case ir.F64:
		return fmt.Sprintf("%g", math.Float64frombits(v))
	case ir.P8, ir.P16, ir.P32:
		return t.PositConfig().Format(posit.Bits(v))
	default:
		return fmt.Sprintf("%#x", v)
	}
}
