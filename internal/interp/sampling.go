package interp

import (
	"positdebug/internal/ir"
	"positdebug/internal/posit"
)

// Sampling is a Hooks decorator implementing sampled shadow execution: it
// forwards every nth dynamic instance of each static compute instruction
// (binary/unary ops, casts, FMA, quire rounding) to the inner hooks and
// drops the rest, cutting shadow-execution cost roughly by the sampling
// factor. Structural events — constants, moves, comparisons, loads,
// stores, calls, returns, prints, quire accumulation — are always
// forwarded, so metadata propagation and the branch-flip/output oracles
// stay exact; only per-operation error checks are subsampled.
//
// Determinism: the decision is a pure function of (static instruction id,
// per-id occurrence counter), counters reset on Reset, so the same program
// run shadows exactly the same dynamic instances regardless of GOMAXPROCS
// or worker placement. The first instance of every static instruction is
// always shadowed (counter ≡ 0 mod n), so every instruction appears in the
// profile.
//
// Accuracy tradeoff: a skipped instance leaves the destination's shadow
// metadata stale; the runtime's program-value check re-seeds it from the
// program bits on next use, so downstream comparisons measure error
// accumulated since the last sampled point rather than since the start.
// Detections that need exact operand history (cancellation on the skipped
// instance itself) are missed for skipped instances — that is the paid-for
// overhead reduction, quantified in BENCH_profile.json.
//
// Fault-injection caveat: an injecting decorator outside the sampler still
// mutates architectural state even when the sampler drops the annotated
// event; the injection announcement is forwarded and matched by value, so
// a dropped event leaves the announcement pending until a matching (id,
// op, bits) event arrives. Sampled profiling runs and injection campaigns
// are therefore kept as separate modes.
type Sampling struct {
	// Inner receives the forwarded events.
	Inner Hooks
	// N is the sampling stride: shadow every Nth instance (N ≤ 1 forwards
	// everything).
	N int64
	// OnSkip, when set, is called with the static instruction id of every
	// dropped compute event — the profiler's dynamic-count feed.
	OnSkip func(id int32)
	// Clock, when set, times each forwarded compute event (monotonic
	// nanoseconds) and reports it through OnTime — the shadow-op latency
	// feed. Leave nil to keep clock reads off the hot path.
	Clock  func() int64
	OnTime func(id int32, ns int64)

	counts []int64 // per static id occurrence counters, reset per run

	// fastInner caches Inner's FastShadow view (nil when Inner does not
	// implement it), resolved lazily so callers may assign Inner after
	// construction. Reset re-resolves, covering sessions that rebind the
	// inner hooks between runs.
	fastInner FastShadow
	fastBound bool
}

var _ Hooks = (*Sampling)(nil)
var _ FastShadow = (*Sampling)(nil)

// NewSampling wraps inner with stride n.
func NewSampling(inner Hooks, n int64) *Sampling {
	return &Sampling{Inner: inner, N: n}
}

// take decides whether this dynamic instance of id is shadowed.
func (s *Sampling) take(id int32) bool {
	if s.N <= 1 {
		return true
	}
	if id < 0 {
		return true
	}
	if int(id) >= len(s.counts) {
		grown := make([]int64, int(id)+16)
		copy(grown, s.counts)
		s.counts = grown
	}
	c := s.counts[id]
	s.counts[id] = c + 1
	if c%s.N == 0 {
		return true
	}
	if s.OnSkip != nil {
		s.OnSkip(id)
	}
	return false
}

// Reset implements Hooks, restarting the occurrence counters so sampling
// decisions are identical run after run.
func (s *Sampling) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.fastBound = false
	s.fastInner = nil
	s.Inner.Reset()
}

// fast resolves (and caches) the inner hooks' FastShadow view.
func (s *Sampling) fast() FastShadow {
	if !s.fastBound {
		s.fastInner, _ = s.Inner.(FastShadow)
		s.fastBound = true
	}
	return s.fastInner
}

// EnterFunc implements Hooks.
func (s *Sampling) EnterFunc(fn *ir.Func, argVals []uint64) { s.Inner.EnterFunc(fn, argVals) }

// LeaveFunc implements Hooks.
func (s *Sampling) LeaveFunc() { s.Inner.LeaveFunc() }

// Const implements Hooks.
func (s *Sampling) Const(id int32, typ ir.Type, dst int32, bits uint64) {
	s.Inner.Const(id, typ, dst, bits)
}

// Mov implements Hooks.
func (s *Sampling) Mov(id int32, typ ir.Type, dst, src int32, bits uint64) {
	s.Inner.Mov(id, typ, dst, src, bits)
}

// Bin implements Hooks (sampled).
func (s *Sampling) Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	if !s.take(id) {
		return
	}
	if s.Clock == nil {
		s.Inner.Bin(id, kind, typ, dst, a, b, dstVal, aVal, bVal)
		return
	}
	t0 := s.Clock()
	s.Inner.Bin(id, kind, typ, dst, a, b, dstVal, aVal, bVal)
	s.time(id, t0)
}

// Un implements Hooks (sampled).
func (s *Sampling) Un(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {
	if !s.take(id) {
		return
	}
	if s.Clock == nil {
		s.Inner.Un(id, kind, typ, dst, a, dstVal, aVal)
		return
	}
	t0 := s.Clock()
	s.Inner.Un(id, kind, typ, dst, a, dstVal, aVal)
	s.time(id, t0)
}

// Cmp implements Hooks.
func (s *Sampling) Cmp(id int32, pred ir.CmpPred, typ ir.Type, a, b int32, aVal, bVal uint64, outcome bool) {
	s.Inner.Cmp(id, pred, typ, a, b, aVal, bVal, outcome)
}

// Cast implements Hooks (sampled).
func (s *Sampling) Cast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {
	if !s.take(id) {
		return
	}
	if s.Clock == nil {
		s.Inner.Cast(id, from, to, dst, src, dstVal, srcVal)
		return
	}
	t0 := s.Clock()
	s.Inner.Cast(id, from, to, dst, src, dstVal, srcVal)
	s.time(id, t0)
}

// Load implements Hooks.
func (s *Sampling) Load(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {
	s.Inner.Load(id, typ, dst, addr, bits)
}

// Store implements Hooks.
func (s *Sampling) Store(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {
	s.Inner.Store(id, typ, addr, src, bits)
}

// PreCall implements Hooks.
func (s *Sampling) PreCall(callee *ir.Func, args []int32, argVals []uint64) {
	s.Inner.PreCall(callee, args, argVals)
}

// PostCall implements Hooks.
func (s *Sampling) PostCall(id int32, typ ir.Type, dst int32, bits uint64) {
	s.Inner.PostCall(id, typ, dst, bits)
}

// Ret implements Hooks.
func (s *Sampling) Ret(typ ir.Type, src int32, bits uint64) { s.Inner.Ret(typ, src, bits) }

// Print implements Hooks.
func (s *Sampling) Print(id int32, typ ir.Type, src int32, bits uint64) {
	s.Inner.Print(id, typ, src, bits)
}

// FMA implements Hooks (sampled).
func (s *Sampling) FMA(id int32, typ ir.Type, dst, a, b, c int32, dstVal, aVal, bVal, cVal uint64) {
	if !s.take(id) {
		return
	}
	if s.Clock == nil {
		s.Inner.FMA(id, typ, dst, a, b, c, dstVal, aVal, bVal, cVal)
		return
	}
	t0 := s.Clock()
	s.Inner.FMA(id, typ, dst, a, b, c, dstVal, aVal, bVal, cVal)
	s.time(id, t0)
}

// QClear implements Hooks.
func (s *Sampling) QClear(typ ir.Type) { s.Inner.QClear(typ) }

// QAdd implements Hooks.
func (s *Sampling) QAdd(typ ir.Type, a int32, aVal uint64, negate bool) {
	s.Inner.QAdd(typ, a, aVal, negate)
}

// QMAdd implements Hooks.
func (s *Sampling) QMAdd(typ ir.Type, a, b int32, aVal, bVal uint64, negate bool) {
	s.Inner.QMAdd(typ, a, b, aVal, bVal, negate)
}

// QVal implements Hooks (sampled).
func (s *Sampling) QVal(id int32, typ ir.Type, dst int32, bits uint64) {
	if !s.take(id) {
		return
	}
	if s.Clock == nil {
		s.Inner.QVal(id, typ, dst, bits)
		return
	}
	t0 := s.Clock()
	s.Inner.QVal(id, typ, dst, bits)
	s.time(id, t0)
}

// ObserveInjection implements InjectionObserver by forwarding to the inner
// hooks when they observe injections, so a fault injector outside the
// sampler keeps reaching the shadow oracle.
func (s *Sampling) ObserveInjection(id int32, op ir.Op, typ ir.Type, before, after uint64) {
	if obs, ok := s.Inner.(InjectionObserver); ok {
		obs.ObserveInjection(id, op, typ, before, after)
	}
}

func (s *Sampling) time(id int32, t0 int64) {
	if s.OnTime != nil {
		s.OnTime(id, s.Clock()-t0)
	}
}

// FastShadow adapter: the sampler composes with the VM's fused dispatch by
// implementing FastShadow itself. Structural events (const/mov/load/store)
// are always forwarded — to the inner fused methods when the inner hooks
// implement FastShadow, otherwise to the generic Hooks methods. Compute
// events apply the same take() gate (and Clock timing) as the tree-walker
// path, so a sampled run makes identical sampling decisions on both
// backends. A skipped FastBinP32 still computes the ⟨32,2⟩ program result
// (bit-identical to the VM's unfused path) without touching metadata, which
// matches the tree-walker's skip behavior: architectural state advances,
// shadow metadata goes stale until the next sampled touch.

// FastConst implements FastShadow (always forwarded).
func (s *Sampling) FastConst(id int32, typ ir.Type, dst int32, bits uint64) {
	if fh := s.fast(); fh != nil {
		fh.FastConst(id, typ, dst, bits)
		return
	}
	s.Inner.Const(id, typ, dst, bits)
}

// FastMov implements FastShadow (always forwarded).
func (s *Sampling) FastMov(id int32, typ ir.Type, dst, src int32, bits uint64) {
	if fh := s.fast(); fh != nil {
		fh.FastMov(id, typ, dst, src, bits)
		return
	}
	s.Inner.Mov(id, typ, dst, src, bits)
}

// FastBin implements FastShadow (sampled).
func (s *Sampling) FastBin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	if !s.take(id) {
		return
	}
	var t0 int64
	if s.Clock != nil {
		t0 = s.Clock()
	}
	if fh := s.fast(); fh != nil {
		fh.FastBin(id, kind, typ, dst, a, b, dstVal, aVal, bVal)
	} else {
		s.Inner.Bin(id, kind, typ, dst, a, b, dstVal, aVal, bVal)
	}
	if s.Clock != nil {
		s.time(id, t0)
	}
}

// fusedP32Result recomputes the fused ⟨32,2⟩ base arithmetic a FastBinP32
// implementation is responsible for — bit-identical to the VM's unfused
// path — so the sampler can skip the shadow event without stalling the
// program.
func fusedP32Result(kind ir.BinKind, aVal, bVal uint64) uint64 {
	a, b := posit.Bits(aVal), posit.Bits(bVal)
	switch kind {
	case ir.BinAdd:
		return uint64(posit.Config32.Add(a, b))
	case ir.BinSub:
		return uint64(posit.Config32.Sub(a, b))
	default: // BinMul — the only other fused kind
		return uint64(posit.Config32.Mul(a, b))
	}
}

// FastBinP32 implements FastShadow (sampled): a skipped instance computes
// the program result directly and leaves shadow metadata untouched; a taken
// instance delegates to the inner fused path (or falls back to computing
// the result and delivering a generic Bin event).
func (s *Sampling) FastBinP32(id int32, kind ir.BinKind, dst, a, b int32, aVal, bVal uint64) uint64 {
	if !s.take(id) {
		return fusedP32Result(kind, aVal, bVal)
	}
	var t0 int64
	if s.Clock != nil {
		t0 = s.Clock()
	}
	var res uint64
	if fh := s.fast(); fh != nil {
		res = fh.FastBinP32(id, kind, dst, a, b, aVal, bVal)
	} else {
		res = fusedP32Result(kind, aVal, bVal)
		s.Inner.Bin(id, kind, ir.P32, dst, a, b, res, aVal, bVal)
	}
	if s.Clock != nil {
		s.time(id, t0)
	}
	return res
}

// FastUn implements FastShadow (sampled).
func (s *Sampling) FastUn(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {
	if !s.take(id) {
		return
	}
	var t0 int64
	if s.Clock != nil {
		t0 = s.Clock()
	}
	if fh := s.fast(); fh != nil {
		fh.FastUn(id, kind, typ, dst, a, dstVal, aVal)
	} else {
		s.Inner.Un(id, kind, typ, dst, a, dstVal, aVal)
	}
	if s.Clock != nil {
		s.time(id, t0)
	}
}

// FastCast implements FastShadow (sampled).
func (s *Sampling) FastCast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {
	if !s.take(id) {
		return
	}
	var t0 int64
	if s.Clock != nil {
		t0 = s.Clock()
	}
	if fh := s.fast(); fh != nil {
		fh.FastCast(id, from, to, dst, src, dstVal, srcVal)
	} else {
		s.Inner.Cast(id, from, to, dst, src, dstVal, srcVal)
	}
	if s.Clock != nil {
		s.time(id, t0)
	}
}

// FastLoad implements FastShadow (always forwarded).
func (s *Sampling) FastLoad(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {
	if fh := s.fast(); fh != nil {
		fh.FastLoad(id, typ, dst, addr, bits)
		return
	}
	s.Inner.Load(id, typ, dst, addr, bits)
}

// FastStore implements FastShadow (always forwarded).
func (s *Sampling) FastStore(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {
	if fh := s.fast(); fh != nil {
		fh.FastStore(id, typ, addr, src, bits)
		return
	}
	s.Inner.Store(id, typ, addr, src, bits)
}
