package interp

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"positdebug/internal/codegen"
	"positdebug/internal/instrument"
	"positdebug/internal/ir"
	"positdebug/internal/lang"
	"positdebug/internal/posit"
)

func instrumentForTest(mod *ir.Module) *ir.Module {
	return instrument.Instrument(mod, instrument.Options{})
}

func compile(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, mod)
	}
	return mod
}

func run(t *testing.T, src, fn string, args ...uint64) (uint64, string) {
	t.Helper()
	mod := compile(t, src)
	m := New(mod)
	var out bytes.Buffer
	m.Out = &out
	v, err := m.Run(fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, out.String()
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
func fib(n: i64): i64 {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func gcd(a: i64, b: i64): i64 {
	while (b != 0) {
		var tmp: i64 = b;
		b = a % b;
		a = tmp;
	}
	return a;
}
func sumto(n: i64): i64 {
	var s: i64 = 0;
	for (var i: i64 = 1; i <= n; i += 1) {
		s += i;
	}
	return s;
}
`
	if v, _ := run(t, src, "fib", 15); int64(v) != 610 {
		t.Fatalf("fib(15) = %d", int64(v))
	}
	if v, _ := run(t, src, "gcd", 48, 18); int64(v) != 6 {
		t.Fatalf("gcd(48,18) = %d", int64(v))
	}
	if v, _ := run(t, src, "sumto", 100); int64(v) != 5050 {
		t.Fatalf("sumto(100) = %d", int64(v))
	}
}

func TestFloatKernels(t *testing.T) {
	src := `
var A: [16][16]f64;
var n: i64 = 16;

func fill() {
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			A[i][j] = f64(i + j) + 0.5;
		}
	}
}
func total(): f64 {
	fill();
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s += A[i][j];
		}
	}
	return s;
}
`
	v, _ := run(t, src, "total")
	// sum over i,j of (i+j+0.5) = 16*16*0.5 + 2*16*(0+…+15) = 128 + 3840
	if got := math.Float64frombits(v); got != 3968 {
		t.Fatalf("total = %v", got)
	}
}

func TestPositProgram(t *testing.T) {
	// Figure 2 of the paper as a posit program: the cancellation makes
	// RootCount return 1, while exact arithmetic gives 2.
	src := `
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
`
	cfg := posit.Config32
	a := uint64(cfg.FromFloat64(1.8309067625725952e16))
	b := uint64(cfg.FromFloat64(3.24664295424e12))
	c := uint64(cfg.FromFloat64(1.43923904e8))
	if v, _ := run(t, src, "rootcount", a, b, c); int64(v) != 1 {
		t.Fatalf("rootcount = %d, want 1 (the posit branch-flip result)", int64(v))
	}
}

func TestQuireBuiltins(t *testing.T) {
	src := `
var xs: [64]p32;
var ys: [64]p32;

func dot_naive(n: i64): p32 {
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s += xs[i] * ys[i];
	}
	return s;
}
func dot_fused(n: i64): p32 {
	qclear();
	for (var i: i64 = 0; i < n; i += 1) {
		qmadd(xs[i], ys[i]);
	}
	return qround_p32();
}
func setval(i: i64, x: p32, y: p32) {
	xs[i] = x;
	ys[i] = y;
}
func both(n: i64): i64 {
	print(dot_naive(n));
	print(dot_fused(n));
	if (dot_naive(n) == dot_fused(n)) { return 1; }
	return 0;
}
`
	mod := compile(t, src)
	m := New(mod)
	var out bytes.Buffer
	m.Out = &out
	cfg := posit.Config32
	// First populate, then compute — exercising globals persisting between
	// calls requires a single Run, so drive it via a main-like function.
	src2 := src + `
func main(): i64 {
	for (var i: i64 = 0; i < 32; i += 1) {
		setval(i, p32(i) + 0.125, 3.0);
	}
	return both(32);
}
`
	mod = compile(t, src2)
	m = New(mod)
	m.Out = &out
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	// Exact: sum 3·(i+0.125) for i<32 = 3·(496 + 4) = 1500, representable.
	want := cfg.FromFloat64(1500)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[1] != cfg.Format(want) {
		t.Fatalf("fused dot = %s, want %s", lines[1], cfg.Format(want))
	}
	if v != 1 {
		t.Fatalf("naive and fused disagree on an exactly representable case: %s", out.String())
	}
}

func TestGlobalsInitAndPrint(t *testing.T) {
	src := `
var scale: f64 = 2.5;
var count: i64 = 4;

func main(): f64 {
	print("scaling");
	print(scale);
	print(count);
	print(true);
	return scale * f64(count);
}
`
	v, out := run(t, src, "main")
	if got := math.Float64frombits(v); got != 10 {
		t.Fatalf("main = %v", got)
	}
	want := "scaling\n2.5\n4\ntrue\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
}

func TestCasts(t *testing.T) {
	src := `
func f2i(x: f64): i64 { return i64(x); }
func p2i(x: p32): i64 { return i64(x); }
func i2p(x: i64): p32 { return p32(x); }
func f2p(x: f64): p32 { return p32(x); }
func p162p32(x: p16): p32 { return p32(x); }
func f2f32(x: f64): f32 { return f32(x); }
`
	if v, _ := run(t, src, "f2i", math.Float64bits(-3.9)); int64(v) != -3 {
		t.Fatalf("i64(-3.9) = %d", int64(v))
	}
	cfg := posit.Config32
	if v, _ := run(t, src, "p2i", uint64(cfg.FromFloat64(7.9))); int64(v) != 7 {
		t.Fatalf("i64(p32 7.9) = %d", int64(v))
	}
	if v, _ := run(t, src, "i2p", uint64(13)); posit.Bits(v) != cfg.FromFloat64(13) {
		t.Fatal("p32(13)")
	}
	if v, _ := run(t, src, "f2p", math.Float64bits(0.3)); posit.Bits(v) != cfg.FromFloat64(0.3) {
		t.Fatal("p32(0.3)")
	}
	p16v := posit.Config16.FromFloat64(1.5)
	if v, _ := run(t, src, "p162p32", uint64(p16v)); posit.Bits(v) != cfg.FromFloat64(1.5) {
		t.Fatal("p32(p16 1.5)")
	}
	if v, _ := run(t, src, "f2f32", math.Float64bits(0.1)); math.Float32frombits(uint32(v)) != float32(0.1) {
		t.Fatal("f32(0.1)")
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
var calls: i64 = 0;

func bump(): bool {
	calls += 1;
	return true;
}
func main(): i64 {
	calls = 0;
	if (false && bump()) { }
	if (true || bump()) { }
	if (true && bump()) { }
	if (false || bump()) { }
	return calls;
}
`
	if v, _ := run(t, src, "main"); int64(v) != 2 {
		t.Fatalf("short circuit calls = %d, want 2", int64(v))
	}
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src, fn string
		args          []uint64
		want          string
	}{
		{"div by zero", `func f(a: i64): i64 { return 1 / a; }`, "f", []uint64{0}, "division by zero"},
		{"mod by zero", `func f(a: i64): i64 { return 1 % a; }`, "f", []uint64{0}, "modulo by zero"},
		{"oob", `var A: [4]f64; func f(i: i64): f64 { return A[i]; }`, "f", []uint64{100000000}, "out of bounds"},
		{"deep recursion", `func f(n: i64): i64 { return f(n + 1); }`, "f", []uint64{0}, "call depth"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := compile(t, tc.src)
			m := New(mod)
			_, err := m.Run(tc.fn, tc.args...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want trap containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	mod := compile(t, `func f(): i64 { var i: i64 = 0; while (true) { i += 1; } return i; }`)
	m := New(mod)
	m.MaxSteps = 10000
	_, err := m.Run("f")
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("want ErrStepLimit, got %v", err)
	}
	var re *ResourceExhausted
	if !errors.As(err, &re) || re.Resource != ResSteps || re.Limit != 10000 || re.Func != "f" {
		t.Fatalf("want structured *ResourceExhausted{steps, 10000, f}, got %#v", err)
	}
}

func TestNaRPropagationThroughProgram(t *testing.T) {
	src := `
func f(a: p32, b: p32): p32 {
	return sqrt(a - b) / (a - a);
}
`
	cfg := posit.Config32
	v, _ := run(t, src, "f", uint64(cfg.FromFloat64(1)), uint64(cfg.FromFloat64(2)))
	if !cfg.IsNaR(posit.Bits(v)) {
		t.Fatalf("sqrt(-1)/0 = %s, want NaR", cfg.Format(posit.Bits(v)))
	}
}

func TestFormatValue(t *testing.T) {
	if got := FormatValue(ir.I64, ^uint64(6)); got != "-7" {
		t.Fatal(got)
	}
	if got := FormatValue(ir.Bool, 1); got != "true" {
		t.Fatal(got)
	}
	if got := FormatValue(ir.F64, math.Float64bits(2.5)); got != "2.5" {
		t.Fatal(got)
	}
	if got := FormatValue(ir.P32, uint64(posit.Config32.NaR())); got != "NaR" {
		t.Fatal(got)
	}
}

func TestIRPrinterSmoke(t *testing.T) {
	mod := compile(t, rootCountForPrinter)
	s := mod.String()
	for _, frag := range []string{"func rootcount", "b0:", "ret", "store.p32", "load.p32"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("printer output missing %q:\n%s", frag, s)
		}
	}
}

const rootCountForPrinter = `
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t3: p32 = t1 - 4.0 * a * c;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
`

func TestFMABuiltin(t *testing.T) {
	src := `
func fusedp(a: p32, b: p32, c: p32): p32 { return fma(a, b, c); }
func fusedf(a: f64, b: f64, c: f64): f64 { return fma(a, b, c); }
func fusedf32(a: f32, b: f32, c: f32): f32 { return fma(a, b, c); }
`
	cfg := posit.Config32
	v, _ := run(t, src, "fusedp",
		uint64(cfg.FromFloat64(2)), uint64(cfg.FromFloat64(3)), uint64(cfg.FromFloat64(0.5)))
	if got := cfg.ToFloat64(posit.Bits(v)); got != 6.5 {
		t.Fatalf("posit fma = %v", got)
	}
	// Single rounding: 1+2^-20 squared minus 1 keeps the 2^-40 term in f64.
	x := 1 + math.Ldexp(1, -20)
	v, _ = run(t, src, "fusedf", math.Float64bits(x), math.Float64bits(x), math.Float64bits(-1))
	want := math.FMA(x, x, -1)
	if math.Float64frombits(v) != want {
		t.Fatalf("f64 fma = %v, want %v", math.Float64frombits(v), want)
	}
	v, _ = run(t, src, "fusedf32",
		uint64(math.Float32bits(1.5)), uint64(math.Float32bits(2.5)), uint64(math.Float32bits(0.25)))
	if math.Float32frombits(uint32(v)) != 4.0 {
		t.Fatalf("f32 fma = %v", math.Float32frombits(uint32(v)))
	}
}

func TestInstrumentedWithoutHooks(t *testing.T) {
	// An instrumented module with no runtime attached must still execute
	// correctly (shadow instructions become no-ops via NopHooks).
	mod := compile(t, `func f(a: p32): p32 { return a * a + 1.0; }`)
	instrumented := instrumentForTest(mod)
	m := New(instrumented)
	v, err := m.Run("f", uint64(posit.Config32.FromFloat64(3)))
	if err != nil {
		t.Fatal(err)
	}
	if got := posit.Config32.ToFloat64(posit.Bits(v)); got != 10 {
		t.Fatalf("result = %v", got)
	}
}

func TestTraceMode(t *testing.T) {
	mod := compile(t, `func f(): i64 { return 1 + 2; }`)
	m := New(mod)
	var trace bytes.Buffer
	m.Trace = &trace
	if _, err := m.Run("f"); err != nil {
		t.Fatal(err)
	}
	s := trace.String()
	for _, frag := range []string{"f b0:", "const.i64", "ret"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("trace missing %q:\n%s", frag, s)
		}
	}
}

// TestNopHooksFullDispatch runs an instrumented program exercising every
// shadow opcode with the no-op hooks installed.
func TestNopHooksFullDispatch(t *testing.T) {
	src := `
var g: p32;

func helper(x: p32): p32 { return x + 1.0; }

func main(): i64 {
	g = 2.0;
	var a: p32 = g * 3.0;
	var b: p32 = -a;
	b = abs(b);
	b = sqrt(b);
	b = fma(a, b, g);
	qclear();
	qmadd(a, b);
	qadd(g);
	qsub(g);
	b = qround_p32();
	b = helper(b);
	var c: p16 = p16(b);
	print(c);
	if (b > a) { return i64(b); }
	return 0;
}
`
	mod := instrumentForTest(compile(t, src))
	m := New(mod)
	var out bytes.Buffer
	m.Out = &out
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no output")
	}
}
