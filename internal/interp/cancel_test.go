package interp

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCancelStopsHotLoop is the cancellation-propagation guarantee: a
// context cancelled while an unbounded hot loop executes stops the
// interpreter promptly (one poll interval, not the step budget) and
// surfaces a structured *Cancelled with breadcrumbs — never the
// *ResourceExhausted a budget trip would produce.
func TestCancelStopsHotLoop(t *testing.T) {
	mod := compile(t, `func f(): i64 { var i: i64 = 0; while (true) { i += 1; } return i; }`)
	m := New(mod)
	m.MaxSteps = 1 << 62 // budgets out of the way: only the context can stop this
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := m.RunContext(ctx, "f", Limits{})
	elapsed := time.Since(start)

	var c *Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("want *Cancelled, got %v", err)
	}
	if c.Func != "f" || c.Steps == 0 {
		t.Fatalf("missing breadcrumbs: %#v", c)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want errors.Is(err, context.Canceled), got %v", err)
	}
	var re *ResourceExhausted
	if errors.As(err, &re) {
		t.Fatalf("cancellation must not be a *ResourceExhausted: %v", err)
	}
	// "Promptly": generous bound for race/CI machines, but far below any
	// plausible full-budget runtime.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; hot loop did not stop promptly", elapsed)
	}
}

// TestCancelBeforeRun: an already-cancelled context fails fast without
// executing a single instruction.
func TestCancelBeforeRun(t *testing.T) {
	mod := compile(t, `func f(): i64 { return 1; }`)
	m := New(mod)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.RunContext(ctx, "f", Limits{})
	var c *Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("want *Cancelled, got %v", err)
	}
	if m.Steps() != 0 {
		t.Fatalf("executed %d steps under a pre-cancelled context", m.Steps())
	}
}

// TestDeadlineContext: a context deadline surfaces as *Cancelled wrapping
// context.DeadlineExceeded — distinct from the wall-clock Limits budget,
// which stays a *ResourceExhausted.
func TestDeadlineContext(t *testing.T) {
	mod := compile(t, `func f(): i64 { var i: i64 = 0; while (true) { i += 1; } return i; }`)
	m := New(mod)
	m.MaxSteps = 1 << 62
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := m.RunContext(ctx, "f", Limits{})
	var c *Cancelled
	if !errors.As(err, &c) {
		t.Fatalf("want *Cancelled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want errors.Is(err, context.DeadlineExceeded), got %v", err)
	}
}

// TestCancelMachineReusable: a cancelled machine runs again cleanly, and a
// later context-free run is not haunted by the stale Done channel.
func TestCancelMachineReusable(t *testing.T) {
	mod := compile(t, `func f(n: i64): i64 { var s: i64 = 0; for (var i: i64 = 0; i < n; i += 1) { s += i; } return s; }`)
	m := New(mod)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RunContext(ctx, "f", Limits{}, 10); err == nil {
		t.Fatal("want cancellation error")
	}
	v, err := m.RunWithLimits("f", Limits{}, 10)
	if err != nil {
		t.Fatalf("machine unusable after cancellation: %v", err)
	}
	if v != 45 {
		t.Fatalf("want 45, got %d", v)
	}
}
