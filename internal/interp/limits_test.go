package interp

import (
	"errors"
	"strings"
	"testing"
	"time"

	"positdebug/internal/instrument"
	"positdebug/internal/ir"
)

func TestWallClockLimit(t *testing.T) {
	mod := compile(t, `func f(): i64 { var i: i64 = 0; while (true) { i += 1; } return i; }`)
	m := New(mod)
	m.MaxSteps = 1 << 62 // step budget out of the way
	_, err := m.RunWithLimits("f", Limits{Timeout: 30 * time.Millisecond})
	var re *ResourceExhausted
	if !errors.As(err, &re) || re.Resource != ResWallClock {
		t.Fatalf("want wall-clock *ResourceExhausted, got %v", err)
	}
	if re.Func != "f" || re.Steps == 0 {
		t.Fatalf("missing breadcrumbs: %#v", re)
	}
	if re.Limit != int64(30*time.Millisecond) {
		t.Fatalf("want limit %d, got %d", int64(30*time.Millisecond), re.Limit)
	}
}

func TestLimitsMaxStepsOverride(t *testing.T) {
	mod := compile(t, `func f(): i64 { var i: i64 = 0; while (true) { i += 1; } return i; }`)
	m := New(mod)
	_, err := m.RunWithLimits("f", Limits{MaxSteps: 5000})
	var re *ResourceExhausted
	if !errors.As(err, &re) || re.Resource != ResSteps || re.Limit != 5000 {
		t.Fatalf("want steps limit 5000, got %v", err)
	}
}

// panicHooks panics on the k-th Bin event — a stand-in for any bug in an
// observer (shadow runtime, fault injector, …).
type panicHooks struct {
	NopHooks
	n, at int
}

func (p *panicHooks) Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	p.n++
	if p.n == p.at {
		panic("observer bug")
	}
}

func TestInternalFaultRecovery(t *testing.T) {
	mod := instrument.Instrument(compile(t, `func g(a: f64): f64 { return a * 2.0 + 1.0; }
func f(a: f64): f64 { return g(a) + g(a); }`), instrument.Options{})
	m := New(mod)
	m.Hooks = &panicHooks{at: 3}
	_, err := m.RunWithLimits("f", Limits{}, FromFloat64(ir.F64, 1.5))
	var fault *InternalFault
	if !errors.As(err, &fault) {
		t.Fatalf("want *InternalFault, got %v", err)
	}
	if fault.Recovered != "observer bug" {
		t.Fatalf("want recovered panic value, got %#v", fault.Recovered)
	}
	if fault.Func == "" || fault.Steps == 0 {
		t.Fatalf("missing breadcrumbs: %#v", fault)
	}
	if !strings.Contains(err.Error(), "internal fault") {
		t.Fatalf("unhelpful error text: %v", err)
	}
	// The machine must stay usable after a recovered fault.
	m.Hooks = NopHooks{}
	if _, err := m.Run("f", FromFloat64(ir.F64, 1.5)); err != nil {
		t.Fatalf("machine unusable after recovery: %v", err)
	}
}
