package interp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"positdebug/internal/ir"
)

// numOps sizes the per-opcode arrays; OpShadowFMA is the last opcode.
const numOps = int(ir.OpShadowFMA) + 1

// OpProfile attributes execution time and counts to opcodes — the
// hot-instruction view behind `pd -metrics`. Attach one to Machine.Prof;
// timing costs two clock reads per instruction, so leave it nil when not
// profiling. OpCall time is inclusive of the callee; returns and trapping
// instructions exit the dispatch loop before attribution and are not
// counted.
type OpProfile struct {
	Counts [numOps]int64
	Nanos  [numOps]int64
}

func (p *OpProfile) observe(op ir.Op, d time.Duration) {
	p.Counts[op]++
	p.Nanos[op] += int64(d)
}

// OpStat is one row of the profile.
type OpStat struct {
	Op    ir.Op
	Count int64
	Nanos int64
}

// Stats returns the nonzero rows, most time first (count breaks ties, then
// opcode order so the output is deterministic).
func (p *OpProfile) Stats() []OpStat {
	var out []OpStat
	for op := 0; op < numOps; op++ {
		if p.Counts[op] == 0 {
			continue
		}
		out = append(out, OpStat{Op: ir.Op(op), Count: p.Counts[op], Nanos: p.Nanos[op]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// String renders the profile as an aligned table.
func (p *OpProfile) String() string {
	var sb strings.Builder
	sb.WriteString("per-opcode timing attribution:\n")
	for _, s := range p.Stats() {
		avg := int64(0)
		if s.Count > 0 {
			avg = s.Nanos / s.Count
		}
		fmt.Fprintf(&sb, "  %-18s %10d ops  %12s total  %8s/op\n",
			s.Op, s.Count, time.Duration(s.Nanos), time.Duration(avg))
	}
	return sb.String()
}

// Reset zeroes the profile for reuse across runs.
func (p *OpProfile) Reset() {
	*p = OpProfile{}
}
