//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in; timing-gap
// assertions are skipped under it because its instrumentation distorts the
// relative costs being measured.
const raceEnabled = true
