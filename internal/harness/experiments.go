package harness

import (
	"fmt"
	"math"
	"strings"
	"time"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/obs"
	"positdebug/internal/parallel"
	"positdebug/internal/posit"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
	"positdebug/internal/workloads"
)

// Fig7 measures PositDebug's slowdown over the uninstrumented software-
// posit baseline at 512/256/128 bits of shadow precision, across PolyBench
// and the SPEC-like kernels (paper Figure 7).
func Fig7(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 7: PositDebug slowdown vs SoftPosit baseline (×)",
		Columns: []string{"PD-512", "PD-256", "PD-128"},
	}
	err := overheadSweep(opts, t, func(c compiled) (time.Duration, []time.Duration, error) {
		base, err := measure(opts.repeats(), func() error {
			_, err := c.pos.Run("main")
			return err
		})
		if err != nil {
			return 0, nil, err
		}
		var instr []time.Duration
		for _, prec := range []uint{512, 256, 128} {
			cfg := shadowConfig(prec, true)
			d, err := measure(opts.repeats(), func() error {
				_, err := c.pos.Exec("main", positdebug.WithShadow(cfg))
				return err
			})
			if err != nil {
				return 0, nil, err
			}
			instr = append(instr, d)
		}
		return base, instr, nil
	})
	return t, err
}

// Fig8 measures PositDebug at 256 bits with and without tracing metadata
// (paper Figure 8).
func Fig8(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 8: PositDebug-256 with vs without tracing (×)",
		Columns: []string{"tracing", "no-tracing"},
	}
	err := overheadSweep(opts, t, func(c compiled) (time.Duration, []time.Duration, error) {
		base, err := measure(opts.repeats(), func() error {
			_, err := c.pos.Run("main")
			return err
		})
		if err != nil {
			return 0, nil, err
		}
		var instr []time.Duration
		for _, tracing := range []bool{true, false} {
			cfg := shadowConfig(256, tracing)
			d, err := measure(opts.repeats(), func() error {
				_, err := c.pos.Exec("main", positdebug.WithShadow(cfg))
				return err
			})
			if err != nil {
				return 0, nil, err
			}
			instr = append(instr, d)
		}
		return base, instr, nil
	})
	return t, err
}

// Fig9 measures FPSanitizer's slowdown over the uninstrumented FP baseline
// at 512/256/128 bits (paper Figure 9).
func Fig9(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 9: FPSanitizer slowdown vs FP baseline (×)",
		Columns: []string{"FPS-512", "FPS-256", "FPS-128"},
	}
	err := overheadSweep(opts, t, func(c compiled) (time.Duration, []time.Duration, error) {
		base, err := measure(opts.repeats(), func() error {
			_, err := c.fp.Run("main")
			return err
		})
		if err != nil {
			return 0, nil, err
		}
		var instr []time.Duration
		for _, prec := range []uint{512, 256, 128} {
			cfg := shadowConfig(prec, true)
			d, err := measure(opts.repeats(), func() error {
				_, err := c.fp.Exec("main", positdebug.WithShadow(cfg))
				return err
			})
			if err != nil {
				return 0, nil, err
			}
			instr = append(instr, d)
		}
		return base, instr, nil
	})
	return t, err
}

// Fig10 measures FPSanitizer at 256 bits with and without tracing
// (paper Figure 10).
func Fig10(opts Options) (*Table, error) {
	t := &Table{
		Title:   "Figure 10: FPSanitizer-256 with vs without tracing (×)",
		Columns: []string{"tracing", "no-tracing"},
	}
	err := overheadSweep(opts, t, func(c compiled) (time.Duration, []time.Duration, error) {
		base, err := measure(opts.repeats(), func() error {
			_, err := c.fp.Run("main")
			return err
		})
		if err != nil {
			return 0, nil, err
		}
		var instr []time.Duration
		for _, tracing := range []bool{true, false} {
			cfg := shadowConfig(256, tracing)
			d, err := measure(opts.repeats(), func() error {
				_, err := c.fp.Exec("main", positdebug.WithShadow(cfg))
				return err
			})
			if err != nil {
				return 0, nil, err
			}
			instr = append(instr, d)
		}
		return base, instr, nil
	})
	return t, err
}

// overheadSweep runs one measurement function over every kernel and fills
// the table with slowdown factors. With opts.Parallel the kernels shard
// across CPUs (rows still land in kernel order; see Options.Parallel for
// why the ratios survive contention).
func overheadSweep(opts Options, t *Table, f func(compiled) (time.Duration, []time.Duration, error)) error {
	kernels := append(workloads.PolyBench(), workloads.SpecLike()...)
	workers := 1
	if opts.Parallel {
		workers = parallel.Workers(len(kernels))
	}
	rows, err := parallel.MapN(workers, len(kernels), func(i int) (Row, error) {
		k := kernels[i]
		c, err := compileBoth(k.Source(opts.size(k.DefaultN)))
		if err != nil {
			return Row{}, fmt.Errorf("%s: %w", k.Name, err)
		}
		base, instr, err := f(c)
		if err != nil {
			return Row{}, fmt.Errorf("%s: %w", k.Name, err)
		}
		vals := make([]float64, len(instr))
		for i, d := range instr {
			vals[i] = float64(d) / float64(base)
		}
		return Row{Name: k.Name, Values: vals}, nil
	})
	if err != nil {
		return err
	}
	t.Rows = append(t.Rows, rows...)
	t.FinishGeomean()
	return nil
}

// HerbgrindTable measures FPSanitizer against the Herbgrind-style runtime
// on the PolyBench kernels with small inputs (paper §5.4: "we observed
// that FPSanitizer was more than 10× faster than Herbgrind").
func HerbgrindTable(opts Options) (*Table, error) {
	t := &Table{
		Title:   "§5.4: Herbgrind-style runtime vs FPSanitizer (slowdowns over FP baseline, ×)",
		Columns: []string{"FPSanitizer", "Herbgrind", "HG/FPS"},
	}
	kernels := workloads.PolyBench()
	workers := 1
	if opts.Parallel {
		workers = parallel.Workers(len(kernels))
	}
	rows, err := parallel.MapN(workers, len(kernels), func(i int) (Row, error) {
		k := kernels[i]
		n := opts.size(k.DefaultN)
		if n > 20 {
			n = 20
		}
		c, err := compileBoth(k.Source(n))
		if err != nil {
			return Row{}, fmt.Errorf("%s: %w", k.Name, err)
		}
		base, err := measure(opts.repeats(), func() error {
			_, err := c.fp.Run("main")
			return err
		})
		if err != nil {
			return Row{}, err
		}
		cfg := shadowConfig(256, true)
		fps, err := measure(opts.repeats(), func() error {
			_, err := c.fp.Exec("main", positdebug.WithShadow(cfg))
			return err
		})
		if err != nil {
			return Row{}, err
		}
		hg, err := measure(opts.repeats(), func() error {
			_, err := c.fp.Exec("main", positdebug.WithHerbgrind(256))
			return err
		})
		if err != nil {
			return Row{}, err
		}
		return Row{Name: k.Name, Values: []float64{
			float64(fps) / float64(base), float64(hg) / float64(base), float64(hg) / float64(fps),
		}}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.FinishGeomean()
	return t, nil
}

// SoftPositBaseline measures the cost of software posit arithmetic against
// native float64 on a matrix-multiply in plain Go — the analogue of the
// paper's observation that the software posit baseline is ~11× slower than
// hardware FP. (Inside the interpreter the gap shrinks to ~1.5× because
// dispatch dominates; this native measurement isolates the arithmetic.)
func SoftPositBaseline(n int, repeats int) (ratio float64) {
	af := make([]float64, n*n)
	bf := make([]float64, n*n)
	cf := make([]float64, n*n)
	ap := make([]posit.Posit32, n*n)
	bp := make([]posit.Posit32, n*n)
	cp := make([]posit.Posit32, n*n)
	for i := range af {
		af[i] = float64(i%7) / 7
		bf[i] = float64(i%5) / 5
		ap[i] = posit.P32FromFloat64(af[i])
		bp[i] = posit.P32FromFloat64(bf[i])
	}
	fTime, _ := measure(repeats, func() error {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += af[i*n+k] * bf[k*n+j]
				}
				cf[i*n+j] = s
			}
		}
		return nil
	})
	pTime, _ := measure(repeats, func() error {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s posit.Posit32
				for k := 0; k < n; k++ {
					s = s.Add(ap[i*n+k].Mul(bp[k*n+j]))
				}
				cp[i*n+j] = s
			}
		}
		return nil
	})
	return float64(pTime) / float64(fTime)
}

// DetectionRow is one line of the §5.1 effectiveness table.
type DetectionRow struct {
	Name       string
	Detected   []shadow.Kind
	OutputBits int
	MaxOpBits  int
	DAGSize    int
	Flips      int
}

// DetectionResult aggregates the suite run like the paper's §5.1 text.
type DetectionResult struct {
	Rows []DetectionRow
	// Programs whose worst output error exceeds the thresholds the paper
	// quotes (35/45/52 bits).
	Over35, Over45, Over52 int
	// Per-kind program counts.
	WithCancellation, WithPrecisionLoss, WithFlips, WithCast, WithNaR, WithSaturation int
	// Largest DAG observed.
	LargestDAG int
}

// detectionOutcome carries one program's row plus the summary it was built
// from, so aggregation can stay in the deterministic sequential tail. When
// tracing, events holds the program's buffered event stream, merged into
// the sink in suite order after the parallel phase.
type detectionOutcome struct {
	row    DetectionRow
	sum    *shadow.Summary
	events []obs.Event
}

// RunDetection executes the whole 32-program suite under PositDebug and
// aggregates detections (the §5.1 table). The programs are independent, so
// they shard across CPUs; rows are merged in suite order and detection
// kinds listed in enum order, making the table byte-identical to a
// sequential run.
func RunDetection() (*DetectionResult, error) {
	return RunDetectionOn(backend.Default, nil, nil)
}

// RunDetectionObs is RunDetection with observability attached: each
// program's shadow events (run framing plus detections) are staged in a
// per-case buffer and drained into sink in suite order, with Run stamped
// to the suite index. Because events carry no timestamps and sequence
// numbers are assigned by the terminal sink at merge time, the stream is
// byte-identical no matter how the suite shards across CPUs. A nil sink
// disables tracing; a nil registry disables metrics. Either may be set
// independently.
func RunDetectionObs(sink obs.Sink, reg *obs.Registry) (*DetectionResult, error) {
	return RunDetectionOn(backend.Default, sink, reg)
}

// RunDetectionOn is RunDetectionObs pinned to one execution backend. The
// suite's rows, summaries and event streams are byte-identical across
// backends (the backend differential tests depend on it); the knob exists
// so pdbench can time the suite on each backend.
func RunDetectionOn(bk backend.Kind, sink obs.Sink, reg *obs.Registry) (*DetectionResult, error) {
	return RunDetectionOracle(bk, oracle.BigFP, sink, reg)
}

// RunDetectionOracle is RunDetectionOn with the shadow-arithmetic oracle
// pinned — the cross-oracle differential suite and pdbench's per-oracle
// timing both drive the full §5.1 suite through this entry point.
func RunDetectionOracle(bk backend.Kind, kind oracle.Kind, sink obs.Sink, reg *obs.Registry) (*DetectionResult, error) {
	suite := workloads.Suite()
	if sink != nil {
		e := obs.NewEvent(obs.EvCampaignStart)
		e.Name = "detection-suite"
		sink.Emit(e)
	}
	outcomes, err := parallel.Map(len(suite), func(i int) (detectionOutcome, error) {
		p := suite[i]
		src := p.Source
		if p.FromFP {
			var err error
			src, err = positdebug.RefactorToPosit(src)
			if err != nil {
				return detectionOutcome{}, fmt.Errorf("%s: %w", p.Name, err)
			}
		}
		prog, err := positdebug.Compile(src)
		if err != nil {
			return detectionOutcome{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		cfg := shadow.ConfigFor(kind, 0)
		cfg.ErrBitsThreshold = 35
		cfg.OutputThreshold = 35
		cfg.PrecisionLossThreshold = 8
		opts := []positdebug.Option{positdebug.WithShadow(cfg), positdebug.WithBackend(bk)}
		var buf *obs.Buffer
		if sink != nil {
			buf = &obs.Buffer{}
			opts = append(opts, positdebug.WithTrace(buf))
		}
		if reg != nil {
			opts = append(opts, positdebug.WithMetrics(reg))
		}
		res, err := prog.Exec("main", opts...)
		if err != nil {
			return detectionOutcome{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		sum := res.Summary
		row := DetectionRow{
			Name:       p.Name,
			OutputBits: sum.OutputMaxErrBits,
			MaxOpBits:  sum.MaxOpErrBits,
			Flips:      sum.BranchFlips,
		}
		for k := shadow.KindCancellation; k <= shadow.KindWrongOutput; k++ {
			if sum.Counts[k] > 0 {
				row.Detected = append(row.Detected, k)
			}
		}
		for _, r := range sum.Reports {
			if s := r.DAG.Size(); s > row.DAGSize {
				row.DAGSize = s
			}
		}
		oc := detectionOutcome{row: row, sum: sum}
		if buf != nil {
			oc.events = append([]obs.Event(nil), buf.Events()...)
		}
		return oc, nil
	})
	if err != nil {
		return nil, err
	}

	out := &DetectionResult{}
	for i, oc := range outcomes {
		if sink != nil {
			for _, e := range oc.events {
				e.Run = i
				sink.Emit(e)
			}
		}
		row, sum := oc.row, oc.sum
		out.Rows = append(out.Rows, row)

		worst := row.OutputBits
		if row.MaxOpBits > worst {
			worst = row.MaxOpBits
		}
		if worst > 35 {
			out.Over35++
		}
		if worst > 45 {
			out.Over45++
		}
		if worst > 52 {
			out.Over52++
		}
		if sum.Has(shadow.KindCancellation) {
			out.WithCancellation++
		}
		if sum.Has(shadow.KindPrecisionLoss) {
			out.WithPrecisionLoss++
		}
		if sum.BranchFlips > 0 {
			out.WithFlips++
		}
		if sum.Has(shadow.KindWrongCast) {
			out.WithCast++
		}
		if sum.Has(shadow.KindNaR) {
			out.WithNaR++
		}
		if sum.Has(shadow.KindSaturation) {
			out.WithSaturation++
		}
		if row.DAGSize > out.LargestDAG {
			out.LargestDAG = row.DAGSize
		}
	}
	if sink != nil {
		e := obs.NewEvent(obs.EvCampaignEnd)
		e.Name = "detection-suite"
		sink.Emit(e)
	}
	return out, nil
}

// String renders the detection table plus the paper-style aggregate line.
func (d *DetectionResult) String() string {
	var sb strings.Builder
	sb.WriteString("§5.1 detection table (32-program suite, PositDebug ⟨32,2⟩, 256-bit shadow)\n")
	fmt.Fprintf(&sb, "%-22s %8s %8s %6s %5s  %s\n", "program", "out-bits", "op-bits", "dag", "flips", "detections")
	for _, r := range d.Rows {
		kinds := make([]string, len(r.Detected))
		for i, k := range r.Detected {
			kinds[i] = k.String()
		}
		fmt.Fprintf(&sb, "%-22s %8d %8d %6d %5d  %s\n",
			r.Name, r.OutputBits, r.MaxOpBits, r.DAGSize, r.Flips, strings.Join(kinds, ","))
	}
	fmt.Fprintf(&sb, "\nprograms with error > 35 bits: %d   > 45 bits: %d   > 52 bits: %d\n",
		d.Over35, d.Over45, d.Over52)
	fmt.Fprintf(&sb, "cancellation: %d   precision loss: %d   branch flips: %d   int casts: %d   NaR: %d   saturation: %d\n",
		d.WithCancellation, d.WithPrecisionLoss, d.WithFlips, d.WithCast, d.WithNaR, d.WithSaturation)
	fmt.Fprintf(&sb, "largest DAG: %d instructions\n", d.LargestDAG)
	return sb.String()
}

// geomeanOf is exposed for the ablation benches.
func geomeanOf(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// KernelErrorRow reports the worst observed error when a benchmark kernel
// runs (as a posit program) under PositDebug.
type KernelErrorRow struct {
	Name       string
	OutputBits int
	MaxOpBits  int
	Flagged    bool // any op or output at/above the threshold
}

// KernelErrors runs every PolyBench and SPEC-like kernel (posit versions)
// under PositDebug and reports which exhibit numerical errors — the
// paper's §5.1 note "we also observed numerical errors in six PolyBench
// and all the SPEC-FP applications".
func KernelErrors(opts Options, thresholdBits int) ([]KernelErrorRow, error) {
	kernels := append(workloads.PolyBench(), workloads.SpecLike()...)
	return parallel.Map(len(kernels), func(i int) (KernelErrorRow, error) {
		k := kernels[i]
		c, err := compileBoth(k.Source(opts.size(k.DefaultN)))
		if err != nil {
			return KernelErrorRow{}, fmt.Errorf("%s: %w", k.Name, err)
		}
		cfg := shadow.DefaultConfig()
		cfg.ErrBitsThreshold = thresholdBits
		cfg.OutputThreshold = thresholdBits
		cfg.MaxReports = 1
		res, err := c.pos.Exec("main", positdebug.WithShadow(cfg))
		if err != nil {
			return KernelErrorRow{}, fmt.Errorf("%s: %w", k.Name, err)
		}
		worst := res.Summary.MaxOpErrBits
		if res.Summary.OutputMaxErrBits > worst {
			worst = res.Summary.OutputMaxErrBits
		}
		return KernelErrorRow{
			Name:       k.Name,
			OutputBits: res.Summary.OutputMaxErrBits,
			MaxOpBits:  res.Summary.MaxOpErrBits,
			Flagged:    worst >= thresholdBits,
		}, nil
	})
}

// FormatKernelErrors renders the kernel error table.
func FormatKernelErrors(rows []KernelErrorRow, thresholdBits int) string {
	var sb strings.Builder
	flagged := 0
	for _, r := range rows {
		if r.Flagged {
			flagged++
		}
	}
	fmt.Fprintf(&sb, "Kernels showing ≥ %d bits of error under PositDebug: %d of %d\n",
		thresholdBits, flagged, len(rows))
	fmt.Fprintf(&sb, "%-16s %10s %10s %8s\n", "kernel", "out-bits", "op-bits", "flagged")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10d %10d %8v\n", r.Name, r.OutputBits, r.MaxOpBits, r.Flagged)
	}
	return sb.String()
}
