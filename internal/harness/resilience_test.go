package harness

import (
	"strings"
	"testing"
)

func TestResilienceQuick(t *testing.T) {
	tbl, err := Resilience([]string{"polybench/gemm"}, ResilienceOptions{
		Options: Options{Quick: true},
		Runs:    10,
		Seed:    1,
	})
	if err != nil {
		t.Fatalf("resilience: %v", err)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0].Values) != 6 {
		t.Fatalf("want 1 row × 6 columns, got %+v", tbl.Rows)
	}
	// Each architecture's det+sdc+mask percentages cover the non-crashed,
	// non-hung runs — at most 100% per arch.
	for arch := 0; arch < 2; arch++ {
		sum := 0.0
		for c := 0; c < 3; c++ {
			sum += tbl.Rows[0].Values[arch*3+c]
		}
		if sum < 0 || sum > 100.0001 {
			t.Fatalf("arch %d percentages sum to %f", arch, sum)
		}
	}
	out := tbl.String()
	if !strings.Contains(out, "gemm") || !strings.Contains(out, "P det%") {
		t.Fatalf("table missing content:\n%s", out)
	}
}
