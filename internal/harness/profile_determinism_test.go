package harness

import (
	"bytes"
	"testing"

	"positdebug/internal/obs"
	"positdebug/internal/profile"
)

// recordAt runs one profiling sweep at a worker count and returns the
// canonical profile bytes and the Chrome-trace bytes.
func recordAt(t *testing.T, workers, sample int) ([]byte, []byte) {
	t.Helper()
	buf := &obs.SeqBuffer{}
	p, err := RecordProfile(ProfileOptions{
		Kernel:  "gemm",
		N:       8,
		Posit:   true,
		Runs:    4,
		Workers: workers,
		Sample:  sample,
		Trace:   buf,
	})
	if err != nil {
		t.Fatalf("RecordProfile(workers=%d, sample=%d): %v", workers, sample, err)
	}
	var pj bytes.Buffer
	if err := p.WriteJSON(&pj); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tj bytes.Buffer
	if err := obs.WriteChromeTrace(&tj, buf.Events()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	return pj.Bytes(), tj.Bytes()
}

// TestProfileParallelDeterminism: the merged profile and the Chrome trace
// of a profiling sweep are byte-identical whether the runs execute on one
// worker or shard across four — each worker owns a private collector,
// per-run events are drained in run-index order, and the collector merge
// is commutative. The name matches the ParallelDeterminism filter `make
// race` runs under -race -cpu=1,4.
func TestProfileParallelDeterminism(t *testing.T) {
	for _, sample := range []int{1, 16} {
		seqP, seqT := recordAt(t, 1, sample)
		parP, parT := recordAt(t, 4, sample)
		if !bytes.Equal(seqP, parP) {
			t.Errorf("sample=%d: parallel profile diverged from sequential (%d vs %d bytes)",
				sample, len(seqP), len(parP))
		}
		if !bytes.Equal(seqT, parT) {
			t.Errorf("sample=%d: parallel Chrome trace diverged from sequential (%d vs %d bytes)",
				sample, len(seqT), len(parT))
		}
		if n, err := obs.ValidateChromeTrace(bytes.NewReader(seqT)); err != nil {
			t.Errorf("sample=%d: Chrome trace invalid: %v", sample, err)
		} else if n == 0 {
			t.Errorf("sample=%d: Chrome trace has no events", sample)
		}
	}
}

// TestProfileTopRanks: a recorded profile names instructions with source
// positions and ranks them by aggregate error.
func TestProfileTopRanks(t *testing.T) {
	p, err := RecordProfile(ProfileOptions{Kernel: "gemm", N: 8, Posit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Insts) == 0 {
		t.Fatal("profile recorded no instructions")
	}
	top := p.Top(5)
	if len(top) == 0 {
		t.Fatal("Top(5) empty")
	}
	for i := 1; i < len(top); i++ {
		if top[i].ErrSum > top[i-1].ErrSum {
			t.Fatalf("Top not sorted by ErrSum: %d before %d", top[i-1].ErrSum, top[i].ErrSum)
		}
	}
	for _, ip := range top {
		if ip.Pos == "" || ip.Func == "" {
			t.Fatalf("instruction %d missing position metadata: %+v", ip.ID, ip)
		}
	}
	var rendered bytes.Buffer
	if err := p.WriteTop(&rendered, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(rendered.Bytes(), []byte("gemm:")) {
		t.Fatalf("WriteTop output lacks source positions:\n%s", rendered.String())
	}
}

// TestProfileSampledSubset: a sampled profile checks a strict subset of
// the full profile's dynamic instances but still sees every static
// instruction at least once (first instance always shadowed).
func TestProfileSampledSubset(t *testing.T) {
	full, err := RecordProfile(ProfileOptions{Kernel: "gemm", N: 8, Posit: true})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := RecordProfile(ProfileOptions{Kernel: "gemm", N: 8, Posit: true, Sample: 16})
	if err != nil {
		t.Fatal(err)
	}
	if sampled.SampleEvery != 16 {
		t.Fatalf("SampleEvery = %d, want 16", sampled.SampleEvery)
	}
	fullByID := map[int32]*profile.InstProfile{}
	var fullChecked, sampChecked int64
	for _, ip := range full.Insts {
		fullByID[ip.ID] = ip
		fullChecked += ip.Checked
	}
	for _, ip := range sampled.Insts {
		sampChecked += ip.Checked
		fp, ok := fullByID[ip.ID]
		if !ok {
			t.Fatalf("sampled profile has instruction %d absent from full profile", ip.ID)
		}
		if ip.Count != fp.Count {
			t.Errorf("inst %d: dynamic count %d under sampling, %d full — counts must not be sampled",
				ip.ID, ip.Count, fp.Count)
		}
		if ip.Checked == 0 && ip.Count > 0 {
			t.Errorf("inst %d: never checked despite %d instances (first must be sampled)", ip.ID, ip.Count)
		}
	}
	if sampChecked >= fullChecked {
		t.Fatalf("sampling checked %d ops, full shadow %d — expected a reduction", sampChecked, fullChecked)
	}
}
