package harness

import (
	"context"
	"fmt"

	"positdebug/internal/profile"
	"positdebug/internal/shadow/oracle"
)

// ProfileShardVersion guards the coordinator↔worker profile-shard exchange
// format, mirroring faultinject.ShardVersion for campaigns.
const ProfileShardVersion = 1

// ProfileShard asks a worker for one slice of a profiling sweep: Runs
// executions of a kernel under the given sampling stride and precision.
// Because every run of a kernel is identical and deterministic, and
// profile.Merge is commutative with Runs additive, shards of any size
// merge into the same canonical bytes a single-process sweep produces.
// Timing is deliberately absent: latency histograms are nondeterministic
// and would break the fabric's byte-identity contract.
type ProfileShard struct {
	Version   int    `json:"version"`
	Kernel    string `json:"kernel"`
	N         int    `json:"n,omitempty"`
	Posit     bool   `json:"posit,omitempty"`
	Runs      int    `json:"runs"`
	Sample    int    `json:"sample,omitempty"`
	Precision uint   `json:"precision,omitempty"`
	Oracle    string `json:"oracle,omitempty"` // non-bigfp shadow backend, if any
}

// Validate rejects malformed or version-skewed profile-shard requests.
func (p ProfileShard) Validate() error {
	if p.Version != ProfileShardVersion {
		return fmt.Errorf("harness: profile shard version %d, this worker speaks %d", p.Version, ProfileShardVersion)
	}
	if p.Kernel == "" {
		return fmt.Errorf("harness: profile shard names no kernel")
	}
	if p.Runs <= 0 {
		return fmt.Errorf("harness: profile shard asks for %d runs", p.Runs)
	}
	return nil
}

// RunProfileShard executes one profile shard and returns the merged
// per-instruction profile for its runs.
func RunProfileShard(ctx context.Context, p ProfileShard) (*profile.Profile, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return RecordProfileContext(ctx, ProfileOptions{
		Kernel: p.Kernel, N: p.N, Posit: p.Posit,
		Runs: p.Runs, Sample: p.Sample, Precision: p.Precision,
		Oracle: oracle.Kind(p.Oracle),
	})
}
