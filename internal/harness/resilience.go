package harness

import (
	"fmt"
	"strings"

	"positdebug/internal/faultinject"
	"positdebug/internal/workloads"
)

// ResilienceOptions sizes a fault-injection sweep across the benchmark
// suite.
type ResilienceOptions struct {
	Options
	// Runs is the number of fault-injected runs per kernel per
	// architecture (default 50; Quick halves it).
	Runs int
	// Seed drives the whole sweep.
	Seed int64
	// Model is the fault model (zero value = single random bit flip per
	// run at a uniformly drawn site).
	Model faultinject.Model
}

func (o ResilienceOptions) runs() int {
	r := o.Runs
	if r <= 0 {
		r = 50
	}
	if o.Quick {
		r /= 2
		if r < 10 {
			r = 10
		}
	}
	return r
}

// Resilience runs a posit-vs-float fault-injection campaign over the named
// workloads and tabulates, per architecture, the fraction of faults the
// shadow oracle detects, the silent-data-corruption fraction, and the
// masked fraction — the experiment the paper's detectors enable but its
// evaluation stops short of.
func Resilience(names []string, opts ResilienceOptions) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Fault resilience under single bit flips (%d runs/arch, oracle = shadow execution)", opts.runs()),
		Columns: []string{
			"P det%", "P sdc%", "P mask%",
			"F det%", "F sdc%", "F mask%",
		},
	}
	for _, name := range names {
		cfg := faultinject.CampaignConfig{
			Workload: name,
			Arch:     "both",
			Runs:     opts.runs(),
			Seed:     opts.Seed,
			Model:    opts.Model,
		}
		if !opts.Quick {
			// Full-size kernels, matching the timing experiments.
			if k, ok := workloads.KernelByName(trimGroup(name)); ok {
				cfg.N = k.DefaultN
			}
		}
		rep, err := faultinject.RunCampaign(cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: resilience %s: %w", name, err)
		}
		row := make([]float64, 0, 6)
		for _, a := range rep.Arches {
			tot := a.Totals
			pct := func(n int) float64 {
				if tot.Runs == 0 {
					return 0
				}
				return 100 * float64(n) / float64(tot.Runs)
			}
			row = append(row, pct(tot.Detected), pct(tot.SDC), pct(tot.Masked))
		}
		t.AddRow(name, row...)
	}
	t.FinishGeomean()
	return t, nil
}

// trimGroup strips the "polybench/" or "spec/" prefix of a workload spec.
func trimGroup(spec string) string {
	if i := strings.IndexByte(spec, '/'); i >= 0 {
		return spec[i+1:]
	}
	return spec
}
