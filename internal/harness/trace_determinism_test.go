package harness

import (
	"bytes"
	"runtime"
	"testing"

	"positdebug/internal/obs"
	"positdebug/internal/shadow"
)

// TestDetectionTraceParallelDeterminism: the §5.1 detection suite's event
// stream is byte-identical whether the 32 programs run on one CPU or
// shard across four. Each program's events are staged in a private buffer
// during the parallel phase and drained into the terminal sink in suite
// order, so scheduling cannot reorder the stream; events carry no
// timestamps and the sink assigns sequence numbers at merge time.
func TestDetectionTraceParallelDeterminism(t *testing.T) {
	runAt := func(procs int) (string, int) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		var out bytes.Buffer
		sink := obs.NewJSONLines(&out)
		if _, err := RunDetectionObs(sink, nil); err != nil {
			t.Fatalf("detection suite at GOMAXPROCS=%d: %v", procs, err)
		}
		if sink.Err() != nil {
			t.Fatalf("sink error: %v", sink.Err())
		}
		return out.String(), int(sink.Count())
	}
	seq, nSeq := runAt(1)
	par, nPar := runAt(4)
	if seq != par {
		t.Fatalf("parallel detection trace diverged from sequential (%d vs %d events)", nSeq, nPar)
	}
	n, err := obs.ValidateJSONLines(bytes.NewReader([]byte(seq)))
	if err != nil {
		t.Fatalf("trace schema: %v", err)
	}
	// Campaign framing plus at least run-start/run-end per suite program,
	// and the suite is known to produce detections on top of that.
	if want := 2 + 2*32; n < want {
		t.Fatalf("trace has %d events, want at least %d", n, want)
	}
	if !bytes.Contains([]byte(seq), []byte(`"kind":"detection"`)) {
		t.Fatalf("no detection events in suite trace")
	}
}

// TestDetectionObsMetrics: running the suite with a registry populates the
// shared counters; the same registry is safe to bind across the parallel
// workers because every update is an atomic add.
func TestDetectionObsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := RunDetectionObs(nil, reg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("pd_runs_total").Value(); got < 32 {
		t.Fatalf("pd_runs_total = %d, want >= 32", got)
	}
	if got := reg.Counter("pd_shadow_ops_total").Value(); got == 0 {
		t.Fatalf("pd_shadow_ops_total = 0, want > 0")
	}
	var dets int64
	for k := shadow.KindCancellation; k <= shadow.KindWrongOutput; k++ {
		dets += reg.Counter(`pd_detections_total{kind="` + k.String() + `"}`).Value()
	}
	if dets == 0 {
		t.Fatalf("no detections counted across the suite")
	}
}
