package harness

import (
	"fmt"
	"strings"

	positdebug "positdebug"
	"positdebug/internal/herbgrind"
	"positdebug/internal/instrument"
	"positdebug/internal/interp"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
)

// MemoryRow is one input size's metadata footprint comparison.
type MemoryRow struct {
	Iterations  int
	DynamicOps  uint64
	ShadowPages int // PositDebug: shadow-memory pages (constant per footprint)
	HerbNodes   int // Herbgrind-style: trace nodes (grows with dynamic ops)
}

// MemoryGrowth demonstrates the paper's central design claim: PositDebug's
// metadata is constant per memory location (shadow pages track the
// program's footprint, not its running time), while the Herbgrind-style design
// accumulates metadata per dynamic instruction. The workload reruns the
// same accumulation loop at growing iteration counts over a fixed-size
// memory footprint.
func MemoryGrowth(iterCounts []int) ([]MemoryRow, error) {
	const src = `
var acc: [16]p32;

func main(n: i64): p32 {
	for (var i: i64 = 0; i < 16; i += 1) {
		acc[i] = 0.0;
	}
	for (var it: i64 = 0; it < n; it += 1) {
		for (var i: i64 = 0; i < 16; i += 1) {
			acc[i] = acc[i] + 1.0625;
		}
	}
	var s: p32 = 0.0;
	for (var i: i64 = 0; i < 16; i += 1) {
		s = s + acc[i];
	}
	return s;
}
`
	prog, err := positdebug.Compile(src)
	if err != nil {
		return nil, err
	}
	inst := instrument.Instrument(prog.Module, instrument.Options{})
	var rows []MemoryRow
	for _, n := range iterCounts {
		// PositDebug runtime (bigfp oracle at 128 bits, the paper's
		// memory-measurement configuration).
		scfg := shadow.Config{Tracing: true, MaxReports: 1}.ForOracle(oracle.BigFP, 128)
		rt, err := shadow.New(inst, scfg)
		if err != nil {
			return nil, err
		}
		m := interp.New(inst)
		m.Hooks = rt
		if _, err := m.Run("main", uint64(n)); err != nil {
			return nil, err
		}
		sum := rt.Summary()
		// Herbgrind-style runtime on the same program.
		hg := herbgrind.New(inst, 128)
		m2 := interp.New(inst)
		m2.Hooks = hg
		if _, err := m2.Run("main", uint64(n)); err != nil {
			return nil, err
		}
		rows = append(rows, MemoryRow{
			Iterations:  n,
			DynamicOps:  sum.TotalOps,
			ShadowPages: rt.ShadowMemPages(),
			HerbNodes:   hg.TraceNodes(),
		})
	}
	return rows, nil
}

// FormatMemoryRows renders the comparison.
func FormatMemoryRows(rows []MemoryRow) string {
	var sb strings.Builder
	sb.WriteString("Metadata growth: constant-size (PositDebug) vs per-dynamic-op (Herbgrind-style)\n")
	fmt.Fprintf(&sb, "%12s %14s %18s %18s\n", "iterations", "dynamic ops", "PD shadow pages", "HG trace nodes")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%12d %14d %18d %18d\n", r.Iterations, r.DynamicOps, r.ShadowPages, r.HerbNodes)
	}
	return sb.String()
}
