package harness

import (
	"strings"
	"testing"

	"positdebug/internal/shadow"
)

var quick = Options{Quick: true, Repeats: 1}

// TestFig7Shape: the PositDebug slowdowns must be >1 and ordered
// 512 ≥ 128 at the geomean (the paper's precision scaling).
func TestFig7Shape(t *testing.T) {
	tbl, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 26 {
		t.Fatalf("expected 26 kernels, got %d", len(tbl.Rows))
	}
	if tbl.Geomean[0] <= 1 || tbl.Geomean[1] <= 1 || tbl.Geomean[2] <= 1 {
		t.Fatalf("slowdowns must exceed 1×: %v", tbl.Geomean)
	}
	if tbl.Geomean[0] < tbl.Geomean[2]*0.95 {
		t.Fatalf("512-bit should not be materially faster than 128-bit: %v", tbl.Geomean)
	}
	s := tbl.String()
	if !strings.Contains(s, "gemm") || !strings.Contains(s, "geomean") {
		t.Fatalf("table rendering:\n%s", s)
	}
}

// TestFig9Shape: FPSanitizer overheads exceed PositDebug's relative
// overheads (the FP baseline is faster, so shadowing costs more
// relatively) — the qualitative relation between Figures 7 and 9.
func TestFig9Shape(t *testing.T) {
	t9, err := Fig9(quick)
	if err != nil {
		t.Fatal(err)
	}
	if t9.Geomean[1] <= 1 {
		t.Fatalf("FPSanitizer slowdown must exceed 1×: %v", t9.Geomean)
	}
}

// TestHerbgrindGap: the Herbgrind-style runtime must be several times
// slower than FPSanitizer (the paper reports >10× on its testbed).
func TestHerbgrindGap(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timing gap")
	}
	tbl, err := HerbgrindTable(quick)
	if err != nil {
		t.Fatal(err)
	}
	ratio := tbl.Geomean[2]
	if ratio < 2 {
		t.Fatalf("Herbgrind-style runtime only %.1f× slower than FPSanitizer; expected a large gap", ratio)
	}
}

// TestSoftPositBaseline: software posit arithmetic must be much slower
// than native float64 (the paper's 11×; ours is Go-native vs Go-posit).
func TestSoftPositBaseline(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation distorts the timing gap")
	}
	ratio := SoftPositBaseline(40, 2)
	if ratio < 3 {
		t.Fatalf("software posit only %.1f× slower than native float64", ratio)
	}
}

// TestDetectionAggregates: the §5.1 run must detect errors in all 32
// programs and cover every error class.
func TestDetectionAggregates(t *testing.T) {
	d, err := RunDetection()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) != 32 {
		t.Fatalf("32 programs expected, got %d", len(d.Rows))
	}
	for _, r := range d.Rows {
		if len(r.Detected) == 0 && r.OutputBits < 35 && r.MaxOpBits < 35 && r.Flips == 0 {
			t.Fatalf("program %s shows no detections at all", r.Name)
		}
	}
	if d.Over35 < 20 {
		t.Fatalf("only %d programs over 35 bits; the suite should be error-rich", d.Over35)
	}
	if d.WithCancellation < 10 {
		t.Fatalf("cancellation count %d too low", d.WithCancellation)
	}
	if d.WithFlips < 3 || d.WithNaR < 2 || d.WithSaturation < 2 || d.WithCast < 1 || d.WithPrecisionLoss < 4 {
		t.Fatalf("class coverage: flips=%d nar=%d sat=%d cast=%d lp=%d",
			d.WithFlips, d.WithNaR, d.WithSaturation, d.WithCast, d.WithPrecisionLoss)
	}
	if d.LargestDAG < 5 {
		t.Fatalf("largest DAG %d too small", d.LargestDAG)
	}
	s := d.String()
	if !strings.Contains(s, "largest DAG") {
		t.Fatal("render")
	}
}

// TestCaseStudies: all four §5.2 case studies run and report.
func TestCaseStudies(t *testing.T) {
	rc, err := RunRootCount()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rc.String(), "branch flips: 1") && !strings.Contains(rc.String(), "branch flips") {
		t.Fatalf("rootcount case: %s", rc)
	}
	cd, err := RunCordic(1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cd.String(), "relative error") {
		t.Fatalf("cordic case: %s", cd)
	}
	sp, err := RunSimpson(2000)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sp.String(), "quire fused") {
		t.Fatalf("simpson case: %s", sp)
	}
	qd, err := RunQuadratic()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qd.String(), "worst output error") {
		t.Fatalf("quadratic case: %s", qd)
	}
}

// TestTableGeomean sanity.
func TestTableGeomean(t *testing.T) {
	tbl := &Table{Columns: []string{"a"}}
	tbl.AddRow("x", 2)
	tbl.AddRow("y", 8)
	tbl.FinishGeomean()
	if tbl.Geomean[0] != 4 {
		t.Fatalf("geomean = %v", tbl.Geomean)
	}
	if g := geomeanOf([]float64{2, 8}); g != 4 {
		t.Fatalf("geomeanOf = %v", g)
	}
}

var _ = shadow.KindNone

// TestMemoryGrowth: PositDebug's shadow pages stay constant while the
// Herbgrind-style trace metadata grows with iteration count.
func TestMemoryGrowth(t *testing.T) {
	rows, err := MemoryGrowth([]int{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ShadowPages != rows[2].ShadowPages {
		t.Fatalf("PositDebug shadow pages must not grow with iterations: %+v", rows)
	}
	if rows[2].HerbNodes < rows[0].HerbNodes*20 {
		t.Fatalf("Herbgrind-style nodes must grow ~linearly: %+v", rows)
	}
	if rows[2].DynamicOps <= rows[0].DynamicOps {
		t.Fatal("op counts must grow")
	}
	if !strings.Contains(FormatMemoryRows(rows), "shadow pages") {
		t.Fatal("render")
	}
}

// TestCordicAccuracySweep reproduces the §5.2.1 claim: the posit CORDIC
// sin is at least as accurate as the identical float32 implementation on
// the overwhelming majority of [0, π/2].
func TestCordicAccuracySweep(t *testing.T) {
	row := CordicAccuracy(1000, 0, 1.5707963267948966)
	pct := float64(row.PositBetter+row.Ties) / float64(row.Samples)
	if pct < 0.85 {
		t.Fatalf("posit at least as accurate on only %.1f%% (paper: 97%%): %s", pct*100, row)
	}
	if !strings.Contains(row.String(), "accuracy") {
		t.Fatal("render")
	}
}

// TestKernelErrors: running the benchmark kernels as posit programs shows
// numerical error in a substantial subset (the paper: six PolyBench and
// all SPEC applications).
func TestKernelErrors(t *testing.T) {
	rows, err := KernelErrors(quick, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 26 {
		t.Fatalf("kernels: %d", len(rows))
	}
	flagged := 0
	specFlagged := 0
	for _, r := range rows {
		if r.Flagged {
			flagged++
			if strings.HasPrefix(r.Name, "spec_") {
				specFlagged++
			}
		}
	}
	if flagged < 6 {
		t.Fatalf("only %d kernels flagged; the paper observed errors broadly", flagged)
	}
	if specFlagged < 3 {
		t.Fatalf("only %d SPEC-like kernels flagged", specFlagged)
	}
	if !strings.Contains(FormatKernelErrors(rows, 35), "flagged") {
		t.Fatal("render")
	}
}
