package harness

import (
	"fmt"
	"math"
	"strings"

	positdebug "positdebug"
	"positdebug/internal/cordic"
	"positdebug/internal/posit"
	"positdebug/internal/shadow"
	"positdebug/internal/workloads"
)

// CaseResult is the outcome of one §5.2 case study, formatted for display.
type CaseResult struct {
	Title   string
	Lines   []string
	Reports []*shadow.Report
}

// String renders the case study output.
func (c *CaseResult) String() string {
	var sb strings.Builder
	sb.WriteString(c.Title + "\n")
	for _, l := range c.Lines {
		sb.WriteString("  " + l + "\n")
	}
	for i, r := range c.Reports {
		if i >= 3 {
			fmt.Fprintf(&sb, "  … and %d more reports\n", len(c.Reports)-i)
			break
		}
		sb.WriteString(indentLines(r.String(), "  ") + "\n")
	}
	return sb.String()
}

func indentLines(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

// RunRootCount reproduces Figure 2/5: detection of the catastrophic
// cancellation in the discriminant and the resulting branch flip, with the
// DAG of responsible instructions.
func RunRootCount() (*CaseResult, error) {
	prog, err := positdebug.Compile(workloads.RootCountSource)
	if err != nil {
		return nil, err
	}
	res, err := prog.Exec("main", positdebug.WithShadow(shadow.DefaultConfig()))
	if err != nil {
		return nil, err
	}
	out := &CaseResult{Title: "Case study: RootCount (Figure 2)"}
	out.Lines = append(out.Lines,
		fmt.Sprintf("program result: %d root(s) — exact arithmetic gives 2", res.I64()),
		fmt.Sprintf("branch flips: %d, cancellation events: %d",
			res.Summary.BranchFlips, res.Summary.Counts[shadow.KindCancellation]))
	out.Reports = res.Summary.Reports
	return out, nil
}

// RunCordic reproduces §5.2.1: the CORDIC sin implementation run under
// PositDebug for θ = 1e−8 — large relative error, branch flips in the z
// recurrence, error accumulation in y.
func RunCordic(theta float64) (*CaseResult, error) {
	prog, err := positdebug.Compile(workloads.CordicSinSource(theta))
	if err != nil {
		return nil, err
	}
	cfg := shadow.DefaultConfig()
	cfg.OutputThreshold = 40
	res, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		return nil, err
	}
	got := res.P32()
	want := math.Sin(theta)
	rel := math.Abs(got-want) / math.Abs(want)
	out := &CaseResult{Title: fmt.Sprintf("Case study: CORDIC sin(%g) (§5.2.1)", theta)}
	out.Lines = append(out.Lines,
		fmt.Sprintf("posit CORDIC result: %.6g   libm oracle: %.6g   relative error: %.4f", got, want, rel),
		fmt.Sprintf("branch flips in the z recurrence: %d", res.Summary.BranchFlips),
		fmt.Sprintf("worst op error: %d bits, worst output error: %d bits",
			res.Summary.MaxOpErrBits, res.Summary.OutputMaxErrBits))
	out.Reports = res.Summary.Reports
	return out, nil
}

// RunSimpson reproduces §5.2.2: naive accumulation vs the quire fix.
func RunSimpson(n int) (*CaseResult, error) {
	naive, err := positdebug.Compile(workloads.SimpsonSource(n, false))
	if err != nil {
		return nil, err
	}
	fused, err := positdebug.Compile(workloads.SimpsonSource(n, true))
	if err != nil {
		return nil, err
	}
	cfg := shadow.DefaultConfig()
	resN, err := naive.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		return nil, err
	}
	resF, err := fused.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		return nil, err
	}
	a := 13223113.0
	b := a + float64(n)
	exact := (b*b*b - a*a*a) / 3
	out := &CaseResult{Title: fmt.Sprintf("Case study: Simpson's rule, n=%d (§5.2.2)", n)}
	out.Lines = append(out.Lines,
		fmt.Sprintf("exact integral:        %.10e", exact),
		fmt.Sprintf("naive accumulation:    %.10e  (rel err %.2e, %d output error bits)",
			resN.P32(), math.Abs(resN.P32()-exact)/exact, resN.Summary.OutputMaxErrBits),
		fmt.Sprintf("quire fused (the fix): %.10e  (rel err %.2e, %d output error bits)",
			resF.P32(), math.Abs(resF.P32()-exact)/exact, resF.Summary.OutputMaxErrBits))
	out.Reports = resN.Summary.Reports
	return out, nil
}

// RunQuadratic reproduces §5.2.3: both roots with the paper's inputs —
// cancellation on the first root, regime-driven precision loss on the
// division for the second.
func RunQuadratic() (*CaseResult, error) {
	prog, err := positdebug.Compile(workloads.QuadraticSource)
	if err != nil {
		return nil, err
	}
	cfg := shadow.DefaultConfig()
	cfg.PrecisionLossThreshold = 5
	cfg.OutputThreshold = 30
	res, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		return nil, err
	}
	out := &CaseResult{Title: "Case study: quadratic roots (§5.2.3)"}
	out.Lines = append(out.Lines,
		"program output:",
	)
	for _, l := range strings.Split(strings.TrimSpace(res.Output), "\n") {
		out.Lines = append(out.Lines, "  "+l)
	}
	out.Lines = append(out.Lines,
		fmt.Sprintf("worst output error: %d bits (the paper reports 48 and 36 bits on the two roots)",
			res.Summary.OutputMaxErrBits),
		fmt.Sprintf("precision-loss events: %d", res.Summary.Counts[shadow.KindPrecisionLoss]))
	out.Reports = res.Summary.Reports
	return out, nil
}

// AccuracyRow summarizes the §5.2.1 accuracy comparison between the posit
// and float32 CORDIC sine over sampled inputs.
type AccuracyRow struct {
	Samples     int
	PositBetter int // |posit err| < |float err| (against libm)
	Ties        int
	WorstPosit  float64 // worst posit relative error over the range
	WorstFloat  float64
}

// CordicAccuracy samples sin over [lo, hi] and compares the ⟨32,2⟩ posit
// CORDIC against the identical float32 CORDIC, reproducing the paper's
// "outperformed float on 97% of the inputs in [0, π/2]" measurement.
func CordicAccuracy(samples int, lo, hi float64) AccuracyRow {
	row := AccuracyRow{Samples: samples}
	for i := 1; i <= samples; i++ {
		theta := lo + (hi-lo)*float64(i)/float64(samples)
		oracle := math.Sin(theta)
		pv := cordic.Sin(posit.P32FromFloat64(theta)).Float64()
		fv := float64(cordic.SinF32(float32(theta)))
		pe := relErrAgainst(pv, oracle)
		fe := relErrAgainst(fv, oracle)
		switch {
		case pe < fe:
			row.PositBetter++
		case pe == fe:
			row.Ties++
		}
		if pe > row.WorstPosit {
			row.WorstPosit = pe
		}
		if fe > row.WorstFloat {
			row.WorstFloat = fe
		}
	}
	return row
}

func relErrAgainst(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// String renders the accuracy comparison.
func (a AccuracyRow) String() string {
	pct := 100 * float64(a.PositBetter+a.Ties) / float64(a.Samples)
	return fmt.Sprintf(
		"CORDIC sin accuracy over %d samples: posit32 at least as accurate as float32 on %.1f%% "+
			"(better on %.1f%%); worst rel err posit=%.2e float=%.2e",
		a.Samples, pct, 100*float64(a.PositBetter)/float64(a.Samples), a.WorstPosit, a.WorstFloat)
}
