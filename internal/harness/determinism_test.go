package harness

import (
	"runtime"
	"testing"
)

// TestDetectionParallelDeterminism: the §5.1 table renders byte-identically
// whether the 32 suite programs run on one worker or are sharded across
// four. Detection kinds are listed in enum order and rows merged by suite
// index, so scheduling cannot leak into the output. GOMAXPROCS is set
// explicitly so single-core runners still exercise the multi-worker path.
func TestDetectionParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite twice")
	}
	runAt := func(procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		d, err := RunDetection()
		if err != nil {
			t.Fatalf("RunDetection at GOMAXPROCS=%d: %v", procs, err)
		}
		return d.String()
	}
	seq := runAt(1)
	par := runAt(4)
	if seq != par {
		t.Fatalf("parallel detection table diverged from sequential:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=4 ---\n%s", seq, par)
	}
}

// TestKernelErrorsParallelDeterminism: same contract for the kernel error
// sweep — rows in kernel order regardless of worker scheduling.
func TestKernelErrorsParallelDeterminism(t *testing.T) {
	opts := Options{Quick: true}
	runAt := func(procs int) string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		rows, err := KernelErrors(opts, 35)
		if err != nil {
			t.Fatalf("KernelErrors at GOMAXPROCS=%d: %v", procs, err)
		}
		return FormatKernelErrors(rows, 35)
	}
	if seq, par := runAt(1), runAt(4); seq != par {
		t.Fatalf("parallel kernel table diverged from sequential:\n%s\nvs\n%s", seq, par)
	}
}
