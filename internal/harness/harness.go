// Package harness drives the paper's experiments: it compiles each
// workload in FP and (via the refactorer) posit form, measures baseline and
// shadow-instrumented execution times, and formats the tables behind every
// figure of the evaluation (Figures 7–10, the §5.1 detection table, the
// §5.4 Herbgrind comparison, and the §5.2 case studies).
package harness

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	positdebug "positdebug"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks problem sizes so a full figure regenerates in seconds
	// (used by tests); the default sizes regenerate in minutes.
	Quick bool
	// Repeats is the number of timing repetitions (best-of); default 2.
	Repeats int
	// Parallel shards the per-kernel sweeps across CPUs. Tables come out in
	// the same kernel order either way; because every figure reports
	// slowdown ratios of co-scheduled measurements (baseline and
	// instrumented runs contend equally), the ratios stay meaningful under
	// contention — pass false when absolute per-run times matter.
	Parallel bool
}

func (o Options) repeats() int {
	if o.Repeats <= 0 {
		return 2
	}
	return o.Repeats
}

func (o Options) size(defaultN int) int {
	if !o.Quick {
		return defaultN
	}
	n := defaultN / 2
	if n < 8 {
		n = 8
	}
	return n
}

// measure returns the best-of-k wall time of f.
func measure(k int, f func() error) (time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < k; i++ {
		runtime.GC()
		t0 := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

// Table is a named grid of per-benchmark values with a geometric-mean row,
// the shape of the paper's figures.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Geomean []float64
}

// Row is one benchmark's values.
type Row struct {
	Name   string
	Values []float64
}

// AddRow appends a row.
func (t *Table) AddRow(name string, values ...float64) {
	t.Rows = append(t.Rows, Row{Name: name, Values: values})
}

// FinishGeomean computes the geometric mean of each column.
func (t *Table) FinishGeomean() {
	if len(t.Rows) == 0 {
		return
	}
	n := len(t.Rows[0].Values)
	t.Geomean = make([]float64, n)
	for c := 0; c < n; c++ {
		logSum := 0.0
		count := 0
		for _, r := range t.Rows {
			if c < len(r.Values) && r.Values[c] > 0 {
				logSum += math.Log(r.Values[c])
				count++
			}
		}
		if count > 0 {
			t.Geomean[c] = math.Exp(logSum / float64(count))
		}
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(t.Title + "\n")
	fmt.Fprintf(&sb, "%-16s", "benchmark")
	for _, c := range t.Columns {
		fmt.Fprintf(&sb, "%14s", c)
	}
	sb.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-16s", r.Name)
		for _, v := range r.Values {
			fmt.Fprintf(&sb, "%14.2f", v)
		}
		sb.WriteString("\n")
	}
	if t.Geomean != nil {
		fmt.Fprintf(&sb, "%-16s", "geomean")
		for _, v := range t.Geomean {
			fmt.Fprintf(&sb, "%14.2f", v)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// compiled caches the FP and posit programs of one kernel at one size.
type compiled struct {
	fp  *positdebug.Program
	pos *positdebug.Program
}

func compileBoth(src string) (compiled, error) {
	fp, err := positdebug.Compile(src)
	if err != nil {
		return compiled{}, fmt.Errorf("FP compile: %w", err)
	}
	psrc, err := positdebug.RefactorToPosit(src)
	if err != nil {
		return compiled{}, fmt.Errorf("refactor: %w", err)
	}
	pos, err := positdebug.Compile(psrc)
	if err != nil {
		return compiled{}, fmt.Errorf("posit compile: %w", err)
	}
	return compiled{fp: fp, pos: pos}, nil
}

// shadowConfig builds a runtime config at a bigfp precision, with tracing
// and thresholds tuned for overhead measurement (reporting capped so
// report construction never dominates).
func shadowConfig(precision uint, tracing bool) shadow.Config {
	return shadowConfigOracle(oracle.BigFP, precision, tracing)
}

// shadowConfigOracle is shadowConfig retargeted at any shadow oracle —
// pdbench's per-oracle comparison rows are measured through it.
func shadowConfigOracle(kind oracle.Kind, precision uint, tracing bool) shadow.Config {
	cfg := shadow.ConfigFor(kind, precision)
	cfg.Tracing = tracing
	cfg.MaxReports = 4
	return cfg
}
