package harness

import (
	"context"
	"fmt"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/obs"
	"positdebug/internal/parallel"
	"positdebug/internal/profile"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
	"positdebug/internal/workloads"
)

// ProfileOptions configures one profiling sweep (RecordProfile).
type ProfileOptions struct {
	// Kernel names the workload (PolyBench or SPEC-like set).
	Kernel string
	// N is the problem size; 0 uses a small size suitable for tests.
	N int
	// Posit refactors the FP kernel to ⟨32,2⟩ posits first (the paper's
	// methodology); false profiles the FP original under FPSanitizer.
	Posit bool
	// Runs is how many dynamic runs feed the aggregate; default 1.
	Runs int
	// Workers shards the runs; 0 means min(GOMAXPROCS, Runs). The merged
	// profile is identical whatever the worker count (commutative merge).
	Workers int
	// Sample is the shadow sampling stride (see positdebug.WithSampling);
	// ≤ 1 shadows every dynamic instance.
	Sample int
	// Timing additionally records per-instruction shadow-op latency. Wall
	// times are inherently nondeterministic, so timing profiles are not
	// byte-comparable across runs — leave false when determinism matters.
	Timing bool
	// Precision overrides the bigfp shadow precision; 0 keeps the default.
	Precision uint
	// Oracle selects the shadow-arithmetic backend (empty = bigfp).
	Oracle oracle.Kind
	// Trace, when non-nil, receives every run's events — run lifecycle,
	// detections, and causal spans (shadow-exec, report) — staged per run
	// and drained in run-index order, so the stream is deterministic under
	// any worker count. Feed it to obs.WriteChromeTrace for Perfetto.
	Trace obs.Sink
	// Backend selects the execution engine; both produce byte-identical
	// merged profiles.
	Backend backend.Kind
}

// RecordProfile runs a workload kernel Runs times under shadow execution
// with per-worker profile collectors and returns the merged per-static-
// instruction error profile. Workers share nothing: each gets its own warm
// Debugger and Collector (parallel.MapWorkerStates), and the final merge
// is commutative, so sequential and parallel sweeps produce byte-identical
// profiles (profile.WriteJSON is canonical).
func RecordProfile(o ProfileOptions) (*profile.Profile, error) {
	return RecordProfileContext(context.Background(), o)
}

// RecordProfileContext is RecordProfile governed by a context — the
// fabric-worker path, where a disconnected coordinator stops the sweep
// instead of leaving it running headless.
func RecordProfileContext(ctx context.Context, o ProfileOptions) (*profile.Profile, error) {
	k, ok := workloads.KernelByName(o.Kernel)
	if !ok {
		return nil, fmt.Errorf("harness: unknown kernel %q", o.Kernel)
	}
	n := o.N
	if n <= 0 {
		n = 8
	}
	src := k.Source(n)
	arch := "f64"
	if o.Posit {
		psrc, err := positdebug.RefactorToPosit(src)
		if err != nil {
			return nil, fmt.Errorf("harness: refactor %s: %w", k.Name, err)
		}
		src = psrc
		arch = "posit32"
	}
	prog, err := positdebug.Compile(src)
	if err != nil {
		return nil, fmt.Errorf("harness: compile %s: %w", k.Name, err)
	}
	prog.SetSourceName(k.Name)
	mod := prog.Instrumented() // populate the cache before workers race for it

	runs := o.Runs
	if runs <= 0 {
		runs = 1
	}
	workers := o.Workers
	if workers <= 0 {
		workers = parallel.Workers(runs)
	}
	sample := o.Sample
	if sample < 1 {
		sample = 1
	}
	cfg := shadow.DefaultConfig()
	cfg.Oracle = o.Oracle
	cfg.Tracing = false
	cfg.MaxReports = 4
	if o.Precision > 0 {
		cfg.Precision = o.Precision
	}

	type pstate struct {
		col  *profile.Collector
		d    *positdebug.Debugger
		runs int64
	}
	newState := func() (*pstate, error) {
		col := profile.NewCollector()
		col.Timing = o.Timing
		d, err := prog.Session(
			positdebug.WithShadow(cfg),
			positdebug.WithProfile(col),
			positdebug.WithSampling(sample),
			positdebug.WithBackend(o.Backend),
		)
		if err != nil {
			return nil, err
		}
		return &pstate{col: col, d: d}, nil
	}
	outs, states, err := parallel.MapWorkerStates(ctx, workers, runs,
		newState, func(s *pstate, i int) ([]obs.Event, error) {
			var opts []positdebug.Option
			var buf *obs.Buffer
			if o.Trace != nil {
				buf = &obs.Buffer{}
				opts = append(opts,
					positdebug.WithTrace(buf),
					positdebug.WithSpans(obs.NewTracer(buf)))
			}
			s.runs++
			if _, err := s.d.Exec("main", opts...); err != nil {
				return nil, fmt.Errorf("harness: %s run %d: %w", k.Name, i, err)
			}
			if buf == nil {
				return nil, nil
			}
			return append([]obs.Event(nil), buf.Events()...), nil
		})
	if err != nil {
		return nil, err
	}
	if o.Trace != nil {
		for i, events := range outs {
			for _, e := range events {
				e.Run = i
				o.Trace.Emit(e)
			}
		}
	}

	key := fmt.Sprintf("%s/n=%d/%s", k.Name, n, arch)
	snaps := make([]*profile.Profile, 0, len(states))
	for _, s := range states {
		snaps = append(snaps, s.col.Snapshot(mod, key, arch, s.runs, int64(sample)))
	}
	return profile.MergeAll(snaps...)
}
