// Package codegen lowers checked PCL programs to the register IR. The
// lowering is deliberately -O0-shaped: every named variable (parameter or
// local) lives in a frame slot accessed through explicit loads and stores,
// and every expression temporary gets a fresh virtual register — the same
// temporary-vs-memory split the PositDebug paper's metadata design relies
// on. Global variables with literal initializers are initialized by a
// synthetic "__init" function so their stores flow through shadow memory
// like any other store.
package codegen

import (
	"fmt"
	"math"

	"positdebug/internal/ir"
	"positdebug/internal/lang"
)

// GlobalBase is the address of the first global; addresses below it trap,
// catching stray null-ish accesses.
const GlobalBase = 4096

// Compile lowers a checked program to an IR module.
func Compile(chk *lang.Checked) (*ir.Module, error) {
	m := &ir.Module{FuncIdx: map[string]int32{}, GlobalBase: GlobalBase}
	g := &gen{m: m, chk: chk, slots: map[*lang.Symbol]slot{}}

	// Lay out globals.
	off := uint32(GlobalBase)
	for _, d := range chk.Prog.Globals {
		sym := chk.DeclSym[d]
		et := ir.TypeFromLang(d.Type.Kind)
		count := uint32(1)
		for _, dim := range d.Type.Dims {
			count *= uint32(dim)
		}
		size := et.Size() * count
		off = align(off, et.Size())
		m.Globals = append(m.Globals, ir.GlobalInfo{Name: d.Name, Type: et, Offset: off, Size: size})
		g.slots[sym] = slot{addr: off, typ: et, global: true, dims: d.Type.Dims}
		off += size
	}
	m.GlobalSize = off - GlobalBase

	// Function indices first so calls can be resolved in one pass.
	names := make([]string, 0, len(chk.Prog.Funcs)+1)
	for _, f := range chk.Prog.Funcs {
		m.FuncIdx[f.Name] = int32(len(names))
		names = append(names, f.Name)
		m.Funcs = append(m.Funcs, nil)
	}

	// Synthetic initializer for globals with literal init expressions.
	initIdx := int32(len(names))
	m.FuncIdx["__init"] = initIdx
	m.Funcs = append(m.Funcs, nil)
	initFn, err := g.genInit()
	if err != nil {
		return nil, err
	}
	m.Funcs[initIdx] = initFn

	for i, fd := range chk.Prog.Funcs {
		fn, err := g.genFunc(fd)
		if err != nil {
			return nil, err
		}
		m.Funcs[i] = fn
	}
	return m, nil
}

func align(off, sz uint32) uint32 {
	if sz == 0 {
		sz = 1
	}
	return (off + sz - 1) / sz * sz
}

type slot struct {
	addr   uint32 // frame offset or absolute global address
	typ    ir.Type
	global bool
	dims   []int
}

type gen struct {
	m     *ir.Module
	chk   *lang.Checked
	slots map[*lang.Symbol]slot

	// Per-function state.
	fn       *ir.Func
	fd       *lang.FuncDecl
	frameOff uint32
	cur      int
	loopTop  []int32 // continue targets
	loopEnd  []int32 // break targets
}

func (g *gen) newReg() int32 {
	r := g.fn.NumRegs
	g.fn.NumRegs++
	return r
}

func (g *gen) newBlock() int32 {
	g.fn.Blocks = append(g.fn.Blocks, ir.Block{})
	return int32(len(g.fn.Blocks) - 1)
}

func (g *gen) setBlock(b int32) { g.cur = int(b) }

func (g *gen) emit(in ir.Instr) *ir.Instr {
	blk := &g.fn.Blocks[g.cur]
	blk.Instrs = append(blk.Instrs, in)
	return &blk.Instrs[len(blk.Instrs)-1]
}

// track registers an instruction in the module registry and returns its id.
func (g *gen) track(pos lang.Pos, text string, op ir.Op, kind uint8, typ ir.Type) int32 {
	id := int32(len(g.m.Registry))
	fname := "__init"
	if g.fd != nil {
		fname = g.fd.Name
	}
	g.m.Registry = append(g.m.Registry, ir.InstrMeta{
		Func: fname, Pos: pos, Text: text, Op: op, Kind: kind, Type: typ,
	})
	return id
}

func (g *gen) genInit() (*ir.Func, error) {
	g.fn = &ir.Func{Name: "__init", Ret: ir.Void}
	g.fd = nil
	g.frameOff = 0
	g.fn.Blocks = nil
	g.newBlock()
	g.setBlock(0)
	for _, d := range g.chk.Prog.Globals {
		if d.Init == nil {
			continue
		}
		sym := g.chk.DeclSym[d]
		s := g.slots[sym]
		val, err := g.expr(d.Init)
		if err != nil {
			return nil, err
		}
		addr := g.newReg()
		g.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
		id := g.track(d.Pos, d.Name, ir.OpStore, 0, s.typ)
		g.emit(ir.Instr{Op: ir.OpStore, Type: s.typ, A: addr, B: val, ID: id, Dst: -1})
	}
	g.emit(ir.Instr{Op: ir.OpRet, A: -1, Dst: -1, B: -1, ID: -1})
	g.fn.FrameSize = g.frameOff
	return g.fn, nil
}

func (g *gen) genFunc(fd *lang.FuncDecl) (*ir.Func, error) {
	g.fd = fd
	g.fn = &ir.Func{Name: fd.Name, Ret: ir.TypeFromLang(fd.Ret.Kind)}
	g.frameOff = 0
	g.newBlock()
	g.setBlock(0)

	// Parameter registers are 0..n−1 by ABI; reserve them all before any
	// temporary so address registers never alias parameters, then spill
	// each to a frame slot so the body addresses them uniformly through
	// memory.
	for _, ps := range g.chk.ParamSym[fd] {
		g.fn.Params = append(g.fn.Params, ir.TypeFromLang(ps.Type.Kind))
		g.fn.NumRegs++
	}
	for i, ps := range g.chk.ParamSym[fd] {
		g.allocLocal(ps)
		s := g.slots[ps]
		addr := g.newReg()
		g.emit(ir.Instr{Op: ir.OpFrameAddr, Dst: addr, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
		id := g.track(fd.Params[i].Pos, ps.Name, ir.OpStore, 0, s.typ)
		g.emit(ir.Instr{Op: ir.OpStore, Type: s.typ, A: addr, B: int32(i), ID: id, Dst: -1})
	}

	if err := g.block(fd.Body); err != nil {
		return nil, err
	}
	// Fall-off-the-end: append an implicit return (zero value for
	// non-void functions; well-formed sources return explicitly).
	if !g.terminated() {
		if g.fn.Ret == ir.Void {
			g.emit(ir.Instr{Op: ir.OpRet, A: -1, Dst: -1, B: -1, ID: -1})
		} else {
			z := g.newReg()
			g.emit(ir.Instr{Op: ir.OpConst, Type: g.fn.Ret, Dst: z, ID: -1, A: -1, B: -1})
			g.emit(ir.Instr{Op: ir.OpRet, A: z, Dst: -1, B: -1, ID: -1})
		}
	}
	g.fn.FrameSize = g.frameOff
	return g.fn, nil
}

// terminated reports whether the current block already ends in a control
// transfer.
func (g *gen) terminated() bool {
	blk := g.fn.Blocks[g.cur]
	if len(blk.Instrs) == 0 {
		return false
	}
	switch blk.Instrs[len(blk.Instrs)-1].Op {
	case ir.OpBr, ir.OpJmp, ir.OpRet:
		return true
	}
	return false
}

func (g *gen) allocLocal(sym *lang.Symbol) {
	et := ir.TypeFromLang(sym.Type.Kind)
	count := uint32(1)
	for _, d := range sym.Type.Dims {
		count *= uint32(d)
	}
	g.frameOff = align(g.frameOff, et.Size())
	g.slots[sym] = slot{addr: g.frameOff, typ: et, dims: sym.Type.Dims}
	g.frameOff += et.Size() * count
}

func (g *gen) block(b *lang.BlockStmt) error {
	for _, s := range b.Stmts {
		if g.terminated() {
			// Unreachable trailing code: start a fresh block so the IR
			// stays well-formed.
			nb := g.newBlock()
			g.setBlock(nb)
		}
		if err := g.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(s lang.Stmt) error {
	switch s := s.(type) {
	case *lang.BlockStmt:
		return g.block(s)
	case *lang.DeclStmt:
		sym := g.chk.DeclSym[s.Decl]
		g.allocLocal(sym)
		if s.Decl.Init != nil {
			val, err := g.expr(s.Decl.Init)
			if err != nil {
				return err
			}
			return g.storeVar(sym, s.Decl.Pos, val)
		}
		return nil
	case *lang.AssignStmt:
		val, err := g.expr(s.Rhs)
		if err != nil {
			return err
		}
		switch lhs := s.Lhs.(type) {
		case *lang.Ident:
			return g.storeVar(g.chk.Symbols[lhs], s.Pos, val)
		case *lang.IndexExpr:
			addr, et, err := g.indexAddr(lhs)
			if err != nil {
				return err
			}
			id := g.track(s.Pos, exprText(lhs), ir.OpStore, 0, et)
			g.emit(ir.Instr{Op: ir.OpStore, Type: et, A: addr, B: val, ID: id, Dst: -1})
			return nil
		default:
			return fmt.Errorf("%s: bad assignment target", s.Pos)
		}
	case *lang.ExprStmt:
		_, err := g.expr(s.X)
		return err
	case *lang.IfStmt:
		return g.ifStmt(s)
	case *lang.WhileStmt:
		head := g.newBlock()
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{head}, ID: -1, Dst: -1, A: -1, B: -1})
		g.setBlock(head)
		cond, err := g.expr(s.Cond)
		if err != nil {
			return err
		}
		body := g.newBlock()
		done := g.newBlock()
		g.emit(ir.Instr{Op: ir.OpBr, A: cond, Blk: [2]int32{body, done}, ID: -1, Dst: -1, B: -1})
		g.pushLoop(head, done)
		g.setBlock(body)
		if err := g.block(s.Body); err != nil {
			return err
		}
		if !g.terminated() {
			g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{head}, ID: -1, Dst: -1, A: -1, B: -1})
		}
		g.popLoop()
		g.setBlock(done)
		return nil
	case *lang.ForStmt:
		if s.Init != nil {
			if err := g.stmt(s.Init); err != nil {
				return err
			}
		}
		head := g.newBlock()
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{head}, ID: -1, Dst: -1, A: -1, B: -1})
		g.setBlock(head)
		body := g.newBlock()
		post := g.newBlock()
		done := g.newBlock()
		if s.Cond != nil {
			cond, err := g.expr(s.Cond)
			if err != nil {
				return err
			}
			g.emit(ir.Instr{Op: ir.OpBr, A: cond, Blk: [2]int32{body, done}, ID: -1, Dst: -1, B: -1})
		} else {
			g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{body}, ID: -1, Dst: -1, A: -1, B: -1})
		}
		g.pushLoop(post, done)
		g.setBlock(body)
		if err := g.block(s.Body); err != nil {
			return err
		}
		if !g.terminated() {
			g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{post}, ID: -1, Dst: -1, A: -1, B: -1})
		}
		g.popLoop()
		g.setBlock(post)
		if s.Post != nil {
			if err := g.stmt(s.Post); err != nil {
				return err
			}
		}
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{head}, ID: -1, Dst: -1, A: -1, B: -1})
		g.setBlock(done)
		return nil
	case *lang.ReturnStmt:
		if s.X == nil {
			g.emit(ir.Instr{Op: ir.OpRet, A: -1, Dst: -1, B: -1, ID: -1})
			return nil
		}
		val, err := g.expr(s.X)
		if err != nil {
			return err
		}
		g.emit(ir.Instr{Op: ir.OpRet, A: val, Dst: -1, B: -1, ID: -1})
		return nil
	case *lang.BreakStmt:
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{g.loopEnd[len(g.loopEnd)-1]}, ID: -1, Dst: -1, A: -1, B: -1})
		return nil
	case *lang.ContinueStmt:
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{g.loopTop[len(g.loopTop)-1]}, ID: -1, Dst: -1, A: -1, B: -1})
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (g *gen) pushLoop(top, end int32) {
	g.loopTop = append(g.loopTop, top)
	g.loopEnd = append(g.loopEnd, end)
}

func (g *gen) popLoop() {
	g.loopTop = g.loopTop[:len(g.loopTop)-1]
	g.loopEnd = g.loopEnd[:len(g.loopEnd)-1]
}

func (g *gen) ifStmt(s *lang.IfStmt) error {
	cond, err := g.expr(s.Cond)
	if err != nil {
		return err
	}
	thenB := g.newBlock()
	elseB := g.newBlock()
	doneB := g.newBlock()
	g.emit(ir.Instr{Op: ir.OpBr, A: cond, Blk: [2]int32{thenB, elseB}, ID: -1, Dst: -1, B: -1})
	g.setBlock(thenB)
	if err := g.block(s.Then); err != nil {
		return err
	}
	if !g.terminated() {
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{doneB}, ID: -1, Dst: -1, A: -1, B: -1})
	}
	g.setBlock(elseB)
	if s.Else != nil {
		if err := g.stmt(s.Else); err != nil {
			return err
		}
	}
	if !g.terminated() {
		g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{doneB}, ID: -1, Dst: -1, A: -1, B: -1})
	}
	g.setBlock(doneB)
	return nil
}

// storeVar emits addr computation + store for a scalar variable.
func (g *gen) storeVar(sym *lang.Symbol, pos lang.Pos, val int32) error {
	s, ok := g.slots[sym]
	if !ok {
		return fmt.Errorf("%s: no storage for %q", pos, sym.Name)
	}
	addr := g.newReg()
	if s.global {
		g.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
	} else {
		g.emit(ir.Instr{Op: ir.OpFrameAddr, Dst: addr, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
	}
	id := g.track(pos, sym.Name, ir.OpStore, 0, s.typ)
	g.emit(ir.Instr{Op: ir.OpStore, Type: s.typ, A: addr, B: val, ID: id, Dst: -1})
	return nil
}

// indexAddr lowers the address computation of A[i] / A[i][j].
func (g *gen) indexAddr(e *lang.IndexExpr) (addr int32, et ir.Type, err error) {
	sym := g.chk.Symbols[e.Arr]
	s, ok := g.slots[sym]
	if !ok {
		return 0, 0, fmt.Errorf("%s: no storage for %q", e.Position(), sym.Name)
	}
	base := g.newReg()
	if s.global {
		g.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: base, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
	} else {
		g.emit(ir.Instr{Op: ir.OpFrameAddr, Dst: base, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
	}
	idx, err := g.expr(e.Indices[0])
	if err != nil {
		return 0, 0, err
	}
	if len(e.Indices) == 2 {
		// linear = i*dim1 + j
		dim1 := g.newReg()
		g.emit(ir.Instr{Op: ir.OpConst, Type: ir.I64, Dst: dim1, Imm: uint64(s.dims[1]), ID: -1, A: -1, B: -1})
		mul := g.newReg()
		g.emit(ir.Instr{Op: ir.OpBin, Kind: uint8(ir.BinMul), Type: ir.I64, Dst: mul, A: idx, B: dim1, ID: -1})
		j, err := g.expr(e.Indices[1])
		if err != nil {
			return 0, 0, err
		}
		lin := g.newReg()
		g.emit(ir.Instr{Op: ir.OpBin, Kind: uint8(ir.BinAdd), Type: ir.I64, Dst: lin, A: mul, B: j, ID: -1})
		idx = lin
	}
	out := g.newReg()
	g.emit(ir.Instr{Op: ir.OpAddrIndex, Dst: out, A: base, B: idx, Imm: uint64(s.typ.Size()), ID: -1})
	return out, s.typ, nil
}

// expr lowers an expression, returning the register holding its value.
func (g *gen) expr(e lang.Expr) (int32, error) {
	switch e := e.(type) {
	case *lang.IntLit:
		t := ir.TypeFromLang(e.TypeOf().Kind)
		dst := g.newReg()
		id := g.track(e.Position(), exprText(e), ir.OpConst, 0, t)
		g.m.Registry[id].Const = float64(e.Value)
		g.emit(ir.Instr{Op: ir.OpConst, Type: t, Dst: dst, Imm: constBits(t, float64(e.Value), e.Value), ID: id, A: -1, B: -1})
		return dst, nil
	case *lang.FloatLit:
		t := ir.TypeFromLang(e.TypeOf().Kind)
		dst := g.newReg()
		id := g.track(e.Position(), e.Text, ir.OpConst, 0, t)
		g.m.Registry[id].Const = e.Value
		g.emit(ir.Instr{Op: ir.OpConst, Type: t, Dst: dst, Imm: constBits(t, e.Value, int64(e.Value)), ID: id, A: -1, B: -1})
		return dst, nil
	case *lang.BoolLit:
		dst := g.newReg()
		var imm uint64
		if e.Value {
			imm = 1
		}
		g.emit(ir.Instr{Op: ir.OpConst, Type: ir.Bool, Dst: dst, Imm: imm, ID: -1, A: -1, B: -1})
		return dst, nil
	case *lang.Ident:
		sym := g.chk.Symbols[e]
		s, ok := g.slots[sym]
		if !ok {
			return 0, fmt.Errorf("%s: no storage for %q", e.Position(), e.Name)
		}
		addr := g.newReg()
		if s.global {
			g.emit(ir.Instr{Op: ir.OpGlobalAddr, Dst: addr, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
		} else {
			g.emit(ir.Instr{Op: ir.OpFrameAddr, Dst: addr, Imm: uint64(s.addr), ID: -1, A: -1, B: -1})
		}
		dst := g.newReg()
		id := g.track(e.Position(), e.Name, ir.OpLoad, 0, s.typ)
		g.emit(ir.Instr{Op: ir.OpLoad, Type: s.typ, Dst: dst, A: addr, ID: id, B: -1})
		return dst, nil
	case *lang.IndexExpr:
		addr, et, err := g.indexAddr(e)
		if err != nil {
			return 0, err
		}
		dst := g.newReg()
		id := g.track(e.Position(), exprText(e), ir.OpLoad, 0, et)
		g.emit(ir.Instr{Op: ir.OpLoad, Type: et, Dst: dst, A: addr, ID: id, B: -1})
		return dst, nil
	case *lang.UnaryExpr:
		x, err := g.expr(e.X)
		if err != nil {
			return 0, err
		}
		t := ir.TypeFromLang(e.TypeOf().Kind)
		kind := ir.UnNeg
		if e.Op == lang.Not {
			kind = ir.UnNot
		}
		dst := g.newReg()
		id := int32(-1)
		if t.IsNumeric() {
			id = g.track(e.Position(), exprText(e), ir.OpUn, uint8(kind), t)
		}
		g.emit(ir.Instr{Op: ir.OpUn, Kind: uint8(kind), Type: t, Dst: dst, A: x, ID: id, B: -1})
		return dst, nil
	case *lang.BinaryExpr:
		return g.binary(e)
	case *lang.CallExpr:
		return g.call(e)
	case *lang.StringLit:
		return 0, fmt.Errorf("%s: unexpected string literal", e.Position())
	}
	return 0, fmt.Errorf("unhandled expression %T", e)
}

func (g *gen) binary(e *lang.BinaryExpr) (int32, error) {
	switch e.Op {
	case lang.AndAnd, lang.OrOr:
		return g.shortCircuit(e)
	}
	l, err := g.expr(e.L)
	if err != nil {
		return 0, err
	}
	r, err := g.expr(e.R)
	if err != nil {
		return 0, err
	}
	opt := ir.TypeFromLang(e.L.TypeOf().Kind)
	dst := g.newReg()
	switch e.Op {
	case lang.Plus, lang.Minus, lang.Star, lang.Slash, lang.Percent:
		var k ir.BinKind
		switch e.Op {
		case lang.Plus:
			k = ir.BinAdd
		case lang.Minus:
			k = ir.BinSub
		case lang.Star:
			k = ir.BinMul
		case lang.Slash:
			k = ir.BinDiv
		case lang.Percent:
			k = ir.BinRem
		}
		id := int32(-1)
		if opt.IsNumeric() {
			id = g.track(e.Position(), exprText(e), ir.OpBin, uint8(k), opt)
		}
		g.emit(ir.Instr{Op: ir.OpBin, Kind: uint8(k), Type: opt, Dst: dst, A: l, B: r, ID: id})
		return dst, nil
	default:
		var p ir.CmpPred
		switch e.Op {
		case lang.Eq:
			p = ir.CmpEq
		case lang.Ne:
			p = ir.CmpNe
		case lang.Lt:
			p = ir.CmpLt
		case lang.Le:
			p = ir.CmpLe
		case lang.Gt:
			p = ir.CmpGt
		case lang.Ge:
			p = ir.CmpGe
		}
		id := int32(-1)
		if opt.IsNumeric() {
			id = g.track(e.Position(), exprText(e), ir.OpCmp, uint8(p), opt)
		}
		g.emit(ir.Instr{Op: ir.OpCmp, Kind: uint8(p), Type: opt, Dst: dst, A: l, B: r, ID: id})
		return dst, nil
	}
}

// shortCircuit lowers && and || with proper control flow.
func (g *gen) shortCircuit(e *lang.BinaryExpr) (int32, error) {
	res := g.newReg()
	var preset uint64
	if e.Op == lang.OrOr {
		preset = 1
	}
	g.emit(ir.Instr{Op: ir.OpConst, Type: ir.Bool, Dst: res, Imm: preset, ID: -1, A: -1, B: -1})
	l, err := g.expr(e.L)
	if err != nil {
		return 0, err
	}
	right := g.newBlock()
	done := g.newBlock()
	if e.Op == lang.AndAnd {
		g.emit(ir.Instr{Op: ir.OpBr, A: l, Blk: [2]int32{right, done}, ID: -1, Dst: -1, B: -1})
	} else {
		g.emit(ir.Instr{Op: ir.OpBr, A: l, Blk: [2]int32{done, right}, ID: -1, Dst: -1, B: -1})
	}
	g.setBlock(int32(right))
	r, err := g.expr(e.R)
	if err != nil {
		return 0, err
	}
	g.emit(ir.Instr{Op: ir.OpMov, Type: ir.Bool, Dst: res, A: r, ID: -1, B: -1})
	g.emit(ir.Instr{Op: ir.OpJmp, Blk: [2]int32{done}, ID: -1, Dst: -1, A: -1, B: -1})
	g.setBlock(int32(done))
	return res, nil
}

func (g *gen) call(e *lang.CallExpr) (int32, error) {
	if e.IsCast {
		return g.cast(e)
	}
	if e.IsBuiltin {
		return g.builtin(e)
	}
	var args []int32
	for _, a := range e.Args {
		r, err := g.expr(a)
		if err != nil {
			return 0, err
		}
		args = append(args, r)
	}
	fnIdx := g.m.FuncIdx[e.Name]
	rt := ir.TypeFromLang(e.TypeOf().Kind)
	dst := int32(-1)
	if rt != ir.Void {
		dst = g.newReg()
	}
	id := g.track(e.Position(), e.Name+"(…)", ir.OpCall, 0, rt)
	g.emit(ir.Instr{Op: ir.OpCall, Dst: dst, Fn: fnIdx, Args: args, Type: rt, ID: id, A: -1, B: -1})
	if dst < 0 {
		return 0, nil
	}
	return dst, nil
}

func (g *gen) cast(e *lang.CallExpr) (int32, error) {
	x, err := g.expr(e.Args[0])
	if err != nil {
		return 0, err
	}
	from := ir.TypeFromLang(e.Args[0].TypeOf().Kind)
	to := ir.TypeFromLang(e.TypeOf().Kind)
	dst := g.newReg()
	id := int32(-1)
	if from.IsNumeric() || to.IsNumeric() {
		id = g.track(e.Position(), exprText(e), ir.OpCast, 0, from)
	}
	g.emit(ir.Instr{Op: ir.OpCast, Type: from, Type2: to, Dst: dst, A: x, ID: id, B: -1})
	return dst, nil
}

func (g *gen) builtin(e *lang.CallExpr) (int32, error) {
	switch e.Builtin {
	case lang.BSqrt, lang.BAbs:
		x, err := g.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		t := ir.TypeFromLang(e.TypeOf().Kind)
		kind := ir.UnSqrt
		if e.Builtin == lang.BAbs {
			kind = ir.UnAbs
		}
		dst := g.newReg()
		id := int32(-1)
		if t.IsNumeric() {
			id = g.track(e.Position(), exprText(e), ir.OpUn, uint8(kind), t)
		}
		g.emit(ir.Instr{Op: ir.OpUn, Kind: uint8(kind), Type: t, Dst: dst, A: x, ID: id, B: -1})
		return dst, nil
	case lang.BPrint:
		if s, ok := e.Args[0].(*lang.StringLit); ok {
			g.emit(ir.Instr{Op: ir.OpPrintStr, Str: s.Value, ID: -1, Dst: -1, A: -1, B: -1})
			return 0, nil
		}
		x, err := g.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		t := ir.TypeFromLang(e.Args[0].TypeOf().Kind)
		id := int32(-1)
		if t.IsNumeric() {
			id = g.track(e.Position(), exprText(e.Args[0]), ir.OpPrint, 0, t)
		}
		g.emit(ir.Instr{Op: ir.OpPrint, Type: t, A: x, ID: id, Dst: -1, B: -1})
		return 0, nil
	case lang.BQClear:
		g.emit(ir.Instr{Op: ir.OpQClear, ID: -1, Dst: -1, A: -1, B: -1})
		return 0, nil
	case lang.BQAdd, lang.BQSub:
		x, err := g.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		t := ir.TypeFromLang(e.Args[0].TypeOf().Kind)
		var neg uint8
		if e.Builtin == lang.BQSub {
			neg = 1
		}
		g.emit(ir.Instr{Op: ir.OpQAdd, Kind: neg, Type: t, A: x, ID: -1, Dst: -1, B: -1})
		return 0, nil
	case lang.BQMAdd, lang.BQMSub:
		x, err := g.expr(e.Args[0])
		if err != nil {
			return 0, err
		}
		y, err := g.expr(e.Args[1])
		if err != nil {
			return 0, err
		}
		t := ir.TypeFromLang(e.Args[0].TypeOf().Kind)
		var neg uint8
		if e.Builtin == lang.BQMSub {
			neg = 1
		}
		g.emit(ir.Instr{Op: ir.OpQMAdd, Kind: neg, Type: t, A: x, B: y, ID: -1, Dst: -1})
		return 0, nil
	case lang.BQRound:
		t := ir.TypeFromLang(e.TypeOf().Kind)
		dst := g.newReg()
		id := g.track(e.Position(), e.Name+"()", ir.OpQVal, 0, t)
		g.emit(ir.Instr{Op: ir.OpQVal, Type: t, Dst: dst, ID: id, A: -1, B: -1})
		return dst, nil
	case lang.BFMA:
		var args []int32
		for _, a := range e.Args {
			r, err := g.expr(a)
			if err != nil {
				return 0, err
			}
			args = append(args, r)
		}
		t := ir.TypeFromLang(e.TypeOf().Kind)
		dst := g.newReg()
		id := g.track(e.Position(), exprText(e), ir.OpFMA, 0, t)
		g.emit(ir.Instr{Op: ir.OpFMA, Type: t, Dst: dst, Args: args, ID: id, A: -1, B: -1})
		return dst, nil
	}
	return 0, fmt.Errorf("%s: unhandled builtin", e.Position())
}

// constBits encodes a literal as the bit pattern of the target type.
func constBits(t ir.Type, f float64, i int64) uint64 {
	switch t {
	case ir.I64:
		return uint64(i)
	case ir.F64:
		return math.Float64bits(f)
	case ir.F32:
		return uint64(math.Float32bits(float32(f)))
	case ir.P8, ir.P16, ir.P32:
		return uint64(t.PositConfig().FromFloat64(f))
	default:
		return uint64(i)
	}
}
