package codegen

import (
	"fmt"
	"strconv"
	"strings"

	"positdebug/internal/lang"
)

// exprText renders a short human-readable form of an expression for the
// instruction registry; DAG reports show these strings (like the paper's
// Figure 5/6 node labels). Output is capped to keep reports readable.
func exprText(e lang.Expr) string {
	s := renderExpr(e)
	if len(s) > 48 {
		s = s[:45] + "…"
	}
	return s
}

func renderExpr(e lang.Expr) string {
	switch e := e.(type) {
	case *lang.IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *lang.FloatLit:
		if e.Text != "" {
			return e.Text
		}
		return strconv.FormatFloat(e.Value, 'g', -1, 64)
	case *lang.BoolLit:
		return strconv.FormatBool(e.Value)
	case *lang.StringLit:
		return strconv.Quote(e.Value)
	case *lang.Ident:
		return e.Name
	case *lang.IndexExpr:
		var sb strings.Builder
		sb.WriteString(e.Arr.Name)
		for _, ix := range e.Indices {
			fmt.Fprintf(&sb, "[%s]", renderExpr(ix))
		}
		return sb.String()
	case *lang.UnaryExpr:
		op := "-"
		if e.Op == lang.Not {
			op = "!"
		}
		return op + renderExpr(e.X)
	case *lang.BinaryExpr:
		return renderExpr(e.L) + " " + opText(e.Op) + " " + renderExpr(e.R)
	case *lang.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = renderExpr(a)
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		return "?"
	}
}

func opText(k lang.Kind) string {
	switch k {
	case lang.Plus:
		return "+"
	case lang.Minus:
		return "-"
	case lang.Star:
		return "*"
	case lang.Slash:
		return "/"
	case lang.Percent:
		return "%"
	case lang.Eq:
		return "=="
	case lang.Ne:
		return "!="
	case lang.Lt:
		return "<"
	case lang.Le:
		return "<="
	case lang.Gt:
		return ">"
	case lang.Ge:
		return ">="
	case lang.AndAnd:
		return "&&"
	case lang.OrOr:
		return "||"
	default:
		return "?"
	}
}
