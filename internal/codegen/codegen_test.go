package codegen

import (
	"strings"
	"testing"

	"positdebug/internal/ir"
	"positdebug/internal/lang"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Compile(chk)
	if err != nil {
		t.Fatal(err)
	}
	if err := mod.Verify(); err != nil {
		t.Fatalf("verify: %v\n%s", err, mod)
	}
	return mod
}

// TestGlobalLayout: globals are laid out from GlobalBase with element
// alignment and array sizing.
func TestGlobalLayout(t *testing.T) {
	mod := lower(t, `
var a: p8;
var b: f64;
var M: [4][8]p32;
var c: i64;
func f() { }
`)
	byName := map[string]ir.GlobalInfo{}
	for _, g := range mod.Globals {
		byName[g.Name] = g
	}
	if byName["a"].Offset != GlobalBase || byName["a"].Size != 1 {
		t.Fatalf("a: %+v", byName["a"])
	}
	if byName["b"].Offset%8 != 0 {
		t.Fatalf("b misaligned: %+v", byName["b"])
	}
	if byName["M"].Size != 4*8*4 {
		t.Fatalf("M size: %+v", byName["M"])
	}
	if mod.GlobalSize == 0 || byName["c"].Offset < byName["M"].Offset {
		t.Fatal("layout ordering")
	}
}

// TestParamsSpilled: parameters are stored to frame slots on entry (the
// -O0 shape the shadow-memory design needs).
func TestParamsSpilled(t *testing.T) {
	mod := lower(t, `func f(a: p32, b: f64): p32 { return a; }`)
	f := mod.FuncByName("f")
	if len(f.Params) != 2 || f.NumRegs < 2 {
		t.Fatalf("params: %+v", f)
	}
	stores := 0
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.OpStore {
			stores++
		}
	}
	if stores < 2 {
		t.Fatalf("expected both params spilled, found %d stores", stores)
	}
	// The body must reload `a` rather than use register 0 directly.
	s := f.String()
	if !strings.Contains(s, "load.p32") {
		t.Fatalf("parameter not reloaded through memory:\n%s", s)
	}
}

// TestIndexLowering: 2-D indexing computes base + (i·dim1 + j)·size.
func TestIndexLowering(t *testing.T) {
	mod := lower(t, `
var M: [3][5]f64;
func f(i: i64, j: i64): f64 { return M[i][j]; }
`)
	s := mod.FuncByName("f").String()
	if !strings.Contains(s, "*8") {
		t.Fatalf("element size missing in address arithmetic:\n%s", s)
	}
	if !strings.Contains(s, "const.i64 0x5") {
		t.Fatalf("inner dimension constant missing:\n%s", s)
	}
}

// TestRegistryTexts: tracked instructions carry source positions and
// readable texts (what DAG nodes display).
func TestRegistryTexts(t *testing.T) {
	mod := lower(t, `
func f(x: p32): p32 {
	var y: p32 = x * x - 1.0;
	return sqrt(y);
}
`)
	var texts []string
	for _, m := range mod.Registry {
		texts = append(texts, m.Text)
		if m.Pos.Line == 0 {
			t.Fatalf("registry entry %q missing position", m.Text)
		}
	}
	joined := strings.Join(texts, "|")
	for _, want := range []string{"x * x", "x * x - 1.0", "sqrt(y)", "y"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("registry missing %q in %q", want, joined)
		}
	}
}

// TestConstRegistryValue: literal metadata records the exact double value
// the shadow seeds from.
func TestConstRegistryValue(t *testing.T) {
	mod := lower(t, `func f(): p32 { return 0.1; }`)
	found := false
	for _, m := range mod.Registry {
		if m.Op == ir.OpConst && m.Const == 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatal("const 0.1 not recorded in registry")
	}
}

// TestInitFunctionForGlobals: literal global initializers become stores in
// the synthetic __init.
func TestInitFunctionForGlobals(t *testing.T) {
	mod := lower(t, `
var x: f64 = 2.5;
var y: i64 = 7;
func f(): f64 { return x; }
`)
	init := mod.FuncByName("__init")
	if init == nil {
		t.Fatal("__init missing")
	}
	stores := 0
	for _, in := range init.Blocks[0].Instrs {
		if in.Op == ir.OpStore {
			stores++
		}
	}
	if stores != 2 {
		t.Fatalf("__init stores = %d, want 2", stores)
	}
}

// TestImplicitReturn: falling off a non-void function yields a zero-value
// return (and the module still verifies).
func TestImplicitReturn(t *testing.T) {
	mod := lower(t, `
func f(c: bool): i64 {
	if (c) { return 1; }
	return 0;
}
func g(c: bool) {
	if (c) { return; }
}
`)
	_ = mod
}

// TestUnreachableAfterReturn: code after a terminator lands in a fresh
// (unreachable but well-formed) block.
func TestUnreachableAfterReturn(t *testing.T) {
	lower(t, `
func f(): i64 {
	return 1;
	return 2;
}
`)
}
