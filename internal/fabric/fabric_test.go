package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// testCampaign is the shared oracle workload: small enough to run many
// times per test, big enough that shards split non-trivially.
func testCampaign() faultinject.CampaignConfig {
	return faultinject.CampaignConfig{
		Workload: "polybench/gemm", N: 8, Arch: "both", Runs: 12, Seed: 42,
	}
}

// newWorker spins up a real pdserve worker (full admission path included).
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{DefaultTimeout: 30 * time.Second})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// fastCfg returns a coordinator config tuned for tests: tiny backoffs so
// retries don't dominate wall clock, hedging off unless a test opts in.
func fastCfg(workers ...string) Config {
	return Config{
		Workers:     workers,
		ShardSize:   4,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		HedgeAfter:  -1,
		EjectAfter:  2,
		Probation:   200 * time.Millisecond,
	}
}

func reportBytes(t *testing.T, rep *faultinject.Report) []byte {
	t.Helper()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func sequentialOracle(t *testing.T, cfg faultinject.CampaignConfig) []byte {
	t.Helper()
	rep, err := faultinject.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reportBytes(t, rep)
}

// TestFabricWorkerLossByteIdentical is the headline robustness test:
// three workers run a campaign, one is SIGKILL-equivalently destroyed
// after serving its first shard (connections severed, port refusing), and
// the merged report must still be byte-identical to a sequential
// single-process run.
func TestFabricWorkerLossByteIdentical(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)

	w1 := newWorker(t)
	w3 := newWorker(t)
	// w2 dies after its first shard response: in-flight connections are
	// severed and every later dial is refused, exactly what a kill -9 of
	// the worker process looks like from the coordinator's side.
	var served atomic.Int32
	var w2 *httptest.Server
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	w2 = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		base.ServeHTTP(w, r)
		if r.URL.Path == "/campaign/shard" && served.Add(1) == 1 {
			go func() {
				w2.CloseClientConnections()
				w2.Close()
			}()
		}
	}))
	t.Cleanup(w2.Close)

	reg := obs.NewRegistry()
	cfg := fastCfg(w1.URL, w2.URL, w3.URL)
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("fabric report differs from sequential oracle\nfabric: %s\noracle: %s", got, want)
	}
}

// TestFabricCoordinatorResume kills the coordinator mid-campaign (context
// cancel after two shards commit) and restarts it on the same journal:
// the second invocation must re-dispatch zero journaled runs and the
// final report must match the sequential oracle byte for byte.
func TestFabricCoordinatorResume(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)
	jpath := filepath.Join(t.TempDir(), "campaign.journal")

	// Phase 1: cancel the coordinator after two shard responses have been
	// produced — a controlled stand-in for kill -9, since every committed
	// shard is already fsync'd to the journal when onDone returns.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var served atomic.Int32
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		base.ServeHTTP(rw, r)
		if r.URL.Path == "/campaign/shard" && served.Add(1) == 2 {
			cancel()
		}
	}))
	t.Cleanup(w.Close)

	j1, err := faultinject.OpenJournal(jpath, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(w.URL)
	cfg.Journal = j1
	co1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := co1.RunCampaign(ctx, ccfg); err == nil {
		t.Fatal("phase 1 should have been cancelled mid-campaign")
	}
	j1.Close()

	// Snapshot what phase 1 committed.
	j2, err := faultinject.OpenJournal(jpath, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	committed := map[string]bool{}
	for _, arch := range []string{"posit", "float"} {
		for run := 0; run < ccfg.Runs; run++ {
			if _, ok := j2.Lookup(arch, run); ok {
				committed[fmt.Sprintf("%s/%d", arch, run)] = true
			}
		}
	}
	if len(committed) == 0 {
		t.Fatal("phase 1 journaled nothing; the resume test needs partial progress")
	}
	t.Logf("phase 1 committed %d of %d runs", len(committed), 2*ccfg.Runs)

	// Phase 2: a fresh coordinator on the same journal. The worker-side
	// middleware fails the test on any request for an already-journaled
	// run — "resume re-runs zero completed shards" enforced at the wire.
	w2 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" {
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			var req faultinject.ShardRequest
			if err := json.Unmarshal(body, &req); err == nil {
				for run := req.Lo; run < req.Hi; run++ {
					if committed[fmt.Sprintf("%s/%d", req.Arch, run)] {
						t.Errorf("resume re-dispatched journaled run %s/%d (shard [%d,%d))", req.Arch, run, req.Lo, req.Hi)
					}
				}
			}
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(w2.Close)

	cfg2 := fastCfg(w2.URL)
	cfg2.Journal = j2
	co2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co2.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("resumed fabric report differs from sequential oracle\nfabric: %s\noracle: %s", got, want)
	}
}

// TestFabricResumeFullyJournaled: a journal that already holds every run
// must produce the report via a single golden probe — zero run requests.
func TestFabricResumeFullyJournaled(t *testing.T) {
	ccfg := testCampaign()
	ccfg.Arch = "posit"
	ccfg.Runs = 6
	want := sequentialOracle(t, ccfg)
	jpath := filepath.Join(t.TempDir(), "full.journal")

	// Fill the journal out-of-band, as an in-process campaign would (no
	// golden records — those are fabric-only).
	j, err := faultinject.OpenJournal(jpath, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := faultinject.RunShard(context.Background(), faultinject.ShardRequest{
		Version: faultinject.ShardVersion, Config: ccfg.Wire(), Arch: "posit", Lo: 0, Hi: ccfg.Runs,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range full.Results {
		if err := j.Record("posit", rr); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	var runReqs atomic.Int32
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" {
			body, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(body))
			var req faultinject.ShardRequest
			if err := json.Unmarshal(body, &req); err == nil && req.Lo < req.Hi {
				runReqs.Add(1)
			}
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(w.Close)

	j2, err := faultinject.OpenJournal(jpath, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	cfg := fastCfg(w.URL)
	cfg.Journal = j2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := runReqs.Load(); n != 0 {
		t.Fatalf("fully journaled resume issued %d run-executing shard requests (want 0: golden probe only)", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("fully journaled resume differs from sequential oracle")
	}
}

// TestFabricHonorsRetryAfter: a 429 is flow control, not failure — the
// coordinator must wait out the advertised window and must not count the
// throttle toward ejection.
func TestFabricHonorsRetryAfter(t *testing.T) {
	ccfg := testCampaign()
	ccfg.Arch = "posit"
	ccfg.Runs = 4
	want := sequentialOracle(t, ccfg)

	var throttled atomic.Bool
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" && throttled.CompareAndSwap(false, true) {
			rw.Header().Set("Retry-After", "1")
			rw.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(rw, `{"error":"saturated","kind":"overload"}`)
			return
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(w.Close)

	reg := obs.NewRegistry()
	cfg := fastCfg(w.URL)
	cfg.ShardSize = ccfg.Runs // single shard: the 429 must gate the whole campaign
	cfg.Metrics = reg
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("campaign finished in %v; a 1s Retry-After window was not honored", elapsed)
	}
	if n := reg.Counter("pd_fabric_throttles_total").Value(); n != 1 {
		t.Fatalf("throttles counter = %d, want 1", n)
	}
	if n := reg.Counter("pd_fabric_ejections_total").Value(); n != 0 {
		t.Fatalf("a throttle cost the worker %d ejections; backpressure must not count as failure", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("throttled campaign differs from sequential oracle")
	}
}

// TestFabricEjectsFailingWorker: a persistently broken worker is ejected
// after EjectAfter consecutive failures and the campaign completes on the
// healthy one, byte-identically.
func TestFabricEjectsFailingWorker(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)

	good := newWorker(t)
	bad := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, `{"error":"disk on fire","kind":"internal-fault"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)

	reg := obs.NewRegistry()
	cfg := fastCfg(good.URL, bad.URL)
	cfg.Metrics = reg
	cfg.Probation = time.Hour // once out, stays out for this test
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("pd_fabric_ejections_total").Value(); n < 1 {
		t.Fatalf("ejections counter = %d, want >= 1", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("campaign with ejected worker differs from sequential oracle")
	}
}

// TestFabricLeaseReassignment: a worker that accepts a shard and then
// hangs forever must not hang the campaign — the lease expires and the
// shard is reassigned (here: retried on the same, now recovered, worker).
func TestFabricLeaseReassignment(t *testing.T) {
	ccfg := testCampaign()
	ccfg.Arch = "posit"
	ccfg.Runs = 4
	want := sequentialOracle(t, ccfg)

	// Precompute the shard answer so the retry fits any lease: the point
	// of this test is the hang and its lease-driven escape, not shard
	// compute time (which -race -cpu=1 inflates past a tight lease).
	canned, err := faultinject.RunShard(context.Background(), faultinject.ShardRequest{
		Version: faultinject.ShardVersion, Config: ccfg.Wire(), Arch: "posit", Lo: 0, Hi: ccfg.Runs,
	})
	if err != nil {
		t.Fatal(err)
	}
	cannedJSON, err := json.Marshal(canned)
	if err != nil {
		t.Fatal(err)
	}
	var hung atomic.Bool
	stop := make(chan struct{})
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // consumed body → disconnects are detected
		if hung.CompareAndSwap(false, true) {
			select {
			case <-r.Context().Done(): // the lease was torn down
			case <-stop: // test over; don't wedge server cleanup
			}
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.Write(cannedJSON)
	}))
	t.Cleanup(w.Close)
	t.Cleanup(func() { close(stop) })

	reg := obs.NewRegistry()
	cfg := fastCfg(w.URL)
	cfg.ShardSize = ccfg.Runs
	cfg.LeaseTimeout = 300 * time.Millisecond
	cfg.EjectAfter = 5 // keep the sole worker admitted; this test is about leases
	cfg.Metrics = reg
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("pd_fabric_reassignments_total").Value(); n < 1 {
		t.Fatalf("reassignments counter = %d, want >= 1", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("campaign with expired lease differs from sequential oracle")
	}
}

// TestFabricHedgesStraggler: with one worker stuck on a shard and another
// idle, the coordinator launches a duplicate attempt after HedgeAfter and
// takes the first answer. The lease is deliberately long — hedging, not
// lease expiry, must rescue the shard.
func TestFabricHedgesStraggler(t *testing.T) {
	ccfg := testCampaign()
	ccfg.Arch = "posit"
	want := sequentialOracle(t, ccfg)

	var hung atomic.Bool
	stop := make(chan struct{})
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	slow := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" && hung.CompareAndSwap(false, true) {
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done(): // the winning hedge cancelled us
			case <-stop:
			}
			return
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(slow.Close)
	t.Cleanup(func() { close(stop) })
	fast := newWorker(t)

	reg := obs.NewRegistry()
	cfg := fastCfg(slow.URL, fast.URL)
	cfg.HedgeAfter = 200 * time.Millisecond
	cfg.LeaseTimeout = time.Minute
	cfg.Metrics = reg
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("campaign took %v; hedging should have rescued the stuck shard long before the lease", elapsed)
	}
	if n := reg.Counter(`pd_fabric_hedges_total{kind="campaign"}`).Value(); n < 1 {
		t.Fatalf("hedges counter = %d, want >= 1", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("hedged campaign differs from sequential oracle")
	}
}

// TestFabricPermanentErrorFailsFast: version skew (or any 400) must fail
// the job immediately instead of burning MaxAttempts on a request no
// worker will ever accept.
func TestFabricPermanentErrorFailsFast(t *testing.T) {
	w := newWorker(t)
	cfg := fastCfg(w.URL)
	cfg.MaxAttempts = 1000 // would take forever if the coordinator retried
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := testCampaign()
	bad.Workload = "polybench/no-such-kernel"
	start := time.Now()
	if _, err := co.RunCampaign(context.Background(), bad); err == nil {
		t.Fatal("campaign on an unknown workload should fail")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("permanent failure took %v to surface; it must fail fast", elapsed)
	}
}

// TestFabricProfileByteIdentical: a profile sweep sharded across two
// workers merges to the bytes of a single-process sweep.
func TestFabricProfileByteIdentical(t *testing.T) {
	w1 := newWorker(t)
	w2 := newWorker(t)
	cfg := fastCfg(w1.URL, w2.URL)
	cfg.ShardSize = 2
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := co.RunProfile(context.Background(), ProfileSweep{Kernel: "gemm", N: 8, Posit: true, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RecordProfile(harness.ProfileOptions{Kernel: "gemm", N: 8, Posit: true, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	var gb, wb bytes.Buffer
	if err := got.WriteJSON(&gb); err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatal("fabric profile differs from single-process sweep")
	}
}

// TestFabricBackoffBounds: the retry schedule must grow, cap, and jitter
// within [d/2, d].
func TestFabricBackoffBounds(t *testing.T) {
	co, err := New(Config{Workers: []string{"http://x"}, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for failures, ceil := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		4: 800 * time.Millisecond,
		9: time.Second, // capped
	} {
		for i := 0; i < 50; i++ {
			d := co.backoff(failures)
			if d < ceil/2 || d > ceil {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]", failures, d, ceil/2, ceil)
			}
		}
	}
}
