package fabric

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// TestFleetTraceEndToEnd runs a real campaign over two real workers with
// fleet tracing on and checks the whole observability loop: the report
// stays byte-identical to the sequential oracle (tracing must never touch
// results), the merged Chrome trace validates structurally, worker request
// spans parent under live coordinator attempt spans, and re-merging the
// same snapshot with permuted arrival order reproduces the bytes.
func TestFleetTraceEndToEnd(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)

	newTracedWorker := func() string {
		s := server.New(server.Config{DefaultTimeout: 30 * time.Second, FlightRecorder: 64})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts.URL
	}
	u1, u2 := newTracedWorker(), newTracedWorker()

	trace := NewFleetTrace(ccfg.Workload, "12", "42")
	bus := NewBus()
	events, cancelSub := bus.Subscribe(1024)
	defer cancelSub()
	prog := NewProgress()

	cfg := fastCfg(u1, u2)
	cfg.Trace = trace
	cfg.Events = bus
	cfg.Progress = prog
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("traced fabric report differs from sequential oracle")
	}

	// Progress saw the whole job.
	st := prog.Status()
	if st.Running || st.DoneShards != st.TotalShards || st.TotalShards == 0 {
		t.Fatalf("progress after campaign = %+v", st)
	}

	// The live bus streamed at least one dispatch and one completion.
	kinds := map[string]int{}
	for len(events) > 0 {
		kinds[(<-events).Kind]++
	}
	if kinds[obs.EvShardDispatch] == 0 || kinds[obs.EvShardDone] == 0 {
		t.Fatalf("bus event kinds = %v; want dispatches and completions", kinds)
	}
	if kinds[obs.EvShardDone] != st.TotalShards {
		t.Fatalf("bus saw %d shard-done for %d shards", kinds[obs.EvShardDone], st.TotalShards)
	}
	if kinds[obs.EvMemberJoin] != 2 {
		t.Fatalf("bus saw %d member joins, want 2", kinds[obs.EvMemberJoin])
	}

	// The merged Chrome trace validates, names the coordinator and at
	// least one worker row, and carries cross-process parent links.
	var out bytes.Buffer
	if err := trace.WriteChrome(&out, "pdcoord"); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateChromeTrace(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("merged fleet trace invalid: %v\n%s", err, out.String())
	}
	if n == 0 {
		t.Fatal("empty merged trace")
	}
	for _, wantStr := range []string{`"pdcoord"`, `"coord_span"`, `"shard-dispatch"`, `"request"`, trace.TraceID} {
		if !strings.Contains(out.String(), wantStr) {
			t.Errorf("merged trace missing %s", wantStr)
		}
	}

	// Re-merging the snapshot with workers in reversed order must not
	// change a byte — the merger owns the ordering, not arrival.
	coord, workers := trace.Snapshot()
	if len(workers) == 0 {
		t.Fatal("no worker span batches were fetched")
	}
	rev := make([]obs.WorkerTrace, len(workers))
	for i, wt := range workers {
		rev[len(workers)-1-i] = wt
		for j, k := 0, len(wt.Requests)-1; j < k; j, k = j+1, k-1 {
			wt.Requests[j], wt.Requests[k] = wt.Requests[k], wt.Requests[j]
		}
	}
	var out2 bytes.Buffer
	if err := obs.WriteFleetChromeTrace(&out2, "pdcoord", coord, rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Fatal("fleet trace merge depends on arrival order")
	}

	// Every fetched batch echoes a coordinator-minted id and the fleet
	// trace id — the wire propagation worked end to end.
	for _, wt := range workers {
		for _, rt := range wt.Requests {
			if !strings.HasPrefix(rt.Req, "c") {
				t.Errorf("worker batch %q does not carry a coordinator-minted id", rt.Req)
			}
			if rt.Trace != trace.TraceID {
				t.Errorf("worker batch %s trace id %q, want %q", rt.Req, rt.Trace, trace.TraceID)
			}
			if rt.Parent == 0 {
				t.Errorf("worker batch %s has no coordinator parent span", rt.Req)
			}
		}
	}
}
