package fabric

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"positdebug/internal/obs"
)

// Member is one worker in the fleet, as the coordinator knows it: where to
// dial it, what it advertised about itself at registration, and when it
// was last heard from.
type Member struct {
	// URL is the worker's pdserve base URL, normalized (no trailing /).
	URL string `json:"url"`
	// Capacity is the worker's advertised concurrent-run capacity
	// (pdserve's MaxConcurrent); informational today, the scheduler still
	// dispatches one shard per worker at a time.
	Capacity int `json:"capacity,omitempty"`
	// Oracle and Backend are the shadow-oracle and execution-backend tier
	// the worker advertised — surfaced at /fabric/members so an operator
	// can spot a worker serving the wrong tier before it skews latency.
	Oracle  string `json:"oracle,omitempty"`
	Backend string `json:"backend,omitempty"`
	// Static marks members from a -workers list: they never expire for
	// missing heartbeats (they never promised any).
	Static bool `json:"static,omitempty"`
	// Stats is the telemetry snapshot the worker's most recent heartbeat
	// carried (queue depth, shadow tier, cache hit rate, detections); nil
	// until a heartbeat delivers one. It feeds GET /fleet/status and the
	// pd_fleet_worker_* gauges.
	Stats *obs.WorkerStats `json:"stats,omitempty"`
	// Joined and LastBeat track registration time and the most recent
	// heartbeat (or join time for static members).
	Joined   time.Time `json:"joined"`
	LastBeat time.Time `json:"last_heartbeat"`
}

// NormalizeWorkerURL validates and canonicalizes one worker base URL:
// surrounding whitespace is trimmed, a trailing slash dropped, and
// anything that isn't an absolute http(s) URL with a host is rejected
// with an error naming the offending value.
func NormalizeWorkerURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("empty worker URL")
	}
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("malformed worker URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("worker URL %q must be http:// or https://", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("worker URL %q has no host", raw)
	}
	return strings.TrimRight(raw, "/"), nil
}

// Membership is the fleet roster shared between the scheduler (reader),
// the Registrar (writer: registrations, heartbeat expiry, probe
// evictions) and the scheduler's own death verdicts (writer). It is the
// single source of truth for who is in the fleet; the scheduler follows
// it mid-campaign — a worker that joins while shards are in flight starts
// receiving work, one that leaves has its lease cancelled and its shards
// migrated immediately.
type Membership struct {
	mu      sync.Mutex
	members map[string]*Member
	version uint64
	notify  chan struct{}
	reg     *obs.Registry
	logf    func(format string, args ...any)
}

// NewMembership returns an empty roster.
func NewMembership() *Membership {
	return &Membership{
		members: make(map[string]*Member),
		notify:  make(chan struct{}, 1),
	}
}

// SetLogf installs a human-oriented event logger (join/leave lines).
func (m *Membership) SetLogf(logf func(format string, args ...any)) {
	m.mu.Lock()
	m.logf = logf
	m.mu.Unlock()
}

// setMetrics attaches the registry receiving pd_fabric_member_* counters
// and the pd_fabric_members gauge; first writer wins.
func (m *Membership) setMetrics(reg *obs.Registry) {
	m.mu.Lock()
	if m.reg == nil && reg != nil {
		m.reg = reg
		reg.Gauge("pd_fabric_members").Set(int64(len(m.members)))
	}
	m.mu.Unlock()
}

// Join adds (or refreshes) a member. A new URL is a join: the roster
// version bumps and watchers are woken. A known URL is a heartbeat: the
// advertised fields and LastBeat refresh without a membership change.
// The URL is validated with NormalizeWorkerURL. Returns true when the
// member was new.
func (m *Membership) Join(mem Member) (bool, error) {
	u, err := NormalizeWorkerURL(mem.URL)
	if err != nil {
		return false, err
	}
	mem.URL = u
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.members[u]; ok {
		cur.LastBeat = now
		if mem.Capacity != 0 && mem.Capacity != cur.Capacity {
			// Capacity weights the scheduler's ring arcs, so a change is a
			// membership change: bump the version to trigger a rebuild.
			cur.Capacity = mem.Capacity
			m.changedLocked()
		}
		if mem.Oracle != "" {
			cur.Oracle = mem.Oracle
		}
		if mem.Backend != "" {
			cur.Backend = mem.Backend
		}
		if mem.Stats != nil {
			cur.Stats = mem.Stats
			m.publishStatsLocked(u, mem.Stats)
		}
		cur.Static = cur.Static || mem.Static
		return false, nil
	}
	mem.Joined, mem.LastBeat = now, now
	m.members[u] = &mem
	if mem.Stats != nil {
		m.publishStatsLocked(u, mem.Stats)
	}
	m.changedLocked()
	if m.reg != nil {
		m.reg.Counter("pd_fabric_member_joins_total").Inc()
	}
	if m.logf != nil {
		m.logf("fabric: member joined: %s (capacity %d, oracle %s, backend %s, static %v)",
			u, mem.Capacity, mem.Oracle, mem.Backend, mem.Static)
	}
	return true, nil
}

// publishStatsLocked mirrors one worker's heartbeat telemetry into the
// registry as labeled pd_fleet_worker_* gauges, the Prometheus view of
// what GET /fleet/status reports.
func (m *Membership) publishStatsLocked(u string, s *obs.WorkerStats) {
	if m.reg == nil {
		return
	}
	l := `{worker="` + u + `"}`
	m.reg.Gauge("pd_fleet_worker_queue_depth" + l).Set(s.QueueDepth)
	m.reg.Gauge("pd_fleet_worker_inflight" + l).Set(s.InFlight)
	m.reg.Gauge("pd_fleet_worker_detections" + l).Set(s.Detections)
	m.reg.Gauge("pd_fleet_worker_shards" + l).Set(s.Shards)
	m.reg.Gauge("pd_fleet_worker_cache_hit_permille" + l).Set(int64(s.CacheHitRate() * 1000))
	degraded := int64(0)
	if s.Degraded {
		degraded = 1
	}
	m.reg.Gauge("pd_fleet_worker_degraded" + l).Set(degraded)
}

// JoinStatic adds one static member (a -workers list entry): exempt from
// heartbeat expiry, otherwise a normal member.
func (m *Membership) JoinStatic(rawURL string) error {
	_, err := m.Join(Member{URL: rawURL, Static: true})
	return err
}

// Leave removes a member (drain announcement, heartbeat expiry, probe
// eviction, or a scheduler death verdict). Reason is for the log and the
// campaign journal. Returns true when the member was present.
func (m *Membership) Leave(rawURL, reason string) bool {
	u, err := NormalizeWorkerURL(rawURL)
	if err != nil {
		u = strings.TrimRight(strings.TrimSpace(rawURL), "/")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.members[u]; !ok {
		return false
	}
	delete(m.members, u)
	m.changedLocked()
	if m.reg != nil {
		m.reg.Counter("pd_fabric_member_leaves_total").Inc()
	}
	if m.logf != nil {
		m.logf("fabric: member left: %s (%s)", u, reason)
	}
	return true
}

// ExpireStale removes every non-static member whose last heartbeat is
// older than ttl, returning the URLs dropped. Static members never
// expire — they never promised heartbeats.
func (m *Membership) ExpireStale(ttl time.Duration, now time.Time) []string {
	var dropped []string
	m.mu.Lock()
	for u, mem := range m.members {
		if mem.Static || now.Sub(mem.LastBeat) <= ttl {
			continue
		}
		delete(m.members, u)
		dropped = append(dropped, u)
		if m.reg != nil {
			m.reg.Counter("pd_fabric_member_leaves_total").Inc()
		}
		if m.logf != nil {
			m.logf("fabric: member expired: %s (no heartbeat for %v)", u, now.Sub(mem.LastBeat).Round(time.Millisecond))
		}
	}
	if len(dropped) > 0 {
		m.changedLocked()
	}
	m.mu.Unlock()
	sort.Strings(dropped)
	return dropped
}

// Snapshot returns the roster sorted by URL.
func (m *Membership) Snapshot() []Member {
	m.mu.Lock()
	out := make([]Member, 0, len(m.members))
	for _, mem := range m.members {
		out = append(out, *mem)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Len reports the current member count.
func (m *Membership) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.members)
}

// Version increments on every membership change; the scheduler compares
// it against the version it last synced to decide whether to rebuild its
// worker table and ring.
func (m *Membership) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Notify returns a channel that receives (capacity-1, coalesced) after
// every membership change — the scheduler selects on it so a join or
// leave wakes a blocked event loop immediately.
func (m *Membership) Notify() <-chan struct{} { return m.notify }

func (m *Membership) changedLocked() {
	m.version++
	if m.reg != nil {
		m.reg.Gauge("pd_fabric_members").Set(int64(len(m.members)))
	}
	select {
	case m.notify <- struct{}{}:
	default: // a wakeup is already pending; one is enough
	}
}
