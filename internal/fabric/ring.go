package fabric

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member vnode count of the consistent-hash
// ring. 64 points per worker keeps the arc sizes within a few percent of
// uniform for fleets up to the dozens while the whole ring stays small
// enough to rebuild on every membership change.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over worker URLs, keyed by kernel
// identity (workload/source hash). It exists for one reason: compile-cache
// affinity. pdserve workers keep an LRU of compiled, instrumented
// programs, and a sweep that keeps landing same-kernel shards on the same
// worker pays the compile+instrument cost once instead of once per shard.
// Consistent hashing makes that affinity survive churn — when a member
// joins or leaves, only the keys on the moved arc change owner; every
// other kernel keeps hitting its warm worker.
//
// A Ring is immutable once built; membership changes build a new one
// (rebuilds are microseconds at fleet scale). The zero-member ring is
// valid and owns nothing.
type Ring struct {
	vnodes int
	points []ringPoint
	urls   []string // distinct members, sorted
}

type ringPoint struct {
	hash uint64
	url  string
}

// NewRing builds a ring over the given worker URLs with vnodes virtual
// nodes per member (<=0 selects DefaultVirtualNodes). Duplicate URLs
// collapse to one member. Every member weighs the same; NewWeightedRing
// scales arcs by advertised capacity.
func NewRing(urls []string, vnodes int) *Ring {
	caps := make(map[string]int, len(urls))
	for _, u := range urls {
		if u != "" {
			caps[u] = 1
		}
	}
	return NewWeightedRing(caps, vnodes)
}

// MaxRingWeight caps a member's capacity weight: a worker advertising an
// enormous capacity gets at most this multiple of a capacity-1 member's
// arc, bounding both ring size and the damage a misconfigured
// advertisement can do to load balance.
const MaxRingWeight = 16

// NewWeightedRing builds a ring whose per-member arc share scales with
// advertised capacity: a member of capacity c places c× the vnodes of a
// capacity-1 member (clamped to [1, MaxRingWeight]; <=0 means
// "unadvertised" and weighs 1), so an 8-slot worker absorbs ~8× the
// keyspace of a 1-slot one. Weighting is minimal-movement by
// construction — a member's first vnodes points are exactly the points
// the unweighted ring places, and raising one member's weight only adds
// points owned by that member, so keys only ever move toward (or away
// from) the member whose weight changed, never between bystanders.
func NewWeightedRing(capacities map[string]int, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	distinct := make([]string, 0, len(capacities))
	for u := range capacities {
		if u != "" {
			distinct = append(distinct, u)
		}
	}
	sort.Strings(distinct)
	r := &Ring{vnodes: vnodes, urls: distinct}
	r.points = make([]ringPoint, 0, len(distinct)*vnodes)
	for _, u := range distinct {
		w := capacities[u]
		if w < 1 {
			w = 1
		}
		if w > MaxRingWeight {
			w = MaxRingWeight
		}
		for i := 0; i < vnodes*w; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(u + "#" + strconv.Itoa(i)), url: u})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].url < r.points[j].url // total order even on hash collisions
	})
	return r
}

// ringHash is FNV-1a 64: stable across processes and Go versions, which
// matters because affinity is only worth anything if a restarted
// coordinator maps the same kernels to the same workers.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Members returns the ring's distinct member URLs, sorted.
func (r *Ring) Members() []string { return r.urls }

// Len reports the number of distinct members.
func (r *Ring) Len() int { return len(r.urls) }

// Owner returns the member owning key — the first vnode clockwise from
// the key's hash — or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].url
}

// Order returns every member in ring-walk order starting from key's
// owner: the owner first, then each distinct member as its first vnode is
// passed walking clockwise. This is the fallback order the scheduler uses
// when the owner is busy, ejected or throttled — deterministic per key,
// so a kernel's second-choice worker is as sticky as its first.
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.urls))
	seen := make(map[string]bool, len(r.urls))
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < len(r.urls); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.url] {
			seen[p.url] = true
			out = append(out, p.url)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise-after the
// key's hash, wrapping at the top of the ring.
func (r *Ring) search(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}
