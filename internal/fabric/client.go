package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
)

// callError classifies one failed worker call for the scheduler: was it
// backpressure (status 429 + retryAfter), a lease expiry (reassign), an
// unretryable rejection (permanent — the request itself is wrong, no
// worker will ever accept it), or an ordinary transient fault.
type callError struct {
	status       int // HTTP status, 0 for transport-level failures
	retryAfter   time.Duration
	permanent    bool
	leaseExpired bool
	err          error
}

func (e *callError) Error() string {
	switch {
	case e.leaseExpired:
		return fmt.Sprintf("lease expired: %v", e.err)
	case e.status != 0:
		return fmt.Sprintf("HTTP %d: %v", e.status, e.err)
	default:
		return e.err.Error()
	}
}

func (e *callError) Unwrap() error { return e.err }

// post sends one JSON request and returns the response body on 200, or a
// classified *callError otherwise. The response body of an error reply is
// folded into the error text — worker-side diagnostics (taxonomy kind,
// message) travel back to the coordinator's log.
func (c *Coordinator) post(ctx context.Context, url string, in any) ([]byte, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return nil, &callError{permanent: true, err: fmt.Errorf("encoding request: %w", err)}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, &callError{permanent: true, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	if b, ok := attemptFrom(ctx); ok {
		// A traced attempt carries its identity on the wire: the worker
		// adopts the request id and trace id for its flight events, and the
		// traceparent's span id parents the worker's request span under
		// this attempt in the merged fleet trace.
		req.Header.Set(obs.RequestIDHeader, b.rid)
		if b.tc.Valid() {
			req.Header.Set(obs.TraceparentHeader, b.tc.Traceparent())
		}
	}
	resp, err := c.client.Do(req)
	if err != nil {
		// Connection refused, reset, timeout: the canonical transient
		// fault — retryable on this or any other worker.
		return nil, &callError{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, &callError{err: fmt.Errorf("reading response: %w", err)}
	}
	if resp.StatusCode == http.StatusOK {
		return b, nil
	}
	ce := &callError{
		status: resp.StatusCode,
		err:    fmt.Errorf("%s", strings.TrimSpace(string(b))),
	}
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
			ce.retryAfter = d
		}
	case http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusMethodNotAllowed:
		// The worker understood us and said the request can never
		// succeed (version skew, unknown workload, deterministic trap).
		// Retrying would loop forever on the same answer.
		ce.permanent = true
	}
	return nil, ce
}

// maxResponseBytes bounds a worker reply; a shard of tens of thousands of
// runs serializes to a few MB, so 1 GiB is pure paranoia against a
// misbehaving endpoint streaming garbage forever.
const maxResponseBytes = 1 << 30

// parseRetryAfter interprets a Retry-After header per RFC 9110 §10.2.3:
// either delta-seconds or an HTTP-date. An HTTP-date already in the past
// clamps to 0 ("now is fine"); a negative delta, empty value, or anything
// unparsable reports ok=false — no hint, which the scheduler turns into
// its own default pause, never a zero-delay hammer.
func parseRetryAfter(h string, now time.Time) (time.Duration, bool) {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(h); err == nil {
		d := at.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// postCampaignShard runs one campaign shard (or golden probe) on a worker
// and verifies the echo: a result describing a different shard than the
// one asked for means request/response mixup and is treated as a worker
// fault, not merged.
func (c *Coordinator) postCampaignShard(ctx context.Context, base string, req faultinject.ShardRequest) (*faultinject.ShardResult, error) {
	b, err := c.post(ctx, base+"/campaign/shard", req)
	if err != nil {
		return nil, err
	}
	var res faultinject.ShardResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, &callError{err: fmt.Errorf("undecodable shard response: %w", err)}
	}
	if res.Arch != req.Arch || res.Lo != req.Lo || res.Hi != req.Hi {
		return nil, &callError{err: fmt.Errorf("shard echo mismatch: asked %s[%d,%d), got %s[%d,%d)",
			req.Arch, req.Lo, req.Hi, res.Arch, res.Lo, res.Hi)}
	}
	if want := req.Hi - req.Lo; len(res.Results) != want {
		return nil, &callError{err: fmt.Errorf("shard returned %d results for a %d-run range", len(res.Results), want)}
	}
	return &res, nil
}

// postProfileShard runs one profile shard on a worker and decodes the
// canonical profile JSON it returns.
func (c *Coordinator) postProfileShard(ctx context.Context, base string, req harness.ProfileShard) (*profile.Profile, error) {
	b, err := c.post(ctx, base+"/profile/shard", req)
	if err != nil {
		return nil, err
	}
	p, err := profile.ReadJSON(bytes.NewReader(b))
	if err != nil {
		return nil, &callError{err: fmt.Errorf("undecodable profile response: %w", err)}
	}
	return p, nil
}
