package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"positdebug/internal/obs"
)

func TestNormalizeWorkerURL(t *testing.T) {
	cases := []struct {
		in, want, errSub string
	}{
		{in: "http://w1:8080", want: "http://w1:8080"},
		{in: "  http://w1:8080/  ", want: "http://w1:8080"},
		{in: "https://w1", want: "https://w1"},
		{in: "", errSub: "empty worker URL"},
		{in: "   ", errSub: "empty worker URL"},
		{in: "w1:8080", errSub: "must be http:// or https://"},
		{in: "ftp://w1", errSub: "must be http:// or https://"},
		{in: "http://", errSub: "has no host"},
		{in: "http://%zz", errSub: "malformed"},
	}
	for _, c := range cases {
		got, err := NormalizeWorkerURL(c.in)
		if c.errSub != "" {
			if err == nil || !strings.Contains(err.Error(), c.errSub) {
				t.Errorf("NormalizeWorkerURL(%q) err = %v, want containing %q", c.in, err, c.errSub)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("NormalizeWorkerURL(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
}

func TestMembershipJoinHeartbeatLeave(t *testing.T) {
	m := NewMembership()
	v0 := m.Version()

	joined, err := m.Join(Member{URL: "http://w1:1/", Capacity: 4, Oracle: "bigfp"})
	if err != nil || !joined {
		t.Fatalf("first Join = %v, %v; want true, nil", joined, err)
	}
	if m.Version() == v0 {
		t.Fatal("join did not bump the version")
	}
	select {
	case <-m.Notify():
	default:
		t.Fatal("join did not signal Notify")
	}

	// A second Join of the same URL is a heartbeat: fields refresh. A
	// capacity change IS a membership change (it re-weights the ring's
	// arcs), so that heartbeat bumps the version; an identical one after
	// it does not.
	v1 := m.Version()
	joined, err = m.Join(Member{URL: "http://w1:1", Capacity: 8, Backend: "vm"})
	if err != nil || joined {
		t.Fatalf("heartbeat Join = %v, %v; want false, nil", joined, err)
	}
	if m.Version() == v1 {
		t.Fatal("capacity-changing heartbeat did not bump the version; the ring would keep stale weights")
	}
	v2 := m.Version()
	if _, err := m.Join(Member{URL: "http://w1:1", Capacity: 8, Backend: "vm"}); err != nil {
		t.Fatalf("steady heartbeat Join: %v", err)
	}
	if m.Version() != v2 {
		t.Fatal("steady heartbeat bumped the version; heartbeats are not membership changes")
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].URL != "http://w1:1" || snap[0].Capacity != 8 || snap[0].Oracle != "bigfp" || snap[0].Backend != "vm" {
		t.Fatalf("roster after heartbeat = %+v", snap)
	}

	if !m.Leave("http://w1:1", "test") {
		t.Fatal("Leave of a present member returned false")
	}
	if m.Leave("http://w1:1", "test") {
		t.Fatal("Leave of an absent member returned true")
	}
	if m.Len() != 0 {
		t.Fatalf("Len after leave = %d", m.Len())
	}
	if _, err := m.Join(Member{URL: "not a url"}); err == nil {
		t.Fatal("Join accepted a malformed URL")
	}
}

func TestMembershipExpireStale(t *testing.T) {
	m := NewMembership()
	if err := m.JoinStatic("http://static:1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Join(Member{URL: "http://dyn:2"}); err != nil {
		t.Fatal(err)
	}
	// Nothing is stale yet.
	if dropped := m.ExpireStale(time.Minute, time.Now()); len(dropped) != 0 {
		t.Fatalf("fresh members expired: %v", dropped)
	}
	// Far future: the dynamic member's heartbeat is ancient, the static one
	// never promised any.
	dropped := m.ExpireStale(time.Minute, time.Now().Add(time.Hour))
	if len(dropped) != 1 || dropped[0] != "http://dyn:2" {
		t.Fatalf("ExpireStale dropped %v, want only the dynamic member", dropped)
	}
	if m.Len() != 1 {
		t.Fatalf("Len after expiry = %d, want the static survivor", m.Len())
	}
}

func TestRegistrarEndpoints(t *testing.T) {
	members := NewMembership()
	reg, err := NewRegistrar(RegistrarConfig{Members: members, ProbeInterval: -1, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(reg.Handler())
	t.Cleanup(ts.Close)

	post := func(path string, body any) map[string]any {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s = %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	out := post("/fabric/register", RegisterRequest{URL: "http://w1:1", Capacity: 2, Oracle: "dd", Backend: "vm"})
	if out["status"] != "joined" {
		t.Fatalf("first register status = %v", out["status"])
	}
	out = post("/fabric/register", RegisterRequest{URL: "http://w1:1"})
	if out["status"] != "heartbeat" {
		t.Fatalf("second register status = %v", out["status"])
	}

	resp, err := http.Get(ts.URL + "/fabric/members")
	if err != nil {
		t.Fatal(err)
	}
	var roster struct{ Members []Member }
	if err := json.NewDecoder(resp.Body).Decode(&roster); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(roster.Members) != 1 || roster.Members[0].Oracle != "dd" {
		t.Fatalf("roster = %+v", roster.Members)
	}

	out = post("/fabric/deregister", DeregisterRequest{URL: "http://w1:1", Reason: "drain"})
	if out["removed"] != true {
		t.Fatalf("deregister removed = %v", out["removed"])
	}
	if members.Len() != 0 {
		t.Fatal("deregister left the member in the roster")
	}

	// Malformed registration is a 400, not a join.
	b, _ := json.Marshal(RegisterRequest{URL: "not-a-url"})
	resp, err = http.Post(ts.URL+"/fabric/register", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed register = %d, want 400", resp.StatusCode)
	}
}

// TestRegistrarProbeEviction: a member that keeps answering /readyz with
// anything but 200 is evicted after ProbeFailures consecutive sweeps; one
// good probe in between resets the count.
func TestRegistrarProbeEviction(t *testing.T) {
	var healthy bool
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/readyz" {
			http.NotFound(w, r)
			return
		}
		if healthy {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(worker.Close)

	members := NewMembership()
	if err := members.JoinStatic(worker.URL); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	reg, err := NewRegistrar(RegistrarConfig{
		Members: members, ProbeInterval: -1, ProbeFailures: 3,
		HeartbeatTTL: time.Hour, Metrics: metrics, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	healthy = false
	reg.sweep(ctx, time.Now())
	reg.sweep(ctx, time.Now())
	if members.Len() != 1 {
		t.Fatal("member evicted before ProbeFailures consecutive failures")
	}
	healthy = true
	reg.sweep(ctx, time.Now()) // resets the grudge
	healthy = false
	reg.sweep(ctx, time.Now())
	reg.sweep(ctx, time.Now())
	if members.Len() != 1 {
		t.Fatal("a successful probe did not reset the failure count")
	}
	reg.sweep(ctx, time.Now())
	if members.Len() != 0 {
		t.Fatal("member not evicted after ProbeFailures consecutive failed probes")
	}
	if n := metrics.Counter("pd_fabric_probe_failures_total").Value(); n != 5 {
		t.Fatalf("probe failure counter = %d, want 5", n)
	}
}
