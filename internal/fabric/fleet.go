package fabric

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"positdebug/internal/obs"
)

// This file is the fleet's live-observability surface: campaign progress
// tracking (completion, throughput, ETA), a fan-out bus streaming the
// scheduler's fleet events over SSE, and the HTTP handler pdcoord mounts
// next to the Registrar — GET /fleet/status, GET /fleet/events, and a
// Prometheus /metrics endpoint carrying the pd_fleet_* series.

// Progress tracks one job's shard completion. Safe for concurrent use:
// the scheduler writes, the fleet handler reads.
type Progress struct {
	mu        sync.Mutex
	kind      string
	total     int
	completed int
	started   time.Time
	running   bool
}

// NewProgress returns an idle tracker.
func NewProgress() *Progress { return &Progress{} }

// Start begins tracking a job of total shards.
func (p *Progress) Start(kind string, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.kind, p.total, p.completed = kind, total, 0
	p.started = time.Now()
	p.running = true
	p.mu.Unlock()
}

// ShardDone records one completed shard.
func (p *Progress) ShardDone() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.completed++
	p.mu.Unlock()
}

// Finish marks the job over (success or failure); the counters freeze for
// post-mortem reads.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running = false
	p.mu.Unlock()
}

// ProgressStatus is the JSON shape of one progress snapshot.
type ProgressStatus struct {
	// Kind is "campaign" or "profile" ("" before any job started).
	Kind string `json:"kind,omitempty"`
	// TotalShards / DoneShards count scheduler tasks, not runs.
	TotalShards int `json:"total_shards"`
	DoneShards  int `json:"done_shards"`
	// Completion is DoneShards/TotalShards in [0,1] (0 when idle).
	Completion float64 `json:"completion"`
	// ShardsPerSec is the observed completion throughput.
	ShardsPerSec float64 `json:"shards_per_sec,omitempty"`
	// ETASeconds extrapolates the remaining shards at the observed
	// throughput; 0 when unknown (no completions yet) or done.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// Running is true while the scheduler loop is driving the job.
	Running bool `json:"running"`
}

// Status snapshots the tracker now.
func (p *Progress) Status() ProgressStatus { return p.statusAt(time.Now()) }

func (p *Progress) statusAt(now time.Time) ProgressStatus {
	if p == nil {
		return ProgressStatus{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	st := ProgressStatus{
		Kind: p.kind, TotalShards: p.total, DoneShards: p.completed,
		Running: p.running,
	}
	if p.total > 0 {
		st.Completion = float64(p.completed) / float64(p.total)
	}
	elapsed := now.Sub(p.started).Seconds()
	if p.completed > 0 && elapsed > 0 {
		st.ShardsPerSec = float64(p.completed) / elapsed
		if remaining := p.total - p.completed; remaining > 0 && p.running {
			st.ETASeconds = float64(remaining) / st.ShardsPerSec
		}
	}
	return st
}

// Bus fans scheduler fleet events out to any number of SSE subscribers.
// Publish never blocks: a subscriber that cannot keep up loses events
// (counted per subscriber) rather than stalling the scheduler loop.
type Bus struct {
	mu      sync.Mutex
	subs    map[chan obs.Event]*int64
	dropped int64
}

// NewBus returns an empty bus. A nil *Bus is valid: Publish no-ops.
func NewBus() *Bus { return &Bus{subs: map[chan obs.Event]*int64{}} }

// Subscribe returns a channel receiving published events (buffered buf,
// minimum 1) and a cancel func that closes the subscription.
func (b *Bus) Subscribe(buf int) (<-chan obs.Event, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan obs.Event, buf)
	var drops int64
	b.mu.Lock()
	b.subs[ch] = &drops
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// Publish delivers ev to every subscriber without blocking.
func (b *Bus) Publish(ev obs.Event) {
	if b == nil {
		return
	}
	b.mu.Lock()
	for ch, drops := range b.subs {
		select {
		case ch <- ev:
		default:
			*drops++
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// Dropped reports the total events lost to slow subscribers.
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// MemberStatus is one worker's row in GET /fleet/status: the advertised
// identity plus the telemetry snapshot its last heartbeat carried.
type MemberStatus struct {
	URL      string `json:"url"`
	Oracle   string `json:"oracle,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
	Static   bool   `json:"static,omitempty"`
	// LastBeatAgoMS is how stale the worker's heartbeat is; static
	// members without heartbeats report their join age.
	LastBeatAgoMS int64 `json:"last_beat_ago_ms"`
	// Stats is the worker's self-reported telemetry (queue depth, shadow
	// tier, cache hit rate, detections); nil until the first heartbeat
	// that carried one.
	Stats *obs.WorkerStats `json:"stats,omitempty"`
}

// FleetStatus is the GET /fleet/status body: the roster with per-worker
// health, plus campaign progress.
type FleetStatus struct {
	Members  int            `json:"members"`
	Workers  []MemberStatus `json:"workers"`
	Progress ProgressStatus `json:"progress"`
}

// FleetHandler serves the fleet observability endpoints. Build with
// NewFleetHandler and mount Handler next to the Registrar's.
type FleetHandler struct {
	members *Membership
	prog    *Progress
	bus     *Bus
	reg     *obs.Registry
	mux     *http.ServeMux
}

// NewFleetHandler builds the handler. members is required; prog, bus and
// reg may be nil (the endpoints degrade to what is available).
func NewFleetHandler(members *Membership, prog *Progress, bus *Bus, reg *obs.Registry) *FleetHandler {
	h := &FleetHandler{members: members, prog: prog, bus: bus, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/status", h.handleStatus)
	mux.HandleFunc("/fleet/events", h.handleEvents)
	mux.HandleFunc("/metrics", h.handleMetrics)
	h.mux = mux
	return h
}

// Handler returns the HTTP surface.
func (h *FleetHandler) Handler() http.Handler { return h.mux }

// Status assembles the current fleet snapshot (also refreshing the
// pd_fleet_* gauges, so /metrics scrapes see the same numbers).
func (h *FleetHandler) Status() FleetStatus {
	return h.statusAt(time.Now())
}

func (h *FleetHandler) statusAt(now time.Time) FleetStatus {
	st := FleetStatus{Workers: []MemberStatus{}, Progress: h.prog.Status()}
	for _, mem := range h.members.Snapshot() {
		ms := MemberStatus{
			URL: mem.URL, Oracle: mem.Oracle, Backend: mem.Backend,
			Capacity: mem.Capacity, Static: mem.Static,
			LastBeatAgoMS: now.Sub(mem.LastBeat).Milliseconds(),
			Stats:         mem.Stats,
		}
		st.Workers = append(st.Workers, ms)
	}
	st.Members = len(st.Workers)
	if h.reg != nil {
		h.reg.Gauge("pd_fleet_workers").Set(int64(st.Members))
		h.reg.Gauge("pd_fleet_done_shards").Set(int64(st.Progress.DoneShards))
		h.reg.Gauge("pd_fleet_total_shards").Set(int64(st.Progress.TotalShards))
		h.reg.Gauge("pd_fleet_completion_permille").Set(int64(st.Progress.Completion * 1000))
	}
	return st
}

func (h *FleetHandler) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, `{"error":"GET only"}`, http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(h.Status())
}

// handleEvents streams the scheduler's fleet events as server-sent
// events, one JSON object per `data:` line. The stream ends when the
// client goes away; a slow client loses events rather than slowing the
// scheduler (the bus drops, and pd_fleet_events_dropped_total counts).
func (h *FleetHandler) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, `{"error":"GET only"}`, http.StatusMethodNotAllowed)
		return
	}
	if h.bus == nil {
		http.Error(w, `{"error":"no event bus attached"}`, http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, `{"error":"streaming unsupported"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": fleet event stream\n\n")
	fl.Flush()

	ch, cancel := h.bus.Subscribe(256)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, b)
			fl.Flush()
			if h.reg != nil {
				h.reg.Gauge("pd_fleet_events_dropped").Set(h.bus.Dropped())
			}
		}
	}
}

func (h *FleetHandler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if h.reg == nil {
		http.Error(w, "no metrics registry", http.StatusNotFound)
		return
	}
	h.statusAt(time.Now()) // refresh fleet gauges before the dump
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = h.reg.WriteProm(w)
}
