package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"positdebug/internal/obs"
)

// Registrar is the coordinator's membership front door: an HTTP surface
// workers register against (pdserve -coordinator posts here) plus the
// active side of failure detection — heartbeat-TTL expiry and periodic
// /readyz probing of every member. pdcoord -listen serves it next to a
// running campaign so the fleet can grow and shrink mid-run.
//
// Endpoints:
//
//	POST /fabric/register    {"url","capacity","oracle","backend"} — join or heartbeat
//	POST /fabric/deregister  {"url","reason"}                      — graceful departure
//	GET  /fabric/members                                            — the roster, JSON
//
// A worker is removed three ways, in decreasing order of grace: it
// announces departure (SIGTERM drain → deregister, leases migrate
// immediately), its heartbeats stop for HeartbeatTTL (crash without
// goodbye), or it keeps answering probes with anything but a ready 200
// (alive but lying). Static -workers members are exempt from heartbeat
// expiry but probed like everyone else.
type RegistrarConfig struct {
	// Members is the roster to manage (required).
	Members *Membership
	// HeartbeatTTL drops a non-static member whose heartbeats stop
	// (default 15s).
	HeartbeatTTL time.Duration
	// ProbeInterval is the /readyz probe cadence (default 3s; negative
	// disables probing, which also disables heartbeat expiry sweeps).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 2s).
	ProbeTimeout time.Duration
	// ProbeFailures is the consecutive failed probes that evict a member
	// (default 3).
	ProbeFailures int
	// Client issues probes (default a fresh one; ProbeTimeout governs).
	Client *http.Client
	// Metrics receives pd_fabric_member_* counters via the Membership,
	// plus pd_fabric_probe_failures_total.
	Metrics *obs.Registry
	// Logf receives human-oriented membership events.
	Logf func(format string, args ...any)
}

func (c RegistrarConfig) withDefaults() RegistrarConfig {
	if c.HeartbeatTTL <= 0 {
		c.HeartbeatTTL = 15 * time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 3 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 3
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Registrar manages a Membership over HTTP registration and active
// probing. Build with NewRegistrar, mount Handler, and run Run.
type Registrar struct {
	cfg RegistrarConfig
	mux *http.ServeMux
	reg *obs.Registry

	mu         sync.Mutex
	probeFails map[string]int
}

// NewRegistrar builds a Registrar over the given roster.
func NewRegistrar(cfg RegistrarConfig) (*Registrar, error) {
	cfg = cfg.withDefaults()
	if cfg.Members == nil {
		return nil, fmt.Errorf("fabric: registrar needs a Membership")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg.Members.setMetrics(reg)
	if cfg.Logf != nil {
		cfg.Members.SetLogf(cfg.Logf)
	}
	r := &Registrar{cfg: cfg, reg: reg, probeFails: make(map[string]int)}
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/register", r.handleRegister)
	mux.HandleFunc("/fabric/deregister", r.handleDeregister)
	mux.HandleFunc("/fabric/members", r.handleMembers)
	r.mux = mux
	return r, nil
}

// Handler returns the registration HTTP surface.
func (r *Registrar) Handler() http.Handler { return r.mux }

// RegisterRequest is the POST /fabric/register body — one worker
// announcing (or re-announcing) itself with its advertised tier.
type RegisterRequest struct {
	URL      string `json:"url"`
	Capacity int    `json:"capacity,omitempty"`
	Oracle   string `json:"oracle,omitempty"`
	Backend  string `json:"backend,omitempty"`
	// Stats is the worker's telemetry snapshot; each heartbeat refreshes
	// it, making registration the fleet's continuous telemetry feed.
	Stats *obs.WorkerStats `json:"stats,omitempty"`
}

// DeregisterRequest is the POST /fabric/deregister body — a graceful
// departure announcement (pdserve posts it when its drain begins).
type DeregisterRequest struct {
	URL    string `json:"url"`
	Reason string `json:"reason,omitempty"`
}

func (r *Registrar) handleRegister(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	var rr RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&rr); err != nil {
		http.Error(w, `{"error":"invalid JSON body"}`, http.StatusBadRequest)
		return
	}
	joined, err := r.cfg.Members.Join(Member{URL: rr.URL, Capacity: rr.Capacity, Oracle: rr.Oracle, Backend: rr.Backend, Stats: rr.Stats})
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
		return
	}
	// A fresh heartbeat clears any probe grudge: the worker is talking to
	// us again, let the next probe judge it on current behavior.
	u, _ := NormalizeWorkerURL(rr.URL)
	r.mu.Lock()
	delete(r.probeFails, u)
	r.mu.Unlock()
	status := "heartbeat"
	if joined {
		status = "joined"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":        status,
		"members":       r.cfg.Members.Len(),
		"heartbeat_ttl": r.cfg.HeartbeatTTL.String(),
	})
}

func (r *Registrar) handleDeregister(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, `{"error":"POST only"}`, http.StatusMethodNotAllowed)
		return
	}
	var dr DeregisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<16)).Decode(&dr); err != nil {
		http.Error(w, `{"error":"invalid JSON body"}`, http.StatusBadRequest)
		return
	}
	reason := dr.Reason
	if reason == "" {
		reason = "deregistered"
	}
	left := r.cfg.Members.Leave(dr.URL, reason)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "removed": left})
}

func (r *Registrar) handleMembers(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, `{"error":"GET only"}`, http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"members": r.cfg.Members.Snapshot()})
}

// Run drives the active side — heartbeat expiry and /readyz probing —
// until ctx is cancelled. With ProbeInterval < 0 it returns immediately
// (registration stays passive: joins and departures only).
func (r *Registrar) Run(ctx context.Context) {
	if r.cfg.ProbeInterval < 0 {
		return
	}
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			r.sweep(ctx, now)
		}
	}
}

// sweep is one failure-detection pass: expire silent members, then probe
// the survivors' /readyz concurrently. A probe succeeds only on a ready
// 200 — a draining worker answers 503 and is evicted like a dead one,
// which is correct: it told us it is leaving.
func (r *Registrar) sweep(ctx context.Context, now time.Time) {
	r.cfg.Members.ExpireStale(r.cfg.HeartbeatTTL, now)
	members := r.cfg.Members.Snapshot()
	var wg sync.WaitGroup
	for _, mem := range members {
		wg.Add(1)
		go func(mem Member) {
			defer wg.Done()
			ok := r.probe(ctx, mem.URL)
			r.mu.Lock()
			if ok {
				delete(r.probeFails, mem.URL)
				r.mu.Unlock()
				return
			}
			r.probeFails[mem.URL]++
			fails := r.probeFails[mem.URL]
			if fails >= r.cfg.ProbeFailures {
				delete(r.probeFails, mem.URL)
			}
			r.mu.Unlock()
			r.reg.Counter("pd_fabric_probe_failures_total").Inc()
			if fails >= r.cfg.ProbeFailures {
				r.cfg.Members.Leave(mem.URL, fmt.Sprintf("failed %d consecutive readiness probes", fails))
			}
		}(mem)
	}
	wg.Wait()
}

func (r *Registrar) probe(ctx context.Context, base string) bool {
	pctx, cancel := context.WithTimeout(ctx, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
