// Package fabric is the coordinator side of the distributed campaign /
// profile fabric: it partitions an embarrassingly-parallel sweep into
// seed-range shards, dispatches them to pdserve workers over HTTP, and
// merges the results into reports byte-identical to a sequential
// single-process run.
//
// The determinism argument is structural, not statistical. Every campaign
// run is a pure function of (config, run index) — the per-run PRNG stream
// is Mix(seed, run), never shared state — so a shard computed on any
// worker, at any time, after any number of retries, yields the same
// RunResult values. The coordinator therefore only has to guarantee
// coverage (every run present exactly once in the merged report) and
// consistency (duplicates and golden info agree), both of which
// faultinject.AssembleReport verifies before emitting a report. Worker
// count, shard size, retry schedules, hedging and crashes can change
// which machine computes a run, but never what the run computes.
//
// Robustness is the point of the package: per-shard retry with capped
// exponential backoff and jitter, Retry-After-honoring flow control,
// consecutive-failure worker ejection with probation re-admission,
// lease-based shard assignment so a hung worker's shard is reassigned,
// hedged requests for stragglers, and crash-safe coordinator state in the
// campaign's WAL journal so a killed coordinator resumes without
// re-running completed work.
package fabric

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
)

// Config configures a Coordinator. Zero values get production-shaped
// defaults; only Workers is mandatory.
type Config struct {
	// Workers are the pdserve base URLs shards are dispatched to. They
	// become static members of the fleet roster: exempt from heartbeat
	// expiry, otherwise scheduled like any dynamically registered worker.
	Workers []string
	// Members, when set, is a shared fleet roster the scheduler follows
	// mid-job: workers that register (see Registrar) start receiving
	// shards, workers that leave have their leases migrated immediately.
	// With Members set, Workers may be empty — the coordinator waits for
	// the first registration. When nil, a private roster is built from
	// Workers.
	Members *Membership
	// VirtualNodes is the consistent-hash ring's per-worker vnode count
	// (default DefaultVirtualNodes). The ring keys worker selection by
	// kernel identity so same-kernel shards keep hitting warm compile
	// caches, and membership churn moves only the affected arc.
	VirtualNodes int
	// DeadAfter is the ejection count that upgrades a worker's verdict
	// from "unlucky" to "dead": the worker is removed from the roster and
	// only a fresh registration re-admits it (default 4; negative
	// disables death verdicts, ejection/probation cycles forever).
	DeadAfter int
	// JitterSeed seeds the backoff/hedge jitter stream (0 derives a seed
	// from the clock). A fixed seed makes retry schedules reproducible —
	// scheduler tests assert exact backoff sequences, and the chaos
	// harness replays a failing schedule byte for byte.
	JitterSeed int64
	// ShardSize is the number of runs per shard (default 16). Smaller
	// shards lose less work per failure and spread better; larger ones
	// amortize the per-shard golden pass.
	ShardSize int
	// MaxAttempts bounds failed attempts per shard before the whole job
	// errors out (default 5). Retry-After throttles don't count.
	MaxAttempts int
	// BaseBackoff seeds the capped exponential backoff between a shard's
	// attempts (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff growth (default 5s).
	MaxBackoff time.Duration
	// LeaseTimeout bounds one attempt: when it expires the coordinator
	// abandons the attempt and reassigns the shard, which is how work
	// escapes a hung — as opposed to dead — worker (default 2m).
	LeaseTimeout time.Duration
	// HedgeAfter launches a duplicate attempt of a shard whose sole
	// outstanding attempt has been running this long, when an idle worker
	// is available; first answer wins, the loser is cancelled. 0 uses the
	// default (30s); negative disables hedging.
	HedgeAfter time.Duration
	// EjectAfter is the consecutive-failure count that ejects a worker
	// (default 3). An ejected worker re-enters after Probation with its
	// record intact: one more failure re-ejects it immediately, one
	// success fully re-admits it.
	EjectAfter int
	// Probation is the ejection window (default 10s).
	Probation time.Duration
	// Client is the HTTP client (default a fresh one; per-attempt
	// deadlines come from LeaseTimeout, not a client timeout).
	Client *http.Client
	// Metrics, when set, receives fabric counters: shards, retries,
	// hedges, ejections, reassignments, throttles, resumed runs.
	Metrics *obs.Registry
	// Journal, when set, write-ahead-logs every merged run result and each
	// architecture's golden info in the same WAL format the in-process
	// campaign uses. A restarted coordinator pointed at the same journal
	// re-dispatches only the missing runs — completed shards are never
	// re-run — and produces the same report bytes.
	Journal *faultinject.Journal
	// Trace, when set, collects a fleet-wide distributed trace: the
	// scheduler opens a span per attempt, stamps its id onto the shard
	// request (X-Request-Id + traceparent), and fetches each worker's
	// span batch after the attempt — Trace.WriteChrome merges it all into
	// one Perfetto-loadable file.
	Trace *FleetTrace
	// Events, when set, receives every fleet-scheduler event (dispatches,
	// retries, lease migrations, membership churn, detections) for live
	// streaming — the /fleet/events SSE endpoint subscribes here.
	Events *Bus
	// Progress, when set, is updated as shards complete so GET
	// /fleet/status can report completion and ETA mid-job.
	Progress *Progress
	// Logf, when set, receives human-oriented scheduling events (retries,
	// ejections, hedges, lease expiries).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ShardSize <= 0 {
		c.ShardSize = 16
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 2 * time.Minute
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 30 * time.Second
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.Probation <= 0 {
		c.Probation = 10 * time.Second
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = 4
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Coordinator owns a worker fleet and schedules shards onto it.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	reg     *obs.Registry
	members *Membership
	trace   *FleetTrace
	seed    int64

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter only — never touches results
}

// New builds a Coordinator. The fleet comes from cfg.Workers (joined as
// static members), cfg.Members (a shared dynamic roster), or both; it
// fails fast only when neither is supplied.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 && cfg.Members == nil {
		return nil, fmt.Errorf("fabric: no workers configured")
	}
	members := cfg.Members
	if members == nil {
		members = NewMembership()
	}
	for i, u := range cfg.Workers {
		if err := members.JoinStatic(u); err != nil {
			return nil, fmt.Errorf("fabric: worker at index %d: %v", i, err)
		}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry() // throwaway: keeps counter calls unconditional
	}
	members.setMetrics(reg)
	if cfg.Logf != nil {
		members.SetLogf(cfg.Logf)
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Coordinator{
		cfg:     cfg,
		client:  cfg.Client,
		reg:     reg,
		members: members,
		trace:   cfg.Trace,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// Members exposes the coordinator's fleet roster — the same Membership a
// Registrar mounts for dynamic registration.
func (c *Coordinator) Members() *Membership { return c.members }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// RunCampaign executes a fault-injection campaign across the worker
// fleet and returns a report byte-identical to
// faultinject.RunCampaign(ccfg) on one machine. With a Journal attached,
// results are WAL-logged as shards complete and a re-invocation after a
// coordinator crash re-dispatches only what the journal is missing.
func (c *Coordinator) RunCampaign(ctx context.Context, ccfg faultinject.CampaignConfig) (*faultinject.Report, error) {
	arches, err := ccfg.EffectiveArches()
	if err != nil {
		return nil, err
	}
	runs := ccfg.EffectiveRuns()
	wire := ccfg.Wire()
	j := c.cfg.Journal

	// Journal prefill: replayed runs skip the fabric entirely. The rest of
	// the run space is cut into contiguous missing-run spans of at most
	// ShardSize — a partially journaled shard re-dispatches only its gap.
	prefill := make(map[string][]faultinject.RunResult, len(arches))
	var tasks []*task
	resumed := 0
	for _, arch := range arches {
		arch := arch
		spanStart := -1
		flush := func(end int) {
			if spanStart < 0 {
				return
			}
			for lo := spanStart; lo < end; lo += c.cfg.ShardSize {
				hi := lo + c.cfg.ShardSize
				if hi > end {
					hi = end
				}
				tasks = append(tasks, c.campaignTask(wire, arch, lo, hi))
			}
			spanStart = -1
		}
		for run := 0; run < runs; run++ {
			if j != nil {
				if rr, ok := j.Lookup(arch, run); ok {
					flush(run)
					prefill[arch] = append(prefill[arch], rr)
					resumed++
					continue
				}
			}
			if spanStart < 0 {
				spanStart = run
			}
		}
		flush(runs)
		if _, ok := goldenFromJournal(j, arch); !ok && len(prefill[arch]) == runs {
			// Fully journaled architecture with no golden record (the
			// journal predates golden records, or came from an in-process
			// campaign): one golden probe recovers the report header data
			// with zero re-runs.
			tasks = append(tasks, c.campaignTask(wire, arch, 0, 0))
		}
	}
	if resumed > 0 {
		c.reg.Counter("pd_fabric_resumed_runs_total").Add(int64(resumed))
		c.logf("fabric: journal replays %d of %d runs", resumed, runs*len(arches))
	}

	if err := c.runTasks(ctx, "campaign", tasks); err != nil {
		return nil, err
	}

	shards := make([]*faultinject.ShardResult, 0, len(tasks)+len(arches))
	goldenSeen := make(map[string]faultinject.ArchInfo, len(arches))
	for _, t := range tasks {
		res := t.result.(*faultinject.ShardResult)
		shards = append(shards, res)
		if _, ok := goldenSeen[res.Arch]; !ok {
			goldenSeen[res.Arch] = res.Golden
		}
	}
	for _, arch := range arches {
		g, ok := goldenFromJournal(j, arch)
		if !ok {
			g, ok = goldenSeen[arch]
		}
		if len(prefill[arch]) == 0 {
			continue // nothing replayed; dispatched shards carry their own golden
		}
		if !ok {
			return nil, fmt.Errorf("fabric: no golden info recovered for %s", arch)
		}
		shards = append(shards, &faultinject.ShardResult{
			Version: faultinject.ShardVersion, Arch: arch, Golden: g, Results: prefill[arch],
		})
	}
	return faultinject.AssembleReport(ccfg, shards)
}

// campaignTask wraps one shard range as a scheduler task. The task's
// commit hook lands the shard in the journal (golden first, then each
// run, every record fsync'd) — once runTasks returns, a kill -9 of the
// coordinator loses nothing.
func (c *Coordinator) campaignTask(wire faultinject.WireConfig, arch string, lo, hi int) *task {
	label := fmt.Sprintf("%s[%d,%d)", arch, lo, hi)
	if lo == hi {
		label = fmt.Sprintf("%s golden probe", arch)
	}
	req := faultinject.ShardRequest{Version: faultinject.ShardVersion, Config: wire, Arch: arch, Lo: lo, Hi: hi}
	return &task{
		label: label,
		key:   fmt.Sprintf("%s|%d|%s", wire.Workload, wire.N, arch),
		call: func(ctx context.Context, workerURL string) (any, error) {
			return c.postCampaignShard(ctx, workerURL, req)
		},
		onDone: func(res any) error {
			if c.cfg.Journal == nil {
				return nil
			}
			sh := res.(*faultinject.ShardResult)
			if err := c.cfg.Journal.RecordGolden(sh.Arch, sh.Golden); err != nil {
				return err
			}
			for _, rr := range sh.Results {
				if err := c.cfg.Journal.Record(sh.Arch, rr); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func goldenFromJournal(j *faultinject.Journal, arch string) (faultinject.ArchInfo, bool) {
	if j == nil {
		return faultinject.ArchInfo{}, false
	}
	return j.GoldenInfo(arch)
}

// ProfileSweep describes a distributed profiling sweep: Runs executions
// of one kernel, shadow-profiled, merged into one canonical profile.
type ProfileSweep struct {
	Kernel    string
	N         int
	Posit     bool
	Runs      int
	Sample    int
	Precision uint
	// Oracle names the shadow-arithmetic backend ("" = bigfp); it rides
	// the shard wire so every worker profiles under the same oracle.
	Oracle string
}

// RunProfile executes the sweep across the worker fleet and returns a
// profile whose canonical JSON (profile.WriteJSON) is byte-identical to a
// single-process harness.RecordProfile of the same total run count: every
// run of a kernel is identical, and profile.Merge is commutative with
// Runs additive. Exactly one result per shard is merged — a hedge's
// losing duplicate is discarded, never double-counted.
func (c *Coordinator) RunProfile(ctx context.Context, sweep ProfileSweep) (*profile.Profile, error) {
	runs := sweep.Runs
	if runs <= 0 {
		runs = 1
	}
	var tasks []*task
	for lo := 0; lo < runs; lo += c.cfg.ShardSize {
		size := c.cfg.ShardSize
		if lo+size > runs {
			size = runs - lo
		}
		req := harness.ProfileShard{
			Version: harness.ProfileShardVersion,
			Kernel:  sweep.Kernel, N: sweep.N, Posit: sweep.Posit,
			Runs: size, Sample: sweep.Sample, Precision: sweep.Precision,
			Oracle: sweep.Oracle,
		}
		label := fmt.Sprintf("profile %s[%d,%d)", sweep.Kernel, lo, lo+size)
		tasks = append(tasks, &task{
			label: label,
			key:   fmt.Sprintf("%s|%d|%v", sweep.Kernel, sweep.N, sweep.Posit),
			call: func(ctx context.Context, workerURL string) (any, error) {
				return c.postProfileShard(ctx, workerURL, req)
			},
		})
	}
	if err := c.runTasks(ctx, "profile", tasks); err != nil {
		return nil, err
	}
	parts := make([]*profile.Profile, 0, len(tasks))
	for _, t := range tasks {
		parts = append(parts, t.result.(*profile.Profile))
	}
	return profile.MergeAll(parts...)
}
