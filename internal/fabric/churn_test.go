package fabric

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"positdebug/internal/faultinject"
	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// TestFabricMidCampaignJoin: the coordinator starts with an EMPTY dynamic
// roster, blocks waiting for the fleet to assemble, serves the campaign on
// the first worker to register, and puts a second mid-campaign joiner to
// work — with the merged report byte-identical to a sequential run.
func TestFabricMidCampaignJoin(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)

	// w1 is deliberately slow per shard so the mid-run joiner has work left
	// to steal; w2 counts the shards it serves.
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	w1 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" {
			time.Sleep(150 * time.Millisecond)
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(w1.Close)
	var w2Shards atomic.Int32
	w2 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" {
			w2Shards.Add(1)
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(w2.Close)

	members := NewMembership()
	reg := obs.NewRegistry()
	cfg := fastCfg() // no static workers: pure discovery mode
	cfg.Members = members
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		if _, err := members.Join(Member{URL: w1.URL}); err != nil {
			t.Error(err)
		}
		time.Sleep(200 * time.Millisecond) // w1 is mid-campaign by now
		if _, err := members.Join(Member{URL: w2.URL}); err != nil {
			t.Error(err)
		}
	}()

	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("campaign with mid-run join differs from sequential oracle")
	}
	if w2Shards.Load() == 0 {
		t.Fatal("the mid-campaign joiner served no shards")
	}
	if n := reg.Counter("pd_fabric_member_joins_total").Value(); n != 2 {
		t.Fatalf("joins counter = %d, want 2", n)
	}
	if n := reg.Counter("pd_fabric_ring_rebalances_total").Value(); n < 1 {
		t.Fatal("mid-campaign joins rebuilt no rings")
	}
}

// TestFabricDrainMigratesLease: a worker that announces departure while an
// attempt is in flight has that attempt cancelled and the shard migrated
// immediately — the campaign must NOT wait out the (deliberately long)
// lease, and the drained worker pays no health penalty.
func TestFabricDrainMigratesLease(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)

	hangStarted := make(chan struct{})
	stop := make(chan struct{})
	var hung atomic.Bool
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	leaving := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" && hung.CompareAndSwap(false, true) {
			io.Copy(io.Discard, r.Body)
			close(hangStarted)
			select {
			case <-r.Context().Done(): // drain migration tore the attempt down
			case <-stop:
			}
			return
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(leaving.Close)
	t.Cleanup(func() { close(stop) })
	staying := newWorker(t)

	reg := obs.NewRegistry()
	cfg := fastCfg(leaving.URL, staying.URL)
	cfg.LeaseTimeout = time.Minute // migration must beat this by far
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		<-hangStarted
		// The worker's drain announcement: deregister from the roster.
		co.Members().Leave(leaving.URL, "draining")
	}()

	start := time.Now()
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("campaign took %v; the drain announcement should migrate the lease immediately", elapsed)
	}
	if n := reg.Counter("pd_fabric_drain_migrations_total").Value(); n < 1 {
		t.Fatalf("drain migrations counter = %d, want >= 1", n)
	}
	if n := reg.Counter("pd_fabric_ejections_total").Value(); n != 0 {
		t.Fatalf("a graceful departure cost %d ejections; drains are not faults", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("campaign with drained worker differs from sequential oracle")
	}
}

// TestFabricAllWorkersDeadFailsFast is the all-workers-ejected satellite:
// when every worker has failed its way out of the fleet, the coordinator
// must fail fast with an error naming each worker's last failure — not
// idle until the campaign deadline.
func TestFabricAllWorkersDeadFailsFast(t *testing.T) {
	bad := func(msg string) *httptest.Server {
		s := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			http.Error(rw, msg, http.StatusInternalServerError)
		}))
		t.Cleanup(s.Close)
		return s
	}
	b1 := bad(`{"error":"disk on fire","kind":"internal-fault"}`)
	b2 := bad(`{"error":"cosmic rays","kind":"internal-fault"}`)

	cfg := fastCfg(b1.URL, b2.URL)
	cfg.MaxAttempts = 1000 // idling through retries would take forever
	cfg.EjectAfter = 2
	cfg.DeadAfter = 2
	cfg.Probation = 20 * time.Millisecond
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = co.RunCampaign(context.Background(), testCampaign())
	if err == nil {
		t.Fatal("campaign with an all-dead fleet should fail")
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("all-dead verdict took %v; it must fail fast", elapsed)
	}
	msg := err.Error()
	for _, frag := range []string{"all 2 workers failed", b1.URL, b2.URL, "disk on fire", "cosmic rays"} {
		if !strings.Contains(msg, frag) {
			t.Fatalf("all-dead error %q does not name %q", msg, frag)
		}
	}
	if co.members.Len() != 0 {
		t.Fatalf("dead workers still in the roster: %d", co.members.Len())
	}
}

// TestFabricDeadWorkerRejoinsClean: a worker declared dead and then
// re-registered comes back with a clean health record and serves work.
func TestFabricDeadWorkerRejoinsClean(t *testing.T) {
	ccfg := testCampaign()
	want := sequentialOracle(t, ccfg)

	// flaky 500s until revived, then behaves.
	var revived atomic.Bool
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	flaky := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if !revived.Load() {
			http.Error(rw, `{"error":"warming up","kind":"internal-fault"}`, http.StatusInternalServerError)
			return
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(flaky.Close)
	steady := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" {
			time.Sleep(100 * time.Millisecond) // leave work for the returnee
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(steady.Close)

	reg := obs.NewRegistry()
	cfg := fastCfg(flaky.URL, steady.URL)
	cfg.EjectAfter = 2
	cfg.DeadAfter = 1 // first ejection is fatal: fastest route to a death verdict
	cfg.Metrics = reg
	cfg.Logf = t.Logf
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		// Wait for the death verdict, then revive and re-register.
		deadline := time.Now().Add(20 * time.Second)
		for co.members.Len() != 1 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		revived.Store(true)
		if _, err := co.members.Join(Member{URL: flaky.URL}); err != nil {
			t.Error(err)
		}
	}()

	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("pd_fabric_member_deaths_total").Value(); n != 1 {
		t.Fatalf("deaths counter = %d, want 1", n)
	}
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("campaign with dead-then-rejoined worker differs from sequential oracle")
	}
}

// TestFabricDeterministicJitter is the injectable-jitter satellite: the
// same JitterSeed replays the same backoff schedule; the default (seed 0)
// still derives a fresh one.
func TestFabricDeterministicJitter(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		co, err := New(Config{Workers: []string{"http://x"}, JitterSeed: seed,
			BaseBackoff: 100 * time.Millisecond, MaxBackoff: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, 0, 40)
		for f := 1; f <= 40; f++ {
			out = append(out, co.backoff(f%8+1))
		}
		return out
	}
	a, b := mk(12345), mk(12345)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := mk(54321)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 40-draw schedules")
	}
}

// TestParseRetryAfter is the RFC 9110 §10.2.3 satellite: delta-seconds and
// HTTP-date forms both parse; garbage and negatives mean "no hint".
func TestParseRetryAfter(t *testing.T) {
	now := time.Now()
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"3", 3 * time.Second, true},
		{" 10 ", 10 * time.Second, true},
		{"0", 0, true},
		{"-5", 0, false},
		{"", 0, false},
		{"soon", 0, false},
		{"2.5", 0, false},
		{now.Add(10 * time.Second).UTC().Format(http.TimeFormat), 10 * time.Second, true},
		{now.Add(-time.Hour).UTC().Format(http.TimeFormat), 0, true}, // past date: now is fine
	}
	for _, c := range cases {
		got, ok := parseRetryAfter(c.in, now)
		if ok != c.ok {
			t.Errorf("parseRetryAfter(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		// HTTP-date precision is one second; allow that much slack.
		if diff := got - c.want; diff < -time.Second || diff > time.Second {
			t.Errorf("parseRetryAfter(%q) = %v, want ~%v", c.in, got, c.want)
		}
	}
}

// TestFabricJournalsMembershipEvents: fleet churn during a journaled
// campaign lands "member" records in the WAL — and a resume on that
// journal ignores them completely.
func TestFabricJournalsMembershipEvents(t *testing.T) {
	ccfg := testCampaign()
	ccfg.Arch = "posit"
	want := sequentialOracle(t, ccfg)
	jpath := filepath.Join(t.TempDir(), "churn.journal")

	// The join is triggered from inside w1's first shard request: the
	// scheduler loop is then provably mid-campaign, so the membership
	// change is churn, not initial roster, and must hit the journal.
	coCh := make(chan *Coordinator, 1)
	var once sync.Once
	w2 := newWorker(t)
	base := server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler()
	w1 := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/campaign/shard" {
			once.Do(func() {
				co := <-coCh
				if _, err := co.Members().Join(Member{URL: w2.URL}); err != nil {
					t.Error(err)
				}
			})
		}
		base.ServeHTTP(rw, r)
	}))
	t.Cleanup(w1.Close)

	j, err := faultinject.OpenJournal(jpath, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(w1.URL)
	cfg.Journal = j
	co, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coCh <- co
	rep, err := co.RunCampaign(context.Background(), ccfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if got := reportBytes(t, rep); !bytes.Equal(got, want) {
		t.Fatal("journaled churn campaign differs from sequential oracle")
	}

	raw, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"member"`) {
		t.Fatal("journal holds no membership records despite a mid-campaign join")
	}

	// A resume over the member-record-bearing journal replays every run.
	j2, err := faultinject.OpenJournal(jpath, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != ccfg.Runs {
		t.Fatalf("resume set = %d runs, want %d; member records must not disturb replay", j2.Resumed(), ccfg.Runs)
	}
}
