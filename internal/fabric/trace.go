package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"positdebug/internal/faultinject"
	"positdebug/internal/obs"
)

// This file is the coordinator half of fleet-wide tracing. The scheduler
// opens a flat span per shard attempt, stamps the attempt's identity onto
// the outgoing HTTP request (X-Request-Id + W3C traceparent), and — after
// the attempt returns — fetches the worker's retained span batch from
// GET /debug/trace/{requestID}. obs.WriteFleetChromeTrace then folds the
// coordinator stream and every fetched batch into ONE Perfetto-loadable
// file, workers on their own pid rows, request spans hanging under the
// attempt spans that dispatched them.
//
// Ownership: a FleetTrace's span stream is owned by the scheduler's
// event loop — every span and instant is emitted on that goroutine. The
// batch fetch is the one off-loop piece, and it is deliberately off the
// shard critical path: the attempt goroutine reports its result on the
// done channel FIRST and only then fetches the worker's span batch, so
// tracing never delays the next dispatch. Fetched batches are filed
// under a mutex; a WaitGroup makes Snapshot/WriteChrome (called after
// the job returns) wait out any straggling fetches.

// FleetTrace collects one job's coordinator-side trace plus the worker
// span batches fetched per attempt. A nil *FleetTrace is valid and inert —
// every method no-ops — so the scheduler traces unconditionally.
type FleetTrace struct {
	// TraceID is the 32-hex fleet trace id stamped into every outgoing
	// traceparent and onto every coordinator event.
	TraceID string

	sb     *obs.SeqBuffer
	tr     *obs.Tracer
	root   *obs.Span // current job's root span (beginJob/endJob)
	reqSeq uint64

	mu       sync.Mutex // guards byWorker (filed by attempt goroutines)
	wg       sync.WaitGroup
	byWorker map[string][]obs.RequestTrace

	// FetchTimeout bounds one /debug/trace fetch (default 2s).
	FetchTimeout time.Duration
}

// NewFleetTrace builds a collector whose trace id is derived
// deterministically from the job's identity parts (workload, size, seed —
// anything that names the job).
func NewFleetTrace(idParts ...string) *FleetTrace {
	sb := &obs.SeqBuffer{}
	return &FleetTrace{
		TraceID:  obs.DeriveTraceID(idParts...),
		sb:       sb,
		tr:       obs.NewTracer(sb),
		byWorker: map[string][]obs.RequestTrace{},
	}
}

// emit stamps the fleet trace id and hands the event to the seq buffer.
func (f *FleetTrace) emit(ev obs.Event) {
	if f == nil {
		return
	}
	ev.Trace = f.TraceID
	f.sb.Emit(ev)
}

// beginJob opens the job's root span ("campaign"/"profile"); attempts
// parent under it. endJob (or a second beginJob) closes it.
func (f *FleetTrace) beginJob(kind string) {
	if f == nil {
		return
	}
	f.root.End()
	f.root = f.tr.StartChild(kind, 0)
}

func (f *FleetTrace) endJob() {
	if f == nil {
		return
	}
	f.root.End()
	f.root = nil
}

// attemptTrace is one traced attempt: the stamped request id and the
// coordinator-side attempt span. A nil *attemptTrace is inert.
type attemptTrace struct {
	f    *FleetTrace
	rid  string
	url  string
	span *obs.Span
}

// beginAttempt opens a flat attempt span and mints the attempt's request
// id; the caller records the dispatch instant (it also feeds the live
// event bus, which beginAttempt knows nothing about). Every beginAttempt
// obligates exactly one collect call on the attempt goroutine.
func (f *FleetTrace) beginAttempt(label, workerURL string) *attemptTrace {
	if f == nil {
		return nil
	}
	f.reqSeq++
	at := &attemptTrace{
		f:   f,
		rid: fmt.Sprintf("c%06d", f.reqSeq),
		url: workerURL,
	}
	at.span = f.tr.StartChild(label+" @ "+workerURL, f.root.ID())
	f.wg.Add(1)
	return at
}

// id returns the attempt's request id ("" for an untraced attempt).
func (a *attemptTrace) id() string {
	if a == nil {
		return ""
	}
	return a.rid
}

// binding returns the cross-process identity the HTTP layer stamps onto
// the attempt's request.
func (a *attemptTrace) binding() (rid string, tc obs.TraceContext) {
	if a == nil {
		return "", obs.TraceContext{}
	}
	return a.rid, obs.TraceContext{TraceID: a.f.TraceID, SpanID: a.span.ID()}
}

// collect retrieves the worker's retained span batch for this attempt
// and files it under the worker's pid row. Runs on the attempt
// goroutine AFTER the done-channel send, so the fetch never delays the
// scheduler's next dispatch. Strictly best-effort on a fresh
// short-deadline context (the attempt's own context is typically
// already cancelled): a worker without a flight recorder answers 404
// and the fleet trace simply has no row for the request.
func (a *attemptTrace) collect(client *http.Client) {
	if a == nil {
		return
	}
	defer a.f.wg.Done()
	timeout := a.f.FetchTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, a.url+"/debug/trace/"+a.rid, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var rt obs.RequestTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxResponseBytes)).Decode(&rt); err != nil {
		return
	}
	if rt.Req != a.rid {
		return // echo mismatch: not our batch, drop it
	}
	a.f.mu.Lock()
	a.f.byWorker[a.url] = append(a.f.byWorker[a.url], rt)
	a.f.mu.Unlock()
}

// finish closes the attempt span. Loop-side, after the done-channel
// receive; the batch is filed by collect on the attempt goroutine.
func (a *attemptTrace) finish() {
	if a == nil {
		return
	}
	a.span.End()
}

// Snapshot returns the coordinator event stream and the per-worker span
// batches collected, workers sorted by label. Call it only after the
// traced job returned (the span stream is loop-owned while it runs); it
// waits out any batch fetches still in flight, each bounded by
// FetchTimeout.
func (f *FleetTrace) Snapshot() (coord []obs.Event, workers []obs.WorkerTrace) {
	if f == nil {
		return nil, nil
	}
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	coord = f.sb.Events()
	workers = make([]obs.WorkerTrace, 0, len(f.byWorker))
	for url, reqs := range f.byWorker {
		workers = append(workers, obs.WorkerTrace{Label: url, Requests: reqs})
	}
	// WriteFleetChromeTrace re-sorts, but a deterministic snapshot keeps
	// re-merge tests independent of map iteration order.
	for i := range workers {
		for j := i + 1; j < len(workers); j++ {
			if workers[j].Label < workers[i].Label {
				workers[i], workers[j] = workers[j], workers[i]
			}
		}
	}
	return coord, workers
}

// WriteChrome merges everything collected into one Chrome trace-event
// JSON file, the coordinator labeled coordLabel.
func (f *FleetTrace) WriteChrome(w io.Writer, coordLabel string) error {
	if f == nil {
		return fmt.Errorf("fabric: no fleet trace collected")
	}
	coord, workers := f.Snapshot()
	return obs.WriteFleetChromeTrace(w, coordLabel, coord, workers)
}

// attemptKey carries an attempt's trace binding through the context to
// the HTTP layer, which stamps it onto the outgoing request.
type attemptKey struct{}

type attemptBinding struct {
	rid string
	tc  obs.TraceContext
}

func withAttempt(ctx context.Context, at *attemptTrace) context.Context {
	if at == nil {
		return ctx
	}
	rid, tc := at.binding()
	return context.WithValue(ctx, attemptKey{}, attemptBinding{rid: rid, tc: tc})
}

func attemptFrom(ctx context.Context) (attemptBinding, bool) {
	b, ok := ctx.Value(attemptKey{}).(attemptBinding)
	return b, ok
}

// fleetEvent builds one fleet-scheduler instant, emits it into the trace
// (when tracing) and publishes it on the event bus (when one is attached).
func (c *Coordinator) fleetEvent(kind, name, addr, outcome, req string, count int) {
	if c.trace == nil && c.cfg.Events == nil {
		return
	}
	ev := obs.NewEvent(kind)
	ev.Name, ev.Addr, ev.Outcome, ev.Req, ev.Count = name, addr, outcome, req, count
	if c.trace != nil {
		ev.Trace = c.trace.TraceID
	}
	c.trace.emit(ev)
	c.cfg.Events.Publish(ev)
}

// detectionCount reports how many runs of a completed shard result were
// shadow-detected, for the detection-found instant; 0 for payloads that
// carry no detection notion (profiles).
func detectionCount(res any) int {
	sh, ok := res.(*faultinject.ShardResult)
	if !ok {
		return 0
	}
	n := 0
	for _, rr := range sh.Results {
		if rr.Outcome == faultinject.OutcomeDetected {
			n++
		}
	}
	return n
}
